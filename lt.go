package kboost

import "github.com/kboost/kboost/internal/lt"

// The boosted Linear Threshold extension (the paper's future-work
// direction, Section IX): thresholds θ_v ~ U[0,1], edge weights derived
// from the influence probabilities and normalized per node, boosted
// nodes receive the boosted weights. See internal/lt for the model
// definition.

// LTOptions configures boosted-LT Monte-Carlo estimation.
type LTOptions = lt.Options

// LTEstimateSpread estimates the expected boosted-LT spread σ^LT_S(B).
func LTEstimateSpread(g *Graph, seeds, boost []int32, opt LTOptions) (float64, error) {
	return lt.EstimateSpread(g, seeds, boost, opt)
}

// LTEstimateBoost estimates the boosted-LT boost Δ^LT_S(B).
func LTEstimateBoost(g *Graph, seeds, boost []int32, opt LTOptions) (float64, error) {
	return lt.EstimateBoost(g, seeds, boost, opt)
}

// LTGreedyBoost greedily selects k boost nodes under the boosted-LT
// model by Monte-Carlo marginal evaluation over a candidate pool of
// size candCap (0 picks a default). Heuristic: no approximation
// guarantee exists for boosted LT.
func LTGreedyBoost(g *Graph, seeds []int32, k, candCap int, opt LTOptions) ([]int32, float64, error) {
	return lt.GreedyBoost(g, seeds, k, candCap, opt)
}
