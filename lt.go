package kboost

import "github.com/kboost/kboost/internal/lt"

// The boosted Linear Threshold extension (the paper's future-work
// direction, Section IX): thresholds θ_v ~ U[0,1], edge weights derived
// from the influence probabilities and normalized per node, boosted
// nodes receive the boosted weights. See internal/lt for the model
// definition.

// LTOptions configures boosted-LT Monte-Carlo estimation.
type LTOptions = lt.Options

// LTEstimateSpread estimates the expected boosted-LT spread σ^LT_S(B).
func LTEstimateSpread(g *Graph, seeds, boost []int32, opt LTOptions) (float64, error) {
	return lt.EstimateSpread(g, seeds, boost, opt)
}

// LTEstimateBoost estimates the boosted-LT boost Δ^LT_S(B).
func LTEstimateBoost(g *Graph, seeds, boost []int32, opt LTOptions) (float64, error) {
	return lt.EstimateBoost(g, seeds, boost, opt)
}

// LTGreedyBoost greedily selects k boost nodes under the boosted-LT
// model by Monte-Carlo marginal evaluation over a candidate pool of
// size candCap (0 picks a default). Heuristic: no approximation
// guarantee exists for boosted LT. Every marginal evaluation re-runs
// the full Monte-Carlo simulation; for repeated queries build an
// LTPool instead.
func LTGreedyBoost(g *Graph, seeds []int32, k, candCap int, opt LTOptions) ([]int32, float64, error) {
	return lt.GreedyBoost(g, seeds, k, candCap, opt)
}

// LTPool is a persistent, extendable pool of pre-sampled boosted-LT
// threshold profiles for a fixed (graph, seed set) — the LT analogue of
// the Engine's PRR pools. Each profile fixes every node's threshold
// θ_v, and the pool caches each profile's diffusion fixed point under
// the empty boost set; warm queries then evaluate boost sets
// incrementally from those cached states (LT activation is monotone in
// the boosted weights) instead of re-running Monte-Carlo from scratch.
//
//	pool, _ := kboost.NewLTPool(g, seeds, 1, 0)
//	pool.Extend(10000)                       // sample 10k profiles once
//	set, boost, _ := pool.GreedyBoost(20, 0) // CELF lazy-greedy, warm
//	spread, _ := pool.EstimateSpread(set)    // same profiles, coupled
//
// All pool estimates share possible worlds (common random numbers) and
// are bit-identical regardless of the worker count. The Engine serves
// this pool behind `mode:"lt"` boost and estimate queries, cached in
// the same LRU as PRR pools.
type LTPool = lt.Pool

// NewLTPool creates an empty boosted-LT profile pool; grow it with
// Extend. workers <= 0 means GOMAXPROCS.
func NewLTPool(g *Graph, seeds []int32, seed uint64, workers int) (*LTPool, error) {
	return lt.NewPool(g, seeds, seed, workers)
}
