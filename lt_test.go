package kboost

import "testing"

func TestLTAPI(t *testing.T) {
	g, err := GenerateDataset("digg", 0.002, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := InfluentialSeeds(g, 3)
	spread, err := LTEstimateSpread(g, seeds, nil, LTOptions{Sims: 2000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if spread < float64(len(seeds)) {
		t.Fatalf("LT spread %v below seed count", spread)
	}
	boostSet := RandomSeeds(g, 5, 9)
	boost, err := LTEstimateBoost(g, seeds, boostSet, LTOptions{Sims: 5000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if boost < -1 {
		t.Fatalf("LT boost implausibly negative: %v", boost)
	}
	chosen, val, err := LTGreedyBoost(g, seeds, 2, 10, LTOptions{Sims: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) > 2 || val < -1 {
		t.Fatalf("LT greedy: %v %v", chosen, val)
	}
}
