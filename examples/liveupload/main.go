// Liveupload: the graph lifecycle over HTTP — upload, boost, re-upload,
// boost again.
//
// This example runs the kboostd stack in-process with an auth token and
// no startup graphs, then plays an operator session against it: upload
// a network snapshot through POST /v1/graphs/{name}, query it warm,
// push a re-crawled snapshot of the same network (the version bumps and
// every cached pool for the old version is invalidated), and watch the
// same query recompute against the new snapshot instead of serving a
// stale cached answer.
//
// Run with: go run ./examples/liveupload
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"

	kboost "github.com/kboost/kboost"
)

const token = "demo-token"

func main() {
	// Server side: an empty engine; every graph arrives over HTTP.
	eng := kboost.NewEngine(kboost.EngineOptions{})
	handler := kboost.NewEngineServer(eng, kboost.EngineServerOptions{AuthToken: token})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: handler}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("kboostd stack (no startup graphs) at %s\n\n", base)

	// Day 1: the first crawl of the network.
	v1, err := kboost.GenerateDataset("digg", 0.01, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	up := upload(base, "social", v1)
	fmt.Printf("uploaded %q v%d: %d users, %d edges (replaced=%v)\n",
		"social", up.Version, up.Nodes, up.Edges, up.Replaced)

	seeds := kboost.InfluentialSeeds(v1, 5)
	query, _ := json.Marshal(map[string]any{
		"graph": "social", "seeds": seeds, "k": 10, "seed": 42, "max_samples": 50000,
	})

	var cold, warm boostResp
	call(base+"/v1/boost", string(query), &cold)
	call(base+"/v1/boost", string(query), &warm)
	fmt.Printf("boost k=10 on v%d:   Δ̂=%.1f  cache_hit=%v\n", cold.GraphVersion, cold.EstBoost, cold.CacheHit)
	fmt.Printf("boost k=10 again:   Δ̂=%.1f  result_cached=%v\n\n", warm.EstBoost, warm.ResultCached)

	// Day 2: a re-crawl — same network, new edges and probabilities.
	v2, err := kboost.GenerateDataset("digg", 0.012, 2.5, 43)
	if err != nil {
		log.Fatal(err)
	}
	up = upload(base, "social", v2)
	fmt.Printf("re-uploaded %q v%d: %d users, %d edges (replaced=%v, invalidated %d warm pool(s))\n",
		"social", up.Version, up.Nodes, up.Edges, up.Replaced, up.InvalidatedPools)

	var fresh, rewarm boostResp
	call(base+"/v1/boost", string(query), &fresh)
	call(base+"/v1/boost", string(query), &rewarm)
	fmt.Printf("boost k=10 on v%d:   Δ̂=%.1f  cache_hit=%v result_cached=%v  <- recomputed, no stale answer\n",
		fresh.GraphVersion, fresh.EstBoost, fresh.CacheHit, fresh.ResultCached)
	fmt.Printf("boost k=10 again:   Δ̂=%.1f  result_cached=%v  <- v%d pool is warm now\n\n",
		rewarm.EstBoost, rewarm.ResultCached, rewarm.GraphVersion)

	var stats struct {
		UploadsTotal     int64             `json:"uploads_total"`
		InvalidatedPools int64             `json:"invalidated_pools"`
		RetiredPoolBytes int64             `json:"retired_pool_bytes"`
		GraphVersions    map[string]uint64 `json:"graph_versions"`
	}
	get(base+"/v1/stats", &stats)
	fmt.Printf("server stats: %d uploads, versions %v, %d pool(s) / %d bytes retired by graph churn\n",
		stats.UploadsTotal, stats.GraphVersions, stats.InvalidatedPools, stats.RetiredPoolBytes)
}

type uploadResp struct {
	Graph            string `json:"graph"`
	Version          uint64 `json:"version"`
	Nodes            int    `json:"nodes"`
	Edges            int    `json:"edges"`
	Replaced         bool   `json:"replaced"`
	InvalidatedPools int    `json:"invalidated_pools"`
}

type boostResp struct {
	BoostSet     []int32 `json:"boost_set"`
	EstBoost     float64 `json:"est_boost"`
	CacheHit     bool    `json:"cache_hit"`
	ResultCached bool    `json:"result_cached"`
	GraphVersion uint64  `json:"graph_version"`
}

// upload POSTs g in the binary codec with the bearer token.
func upload(base, name string, g *kboost.Graph) uploadResp {
	var body bytes.Buffer
	if err := g.WriteBinary(&body); err != nil {
		log.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/graphs/"+name, &body)
	if err != nil {
		log.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out uploadResp
	decodeOK(resp, &out)
	return out
}

func call(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decodeOK(resp, out)
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	decodeOK(resp, out)
}

func decodeOK(resp *http.Response, out any) {
	if resp.StatusCode >= 300 {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: %s (%s)", resp.Request.URL, resp.Status, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}
