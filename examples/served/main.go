// Served: boosting as a service, and what the pool cache buys.
//
// This example runs the kboostd HTTP stack in-process — the same
// engine and handlers the daemon uses — then plays an analyst session
// against it over real HTTP: pick seeds, ask for a boost set, re-ask
// (warm cache), shrink k (still warm: a pool generated for budget k
// serves any smaller k), and Monte-Carlo-check the winner. The
// round-trip timings show the point of the Engine layer: the first
// query pays for PRR-graph sampling, every later one reuses it.
//
// Run with: go run ./examples/served
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	kboost "github.com/kboost/kboost"
)

func main() {
	// Server side: an Engine serving one registered snapshot.
	g, err := kboost.GenerateDataset("digg", 0.01, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	eng := kboost.NewEngine(kboost.EngineOptions{MaxPools: 4})
	if err := eng.RegisterGraph("digg", g); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: kboost.NewEngineServer(eng, kboost.EngineServerOptions{})}
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Printf("kboostd stack serving %d users, %d edges at %s\n\n", g.N(), g.M(), base)

	// Client side: plain JSON over HTTP.
	var seeds struct {
		Seeds        []int32 `json:"seeds"`
		EstInfluence float64 `json:"est_influence"`
	}
	call(base+"/v1/seeds", `{"graph":"digg","k":5,"seed":42}`, &seeds)
	fmt.Printf("seeds %v reach ~%.0f users on their own\n\n", seeds.Seeds, seeds.EstInfluence)

	type boostResp struct {
		BoostSet []int32 `json:"boost_set"`
		EstBoost float64 `json:"est_boost"`
		CacheHit bool    `json:"cache_hit"`
		NewPRR   int     `json:"new_prr_graphs"`
	}
	req := func(k int) string {
		body, _ := json.Marshal(map[string]any{
			"graph": "digg", "seeds": seeds.Seeds, "k": k,
			"seed": 42, "max_samples": 100000,
		})
		return string(body)
	}

	var cold, warm, smaller boostResp
	coldMS := timed(func() { call(base+"/v1/boost", req(20), &cold) })
	warmMS := timed(func() { call(base+"/v1/boost", req(20), &warm) })
	smallMS := timed(func() { call(base+"/v1/boost", req(5), &smaller) })

	fmt.Println("query            cache  new PRR-graphs  round-trip")
	fmt.Printf("boost k=20        %-5v  %14d  %8.0fms\n", cold.CacheHit, cold.NewPRR, coldMS)
	fmt.Printf("boost k=20 again  %-5v  %14d  %8.0fms\n", warm.CacheHit, warm.NewPRR, warmMS)
	fmt.Printf("boost k=5         %-5v  %14d  %8.0fms\n\n", smaller.CacheHit, smaller.NewPRR, smallMS)

	var est struct {
		Spread float64 `json:"spread"`
		Boost  float64 `json:"boost"`
	}
	body, _ := json.Marshal(map[string]any{
		"graph": "digg", "seeds": seeds.Seeds, "boost": cold.BoostSet,
		"sims": 20000, "seed": 7,
	})
	call(base+"/v1/estimate", string(body), &est)
	fmt.Printf("Monte-Carlo check: boosted spread %.1f, boost of influence +%.1f\n", est.Spread, est.Boost)

	var stats struct {
		PoolHits     int64 `json:"pool_hits"`
		PoolMisses   int64 `json:"pool_misses"`
		PRRGenerated int64 `json:"prr_generated"`
	}
	get(base+"/v1/stats", &stats)
	fmt.Printf("server stats: %d pool hits, %d misses, %d PRR-graphs generated in total\n",
		stats.PoolHits, stats.PoolMisses, stats.PRRGenerated)
}

func call(url, body string, out any) {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(resp.Body).Decode(&e)
		log.Fatalf("%s: %s (%s)", url, resp.Status, e.Error)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		log.Fatal(err)
	}
}

func timed(f func()) float64 {
	start := time.Now()
	f()
	return float64(time.Since(start).Microseconds()) / 1e3
}
