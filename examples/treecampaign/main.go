// Treecampaign: boosting on a bidirected tree, where the problem is
// tractable enough for near-optimal answers (Section VI).
//
// Information sometimes cascades along a fixed tree-like structure —
// corporate org charts, referral chains, moderated forward-only
// channels. On bidirected trees kboost computes the boosted spread
// exactly in O(n), runs the O(kn) Greedy-Boost, and can certify
// near-optimality with the DP-Boost FPTAS: if greedy's boost is within
// (1-ε) of DP-Boost's, greedy is provably near-optimal on this
// instance (the paper's Figure 14 argument).
//
// Run with: go run ./examples/treecampaign
package main

import (
	"fmt"
	"log"
	"time"

	kboost "github.com/kboost/kboost"
)

func main() {
	// A complete binary bidirected tree with trivalency probabilities,
	// the paper's synthetic tree workload.
	g, err := kboost.GenerateBidirectedTree(2047, "binary", 2, 11)
	if err != nil {
		log.Fatal(err)
	}
	seedRes, err := kboost.SelectSeeds(g, 50, kboost.SeedOptions{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	tr, err := kboost.TreeFromGraph(g, seedRes.Seeds)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree: %d nodes, %d seeds\n\n", tr.N(), tr.NumSeeds())

	const k = 100
	t0 := time.Now()
	greedy, err := kboost.GreedyBoost(tr, k)
	if err != nil {
		log.Fatal(err)
	}
	greedyTime := time.Since(t0)

	const eps = 0.5
	t1 := time.Now()
	dp, err := kboost.DPBoost(tr, k, kboost.DPOptions{Epsilon: eps})
	if err != nil {
		log.Fatal(err)
	}
	dpTime := time.Since(t1)

	fmt.Printf("Greedy-Boost: Δ = %.4f  in %8v\n", greedy.Delta, greedyTime)
	fmt.Printf("DP-Boost:     Δ = %.4f  in %8v  (ε=%.1f, grid δ=%.2g)\n",
		dp.Delta, dpTime, eps, dp.DeltaG)

	// DP-Boost guarantees Δ_DP >= (1-ε)·OPT (for OPT >= 1), so OPT <=
	// Δ_DP/(1-ε); that upper bound certifies greedy's quality.
	optUpper := dp.Delta / (1 - eps)
	if greedy.Delta > dp.Delta {
		optUpper = greedy.Delta / (1 - eps)
	}
	fmt.Printf("\ncertificate: OPT ≤ %.4f, so Greedy-Boost achieves ≥ %.0f%% of optimal\n",
		optUpper, 100*greedy.Delta/optUpper)
	fmt.Printf("speed ratio: greedy is %.0fx faster than the DP\n",
		float64(dpTime)/float64(greedyTime))
}
