// Ltextension: does boosting transfer across diffusion models?
//
// The paper develops its algorithms for the Independent Cascade model
// and names the Linear Threshold model as future work (Section IX).
// kboost ships a boosted-LT model as an extension. This example selects
// a boost set with PRR-Boost (an IC-based algorithm) and checks how
// much of its advantage survives when the world actually diffuses by
// boosted-LT — comparing against an LT-native Monte-Carlo greedy and a
// degree heuristic.
//
// Run with: go run ./examples/ltextension
package main

import (
	"fmt"
	"log"
	"math"

	kboost "github.com/kboost/kboost"
)

func main() {
	g, err := kboost.GenerateDataset("digg", 0.008, 2, 21)
	if err != nil {
		log.Fatal(err)
	}
	seedRes, err := kboost.SelectSeeds(g, 10, kboost.SeedOptions{Seed: 21, MaxSamples: 50000})
	if err != nil {
		log.Fatal(err)
	}
	seeds := seedRes.Seeds
	fmt.Printf("network: %d users, %d edges, %d seeds\n\n", g.N(), g.M(), len(seeds))

	const k = 10
	ltOpt := kboost.LTOptions{Sims: 4000, Seed: 33}

	// IC-native choice.
	prr, err := kboost.PRRBoost(g, seeds, kboost.BoostOptions{K: k, Seed: 21, MaxSamples: 50000})
	if err != nil {
		log.Fatal(err)
	}
	icOnLT, err := kboost.LTEstimateBoost(g, seeds, prr.BoostSet, ltOpt)
	if err != nil {
		log.Fatal(err)
	}

	// LT-native greedy (Monte-Carlo, heuristic).
	ltSet, ltBoost, err := kboost.LTGreedyBoost(g, seeds, k, 40, ltOpt)
	if err != nil {
		log.Fatal(err)
	}

	// Degree heuristic, best of the four variants under LT.
	bestDeg := math.Inf(-1)
	for _, set := range kboost.HighDegreeGlobal(g, seeds, k) {
		v, err := kboost.LTEstimateBoost(g, seeds, set, ltOpt)
		if err != nil {
			log.Fatal(err)
		}
		if v > bestDeg {
			bestDeg = v
		}
	}

	// And the IC-world boost of the IC-native set, for reference.
	icBoost, err := kboost.EstimateBoost(g, seeds, prr.BoostSet, kboost.SimOptions{Sims: 8000, Seed: 33})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("boost of %d nodes under the boosted-LT model:\n", k)
	fmt.Printf("  LT-native greedy:        %6.2f  (set %v)\n", ltBoost, ltSet)
	fmt.Printf("  PRR-Boost (IC-chosen):   %6.2f\n", icOnLT)
	fmt.Printf("  best degree heuristic:   %6.2f\n", bestDeg)
	fmt.Printf("\nfor reference, the IC-world boost of the PRR-Boost set: %.2f\n", icBoost)
	fmt.Println("\ntakeaway: IC-chosen boosts carry a useful fraction of their value")
	fmt.Println("to the LT world, but a model-native selector does better — the gap")
	fmt.Println("motivates the paper's future-work direction.")
}
