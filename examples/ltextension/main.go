// Ltextension: serving boosted-LT queries from a warm engine.
//
// The paper develops its algorithms for the Independent Cascade model
// and names the Linear Threshold model as future work (Section IX).
// kboost ships a boosted-LT extension and serves it through the same
// cached Engine as the IC/PRR path: a `mode:"lt"` boost query samples a
// pool of threshold profiles once, and every later query against the
// same (graph, seed set) — other budgets k, estimates of arbitrary
// boost sets, identical repeats — reuses those sampled worlds instead
// of re-running Monte-Carlo from scratch.
//
// This example measures exactly that: a cold LT boost query against a
// fresh engine, then warm repeats and variations, printing the latency
// ratio and the engine's lt_* counters. It closes with the
// cross-model comparison the extension exists for — how an IC-chosen
// PRR-Boost set scores when the world actually diffuses by boosted LT.
//
// Run with: go run ./examples/ltextension
package main

import (
	"fmt"
	"log"
	"time"

	kboost "github.com/kboost/kboost"
)

func main() {
	g, err := kboost.GenerateDataset("digg", 0.008, 2, 21)
	if err != nil {
		log.Fatal(err)
	}
	seedRes, err := kboost.SelectSeeds(g, 10, kboost.SeedOptions{Seed: 21, MaxSamples: 50000})
	if err != nil {
		log.Fatal(err)
	}
	seeds := seedRes.Seeds
	fmt.Printf("network: %d users, %d edges, %d seeds\n\n", g.N(), g.M(), len(seeds))

	eng := kboost.NewEngine(kboost.EngineOptions{})
	if err := eng.RegisterGraph("prod", g); err != nil {
		log.Fatal(err)
	}

	const k = 10
	req := kboost.EngineBoostRequest{
		GraphID: "prod", Seeds: seeds, K: k,
		Mode: "lt", Sims: 8000, Seed: 33,
	}

	// Cold: samples 8000 threshold profiles, caches the pool, runs the
	// CELF lazy-greedy over it.
	start := time.Now()
	cold, err := eng.Boost(req)
	if err != nil {
		log.Fatal(err)
	}
	coldT := time.Since(start)
	fmt.Printf("cold  mode=lt boost: set %v, Δ̂=%.2f  (%.0f ms, %d profiles sampled)\n",
		cold.BoostSet, cold.EstBoost, float64(coldT.Microseconds())/1e3, cold.NewSamples)

	// Warm repeat: pool hit + result-cache hit, no sampling, no greedy.
	start = time.Now()
	warm, err := eng.Boost(req)
	if err != nil {
		log.Fatal(err)
	}
	warmT := time.Since(start)
	fmt.Printf("warm  mode=lt boost: cache_hit=%v result_cached=%v  (%.3f ms — %.0fx faster)\n",
		warm.CacheHit, warm.ResultCached,
		float64(warmT.Microseconds())/1e3, float64(coldT)/float64(warmT))

	// A different budget reuses the same profiles (LT pools have no k
	// budget), and a raised sims target extends the pool in place.
	req2 := req
	req2.K = 25
	if _, err := eng.Boost(req2); err != nil {
		log.Fatal(err)
	}
	req3 := req
	req3.Sims = 12000
	grown, err := eng.Boost(req3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("k=25 reused the pool; sims=12000 extended it in place (+%d profiles)\n\n", grown.NewSamples)

	// Cross-model check on the warm pool: how does the IC-native
	// PRR-Boost set fare under boosted-LT diffusion?
	prr, err := eng.Boost(kboost.EngineBoostRequest{
		GraphID: "prod", Seeds: seeds, K: k, Seed: 21, MaxSamples: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}
	icOnLT, err := eng.Estimate(kboost.EngineEstimateRequest{
		GraphID: "prod", Seeds: seeds, Boost: prr.BoostSet, Mode: "lt", Sims: 12000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("boost of %d nodes under the boosted-LT model (same profile pool):\n", k)
	fmt.Printf("  LT-native pooled greedy:  %6.2f\n", cold.EstBoost)
	fmt.Printf("  PRR-Boost (IC-chosen):    %6.2f  (estimate cache_hit=%v)\n", icOnLT.Boost, icOnLT.CacheHit)

	st := eng.Stats()
	fmt.Printf("\nengine counters: lt_boost_queries=%d lt_estimate_queries=%d "+
		"lt_pool_hits=%d lt_pool_misses=%d lt_pool_extensions=%d lt_result_hits=%d lt_profiles=%d\n",
		st.LTBoostQueries, st.LTEstimateQueries, st.LTPoolHits, st.LTPoolMisses,
		st.LTPoolExtensions, st.LTResultHits, st.LTProfiles)

	fmt.Println("\ntakeaway: IC-chosen boosts carry a useful fraction of their value")
	fmt.Println("to the LT world, but the model-native selector does better — and the")
	fmt.Println("pooled engine makes asking the LT question as cheap as the IC one.")
	fmt.Println("(Boosted LT has no approximation guarantee; both LT numbers are")
	fmt.Println("Monte-Carlo heuristics over the shared profile pool.)")
}
