// Budgetmix: how should a marketing budget be split between recruiting
// seed users (expensive: free products, sponsorships) and boosting
// ordinary users (cheap: coupons, ads)?
//
// This reproduces the scenario of Section VII-C (Figure 13): for a
// fixed budget and a seed-vs-boost cost ratio, each split first
// IMM-selects the affordable seeds, then PRR-Boosts the remaining
// budget, and measures the final boosted spread. The paper's finding —
// a mixed budget beats pure seeding — shows up clearly.
//
// Run with: go run ./examples/budgetmix
package main

import (
	"fmt"
	"log"

	kboost "github.com/kboost/kboost"
)

func main() {
	g, err := kboost.GenerateDataset("flixster", 0.01, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d edges\n", g.N(), g.M())

	// Budget buys 10 seeds; one seed costs as much as 40 boosts.
	const budgetSeeds = 10
	const costRatio = 40
	fmt.Printf("budget: %d seeds' worth, 1 seed = %d boosts\n\n", budgetSeeds, costRatio)

	points, err := kboost.BudgetAllocation(g, kboost.BudgetAllocationOptions{
		BudgetSeeds: budgetSeeds,
		CostRatio:   costRatio,
		SeedFracs:   []float64{0.2, 0.4, 0.6, 0.8, 1.0},
		Boost:       kboost.BoostOptions{Seed: 7, MaxSamples: 60000},
		Sims:        8000,
	})
	if err != nil {
		log.Fatal(err)
	}

	best := points[0]
	for _, pt := range points {
		if pt.BoostedSpread > best.BoostedSpread {
			best = pt
		}
	}
	fmt.Println("seed-budget%  #seeds  #boosted  expected spread")
	for _, pt := range points {
		marker := ""
		if pt.SeedFrac == best.SeedFrac {
			marker = "  <- best"
		}
		fmt.Printf("%11.0f%%  %6d  %8d  %15.1f%s\n",
			pt.SeedFrac*100, pt.NumSeeds, pt.NumBoost, pt.BoostedSpread, marker)
	}
	fmt.Printf("\nbest split: %.0f%% on seeds (%d seeds + %d boosts) -> spread %.1f\n",
		best.SeedFrac*100, best.NumSeeds, best.NumBoost, best.BoostedSpread)
	pure := points[len(points)-1]
	if best.SeedFrac < 1 {
		fmt.Printf("mixing beats pure seeding by %.1f users (+%.0f%%)\n",
			best.BoostedSpread-pure.BoostedSpread,
			100*(best.BoostedSpread-pure.BoostedSpread)/pure.BoostedSpread)
	}
}
