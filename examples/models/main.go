// Models: one warm engine, four diffusion models, one content knob.
//
// The engine's snapshot/pool/result-cache plumbing is written once
// against a pluggable model interface (internal/model), so asking "how
// does this campaign fare if the world diffuses differently?" is a
// one-field change on the request. This example boosts the same seed
// set under IC (the paper's PRR-Boost, with its approximation
// guarantee), boosted LT, boosted SIR (geometric infectious windows,
// tunable recovery rate), and k-threshold complex contagion — then
// re-runs the LT query for a more viral, less credible piece of
// content and shows the pools never mix.
//
// Run with: go run ./examples/models
package main

import (
	"fmt"
	"log"

	kboost "github.com/kboost/kboost"
)

func main() {
	g, err := kboost.GenerateDataset("digg", 0.008, 2, 21)
	if err != nil {
		log.Fatal(err)
	}
	seedRes, err := kboost.SelectSeeds(g, 10, kboost.SeedOptions{Seed: 21, MaxSamples: 50000})
	if err != nil {
		log.Fatal(err)
	}
	seeds := seedRes.Seeds
	fmt.Printf("network: %d users, %d edges, %d seeds\n", g.N(), g.M(), len(seeds))
	fmt.Printf("pluggable modes: %v (plus \"ic\"/\"lb\" on the PRR path)\n\n", kboost.ModelNames())

	eng := kboost.NewEngine(kboost.EngineOptions{})
	if err := eng.RegisterGraph("prod", g); err != nil {
		log.Fatal(err)
	}

	const k = 10
	base := kboost.EngineBoostRequest{
		GraphID: "prod", Seeds: seeds, K: k, Sims: 6000, Seed: 33,
	}

	// Same campaign, four worlds. Each mode samples and caches its own
	// pool; knobs like recovery/threshold are part of the cache key, so
	// distinct parameterizations never share sampled worlds.
	for _, tc := range []struct {
		label string
		mut   func(*kboost.EngineBoostRequest)
	}{
		{`ic       (PRR-Boost, guarantee)`, func(r *kboost.EngineBoostRequest) {
			r.Mode = "ic"
			r.Sims = 0
			r.MaxSamples = 50000
		}},
		{`lt       (boosted Linear Threshold)`, func(r *kboost.EngineBoostRequest) { r.Mode = "lt" }},
		{`sir r=.3 (slow recovery, long windows)`, func(r *kboost.EngineBoostRequest) {
			r.Mode = "sir"
			r.Recovery = 0.3
		}},
		{`kthresh 2 (complex contagion)`, func(r *kboost.EngineBoostRequest) {
			r.Mode = "kthresh"
			r.Threshold = 2
		}},
	} {
		req := base
		tc.mut(&req)
		res, err := eng.Boost(req)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("mode %-40s Δ̂=%6.2f  set=%v\n", tc.label, res.EstBoost, res.BoostSet)
	}

	// Content-aware transmission: virality scales every edge
	// probability, credibility scales how much of the boost uplift
	// survives. The content tag is part of the pool key — this query
	// builds a third LT pool rather than contaminating the plain one.
	viral := base
	viral.Mode = "lt"
	viral.Content = &kboost.EngineContent{Virality: 1.4, Credibility: 0.7}
	res, err := eng.Boost(viral)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlt with content{virality:1.4, credibility:0.7}: Δ̂=%.2f (cache_hit=%v — own pool)\n",
		res.EstBoost, res.CacheHit)

	st := eng.Stats()
	fmt.Println("\nper-mode traffic (sim_modes in /v1/stats):")
	for _, name := range kboost.ModelNames() {
		if ms, ok := st.SimModes[name]; ok {
			fmt.Printf("  %-8s boost_queries=%d pool_misses=%d profiles=%d\n",
				name, ms.BoostQueries, ms.PoolMisses, ms.Profiles)
		}
	}

	fmt.Println("\ntakeaway: only mode \"ic\"/\"lb\" carries the paper's guarantee; the")
	fmt.Println("pooled modes are unbiased Monte-Carlo heuristics — but the shared")
	fmt.Println("engine makes asking each scenario as cheap as the last.")
}
