// Quickstart: generate a small social network, pick influential seeds,
// then find the k users whose boosting most increases the spread.
//
// This is the library's hello-world: the viral-marketing scenario from
// the paper's introduction. A company has already recruited a handful
// of product evangelists (the seeds); it now has budget for k coupons
// (the boosts) and wants to place them where they amplify the cascade
// the most.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	kboost "github.com/kboost/kboost"
)

func main() {
	// A 1%-scale stand-in for the paper's Digg dataset: ~280 nodes with
	// realistic degree skew and influence probabilities, boosted
	// probabilities p' = 1-(1-p)^2.
	g, err := kboost.GenerateDataset("digg", 0.01, 2, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d users, %d follow edges\n", g.N(), g.M())

	// Recruit 5 evangelists with classic influence maximization.
	seedRes, err := kboost.SelectSeeds(g, 5, kboost.SeedOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("seeds %v reach ~%.0f users on their own\n",
		seedRes.Seeds, seedRes.EstInfluence)

	// Spend 20 coupons where they matter most.
	const coupons = 20
	res, err := kboost.PRRBoost(g, seedRes.Seeds, kboost.BoostOptions{
		K: coupons, Seed: 42, MaxSamples: 100000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("PRR-Boost sampled %d PRR-graphs and chose %d users to boost\n",
		res.Samples, len(res.BoostSet))

	// Verify with independent Monte-Carlo simulation.
	base, err := kboost.EstimateSpread(g, seedRes.Seeds, nil, kboost.SimOptions{Sims: 20000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	boosted, err := kboost.EstimateSpread(g, seedRes.Seeds, res.BoostSet, kboost.SimOptions{Sims: 20000, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expected spread: %.1f without coupons, %.1f with them (+%.1f, +%.0f%%)\n",
		base, boosted, boosted-base, 100*(boosted-base)/base)
}
