// Baselinerace: why not just boost the "important" users?
//
// This example pits PRR-Boost against the intuitive heuristics from the
// paper's Section VII — highest weighted degree, highest PageRank, and
// "users a seed-selection algorithm would pick next" (MoreSeeds) — on
// the same network and seed set, then Monte-Carlo-evaluates every
// choice. It reproduces the paper's core empirical claim: boost sets
// chosen by PRR-Boost achieve boosts several times larger than any
// importance heuristic, and good extra seeds are poor boost targets.
//
// Run with: go run ./examples/baselinerace
package main

import (
	"fmt"
	"log"
	"math"
	"sort"

	kboost "github.com/kboost/kboost"
)

func main() {
	g, err := kboost.GenerateDataset("twitter", 0.004, 2, 5)
	if err != nil {
		log.Fatal(err)
	}
	seedRes, err := kboost.SelectSeeds(g, 20, kboost.SeedOptions{Seed: 5, MaxSamples: 100000})
	if err != nil {
		log.Fatal(err)
	}
	seeds := seedRes.Seeds
	fmt.Printf("network: %d users, %d edges; %d seeds with influence ~%.0f\n\n",
		g.N(), g.M(), len(seeds), seedRes.EstInfluence)

	const k = 50
	sim := kboost.SimOptions{Sims: 10000, Seed: 99}
	results := map[string]float64{}

	prr, err := kboost.PRRBoost(g, seeds, kboost.BoostOptions{K: k, Seed: 5, MaxSamples: 100000})
	if err != nil {
		log.Fatal(err)
	}
	results["PRR-Boost"] = mustBoost(g, seeds, prr.BoostSet, sim)

	lb, err := kboost.PRRBoostLB(g, seeds, kboost.BoostOptions{K: k, Seed: 5, MaxSamples: 100000})
	if err != nil {
		log.Fatal(err)
	}
	results["PRR-Boost-LB"] = mustBoost(g, seeds, lb.BoostSet, sim)

	results["HighDegreeGlobal"] = bestOf(g, seeds, kboost.HighDegreeGlobal(g, seeds, k), sim)
	results["HighDegreeLocal"] = bestOf(g, seeds, kboost.HighDegreeLocal(g, seeds, k), sim)
	results["PageRank"] = mustBoost(g, seeds, kboost.PageRankBoost(g, seeds, k), sim)

	ms, err := kboost.MoreSeeds(g, seeds, k, kboost.SeedOptions{Seed: 5, MaxSamples: 100000})
	if err != nil {
		log.Fatal(err)
	}
	results["MoreSeeds"] = mustBoost(g, seeds, ms, sim)

	rows := make([]row, 0, len(results))
	for name, b := range results {
		rows = append(rows, row{name, b})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].boost > rows[j].boost })

	fmt.Printf("boost of influence with k=%d boosted users:\n", k)
	for _, r := range rows {
		bar := ""
		for i := 0; i < int(40*r.boost/rows[0].boost); i++ {
			bar += "#"
		}
		fmt.Printf("%-18s %8.1f  %s\n", r.name, r.boost, bar)
	}
	fmt.Printf("\nPRR-Boost beats the best heuristic by %.1fx\n",
		rows[0].boost/bestHeuristic(rows))
}

type row struct {
	name  string
	boost float64
}

func mustBoost(g *kboost.Graph, seeds, boost []int32, sim kboost.SimOptions) float64 {
	v, err := kboost.EstimateBoost(g, seeds, boost, sim)
	if err != nil {
		log.Fatal(err)
	}
	return v
}

func bestOf(g *kboost.Graph, seeds []int32, sets [][]int32, sim kboost.SimOptions) float64 {
	best := math.Inf(-1)
	for _, b := range sets {
		if v := mustBoost(g, seeds, b, sim); v > best {
			best = v
		}
	}
	return best
}

func bestHeuristic(rows []row) float64 {
	for _, r := range rows {
		if r.name != "PRR-Boost" && r.name != "PRR-Boost-LB" {
			return r.boost
		}
	}
	return rows[len(rows)-1].boost
}
