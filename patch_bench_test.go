package kboost

// Benchmarks for the graph-patch repair path behind
// PATCH /v1/graphs/{name}/edges. BenchmarkGraphPatchRepair measures the
// steady-state cost of migrating a warm pool across an edge delta —
// resample only the touched sketches/profiles, copy the rest — at
// several touched-edge fractions, for both pool families. It is part of
// the bench-gate set. BenchmarkGraphPatchRebuild is its ungated cold
// reference: the same delta absorbed the pre-repair way, by rebuilding
// the pool from scratch on the patched graph. The repair/rebuild ratio
// between the two is the headline number of the patch endpoint.
//
// Each pool family is measured in the regime its touched-set predicate
// operates in. PRR runs on the dense flixster stand-in the warm-query
// benchmarks use: a sketch is touched only when its own expansion
// crossed a dirty in-list, so even there a small delta touches a
// bounded slice of the pool while the cold rebuild costs seconds. LT's
// predicate is cascade-global — on flixster's supercritical cascades
// (avg out-degree × avg p > 1) every delta touches every profile and
// the engine correctly falls back to a rebuild — so LT runs on the
// sparse flickr stand-in (avg p 0.013), where influence is localized
// and incremental repair is the designed win.

import (
	"testing"

	"github.com/kboost/kboost/internal/graph"
)

// patchDeltas builds a forward/backward pair of reweight-only deltas
// touching ~frac of g's edges, spread evenly across the edge list.
// Reweights keep the topology fixed, so a benchmark can alternate
// fwd/back forever and every iteration patches the same steady-state
// graph. Edges incident to a seed or to a seed's out-neighbor are
// skipped: those nodes sit in nearly every LT profile's frontier, so a
// delta touching them repairs ~100% of profiles and the benchmark would
// measure the fallback cliff instead of the repair.
func patchDeltas(b *testing.B, g *graph.Graph, seeds []int32, frac float64) (fwd, back *graph.EdgeDelta) {
	b.Helper()
	hot := make([]bool, g.N())
	for _, s := range seeds {
		hot[s] = true
		for _, v := range g.OutTo(s) {
			hot[v] = true
		}
	}
	var cold []graph.Edge
	for _, e := range g.Edges() {
		if !hot[e.From] && !hot[e.To] {
			cold = append(cold, e)
		}
	}
	want := int(frac*float64(g.M()) + 0.5)
	if want < 1 {
		want = 1
	}
	if want > len(cold) {
		b.Fatalf("delta wants %d edges, only %d avoid the seed neighborhood", want, len(cold))
	}
	fwd, back = &graph.EdgeDelta{}, &graph.EdgeDelta{}
	for i := 0; i < want; i++ {
		e := cold[i*len(cold)/want]
		fwd.Reweight = append(fwd.Reweight,
			graph.Edge{From: e.From, To: e.To, P: e.P * 0.5, PBoost: e.PBoost * 0.5})
		back.Reweight = append(back.Reweight, e)
	}
	return fwd, back
}

// patchBenchGraph returns the graph a pool family's patch benchmarks
// run on: dense flixster for PRR, sparse flickr for LT (see the package
// comment above for why they differ).
func patchBenchGraph(b *testing.B, mode string) *graph.Graph {
	b.Helper()
	name := "flixster"
	if mode == "lt" {
		name = "flickr"
	}
	g, err := GenerateDataset(name, 0.01, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// patchBoostReq is the pool-warming query both patch benchmarks share;
// identical budgets keep the repair/rebuild ratio apples-to-apples.
// Budgets are sized so every gated sub-benchmark completes ≥ 20
// iterations at the default benchtime (repair cost scales linearly
// with the pool budget, so the ratio is budget-invariant).
func patchBoostReq(mode string) EngineBoostRequest {
	req := EngineBoostRequest{GraphID: "bench", K: 20, Seed: 7, MaxSamples: 10000}
	if testing.Short() {
		req.MaxSamples = 3000
	}
	if mode == "lt" {
		req.Mode = "lt"
		req.MaxSamples = 0
		req.Sims = 6000
		if testing.Short() {
			req.Sims = 1000
		}
	}
	return req
}

// BenchmarkGraphPatchRepair: one warm pool, b.N edge patches through
// Engine.RepairGraph, alternating a delta and its inverse. Fallback is
// disabled (threshold 1) so a drift in the touched-set predicate shows
// up as a ns/op regression in the gate rather than as a silent switch
// to rebuilds; the PoolsDropped check below makes the switch loud
// anyway. resampled/op records how many sketches/profiles each patch
// actually regenerated.
func BenchmarkGraphPatchRepair(b *testing.B) {
	run := func(b *testing.B, mode string, frac float64) {
		g := patchBenchGraph(b, mode)
		seeds := InfluentialSeeds(g, 20)
		eng := NewEngine(EngineOptions{RepairFallbackFraction: 1})
		if err := eng.RegisterGraph("bench", g); err != nil {
			b.Fatal(err)
		}
		req := patchBoostReq(mode)
		req.Seeds = seeds
		if _, err := eng.Boost(req); err != nil {
			b.Fatal(err)
		}
		fwd, back := patchDeltas(b, g, seeds, frac)
		resampled := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := fwd
			if i%2 == 1 {
				d = back
			}
			res, err := eng.RepairGraph("bench", d)
			if err != nil {
				b.Fatal(err)
			}
			if res.PoolsRepaired != 1 || res.PoolsDropped != 0 {
				b.Fatalf("patch %d: repaired %d dropped %d, want 1/0",
					i, res.PoolsRepaired, res.PoolsDropped)
			}
			resampled += res.RepairedSketches + res.RepairedProfiles
		}
		b.ReportMetric(float64(resampled)/float64(b.N), "resampled/op")
	}
	for _, tc := range []struct {
		name string
		frac float64
	}{
		{"0.5pct", 0.005},
		{"2pct", 0.02},
		{"5pct", 0.05},
	} {
		b.Run("prr/"+tc.name, func(b *testing.B) { run(b, "prr", tc.frac) })
		b.Run("lt/"+tc.name, func(b *testing.B) { run(b, "lt", tc.frac) })
	}
}

// BenchmarkGraphPatchRebuild is the cold reference for the repair
// benchmarks: absorb the same 5% delta by rebuilding the pool from
// scratch on the patched graph — the only option before the PATCH
// endpoint existed. Cold build times vary too much across runners to
// gate on, so this one stays informational (its name deliberately
// misses the Warm|PatchRepair gate filter).
func BenchmarkGraphPatchRebuild(b *testing.B) {
	run := func(b *testing.B, mode string) {
		g := patchBenchGraph(b, mode)
		seeds := InfluentialSeeds(g, 20)
		fwd, back := patchDeltas(b, g, seeds, 0.05)
		req := patchBoostReq(mode)
		req.Seeds = seeds
		cur := g
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d := fwd
			if i%2 == 1 {
				d = back
			}
			next, _, err := cur.ApplyDelta(d)
			if err != nil {
				b.Fatal(err)
			}
			cur = next
			eng := NewEngine(EngineOptions{})
			if err := eng.RegisterGraph("bench", cur); err != nil {
				b.Fatal(err)
			}
			res, err := eng.Boost(req)
			if err != nil {
				b.Fatal(err)
			}
			if res.CacheHit {
				b.Fatal("rebuild was served from a cache")
			}
		}
	}
	b.Run("prr", func(b *testing.B) { run(b, "prr") })
	b.Run("lt", func(b *testing.B) { run(b, "lt") })
}
