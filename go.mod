module github.com/kboost/kboost

go 1.22
