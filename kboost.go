// Package kboost is a Go implementation of the k-boosting problem from
// "Boosting Information Spread: An Algorithmic Approach" (Yishi Lin,
// Wei Chen, John C.S. Lui — ICDE 2017 / IEEE TKDE extended version).
//
// # The problem
//
// Classic influence maximization picks k seed users to start a cascade.
// k-boosting is complementary: the seeds S are given, and the goal is to
// pick k users to "boost" — users who, once boosted (coupons, ads,
// incentives), are more likely to be influenced by their friends. Every
// edge (u,v) carries two probabilities p(u,v) < p'(u,v); a boosted v is
// influenced by a newly-active u with probability p'(u,v). The objective
// is the boost of influence Δ_S(B) = σ_S(B) − σ_S(∅), which is
// NP-hard to maximize, #P-hard to evaluate, and — unlike the classic
// objective — neither submodular nor supermodular.
//
// # What the library provides
//
//   - PRRBoost and PRRBoostLB: the paper's approximation algorithms for
//     general graphs, built on Potentially Reverse Reachable graphs, the
//     IMM sampling machinery, and the sandwich approximation. Both carry
//     a data-dependent factor (1−1/e−ε)·μ(B*)/Δ_S(B*).
//   - GreedyBoost and DPBoost for bidirected trees: an O(kn) greedy
//     using an O(n) exact computation of the boosted spread, and a
//     rounded dynamic program that is an FPTAS.
//   - Classic influence maximization (SelectSeeds, RR-set/IMM based),
//     used to pick seed sets and as the MoreSeeds baseline.
//   - The paper's heuristic baselines (HighDegree variants, PageRank,
//     MoreSeeds) for comparison.
//   - Monte-Carlo estimation of spreads and boosts under the influence
//     boosting model, exact enumeration for small graphs, synthetic
//     graph/tree generators and scaled stand-ins for the paper's
//     datasets, and an experiment harness regenerating every table and
//     figure of the paper's evaluation (cmd/boostexp).
//
// # Quick start
//
//	g, _ := kboost.GenerateDataset("digg", 0.01, 2, 1) // 1% scale stand-in
//	seeds, _ := kboost.SelectSeeds(g, 10, kboost.SeedOptions{})
//	res, _ := kboost.PRRBoost(g, seeds.Seeds, kboost.BoostOptions{K: 50})
//	boost, _ := kboost.EstimateBoost(g, seeds.Seeds, res.BoostSet, kboost.SimOptions{})
//	fmt.Printf("boosting %d users raises the spread by %.1f\n", 50, boost)
//
// All randomized components take explicit seeds and are deterministic
// for a fixed (seed, workers) pair.
//
// # Serving repeated queries: the Engine
//
// PRRBoost rebuilds its PRR-graph pool on every call. For workloads
// that issue many what-if queries over a fixed network — different k,
// different seed sets, tighter ε — the Engine amortizes that cost: it
// holds registered graph snapshots and an LRU cache of PRR pools
// (bounded by entry count and by exact resident pool bytes — pool
// storage is arena-backed, flat arrays rather than per-sketch heap
// objects, so the byte accounting matches real memory), deduplicates
// concurrent identical queries, and grows a cached pool in place when a
// later query needs more samples. Pool growth itself is sharded: each
// worker samples into a private arena, merged in deterministic worker
// order, so a pool's contents are bit-identical for any fixed
// (seed, workers) pair regardless of scheduling. Warm selection is
// incremental too: each pool maintains a persistent Δ̂ selection index,
// concurrent warm queries on one pool select in parallel, and a
// per-pool result cache keyed by (pool generation, k) lets an identical
// repeat query skip selection entirely (ResultCached reports this).
//
//	eng := kboost.NewEngine(kboost.EngineOptions{})
//	_ = eng.RegisterGraph("prod", g)
//	res, _ := eng.Boost(kboost.EngineBoostRequest{
//		GraphID: "prod", Seeds: seeds, K: 50,
//	})
//	warm, _ := eng.Boost(kboost.EngineBoostRequest{ // served from cache
//		GraphID: "prod", Seeds: seeds, K: 50,
//	})
//	fmt.Println(warm.CacheHit, warm.NewSamples) // true 0
//
// The Engine also serves pluggable pooled diffusion models: a boost
// query with Mode "lt" (boosted Linear Threshold, see LTPool), "sir"
// (boosted SIR epidemic percolation, Recovery knob) or "kthresh"
// (k-threshold complex contagion, Threshold knob) runs the pooled
// Monte-Carlo greedy over a cached pool of pre-sampled possible worlds,
// reusing sampled worlds across queries the same way PRR pools are
// reused — with the caveat that the pooled models carry no
// approximation guarantee. Requests may additionally attach an
// EngineContent modifier (virality/credibility scalars) to model
// content-dependent transmission; distinct content never shares
// sampled worlds.
//
// Estimates are latency-tiered: an EngineEstimateRequest with
// MaxLatencyMS or MaxError set is served by the cheapest of a
// closed-form two-hop approximation (microseconds, pool-free, no
// guarantee), a small Monte-Carlo sample with a confidence interval,
// or the full evaluation — calibrated per graph snapshot and mode.
// When a hard latency cap forces a cheaper tier than the error target
// fits, the result's ErrorTargetMet field reports the sacrifice.
//
// Graphs served by an Engine are live: UploadGraph installs an
// immutable snapshot under a monotonically increasing version
// (replacing any previous snapshot of the same id), DeleteGraph removes
// one, and every cached pool and result is keyed to the snapshot
// version it was computed against — a replacement atomically
// invalidates the replaced version's warm state, so no query ever mixes
// two snapshots.
//
// cmd/kboostd wraps the same Engine in an HTTP JSON API (POST
// /v1/boost, /v1/seeds, /v1/estimate, GET /v1/stats, plus the
// bearer-token-gated graph lifecycle under /v1/graphs); NewEngineServer
// exposes that handler for embedding.
package kboost

import (
	"fmt"
	"io"
	"os"

	"github.com/kboost/kboost/internal/baselines"
	"github.com/kboost/kboost/internal/core"
	"github.com/kboost/kboost/internal/dataset"
	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/engine"
	"github.com/kboost/kboost/internal/exact"
	"github.com/kboost/kboost/internal/gen"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/rrset"
	"github.com/kboost/kboost/internal/tree"
)

// Graph is a directed influence graph with dual edge probabilities
// (base and boosted) in CSR form. Build one with NewBuilder, load one
// with ReadGraph*, or generate one with GenerateDataset / the gen
// helpers.
type Graph = graph.Graph

// Edge is one directed influence edge.
type Edge = graph.Edge

// Builder incrementally constructs a Graph.
type Builder = graph.Builder

// NewBuilder returns a Builder for a graph with n nodes.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// FromEdges builds a Graph from an edge list.
func FromEdges(n int, edges []Edge) (*Graph, error) { return graph.FromEdges(n, edges) }

// ReadGraphText parses the text interchange format ("n m" header, then
// "from to p pBoost" lines).
func ReadGraphText(r io.Reader) (*Graph, error) { return graph.ReadText(r) }

// ReadGraphBinary parses the compact binary format.
func ReadGraphBinary(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// GraphReadLimits bounds what the graph codecs will ingest before any
// size-proportional allocation happens; always set both fields when
// parsing untrusted input.
type GraphReadLimits = graph.ReadLimits

// ReadGraphTextLimited is ReadGraphText with ingestion limits enforced
// before allocation.
func ReadGraphTextLimited(r io.Reader, lim GraphReadLimits) (*Graph, error) {
	return graph.ReadTextLimited(r, lim)
}

// ReadGraphBinaryLimited is ReadGraphBinary with ingestion limits
// enforced before allocation.
func ReadGraphBinaryLimited(r io.Reader, lim GraphReadLimits) (*Graph, error) {
	return graph.ReadBinaryLimited(r, lim)
}

// LoadGraph opens path and parses it, choosing the codec by a ".bin"
// suffix sniff on the magic bytes.
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("kboost: reading %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if string(magic[:]) == "KBG1" {
		return graph.ReadBinary(f)
	}
	return graph.ReadText(f)
}

// ReadEdgeList ingests a plain "from to" edge list (SNAP-style network
// dump) and assigns influence probabilities with the named model:
// "trivalency", "wc" (weighted cascade), "const:<p>" or "expmean:<m>",
// with boosted probabilities p' = 1-(1-p)^beta. Node ids may be sparse;
// the returned slice maps new dense ids back to the original ids.
func ReadEdgeList(r io.Reader, probModel string, beta float64, seed uint64) (*Graph, []int64, error) {
	assign, err := gen.ParseProbModel(probModel)
	if err != nil {
		return nil, nil, err
	}
	return gen.ReadEdgeList(r, assign, beta, rng.New(seed))
}

// GenerateDataset builds a scaled synthetic stand-in for one of the
// paper's four datasets ("digg", "flixster", "twitter", "flickr") with
// boosting parameter beta (p' = 1-(1-p)^beta).
func GenerateDataset(name string, scale, beta float64, seed uint64) (*Graph, error) {
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	return spec.Generate(scale, beta, seed)
}

// DatasetNames lists the available dataset stand-ins.
func DatasetNames() []string {
	names := make([]string, len(dataset.All))
	for i, s := range dataset.All {
		names[i] = s.Name
	}
	return names
}

// InfluentialSeeds returns count high-out-weight nodes (a cheap proxy
// ordering; use SelectSeeds for the IMM selection).
func InfluentialSeeds(g *Graph, count int) []int32 { return dataset.InfluentialSeeds(g, count) }

// RandomSeeds returns count uniformly random distinct seeds.
func RandomSeeds(g *Graph, count int, seed uint64) []int32 {
	return dataset.RandomSeeds(g, count, seed)
}

// GenerateBidirectedTree builds a random bidirected tree with n nodes
// using trivalency probabilities {0.1, 0.01, 0.001} and boosting
// parameter beta, mirroring the paper's synthetic tree setup. shape is
// "binary" (complete binary tree) or "random".
func GenerateBidirectedTree(n int, shape string, beta float64, seed uint64) (*Graph, error) {
	r := rng.New(seed)
	var parents []int32
	switch shape {
	case "binary":
		parents = gen.CompleteBinaryTreeParents(n)
	case "random":
		var err error
		parents, err = gen.RandomTreeParents(n, 0, r)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("kboost: unknown tree shape %q (want binary or random)", shape)
	}
	return gen.BidirectedTree(parents, gen.Trivalency(), beta, r)
}

// --- boosting on general graphs ---

// BoostOptions configures PRRBoost / PRRBoostLB.
type BoostOptions = core.Options

// BoostResult reports a boosting run.
type BoostResult = core.Result

// PRRBoost runs the paper's Algorithm 2: PRR-graph sampling sized by
// IMM, greedy maximization of both the submodular lower bound μ and the
// true objective Δ̂, and the sandwich choice between them.
func PRRBoost(g *Graph, seeds []int32, opt BoostOptions) (*BoostResult, error) {
	return core.PRRBoost(g, seeds, opt)
}

// PRRBoostLB is the lower-bound-only variant: same approximation
// factor, faster and leaner (critical nodes only).
func PRRBoostLB(g *Graph, seeds []int32, opt BoostOptions) (*BoostResult, error) {
	return core.PRRBoostLB(g, seeds, opt)
}

// SandwichRatio estimates μ̂(B)/Δ̂(B), the data-dependent factor in the
// approximation guarantee, on a fresh PRR-graph pool.
func SandwichRatio(g *Graph, seeds, boost []int32, samples int, opt BoostOptions) (mu, delta, ratio float64, err error) {
	return core.SandwichRatio(g, seeds, boost, samples, opt)
}

// BudgetAllocationOptions configures the seeding-vs-boosting sweep.
type BudgetAllocationOptions = core.BudgetAllocationOptions

// MixPoint is one evaluated budget split.
type MixPoint = core.MixPoint

// BudgetAllocation explores spending a budget on seeds vs boosts
// (Section VII-C): for each fraction it IMM-selects seeds, PRR-Boosts
// the remainder, and estimates the boosted spread.
func BudgetAllocation(g *Graph, opt BudgetAllocationOptions) ([]MixPoint, error) {
	return core.BudgetAllocation(g, opt)
}

// --- the query-serving engine ---

// Engine is a long-lived, concurrency-safe boosting service: it holds
// registered graph snapshots and a bounded LRU cache of PRR-graph
// pools so repeated queries skip the sampling phase. See the package
// doc's "Serving repeated queries" section.
type Engine = engine.Engine

// EngineOptions configures NewEngine.
type EngineOptions = engine.Options

// EngineStats is a snapshot of an Engine's cache and query counters.
type EngineStats = engine.Stats

// EngineBoostRequest is one boosting query against a registered graph.
type EngineBoostRequest = engine.BoostRequest

// EngineBoostResult is a BoostResult plus cache provenance (CacheHit,
// NewSamples, ...).
type EngineBoostResult = engine.BoostResult

// EngineSeedsRequest asks an Engine for IMM-selected seeds.
type EngineSeedsRequest = engine.SeedsRequest

// EngineEstimateRequest asks an Engine for Monte-Carlo estimates.
// Setting MaxLatencyMS or MaxError opts into the tiered read path:
// the Engine serves the cheapest of three estimators (closed-form /
// small-sample / full) consistent with the knobs.
type EngineEstimateRequest = engine.EstimateRequest

// EngineEstimateResult reports them, plus which tier served the query
// and (for tier 1) a confidence interval.
type EngineEstimateResult = engine.EstimateResult

// EngineEstimateCI is tier 1's uncertainty report for the headline
// quantity of a tiered estimate.
type EngineEstimateCI = engine.EstimateCI

// EngineGraphInfo describes one registered snapshot (id, version,
// size), as listed by Engine.GraphInfos and GET /v1/graphs.
type EngineGraphInfo = engine.GraphInfo

// EngineUploadResult reports an accepted Engine.UploadGraph snapshot:
// its new version, whether it replaced a live snapshot, and how much
// warm pool state the replacement invalidated.
type EngineUploadResult = engine.UploadResult

// EdgeDelta is a batch of edge mutations (add / remove / reweight)
// applied to a registered snapshot by Engine.RepairGraph or PATCH
// /v1/graphs/{name}/edges.
type EdgeDelta = graph.EdgeDelta

// EngineRepairResult reports an accepted Engine.RepairGraph patch: the
// patched snapshot's descriptor, the delta's shape, and how the old
// version's cached pools were migrated (repaired vs dropped).
type EngineRepairResult = engine.RepairResult

// ErrUnknownGraph is returned (wrapped) by Engine methods when a
// request names a graph id that was never registered.
var ErrUnknownGraph = engine.ErrUnknownGraph

// ErrGraphChanged is returned (wrapped) by Engine.RepairGraph when the
// snapshot was replaced or deleted while the delta was being applied.
var ErrGraphChanged = engine.ErrGraphChanged

// NewEngine creates an Engine.
func NewEngine(opt EngineOptions) *Engine { return engine.New(opt) }

// EngineServer is the HTTP front end used by cmd/kboostd: POST
// /v1/boost, /v1/seeds, /v1/estimate and GET /v1/stats with JSON
// bodies, plus the graph lifecycle endpoints (GET /v1/graphs,
// GET/POST/PUT/DELETE /v1/graphs/{name}, PATCH
// /v1/graphs/{name}/edges; mutation requires the configured bearer
// token). It implements http.Handler.
type EngineServer = engine.Server

// EngineServerOptions configures NewEngineServer.
type EngineServerOptions = engine.ServerOptions

// NewEngineServer wraps an Engine in the HTTP front end.
func NewEngineServer(e *Engine, opt EngineServerOptions) *EngineServer {
	return engine.NewServer(e, opt)
}

// DefaultMaxInFlightCold and DefaultMaxInFlightWarm are the admission
// bounds kboostd applies unless overridden by flag; the library default
// (zero EngineServerOptions fields) leaves both lanes unbounded.
func DefaultMaxInFlightCold() int { return engine.DefaultMaxInFlightCold() }
func DefaultMaxInFlightWarm() int { return engine.DefaultMaxInFlightWarm() }

// --- classic influence maximization ---

// SeedOptions configures SelectSeeds.
type SeedOptions = rrset.Options

// SeedResult reports a seed selection.
type SeedResult = rrset.Result

// SelectSeeds runs RR-set/IMM influence maximization: k seeds with a
// (1-1/e-ε) guarantee with probability 1-1/n^ℓ.
func SelectSeeds(g *Graph, k int, opt SeedOptions) (SeedResult, error) {
	return rrset.SelectSeeds(g, k, opt)
}

// --- baselines ---

// HighDegreeGlobal returns the four weighted-degree candidate boost
// sets of the paper's HighDegreeGlobal baseline.
func HighDegreeGlobal(g *Graph, seeds []int32, k int) [][]int32 {
	return baselines.HighDegreeGlobal(g, seeds, k)
}

// HighDegreeLocal is HighDegreeGlobal restricted to nodes near seeds.
func HighDegreeLocal(g *Graph, seeds []int32, k int) [][]int32 {
	return baselines.HighDegreeLocal(g, seeds, k)
}

// PageRankBoost returns the top-k non-seed nodes by influence-PageRank.
func PageRankBoost(g *Graph, seeds []int32, k int) []int32 {
	return baselines.PageRankBoost(g, seeds, k, baselines.PageRankOptions{})
}

// MoreSeeds selects k extra influence-maximizing seeds and returns them
// as a (poor, per the paper) boost set.
func MoreSeeds(g *Graph, seeds []int32, k int, opt SeedOptions) ([]int32, error) {
	return baselines.MoreSeeds(g, seeds, k, opt)
}

// --- simulation ---

// SimOptions configures Monte-Carlo estimation.
type SimOptions = diffusion.Options

// EstimateSpread estimates σ_S(B), the expected boosted spread. boost
// may be nil for the plain IC spread.
func EstimateSpread(g *Graph, seeds, boost []int32, opt SimOptions) (float64, error) {
	return diffusion.EstimateSpread(g, seeds, boost, opt)
}

// EstimateBoost estimates Δ_S(B) with coupled possible worlds (much
// lower variance than differencing two spread estimates).
func EstimateBoost(g *Graph, seeds, boost []int32, opt SimOptions) (float64, error) {
	return diffusion.EstimateBoost(g, seeds, boost, opt)
}

// ExactSpread computes σ_S(B) by possible-world enumeration. It errors
// on graphs with more than exact.MaxEdges (16) edges; it exists as
// ground truth for tests and tiny examples.
func ExactSpread(g *Graph, seeds, boost []int32) (float64, error) {
	return exact.Spread(g, seeds, boost)
}

// BoostTarget selects the boosting variant: BoostReceivers is the
// paper's Definition 1 (boosted users are more easily influenced);
// BoostSenders is the remark's symmetric variant (boosted users are
// more influential).
type BoostTarget = diffusion.BoostTarget

// The two boosting variants.
const (
	BoostReceivers = diffusion.BoostReceivers
	BoostSenders   = diffusion.BoostSenders
)

// EstimateSpreadTarget estimates σ_S(B) under the chosen boost variant.
func EstimateSpreadTarget(g *Graph, seeds, boost []int32, target BoostTarget, opt SimOptions) (float64, error) {
	return diffusion.EstimateSpreadTarget(g, seeds, boost, target, opt)
}

// EstimateBoostTarget estimates Δ_S(B) under the chosen boost variant.
func EstimateBoostTarget(g *Graph, seeds, boost []int32, target BoostTarget, opt SimOptions) (float64, error) {
	return diffusion.EstimateBoostTarget(g, seeds, boost, target, opt)
}

// --- bidirected trees ---

// Tree is a bidirected tree with seed annotations.
type Tree = tree.Tree

// TreeFromGraph validates that g is a bidirected tree and converts it.
func TreeFromGraph(g *Graph, seeds []int32) (*Tree, error) { return tree.FromGraph(g, seeds) }

// TreeEvaluator computes exact boosted spreads on a tree in O(n).
type TreeEvaluator = tree.Evaluator

// NewTreeEvaluator returns an evaluator for t.
func NewTreeEvaluator(t *Tree) *TreeEvaluator { return tree.NewEvaluator(t) }

// GreedyResult reports a GreedyBoost run.
type GreedyResult = tree.GreedyResult

// GreedyBoost runs the paper's O(kn) tree greedy.
func GreedyBoost(t *Tree, k int) (*GreedyResult, error) { return tree.GreedyBoost(t, k) }

// DPOptions configures DPBoost.
type DPOptions = tree.DPOptions

// DPResult reports a DPBoost run.
type DPResult = tree.DPResult

// DPBoost runs the rounded dynamic program (FPTAS): the returned set
// satisfies Δ(B̃) ≥ OPT − ε·max(LB,1), i.e. (1−ε)·OPT when OPT ≥ 1.
func DPBoost(t *Tree, k int, opt DPOptions) (*DPResult, error) { return tree.DPBoost(t, k, opt) }
