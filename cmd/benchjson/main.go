// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, one object per benchmark result with the
// parsed ns/op, the -benchmem allocation columns (bytes_per_op,
// allocs_per_op) and any extra ReportMetric pairs. The Makefile's bench
// target uses it to emit BENCH_select.json so selection-performance
// regressions are diffable across commits.
//
//	go test -run '^$' -bench SelectDeltaWarm -benchmem ./internal/prr | benchjson
//
// With -baseline it instead compares a fresh JSON file against a
// committed baseline and fails on ns/op or allocs/op regressions — the
// CI gate:
//
//	benchjson -baseline BENCH_select.json -current BENCH_fresh.json \
//	          -filter 'Warm|PatchRepair' -max-regress 0.25 -max-alloc-regress 0.25
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// BytesPerOp and AllocsPerOp are the -benchmem columns; zero when a
	// benchmark was run without it.
	BytesPerOp  float64            `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	fs := flag.NewFlagSet("benchjson", flag.ExitOnError)
	var (
		baseline        = fs.String("baseline", "", "committed baseline JSON; switches to compare mode")
		current         = fs.String("current", "", "fresh JSON to compare against -baseline")
		filter          = fs.String("filter", "", "regexp selecting which benchmarks the compare gate covers")
		maxRegress      = fs.Float64("max-regress", 0.25, "maximum tolerated fractional ns/op regression")
		maxAllocRegress = fs.Float64("max-alloc-regress", 0.25, "maximum tolerated fractional allocs/op regression (negative disables the alloc gate)")
	)
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	var err error
	if *baseline != "" {
		err = compare(*baseline, *current, *filter, *maxRegress, *maxAllocRegress, os.Stdout)
	} else {
		err = run()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: skipping unparseable line: %s\n", line)
			continue
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName/sub-8   1114   1048074 ns/op   2048 B/op   12 allocs/op   12.5 extra/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Name: fields[0], Iterations: iters}
	// The rest of the line is (value, unit) pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			sawNs = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = make(map[string]float64)
			}
			res.Metrics[unit] = v
		}
	}
	return res, sawNs
}
