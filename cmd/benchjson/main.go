// Command benchjson converts `go test -bench` text output on stdin
// into a JSON array on stdout, one object per benchmark result with the
// parsed ns/op and any extra ReportMetric pairs. The Makefile's bench
// target uses it to emit BENCH_select.json so selection-performance
// regressions are diffable across commits.
//
//	go test -run '^$' -bench SelectDeltaWarm ./internal/prr | benchjson
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run() error {
	var results []result
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		res, ok := parseLine(line)
		if !ok {
			fmt.Fprintf(os.Stderr, "benchjson: skipping unparseable line: %s\n", line)
			continue
		}
		results = append(results, res)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(results)
}

// parseLine parses one benchmark result line:
//
//	BenchmarkName/sub-8   1114   1048074 ns/op   12.5 extra/op
func parseLine(line string) (result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return result{}, false
	}
	res := result{Name: fields[0], Iterations: iters}
	// The rest of the line is (value, unit) pairs.
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			res.NsPerOp = v
			sawNs = true
			continue
		}
		if res.Metrics == nil {
			res.Metrics = make(map[string]float64)
		}
		res.Metrics[unit] = v
	}
	return res, sawNs
}
