package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseLineBenchmem(t *testing.T) {
	res, ok := parseLine("BenchmarkExtendIncremental/oneshot-8   25   44009638 ns/op   1710227 B/op   1509 allocs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if res.Name != "BenchmarkExtendIncremental/oneshot-8" || res.Iterations != 25 {
		t.Fatalf("bad header: %+v", res)
	}
	if res.NsPerOp != 44009638 || res.BytesPerOp != 1710227 || res.AllocsPerOp != 1509 {
		t.Fatalf("bad columns: %+v", res)
	}
	if len(res.Metrics) != 0 {
		t.Fatalf("benchmem columns leaked into metrics: %+v", res.Metrics)
	}
}

func TestParseLineExtraMetric(t *testing.T) {
	res, ok := parseLine("BenchmarkPRREval   100   26491 ns/op   479.0 graphs/op")
	if !ok {
		t.Fatal("line did not parse")
	}
	if res.Metrics["graphs/op"] != 479 {
		t.Fatalf("metrics = %+v", res.Metrics)
	}
}

func TestNormalizeName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo/sub-8":    "BenchmarkFoo/sub",
		"BenchmarkFoo-16":       "BenchmarkFoo",
		"BenchmarkFoo":          "BenchmarkFoo",
		"BenchmarkFoo/warm-k20": "BenchmarkFoo/warm-k20", // non-numeric suffix kept
		"BenchmarkFoo-":         "BenchmarkFoo-",
	}
	for in, want := range cases {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func writeJSON(t *testing.T, dir, name, content string) string {
	t.Helper()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCompareGate(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 1000},
		{"name": "BenchmarkWarmB-8", "iterations": 10, "ns_per_op": 2000},
		{"name": "BenchmarkColdC-8", "iterations": 10, "ns_per_op": 50}
	]`)

	// Within the gate: 20% slower on a 25% budget, different GOMAXPROCS
	// suffix, and a new benchmark with no baseline.
	cur := writeJSON(t, dir, "ok.json", `[
		{"name": "BenchmarkWarmA-16", "iterations": 10, "ns_per_op": 1200},
		{"name": "BenchmarkWarmB-16", "iterations": 10, "ns_per_op": 1500},
		{"name": "BenchmarkWarmNew-16", "iterations": 10, "ns_per_op": 9999}
	]`)
	if err := compare(base, cur, "Warm", 0.25, 0.25, &strings.Builder{}); err != nil {
		t.Fatalf("within-gate compare failed: %v", err)
	}

	// Beyond the gate: 50% slower must fail, and the failure must name
	// the offender.
	bad := writeJSON(t, dir, "bad.json", `[
		{"name": "BenchmarkWarmA-16", "iterations": 10, "ns_per_op": 1500},
		{"name": "BenchmarkColdC-16", "iterations": 10, "ns_per_op": 500}
	]`)
	err := compare(base, bad, "Warm", 0.25, 0.25, &strings.Builder{})
	if err == nil {
		t.Fatal("regression passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkWarmA") {
		t.Fatalf("error does not name the regression: %v", err)
	}
	// The filter must exclude the (also regressed) cold benchmark.
	if strings.Contains(err.Error(), "ColdC") {
		t.Fatalf("filter leaked cold benchmarks into the gate: %v", err)
	}

	// No overlap at all is an error, not a silent pass.
	if err := compare(base, cur, "NoSuchBench", 0.25, 0.25, &strings.Builder{}); err == nil {
		t.Fatal("empty comparison passed the gate")
	}

	// The filter is a regexp: an alternation covers disjoint benchmark
	// families (the Makefile gates on 'Warm|PatchRepair'), and a bad
	// pattern is an error rather than a match-nothing pass.
	err = compare(base, bad, "Warm|ColdC", 0.25, 0.25, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "ColdC") {
		t.Fatalf("alternation filter did not gate both families: %v", err)
	}
	if err := compare(base, bad, "Warm|(", 0.25, 0.25, &strings.Builder{}); err == nil {
		t.Fatal("invalid filter regexp passed the gate")
	}
}

func TestCompareAllocGate(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 1000, "allocs_per_op": 8},
		{"name": "BenchmarkWarmB-8", "iterations": 10, "ns_per_op": 1000}
	]`)

	// Allocs within the 25% budget (8 -> 10), zero-alloc stays zero.
	ok := writeJSON(t, dir, "ok.json", `[
		{"name": "BenchmarkWarmA-16", "iterations": 10, "ns_per_op": 1000, "allocs_per_op": 10},
		{"name": "BenchmarkWarmB-16", "iterations": 10, "ns_per_op": 1000}
	]`)
	if err := compare(base, ok, "Warm", 0.25, 0.25, &strings.Builder{}); err != nil {
		t.Fatalf("within-gate alloc compare failed: %v", err)
	}

	// 8 -> 12 allocs/op is +50%: beyond the gate even with flat ns/op.
	grew := writeJSON(t, dir, "grew.json", `[
		{"name": "BenchmarkWarmA-16", "iterations": 10, "ns_per_op": 1000, "allocs_per_op": 12}
	]`)
	err := compare(base, grew, "Warm", 0.25, 0.25, &strings.Builder{})
	if err == nil {
		t.Fatal("alloc regression passed the gate")
	}
	if !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("error does not mention allocs: %v", err)
	}

	// A formerly alloc-free benchmark picking up any allocation fails.
	leaked := writeJSON(t, dir, "leaked.json", `[
		{"name": "BenchmarkWarmB-16", "iterations": 10, "ns_per_op": 1000, "allocs_per_op": 1}
	]`)
	if err := compare(base, leaked, "Warm", 0.25, 0.25, &strings.Builder{}); err == nil {
		t.Fatal("alloc-free benchmark grew an allocation and passed the gate")
	}

	// Negative budget disables the alloc gate entirely.
	if err := compare(base, grew, "Warm", 0.25, -1, &strings.Builder{}); err != nil {
		t.Fatalf("disabled alloc gate still failed: %v", err)
	}
}

func TestLoadResultsAggregation(t *testing.T) {
	dir := t.TempDir()
	path := writeJSON(t, dir, "multi.json", `[
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 1500},
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 900},
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 1100}
	]`)
	res, err := loadResults(path, pickMin)
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkWarmA"].NsPerOp; got != 900 {
		t.Fatalf("pickMin kept %v ns/op, want the 900 minimum", got)
	}
	res, err = loadResults(path, pickMedian)
	if err != nil {
		t.Fatal(err)
	}
	if got := res["BenchmarkWarmA"].NsPerOp; got != 1100 {
		t.Fatalf("pickMedian kept %v ns/op, want the 1100 median", got)
	}
}

// The gate compares min-of-current against median-of-baseline: one
// lucky baseline run out of three must not tighten the gate.
func TestCompareGateMedianBaseline(t *testing.T) {
	dir := t.TempDir()
	base := writeJSON(t, dir, "base.json", `[
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 700},
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 1000},
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 1050}
	]`)
	// 1200 is +71% over the lucky 700 but +20% over the 1000 median.
	cur := writeJSON(t, dir, "cur.json", `[
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 1400},
		{"name": "BenchmarkWarmA-8", "iterations": 10, "ns_per_op": 1200}
	]`)
	if err := compare(base, cur, "Warm", 0.25, 0.25, &strings.Builder{}); err != nil {
		t.Fatalf("min-vs-median compare failed: %v", err)
	}
}
