package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strings"
)

// compare is the bench-gate: it loads two benchjson outputs and fails
// (returns an error) when any benchmark present in both files — and
// matching the filter regexp — regressed in ns/op by more than
// maxRegress, or in allocs_per_op by more than maxAllocRegress.
// Benchmarks present on only one side are reported but never fail the
// gate, so new benchmarks cannot break CI before a baseline lands. The
// committed baseline is recorded on whatever machine last ran `make
// bench`, so cross-machine comparisons carry hardware skew: the gate is
// restricted to cheap warm-path benchmarks (CI runners are at least as
// parallel as the baseline machines, so skew shows up as headroom, not
// false failures) and the regression budget absorbs the rest. Re-run
// `make bench` to re-baseline after an intentional change.
//
// The alloc gate complements the ns/op gate: allocation counts are
// exact, not timing-noise-dependent, so it catches an accidental
// per-call allocation on a warm path even on a noisy runner. A
// benchmark whose baseline reports zero allocs/op must stay at zero
// (the bench target always records with -benchmem, so zero means
// zero-alloc, not unmeasured); with maxAllocRegress < 0 the alloc gate
// is disabled entirely.
//
// Benchmark names carry a -GOMAXPROCS suffix (e.g. "/incremental-8")
// that varies across machines; names are normalized before matching so
// a laptop baseline still gates a CI runner.
func compare(baselinePath, currentPath, filter string, maxRegress, maxAllocRegress float64, w io.Writer) error {
	if currentPath == "" {
		return fmt.Errorf("compare mode needs -current")
	}
	base, err := loadResults(baselinePath, pickMedian)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := loadResults(currentPath, pickMin)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}
	keep, err := regexp.Compile(filter) // "" matches everything
	if err != nil {
		return fmt.Errorf("filter: %w", err)
	}

	var regressions []string
	compared := 0
	for name, c := range cur {
		if !keep.MatchString(name) {
			continue
		}
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "benchjson: %s: no baseline entry, skipping\n", name)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > 1+maxRegress {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)",
				name, b.NsPerOp, c.NsPerOp, (ratio-1)*100))
		}
		if maxAllocRegress >= 0 {
			switch {
			case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: 0 -> %.0f allocs/op (was alloc-free)",
					name, c.AllocsPerOp))
			case b.AllocsPerOp > 0 && c.AllocsPerOp/b.AllocsPerOp > 1+maxAllocRegress:
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f allocs/op (%+.1f%%)",
					name, b.AllocsPerOp, c.AllocsPerOp, (c.AllocsPerOp/b.AllocsPerOp-1)*100))
			}
		}
		fmt.Fprintf(w, "benchjson: %-50s %12.0f -> %12.0f ns/op  %+7.1f%%  %4.0f -> %4.0f allocs/op  %s\n",
			name, b.NsPerOp, c.NsPerOp, (ratio-1)*100, b.AllocsPerOp, c.AllocsPerOp, status)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks matched filter %q in both files", filter)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("regression beyond the gate (%.0f%% ns/op, %.0f%% allocs/op) on:\n  %s",
			maxRegress*100, maxAllocRegress*100, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "benchjson: %d benchmark(s) within the %.0f%% gate\n", compared, maxRegress*100)
	return nil
}

// loadResults reads a benchjson output file into a map keyed by the
// normalized benchmark name, collapsing repeated entries (go test
// -count=N) with pick. The two sides of the gate aggregate
// differently: the current side keeps the minimum ns/op (the fastest
// run is the least-noisy estimate of a benchmark's true cost, so a
// scheduler hiccup in one run cannot read as a regression), while the
// baseline keeps the median (a lucky baseline run would silently
// tighten the gate for every later commit — the comparison is "is even
// the fastest fresh run more than the budget slower than a typical
// baseline run?").
func loadResults(path string, pick func([]result) result) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, err
	}
	byName := make(map[string][]result, len(results))
	for _, r := range results {
		name := normalizeName(r.Name)
		byName[name] = append(byName[name], r)
	}
	out := make(map[string]result, len(byName))
	for name, rs := range byName {
		out[name] = pick(rs)
	}
	return out, nil
}

// pickMin returns the entry with the lowest ns/op.
func pickMin(rs []result) result {
	best := rs[0]
	for _, r := range rs[1:] {
		if r.NsPerOp < best.NsPerOp {
			best = r
		}
	}
	return best
}

// pickMedian returns the entry with the median ns/op (lower-middle for
// an even count, so a 2-entry file behaves like pickMin).
func pickMedian(rs []result) result {
	sorted := append([]result(nil), rs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NsPerOp < sorted[j].NsPerOp })
	return sorted[(len(sorted)-1)/2]
}

// normalizeName strips the trailing -GOMAXPROCS suffix go test appends
// to benchmark names ("BenchmarkFoo/sub-8" -> "BenchmarkFoo/sub").
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}
