package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// compare is the bench-gate: it loads two benchjson outputs and fails
// (returns an error) when any benchmark present in both files — and
// matching the filter substring — regressed in ns/op by more than
// maxRegress, or in allocs_per_op by more than maxAllocRegress.
// Benchmarks present on only one side are reported but never fail the
// gate, so new benchmarks cannot break CI before a baseline lands. The
// committed baseline is recorded on whatever machine last ran `make
// bench`, so cross-machine comparisons carry hardware skew: the gate is
// restricted to cheap warm-path benchmarks (CI runners are at least as
// parallel as the baseline machines, so skew shows up as headroom, not
// false failures) and the regression budget absorbs the rest. Re-run
// `make bench` to re-baseline after an intentional change.
//
// The alloc gate complements the ns/op gate: allocation counts are
// exact, not timing-noise-dependent, so it catches an accidental
// per-call allocation on a warm path even on a noisy runner. A
// benchmark whose baseline reports zero allocs/op must stay at zero
// (the bench target always records with -benchmem, so zero means
// zero-alloc, not unmeasured); with maxAllocRegress < 0 the alloc gate
// is disabled entirely.
//
// Benchmark names carry a -GOMAXPROCS suffix (e.g. "/incremental-8")
// that varies across machines; names are normalized before matching so
// a laptop baseline still gates a CI runner.
func compare(baselinePath, currentPath, filter string, maxRegress, maxAllocRegress float64, w io.Writer) error {
	if currentPath == "" {
		return fmt.Errorf("compare mode needs -current")
	}
	base, err := loadResults(baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	cur, err := loadResults(currentPath)
	if err != nil {
		return fmt.Errorf("current: %w", err)
	}

	var regressions []string
	compared := 0
	for name, c := range cur {
		if filter != "" && !strings.Contains(name, filter) {
			continue
		}
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "benchjson: %s: no baseline entry, skipping\n", name)
			continue
		}
		if b.NsPerOp <= 0 {
			continue
		}
		compared++
		ratio := c.NsPerOp / b.NsPerOp
		status := "ok"
		if ratio > 1+maxRegress {
			status = "REGRESSION"
			regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%+.1f%%)",
				name, b.NsPerOp, c.NsPerOp, (ratio-1)*100))
		}
		if maxAllocRegress >= 0 {
			switch {
			case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: 0 -> %.0f allocs/op (was alloc-free)",
					name, c.AllocsPerOp))
			case b.AllocsPerOp > 0 && c.AllocsPerOp/b.AllocsPerOp > 1+maxAllocRegress:
				status = "REGRESSION"
				regressions = append(regressions, fmt.Sprintf("%s: %.0f -> %.0f allocs/op (%+.1f%%)",
					name, b.AllocsPerOp, c.AllocsPerOp, (c.AllocsPerOp/b.AllocsPerOp-1)*100))
			}
		}
		fmt.Fprintf(w, "benchjson: %-50s %12.0f -> %12.0f ns/op  %+7.1f%%  %4.0f -> %4.0f allocs/op  %s\n",
			name, b.NsPerOp, c.NsPerOp, (ratio-1)*100, b.AllocsPerOp, c.AllocsPerOp, status)
	}
	if compared == 0 {
		return fmt.Errorf("no benchmarks matched filter %q in both files", filter)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("regression beyond the gate (%.0f%% ns/op, %.0f%% allocs/op) on:\n  %s",
			maxRegress*100, maxAllocRegress*100, strings.Join(regressions, "\n  "))
	}
	fmt.Fprintf(w, "benchjson: %d benchmark(s) within the %.0f%% gate\n", compared, maxRegress*100)
	return nil
}

// loadResults reads a benchjson output file into a map keyed by the
// normalized benchmark name. Repeated entries (go test -count=N) keep
// the minimum ns/op: the fastest run is the least-noisy estimate of a
// benchmark's true cost, which keeps scheduler hiccups on shared
// runners from reading as regressions.
func loadResults(path string) (map[string]result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, err
	}
	out := make(map[string]result, len(results))
	for _, r := range results {
		name := normalizeName(r.Name)
		if prev, ok := out[name]; ok && prev.NsPerOp <= r.NsPerOp {
			continue
		}
		out[name] = r
	}
	return out, nil
}

// normalizeName strips the trailing -GOMAXPROCS suffix go test appends
// to benchmark names ("BenchmarkFoo/sub-8" -> "BenchmarkFoo/sub").
func normalizeName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}
