// Command boostexp runs the experiment harness: it regenerates the
// tables and figures of the paper's evaluation (Sections VII-VIII) on
// scaled synthetic stand-ins.
//
// Usage:
//
//	boostexp -run fig5 -scale 0.02
//	boostexp -run all -scale 0.01 -sims 1000
//	boostexp -list
//
// Experiment ids follow the paper's artifact numbering: table1, fig5,
// fig6, table2, fig7, fig8, fig9, fig10, fig11, table3, fig12, fig13,
// fig14, fig15.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"github.com/kboost/kboost/internal/exp"
)

func main() {
	var (
		run        = flag.String("run", "", "experiment id to run, or 'all'")
		list       = flag.Bool("list", false, "list experiment ids")
		scale      = flag.Float64("scale", 0.02, "dataset scale relative to the paper (0,1]")
		datasets   = flag.String("datasets", "", "comma-separated datasets (default all four)")
		beta       = flag.Float64("beta", 2, "boosting parameter: p' = 1-(1-p)^beta")
		kvals      = flag.String("k", "", "comma-separated k sweep (default 10,50,100)")
		sims       = flag.Int("sims", 2000, "Monte-Carlo simulations per estimate")
		maxSamples = flag.Int("max-samples", 100000, "cap on PRR/RR pool sizes")
		eps        = flag.Float64("eps", 0.5, "approximation parameter epsilon")
		ell        = flag.Float64("ell", 1, "failure exponent ell")
		seed       = flag.Uint64("seed", 1, "RNG seed")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		treeN      = flag.Int("tree-n", 1000, "tree size for fig14/fig15")
		treeKs     = flag.String("tree-k", "", "comma-separated tree k sweep (default 25,50,100)")
		treeEps    = flag.String("tree-eps", "", "comma-separated DP epsilons (default 0.2,0.5,1)")
		csvDir     = flag.String("csv", "", "also write each table as CSV into this directory")
	)
	flag.Parse()

	if *list {
		for _, id := range exp.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *run == "" {
		fmt.Fprintln(os.Stderr, "boostexp: -run <id> required (use -list to enumerate)")
		os.Exit(2)
	}

	cfg := exp.Config{
		Scale:      *scale,
		Beta:       *beta,
		Sims:       *sims,
		MaxSamples: *maxSamples,
		Epsilon:    *eps,
		Ell:        *ell,
		Seed:       *seed,
		Workers:    *workers,
		TreeN:      *treeN,
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	var err error
	if cfg.KValues, err = parseInts(*kvals); err != nil {
		fatal(err)
	}
	if cfg.TreeKs, err = parseInts(*treeKs); err != nil {
		fatal(err)
	}
	if cfg.TreeEps, err = parseFloats(*treeEps); err != nil {
		fatal(err)
	}

	ids := []string{*run}
	if *run == "all" {
		ids = exp.IDs()
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fatal(err)
		}
	}
	for _, id := range ids {
		start := time.Now()
		fmt.Printf("### experiment %s (scale=%g, seed=%d)\n", id, *scale, *seed)
		runner, ok := exp.Registry[id]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (use -list)", id))
		}
		tables, err := runner(cfg)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		for i, t := range tables {
			if err := t.Render(os.Stdout); err != nil {
				fatal(err)
			}
			fmt.Println()
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fmt.Sprintf("%s_%d.csv", id, i))
				f, err := os.Create(path)
				if err != nil {
					fatal(err)
				}
				if err := t.RenderCSV(f); err != nil {
					f.Close()
					fatal(err)
				}
				if err := f.Close(); err != nil {
					fatal(err)
				}
			}
		}
		fmt.Printf("### %s done in %.1fs\n\n", id, time.Since(start).Seconds())
	}
}

func parseInts(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("boostexp: bad integer %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("boostexp: bad float %q: %w", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "boostexp:", err)
	os.Exit(1)
}
