package main

import "testing"

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("parseInts = %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Fatal("bad int accepted")
	}
	empty, err := parseInts("")
	if err != nil || empty != nil {
		t.Fatalf("empty parse: %v %v", empty, err)
	}
}

func TestParseFloats(t *testing.T) {
	got, err := parseFloats("0.2,0.5, 1")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.2 || got[2] != 1 {
		t.Fatalf("parseFloats = %v", got)
	}
	if _, err := parseFloats("0.2,?"); err == nil {
		t.Fatal("bad float accepted")
	}
}
