// Command kboostvet runs the project's invariant analyzers — detrand,
// guardedby, epochstamp and arenaview (see internal/analysis) — over
// the module and exits nonzero on any diagnostic. It is the static
// half of the hardening kit: the property tests and -race runs verify
// the concurrency and determinism invariants dynamically, kboostvet
// verifies the code patterns that protect them on every build.
//
// Usage:
//
//	go run ./cmd/kboostvet ./...
//	kboostvet -C /path/to/repo ./internal/prr
//
// Package patterns are vet-style and restrict which packages are
// analyzed; with none (or "./..."), the whole module is. detrand is
// additionally restricted to the determinism-critical packages listed
// in internal/analysis/detrand.DefaultScope.
//
// The suite is built on internal/analysis/framework, a stdlib-only
// stand-in for golang.org/x/tools/go/analysis (this repository vendors
// no dependencies), so kboostvet is a standalone command rather than a
// `go vet -vettool` plugin; `make lint` wires it into the same seat.
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/kboost/kboost/internal/analysis"
)

func main() {
	fs := flag.NewFlagSet("kboostvet", flag.ExitOnError)
	dir := fs.String("C", ".", "module directory to analyze")
	list := fs.Bool("help-analyzers", false, "print the analyzer suite and exit")
	fs.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: kboostvet [-C dir] [package patterns]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(os.Args[1:]); err != nil {
		os.Exit(2)
	}
	if *list {
		for _, a := range analysis.Suite() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	diags, err := analysis.RunModule(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kboostvet:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "kboostvet: %d issue(s)\n", len(diags))
		os.Exit(1)
	}
}
