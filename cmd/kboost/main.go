// Command kboost runs a boosting algorithm on a graph file.
//
// Usage:
//
//	kboost -graph g.txt -seeds 0,5,17 -k 20 -algo prr-boost
//	kboost -graph g.txt -auto-seeds 10 -k 50 -algo prr-boost-lb -eval
//
// Algorithms: prr-boost, prr-boost-lb, highdegree-global,
// highdegree-local, pagerank, moreseeds. The graph file uses the text
// format ("n m" header, then "from to p pBoost" lines) or the binary
// format written by gengraph -binary.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	kboost "github.com/kboost/kboost"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "graph file (text or binary format)")
		seedsArg  = flag.String("seeds", "", "comma-separated seed node ids")
		autoSeeds = flag.Int("auto-seeds", 0, "select this many seeds with IMM instead of -seeds")
		k         = flag.Int("k", 10, "number of nodes to boost")
		algo      = flag.String("algo", "prr-boost", "algorithm: prr-boost | prr-boost-lb | highdegree-global | highdegree-local | pagerank | moreseeds")
		eps       = flag.Float64("eps", 0.5, "approximation parameter epsilon")
		ell       = flag.Float64("ell", 1, "failure exponent ell")
		seed      = flag.Uint64("seed", 1, "RNG seed")
		workers   = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		maxSamp   = flag.Int("max-samples", 0, "cap on PRR/RR pool size (0 = theory-driven)")
		eval      = flag.Bool("eval", false, "Monte-Carlo evaluate the chosen set")
		sims      = flag.Int("sims", 10000, "simulations for -eval")
	)
	flag.Parse()

	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	g, err := kboost.LoadGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("graph: %d nodes, %d edges\n", g.N(), g.M())

	var seeds []int32
	switch {
	case *autoSeeds > 0:
		res, err := kboost.SelectSeeds(g, *autoSeeds, kboost.SeedOptions{
			Epsilon: *eps, Ell: *ell, Seed: *seed, Workers: *workers, MaxSamples: *maxSamp,
		})
		if err != nil {
			fatal(err)
		}
		seeds = res.Seeds
		fmt.Printf("selected %d seeds via IMM (est. influence %.1f)\n", len(seeds), res.EstInfluence)
	case *seedsArg != "":
		for _, part := range strings.Split(*seedsArg, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				fatal(fmt.Errorf("bad seed %q: %w", part, err))
			}
			seeds = append(seeds, int32(v))
		}
	default:
		fatal(fmt.Errorf("provide -seeds or -auto-seeds"))
	}

	opt := kboost.BoostOptions{
		K: *k, Epsilon: *eps, Ell: *ell, Seed: *seed,
		Workers: *workers, MaxSamples: *maxSamp,
	}
	start := time.Now()
	var boost []int32
	switch *algo {
	case "prr-boost":
		res, err := kboost.PRRBoost(g, seeds, opt)
		if err != nil {
			fatal(err)
		}
		boost = res.BoostSet
		fmt.Printf("PRR-Boost: %d PRR-graphs, est. boost %.2f (μ̂ %.2f, Δ̂ %.2f)\n",
			res.Samples, res.EstBoost, res.EstMu, res.EstDelta)
	case "prr-boost-lb":
		res, err := kboost.PRRBoostLB(g, seeds, opt)
		if err != nil {
			fatal(err)
		}
		boost = res.BoostSet
		fmt.Printf("PRR-Boost-LB: %d PRR-graphs, est. boost (lower bound) %.2f\n",
			res.Samples, res.EstBoost)
	case "highdegree-global":
		boost = bestSet(g, seeds, kboost.HighDegreeGlobal(g, seeds, *k), *sims, *seed)
	case "highdegree-local":
		boost = bestSet(g, seeds, kboost.HighDegreeLocal(g, seeds, *k), *sims, *seed)
	case "pagerank":
		boost = kboost.PageRankBoost(g, seeds, *k)
	case "moreseeds":
		var err error
		boost, err = kboost.MoreSeeds(g, seeds, *k, kboost.SeedOptions{
			Epsilon: *eps, Ell: *ell, Seed: *seed, Workers: *workers, MaxSamples: *maxSamp,
		})
		if err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}
	fmt.Printf("selection took %.2fs\n", time.Since(start).Seconds())

	sorted := append([]int32(nil), boost...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	fmt.Printf("boost set (%d nodes): %v\n", len(sorted), sorted)

	if *eval {
		delta, err := kboost.EstimateBoost(g, seeds, boost, kboost.SimOptions{
			Sims: *sims, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			fatal(err)
		}
		spread, err := kboost.EstimateSpread(g, seeds, boost, kboost.SimOptions{
			Sims: *sims, Seed: *seed, Workers: *workers,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Monte-Carlo (%d sims): boosted spread %.2f, boost of influence %.2f\n",
			*sims, spread, delta)
	}
}

func bestSet(g *kboost.Graph, seeds []int32, sets [][]int32, sims int, seed uint64) []int32 {
	best := sets[0]
	bestVal := -1.0
	for _, b := range sets {
		v, err := kboost.EstimateBoost(g, seeds, b, kboost.SimOptions{Sims: sims, Seed: seed})
		if err != nil {
			fatal(err)
		}
		if v > bestVal {
			best, bestVal = b, v
		}
	}
	return best
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "kboost:", err)
	os.Exit(1)
}
