// Command gengraph generates synthetic influence graphs and bidirected
// trees in the kboost text (or binary) format.
//
// Usage:
//
//	gengraph -kind dataset -dataset digg -scale 0.02 -out digg.txt
//	gengraph -kind scalefree -n 10000 -d 5 -prob trivalency -out sf.txt
//	gengraph -kind tree -n 2047 -shape binary -out tree.txt
//	gengraph -kind er -n 1000 -m 8000 -prob wc -beta 3 -out er.txt
package main

import (
	"flag"
	"fmt"
	"os"

	kboost "github.com/kboost/kboost"
	"github.com/kboost/kboost/internal/gen"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

func main() {
	var (
		kind    = flag.String("kind", "dataset", "dataset | scalefree | er | smallworld | tree | edgelist")
		inPath  = flag.String("in", "", "input edge list file (kind=edgelist)")
		name    = flag.String("dataset", "digg", "dataset stand-in name (kind=dataset)")
		scale   = flag.Float64("scale", 0.02, "dataset scale (kind=dataset)")
		n       = flag.Int("n", 1000, "number of nodes")
		m       = flag.Int("m", 0, "number of edges (kind=er; default 8n)")
		d       = flag.Int("d", 4, "edges per node (kind=scalefree) / ring degree (kind=smallworld)")
		back    = flag.Float64("back", 0.3, "reciprocity probability (kind=scalefree)")
		rewire  = flag.Float64("rewire", 0.1, "rewire probability (kind=smallworld)")
		shape   = flag.String("shape", "binary", "tree shape: binary | random (kind=tree)")
		probStr = flag.String("prob", "trivalency", "probability model: trivalency | wc | const:<p> | expmean:<m>")
		beta    = flag.Float64("beta", 2, "boosting parameter: p' = 1-(1-p)^beta")
		seed    = flag.Uint64("seed", 1, "RNG seed")
		out     = flag.String("out", "", "output path (default stdout)")
		binary  = flag.Bool("binary", false, "write the binary format")
	)
	flag.Parse()

	var g *graph.Graph
	var err error
	r := rng.New(*seed)
	switch *kind {
	case "dataset":
		g, err = kboost.GenerateDataset(*name, *scale, *beta, *seed)
	case "tree":
		g, err = kboost.GenerateBidirectedTree(*n, *shape, *beta, *seed)
	case "scalefree":
		var topo gen.Topology
		topo, err = gen.ScaleFree(*n, *d, *back, r)
		if err == nil {
			g, err = buildWithProb(topo, *probStr, *beta, r)
		}
	case "er":
		edges := *m
		if edges == 0 {
			edges = 8 * *n
		}
		var topo gen.Topology
		topo, err = gen.ErdosRenyi(*n, edges, r)
		if err == nil {
			g, err = buildWithProb(topo, *probStr, *beta, r)
		}
	case "smallworld":
		var topo gen.Topology
		topo, err = gen.SmallWorld(*n, *d, *rewire, r)
		if err == nil {
			g, err = buildWithProb(topo, *probStr, *beta, r)
		}
	case "edgelist":
		if *inPath == "" {
			fatal(fmt.Errorf("-in is required for kind=edgelist"))
		}
		var f *os.File
		f, err = os.Open(*inPath)
		if err == nil {
			var assign gen.ProbAssigner
			assign, err = gen.ParseProbModel(*probStr)
			if err == nil {
				g, _, err = gen.ReadEdgeList(f, assign, *beta, r)
			}
			f.Close()
		}
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	dest := "stdout"
	var outFile *os.File
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		outFile = f
		w = f
		dest = *out
	}
	if *binary {
		err = g.WriteBinary(w)
	} else {
		err = g.WriteText(w)
	}
	if err != nil {
		fatal(fmt.Errorf("writing %s: %w", dest, err))
	}
	// Close errors matter here: they are the write errors of buffered
	// data, and a deferred Close would swallow them past os.Exit.
	if outFile != nil {
		if err := outFile.Close(); err != nil {
			fatal(fmt.Errorf("writing %s: %w", dest, err))
		}
	}
	fmt.Fprintf(os.Stderr, "gengraph: wrote %d nodes, %d edges\n", g.N(), g.M())
}

func buildWithProb(topo gen.Topology, probStr string, beta float64, r *rng.Source) (*graph.Graph, error) {
	assign, err := gen.ParseProbModel(probStr)
	if err != nil {
		return nil, err
	}
	return gen.BuildGraph(topo, assign, beta, r)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gengraph:", err)
	os.Exit(1)
}
