// Command treeboost runs the bidirected-tree algorithms (Greedy-Boost
// and DP-Boost) on a tree graph file.
//
// Usage:
//
//	treeboost -graph tree.txt -seeds 0,7 -k 20
//	treeboost -graph tree.txt -auto-seeds 50 -k 100 -eps 0.5 -compare
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	kboost "github.com/kboost/kboost"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "bidirected tree graph file")
		seedsArg  = flag.String("seeds", "", "comma-separated seed node ids")
		autoSeeds = flag.Int("auto-seeds", 0, "select this many seeds with IMM")
		k         = flag.Int("k", 10, "number of nodes to boost")
		eps       = flag.Float64("eps", 0.5, "DP-Boost approximation parameter")
		compare   = flag.Bool("compare", false, "run both greedy and DP and compare")
		dp        = flag.Bool("dp", false, "run DP-Boost instead of Greedy-Boost")
		seed      = flag.Uint64("seed", 1, "RNG seed for seed selection")
	)
	flag.Parse()

	if *graphPath == "" {
		fatal(fmt.Errorf("-graph is required"))
	}
	g, err := kboost.LoadGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	var seeds []int32
	switch {
	case *autoSeeds > 0:
		res, err := kboost.SelectSeeds(g, *autoSeeds, kboost.SeedOptions{Seed: *seed})
		if err != nil {
			fatal(err)
		}
		seeds = res.Seeds
	case *seedsArg != "":
		for _, part := range strings.Split(*seedsArg, ",") {
			v, err := strconv.ParseInt(strings.TrimSpace(part), 10, 32)
			if err != nil {
				fatal(fmt.Errorf("bad seed %q: %w", part, err))
			}
			seeds = append(seeds, int32(v))
		}
	default:
		fatal(fmt.Errorf("provide -seeds or -auto-seeds"))
	}

	tr, err := kboost.TreeFromGraph(g, seeds)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("tree: %d nodes, %d seeds\n", tr.N(), tr.NumSeeds())

	runGreedy := !*dp || *compare
	runDP := *dp || *compare
	if runGreedy {
		t0 := time.Now()
		res, err := kboost.GreedyBoost(tr, *k)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("Greedy-Boost: Δ=%.4f σ=%.4f in %.3fs, B=%v\n",
			res.Delta, res.Sigma, time.Since(t0).Seconds(), sorted(res.Boost))
	}
	if runDP {
		t0 := time.Now()
		res, err := kboost.DPBoost(tr, *k, kboost.DPOptions{Epsilon: *eps})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("DP-Boost(ε=%g): Δ=%.4f (DP value %.4f, δ=%.2g) in %.3fs, B=%v\n",
			*eps, res.Delta, res.DPValue, res.DeltaG, time.Since(t0).Seconds(), sorted(res.Boost))
	}
}

func sorted(nodes []int32) []int32 {
	out := append([]int32(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "treeboost:", err)
	os.Exit(1)
}
