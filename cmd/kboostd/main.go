// Command kboostd serves boosting queries over HTTP: it loads graph
// snapshots at startup (and accepts live uploads when an auth token is
// configured), keeps PRR-graph pools cached across queries, and exposes
// the engine as a JSON API.
//
// Usage:
//
//	kboostd -addr :8090 -graph prod=digg.txt
//	kboostd -graph a=g1.txt -graph b=g2.bin -max-pool-mb 2048 -max-workers 8
//	kboostd -dataset demo=digg:0.01:2:1   # synthetic stand-in, no file needed
//	kboostd -auth-token s3cret -data-dir /var/lib/kboost  # live uploads, persisted
//	kboostd -graph prod=digg.txt -prewarm prod:seeds.txt:20:10000  # warm at boot
//
// Endpoints:
//
//	POST /v1/boost    {"graph":"prod","seeds":[1,2],"k":10,...}
//	POST /v1/seeds    {"graph":"prod","k":10,...}
//	POST /v1/estimate {"graph":"prod","seeds":[1,2],"boost":[3],...}
//	GET  /v1/stats
//	GET  /healthz                   liveness (always 200 while the
//	                                process serves)
//	GET  /readyz                    readiness (503 once draining)
//	GET  /v1/graphs                 list snapshots (id, version, size)
//	POST /v1/graphs/{name}          upload a snapshot (text or binary
//	                                graph codec; requires -auth-token,
//	                                body capped by -max-upload-mb)
//	DELETE /v1/graphs/{name}        remove a snapshot (requires -auth-token)
//	PATCH /v1/graphs/{name}/edges   apply an edge delta (JSON or binary
//	                                KBD1 codec; requires -auth-token)
//
// Every upload installs an immutable snapshot under a bumped version
// and invalidates the replaced version's cached pools, so queries never
// mix two snapshots. A PATCH also bumps the version, but *repairs* the
// cached pools instead of invalidating them: only the sketches and
// profiles whose sampled region touches a changed edge are resampled,
// so warm state survives small mutations (a pool touched beyond
// -repair-fallback-frac is dropped and rebuilt cold instead). With
// -data-dir, accepted uploads and patches are persisted as <name>.kbg
// and reloaded on the next boot.
//
// Boost and estimate requests take a "mode": the default "full" and
// "lb" run the paper's PRR-Boost algorithms under the IC model, while
// "lt" serves the boosted Linear Threshold extension from a cached pool
// of Monte-Carlo threshold profiles ("sims" sets the profile budget; LT
// selection is a heuristic with no approximation guarantee). All modes
// share the pool LRU, so warm LT queries skip sampling the same way
// warm PRR queries do — watch the lt_* counters in /v1/stats.
//
// kboostd shuts down gracefully on SIGINT/SIGTERM: /readyz flips to 503
// (so load balancers stop routing), in-flight requests drain for up to
// -drain-timeout, and past that budget every request context is
// canceled so cooperative cancellation unwinds the stragglers. A signal
// during -prewarm aborts the warm-up promptly instead of finishing it.
//
// Admission is bounded per lane (-max-inflight-cold for pool-building
// requests, -max-inflight-warm for cache hits); overflow is answered
// with 429 + Retry-After, except estimates, which degrade to the
// closed-form/fixed-budget floor tier with "degraded":true unless
// -no-degrade is set.
//
// Setting KBOOST_FAULTS (e.g. "pool.build.shard=err#2") arms the fault
// injection registry for chaos drills; leave it unset in production.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	kboost "github.com/kboost/kboost"
	"github.com/kboost/kboost/internal/faults"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "kboostd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("kboostd", flag.ContinueOnError)
	var (
		addr         = fs.String("addr", ":8090", "listen address")
		workers      = fs.Int("workers", 0, "default worker budget per query (0 = GOMAXPROCS)")
		maxWorkers   = fs.Int("max-workers", 0, "cap on per-request worker budgets (0 = uncapped)")
		maxPools     = fs.Int("max-pools", 8, "PRR pool cache capacity (LRU, entry count)")
		maxPoolMB    = fs.Int64("max-pool-mb", 1024, "PRR pool cache budget in MiB of estimated pool memory")
		drainTimeout = fs.Duration("drain-timeout", 30*time.Second, "graceful shutdown drain budget")
		authToken    = fs.String("auth-token", "", "bearer token gating POST/PATCH/DELETE /v1/graphs (empty = graph administration disabled)")
		repairFrac   = fs.Float64("repair-fallback-frac", 0, "touched share of pool regeneration cost (expansion size) above which a graph patch drops a cached pool instead of repairing it (0 = default 0.5, 1 = always repair)")
		maxUploadMB  = fs.Int64("max-upload-mb", 64, "graph upload body cap in MiB")
		dataDir      = fs.String("data-dir", "", "directory persisting uploaded snapshots as <name>.kbg, reloaded on boot")

		readHeaderTimeout = fs.Duration("read-header-timeout", 10*time.Second, "http.Server ReadHeaderTimeout (slowloris guard)")
		readTimeout       = fs.Duration("read-timeout", 5*time.Minute, "http.Server ReadTimeout; must cover the largest graph upload (0 = unlimited)")
		writeTimeout      = fs.Duration("write-timeout", 0, "http.Server WriteTimeout; 0 (the default) leaves cold pool builds unbounded — set only with a known worst-case build time")
		idleTimeout       = fs.Duration("idle-timeout", 2*time.Minute, "http.Server IdleTimeout for keep-alive connections (0 = unlimited)")

		maxInFlightCold = fs.Int("max-inflight-cold", kboost.DefaultMaxInFlightCold(), "concurrent requests allowed to build pools; overflow gets 429 (0 = unbounded)")
		maxInFlightWarm = fs.Int("max-inflight-warm", kboost.DefaultMaxInFlightWarm(), "concurrent cache-hit requests; overflow gets 429 (0 = unbounded)")
		retryAfter      = fs.Int("retry-after", 0, "Retry-After seconds on shed (429) responses (0 = default 1)")
		noDegrade       = fs.Bool("no-degrade", false, "shed over-admission estimates with 429 instead of serving the degraded floor tier")

		graphSpecs   sliceFlag
		datasetSpecs sliceFlag
		prewarmSpecs sliceFlag
	)
	fs.Var(&graphSpecs, "graph", "id=path graph file to serve (repeatable)")
	fs.Var(&datasetSpecs, "dataset", "id=name:scale:beta:seed synthetic stand-in to serve (repeatable)")
	fs.Var(&prewarmSpecs, "prewarm", "graph:seeds-file:k:sims pool to build at startup, before serving (repeatable; sims 0 skips the LT pool)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(graphSpecs) == 0 && len(datasetSpecs) == 0 && *authToken == "" && *dataDir == "" {
		return fmt.Errorf("no graphs to serve: pass -graph id=path or -dataset id=spec (or enable live uploads with -auth-token)")
	}
	if spec := os.Getenv("KBOOST_FAULTS"); spec != "" {
		if err := faults.InitFromEnv(spec); err != nil {
			return fmt.Errorf("KBOOST_FAULTS: %w", err)
		}
		log.Printf("fault injection armed: KBOOST_FAULTS=%q (chaos drills only)", spec)
	}

	eng := kboost.NewEngine(kboost.EngineOptions{
		MaxPools:               *maxPools,
		MaxPoolBytes:           *maxPoolMB << 20,
		Workers:                *workers,
		RepairFallbackFraction: *repairFrac,
	})
	for _, spec := range graphSpecs {
		id, path, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("-graph %q: %w", spec, err)
		}
		g, err := kboost.LoadGraph(path)
		if err != nil {
			return fmt.Errorf("loading graph %q: %w", id, err)
		}
		if err := eng.RegisterGraph(id, g); err != nil {
			return err
		}
		log.Printf("graph %q: %d nodes, %d edges (%s)", id, g.N(), g.M(), path)
	}
	for _, spec := range datasetSpecs {
		id, rest, err := splitSpec(spec)
		if err != nil {
			return fmt.Errorf("-dataset %q: %w", spec, err)
		}
		g, err := generateDataset(rest)
		if err != nil {
			return fmt.Errorf("-dataset %q: %w", spec, err)
		}
		if err := eng.RegisterGraph(id, g); err != nil {
			return err
		}
		log.Printf("graph %q: %d nodes, %d edges (synthetic %s)", id, g.N(), g.M(), rest)
	}
	if *dataDir != "" {
		if err := os.MkdirAll(*dataDir, 0o755); err != nil {
			return fmt.Errorf("-data-dir: %w", err)
		}
		// Persisted uploads are the freshest state, so they replace any
		// -graph/-dataset snapshot registered under the same id.
		n, err := eng.LoadSnapshotDir(*dataDir)
		if err != nil {
			return err
		}
		if n > 0 {
			log.Printf("reloaded %d persisted snapshot(s) from %s", n, *dataDir)
		}
	}
	if *authToken == "" {
		log.Printf("graph administration disabled (no -auth-token); serving startup graphs only")
	}
	// The signal context is armed before prewarming: pool builds can take
	// minutes on large graphs, and a SIGTERM during startup should abort
	// the warm-up promptly instead of finishing it for nobody.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Pre-warm named pools before the listener opens: the builds run on
	// the startup path, so the first user queries against these
	// (graph, seeds) pairs land on a warm cache instead of paying the
	// cold PRR sampling cost.
	for _, spec := range prewarmSpecs {
		pw, err := parsePrewarm(spec)
		if err != nil {
			return fmt.Errorf("-prewarm %q: %w", spec, err)
		}
		if err := prewarmEngine(ctx, eng, pw); err != nil {
			if ctx.Err() != nil {
				log.Printf("prewarm aborted by signal; exiting")
				return nil
			}
			return fmt.Errorf("-prewarm %q: %w", spec, err)
		}
	}

	api := kboost.NewEngineServer(eng, kboost.EngineServerOptions{
		MaxWorkers:        *maxWorkers,
		AuthToken:         *authToken,
		MaxUploadBytes:    *maxUploadMB << 20,
		SnapshotDir:       *dataDir,
		MaxInFlightCold:   *maxInFlightCold,
		MaxInFlightWarm:   *maxInFlightWarm,
		RetryAfterSeconds: *retryAfter,
		DisableDegrade:    *noDegrade,
	})
	// Request contexts hang off baseCtx so the drain path can cancel
	// whatever is still in flight once the drain budget runs out.
	baseCtx, cancelRequests := context.WithCancel(context.Background())
	defer cancelRequests()
	srv := &http.Server{
		Addr:              *addr,
		Handler:           logRequests(api),
		ReadHeaderTimeout: *readHeaderTimeout,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
		IdleTimeout:       *idleTimeout,
		BaseContext:       func(net.Listener) context.Context { return baseCtx },
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("listening on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return fmt.Errorf("serving: %w", err)
	case <-ctx.Done():
	}
	// Flip readiness before draining so load balancers polling /readyz
	// stop routing new work here while in-flight requests finish.
	api.SetDraining(true)
	log.Printf("shutting down (draining up to %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// Drain budget exhausted: cancel every in-flight request context
		// (cooperative cancellation unwinds pool builds at the next shard
		// boundary) and close the lingering connections.
		cancelRequests()
		_ = srv.Close()
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serving: %w", err)
	}
	return nil
}

// sliceFlag collects repeated flag values.
type sliceFlag []string

func (f *sliceFlag) String() string     { return strings.Join(*f, ",") }
func (f *sliceFlag) Set(v string) error { *f = append(*f, v); return nil }

func splitSpec(spec string) (id, rest string, err error) {
	id, rest, ok := strings.Cut(spec, "=")
	if !ok || id == "" || rest == "" {
		return "", "", fmt.Errorf("want id=value")
	}
	return id, rest, nil
}

// prewarmSpec is one parsed -prewarm flag.
type prewarmSpec struct {
	graphID   string
	seedsPath string
	k         int
	sims      int
}

// parsePrewarm parses "graph:seeds-file:k:sims". sims is optional and
// defaults to 0 (PRR pool only; a positive value also builds the
// boosted-LT profile pool for the same seed set).
func parsePrewarm(spec string) (prewarmSpec, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 3 || len(parts) > 4 {
		return prewarmSpec{}, fmt.Errorf("want graph:seeds-file:k:sims")
	}
	pw := prewarmSpec{graphID: parts[0], seedsPath: parts[1]}
	if pw.graphID == "" || pw.seedsPath == "" {
		return prewarmSpec{}, fmt.Errorf("empty graph id or seeds file")
	}
	k, err := strconv.Atoi(parts[2])
	if err != nil || k < 1 {
		return prewarmSpec{}, fmt.Errorf("bad k %q (want a positive integer)", parts[2])
	}
	pw.k = k
	if len(parts) == 4 {
		sims, err := strconv.Atoi(parts[3])
		if err != nil || sims < 0 {
			return prewarmSpec{}, fmt.Errorf("bad sims %q (want a non-negative integer)", parts[3])
		}
		pw.sims = sims
	}
	return pw, nil
}

// readSeedsFile loads a whitespace-separated list of node ids.
func readSeedsFile(path string) ([]int32, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var seeds []int32
	for _, f := range strings.Fields(string(data)) {
		v, err := strconv.ParseInt(f, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", f, err)
		}
		seeds = append(seeds, int32(v))
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("no seeds in %s", path)
	}
	return seeds, nil
}

// prewarmEngine builds the pools named by pw through the ordinary boost
// path, so the cache entries (and their result caches) are exactly what
// live queries will hit. The builds observe ctx: a shutdown signal
// during startup aborts the warm-up at the next shard boundary.
func prewarmEngine(ctx context.Context, eng *kboost.Engine, pw prewarmSpec) error {
	seeds, err := readSeedsFile(pw.seedsPath)
	if err != nil {
		return err
	}
	start := time.Now()
	res, err := eng.BoostContext(ctx, kboost.EngineBoostRequest{GraphID: pw.graphID, Seeds: seeds, K: pw.k})
	if err != nil {
		return err
	}
	log.Printf("prewarmed PRR pool %s (|seeds|=%d k=%d): %d samples in %s",
		pw.graphID, len(seeds), pw.k, res.Samples, time.Since(start).Round(time.Millisecond))
	if pw.sims > 0 {
		start = time.Now()
		ltRes, err := eng.BoostContext(ctx, kboost.EngineBoostRequest{GraphID: pw.graphID, Seeds: seeds, K: pw.k, Mode: "lt", Sims: pw.sims})
		if err != nil {
			return err
		}
		log.Printf("prewarmed LT pool %s (|seeds|=%d sims=%d): %d profiles in %s",
			pw.graphID, len(seeds), pw.sims, ltRes.Samples, time.Since(start).Round(time.Millisecond))
	}
	return nil
}

// generateDataset parses "name:scale:beta:seed" (trailing fields
// optional) and builds the synthetic stand-in.
func generateDataset(spec string) (*kboost.Graph, error) {
	parts := strings.Split(spec, ":")
	name := parts[0]
	scale, beta, seed := 0.01, 2.0, uint64(1)
	var err error
	if len(parts) > 1 {
		if scale, err = strconv.ParseFloat(parts[1], 64); err != nil {
			return nil, fmt.Errorf("bad scale %q: %w", parts[1], err)
		}
	}
	if len(parts) > 2 {
		if beta, err = strconv.ParseFloat(parts[2], 64); err != nil {
			return nil, fmt.Errorf("bad beta %q: %w", parts[2], err)
		}
	}
	if len(parts) > 3 {
		if seed, err = strconv.ParseUint(parts[3], 10, 64); err != nil {
			return nil, fmt.Errorf("bad seed %q: %w", parts[3], err)
		}
	}
	if len(parts) > 4 {
		return nil, fmt.Errorf("too many fields (want name:scale:beta:seed)")
	}
	return kboost.GenerateDataset(name, scale, beta, seed)
}

// logRequests is a minimal request-logging middleware.
func logRequests(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		log.Printf("%s %s -> %d in %s", r.Method, r.URL.Path, rec.status, time.Since(start).Round(time.Millisecond))
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(status int) {
	r.status = status
	r.ResponseWriter.WriteHeader(status)
}
