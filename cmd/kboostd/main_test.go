package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	kboost "github.com/kboost/kboost"
)

func TestParsePrewarm(t *testing.T) {
	pw, err := parsePrewarm("prod:seeds.txt:20:10000")
	if err != nil {
		t.Fatal(err)
	}
	if pw.graphID != "prod" || pw.seedsPath != "seeds.txt" || pw.k != 20 || pw.sims != 10000 {
		t.Fatalf("parsed %+v", pw)
	}
	pw, err = parsePrewarm("prod:seeds.txt:5")
	if err != nil {
		t.Fatal(err)
	}
	if pw.sims != 0 {
		t.Fatalf("omitted sims = %d, want 0", pw.sims)
	}
	for _, bad := range []string{"", "prod", "prod:seeds.txt", "prod:seeds.txt:0", "prod:seeds.txt:x", "prod:seeds.txt:3:-1", "prod:seeds.txt:3:1:extra", ":seeds.txt:3"} {
		if _, err := parsePrewarm(bad); err == nil {
			t.Errorf("parsePrewarm(%q) accepted", bad)
		}
	}
}

func TestReadSeedsFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "seeds.txt")
	if err := os.WriteFile(path, []byte("3 1\n 7\t9\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	seeds, err := readSeedsFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 4 || seeds[0] != 3 || seeds[3] != 9 {
		t.Fatalf("seeds = %v", seeds)
	}
	if err := os.WriteFile(path, []byte("  \n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := readSeedsFile(path); err == nil {
		t.Fatal("empty seeds file accepted")
	}
}

// TestPrewarmEngineWarmsCache proves the point of the flag: after
// prewarmEngine, the first "user" query for the same (graph, seeds, k)
// is served entirely from cache — pool and selection result alike.
func TestPrewarmEngineWarmsCache(t *testing.T) {
	g, err := kboost.GenerateDataset("digg", 0.004, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	eng := kboost.NewEngine(kboost.EngineOptions{})
	if err := eng.RegisterGraph("prod", g); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "seeds.txt")
	if err := os.WriteFile(path, []byte("0 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pw, err := parsePrewarm("prod:" + path + ":3:200")
	if err != nil {
		t.Fatal(err)
	}
	if err := prewarmEngine(context.Background(), eng, pw); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Boost(kboost.EngineBoostRequest{GraphID: "prod", Seeds: []int32{0, 1, 2}, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || !res.ResultCached || res.NewSamples != 0 {
		t.Fatalf("first PRR query after prewarm not fully warm: %+v", res)
	}
	ltRes, err := eng.Boost(kboost.EngineBoostRequest{GraphID: "prod", Seeds: []int32{0, 1, 2}, K: 3, Mode: "lt", Sims: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !ltRes.CacheHit || !ltRes.ResultCached || ltRes.NewSamples != 0 {
		t.Fatalf("first LT query after prewarm not fully warm: %+v", ltRes)
	}
}
