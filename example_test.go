package kboost_test

import (
	"fmt"
	"log"

	kboost "github.com/kboost/kboost"
)

// The end-to-end pipeline: generate a network, pick seeds, boost, and
// evaluate. Fixed seeds make the run deterministic.
func Example() {
	g, err := kboost.GenerateDataset("digg", 0.005, 2, 7)
	if err != nil {
		log.Fatal(err)
	}
	seeds, err := kboost.SelectSeeds(g, 3, kboost.SeedOptions{Seed: 7, MaxSamples: 20000})
	if err != nil {
		log.Fatal(err)
	}
	res, err := kboost.PRRBoost(g, seeds.Seeds, kboost.BoostOptions{
		K: 5, Seed: 7, MaxSamples: 20000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(res.BoostSet))
	// Output: 5
}

// Boosting on the paper's Figure 1 example: v0 is the right node to
// boost, worth Δ=0.22.
func ExamplePRRBoost() {
	b := kboost.NewBuilder(3)
	if err := b.AddEdge(0, 1, 0.2, 0.4); err != nil {
		log.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 0.1, 0.2); err != nil {
		log.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	res, err := kboost.PRRBoost(g, []int32{0}, kboost.BoostOptions{
		K: 1, Seed: 1, MaxSamples: 50000,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.BoostSet)
	// Output: [1]
}

// Exact spreads on tiny graphs via possible-world enumeration.
func ExampleExactSpread() {
	b := kboost.NewBuilder(3)
	if err := b.AddEdge(0, 1, 0.2, 0.4); err != nil {
		log.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 0.1, 0.2); err != nil {
		log.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	sigma, err := kboost.ExactSpread(g, []int32{0}, []int32{1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.2f\n", sigma)
	// Output: 1.44
}

// Tree algorithms: greedy with a DP certificate.
func ExampleGreedyBoost() {
	g, err := kboost.GenerateBidirectedTree(127, "binary", 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := kboost.TreeFromGraph(g, []int32{0})
	if err != nil {
		log.Fatal(err)
	}
	greedy, err := kboost.GreedyBoost(tr, 5)
	if err != nil {
		log.Fatal(err)
	}
	dp, err := kboost.DPBoost(tr, 5, kboost.DPOptions{Epsilon: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(len(greedy.Boost) <= 5, dp.Delta+1e-9 >= dp.DPValue)
	// Output: true true
}
