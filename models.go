package kboost

import (
	"github.com/kboost/kboost/internal/engine"
	"github.com/kboost/kboost/internal/model"
)

// ModelNames lists the pluggable pooled simulation modes an Engine
// serves ("kthresh", "lt", "sir"), sorted. The PRR family ("ic", "lb")
// is not listed — it keeps its own specialized serving path — but
// shares the same mode registry and unknown-mode error.
func ModelNames() []string { return model.Names() }

// EngineContent is the optional content-properties transmission
// modifier a boost or estimate request may carry: Virality scales every
// edge probability, Credibility scales how much of the boost uplift
// survives. Zero fields normalize to 1 (identity). Distinct content
// values never share sampled worlds — the modifier is part of every
// pool and calibration cache key.
type EngineContent = model.Content

// EngineSimModeStats is the per-mode counter block reported under
// EngineStats.SimModes for each pooled simulation mode that has served
// a query.
type EngineSimModeStats = engine.SimModeStats
