package kboost

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The public API integration test: the full pipeline a downstream user
// would run — generate, seed, boost, evaluate — on every stand-in.
func TestPublicPipeline(t *testing.T) {
	for _, name := range DatasetNames() {
		t.Run(name, func(t *testing.T) {
			g, err := GenerateDataset(name, 0.002, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			if g.N() < 10 {
				t.Fatalf("tiny graph: %d nodes", g.N())
			}
			seeds, err := SelectSeeds(g, 3, SeedOptions{Seed: 1, MaxSamples: 5000})
			if err != nil {
				t.Fatal(err)
			}
			res, err := PRRBoost(g, seeds.Seeds, BoostOptions{K: 5, Seed: 1, MaxSamples: 10000})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.BoostSet) != 5 {
				t.Fatalf("|B|=%d", len(res.BoostSet))
			}
			boost, err := EstimateBoost(g, seeds.Seeds, res.BoostSet, SimOptions{Sims: 2000, Seed: 2})
			if err != nil {
				t.Fatal(err)
			}
			if boost < 0 {
				t.Fatalf("negative boost %v", boost)
			}
		})
	}
}

// TestLTServingPipeline drives the boosted-LT extension end to end
// through the public API: pooled selection and estimation via LTPool,
// and the same query served warm through the Engine with mode "lt".
func TestLTServingPipeline(t *testing.T) {
	g, err := GenerateDataset("digg", 0.002, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := InfluentialSeeds(g, 5)

	pool, err := NewLTPool(g, seeds, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(1500)
	set, est, err := pool.GreedyBoost(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(set) == 0 || est < 0 {
		t.Fatalf("pooled greedy returned %v / %v", set, est)
	}
	spread, err := pool.EstimateSpread(set)
	if err != nil {
		t.Fatal(err)
	}
	if spread < float64(len(seeds)) {
		t.Fatalf("spread %v below seed count", spread)
	}

	eng := NewEngine(EngineOptions{})
	if err := eng.RegisterGraph("g", g); err != nil {
		t.Fatal(err)
	}
	req := EngineBoostRequest{GraphID: "g", Seeds: seeds, K: 4, Mode: "lt", Seed: 3, Sims: 1500}
	cold, err := eng.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	// The engine pool is built with the same (graph, seeds, seed, sims):
	// identical profiles, so its selection must match the direct pool's.
	if got, want := fmt.Sprint(cold.BoostSet), fmt.Sprint(set); got != want || cold.EstBoost != est {
		t.Fatalf("engine lt boost %s/%v != pooled %s/%v", got, cold.EstBoost, want, est)
	}
	warm, err := eng.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || !warm.ResultCached || warm.NewSamples != 0 {
		t.Fatalf("warm lt query not served from cache: %+v", warm)
	}
}

func TestDatasetNames(t *testing.T) {
	names := DatasetNames()
	if len(names) != 4 {
		t.Fatalf("%d datasets", len(names))
	}
	if _, err := GenerateDataset("unknown", 0.01, 2, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
}

func TestLoadGraphRoundTrip(t *testing.T) {
	g, err := GenerateDataset("digg", 0.002, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	textPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteText(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g2, err := LoadGraph(textPath)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("text round trip size mismatch")
	}

	binPath := filepath.Join(dir, "g.bin")
	f, err = os.Create(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.WriteBinary(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	g3, err := LoadGraph(binPath)
	if err != nil {
		t.Fatal(err)
	}
	if g3.N() != g.N() || g3.M() != g.M() {
		t.Fatalf("binary round trip size mismatch")
	}

	if _, err := LoadGraph(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestGenerateBidirectedTreeAPI(t *testing.T) {
	for _, shape := range []string{"binary", "random"} {
		g, err := GenerateBidirectedTree(63, shape, 2, 3)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsBidirectedTree() {
			t.Fatalf("%s tree is not bidirected tree", shape)
		}
		tr, err := TreeFromGraph(g, []int32{0})
		if err != nil {
			t.Fatal(err)
		}
		greedy, err := GreedyBoost(tr, 5)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := DPBoost(tr, 5, DPOptions{Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if dp.Delta+1e-9 < dp.DPValue {
			t.Fatalf("DP delta below its own bound")
		}
		if greedy.Delta < 0 || dp.Delta < 0 {
			t.Fatal("negative deltas")
		}
	}
	if _, err := GenerateBidirectedTree(10, "hexagonal", 2, 1); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestReadEdgeListAPI(t *testing.T) {
	input := "10 20\n20 30\n30 10\n"
	g, orig, err := ReadEdgeList(strings.NewReader(input), "const:0.5", 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("size %d/%d", g.N(), g.M())
	}
	if len(orig) != 3 || orig[0] != 10 {
		t.Fatalf("orig ids %v", orig)
	}
	if _, _, err := ReadEdgeList(strings.NewReader(input), "bogus", 2, 1); err == nil {
		t.Fatal("bogus model accepted")
	}
}

func TestBoostTargetAPI(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1, 0.1, 0.9); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	recv, err := EstimateBoostTarget(g, []int32{0}, []int32{1}, BoostReceivers, SimOptions{Sims: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	send, err := EstimateBoostTarget(g, []int32{0}, []int32{1}, BoostSenders, SimOptions{Sims: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recv-0.8) > 0.01 {
		t.Fatalf("receiver boost %v, want ~0.8", recv)
	}
	if math.Abs(send) > 0.01 {
		t.Fatalf("sender boost of sink %v, want ~0", send)
	}
}

func TestExactSpreadAPI(t *testing.T) {
	b := NewBuilder(3)
	if err := b.AddEdge(0, 1, 0.2, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := b.AddEdge(1, 2, 0.1, 0.2); err != nil {
		t.Fatal(err)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ExactSpread(g, []int32{0}, []int32{1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.44) > 1e-12 {
		t.Fatalf("exact spread %v, want 1.44", got)
	}
}

func TestBaselineAPIs(t *testing.T) {
	g, err := GenerateDataset("digg", 0.002, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := InfluentialSeeds(g, 3)
	if len(HighDegreeGlobal(g, seeds, 4)) != 4 {
		t.Fatal("HighDegreeGlobal variants missing")
	}
	if len(HighDegreeLocal(g, seeds, 4)) != 4 {
		t.Fatal("HighDegreeLocal variants missing")
	}
	if got := PageRankBoost(g, seeds, 4); len(got) != 4 {
		t.Fatalf("PageRankBoost returned %d", len(got))
	}
	ms, err := MoreSeeds(g, seeds, 4, SeedOptions{Seed: 1, MaxSamples: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 4 {
		t.Fatalf("MoreSeeds returned %d", len(ms))
	}
	rnd := RandomSeeds(g, 5, 1)
	if len(rnd) != 5 {
		t.Fatalf("RandomSeeds returned %d", len(rnd))
	}
}

func TestSandwichRatioAPI(t *testing.T) {
	g, err := GenerateDataset("digg", 0.002, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := InfluentialSeeds(g, 3)
	res, err := PRRBoost(g, seeds, BoostOptions{K: 4, Seed: 1, MaxSamples: 10000})
	if err != nil {
		t.Fatal(err)
	}
	mu, delta, ratio, err := SandwichRatio(g, seeds, res.BoostSet, 10000, BoostOptions{K: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if mu > delta+1e-9 {
		t.Fatalf("μ=%v > Δ=%v", mu, delta)
	}
	if delta > 0 && (ratio <= 0 || ratio > 1+1e-9) {
		t.Fatalf("ratio %v", ratio)
	}
}
