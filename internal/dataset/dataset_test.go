package dataset

import (
	"math"
	"testing"
)

func TestByName(t *testing.T) {
	for _, want := range All {
		got, err := ByName(want.Name)
		if err != nil {
			t.Fatal(err)
		}
		if got.Name != want.Name {
			t.Fatalf("ByName(%q) = %q", want.Name, got.Name)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestGenerateScalesSizes(t *testing.T) {
	g, err := Digg.Generate(0.02, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantN := int(float64(Digg.PaperN) * 0.02)
	// WCC extraction trims some nodes; allow 40% slack downward.
	if g.N() < wantN*6/10 || g.N() > wantN {
		t.Fatalf("N=%d, want near %d", g.N(), wantN)
	}
	// Density should be in the ballpark of the paper's m/n.
	paperDensity := float64(Digg.PaperM) / float64(Digg.PaperN)
	gotDensity := float64(g.M()) / float64(g.N())
	if gotDensity < paperDensity*0.4 || gotDensity > paperDensity*2 {
		t.Fatalf("density %v, paper %v", gotDensity, paperDensity)
	}
}

func TestGenerateMatchesAvgProbability(t *testing.T) {
	for _, spec := range []Spec{Digg, Flickr} {
		g, err := spec.Generate(0.01, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		st := g.ComputeStats()
		if math.Abs(st.AvgP-spec.AvgP) > spec.AvgP*0.25 {
			t.Fatalf("%s: avg p %v, want ~%v", spec.Name, st.AvgP, spec.AvgP)
		}
		if st.AvgPBoost < st.AvgP {
			t.Fatalf("%s: avg p' %v below avg p %v", spec.Name, st.AvgPBoost, st.AvgP)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Flixster.Generate(0.01, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Flixster.Generate(0.01, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("sizes differ: %d/%d vs %d/%d", a.N(), a.M(), b.N(), b.M())
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Digg.Generate(0, 2, 1); err == nil {
		t.Fatal("scale=0 accepted")
	}
	if _, err := Digg.Generate(1.5, 2, 1); err == nil {
		t.Fatal("scale>1 accepted")
	}
}

func TestInfluentialSeeds(t *testing.T) {
	g, err := Digg.Generate(0.01, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := InfluentialSeeds(g, 10)
	if len(seeds) != 10 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[int32]bool{}
	for _, s := range seeds {
		if s < 0 || int(s) >= g.N() || seen[s] {
			t.Fatalf("bad seed list %v", seeds)
		}
		seen[s] = true
	}
	// The selected nodes should have above-average out-weight.
	var selW, totW float64
	for u := int32(0); int(u) < g.N(); u++ {
		var w float64
		for _, p := range g.OutP(u) {
			w += p
		}
		totW += w
		if seen[u] {
			selW += w
		}
	}
	if selW/10 <= totW/float64(g.N()) {
		t.Fatal("influential seeds are not above average out-weight")
	}
}

func TestRandomSeeds(t *testing.T) {
	g, err := Digg.Generate(0.01, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	seeds := RandomSeeds(g, 50, 3)
	if len(seeds) != 50 {
		t.Fatalf("got %d seeds", len(seeds))
	}
	seen := map[int32]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	again := RandomSeeds(g, 50, 3)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("RandomSeeds not deterministic for fixed seed")
		}
	}
}
