// Package dataset provides scaled synthetic stand-ins for the four
// social networks the paper evaluates on (Table 1).
//
// The original crawls (Digg, Flixster, Twitter, Flickr) with influence
// probabilities learned by the method of Goyal et al. are not
// redistributable. Each stand-in matches the statistics that drive
// PRR-Boost's behaviour: node/edge ratio (density), a heavy-tailed
// degree distribution from preferential attachment, and the average
// influence probability from Table 1. The scale factor shrinks node
// counts for laptop-size experiments while preserving density.
//
//	name      n(paper)  m(paper)  avg p(paper)
//	digg      28K       200K      0.239
//	flixster  96K       485K      0.228
//	twitter   323K      2.14M     0.608
//	flickr    1.45M     2.15M     0.013
package dataset

import (
	"fmt"
	"math"
	"sort"

	"github.com/kboost/kboost/internal/gen"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// Spec describes one stand-in dataset.
type Spec struct {
	Name      string
	PaperN    int     // node count in the paper's Table 1
	PaperM    int     // edge count in the paper's Table 1
	AvgP      float64 // average influence probability in Table 1
	BackProb  float64 // reciprocity used by the scale-free generator
	paperDesc string
}

// The four stand-ins, in the paper's column order.
var (
	Digg     = Spec{Name: "digg", PaperN: 28000, PaperM: 200000, AvgP: 0.239, BackProb: 0.35, paperDesc: "Digg vote network"}
	Flixster = Spec{Name: "flixster", PaperN: 96000, PaperM: 485000, AvgP: 0.228, BackProb: 0.35, paperDesc: "Flixster rating network"}
	Twitter  = Spec{Name: "twitter", PaperN: 323000, PaperM: 2140000, AvgP: 0.608, BackProb: 0.5, paperDesc: "Twitter retweet network"}
	Flickr   = Spec{Name: "flickr", PaperN: 1450000, PaperM: 2150000, AvgP: 0.013, BackProb: 0.25, paperDesc: "Flickr favorite network"}
)

// All lists the four stand-ins in the paper's order.
var All = []Spec{Digg, Flixster, Twitter, Flickr}

// ByName returns the Spec with the given name.
func ByName(name string) (Spec, error) {
	for _, s := range All {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("dataset: unknown dataset %q (have digg, flixster, twitter, flickr)", name)
}

// Generate builds the stand-in graph at the given scale (e.g. scale=0.01
// gives 1% of the paper's node count) with boosting parameter beta
// (p' = 1-(1-p)^beta; the paper's default is 2). The graph is
// deterministic for a fixed (scale, beta, seed).
func (s Spec) Generate(scale, beta float64, seed uint64) (*graph.Graph, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("dataset: scale %v out of (0,1]", scale)
	}
	n := int(float64(s.PaperN) * scale)
	if n < 16 {
		n = 16
	}
	// Preserve density: edges per node from the paper's Table 1.
	perNode := int(float64(s.PaperM)/float64(s.PaperN) + 0.5)
	if perNode < 1 {
		perNode = 1
	}
	// The generator adds reciprocal arcs with probability BackProb, so
	// draw fewer forward arcs to land near the target density.
	fwd := int(float64(perNode)/(1+s.BackProb) + 0.5)
	if fwd < 1 {
		fwd = 1
	}
	r := rng.New(seed ^ hashName(s.Name))
	topo, err := gen.ScaleFree(n, fwd, s.BackProb, r)
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", s.Name, err)
	}
	// Draw skewed probabilities, then calibrate the mean: the [lo, 0.999]
	// clamp of the exponential sampler biases the realized mean downward
	// for large targets (Twitter's 0.608), so rescale once toward the
	// Table-1 average before applying the boosting parameter.
	assign := gen.ExpMean(s.AvgP)
	probs := make([]float64, len(topo.Arcs))
	var sum float64
	for i, a := range topo.Arcs {
		probs[i] = assign(a[0], a[1], nil, r)
		sum += probs[i]
	}
	// A few fixed-point iterations: rescaling re-clamps the heavy tail,
	// so repeat until the realized mean converges onto the target.
	for iter := 0; iter < 4 && len(probs) > 0 && sum > 0; iter++ {
		factor := s.AvgP * float64(len(probs)) / sum
		sum = 0
		for i := range probs {
			p := probs[i] * factor
			if p > 0.999 {
				p = 0.999
			}
			probs[i] = p
			sum += p
		}
	}
	b := graph.NewBuilder(topo.N)
	for i, a := range topo.Arcs {
		p := probs[i]
		pb := 1 - math.Pow(1-p, beta)
		if pb < p {
			pb = p
		}
		if err := b.AddEdge(a[0], a[1], p, pb); err != nil {
			return nil, fmt.Errorf("dataset %s: %w", s.Name, err)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("dataset %s: %w", s.Name, err)
	}
	// Keep the largest weakly connected component, as the paper does.
	wcc, _ := g.LargestWCC()
	return wcc, nil
}

// hashName gives each dataset an independent seed stream.
func hashName(name string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// InfluentialSeeds mirrors the paper's seed setup (i): the top-count
// nodes by out-weight as a fast stand-in ordering when an IMM selection
// is not required. The experiment harness uses rrset.SelectSeeds for the
// real IMM selection; this helper exists for cheap tests and examples.
func InfluentialSeeds(g *graph.Graph, count int) []int32 {
	type nw struct {
		node   int32
		weight float64
	}
	all := make([]nw, g.N())
	for u := int32(0); u < int32(g.N()); u++ {
		var w float64
		for _, p := range g.OutP(u) {
			w += p
		}
		all[u] = nw{node: u, weight: w}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].weight != all[j].weight {
			return all[i].weight > all[j].weight
		}
		return all[i].node < all[j].node
	})
	if count > len(all) {
		count = len(all)
	}
	seeds := make([]int32, count)
	for i := 0; i < count; i++ {
		seeds[i] = all[i].node
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	return seeds
}

// RandomSeeds mirrors the paper's seed setup (ii): count uniformly
// random distinct nodes.
func RandomSeeds(g *graph.Graph, count int, seed uint64) []int32 {
	r := rng.New(seed)
	if count > g.N() {
		count = g.N()
	}
	picks := r.Sample(g.N(), count)
	seeds := make([]int32, count)
	for i, v := range picks {
		seeds[i] = int32(v)
	}
	sort.Slice(seeds, func(i, j int) bool { return seeds[i] < seeds[j] })
	return seeds
}
