package core

import (
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// With p' == p everywhere boosting is useless: every PRR-graph is
// non-boostable, estimates are zero, and the algorithm must still
// terminate (via the sample cap) and return a harmless padded set.
func TestPRRBoostDegenerateNoBoosting(t *testing.T) {
	b := graph.NewBuilder(6)
	b.MustAddEdge(0, 1, 0.4, 0.4)
	b.MustAddEdge(1, 2, 0.4, 0.4)
	b.MustAddEdge(2, 3, 0.4, 0.4)
	b.MustAddEdge(3, 4, 0.4, 0.4)
	b.MustAddEdge(4, 5, 0.4, 0.4)
	g := b.MustBuild()
	res, err := PRRBoost(g, []int32{0}, Options{K: 2, Seed: 1, MaxSamples: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if res.EstBoost != 0 {
		t.Fatalf("EstBoost = %v, want 0", res.EstBoost)
	}
	if len(res.BoostSet) != 2 {
		t.Fatalf("|B| = %d, want padded to 2", len(res.BoostSet))
	}
	if res.PoolStats.Boostable != 0 {
		t.Fatalf("boostable graphs %d, want 0", res.PoolStats.Boostable)
	}
}

// Disconnected non-seed nodes can never be boosted usefully; the
// algorithm must not crash and must stay within the eligible universe.
func TestPRRBoostDisconnected(t *testing.T) {
	b := graph.NewBuilder(10)
	b.MustAddEdge(0, 1, 0.3, 0.6)
	b.MustAddEdge(1, 2, 0.3, 0.6)
	// nodes 3..9 isolated
	g := b.MustBuild()
	res, err := PRRBoost(g, []int32{0}, Options{K: 3, Seed: 1, MaxSamples: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BoostSet) != 3 {
		t.Fatalf("|B| = %d", len(res.BoostSet))
	}
	for _, v := range res.BoostSet {
		if v == 0 {
			t.Fatal("seed boosted")
		}
	}
}

// All nodes seeds except one: k is forced to the single eligible node.
func TestPRRBoostOneEligible(t *testing.T) {
	r := rng.New(4)
	g := testutil.RandomGraph(r, 6, 10, 0.5)
	seeds := []int32{0, 1, 2, 3, 4}
	res, err := PRRBoost(g, seeds, Options{K: 1, Seed: 1, MaxSamples: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BoostSet) != 1 || res.BoostSet[0] != 5 {
		t.Fatalf("boost set %v, want [5]", res.BoostSet)
	}
}

// Options.MaxSamples must bound the pool in both modes.
func TestMaxSamplesBound(t *testing.T) {
	r := rng.New(5)
	g := testutil.RandomGraph(r, 20, 40, 0.2)
	seeds := []int32{0}
	for _, f := range []func(*graph.Graph, []int32, Options) (*Result, error){PRRBoost, PRRBoostLB} {
		res, err := f(g, seeds, Options{K: 2, Seed: 1, MaxSamples: 1234})
		if err != nil {
			t.Fatal(err)
		}
		if res.Samples > 1234 {
			t.Fatalf("samples %d exceed cap", res.Samples)
		}
	}
}
