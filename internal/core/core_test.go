package core

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/exact"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// bruteForceBest finds the exact optimal boost set of size k on a tiny
// graph by enumeration.
func bruteForceBest(t *testing.T, g *graph.Graph, seeds []int32, k int) ([]int32, float64) {
	t.Helper()
	nonSeeds := testutil.NonSeeds(g.N(), seeds)
	var best []int32
	bestVal := -1.0
	var rec func(start int, cur []int32)
	rec = func(start int, cur []int32) {
		if len(cur) == k {
			val, err := exact.Boost(g, seeds, cur)
			if err != nil {
				t.Fatal(err)
			}
			if val > bestVal {
				bestVal = val
				best = append([]int32(nil), cur...)
			}
			return
		}
		for i := start; i < len(nonSeeds); i++ {
			rec(i+1, append(cur, nonSeeds[i]))
		}
	}
	rec(0, nil)
	return best, bestVal
}

// PRR-Boost on the Figure 1 example must pick v0 for k=1 (the paper's
// motivating point: v0 boosts 0.22 vs v1's 0.02).
func TestPRRBoostFig1(t *testing.T) {
	g, seeds := testutil.Fig1()
	res, err := PRRBoost(g, seeds, Options{K: 1, Seed: 3, MaxSamples: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BoostSet) != 1 || res.BoostSet[0] != 1 {
		t.Fatalf("boost set %v, want [1] (v0)", res.BoostSet)
	}
	if math.Abs(res.EstBoost-0.22) > 0.03 {
		t.Fatalf("estimated boost %v, want ~0.22", res.EstBoost)
	}
}

func TestPRRBoostLBFig1(t *testing.T) {
	g, seeds := testutil.Fig1()
	res, err := PRRBoostLB(g, seeds, Options{K: 1, Seed: 3, MaxSamples: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BoostSet) != 1 || res.BoostSet[0] != 1 {
		t.Fatalf("boost set %v, want [1] (v0)", res.BoostSet)
	}
}

// On small random graphs the returned set's exact boost should be close
// to the enumerated optimum (the sandwich guarantee is data-dependent;
// empirically these graphs give near-optimal results).
func TestPRRBoostNearOptimal(t *testing.T) {
	r := rng.New(61)
	for trial := 0; trial < 4; trial++ {
		g := testutil.RandomGraph(r, 7, 11, 0.6)
		seeds := []int32{0}
		_, optVal := bruteForceBest(t, g, seeds, 2)
		if optVal < 0.01 {
			continue // boosting is pointless on this instance
		}
		res, err := PRRBoost(g, seeds, Options{K: 2, Seed: uint64(trial + 1), MaxSamples: 300000})
		if err != nil {
			t.Fatal(err)
		}
		gotVal, err := exact.Boost(g, seeds, res.BoostSet)
		if err != nil {
			t.Fatal(err)
		}
		if gotVal < 0.6*optVal-0.02 {
			t.Fatalf("trial %d: boost %v of %v (opt %v) too far from optimal",
				trial, gotVal, res.BoostSet, optVal)
		}
	}
}

func TestPRRBoostLBQuality(t *testing.T) {
	r := rng.New(62)
	g := testutil.RandomGraph(r, 8, 12, 0.6)
	seeds := []int32{0}
	_, optVal := bruteForceBest(t, g, seeds, 2)
	if optVal < 0.01 {
		t.Skip("degenerate instance")
	}
	res, err := PRRBoostLB(g, seeds, Options{K: 2, Seed: 5, MaxSamples: 300000})
	if err != nil {
		t.Fatal(err)
	}
	gotVal, err := exact.Boost(g, seeds, res.BoostSet)
	if err != nil {
		t.Fatal(err)
	}
	if gotVal < 0.5*optVal-0.02 {
		t.Fatalf("LB boost %v (opt %v) too far from optimal", gotVal, optVal)
	}
}

func TestResultShape(t *testing.T) {
	r := rng.New(63)
	g := testutil.RandomGraph(r, 20, 50, 0.4)
	seeds := []int32{0, 1}
	res, err := PRRBoost(g, seeds, Options{K: 3, Seed: 7, MaxSamples: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BoostSet) != 3 {
		t.Fatalf("|B|=%d, want 3", len(res.BoostSet))
	}
	for _, v := range res.BoostSet {
		if v == 0 || v == 1 {
			t.Fatalf("seed %d in boost set", v)
		}
	}
	if res.Samples == 0 || res.PoolStats.Total != res.Samples {
		t.Fatalf("sample accounting wrong: %d vs %+v", res.Samples, res.PoolStats)
	}
	if len(res.BoostSetMu) != 3 || len(res.BoostSetDelta) != 3 {
		t.Fatalf("intermediate sets missing: %v %v", res.BoostSetMu, res.BoostSetDelta)
	}
	if res.EstBoost < 0 {
		t.Fatalf("negative boost estimate %v", res.EstBoost)
	}
}

func TestValidationErrors(t *testing.T) {
	g, seeds := testutil.Fig1()
	cases := []struct {
		name  string
		seeds []int32
		opt   Options
	}{
		{"k=0", seeds, Options{K: 0}},
		{"k too large", seeds, Options{K: 3}},
		{"no seeds", nil, Options{K: 1}},
		{"bad seed", []int32{-1}, Options{K: 1}},
		{"dup seed", []int32{0, 0}, Options{K: 1}},
	}
	for _, c := range cases {
		if _, err := PRRBoost(g, c.seeds, c.opt); err == nil {
			t.Errorf("%s accepted by PRRBoost", c.name)
		}
		if _, err := PRRBoostLB(g, c.seeds, c.opt); err == nil {
			t.Errorf("%s accepted by PRRBoostLB", c.name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	r := rng.New(64)
	g := testutil.RandomGraph(r, 15, 35, 0.5)
	seeds := []int32{0}
	run := func() []int32 {
		res, err := PRRBoost(g, seeds, Options{K: 2, Seed: 99, Workers: 2, MaxSamples: 20000})
		if err != nil {
			t.Fatal(err)
		}
		return res.BoostSet
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic: %v vs %v", a, b)
		}
	}
}

func TestSandwichRatio(t *testing.T) {
	r := rng.New(65)
	g := testutil.RandomGraph(r, 15, 35, 0.5)
	seeds := []int32{0}
	res, err := PRRBoost(g, seeds, Options{K: 2, Seed: 3, MaxSamples: 30000})
	if err != nil {
		t.Fatal(err)
	}
	mu, delta, ratio, err := SandwichRatio(g, seeds, res.BoostSet, 30000, Options{K: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if mu > delta+1e-9 {
		t.Fatalf("μ̂=%v > Δ̂=%v", mu, delta)
	}
	if delta > 0 && (ratio < 0 || ratio > 1+1e-9) {
		t.Fatalf("ratio %v out of [0,1]", ratio)
	}
}

func TestBudgetAllocation(t *testing.T) {
	r := rng.New(66)
	g := testutil.RandomGraph(r, 40, 120, 0.3)
	pts, err := BudgetAllocation(g, BudgetAllocationOptions{
		BudgetSeeds: 4,
		CostRatio:   4,
		SeedFracs:   []float64{0.5, 1.0},
		Boost:       Options{Seed: 5, MaxSamples: 10000},
		Sims:        4000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("%d points", len(pts))
	}
	if pts[0].NumSeeds != 2 || pts[1].NumSeeds != 4 {
		t.Fatalf("seed counts %d/%d", pts[0].NumSeeds, pts[1].NumSeeds)
	}
	if pts[0].NumBoost != 8 || pts[1].NumBoost != 0 {
		t.Fatalf("boost counts %d/%d", pts[0].NumBoost, pts[1].NumBoost)
	}
	for _, pt := range pts {
		if pt.BoostedSpread < float64(pt.NumSeeds) {
			t.Fatalf("spread %v below seed count %d", pt.BoostedSpread, pt.NumSeeds)
		}
	}
}

func TestBudgetAllocationValidation(t *testing.T) {
	g, _ := testutil.Fig1()
	if _, err := BudgetAllocation(g, BudgetAllocationOptions{BudgetSeeds: 0, CostRatio: 1, SeedFracs: []float64{1}}); err == nil {
		t.Fatal("BudgetSeeds=0 accepted")
	}
	if _, err := BudgetAllocation(g, BudgetAllocationOptions{BudgetSeeds: 1, CostRatio: 0, SeedFracs: []float64{1}}); err == nil {
		t.Fatal("CostRatio=0 accepted")
	}
	if _, err := BudgetAllocation(g, BudgetAllocationOptions{BudgetSeeds: 1, CostRatio: 1}); err == nil {
		t.Fatal("empty fractions accepted")
	}
	if _, err := BudgetAllocation(g, BudgetAllocationOptions{BudgetSeeds: 1, CostRatio: 1, SeedFracs: []float64{2}}); err == nil {
		t.Fatal("fraction > 1 accepted")
	}
}

func TestSortedCopy(t *testing.T) {
	in := []int32{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[1] != 2 || out[2] != 3 {
		t.Fatalf("sorted %v", out)
	}
	if in[0] != 3 {
		t.Fatal("input mutated")
	}
}
