package core

import (
	"fmt"

	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rrset"
)

// MixPoint is one budget split evaluated by BudgetAllocation.
type MixPoint struct {
	SeedFrac      float64 // fraction of the budget spent on seeding
	NumSeeds      int
	NumBoost      int
	Seeds         []int32
	Boost         []int32
	BoostedSpread float64 // Monte-Carlo estimate of σ_S(B)
}

// BudgetAllocationOptions configures the seeding-vs-boosting sweep of
// Section VII-C (Figure 13).
type BudgetAllocationOptions struct {
	// BudgetSeeds is the number of seeds the whole budget buys (the paper
	// uses 100).
	BudgetSeeds int
	// CostRatio is seed cost / boost cost (the paper sweeps 100..800).
	CostRatio int
	// SeedFracs are the budget fractions spent on seeding (e.g. 0.2..1.0).
	SeedFracs []float64
	// Boosting algorithm options.
	Boost Options
	// Spread estimation.
	Sims int
}

// BudgetAllocation evaluates each budget split: it spends frac of the
// budget on IMM-selected seeds and the rest on PRR-Boost-selected
// boosted nodes, then estimates the resulting boosted spread.
func BudgetAllocation(g *graph.Graph, opt BudgetAllocationOptions) ([]MixPoint, error) {
	if opt.BudgetSeeds < 1 {
		return nil, fmt.Errorf("core: BudgetSeeds=%d must be >= 1", opt.BudgetSeeds)
	}
	if opt.CostRatio < 1 {
		return nil, fmt.Errorf("core: CostRatio=%d must be >= 1", opt.CostRatio)
	}
	if len(opt.SeedFracs) == 0 {
		return nil, fmt.Errorf("core: no seed fractions to evaluate")
	}
	if opt.Sims <= 0 {
		opt.Sims = 10000
	}
	bo := opt.Boost.WithDefaults()

	var out []MixPoint
	for _, frac := range opt.SeedFracs {
		if frac <= 0 || frac > 1 {
			return nil, fmt.Errorf("core: seed fraction %v out of (0,1]", frac)
		}
		numSeeds := int(frac*float64(opt.BudgetSeeds) + 0.5)
		if numSeeds < 1 {
			numSeeds = 1
		}
		numBoost := int((1 - frac) * float64(opt.BudgetSeeds) * float64(opt.CostRatio))
		if numBoost > g.N()-numSeeds {
			numBoost = g.N() - numSeeds
		}

		seedRes, err := rrset.SelectSeeds(g, numSeeds, rrset.Options{
			Epsilon: bo.Epsilon, Ell: bo.Ell, Seed: bo.Seed, Workers: bo.Workers,
			MaxSamples: bo.MaxSamples,
		})
		if err != nil {
			return nil, fmt.Errorf("core: selecting %d seeds: %w", numSeeds, err)
		}
		pt := MixPoint{
			SeedFrac: frac,
			NumSeeds: numSeeds,
			NumBoost: numBoost,
			Seeds:    seedRes.Seeds,
		}

		if numBoost > 0 {
			boostOpt := bo
			boostOpt.K = numBoost
			boostRes, err := PRRBoost(g, seedRes.Seeds, boostOpt)
			if err != nil {
				return nil, fmt.Errorf("core: boosting with k=%d: %w", numBoost, err)
			}
			pt.Boost = boostRes.BoostSet
		}

		spread, err := diffusion.EstimateSpread(g, pt.Seeds, pt.Boost, diffusion.Options{
			Sims: opt.Sims, Seed: bo.Seed, Workers: bo.Workers,
		})
		if err != nil {
			return nil, err
		}
		pt.BoostedSpread = spread
		out = append(out, pt)
	}
	return out, nil
}
