// Package core implements the paper's primary contribution: the
// PRR-Boost and PRR-Boost-LB approximation algorithms for the
// k-boosting problem on general graphs (Algorithm 2, Section V).
//
// Both algorithms share the same skeleton:
//
//  1. Run the IMM sampling machinery over random PRR-graphs to maximize
//     the submodular lower bound μ of the boost objective, with the
//     inflated failure exponent ℓ' = ℓ(1 + log3/log n) so that three
//     union-bounded events jointly succeed.
//  2. B_μ  := greedy max coverage over critical-node sets (maximizes μ̂).
//  3. B_Δ  := greedy over the true (non-submodular) objective Δ̂,
//     re-using the same PRR-graph pool (PRR-Boost only).
//  4. Return the better of the two under Δ̂ (the "sandwich" choice).
//
// The returned set is a (1−1/e−ε)·μ(B*)/Δ_S(B*)-approximation with
// probability at least 1−n^−ℓ (Theorem 2).
package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/imm"
	"github.com/kboost/kboost/internal/prr"
)

// Options configures PRR-Boost / PRR-Boost-LB.
type Options struct {
	K          int     // number of nodes to boost (required, >= 1)
	Epsilon    float64 // approximation slack ε (default 0.5, the paper's setting)
	Ell        float64 // failure exponent ℓ (default 1)
	Seed       uint64  // RNG seed (default 1)
	Workers    int     // parallelism (default GOMAXPROCS)
	MaxSamples int     // optional cap on generated PRR-graphs (0 = theory-driven)
	// Adaptive switches the sampling phase from IMM (Run) to the
	// SSA-style stop-and-stare controller (imm.RunAdaptive): usually far
	// fewer samples, no formal certificate. See DESIGN.md §4.2.
	Adaptive bool
	// Candidates, when non-nil, restricts the Δ̂ greedy (ModeFull
	// selection) to the listed nodes — a pre-filter shortlist, typically
	// from a cheap closed-form ranking. The lower-bound greedy B_μ and
	// the sandwich comparison are unrestricted, so the returned set is
	// never worse than B_μ; only the Δ̂-greedy leg is narrowed. Nil (the
	// default) keeps the exact algorithm.
	Candidates []int32
}

func (o Options) WithDefaults() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.5
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result reports a boosting run.
type Result struct {
	// BoostSet is the returned boost set B_sa (exactly K nodes unless the
	// graph has fewer eligible nodes).
	BoostSet []int32
	// EstBoost is the pool estimate of the boost of BoostSet: Δ̂ for
	// PRR-Boost, μ̂ (a lower bound) for PRR-Boost-LB.
	EstBoost float64
	// BoostSetMu / EstMu are the lower-bound-greedy solution B_μ and its
	// μ̂ estimate.
	BoostSetMu []int32
	EstMu      float64
	// BoostSetDelta / EstDelta are the Δ̂-greedy solution and estimate
	// (PRR-Boost only).
	BoostSetDelta []int32
	EstDelta      float64
	// Samples is the total number of PRR-graphs generated.
	Samples int
	// Pool statistics (compression ratios etc.) for Tables 2-3.
	PoolStats prr.PoolStats
	// Phase timings.
	SamplingTime  time.Duration
	SelectionTime time.Duration
}

// Validate checks a (graph, seeds, opt) boosting query without running
// it, so callers with caches (internal/engine) can reject bad requests
// before mutating any state.
func Validate(g *graph.Graph, seeds []int32, opt Options) error {
	return validate(g, seeds, opt.WithDefaults())
}

func validate(g *graph.Graph, seeds []int32, opt Options) error {
	if g.N() < 2 {
		return fmt.Errorf("core: graph must have at least 2 nodes, has %d", g.N())
	}
	if len(seeds) == 0 {
		return fmt.Errorf("core: seed set is empty")
	}
	seen := make(map[int32]struct{}, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= g.N() {
			return fmt.Errorf("core: seed %d out of range [0,%d)", s, g.N())
		}
		if _, dup := seen[s]; dup {
			return fmt.Errorf("core: duplicate seed %d", s)
		}
		seen[s] = struct{}{}
	}
	if opt.K < 1 {
		return fmt.Errorf("core: K=%d must be >= 1", opt.K)
	}
	if opt.K > g.N()-len(seeds) {
		return fmt.Errorf("core: K=%d exceeds the %d non-seed nodes", opt.K, g.N()-len(seeds))
	}
	return nil
}

// PRRBoost runs Algorithm 2 and returns the sandwich solution B_sa.
func PRRBoost(g *graph.Graph, seeds []int32, opt Options) (*Result, error) {
	return boostOnce(g, seeds, opt, prr.ModeFull)
}

// PRRBoostLB runs the lower-bound-only variant: it returns B_μ directly,
// skipping Δ̂ greedy and generating leaner PRR-graphs (critical nodes
// only). Same approximation factor as PRR-Boost, lower cost (Section
// V-C).
func PRRBoostLB(g *graph.Graph, seeds []int32, opt Options) (*Result, error) {
	return boostOnce(g, seeds, opt, prr.ModeLB)
}

// boostOnce is the one-shot path: build a fresh pool, select, discard.
func boostOnce(g *graph.Graph, seeds []int32, opt Options, mode prr.Mode) (*Result, error) {
	opt = opt.WithDefaults()
	if err := validate(g, seeds, opt); err != nil {
		return nil, err
	}
	t0 := time.Now()
	pool, err := buildPool(context.Background(), g, seeds, opt, mode)
	if err != nil {
		return nil, err
	}
	sampling := time.Since(t0)
	res, err := BoostFromPool(pool, opt)
	if err != nil {
		return nil, err
	}
	res.SamplingTime = sampling
	return res, nil
}

// BuildPool runs the sampling phase on a fresh pool and returns it
// sized for (opt.K, opt.Epsilon, opt.Ell). It is the exported half of
// the PRRBoost split: long-lived callers (internal/engine) keep the
// returned pool and amortize it across queries with GrowPool and
// BoostFromPool.
func BuildPool(g *graph.Graph, seeds []int32, opt Options, mode prr.Mode) (*prr.Pool, error) {
	return BuildPoolContext(context.Background(), g, seeds, opt, mode)
}

// BuildPoolContext is BuildPool with cooperative cancellation threaded
// through the IMM sampling loop: a canceled build aborts within a few
// sketches, merges nothing, and a retry regenerates a bit-identical
// pool.
func BuildPoolContext(ctx context.Context, g *graph.Graph, seeds []int32, opt Options, mode prr.Mode) (*prr.Pool, error) {
	opt = opt.WithDefaults()
	if err := validate(g, seeds, opt); err != nil {
		return nil, err
	}
	return buildPool(ctx, g, seeds, opt, mode)
}

// GrowPool re-runs the IMM sizing against an existing pool, extending
// it in place when the requested (K, Epsilon, Ell, MaxSamples) demand
// more samples than the pool holds. Existing PRR-graphs are never
// regenerated; the returned count is the number of newly generated
// ones (zero when the pool is already large enough). opt.K must not
// exceed the pool's generation budget pool.K().
func GrowPool(pool *prr.Pool, opt Options) (added int, err error) {
	return GrowPoolContext(context.Background(), pool, opt)
}

// GrowPoolContext is GrowPool with cooperative cancellation: an aborted
// grow leaves the pool exactly as it was (completed IMM rounds are
// kept; a partial Extend never merges).
func GrowPoolContext(ctx context.Context, pool *prr.Pool, opt Options) (added int, err error) {
	opt = opt.WithDefaults()
	if err := validate(pool.Graph(), pool.Seeds(), opt); err != nil {
		return 0, err
	}
	if opt.K > pool.K() {
		return 0, fmt.Errorf("core: pool was generated for k<=%d, cannot serve k=%d", pool.K(), opt.K)
	}
	before := pool.Size()
	params := imm.Params{
		N:          pool.Graph().N(),
		K:          opt.K,
		Epsilon:    opt.Epsilon,
		Ell:        imm.EllForSandwich(opt.Ell, pool.Graph().N()),
		MaxSamples: opt.MaxSamples,
	}
	if _, err := imm.RunContext(ctx, pool, params); err != nil {
		return 0, err
	}
	return pool.Size() - before, nil
}

// BoostFromPool runs the selection phase of Algorithm 2 on an existing
// pool: greedy max coverage of the critical-node sets (B_μ), and — for
// ModeFull pools — the Δ̂ greedy plus the sandwich choice between the
// two. The pool is not grown; callers wanting the full algorithm
// combine BuildPool/GrowPool with this. SamplingTime is left zero.
func BoostFromPool(pool *prr.Pool, opt Options) (*Result, error) {
	return BoostFromPoolContext(context.Background(), pool, opt)
}

// BoostFromPoolContext is BoostFromPool with cooperative cancellation:
// the CELF selection loops poll ctx once per pick, so a canceled warm
// query returns within one re-evaluation round. The pool is read-only
// here; cancellation cannot corrupt it.
func BoostFromPoolContext(ctx context.Context, pool *prr.Pool, opt Options) (*Result, error) {
	opt = opt.WithDefaults()
	g, seeds := pool.Graph(), pool.Seeds()
	if err := validate(g, seeds, opt); err != nil {
		return nil, err
	}
	if opt.K > pool.K() {
		return nil, fmt.Errorf("core: pool was generated for k<=%d, cannot serve k=%d", pool.K(), opt.K)
	}
	res := &Result{Samples: pool.Size(), PoolStats: pool.Stats()}
	t1 := time.Now()
	bMu, covMu := pool.SelectAndCover(opt.K)
	bMu = padBoostSet(bMu, opt.K, g, seeds)
	res.BoostSetMu = bMu
	res.EstMu = scale(g, covMu, pool.Size())

	if pool.Mode() != prr.ModeFull {
		res.BoostSet = bMu
		res.EstBoost = res.EstMu
		res.SelectionTime = time.Since(t1)
		return res, nil
	}

	bDelta, covDelta, err := pool.SelectDeltaAmongContext(ctx, opt.K, opt.Candidates)
	if err != nil {
		return nil, err
	}
	bDelta = padBoostSet(bDelta, opt.K, g, seeds)
	res.BoostSetDelta = bDelta
	res.EstDelta = scale(g, covDelta, pool.Size())

	// Sandwich choice: compare the two candidates under Δ̂.
	deltaOfMu, err := pool.EstimateDelta(bMu)
	if err != nil {
		return nil, err
	}
	if deltaOfMu >= res.EstDelta {
		res.BoostSet = bMu
		res.EstBoost = deltaOfMu
	} else {
		res.BoostSet = bDelta
		res.EstBoost = res.EstDelta
	}
	res.SelectionTime = time.Since(t1)
	return res, nil
}

// buildPool runs the sampling phase — IMM by default, the SSA-style
// adaptive controller when opt.Adaptive — and returns the sized pool.
func buildPool(ctx context.Context, g *graph.Graph, seeds []int32, opt Options, mode prr.Mode) (*prr.Pool, error) {
	params := imm.Params{
		N:          g.N(),
		K:          opt.K,
		Epsilon:    opt.Epsilon,
		Ell:        imm.EllForSandwich(opt.Ell, g.N()),
		MaxSamples: opt.MaxSamples,
	}
	if opt.Adaptive {
		trained, _, err := imm.RunAdaptive(func(s uint64) (imm.ValidatableSketcher, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return prr.NewPool(g, seeds, opt.K, mode, opt.Seed*0x9e3779b97f4a7c15+s, opt.Workers)
		}, params)
		if err != nil {
			return nil, err
		}
		return trained.(*prr.Pool), nil
	}
	pool, err := prr.NewPool(g, seeds, opt.K, mode, opt.Seed, opt.Workers)
	if err != nil {
		return nil, err
	}
	if _, err := imm.RunContext(ctx, pool, params); err != nil {
		return nil, err
	}
	return pool, nil
}

func scale(g *graph.Graph, covered, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(g.N()) * float64(covered) / float64(total)
}

// padBoostSet extends chosen to exactly k nodes using the lowest-id
// non-seed nodes (the experiments fix |B| = k; padding nodes have zero
// marginal estimate and never hurt).
func padBoostSet(chosen []int32, k int, g *graph.Graph, seeds []int32) []int32 {
	if len(chosen) >= k {
		return chosen[:k]
	}
	bad := make(map[int32]struct{}, len(chosen)+len(seeds))
	for _, v := range chosen {
		bad[v] = struct{}{}
	}
	for _, s := range seeds {
		bad[s] = struct{}{}
	}
	out := append([]int32(nil), chosen...)
	for v := int32(0); int(v) < g.N() && len(out) < k; v++ {
		if _, skip := bad[v]; skip {
			continue
		}
		out = append(out, v)
	}
	return out
}

// SandwichRatio estimates μ̂(B)/Δ̂(B) for a given boost set using a
// fresh PRR-graph pool of the given size. The paper uses this ratio
// (Figures 7, 9, 12) to report the data-dependent approximation factor.
func SandwichRatio(g *graph.Graph, seeds, boost []int32, samples int, opt Options) (mu, delta, ratio float64, err error) {
	opt = opt.WithDefaults()
	k := opt.K
	if k < len(boost) {
		k = len(boost)
	}
	if k < 1 {
		return 0, 0, 0, fmt.Errorf("core: empty boost set")
	}
	pool, err := prr.NewPool(g, seeds, k, prr.ModeFull, opt.Seed, opt.Workers)
	if err != nil {
		return 0, 0, 0, err
	}
	pool.Extend(samples)
	mu = pool.EstimateMu(boost)
	delta, err = pool.EstimateDelta(boost)
	if err != nil {
		return 0, 0, 0, err
	}
	if delta > 0 {
		ratio = mu / delta
	}
	return mu, delta, ratio, nil
}

// SortedCopy returns a sorted copy of nodes; a convenience for stable
// output in examples and the experiment harness.
func SortedCopy(nodes []int32) []int32 {
	out := append([]int32(nil), nodes...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
