package core

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/rrset"
	"github.com/kboost/kboost/internal/testutil"
)

// Adaptive sampling must make the same qualitative choice as IMM on the
// Figure 1 example (boost v0) with far fewer samples on easy instances.
func TestPRRBoostAdaptiveFig1(t *testing.T) {
	g, seeds := testutil.Fig1()
	res, err := PRRBoost(g, seeds, Options{K: 1, Seed: 3, Adaptive: true, MaxSamples: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BoostSet) != 1 || res.BoostSet[0] != 1 {
		t.Fatalf("adaptive boost set %v, want [1]", res.BoostSet)
	}
	if math.Abs(res.EstBoost-0.22) > 0.05 {
		t.Fatalf("adaptive boost estimate %v, want ~0.22", res.EstBoost)
	}
}

func TestPRRBoostLBAdaptive(t *testing.T) {
	r := rng.New(5)
	g := testutil.RandomGraph(r, 25, 70, 0.4)
	seeds := []int32{0, 1}
	res, err := PRRBoostLB(g, seeds, Options{K: 3, Seed: 3, Adaptive: true, MaxSamples: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.BoostSet) != 3 {
		t.Fatalf("|B| = %d", len(res.BoostSet))
	}
	for _, v := range res.BoostSet {
		if v == 0 || v == 1 {
			t.Fatal("adaptive LB picked a seed")
		}
	}
}

// The two controllers must agree on solution quality; sample counts
// differ per instance (IMM wins when OPT's lower bound is large,
// adaptive wins when IMM's union-bound sizing is pessimistic), so only
// quality is asserted.
func TestAdaptiveMatchesIMMQuality(t *testing.T) {
	r := rng.New(6)
	g := testutil.RandomGraph(r, 40, 120, 0.4)
	seeds := []int32{0}
	immRes, err := PRRBoost(g, seeds, Options{K: 3, Seed: 7, MaxSamples: 300000})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := PRRBoost(g, seeds, Options{K: 3, Seed: 7, Adaptive: true, MaxSamples: 300000})
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.Samples == 0 || adaptive.EstBoost <= 0 {
		t.Fatalf("degenerate adaptive run: %+v", adaptive)
	}
	if adaptive.EstBoost < 0.7*immRes.EstBoost {
		t.Fatalf("adaptive boost %v far below IMM's %v", adaptive.EstBoost, immRes.EstBoost)
	}
}

func TestSelectSeedsAdaptive(t *testing.T) {
	r := rng.New(9)
	g := testutil.RandomGraph(r, 30, 80, 0.3)
	res, err := rrset.SelectSeeds(g, 3, rrset.Options{Seed: 2, Adaptive: true, MaxSamples: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 3 {
		t.Fatalf("%d seeds", len(res.Seeds))
	}
	if res.EstInfluence < 3 {
		t.Fatalf("influence estimate %v below seed count", res.EstInfluence)
	}
}
