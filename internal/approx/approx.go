// Package approx implements closed-form one/two-hop spread
// approximations computed directly off the CSR adjacency, following the
// degree-truncated estimator of Chung & Lee 2014 ("one-hop/two-hop
// spread") extended with the influence-boosting model's dual edge
// probabilities: every edge (u,v) contributes its boosted probability
// when v is in the boost set and its base probability otherwise.
//
// These estimators walk at most the two-hop out-neighborhood of the
// seed set — no sampling, no pool, no allocation proportional to the
// sims budget — which makes them the tier-0 read path of the engine's
// tiered /v1/estimate. They carry no approximation guarantee: paths
// longer than two hops are ignored (underestimate) while overlapping
// two-hop paths are double-counted (overestimate). On sub-critical
// graphs with small edge probabilities the two effects are small; on
// dense supercritical graphs the error is unbounded, which is why the
// engine calibrates the observed error against the exact tier before
// trusting the closed form.
//
// The same formulas double as boosted-LT approximations by passing the
// model's per-node in-weight normalizers: with thresholds θ_v ~ U[0,1],
// the probability that a single newly active in-neighbor u activates v
// is exactly its effective weight p(u,v)/norm(v), so the norm-divided
// probabilities play the role the IC probabilities play below.
package approx

import (
	"sort"

	"github.com/kboost/kboost/internal/graph"
)

// masks holds the per-call seed/boost membership tables. Boost is nil
// when the boost set is empty, which keeps the unboosted pass of a
// boost-delta evaluation allocation-light.
type masks struct {
	seed  []bool
	boost []bool
}

func newMasks(g *graph.Graph, seeds, boost []int32) (masks, []int32) {
	m := masks{seed: make([]bool, g.N())}
	uniq := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if !m.seed[s] {
			m.seed[s] = true
			uniq = append(uniq, s)
		}
	}
	if len(boost) > 0 {
		m.boost = make([]bool, g.N())
		for _, b := range boost {
			m.boost[b] = true
		}
	}
	return m, uniq
}

// pe returns the effective probability of the i-th out-edge of u given
// the boost mask and the optional LT normalizer of the edge target.
func (m *masks) pe(p, pb []float64, to []int32, i int, norm []float64) float64 {
	v := to[i]
	w := p[i]
	if m.boost != nil && m.boost[v] {
		w = pb[i]
	}
	if norm != nil {
		w /= norm[v]
	}
	return w
}

// TwoHopSpread returns the closed-form two-hop approximation σ̂₂(S, B)
// of the boosted spread of seed set S under boost set B. norm, when
// non-nil, divides every edge probability into node v by norm[v] —
// pass the boosted-LT model's normalizers to approximate that model,
// nil for IC. Duplicate seeds are ignored; the result is clamped to
// [|S|, N].
//
// The estimator is Chung & Lee's: each seed contributes itself plus its
// one- and two-hop forward probability mass, with corrections removing
// mass that flows straight back into the seed set (the χ term and the
// one-hop seed-neighbor exclusion).
func TwoHopSpread(g *graph.Graph, seeds, boost []int32, norm []float64) float64 {
	m, uniq := newMasks(g, seeds, boost)
	return twoHop(g, uniq, &m, norm)
}

// TwoHopBoost returns the two-hop approximations of the boosted spread
// σ̂₂(S, B) and of the boost Δ̂ = σ̂₂(S, B) − σ̂₂(S, ∅). The delta is
// clamped at 0: boosting never hurts under the model, but the two
// clamped approximations can cross on supercritical graphs.
func TwoHopBoost(g *graph.Graph, seeds, boost []int32, norm []float64) (spread, delta float64) {
	m, uniq := newMasks(g, seeds, boost)
	spread = twoHop(g, uniq, &m, norm)
	if len(boost) == 0 {
		return spread, 0
	}
	m.boost = nil
	base := twoHop(g, uniq, &m, norm)
	if delta = spread - base; delta < 0 {
		delta = 0
	}
	return spread, delta
}

// twoHop evaluates the estimator over the deduplicated seed list.
func twoHop(g *graph.Graph, seeds []int32, m *masks, norm []float64) float64 {
	var total float64
	for _, s := range seeds {
		total += 1
		sTo := g.OutTo(s)
		sP := g.OutP(s)
		sPB := g.OutPBoost(s)
		for i, c := range sTo {
			psc := m.pe(sP, sPB, sTo, i, norm)
			if m.seed[c] {
				continue // c already counted as a seed
			}
			// One pass over Out(c) yields σ₁(c)'s neighbor sum, the
			// back-edge correction p(c,s), and the χ term removing
			// two-hop paths that land on another seed.
			sigma1 := 1.0
			var pcs, chi float64
			cTo := g.OutTo(c)
			cP := g.OutP(c)
			cPB := g.OutPBoost(c)
			for j, d := range cTo {
				w := m.pe(cP, cPB, cTo, j, norm)
				sigma1 += w
				if d == s {
					pcs = w
				} else if m.seed[d] {
					chi += w
				}
			}
			total += psc * (sigma1 - pcs - chi)
		}
	}
	if lo := float64(len(seeds)); total < lo {
		total = lo
	}
	if hi := float64(g.N()); total > hi {
		total = hi
	}
	return total
}

// BoostCandidates returns up to c non-seed nodes ranked by a
// closed-form estimate of their single-node boost gain, descending
// (ties toward the smaller id). The score of v truncates the boost
// cascade at two hops from the seed set:
//
//	score(v) = Σ_{u: (u,v)∈E} reach(u) · (p'(u,v) − p(u,v)) · fwd(v)
//
// where reach(u) is u's probability of being active within one hop of
// the seeds (1 for seeds, min(1, Σ_s p(s,u)) otherwise) and fwd(v) =
// 1 + Σ_{w∈Out(v)\S} p(v,w) is v's forward mass. Nodes with zero score
// — no boostable in-edge within reach of the seeds — are omitted, so
// the result may be shorter than c. Used as the tier-0 candidate
// pre-filter that shrinks the CELF heaps of the PRR and LT greedy
// paths; like every tier-0 product it is a heuristic with no guarantee.
func BoostCandidates(g *graph.Graph, seeds []int32, c int, norm []float64) []int32 {
	n := g.N()
	if c <= 0 {
		return nil
	}
	seedMask := make([]bool, n)
	for _, s := range seeds {
		seedMask[s] = true
	}

	// reach: seeds plus their out-neighbors, capped at 1.
	reach := make([]float64, n)
	var frontier []int32
	for _, s := range seeds {
		if reach[s] != 1 {
			reach[s] = 1
			frontier = append(frontier, s)
		}
	}
	for _, s := range seeds {
		to := g.OutTo(s)
		p := g.OutP(s)
		for i, u := range to {
			if seedMask[u] {
				continue
			}
			if reach[u] == 0 {
				frontier = append(frontier, u)
			}
			if reach[u] += p[i]; reach[u] > 1 {
				reach[u] = 1
			}
		}
	}

	// Score the out-neighbors of every reached node by boost uplift
	// times forward mass; fwd is memoized since high-in-degree targets
	// recur across sources.
	score := make([]float64, n)
	fwd := make([]float64, n)
	fwdDone := make([]bool, n)
	var cands []int32
	for _, u := range frontier {
		to := g.OutTo(u)
		p := g.OutP(u)
		pb := g.OutPBoost(u)
		for i, v := range to {
			if seedMask[v] {
				continue
			}
			uplift := pb[i] - p[i]
			if uplift == 0 {
				continue
			}
			if norm != nil {
				uplift /= norm[v]
			}
			if !fwdDone[v] {
				fwdDone[v] = true
				f := 1.0
				vTo := g.OutTo(v)
				vP := g.OutP(v)
				for j, w := range vTo {
					if !seedMask[w] {
						f += vP[j]
					}
				}
				fwd[v] = f
			}
			if score[v] == 0 {
				cands = append(cands, v)
			}
			score[v] += reach[u] * uplift * fwd[v]
		}
	}

	sort.Slice(cands, func(i, j int) bool {
		if score[cands[i]] != score[cands[j]] {
			return score[cands[i]] > score[cands[j]]
		}
		return cands[i] < cands[j]
	})
	if len(cands) > c {
		cands = cands[:c]
	}
	return cands
}
