package approx

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// pathGraph builds 0 -> 1 -> 2 with p=0.2, p'=0.5 on every edge.
func pathGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.2, 0.5)
	b.MustAddEdge(1, 2, 0.2, 0.5)
	return b.MustBuild()
}

func TestTwoHopSpreadHandComputed(t *testing.T) {
	g := pathGraph(t)
	// σ̂₂({0}) = 1 + p01·(1 + p12) = 1 + 0.2·1.2 = 1.24 — and the chain
	// has no paths longer than 2 hops, so this is the exact spread.
	got := TwoHopSpread(g, []int32{0}, nil, nil)
	if math.Abs(got-1.24) > 1e-12 {
		t.Fatalf("σ̂₂ = %v, want 1.24", got)
	}
	// Boosting node 1 raises the first hop: 1 + 0.5·1.2 = 1.6.
	got = TwoHopSpread(g, []int32{0}, []int32{1}, nil)
	if math.Abs(got-1.6) > 1e-12 {
		t.Fatalf("boosted σ̂₂ = %v, want 1.6", got)
	}
	// Boosting node 2 raises the second hop: 1 + 0.2·1.5 = 1.3.
	spread, delta := TwoHopBoost(g, []int32{0}, []int32{2}, nil)
	if math.Abs(spread-1.3) > 1e-12 || math.Abs(delta-0.06) > 1e-12 {
		t.Fatalf("TwoHopBoost = (%v, %v), want (1.3, 0.06)", spread, delta)
	}
}

func TestTwoHopSeedCorrections(t *testing.T) {
	// Triangle 0 -> 1 -> 0 and 1 -> 2 -> 0: back-edges into the seed
	// set must not be counted.
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.5, 0.5)
	b.MustAddEdge(1, 0, 0.5, 0.5)
	b.MustAddEdge(1, 2, 0.5, 0.5)
	b.MustAddEdge(2, 0, 0.5, 0.5)
	g := b.MustBuild()
	// Seed {0}: 1 + p01·(σ₁(1) − p10) with σ₁(1) = 1 + p10 + p12 = 2,
	// so 1 + 0.5·1.5 = 1.75. The 2→0 back-edge is beyond two hops.
	if got := TwoHopSpread(g, []int32{0}, nil, nil); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("σ̂₂({0}) = %v, want 1.75", got)
	}
	// Seed {0,2}: node 0 contributes 1 + p01·(σ₁(1) − p10 − χ) where
	// the χ term removes the 1→2 edge into the other seed:
	// 1 + 0.5·(2 − 0.5 − 0.5) = 1.5. Node 2's only edge lands on seed
	// 0, contributing 1. Total 2.5.
	if got := TwoHopSpread(g, []int32{0, 2}, nil, nil); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("σ̂₂({0,2}) = %v, want 2.5", got)
	}
	// Duplicate seeds collapse.
	if got := TwoHopSpread(g, []int32{0, 0, 0}, nil, nil); math.Abs(got-1.75) > 1e-12 {
		t.Fatalf("σ̂₂({0,0,0}) = %v, want 1.75", got)
	}
}

func TestTwoHopClamped(t *testing.T) {
	// Dense clique with p=0.9: the raw two-hop sum overshoots N and
	// must clamp there.
	b := graph.NewBuilder(4)
	for u := int32(0); u < 4; u++ {
		for v := int32(0); v < 4; v++ {
			if u != v {
				b.MustAddEdge(u, v, 0.9, 0.95)
			}
		}
	}
	g := b.MustBuild()
	if got := TwoHopSpread(g, []int32{0, 1}, nil, nil); got != 4 {
		t.Fatalf("σ̂₂ = %v, want clamp at N=4", got)
	}
	// Isolated seeds floor at |S|.
	empty := graph.NewBuilder(5).MustBuild()
	if got := TwoHopSpread(empty, []int32{1, 3}, nil, nil); got != 2 {
		t.Fatalf("σ̂₂ on empty graph = %v, want 2", got)
	}
}

// On sub-critical sparse graphs (where two hops carry most of the
// cascade) the closed form must track the Monte-Carlo estimate.
func TestTwoHopTracksMonteCarlo(t *testing.T) {
	r := rng.New(11)
	for trial := 0; trial < 5; trial++ {
		g := testutil.RandomGraph(r, 60, 150, 0.08)
		seeds := testutil.RandomSeedSet(r, 60, 3)
		boost := testutil.RandomSeedSet(r, 60, 5)
		mc, err := diffusion.EstimateSpread(g, seeds, boost, diffusion.Options{Sims: 40000, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		got := TwoHopSpread(g, seeds, boost, nil)
		if rel := math.Abs(got-mc) / mc; rel > 0.05 {
			t.Fatalf("trial %d: σ̂₂ = %v vs MC %v (rel %.3f)", trial, got, mc, rel)
		}
	}
}

func TestBoostCandidates(t *testing.T) {
	// Star out of seed 0 with one high-uplift target (node 2).
	b := graph.NewBuilder(5)
	b.MustAddEdge(0, 1, 0.1, 0.15)
	b.MustAddEdge(0, 2, 0.1, 0.9)
	b.MustAddEdge(0, 3, 0.1, 0.2)
	b.MustAddEdge(3, 4, 0.1, 0.1) // zero uplift: node 4 unreachable as candidate
	g := b.MustBuild()
	cands := BoostCandidates(g, []int32{0}, 10, nil)
	if len(cands) != 3 || cands[0] != 2 {
		t.Fatalf("cands = %v, want node 2 ranked first of 3", cands)
	}
	for _, v := range cands {
		if v == 0 {
			t.Fatal("seed included in candidates")
		}
		if v == 4 {
			t.Fatal("zero-uplift node included in candidates")
		}
	}
	// Cap respected, ranking stable.
	top1 := BoostCandidates(g, []int32{0}, 1, nil)
	if len(top1) != 1 || top1[0] != 2 {
		t.Fatalf("top-1 = %v, want [2]", top1)
	}
	again := BoostCandidates(g, []int32{0}, 10, nil)
	for i := range cands {
		if cands[i] != again[i] {
			t.Fatalf("non-deterministic ranking: %v vs %v", cands, again)
		}
	}
	if got := BoostCandidates(g, []int32{0}, 0, nil); got != nil {
		t.Fatalf("c=0 should yield nil, got %v", got)
	}
}
