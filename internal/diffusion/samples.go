package diffusion

import (
	"sync"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// EstimateSamples runs opt.Sims coupled boosted-IC replicates and
// returns the per-simulation boosted spread and boost delta samples
// (delta is all zeros when boost is empty). Unlike EstimateSpread /
// EstimateBoost — which split one root stream per worker — each
// simulation here draws from its own stateless stream
// rng.StreamSeed(opt.Seed, simIndex), so the returned vectors are
// bit-identical for every worker count: the partitioning only decides
// who fills which slot. This is the engine's tier-1 estimator; the
// sample vectors feed stats.Summarize for confidence intervals, which
// the mean-only estimators above cannot provide.
func EstimateSamples(g *graph.Graph, seeds, boost []int32, opt Options) (spread, delta []float64, err error) {
	if err := validateNodes(g, seeds, "seed"); err != nil {
		return nil, nil, err
	}
	if err := validateNodes(g, boost, "boost"); err != nil {
		return nil, nil, err
	}
	opt = opt.withDefaults()
	mask := MaskFromSet(g.N(), boost)
	spread = make([]float64, opt.Sims)
	delta = make([]float64, opt.Sims)
	pair := len(boost) > 0

	var wg sync.WaitGroup
	counts := simSplit(opt.Sims, opt.Workers)
	lo := 0
	for _, count := range counts {
		if count == 0 {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sim := NewSimulator(g)
			var r rng.Source
			for i := lo; i < hi; i++ {
				r.ReseedStream(opt.Seed, uint64(i))
				if pair {
					base, boosted := sim.PairOnce(seeds, mask, &r)
					spread[i] = float64(boosted)
					delta[i] = float64(boosted - base)
				} else {
					spread[i] = float64(sim.SpreadOnce(seeds, mask, &r))
				}
			}
		}(lo, lo+count)
		lo += count
	}
	wg.Wait()
	return spread, delta, nil
}
