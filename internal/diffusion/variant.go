package diffusion

import (
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// BoostTarget selects which endpoint's boost status upgrades an edge
// probability from p to p'.
//
// The paper's Definition 1 boosts receivers: a boosted node is more
// easily influenced by its neighbors. The remark below Definition 1
// notes the symmetric variant — boosted users are more *influential* —
// where a newly activated boosted u influences its out-neighbors with
// p'. The PRR machinery is developed for the receiver model; the
// sender variant is provided at the simulation level for
// experimentation.
type BoostTarget uint8

const (
	// BoostReceivers is Definition 1: edge (u,v) uses p'(u,v) iff v is
	// boosted.
	BoostReceivers BoostTarget = iota
	// BoostSenders is the remark's variant: edge (u,v) uses p'(u,v) iff
	// u is boosted.
	BoostSenders
)

// SpreadOnceTarget runs one diffusion under the chosen boost variant
// and returns the number of activated nodes.
func (s *Simulator) SpreadOnceTarget(seeds []int32, boost []bool, target BoostTarget, r *rng.Source) int {
	if target == BoostReceivers {
		return s.SpreadOnce(seeds, boost, r)
	}
	g := s.g
	s.epoch++
	active := 0
	s.queue = s.queue[:0]
	for _, v := range seeds {
		if s.mark[v] != s.epoch {
			s.mark[v] = s.epoch
			s.queue = append(s.queue, v)
			active++
		}
	}
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		senderBoosted := boost != nil && boost[u]
		to := g.OutTo(u)
		p := g.OutP(u)
		pb := g.OutPBoost(u)
		for i, v := range to {
			if s.mark[v] == s.epoch {
				continue
			}
			prob := p[i]
			if senderBoosted {
				prob = pb[i]
			}
			if r.Bernoulli(prob) {
				s.mark[v] = s.epoch
				s.queue = append(s.queue, v)
				active++
			}
		}
	}
	return active
}

// EstimateSpreadTarget estimates σ_S(B) under the chosen boost variant.
func EstimateSpreadTarget(g *graph.Graph, seeds, boost []int32, target BoostTarget, opt Options) (float64, error) {
	if err := validateNodes(g, seeds, "seed"); err != nil {
		return 0, err
	}
	if err := validateNodes(g, boost, "boost"); err != nil {
		return 0, err
	}
	opt = opt.withDefaults()
	mask := MaskFromSet(g.N(), boost)
	total := parallelSum(g, opt, func(sim *Simulator, r *rng.Source) float64 {
		return float64(sim.SpreadOnceTarget(seeds, mask, target, r))
	})
	return total / float64(opt.Sims), nil
}

// EstimateBoostTarget estimates Δ_S(B) under the chosen boost variant
// by differencing spread estimates that share RNG streams.
func EstimateBoostTarget(g *graph.Graph, seeds, boost []int32, target BoostTarget, opt Options) (float64, error) {
	if target == BoostReceivers {
		return EstimateBoost(g, seeds, boost, opt)
	}
	with, err := EstimateSpreadTarget(g, seeds, boost, target, opt)
	if err != nil {
		return 0, err
	}
	without, err := EstimateSpreadTarget(g, seeds, nil, target, opt)
	if err != nil {
		return 0, err
	}
	return with - without, nil
}
