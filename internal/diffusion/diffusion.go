// Package diffusion implements the influence boosting model of Lin, Chen
// and Lui (Definition 1): Independent Cascade diffusion where a boosted
// node v is influenced by a newly active in-neighbor u with probability
// p'(u,v) instead of p(u,v).
//
// The package provides single-run simulation, coupled base/boosted runs
// over a shared possible world (a large variance reduction when
// estimating the boost Δ_S(B) = σ_S(B) − σ_S(∅)), and parallel
// Monte-Carlo estimators.
package diffusion

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// Edge status in a sampled possible world.
const (
	statusUnsampled uint8 = iota
	statusBlocked         // fails even for boosted targets
	statusLive            // succeeds regardless of boosting
	statusBoostOnly       // succeeds only if the target is boosted
)

// Simulator runs boosted-IC diffusions on one graph. It owns scratch
// buffers sized to the graph, so repeated simulations allocate nothing.
// A Simulator is not safe for concurrent use; create one per goroutine.
type Simulator struct {
	g *graph.Graph

	status  []uint8 // per out-edge sampled status (epoch = touched list)
	touched []int32 // out-edge indices sampled in the current world

	mark  []int32 // per-node visit epoch
	epoch int32

	queue []int32
}

// NewSimulator returns a Simulator for g.
func NewSimulator(g *graph.Graph) *Simulator {
	return &Simulator{
		g:      g,
		status: make([]uint8, g.M()),
		mark:   make([]int32, g.N()),
		epoch:  0,
	}
}

// MaskFromSet returns an n-length boolean mask with mask[v]=true for
// each v in nodes.
func MaskFromSet(n int, nodes []int32) []bool {
	mask := make([]bool, n)
	for _, v := range nodes {
		mask[v] = true
	}
	return mask
}

// SpreadOnce runs one diffusion from seeds with boost mask (nil means no
// boosted nodes) and returns the number of activated nodes. Edge
// outcomes are drawn from r.
func (s *Simulator) SpreadOnce(seeds []int32, boost []bool, r *rng.Source) int {
	g := s.g
	s.epoch++
	active := 0
	s.queue = s.queue[:0]
	for _, v := range seeds {
		if s.mark[v] != s.epoch {
			s.mark[v] = s.epoch
			s.queue = append(s.queue, v)
			active++
		}
	}
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		to := g.OutTo(u)
		p := g.OutP(u)
		pb := g.OutPBoost(u)
		for i, v := range to {
			if s.mark[v] == s.epoch {
				continue
			}
			prob := p[i]
			if boost != nil && boost[v] {
				prob = pb[i]
			}
			if r.Bernoulli(prob) {
				s.mark[v] = s.epoch
				s.queue = append(s.queue, v)
				active++
			}
		}
	}
	return active
}

// PairOnce samples one possible world (per-edge status live /
// live-upon-boost / blocked) and returns the spread without boosting and
// the spread with the given boost mask, both measured in that same
// world. Because the worlds are coupled, boosted-base is an unbiased,
// low-variance per-replicate estimate of the boost of influence.
func (s *Simulator) PairOnce(seeds []int32, boost []bool, r *rng.Source) (base, boosted int) {
	g := s.g

	// Pass 1: boosted world. Superset of the base activation, so every
	// edge the base pass needs has a recorded status afterwards.
	s.epoch++
	boostEpoch := s.epoch
	s.queue = s.queue[:0]
	for _, v := range seeds {
		if s.mark[v] != boostEpoch {
			s.mark[v] = boostEpoch
			s.queue = append(s.queue, v)
			boosted++
		}
	}
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		start := edgeStart(g, u)
		to := g.OutTo(u)
		p := g.OutP(u)
		pb := g.OutPBoost(u)
		for i, v := range to {
			e := start + int32(i)
			st := s.status[e]
			if st == statusUnsampled {
				st = sampleStatus(p[i], pb[i], r)
				s.status[e] = st
				s.touched = append(s.touched, e)
			}
			if s.mark[v] == boostEpoch {
				continue
			}
			if st == statusLive || (st == statusBoostOnly && boost != nil && boost[v]) {
				s.mark[v] = boostEpoch
				s.queue = append(s.queue, v)
				boosted++
			}
		}
	}

	// Pass 2: base world over recorded statuses (live edges only).
	s.epoch++
	baseEpoch := s.epoch
	s.queue = s.queue[:0]
	for _, v := range seeds {
		if s.mark[v] != baseEpoch {
			s.mark[v] = baseEpoch
			s.queue = append(s.queue, v)
			base++
		}
	}
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		start := edgeStart(g, u)
		to := g.OutTo(u)
		for i, v := range to {
			if s.mark[v] == baseEpoch {
				continue
			}
			if s.status[start+int32(i)] == statusLive {
				s.mark[v] = baseEpoch
				s.queue = append(s.queue, v)
				base++
			}
		}
	}

	// Reset sampled statuses for the next world.
	for _, e := range s.touched {
		s.status[e] = statusUnsampled
	}
	s.touched = s.touched[:0]
	return base, boosted
}

// sampleStatus draws the three-way edge status: live with probability p,
// live-upon-boost with probability pb-p, blocked otherwise.
func sampleStatus(p, pb float64, r *rng.Source) uint8 {
	u := r.Float64()
	switch {
	case u < p:
		return statusLive
	case u < pb:
		return statusBoostOnly
	default:
		return statusBlocked
	}
}

// edgeStart returns the index of u's first out-edge in the global edge
// arrays. graph exposes subslices; recover the offset from capacity-free
// arithmetic instead would be fragile, so Graph gives us the count
// directly: the offset equals the sum of degrees of nodes < u, which the
// CSR start array stores. We re-derive it via OutTo alignment.
func edgeStart(g *graph.Graph, u int32) int32 {
	// OutTo(u) aliases the shared edge array; its offset is exposed by
	// Graph via OutOffset.
	return g.OutOffset(u)
}

// Options configures a Monte-Carlo estimation.
type Options struct {
	Sims    int    // number of simulations (default 10000)
	Seed    uint64 // RNG seed (default 1)
	Workers int    // parallel workers (default GOMAXPROCS)
}

func (o Options) withDefaults() Options {
	if o.Sims <= 0 {
		o.Sims = 10000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers > o.Sims {
		o.Workers = o.Sims
	}
	return o
}

func validateNodes(g *graph.Graph, nodes []int32, what string) error {
	for _, v := range nodes {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("diffusion: %s node %d out of range [0,%d)", what, v, g.N())
		}
	}
	return nil
}

// EstimateSpread estimates σ_S(B): the expected number of nodes
// activated when seeding seeds and boosting the nodes in boost (which
// may be nil for the plain IC spread).
func EstimateSpread(g *graph.Graph, seeds, boost []int32, opt Options) (float64, error) {
	if err := validateNodes(g, seeds, "seed"); err != nil {
		return 0, err
	}
	if err := validateNodes(g, boost, "boost"); err != nil {
		return 0, err
	}
	opt = opt.withDefaults()
	mask := MaskFromSet(g.N(), boost)
	total := parallelSum(g, opt, func(sim *Simulator, r *rng.Source) float64 {
		return float64(sim.SpreadOnce(seeds, mask, r))
	})
	return total / float64(opt.Sims), nil
}

// EstimateBoost estimates Δ_S(B) = σ_S(B) − σ_S(∅) using coupled
// possible worlds, which gives far lower variance than estimating the
// two spreads independently.
func EstimateBoost(g *graph.Graph, seeds, boost []int32, opt Options) (float64, error) {
	if err := validateNodes(g, seeds, "seed"); err != nil {
		return 0, err
	}
	if err := validateNodes(g, boost, "boost"); err != nil {
		return 0, err
	}
	opt = opt.withDefaults()
	mask := MaskFromSet(g.N(), boost)
	total := parallelSum(g, opt, func(sim *Simulator, r *rng.Source) float64 {
		base, boosted := sim.PairOnce(seeds, mask, r)
		return float64(boosted - base)
	})
	return total / float64(opt.Sims), nil
}

// EstimateActivation estimates the per-node activation probability under
// seeds and boost. It returns a slice of length g.N().
func EstimateActivation(g *graph.Graph, seeds, boost []int32, opt Options) ([]float64, error) {
	if err := validateNodes(g, seeds, "seed"); err != nil {
		return nil, err
	}
	if err := validateNodes(g, boost, "boost"); err != nil {
		return nil, err
	}
	opt = opt.withDefaults()
	mask := MaskFromSet(g.N(), boost)

	counts := make([]int64, g.N())
	var mu sync.Mutex
	var wg sync.WaitGroup
	root := rng.New(opt.Seed)
	per := simSplit(opt.Sims, opt.Workers)
	for w := 0; w < opt.Workers; w++ {
		r := root.Split()
		nSims := per[w]
		if nSims == 0 {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			sim := NewSimulator(g)
			local := make([]int64, g.N())
			for i := 0; i < nSims; i++ {
				sim.SpreadOnce(seeds, mask, r)
				// Nodes activated in this run carry the current epoch.
				for v := range local {
					if sim.mark[v] == sim.epoch {
						local[v]++
					}
				}
			}
			mu.Lock()
			for v := range counts {
				counts[v] += local[v]
			}
			mu.Unlock()
		}()
	}
	wg.Wait()
	probs := make([]float64, g.N())
	for v := range probs {
		probs[v] = float64(counts[v]) / float64(opt.Sims)
	}
	return probs, nil
}

// parallelSum runs opt.Sims replicates of one across opt.Workers
// goroutines with independent RNG streams and returns the sum.
func parallelSum(g *graph.Graph, opt Options, one func(*Simulator, *rng.Source) float64) float64 {
	root := rng.New(opt.Seed)
	per := simSplit(opt.Sims, opt.Workers)
	results := make([]float64, opt.Workers)
	var wg sync.WaitGroup
	for w := 0; w < opt.Workers; w++ {
		r := root.Split()
		nSims := per[w]
		if nSims == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sim := NewSimulator(g)
			var sum float64
			for i := 0; i < nSims; i++ {
				sum += one(sim, r)
			}
			results[w] = sum
		}(w)
	}
	wg.Wait()
	var total float64
	for _, v := range results {
		total += v
	}
	return total
}

// simSplit divides sims as evenly as possible across workers.
func simSplit(sims, workers int) []int {
	per := make([]int, workers)
	base := sims / workers
	rem := sims % workers
	for i := range per {
		per[i] = base
		if i < rem {
			per[i]++
		}
	}
	return per
}
