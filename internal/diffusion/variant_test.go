package diffusion

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// On a two-edge chain, the sender variant can be computed by hand:
// boosting v0 upgrades the edge v0->v1 (v0 is the sender), not s->v0.
func TestSenderVariantChain(t *testing.T) {
	g, seeds := testutil.Fig1() // s=0 -> v0=1 (0.2/0.4) -> v1=2 (0.1/0.2)
	// Boost v0 under the sender model: σ = 1 + 0.2 + 0.2*0.2 = 1.24.
	got, err := EstimateSpreadTarget(g, seeds, []int32{1}, BoostSenders, Options{Sims: 300000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.24) > 0.01 {
		t.Fatalf("sender-boost σ = %v, want 1.24", got)
	}
	// Boost the seed s: upgrades s->v0: σ = 1 + 0.4 + 0.4*0.1 = 1.44.
	got, err = EstimateSpreadTarget(g, seeds, []int32{0}, BoostSenders, Options{Sims: 300000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1.44) > 0.01 {
		t.Fatalf("seed-sender-boost σ = %v, want 1.44", got)
	}
}

// Receiver target must match the default path exactly.
func TestReceiverTargetDelegates(t *testing.T) {
	g, seeds := testutil.Fig1()
	a, err := EstimateSpreadTarget(g, seeds, []int32{1}, BoostReceivers, Options{Sims: 50000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSpread(g, seeds, []int32{1}, Options{Sims: 50000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("receiver variant %v != default %v", a, b)
	}
}

// The two variants agree when the boost set is empty.
func TestVariantsAgreeOnEmptyBoost(t *testing.T) {
	r := rng.New(7)
	g := testutil.RandomGraph(r, 12, 24, 0.5)
	seeds := []int32{0}
	a, err := EstimateSpreadTarget(g, seeds, nil, BoostSenders, Options{Sims: 100000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSpread(g, seeds, nil, Options{Sims: 100000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 0.05 {
		t.Fatalf("variants disagree with empty boost: %v vs %v", a, b)
	}
}

// Boosting seeds matters only in the sender variant; boosting leaves
// matters only in the receiver variant — the defining asymmetry.
func TestVariantAsymmetry(t *testing.T) {
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 0.1, 0.9)
	g := b.MustBuild()
	seeds := []int32{0}

	// Receiver model: boosting the seed does nothing.
	recvSeed, err := EstimateBoostTarget(g, seeds, []int32{0}, BoostReceivers, Options{Sims: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(recvSeed) > 0.01 {
		t.Fatalf("receiver model: boosting the seed changed Δ by %v", recvSeed)
	}
	// Sender model: boosting the seed upgrades its out-edge (+0.8).
	sendSeed, err := EstimateBoostTarget(g, seeds, []int32{0}, BoostSenders, Options{Sims: 300000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sendSeed-0.8) > 0.01 {
		t.Fatalf("sender model: Δ from boosting seed = %v, want 0.8", sendSeed)
	}
	// Sender model: boosting the sink does nothing.
	sendSink, err := EstimateBoostTarget(g, seeds, []int32{1}, BoostSenders, Options{Sims: 100000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sendSink) > 0.01 {
		t.Fatalf("sender model: boosting the sink changed Δ by %v", sendSink)
	}
}
