package diffusion

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/stats"
	"github.com/kboost/kboost/internal/testutil"
)

// The per-sim sample vectors must be bit-identical for every worker
// count: each simulation owns a stateless stream keyed by its index.
func TestEstimateSamplesWorkerInvariance(t *testing.T) {
	r := rng.New(31)
	g := testutil.RandomGraph(r, 40, 120, 0.4)
	seeds := []int32{0, 3}
	boost := []int32{7, 9}
	var ref []float64
	var refDelta []float64
	for _, workers := range []int{1, 2, 3, 7, 16} {
		spread, delta, err := EstimateSamples(g, seeds, boost, Options{Sims: 101, Seed: 5, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refDelta = spread, delta
			continue
		}
		for i := range ref {
			if spread[i] != ref[i] || delta[i] != refDelta[i] {
				t.Fatalf("workers=%d: sample %d diverged: (%v,%v) vs (%v,%v)",
					workers, i, spread[i], delta[i], ref[i], refDelta[i])
			}
		}
	}
}

// The sample mean must agree statistically with the mean-only
// estimators (they share the simulator, not the streams).
func TestEstimateSamplesMatchesEstimateSpread(t *testing.T) {
	r := rng.New(32)
	g := testutil.RandomGraph(r, 40, 120, 0.3)
	seeds := []int32{1, 2}
	boost := []int32{5, 6}
	const sims = 20000
	spread, delta, err := EstimateSamples(g, seeds, boost, Options{Sims: sims, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	ss, ds := stats.Summarize(spread), stats.Summarize(delta)
	wantSpread, err := EstimateSpread(g, seeds, boost, Options{Sims: sims, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	wantDelta, err := EstimateBoost(g, seeds, boost, Options{Sims: sims, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ss.Mean-wantSpread) > 4*ss.CI95()+0.05 {
		t.Fatalf("sampled spread %v vs %v (CI %v)", ss.Mean, wantSpread, ss.CI95())
	}
	if math.Abs(ds.Mean-wantDelta) > 4*ds.CI95()+0.05 {
		t.Fatalf("sampled delta %v vs %v (CI %v)", ds.Mean, wantDelta, ds.CI95())
	}
	// Without a boost set the delta vector is identically zero.
	_, zero, err := EstimateSamples(g, seeds, nil, Options{Sims: 50, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range zero {
		if d != 0 {
			t.Fatalf("delta[%d] = %v without boost set", i, d)
		}
	}
}
