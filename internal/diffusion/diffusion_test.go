package diffusion

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/exact"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

const simTol = 0.02 // absolute tolerance for Monte-Carlo vs exact values

func estimate(t *testing.T, g *graph.Graph, seeds, boost []int32) float64 {
	t.Helper()
	v, err := EstimateSpread(g, seeds, boost, Options{Sims: 200000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestFig1 reproduces the σ/Δ table of the paper's Figure 1.
func TestFig1SpreadTable(t *testing.T) {
	g, seeds := testutil.Fig1()
	cases := []struct {
		boost []int32
		want  float64
	}{
		{nil, 1.22},
		{[]int32{1}, 1.44},
		{[]int32{2}, 1.24},
		{[]int32{1, 2}, 1.48},
	}
	for _, c := range cases {
		got := estimate(t, g, seeds, c.boost)
		if math.Abs(got-c.want) > simTol {
			t.Errorf("σ_S(%v) = %v, want %v", c.boost, got, c.want)
		}
	}
}

func TestFig1BoostTable(t *testing.T) {
	g, seeds := testutil.Fig1()
	cases := []struct {
		boost []int32
		want  float64
	}{
		{[]int32{1}, 0.22},
		{[]int32{2}, 0.02},
		{[]int32{1, 2}, 0.26},
	}
	for _, c := range cases {
		got, err := EstimateBoost(g, seeds, c.boost, Options{Sims: 400000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > simTol {
			t.Errorf("Δ_S(%v) = %v, want %v", c.boost, got, c.want)
		}
	}
}

func TestSeedsAlwaysActive(t *testing.T) {
	g, seeds := testutil.Fig1()
	got := estimate(t, g, seeds, nil)
	if got < 1 {
		t.Fatalf("spread %v below seed count", got)
	}
}

func TestSpreadBounds(t *testing.T) {
	r := rng.New(99)
	g := testutil.RandomGraph(r, 8, 12, 0.8)
	seeds := []int32{0, 3}
	sim := NewSimulator(g)
	for i := 0; i < 200; i++ {
		n := sim.SpreadOnce(seeds, nil, r)
		if n < len(seeds) || n > g.N() {
			t.Fatalf("spread %d outside [%d,%d]", n, len(seeds), g.N())
		}
	}
}

func TestMonteCarloMatchesExact(t *testing.T) {
	r := rng.New(123)
	for trial := 0; trial < 5; trial++ {
		g := testutil.RandomGraph(r, 7, 10, 0.7)
		seeds := testutil.RandomSeedSet(r, g.N(), 2)
		nonSeeds := testutil.NonSeeds(g.N(), seeds)
		boost := nonSeeds[:min(2, len(nonSeeds))]

		want, err := exact.Spread(g, seeds, boost)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EstimateSpread(g, seeds, boost, Options{Sims: 300000, Seed: uint64(trial) + 1})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.03 {
			t.Fatalf("trial %d: MC spread %v, exact %v", trial, got, want)
		}
	}
}

func TestEstimateBoostMatchesExact(t *testing.T) {
	r := rng.New(321)
	for trial := 0; trial < 5; trial++ {
		g := testutil.RandomGraph(r, 7, 10, 0.7)
		seeds := testutil.RandomSeedSet(r, g.N(), 1)
		nonSeeds := testutil.NonSeeds(g.N(), seeds)
		boost := nonSeeds[:min(3, len(nonSeeds))]

		want, err := exact.Boost(g, seeds, boost)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EstimateBoost(g, seeds, boost, Options{Sims: 300000, Seed: uint64(trial) + 17})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.02 {
			t.Fatalf("trial %d: MC boost %v, exact %v", trial, got, want)
		}
	}
}

// PairOnce must couple the two worlds: the boosted spread can never be
// smaller than the base spread in the same world.
func TestPairCoupling(t *testing.T) {
	r := rng.New(555)
	g := testutil.RandomGraph(r, 10, 14, 0.8)
	seeds := []int32{0}
	mask := MaskFromSet(g.N(), []int32{1, 2, 3})
	sim := NewSimulator(g)
	for i := 0; i < 2000; i++ {
		base, boosted := sim.PairOnce(seeds, mask, r)
		if boosted < base {
			t.Fatalf("iteration %d: boosted %d < base %d", i, boosted, base)
		}
		if base < 1 {
			t.Fatalf("iteration %d: base %d lost the seed", i, base)
		}
	}
}

// Boosting a superset of nodes can only increase the expected spread.
func TestBoostMonotonicity(t *testing.T) {
	r := rng.New(777)
	g := testutil.RandomGraph(r, 8, 12, 0.6)
	seeds := []int32{0}
	small := []int32{1}
	large := []int32{1, 2, 3}
	sSmall, err := exact.Spread(g, seeds, small)
	if err != nil {
		t.Fatal(err)
	}
	sLarge, err := exact.Spread(g, seeds, large)
	if err != nil {
		t.Fatal(err)
	}
	if sLarge+1e-12 < sSmall {
		t.Fatalf("exact spread decreased when boosting more nodes: %v -> %v", sSmall, sLarge)
	}
	mSmall := estimate(t, g, seeds, small)
	mLarge := estimate(t, g, seeds, large)
	if mLarge+simTol < mSmall {
		t.Fatalf("MC spread decreased when boosting more nodes: %v -> %v", mSmall, mLarge)
	}
}

func TestEstimateActivation(t *testing.T) {
	g, seeds := testutil.Fig1()
	probs, err := EstimateActivation(g, seeds, nil, Options{Sims: 200000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.2, 0.02}
	for v, w := range want {
		if math.Abs(probs[v]-w) > simTol {
			t.Errorf("activation[%d] = %v, want %v", v, probs[v], w)
		}
	}
}

func TestEstimateActivationWithBoost(t *testing.T) {
	g, seeds := testutil.Fig1()
	probs, err := EstimateActivation(g, seeds, []int32{1}, Options{Sims: 200000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 0.4, 0.04}
	for v, w := range want {
		if math.Abs(probs[v]-w) > simTol {
			t.Errorf("activation[%d] = %v, want %v", v, probs[v], w)
		}
	}
}

func TestValidation(t *testing.T) {
	g, seeds := testutil.Fig1()
	if _, err := EstimateSpread(g, []int32{-1}, nil, Options{Sims: 10}); err == nil {
		t.Fatal("negative seed accepted")
	}
	if _, err := EstimateSpread(g, []int32{99}, nil, Options{Sims: 10}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	if _, err := EstimateSpread(g, seeds, []int32{99}, Options{Sims: 10}); err == nil {
		t.Fatal("out-of-range boost node accepted")
	}
	if _, err := EstimateBoost(g, seeds, []int32{-2}, Options{Sims: 10}); err == nil {
		t.Fatal("negative boost node accepted")
	}
	if _, err := EstimateActivation(g, []int32{-1}, nil, Options{Sims: 10}); err == nil {
		t.Fatal("EstimateActivation accepted bad seed")
	}
}

// Results must be identical for a fixed (seed, workers) pair.
func TestDeterminismFixedWorkers(t *testing.T) {
	r := rng.New(31)
	g := testutil.RandomGraph(r, 30, 60, 0.3)
	seeds := []int32{0, 1}
	boost := []int32{5, 6}
	a, err := EstimateBoost(g, seeds, boost, Options{Sims: 5000, Seed: 42, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateBoost(g, seeds, boost, Options{Sims: 5000, Seed: 42, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("same seed/workers gave %v and %v", a, b)
	}
}

// Different worker counts must agree statistically.
func TestWorkerCountConsistency(t *testing.T) {
	r := rng.New(32)
	g := testutil.RandomGraph(r, 30, 60, 0.3)
	seeds := []int32{0, 1}
	a, err := EstimateSpread(g, seeds, nil, Options{Sims: 100000, Seed: 42, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := EstimateSpread(g, seeds, nil, Options{Sims: 100000, Seed: 42, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a-b) > 0.1 {
		t.Fatalf("worker counts disagree: %v vs %v", a, b)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
