package diffusion

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// Σ_v activation(v) must equal the spread estimate: both are computed
// from the same distribution, so with a common budget they agree
// statistically.
func TestActivationSumsToSpread(t *testing.T) {
	r := rng.New(71)
	g := testutil.RandomGraph(r, 15, 35, 0.5)
	seeds := []int32{0, 1}
	boost := []int32{4, 5}
	const sims = 100000
	probs, err := EstimateActivation(g, seeds, boost, Options{Sims: sims, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, p := range probs {
		sum += p
	}
	spread, err := EstimateSpread(g, seeds, boost, Options{Sims: sims, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sum-spread) > 0.02*spread+0.1 {
		t.Fatalf("Σ activation = %v vs spread %v", sum, spread)
	}
}

// The coupled PairOnce estimator and independent differencing must
// agree in expectation.
func TestPairMatchesDifferencing(t *testing.T) {
	r := rng.New(72)
	g := testutil.RandomGraph(r, 12, 30, 0.5)
	seeds := []int32{0}
	boost := []int32{2, 3}
	pair, err := EstimateBoost(g, seeds, boost, Options{Sims: 300000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	with, err := EstimateSpread(g, seeds, boost, Options{Sims: 300000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	without, err := EstimateSpread(g, seeds, nil, Options{Sims: 300000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	diff := with - without
	if math.Abs(pair-diff) > 0.05+0.05*math.Abs(diff) {
		t.Fatalf("coupled Δ=%v vs differenced Δ=%v", pair, diff)
	}
}
