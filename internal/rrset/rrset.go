// Package rrset implements Reverse-Reachable set sampling and IMM-based
// seed selection for classic influence maximization under the
// Independent Cascade model.
//
// An RR-set for a uniformly random root r is the random set of nodes
// that reach r in a possible world where each edge (u,v) is live with
// probability p(u,v). For any seed set S,
// n * Pr[RR ∩ S ≠ ∅] equals the expected influence of S (Borgs et al.),
// which is what makes greedy max coverage over RR-sets work.
//
// kboost uses this package to pick the "50 influential seeds" of the
// paper's experiments (Table 1) and to implement the MoreSeeds baseline.
package rrset

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/kboost/kboost/internal/faults"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/imm"
	"github.com/kboost/kboost/internal/maxcover"
	"github.com/kboost/kboost/internal/panicsafe"
	"github.com/kboost/kboost/internal/rng"
)

// cancelStride is the amortized cooperative-cancellation poll interval
// inside the RR-set generation loop: one ctx check per 64 sets.
const cancelStride = 64

// Pool is a growable collection of RR-sets implementing imm.Sketcher.
type Pool struct {
	g       *graph.Graph
	cov     *maxcover.Coverage
	banned  []bool  // nodes that may not be selected
	pre     []int32 // nodes whose coverage is considered "already achieved"
	workers int
	streams []*rng.Source
	scratch []*walker
}

// walker holds per-worker BFS state.
type walker struct {
	mark  []int32
	epoch int32
	queue []int32
}

func newWalker(n int) *walker { return &walker{mark: make([]int32, n)} }

// NewPool returns an empty Pool. workers <= 0 means GOMAXPROCS.
func NewPool(g *graph.Graph, seed uint64, workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	root := rng.New(seed)
	p := &Pool{
		g:       g,
		cov:     maxcover.New(g.N()),
		workers: workers,
	}
	for w := 0; w < workers; w++ {
		p.streams = append(p.streams, root.Split())
		p.scratch = append(p.scratch, newWalker(g.N()))
	}
	return p
}

// Ban marks nodes as unselectable (e.g. existing seeds).
func (p *Pool) Ban(nodes []int32) {
	if p.banned == nil {
		p.banned = make([]bool, p.g.N())
	}
	for _, v := range nodes {
		p.banned[v] = true
	}
}

// PreCover marks nodes as already chosen: sketches they cover do not
// count toward gains or coverage (marginal-influence mode, used by the
// MoreSeeds baseline).
func (p *Pool) PreCover(nodes []int32) {
	p.pre = append(p.pre, nodes...)
}

// Size returns the number of RR-sets generated.
func (p *Pool) Size() int { return p.cov.NumSets() }

// Extend grows the pool to at least target RR-sets.
func (p *Pool) Extend(target int) {
	// Ctx-less compat form; without a cancelable ctx or armed faults the
	// context variant cannot fail.
	_ = p.ExtendContext(context.Background(), target)
}

// ExtendContext is Extend with cooperative cancellation and shard-worker
// panic containment: on any error no batch is merged and the error is
// returned. Unlike the cached pool families, an aborted rrset Extend
// does not roll back its worker streams — rrset pools are per-request
// and are discarded wholesale on failure, so a retry reconstructs the
// pool from its seed and remains bit-identical.
func (p *Pool) ExtendContext(ctx context.Context, target int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	need := target - p.Size()
	if need <= 0 {
		return nil
	}
	results := make([][][]int32, p.workers)
	counts := make([]int, p.workers)
	base, rem := need/p.workers, need%p.workers
	for w := 0; w < p.workers; w++ {
		counts[w] = base
		if w < rem {
			counts[w]++
		}
	}
	var wg sync.WaitGroup
	var stop atomic.Bool // flipped on first failure so sibling workers bail early
	errs := make([]error, p.workers)
	for w := 0; w < p.workers; w++ {
		if counts[w] == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := panicsafe.Do(func() {
				if e := faults.CheckContext(ctx, faults.PoolBuildShard); e != nil {
					errs[w] = e
					stop.Store(true)
					return
				}
				r := p.streams[w]
				wk := p.scratch[w]
				batch := make([][]int32, 0, counts[w])
				for i := 0; i < counts[w]; i++ {
					if i%cancelStride == 0 && (stop.Load() || ctx.Err() != nil) {
						errs[w] = ctx.Err()
						stop.Store(true)
						return
					}
					root := int32(r.Intn(p.g.N()))
					batch = append(batch, generate(p.g, root, wk, r))
				}
				results[w] = batch
			})
			if err != nil {
				errs[w] = err
				stop.Store(true)
			}
		}(w)
	}
	wg.Wait()
	abort := ctx.Err()
	for _, err := range errs {
		if err != nil {
			abort = err
			break
		}
	}
	if abort != nil {
		return abort
	}
	for _, batch := range results {
		for _, set := range batch {
			p.cov.AddSet(set)
		}
	}
	return nil
}

// SelectAndCover greedily picks up to k nodes maximizing RR-set coverage.
func (p *Pool) SelectAndCover(k int) ([]int32, int) {
	return p.cov.Select(k, p.banned, p.pre)
}

// Generate returns one RR-set rooted at root using r for randomness.
func Generate(g *graph.Graph, root int32, r *rng.Source) []int32 {
	return generate(g, root, newWalker(g.N()), r)
}

func generate(g *graph.Graph, root int32, wk *walker, r *rng.Source) []int32 {
	wk.epoch++
	wk.queue = wk.queue[:0]
	wk.mark[root] = wk.epoch
	wk.queue = append(wk.queue, root)
	for qi := 0; qi < len(wk.queue); qi++ {
		v := wk.queue[qi]
		from := g.InFrom(v)
		prob := g.InP(v)
		for i, u := range from {
			if wk.mark[u] == wk.epoch {
				continue
			}
			if r.Bernoulli(prob[i]) {
				wk.mark[u] = wk.epoch
				wk.queue = append(wk.queue, u)
			}
		}
	}
	return append([]int32(nil), wk.queue...)
}

// CoverageOf returns how many RR-sets the items cover (the validation
// hook for imm.RunAdaptive).
func (p *Pool) CoverageOf(items []int32) int {
	return p.cov.CoverageOf(items)
}

var (
	_ imm.Sketcher            = (*Pool)(nil)
	_ imm.ValidatableSketcher = (*Pool)(nil)
)

// Options configures seed selection.
type Options struct {
	Epsilon    float64 // IMM slack (default 0.5)
	Ell        float64 // failure exponent (default 1)
	Seed       uint64  // RNG seed (default 1)
	Workers    int     // parallelism (default GOMAXPROCS)
	MaxSamples int     // optional cap on RR-sets
	// Adaptive uses the SSA-style stop-and-stare controller instead of
	// IMM sample sizing (fewer samples, no formal certificate).
	Adaptive bool
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.5
	}
	if o.Ell <= 0 {
		o.Ell = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result reports a seed selection.
type Result struct {
	Seeds        []int32
	EstInfluence float64 // n * coverage / samples
	Samples      int
}

// SelectSeeds runs IMM influence maximization and returns k seeds with a
// (1-1/e-ε) approximation guarantee (with probability 1-1/n^ℓ).
func SelectSeeds(g *graph.Graph, k int, opt Options) (Result, error) {
	return SelectSeedsContext(context.Background(), g, k, opt)
}

// SelectSeedsContext is SelectSeeds with cooperative cancellation
// threaded through the IMM sampling loop. The adaptive path retrains
// whole pools and is only checked between phases.
func SelectSeedsContext(ctx context.Context, g *graph.Graph, k int, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if k < 1 || k > g.N() {
		return Result{}, fmt.Errorf("rrset: k=%d out of range [1,%d]", k, g.N())
	}
	params := imm.Params{
		N: g.N(), K: k,
		Epsilon: opt.Epsilon, Ell: opt.Ell,
		MaxSamples: opt.MaxSamples,
	}
	var pool *Pool
	if opt.Adaptive {
		if err := ctx.Err(); err != nil {
			return Result{}, err
		}
		trained, _, err := imm.RunAdaptive(func(s uint64) (imm.ValidatableSketcher, error) {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return NewPool(g, opt.Seed*0x9e3779b97f4a7c15+s, opt.Workers), nil
		}, params)
		if err != nil {
			return Result{}, err
		}
		pool = trained.(*Pool)
	} else {
		pool = NewPool(g, opt.Seed, opt.Workers)
		if _, err := imm.RunContext(ctx, pool, params); err != nil {
			return Result{}, err
		}
	}
	seeds, covered := pool.SelectAndCover(k)
	seeds = padToK(seeds, k, g.N(), nil)
	return Result{
		Seeds:        seeds,
		EstInfluence: float64(g.N()) * float64(covered) / float64(pool.Size()),
		Samples:      pool.Size(),
	}, nil
}

// SelectMarginalSeeds greedily selects k additional seeds maximizing the
// marginal influence over the fixed set have. This is the paper's
// MoreSeeds baseline: the IMM machinery re-targeted at marginal
// coverage.
func SelectMarginalSeeds(g *graph.Graph, have []int32, k int, opt Options) (Result, error) {
	return SelectMarginalSeedsContext(context.Background(), g, have, k, opt)
}

// SelectMarginalSeedsContext is SelectMarginalSeeds with cooperative
// cancellation threaded through the IMM sampling loop.
func SelectMarginalSeedsContext(ctx context.Context, g *graph.Graph, have []int32, k int, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if k < 1 || k > g.N() {
		return Result{}, fmt.Errorf("rrset: k=%d out of range [1,%d]", k, g.N())
	}
	pool := NewPool(g, opt.Seed, opt.Workers)
	pool.Ban(have)
	pool.PreCover(have)
	_, err := imm.RunContext(ctx, pool, imm.Params{
		N: g.N(), K: k,
		Epsilon: opt.Epsilon, Ell: opt.Ell,
		MaxSamples: opt.MaxSamples,
	})
	if err != nil {
		return Result{}, err
	}
	chosen, covered := pool.SelectAndCover(k)
	banned := make([]bool, g.N())
	for _, v := range have {
		banned[v] = true
	}
	chosen = padToK(chosen, k, g.N(), banned)
	return Result{
		Seeds:        chosen,
		EstInfluence: float64(g.N()) * float64(covered) / float64(pool.Size()),
		Samples:      pool.Size(),
	}, nil
}

// padToK fills chosen up to k nodes with the lowest-id nodes that are
// neither banned nor already chosen. Greedy selection stops early when
// marginal coverage hits zero; callers that need exactly k nodes (the
// paper's experiments fix |B|=k) use this.
func padToK(chosen []int32, k, n int, banned []bool) []int32 {
	if len(chosen) >= k {
		return chosen[:k]
	}
	in := make(map[int32]struct{}, len(chosen))
	for _, v := range chosen {
		in[v] = struct{}{}
	}
	for v := int32(0); int(v) < n && len(chosen) < k; v++ {
		if banned != nil && banned[v] {
			continue
		}
		if _, dup := in[v]; dup {
			continue
		}
		chosen = append(chosen, v)
	}
	return chosen
}
