package rrset

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// The defining RR-set property: n * Pr[RR ∩ S ≠ ∅] equals the expected
// influence of S.
func TestRRSetProperty(t *testing.T) {
	r := rng.New(5)
	g := testutil.RandomGraph(r, 10, 20, 0.4)
	seeds := []int32{0, 3}

	want, err := diffusion.EstimateSpread(g, seeds, nil, diffusion.Options{Sims: 200000, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}

	const count = 200000
	hit := 0
	seedMask := make(map[int32]bool)
	for _, s := range seeds {
		seedMask[s] = true
	}
	for i := 0; i < count; i++ {
		root := int32(r.Intn(g.N()))
		set := Generate(g, root, r)
		for _, v := range set {
			if seedMask[v] {
				hit++
				break
			}
		}
	}
	got := float64(g.N()) * float64(hit) / count
	if math.Abs(got-want) > 0.05+0.02*want {
		t.Fatalf("RR estimate %v, MC influence %v", got, want)
	}
}

func TestGenerateContainsRoot(t *testing.T) {
	r := rng.New(7)
	g := testutil.RandomGraph(r, 8, 16, 0.5)
	for i := 0; i < 50; i++ {
		root := int32(r.Intn(g.N()))
		set := Generate(g, root, r)
		found := false
		for _, v := range set {
			if v == root {
				found = true
			}
		}
		if !found {
			t.Fatalf("RR set %v does not contain its root %d", set, root)
		}
	}
}

// On a star graph (hub -> leaves with p=1) the best single seed is the
// hub.
func TestSelectSeedsStar(t *testing.T) {
	const n = 21
	b := graph.NewBuilder(n)
	for leaf := int32(1); leaf < n; leaf++ {
		b.MustAddEdge(0, leaf, 1, 1)
	}
	g := b.MustBuild()
	res, err := SelectSeeds(g, 1, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 0 {
		t.Fatalf("seeds = %v, want [0]", res.Seeds)
	}
	if math.Abs(res.EstInfluence-float64(n)) > 2 {
		t.Fatalf("estimated influence %v, want ~%d", res.EstInfluence, n)
	}
}

func TestSelectSeedsReturnsExactlyK(t *testing.T) {
	r := rng.New(11)
	g := testutil.RandomGraph(r, 30, 40, 0.1)
	res, err := SelectSeeds(g, 5, Options{Seed: 3, MaxSamples: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 5 {
		t.Fatalf("got %d seeds, want 5", len(res.Seeds))
	}
	seen := map[int32]bool{}
	for _, s := range res.Seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
}

func TestSelectSeedsValidation(t *testing.T) {
	r := rng.New(12)
	g := testutil.RandomGraph(r, 10, 15, 0.3)
	if _, err := SelectSeeds(g, 0, Options{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := SelectSeeds(g, 11, Options{}); err == nil {
		t.Fatal("k>n accepted")
	}
}

// MoreSeeds-style marginal selection must avoid the existing seeds and
// pick complementary nodes.
func TestSelectMarginalSeeds(t *testing.T) {
	// Two disjoint stars; seeding hub A first makes hub B the best
	// marginal addition.
	const n = 12
	b := graph.NewBuilder(n)
	for leaf := int32(1); leaf <= 5; leaf++ {
		b.MustAddEdge(0, leaf, 1, 1)
	}
	for leaf := int32(7); leaf < 12; leaf++ {
		b.MustAddEdge(6, leaf, 1, 1)
	}
	g := b.MustBuild()
	res, err := SelectMarginalSeeds(g, []int32{0}, 1, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Seeds) != 1 || res.Seeds[0] != 6 {
		t.Fatalf("marginal seeds = %v, want [6]", res.Seeds)
	}
}

func TestSelectMarginalSeedsBansExisting(t *testing.T) {
	r := rng.New(13)
	g := testutil.RandomGraph(r, 15, 30, 0.5)
	have := []int32{0, 1, 2}
	res, err := SelectMarginalSeeds(g, have, 4, Options{Seed: 5, MaxSamples: 20000})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Seeds {
		for _, h := range have {
			if s == h {
				t.Fatalf("existing seed %d reselected", s)
			}
		}
	}
	if len(res.Seeds) != 4 {
		t.Fatalf("got %d marginal seeds, want 4", len(res.Seeds))
	}
}

func TestPoolDeterminism(t *testing.T) {
	r := rng.New(14)
	g := testutil.RandomGraph(r, 20, 40, 0.4)
	run := func() []int32 {
		res, err := SelectSeeds(g, 3, Options{Seed: 77, Workers: 2, MaxSamples: 10000})
		if err != nil {
			t.Fatal(err)
		}
		return res.Seeds
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic selection: %v vs %v", a, b)
		}
	}
}
