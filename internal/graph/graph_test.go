package graph

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func mustTriangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.MustAddEdge(0, 1, 0.5, 0.8)
	b.MustAddEdge(1, 2, 0.3, 0.5)
	b.MustAddEdge(2, 0, 0.1, 0.2)
	return b.MustBuild()
}

func TestBuilderBasics(t *testing.T) {
	g := mustTriangle(t)
	if g.N() != 3 || g.M() != 3 {
		t.Fatalf("N=%d M=%d, want 3/3", g.N(), g.M())
	}
	if got := g.OutDegree(0); got != 1 {
		t.Fatalf("OutDegree(0)=%d", got)
	}
	if got := g.InDegree(0); got != 1 {
		t.Fatalf("InDegree(0)=%d", got)
	}
	p, pb, ok := g.FindEdge(0, 1)
	if !ok || p != 0.5 || pb != 0.8 {
		t.Fatalf("FindEdge(0,1) = %v %v %v", p, pb, ok)
	}
	if _, _, ok := g.FindEdge(1, 0); ok {
		t.Fatal("FindEdge(1,0) found a non-existent edge")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(1, 1, 0.5, 0.6); err == nil {
		t.Fatal("self loop accepted")
	}
}

func TestBuilderRejectsOutOfRange(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 2, 0.5, 0.6); err == nil {
		t.Fatal("out-of-range target accepted")
	}
	if err := b.AddEdge(-1, 0, 0.5, 0.6); err == nil {
		t.Fatal("negative source accepted")
	}
}

func TestBuilderRejectsBadProbabilities(t *testing.T) {
	b := NewBuilder(2)
	cases := []struct{ p, pb float64 }{
		{-0.1, 0.5}, {0.5, 1.1}, {0.6, 0.5}, {math.NaN(), 0.5}, {0.5, math.NaN()},
	}
	for _, c := range cases {
		if err := b.AddEdge(0, 1, c.p, c.pb); err == nil {
			t.Fatalf("accepted p=%v pb=%v", c.p, c.pb)
		}
	}
}

func TestBuilderRejectsDuplicateEdge(t *testing.T) {
	b := NewBuilder(3)
	b.MustAddEdge(0, 1, 0.5, 0.6)
	b.MustAddEdge(0, 2, 0.5, 0.6)
	b.MustAddEdge(0, 1, 0.4, 0.5)
	if _, err := b.Build(); err == nil {
		t.Fatal("duplicate edge accepted by Build")
	}
}

func TestEqualProbabilitiesAllowed(t *testing.T) {
	b := NewBuilder(2)
	if err := b.AddEdge(0, 1, 0.5, 0.5); err != nil {
		t.Fatalf("p == p' should be allowed (degenerate boosting): %v", err)
	}
}

func TestAdjacencySorted(t *testing.T) {
	b := NewBuilder(5)
	b.MustAddEdge(0, 4, 0.4, 0.5)
	b.MustAddEdge(0, 1, 0.1, 0.2)
	b.MustAddEdge(0, 3, 0.3, 0.4)
	g := b.MustBuild()
	to := g.OutTo(0)
	for i := 1; i < len(to); i++ {
		if to[i-1] >= to[i] {
			t.Fatalf("out adjacency not sorted: %v", to)
		}
	}
	// Probabilities must follow their edges through the sort.
	p, _, _ := g.FindEdge(0, 3)
	if p != 0.3 {
		t.Fatalf("probability misaligned after sort: %v", p)
	}
}

func TestInOutMirror(t *testing.T) {
	g := mustTriangle(t)
	for u := int32(0); u < 3; u++ {
		to := g.OutTo(u)
		p := g.OutP(u)
		for i, v := range to {
			found := false
			from := g.InFrom(v)
			ip := g.InP(v)
			for j, w := range from {
				if w == u {
					found = true
					if ip[j] != p[i] {
						t.Fatalf("in/out probability mismatch on (%d,%d)", u, v)
					}
				}
			}
			if !found {
				t.Fatalf("edge (%d,%d) missing from in-adjacency", u, v)
			}
		}
	}
}

func TestValidate(t *testing.T) {
	g := mustTriangle(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph failed validation: %v", err)
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	g := mustTriangle(t)
	edges := g.Edges()
	g2, err := FromEdges(g.N(), edges)
	if err != nil {
		t.Fatal(err)
	}
	if g2.M() != g.M() {
		t.Fatalf("edge count changed: %d -> %d", g.M(), g2.M())
	}
	for _, e := range edges {
		p, pb, ok := g2.FindEdge(e.From, e.To)
		if !ok || p != e.P || pb != e.PBoost {
			t.Fatalf("edge %+v not preserved", e)
		}
	}
}

func TestTextIO(t *testing.T) {
	g := mustTriangle(t)
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.N() != g.N() || g2.M() != g.M() {
		t.Fatalf("round trip changed size: %d/%d -> %d/%d", g.N(), g.M(), g2.N(), g2.M())
	}
	for _, e := range g.Edges() {
		p, pb, ok := g2.FindEdge(e.From, e.To)
		if !ok || p != e.P || pb != e.PBoost {
			t.Fatalf("edge %+v not preserved by text io", e)
		}
	}
}

func TestTextIOComments(t *testing.T) {
	input := "# a comment\n\n2 1\n# another\n0 1 0.5 0.75\n"
	g, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 2 || g.M() != 1 {
		t.Fatalf("got %d/%d", g.N(), g.M())
	}
}

func TestTextIOErrors(t *testing.T) {
	cases := []string{
		"",                        // empty
		"2",                       // bad header
		"2 1\n0 1 0.5",            // short edge line
		"2 1\n0 1 0.9 0.5",        // pb < p
		"2 1\n0 5 0.5 0.6",        // out of range
		"2 2\n0 1 0.5 0.6",        // truncated
		"2 1\nx y 0.5 0.6",        // non-numeric
		"-1 1\n0 1 0.5 0.6",       // negative n
		"2 1\n0 1 0.5 notanumber", // bad float
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Fatalf("ReadText accepted %q", c)
		}
	}
}

func TestBinaryIO(t *testing.T) {
	g := mustTriangle(t)
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Edges() {
		p, pb, ok := g2.FindEdge(e.From, e.To)
		if !ok || p != e.P || pb != e.PBoost {
			t.Fatalf("edge %+v not preserved by binary io", e)
		}
	}
}

func TestBinaryIOBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOPE1234")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestWithBoostFactor(t *testing.T) {
	b := NewBuilder(2)
	b.MustAddEdge(0, 1, 0.3, 0.3)
	g := b.MustBuild()
	g2, err := g.WithBoostFactor(2)
	if err != nil {
		t.Fatal(err)
	}
	_, pb, _ := g2.FindEdge(0, 1)
	want := 1 - 0.7*0.7
	if math.Abs(pb-want) > 1e-12 {
		t.Fatalf("boosted probability %v, want %v", pb, want)
	}
	if _, err := g.WithBoostFactor(0.5); err == nil {
		t.Fatal("beta < 1 accepted")
	}
}

func TestComputeStats(t *testing.T) {
	g := mustTriangle(t)
	s := g.ComputeStats()
	if s.N != 3 || s.M != 3 {
		t.Fatalf("stats size wrong: %+v", s)
	}
	wantAvg := (0.5 + 0.3 + 0.1) / 3
	if math.Abs(s.AvgP-wantAvg) > 1e-12 {
		t.Fatalf("AvgP = %v, want %v", s.AvgP, wantAvg)
	}
	if s.MaxOutDegree != 1 || s.MaxInDegree != 1 {
		t.Fatalf("degrees wrong: %+v", s)
	}
}

func TestLargestWCC(t *testing.T) {
	// Two components: {0,1,2} (triangle) and {3,4}.
	b := NewBuilder(5)
	b.MustAddEdge(0, 1, 0.5, 0.6)
	b.MustAddEdge(1, 2, 0.5, 0.6)
	b.MustAddEdge(2, 0, 0.5, 0.6)
	b.MustAddEdge(3, 4, 0.5, 0.6)
	g := b.MustBuild()
	wcc, mapping := g.LargestWCC()
	if wcc.N() != 3 || wcc.M() != 3 {
		t.Fatalf("largest WCC %d/%d, want 3/3", wcc.N(), wcc.M())
	}
	if len(mapping) != 3 {
		t.Fatalf("mapping length %d", len(mapping))
	}
	for _, orig := range mapping {
		if orig > 2 {
			t.Fatalf("wrong component kept: mapping %v", mapping)
		}
	}
}

func TestLargestWCCDirectionsCount(t *testing.T) {
	// 0->1 and 2 isolated: WCC should be {0,1} even though 1 cannot
	// reach 0 in the directed sense.
	b := NewBuilder(3)
	b.MustAddEdge(0, 1, 0.5, 0.6)
	g := b.MustBuild()
	wcc, _ := g.LargestWCC()
	if wcc.N() != 2 {
		t.Fatalf("WCC size %d, want 2", wcc.N())
	}
}

func TestSubgraph(t *testing.T) {
	g := mustTriangle(t)
	sub, mapping := g.Subgraph([]bool{true, true, false})
	if sub.N() != 2 || sub.M() != 1 {
		t.Fatalf("subgraph %d/%d, want 2/1", sub.N(), sub.M())
	}
	if mapping[0] != 0 || mapping[1] != 1 {
		t.Fatalf("mapping %v", mapping)
	}
}

func TestIsBidirectedTree(t *testing.T) {
	// A path 0-1-2 with both directions: a bidirected tree.
	b := NewBuilder(3)
	for _, e := range [][2]int32{{0, 1}, {1, 0}, {1, 2}, {2, 1}} {
		b.MustAddEdge(e[0], e[1], 0.5, 0.6)
	}
	g := b.MustBuild()
	if !g.IsBidirectedTree() {
		t.Fatal("bidirected path not recognized as tree")
	}

	// One-directional tree edges still count (underlying undirected).
	b2 := NewBuilder(3)
	b2.MustAddEdge(0, 1, 0.5, 0.6)
	b2.MustAddEdge(1, 2, 0.5, 0.6)
	if !b2.MustBuild().IsBidirectedTree() {
		t.Fatal("directed path not recognized as tree")
	}

	// Triangle: not a tree.
	if mustTriangle(t).IsBidirectedTree() {
		t.Fatal("triangle recognized as tree")
	}

	// Disconnected: not a tree.
	b3 := NewBuilder(4)
	b3.MustAddEdge(0, 1, 0.5, 0.6)
	b3.MustAddEdge(2, 3, 0.5, 0.6)
	if b3.MustBuild().IsBidirectedTree() {
		t.Fatal("forest recognized as tree")
	}
}

func TestCloneIndependent(t *testing.T) {
	g := mustTriangle(t)
	c := g.Clone()
	if c.N() != g.N() || c.M() != g.M() {
		t.Fatal("clone size differs")
	}
	c.outP[0] = 0.99
	if g.outP[0] == 0.99 {
		t.Fatal("clone shares probability storage with original")
	}
}

// Property: for random edge lists, building and re-reading via text IO
// preserves every edge.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(raw []uint16) bool {
		const n = 12
		b := NewBuilder(n)
		seen := map[[2]int32]bool{}
		for _, x := range raw {
			u := int32(x % n)
			v := int32((x / n) % n)
			if u == v || seen[[2]int32{u, v}] {
				continue
			}
			seen[[2]int32{u, v}] = true
			p := float64(x%97) / 100.0
			pb := p + (1-p)*0.5
			if b.AddEdge(u, v, p, pb) != nil {
				return false
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if g.WriteText(&buf) != nil {
			return false
		}
		g2, err := ReadText(&buf)
		if err != nil {
			return false
		}
		if g2.M() != g.M() {
			return false
		}
		for _, e := range g.Edges() {
			p, pb, ok := g2.FindEdge(e.From, e.To)
			if !ok || math.Abs(p-e.P) > 1e-12 || math.Abs(pb-e.PBoost) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
