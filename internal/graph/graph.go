// Package graph implements the directed influence graph that every
// algorithm in kboost operates on.
//
// A Graph stores, for each directed edge (u,v), two influence
// probabilities: P (the base probability that a newly activated u
// influences a non-boosted v) and PBoost (the probability used when v is
// boosted), with P <= PBoost as required by the influence boosting model
// of Lin, Chen and Lui (ICDE 2017, Definition 1).
//
// The representation is a compressed sparse row (CSR) layout for both the
// out-adjacency and the in-adjacency, so forward diffusion simulation and
// reverse sketch generation are both cache-friendly and allocation-free.
// Graphs are immutable once built; use Builder to construct them.
package graph

import (
	"fmt"
	"math"
)

// Edge is one directed influence edge.
type Edge struct {
	From, To int32
	P        float64 // base influence probability
	PBoost   float64 // influence probability when To is boosted
}

// Graph is an immutable directed graph with dual edge probabilities in
// CSR form. The zero value is an empty graph.
type Graph struct {
	n int

	outStart []int32 // len n+1; out-edges of u are [outStart[u], outStart[u+1])
	outTo    []int32
	outP     []float64
	outPB    []float64

	inStart []int32 // len n+1; in-edges of v are [inStart[v], inStart[v+1])
	inFrom  []int32
	inP     []float64
	inPB    []float64
}

// N returns the number of nodes.
func (g *Graph) N() int { return g.n }

// M returns the number of directed edges.
func (g *Graph) M() int { return len(g.outTo) }

// OutDegree returns the number of out-edges of u.
func (g *Graph) OutDegree(u int32) int {
	return int(g.outStart[u+1] - g.outStart[u])
}

// InDegree returns the number of in-edges of v.
func (g *Graph) InDegree(v int32) int {
	return int(g.inStart[v+1] - g.inStart[v])
}

// OutOffset returns the index of u's first out-edge in the global edge
// arrays; out-edge i of u has global index OutOffset(u)+i. Useful for
// maintaining per-edge side tables aligned with the CSR layout.
func (g *Graph) OutOffset(u int32) int32 { return g.outStart[u] }

// InOffset returns the index of v's first in-edge in the global in-edge
// arrays.
func (g *Graph) InOffset(v int32) int32 { return g.inStart[v] }

// OutTo returns the targets of u's out-edges. The slice aliases internal
// storage and must not be modified.
func (g *Graph) OutTo(u int32) []int32 { return g.outTo[g.outStart[u]:g.outStart[u+1]] }

// OutP returns the base probabilities of u's out-edges, aligned with OutTo.
func (g *Graph) OutP(u int32) []float64 { return g.outP[g.outStart[u]:g.outStart[u+1]] }

// OutPBoost returns the boosted probabilities of u's out-edges, aligned
// with OutTo.
func (g *Graph) OutPBoost(u int32) []float64 { return g.outPB[g.outStart[u]:g.outStart[u+1]] }

// InFrom returns the sources of v's in-edges. The slice aliases internal
// storage and must not be modified.
func (g *Graph) InFrom(v int32) []int32 { return g.inFrom[g.inStart[v]:g.inStart[v+1]] }

// InP returns the base probabilities of v's in-edges, aligned with InFrom.
func (g *Graph) InP(v int32) []float64 { return g.inP[g.inStart[v]:g.inStart[v+1]] }

// InPBoost returns the boosted probabilities of v's in-edges, aligned
// with InFrom.
func (g *Graph) InPBoost(v int32) []float64 { return g.inPB[g.inStart[v]:g.inStart[v+1]] }

// Edges returns a copy of all edges in from-major order.
func (g *Graph) Edges() []Edge {
	edges := make([]Edge, 0, g.M())
	for u := int32(0); u < int32(g.n); u++ {
		to := g.OutTo(u)
		p := g.OutP(u)
		pb := g.OutPBoost(u)
		for i := range to {
			edges = append(edges, Edge{From: u, To: to[i], P: p[i], PBoost: pb[i]})
		}
	}
	return edges
}

// FindEdge returns the probabilities of edge (u,v) and whether it exists.
func (g *Graph) FindEdge(u, v int32) (p, pBoost float64, ok bool) {
	to := g.OutTo(u)
	for i, w := range to {
		if w == v {
			return g.OutP(u)[i], g.OutPBoost(u)[i], true
		}
	}
	return 0, 0, false
}

// WithBoostFactor returns a new Graph with identical topology and base
// probabilities, but with every boosted probability set to
// 1-(1-p)^beta. This is the boosting-parameter convention of the paper's
// experiment section (Section VII). beta must be >= 1.
func (g *Graph) WithBoostFactor(beta float64) (*Graph, error) {
	if beta < 1 {
		return nil, fmt.Errorf("graph: boost factor beta=%v must be >= 1", beta)
	}
	ng := g.cloneTopology()
	for i, p := range g.outP {
		ng.outP[i] = p
		ng.outPB[i] = boostProb(p, beta)
	}
	for i, p := range g.inP {
		ng.inP[i] = p
		ng.inPB[i] = boostProb(p, beta)
	}
	return ng, nil
}

// boostProb returns 1-(1-p)^beta clamped to [p, 1].
func boostProb(p, beta float64) float64 {
	pb := 1 - math.Pow(1-p, beta)
	if pb < p {
		pb = p
	}
	if pb > 1 {
		pb = 1
	}
	return pb
}

// cloneTopology allocates a graph with the same structure arrays (copied)
// and zeroed probability arrays ready to be filled.
func (g *Graph) cloneTopology() *Graph {
	ng := &Graph{
		n:        g.n,
		outStart: append([]int32(nil), g.outStart...),
		outTo:    append([]int32(nil), g.outTo...),
		outP:     make([]float64, len(g.outP)),
		outPB:    make([]float64, len(g.outPB)),
		inStart:  append([]int32(nil), g.inStart...),
		inFrom:   append([]int32(nil), g.inFrom...),
		inP:      make([]float64, len(g.inP)),
		inPB:     make([]float64, len(g.inPB)),
	}
	return ng
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	ng := g.cloneTopology()
	copy(ng.outP, g.outP)
	copy(ng.outPB, g.outPB)
	copy(ng.inP, g.inP)
	copy(ng.inPB, g.inPB)
	return ng
}

// Validate checks the structural invariants of the graph: probability
// ranges, P <= PBoost, consistent CSR offsets and mirrored in/out edges.
// Graphs produced by Builder always validate; this is primarily a guard
// for graphs deserialized from external files.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return fmt.Errorf("graph: negative node count %d", g.n)
	}
	if len(g.outStart) != g.n+1 || len(g.inStart) != g.n+1 {
		return fmt.Errorf("graph: CSR offset arrays have wrong length")
	}
	if g.outStart[g.n] != int32(len(g.outTo)) || g.inStart[g.n] != int32(len(g.inFrom)) {
		return fmt.Errorf("graph: CSR offsets do not cover edge arrays")
	}
	if len(g.outTo) != len(g.inFrom) {
		return fmt.Errorf("graph: out edge count %d != in edge count %d", len(g.outTo), len(g.inFrom))
	}
	for u := 0; u < g.n; u++ {
		if g.outStart[u] > g.outStart[u+1] || g.inStart[u] > g.inStart[u+1] {
			return fmt.Errorf("graph: decreasing CSR offsets at node %d", u)
		}
	}
	for i, v := range g.outTo {
		if v < 0 || int(v) >= g.n {
			return fmt.Errorf("graph: out edge %d targets invalid node %d", i, v)
		}
		if err := checkProbPair(g.outP[i], g.outPB[i]); err != nil {
			return fmt.Errorf("graph: out edge %d: %w", i, err)
		}
	}
	for i, u := range g.inFrom {
		if u < 0 || int(u) >= g.n {
			return fmt.Errorf("graph: in edge %d from invalid node %d", i, u)
		}
		if err := checkProbPair(g.inP[i], g.inPB[i]); err != nil {
			return fmt.Errorf("graph: in edge %d: %w", i, err)
		}
	}
	return nil
}

func checkProbPair(p, pb float64) error {
	if math.IsNaN(p) || math.IsNaN(pb) {
		return fmt.Errorf("NaN probability")
	}
	if p < 0 || p > 1 {
		return fmt.Errorf("base probability %v out of [0,1]", p)
	}
	if pb < 0 || pb > 1 {
		return fmt.Errorf("boosted probability %v out of [0,1]", pb)
	}
	if pb < p {
		return fmt.Errorf("boosted probability %v < base probability %v", pb, p)
	}
	return nil
}
