package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Binary edge-delta format: a compact little-endian encoding, the
// PATCH-endpoint sibling of the KBG1 graph codec.
//
//	magic "KBD1" | uint32 nAdd | uint32 nRemove | uint32 nReweight
//	nAdd records of:      uint32 from | uint32 to | float64 p | float64 pBoost
//	nRemove records of:   uint32 from | uint32 to
//	nReweight records of: uint32 from | uint32 to | float64 p | float64 pBoost
const deltaMagic = "KBD1"

// WriteEdgeDelta writes d in the binary delta format.
func (d *EdgeDelta) WriteEdgeDelta(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(deltaMagic); err != nil {
		return err
	}
	hdr := [12]byte{}
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(d.Add)))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(len(d.Remove)))
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(d.Reweight)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [24]byte
	writeEdge := func(e Edge) error {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(e.From))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(e.To))
		binary.LittleEndian.PutUint64(rec[8:16], mathFloat64bits(e.P))
		binary.LittleEndian.PutUint64(rec[16:24], mathFloat64bits(e.PBoost))
		_, err := bw.Write(rec[:24])
		return err
	}
	for _, e := range d.Add {
		if err := writeEdge(e); err != nil {
			return err
		}
	}
	for _, k := range d.Remove {
		binary.LittleEndian.PutUint32(rec[0:4], uint32(k.From))
		binary.LittleEndian.PutUint32(rec[4:8], uint32(k.To))
		if _, err := bw.Write(rec[:8]); err != nil {
			return err
		}
	}
	for _, e := range d.Reweight {
		if err := writeEdge(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeDelta parses a binary edge delta with no size limits; use
// ReadEdgeDeltaLimited for untrusted input.
func ReadEdgeDelta(r io.Reader) (*EdgeDelta, error) {
	return ReadEdgeDeltaLimited(r, ReadLimits{})
}

// ReadEdgeDeltaLimited parses a binary edge delta, rejecting headers
// whose declared operation counts exceed lim.MaxEdges (each operation
// names one edge) before allocating anything size-proportional. Counts
// are validated at 64-bit width first, so a hostile uint32 header
// cannot wrap negative on 32-bit platforms and dodge the bounds.
//
// The returned delta is syntactically well-formed (endpoints are plain
// int32 values, probabilities finite pairs are NOT yet checked) —
// semantic validation against a concrete graph happens in ApplyDelta.
func ReadEdgeDeltaLimited(r io.Reader, lim ReadLimits) (*EdgeDelta, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading delta magic: %w", err)
	}
	if string(magic) != deltaMagic {
		return nil, fmt.Errorf("graph: bad delta magic %q (want %q)", magic, deltaMagic)
	}
	hdr := make([]byte, 12)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading delta header: %w", err)
	}
	nAdd := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	nRemove := int64(binary.LittleEndian.Uint32(hdr[4:8]))
	nReweight := int64(binary.LittleEndian.Uint32(hdr[8:12]))
	total := nAdd + nRemove + nReweight // cannot overflow: 3 × MaxUint32 < MaxInt64
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("graph: declared delta size %d operations exceeds the int32 layout", total)
	}
	if lim.MaxEdges > 0 && total > int64(lim.MaxEdges) {
		return nil, fmt.Errorf("graph: declared delta size %d operations exceeds limit %d", total, lim.MaxEdges)
	}
	d := &EdgeDelta{}
	rec := make([]byte, 24)
	readEdge := func(i, n int64, what string) (Edge, error) {
		if _, err := io.ReadFull(br, rec[:24]); err != nil {
			return Edge{}, fmt.Errorf("graph: reading delta %s %d/%d: %w", what, i+1, n, err)
		}
		return Edge{
			From:   int32(binary.LittleEndian.Uint32(rec[0:4])),
			To:     int32(binary.LittleEndian.Uint32(rec[4:8])),
			P:      mathFloat64frombits(binary.LittleEndian.Uint64(rec[8:16])),
			PBoost: mathFloat64frombits(binary.LittleEndian.Uint64(rec[16:24])),
		}, nil
	}
	for i := int64(0); i < nAdd; i++ {
		e, err := readEdge(i, nAdd, "add")
		if err != nil {
			return nil, err
		}
		d.Add = append(d.Add, e)
	}
	for i := int64(0); i < nRemove; i++ {
		if _, err := io.ReadFull(br, rec[:8]); err != nil {
			return nil, fmt.Errorf("graph: reading delta remove %d/%d: %w", i+1, nRemove, err)
		}
		d.Remove = append(d.Remove, EdgeKey{
			From: int32(binary.LittleEndian.Uint32(rec[0:4])),
			To:   int32(binary.LittleEndian.Uint32(rec[4:8])),
		})
	}
	for i := int64(0); i < nReweight; i++ {
		e, err := readEdge(i, nReweight, "reweight")
		if err != nil {
			return nil, err
		}
		d.Reweight = append(d.Reweight, e)
	}
	return d, nil
}
