package graph

import (
	"fmt"
	"sort"
)

// Builder accumulates edges and assembles an immutable Graph.
//
// A Builder may be reused after Build; building does not clear the edge
// list, so successive Builds of an unchanged Builder yield equal graphs.
type Builder struct {
	n     int
	edges []Edge
}

// NewBuilder returns a Builder for a graph with n nodes (ids 0..n-1).
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic("graph: NewBuilder with negative n")
	}
	return &Builder{n: n}
}

// N returns the number of nodes the builder was created with.
func (b *Builder) N() int { return b.n }

// NumEdges returns the number of edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// AddEdge adds the directed edge (u,v) with base probability p and
// boosted probability pBoost. Self-loops, duplicate edges, out-of-range
// endpoints, and invalid probability pairs are rejected.
func (b *Builder) AddEdge(u, v int32, p, pBoost float64) error {
	if int(u) < 0 || int(u) >= b.n || int(v) < 0 || int(v) >= b.n {
		return fmt.Errorf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n)
	}
	if u == v {
		return fmt.Errorf("graph: self loop at node %d", u)
	}
	if err := checkProbPair(p, pBoost); err != nil {
		return fmt.Errorf("graph: edge (%d,%d): %w", u, v, err)
	}
	b.edges = append(b.edges, Edge{From: u, To: v, P: p, PBoost: pBoost})
	return nil
}

// MustAddEdge is AddEdge that panics on error. Intended for tests and
// generators whose inputs are correct by construction.
func (b *Builder) MustAddEdge(u, v int32, p, pBoost float64) {
	if err := b.AddEdge(u, v, p, pBoost); err != nil {
		panic(err)
	}
}

// Build assembles the immutable Graph. It returns an error on duplicate
// edges.
func (b *Builder) Build() (*Graph, error) {
	n := b.n
	m := len(b.edges)
	g := &Graph{
		n:        n,
		outStart: make([]int32, n+1),
		outTo:    make([]int32, m),
		outP:     make([]float64, m),
		outPB:    make([]float64, m),
		inStart:  make([]int32, n+1),
		inFrom:   make([]int32, m),
		inP:      make([]float64, m),
		inPB:     make([]float64, m),
	}

	// Counting sort by source for the out-CSR, then by target for in-CSR.
	for _, e := range b.edges {
		g.outStart[e.From+1]++
		g.inStart[e.To+1]++
	}
	for i := 0; i < n; i++ {
		g.outStart[i+1] += g.outStart[i]
		g.inStart[i+1] += g.inStart[i]
	}
	outPos := append([]int32(nil), g.outStart[:n]...)
	inPos := append([]int32(nil), g.inStart[:n]...)
	for _, e := range b.edges {
		op := outPos[e.From]
		g.outTo[op] = e.To
		g.outP[op] = e.P
		g.outPB[op] = e.PBoost
		outPos[e.From]++

		ip := inPos[e.To]
		g.inFrom[ip] = e.From
		g.inP[ip] = e.P
		g.inPB[ip] = e.PBoost
		inPos[e.To]++
	}

	// Sort each adjacency run by neighbor id for deterministic layout and
	// binary-searchable adjacency; detect duplicates while at it.
	for u := 0; u < n; u++ {
		if err := sortRun(g.outTo, g.outP, g.outPB, int(g.outStart[u]), int(g.outStart[u+1])); err != nil {
			return nil, fmt.Errorf("graph: node %d out edges: %w", u, err)
		}
		if err := sortRun(g.inFrom, g.inP, g.inPB, int(g.inStart[u]), int(g.inStart[u+1])); err != nil {
			return nil, fmt.Errorf("graph: node %d in edges: %w", u, err)
		}
	}
	return g, nil
}

// MustBuild is Build that panics on error.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// sortRun sorts the [lo,hi) slice of the parallel arrays by id and
// reports duplicates.
func sortRun(ids []int32, p, pb []float64, lo, hi int) error {
	run := runSorter{ids: ids[lo:hi], p: p[lo:hi], pb: pb[lo:hi]}
	sort.Sort(run)
	for i := 1; i < len(run.ids); i++ {
		if run.ids[i] == run.ids[i-1] {
			return fmt.Errorf("duplicate edge to node %d", run.ids[i])
		}
	}
	return nil
}

type runSorter struct {
	ids []int32
	p   []float64
	pb  []float64
}

func (s runSorter) Len() int           { return len(s.ids) }
func (s runSorter) Less(i, j int) bool { return s.ids[i] < s.ids[j] }
func (s runSorter) Swap(i, j int) {
	s.ids[i], s.ids[j] = s.ids[j], s.ids[i]
	s.p[i], s.p[j] = s.p[j], s.p[i]
	s.pb[i], s.pb[j] = s.pb[j], s.pb[i]
}

// FromEdges is a convenience constructor building a Graph from an edge
// list in one call.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		if err := b.AddEdge(e.From, e.To, e.P, e.PBoost); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
