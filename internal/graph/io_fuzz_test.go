package graph

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"
)

// fuzzLimits caps what a fuzz input may ask the codecs to allocate —
// the same defense the serving layer uses against hostile upload
// headers, at a scale the fuzzing engine can exercise quickly.
var fuzzLimits = ReadLimits{MaxNodes: 1 << 12, MaxEdges: 1 << 14}

// fuzzSeedGraph is a small valid graph used to seed both corpora.
func fuzzSeedGraph(tb testing.TB) *Graph {
	tb.Helper()
	b := NewBuilder(5)
	b.MustAddEdge(0, 1, 0.25, 0.5)
	b.MustAddEdge(1, 2, 0.1, 0.1)
	b.MustAddEdge(2, 0, 0, 1)
	b.MustAddEdge(3, 4, 0.125, 0.625)
	return b.MustBuild()
}

// checkParsedGraph asserts the invariants every successfully decoded
// graph must satisfy: within limits, structurally valid, and exactly
// re-encodable (both codecs round-trip losslessly — text floats print
// with %g, the shortest uniquely-decoding form).
func checkParsedGraph(t *testing.T, g *Graph, lim ReadLimits) {
	t.Helper()
	if g.N() > lim.MaxNodes || g.M() > lim.MaxEdges {
		t.Fatalf("decoded graph (%d nodes, %d edges) exceeds limits %+v", g.N(), g.M(), lim)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("decoded graph fails Validate: %v", err)
	}
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatalf("re-encoding decoded graph: %v", err)
	}
	g2, err := ReadTextLimited(&buf, lim)
	if err != nil {
		t.Fatalf("re-decoding re-encoded graph: %v", err)
	}
	if g2.N() != g.N() || !reflect.DeepEqual(g2.Edges(), g.Edges()) {
		t.Fatalf("text round-trip changed the graph: %d/%d nodes, edges %v vs %v",
			g.N(), g2.N(), g.Edges(), g2.Edges())
	}
}

// FuzzReadEdgeList fuzzes the text edge-list codec: arbitrary input
// must either decode into a valid in-limits graph or return an error —
// never panic, and never allocate beyond the declared limits (a hostile
// header like "2000000000 0" must be rejected before its CSR arrays
// are).
func FuzzReadEdgeList(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedGraph(f).WriteText(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()/2]) // truncated mid-edge
	f.Add([]byte("# comment only\n"))
	f.Add([]byte("3 1\n0 1 0.5 0.75\n"))
	f.Add([]byte("3 5\n0 1 0.5 0.75\n")) // claims more edges than present
	f.Add([]byte("2000000000 0\n"))      // hostile header: huge n
	f.Add([]byte("-1 -1\n"))
	f.Add([]byte("9999999999999999999 1\n")) // overflows int64
	f.Add([]byte("2 1\n0 1 NaN 1\n"))
	f.Add([]byte("2 1\n0 1 0.9 0.1\n")) // pBoost < p
	f.Add([]byte("2 1\n1 1 0.1 0.2\n")) // self loop
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadTextLimited(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return
		}
		checkParsedGraph(t, g, fuzzLimits)
	})
}

// FuzzReadBinary fuzzes the binary codec under the same contract as
// FuzzReadEdgeList.
func FuzzReadBinary(f *testing.F) {
	var valid bytes.Buffer
	if err := fuzzSeedGraph(f).WriteBinary(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-7]) // truncated mid-record
	f.Add(valid.Bytes()[:10])            // truncated header
	f.Add([]byte("KBG1"))
	f.Add([]byte("nope"))
	hostile := make([]byte, 12) // header demanding 4B nodes with no edges
	copy(hostile, "KBG1")
	binary.LittleEndian.PutUint32(hostile[4:8], 0xFFFFFFFF)
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinaryLimited(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return
		}
		checkParsedGraph(t, g, fuzzLimits)
		// The binary codec must round-trip through itself as well.
		var buf bytes.Buffer
		if err := g.WriteBinary(&buf); err != nil {
			t.Fatalf("re-encoding decoded graph: %v", err)
		}
		g2, err := ReadBinaryLimited(&buf, fuzzLimits)
		if err != nil {
			t.Fatalf("re-decoding re-encoded graph: %v", err)
		}
		if !reflect.DeepEqual(g2.Edges(), g.Edges()) {
			t.Fatalf("binary round-trip changed the edges: %v vs %v", g2.Edges(), g.Edges())
		}
	})
}
