package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// ReadLimits bounds what the codecs will ingest before any
// size-proportional allocation happens. Both formats announce their node
// and edge counts in a fixed-size header, so without a bound a tiny
// malicious input ("2000000000 0", or 12 bytes of binary header) can
// demand a multi-gigabyte CSR allocation. Zero fields are unlimited
// beyond the formats' inherent int32 layout bounds; ingestion paths that
// accept untrusted input (graph uploads, fuzzing) should always set
// both.
type ReadLimits struct {
	// MaxNodes caps the declared node count n (0 = unlimited).
	MaxNodes int
	// MaxEdges caps the declared edge count m (0 = unlimited).
	MaxEdges int
}

// check takes int64 so callers can validate raw header values before
// narrowing them to int — on 32-bit platforms a uint32 count would
// otherwise wrap negative and dodge every bound.
func (lim ReadLimits) check(n, m int64) error {
	// CSR offsets are int32; anything larger cannot be represented and
	// would only trip makeslice panics or offset overflow downstream.
	if n > math.MaxInt32-1 || m > math.MaxInt32 {
		return fmt.Errorf("graph: declared size %d nodes / %d edges exceeds the int32 layout", n, m)
	}
	if lim.MaxNodes > 0 && n > int64(lim.MaxNodes) {
		return fmt.Errorf("graph: declared node count %d exceeds limit %d", n, lim.MaxNodes)
	}
	if lim.MaxEdges > 0 && m > int64(lim.MaxEdges) {
		return fmt.Errorf("graph: declared edge count %d exceeds limit %d", m, lim.MaxEdges)
	}
	return nil
}

// Text format
//
//	# comment lines start with '#'
//	<n> <m>
//	<from> <to> <p> <pBoost>        (m lines)
//
// Node ids are 0-based. The format is line-oriented and whitespace
// separated; it is the interchange format used by cmd/gengraph and
// cmd/kboost.

// WriteText writes g in the text format.
func (g *Graph) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.N(), g.M()); err != nil {
		return err
	}
	for u := int32(0); u < int32(g.n); u++ {
		to := g.OutTo(u)
		p := g.OutP(u)
		pb := g.OutPBoost(u)
		for i := range to {
			if _, err := fmt.Fprintf(bw, "%d %d %g %g\n", u, to[i], p[i], pb[i]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses a graph in the text format with no size limits; use
// ReadTextLimited for untrusted input.
func ReadText(r io.Reader) (*Graph, error) {
	return ReadTextLimited(r, ReadLimits{})
}

// ReadTextLimited parses a graph in the text format, rejecting headers
// that exceed lim before allocating anything size-proportional.
func ReadTextLimited(r io.Reader, lim ReadLimits) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)

	line, err := nextDataLine(sc)
	if err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	var n, m int
	if _, err := fmt.Sscanf(line, "%d %d", &n, &m); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", line, err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative size in header %q", line)
	}
	if err := lim.check(int64(n), int64(m)); err != nil {
		return nil, err
	}
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		line, err := nextDataLine(sc)
		if err != nil {
			return nil, fmt.Errorf("graph: reading edge %d/%d: %w", i+1, m, err)
		}
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, fmt.Errorf("graph: edge line %q: want 4 fields, got %d", line, len(fields))
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge line %q: %w", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edge line %q: %w", line, err)
		}
		p, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge line %q: %w", line, err)
		}
		pb, err := strconv.ParseFloat(fields[3], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: edge line %q: %w", line, err)
		}
		if err := b.AddEdge(int32(u), int32(v), p, pb); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

func nextDataLine(sc *bufio.Scanner) (string, error) {
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		return line, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", io.ErrUnexpectedEOF
}

// Binary format: a compact little-endian encoding.
//
//	magic "KBG1" | uint32 n | uint32 m
//	m records of: uint32 from | uint32 to | float64 p | float64 pBoost
const binaryMagic = "KBG1"

// WriteBinary writes g in the binary format.
func (g *Graph) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	hdr := [8]byte{}
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(g.N()))
	binary.LittleEndian.PutUint32(hdr[4:8], uint32(g.M()))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [24]byte
	for u := int32(0); u < int32(g.n); u++ {
		to := g.OutTo(u)
		p := g.OutP(u)
		pb := g.OutPBoost(u)
		for i := range to {
			binary.LittleEndian.PutUint32(rec[0:4], uint32(u))
			binary.LittleEndian.PutUint32(rec[4:8], uint32(to[i]))
			binary.LittleEndian.PutUint64(rec[8:16], mathFloat64bits(p[i]))
			binary.LittleEndian.PutUint64(rec[16:24], mathFloat64bits(pb[i]))
			if _, err := bw.Write(rec[:]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses a graph in the binary format with no size limits;
// use ReadBinaryLimited for untrusted input.
func ReadBinary(r io.Reader) (*Graph, error) {
	return ReadBinaryLimited(r, ReadLimits{})
}

// ReadBinaryLimited parses a graph in the binary format, rejecting
// headers that exceed lim before allocating anything size-proportional.
func ReadBinaryLimited(r io.Reader, lim ReadLimits) (*Graph, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("graph: bad magic %q (want %q)", magic, binaryMagic)
	}
	hdr := make([]byte, 8)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	// Validate at 64-bit width before narrowing: int(uint32) wraps
	// negative on 32-bit platforms and would slip past the bounds.
	n64 := int64(binary.LittleEndian.Uint32(hdr[0:4]))
	m64 := int64(binary.LittleEndian.Uint32(hdr[4:8]))
	if err := lim.check(n64, m64); err != nil {
		return nil, err
	}
	n, m := int(n64), int(m64)
	b := NewBuilder(n)
	rec := make([]byte, 24)
	for i := 0; i < m; i++ {
		if _, err := io.ReadFull(br, rec); err != nil {
			return nil, fmt.Errorf("graph: reading edge %d/%d: %w", i+1, m, err)
		}
		u := int32(binary.LittleEndian.Uint32(rec[0:4]))
		v := int32(binary.LittleEndian.Uint32(rec[4:8]))
		p := mathFloat64frombits(binary.LittleEndian.Uint64(rec[8:16]))
		pb := mathFloat64frombits(binary.LittleEndian.Uint64(rec[16:24]))
		if err := b.AddEdge(u, v, p, pb); err != nil {
			return nil, err
		}
	}
	return b.Build()
}
