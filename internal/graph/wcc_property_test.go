package graph

import (
	"testing"
	"testing/quick"

	"github.com/kboost/kboost/internal/rng"
)

// Property: LargestWCC returns a weakly connected subgraph whose size
// equals the largest undirected component of the input.
func TestQuickLargestWCC(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		r := rng.New(seed)
		n := 2 + int(nRaw%30)
		m := int(mRaw) % (n * 2)
		b := NewBuilder(n)
		seen := map[[2]int32]bool{}
		for i := 0; i < m; i++ {
			u := int32(r.Intn(n))
			v := int32(r.Intn(n))
			if u == v || seen[[2]int32{u, v}] {
				continue
			}
			seen[[2]int32{u, v}] = true
			b.MustAddEdge(u, v, 0.5, 0.7)
		}
		g := b.MustBuild()

		wcc, mapping := g.LargestWCC()
		// Reference: undirected components by union-find.
		parent := make([]int, n)
		for i := range parent {
			parent[i] = i
		}
		var find func(int) int
		find = func(x int) int {
			for parent[x] != x {
				parent[x] = parent[parent[x]]
				x = parent[x]
			}
			return x
		}
		for _, e := range g.Edges() {
			a, bb := find(int(e.From)), find(int(e.To))
			if a != bb {
				parent[a] = bb
			}
		}
		sizes := map[int]int{}
		best := 0
		for v := 0; v < n; v++ {
			s := find(v)
			sizes[s]++
			if sizes[s] > best {
				best = sizes[s]
			}
		}
		if wcc.N() != best {
			return false
		}
		// All mapped original nodes must belong to one component.
		if len(mapping) > 0 {
			root := find(int(mapping[0]))
			for _, orig := range mapping {
				if find(int(orig)) != root {
					return false
				}
			}
		}
		// The subgraph must be internally consistent.
		return wcc.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
