package graph

import "math"

// mathFloat64bits / mathFloat64frombits are tiny aliases so io.go does
// not import math directly for two calls; keeping them here groups all
// float handling.
func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }

// Stats summarizes a graph. It mirrors the dataset statistics the paper
// reports in Table 1.
type Stats struct {
	N            int     // number of nodes
	M            int     // number of directed edges
	AvgP         float64 // average base influence probability
	AvgPBoost    float64 // average boosted influence probability
	MaxOutDegree int
	MaxInDegree  int
	AvgOutDegree float64
}

// ComputeStats scans the graph once and returns its Stats.
func (g *Graph) ComputeStats() Stats {
	s := Stats{N: g.N(), M: g.M()}
	var sumP, sumPB float64
	for _, p := range g.outP {
		sumP += p
	}
	for _, pb := range g.outPB {
		sumPB += pb
	}
	if s.M > 0 {
		s.AvgP = sumP / float64(s.M)
		s.AvgPBoost = sumPB / float64(s.M)
	}
	for u := int32(0); u < int32(g.n); u++ {
		if d := g.OutDegree(u); d > s.MaxOutDegree {
			s.MaxOutDegree = d
		}
		if d := g.InDegree(u); d > s.MaxInDegree {
			s.MaxInDegree = d
		}
	}
	if s.N > 0 {
		s.AvgOutDegree = float64(s.M) / float64(s.N)
	}
	return s
}

// LargestWCC returns the subgraph induced by the largest weakly
// connected component and the mapping from new node ids to original ids.
// Singleton components count. If the graph is empty it returns an empty
// graph and a nil mapping.
func (g *Graph) LargestWCC() (*Graph, []int32) {
	n := g.n
	if n == 0 {
		return &Graph{outStart: []int32{0}, inStart: []int32{0}}, nil
	}
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var queue []int32
	numComp := int32(0)
	compSize := []int{}
	for s := int32(0); s < int32(n); s++ {
		if comp[s] >= 0 {
			continue
		}
		comp[s] = numComp
		size := 1
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			u := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, v := range g.OutTo(u) {
				if comp[v] < 0 {
					comp[v] = numComp
					size++
					queue = append(queue, v)
				}
			}
			for _, v := range g.InFrom(u) {
				if comp[v] < 0 {
					comp[v] = numComp
					size++
					queue = append(queue, v)
				}
			}
		}
		compSize = append(compSize, size)
		numComp++
	}
	best := int32(0)
	for c, size := range compSize {
		if size > compSize[best] {
			best = int32(c)
		}
	}
	keep := make([]bool, n)
	for v := int32(0); v < int32(n); v++ {
		keep[v] = comp[v] == best
	}
	return g.Subgraph(keep)
}

// Subgraph returns the subgraph induced by the nodes with keep[v]==true
// together with the mapping newID -> oldID. Edges with either endpoint
// outside the kept set are dropped.
func (g *Graph) Subgraph(keep []bool) (*Graph, []int32) {
	if len(keep) != g.n {
		panic("graph: Subgraph keep mask has wrong length")
	}
	newID := make([]int32, g.n)
	var mapping []int32
	next := int32(0)
	for v := int32(0); v < int32(g.n); v++ {
		if keep[v] {
			newID[v] = next
			mapping = append(mapping, v)
			next++
		} else {
			newID[v] = -1
		}
	}
	b := NewBuilder(int(next))
	for u := int32(0); u < int32(g.n); u++ {
		if !keep[u] {
			continue
		}
		to := g.OutTo(u)
		p := g.OutP(u)
		pb := g.OutPBoost(u)
		for i, v := range to {
			if keep[v] {
				b.MustAddEdge(newID[u], newID[v], p[i], pb[i])
			}
		}
	}
	return b.MustBuild(), mapping
}

// IsBidirectedTree reports whether the graph's underlying undirected
// graph (directions and duplicate edges removed) is a tree, i.e. it is
// connected and has exactly n-1 undirected edges. This is the structural
// requirement for the tree algorithms of Section VI of the paper.
func (g *Graph) IsBidirectedTree() bool {
	n := g.n
	if n == 0 {
		return false
	}
	// Count undirected edges: each unordered pair {u,v} with at least one
	// directed edge counts once. Adjacency runs are sorted, so count pairs
	// (u,v) with u<v from out-edges and pairs (u,v) with u>v only when the
	// reverse edge does not exist.
	undirected := 0
	for u := int32(0); u < int32(n); u++ {
		for _, v := range g.OutTo(u) {
			if u < v {
				undirected++
			} else {
				if _, _, ok := g.FindEdge(v, u); !ok {
					undirected++
				}
			}
		}
	}
	if undirected != n-1 {
		return false
	}
	// Connectivity over the undirected view.
	seen := make([]bool, n)
	stack := []int32{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range g.OutTo(u) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
		for _, v := range g.InFrom(u) {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}
