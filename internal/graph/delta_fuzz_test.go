package graph

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadEdgeDelta fuzzes the KBD1 delta codec under the same contract
// as the graph codecs: arbitrary input must either decode into an
// in-limits delta that round-trips losslessly, or return an error —
// never panic, and never allocate proportionally to a hostile header.
func FuzzReadEdgeDelta(f *testing.F) {
	seed := &EdgeDelta{
		Add:      []Edge{{From: 0, To: 1, P: 0.25, PBoost: 0.5}, {From: 3, To: 2, P: 0, PBoost: 1}},
		Remove:   []EdgeKey{{From: 1, To: 0}},
		Reweight: []Edge{{From: 2, To: 4, P: 0.125, PBoost: 0.625}},
	}
	var valid bytes.Buffer
	if err := seed.WriteEdgeDelta(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:valid.Len()-5]) // truncated mid-record
	f.Add(valid.Bytes()[:10])            // truncated header
	f.Add([]byte("KBD1"))
	f.Add([]byte("KBG1\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00\x00")) // sibling magic
	f.Add([]byte("nope"))
	empty := make([]byte, 16)
	copy(empty, "KBD1")
	f.Add(empty)
	hostile := make([]byte, 16) // header demanding 4B ops with no payload
	copy(hostile, "KBD1")
	binary.LittleEndian.PutUint32(hostile[4:8], 0xFFFFFFFF)
	f.Add(hostile)
	overflow := make([]byte, 16) // three maxed counts: wraps int32 if summed narrow
	copy(overflow, "KBD1")
	for i := 4; i < 16; i++ {
		overflow[i] = 0xFF
	}
	f.Add(overflow)
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := ReadEdgeDeltaLimited(bytes.NewReader(data), fuzzLimits)
		if err != nil {
			return
		}
		if d.Ops() > fuzzLimits.MaxEdges {
			t.Fatalf("decoded delta has %d ops, above limit %d", d.Ops(), fuzzLimits.MaxEdges)
		}
		var buf bytes.Buffer
		if err := d.WriteEdgeDelta(&buf); err != nil {
			t.Fatalf("re-encoding decoded delta: %v", err)
		}
		d2, err := ReadEdgeDeltaLimited(bytes.NewReader(buf.Bytes()), fuzzLimits)
		if err != nil {
			t.Fatalf("re-decoding re-encoded delta: %v", err)
		}
		if !deltasEqual(d2, d) {
			t.Fatalf("round trip changed the delta:\n got %+v\nwant %+v", d2, d)
		}
	})
}
