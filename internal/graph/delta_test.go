package graph

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"github.com/kboost/kboost/internal/rng"
)

// graphsIdentical asserts every CSR array of got matches want exactly —
// the bit-identity contract ApplyDelta promises against FromEdges.
func graphsIdentical(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.n != want.n {
		t.Fatalf("node count %d, want %d", got.n, want.n)
	}
	check := func(name string, a, b interface{}) {
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s differs:\n got %v\nwant %v", name, a, b)
		}
	}
	check("outStart", got.outStart, want.outStart)
	check("outTo", got.outTo, want.outTo)
	check("outP", got.outP, want.outP)
	check("outPB", got.outPB, want.outPB)
	check("inStart", got.inStart, want.inStart)
	check("inFrom", got.inFrom, want.inFrom)
	check("inP", got.inP, want.inP)
	check("inPB", got.inPB, want.inPB)
}

// randomTestGraph builds a random graph over n nodes with roughly m
// distinct directed edges.
func randomTestGraph(t testing.TB, r *rng.Source, n, m int) *Graph {
	t.Helper()
	seen := map[EdgeKey]bool{}
	var edges []Edge
	for len(edges) < m {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v || seen[EdgeKey{u, v}] {
			continue
		}
		seen[EdgeKey{u, v}] = true
		p := r.Float64()
		pb := p + (1-p)*r.Float64()
		edges = append(edges, Edge{From: u, To: v, P: p, PBoost: pb})
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

// randomDelta derives a random valid delta against g: removals and
// reweights sampled from existing edges, adds from absent pairs.
func randomDelta(t testing.TB, r *rng.Source, g *Graph, nAdd, nRemove, nReweight int) *EdgeDelta {
	t.Helper()
	existing := g.Edges()
	present := make(map[EdgeKey]bool, len(existing))
	for _, e := range existing {
		present[EdgeKey{e.From, e.To}] = true
	}
	used := map[EdgeKey]bool{}
	d := &EdgeDelta{}
	perm := r.Perm(len(existing))
	pi := 0
	takeExisting := func() (Edge, bool) {
		for pi < len(perm) {
			e := existing[perm[pi]]
			pi++
			k := EdgeKey{e.From, e.To}
			if !used[k] {
				used[k] = true
				return e, true
			}
		}
		return Edge{}, false
	}
	for i := 0; i < nRemove; i++ {
		if e, ok := takeExisting(); ok {
			d.Remove = append(d.Remove, EdgeKey{e.From, e.To})
		}
	}
	for i := 0; i < nReweight; i++ {
		if e, ok := takeExisting(); ok {
			p := r.Float64()
			e.P, e.PBoost = p, p+(1-p)*r.Float64()
			d.Reweight = append(d.Reweight, e)
		}
	}
	for tries := 0; len(d.Add) < nAdd && tries < 50*nAdd+100; tries++ {
		u := int32(r.Intn(g.N()))
		v := int32(r.Intn(g.N()))
		k := EdgeKey{u, v}
		if u == v || present[k] || used[k] {
			continue
		}
		used[k] = true
		p := r.Float64()
		d.Add = append(d.Add, Edge{From: u, To: v, P: p, PBoost: p + (1-p)*r.Float64()})
	}
	return d
}

// applyDeltaToEdgeList applies d to an edge list the slow obvious way,
// for building the FromEdges reference.
func applyDeltaToEdgeList(edges []Edge, d *EdgeDelta) []Edge {
	drop := make(map[EdgeKey]bool, len(d.Remove))
	for _, k := range d.Remove {
		drop[k] = true
	}
	rw := make(map[EdgeKey]Edge, len(d.Reweight))
	for _, e := range d.Reweight {
		rw[EdgeKey{e.From, e.To}] = e
	}
	var out []Edge
	for _, e := range edges {
		k := EdgeKey{e.From, e.To}
		if drop[k] {
			continue
		}
		if ne, ok := rw[k]; ok {
			e = ne
		}
		out = append(out, e)
	}
	return append(out, d.Add...)
}

// TestApplyDeltaMatchesRebuild is the canonical-layout equivalence gate:
// patching the CSR in place must produce exactly what FromEdges builds
// from the post-delta edge list, across random graphs, delta mixes, and
// staged multi-batch sequences.
func TestApplyDeltaMatchesRebuild(t *testing.T) {
	r := rng.New(41)
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(40)
		maxM := n * (n - 1)
		m := r.Intn(maxM/2 + 1)
		g := randomTestGraph(t, r, n, m)
		edges := g.Edges()
		// Staged sequence of 1–3 deltas applied to the same lineage.
		batches := 1 + r.Intn(3)
		for b := 0; b < batches; b++ {
			d := randomDelta(t, r, g,
				r.Intn(5), r.Intn(4), r.Intn(4))
			if d.Ops() == 0 {
				d.Add = append(d.Add, pickAbsentEdge(t, r, g))
			}
			ng, eff, err := g.ApplyDelta(d)
			if err != nil {
				t.Fatalf("trial %d batch %d: ApplyDelta: %v (delta %+v)", trial, b, err, d)
			}
			if err := ng.Validate(); err != nil {
				t.Fatalf("trial %d batch %d: patched graph invalid: %v", trial, b, err)
			}
			edges = applyDeltaToEdgeList(edges, d)
			want, err := FromEdges(n, edges)
			if err != nil {
				t.Fatalf("trial %d batch %d: reference FromEdges: %v", trial, b, err)
			}
			graphsIdentical(t, ng, want)
			checkDeltaEffect(t, g, ng, d, eff)
			// g must be untouched by the patch.
			if b == 0 {
				prev, err := FromEdges(n, g.Edges())
				if err != nil {
					t.Fatalf("re-deriving pre-delta graph: %v", err)
				}
				graphsIdentical(t, g, prev)
			}
			g = ng
		}
	}
}

func pickAbsentEdge(t testing.TB, r *rng.Source, g *Graph) Edge {
	t.Helper()
	present := map[EdgeKey]bool{}
	for _, e := range g.Edges() {
		present[EdgeKey{e.From, e.To}] = true
	}
	for tries := 0; tries < 10000; tries++ {
		u := int32(r.Intn(g.N()))
		v := int32(r.Intn(g.N()))
		if u != v && !present[EdgeKey{u, v}] {
			return Edge{From: u, To: v, P: 0.5, PBoost: 0.75}
		}
	}
	t.Fatal("no absent edge found")
	return Edge{}
}

// checkDeltaEffect asserts the dirty masks are exactly the endpoints the
// delta names — no more, no fewer — and the counts agree.
func checkDeltaEffect(t *testing.T, oldG, newG *Graph, d *EdgeDelta, eff *DeltaEffect) {
	t.Helper()
	wantOut := make([]bool, oldG.N())
	wantIn := make([]bool, oldG.N())
	mark := func(u, v int32) {
		wantOut[u] = true
		wantIn[v] = true
	}
	for _, e := range d.Add {
		mark(e.From, e.To)
	}
	for _, k := range d.Remove {
		mark(k.From, k.To)
	}
	for _, e := range d.Reweight {
		mark(e.From, e.To)
	}
	if !reflect.DeepEqual(eff.DirtyOut, wantOut) || !reflect.DeepEqual(eff.DirtyIn, wantIn) {
		t.Fatalf("dirty masks wrong:\n out %v want %v\n in %v want %v",
			eff.DirtyOut, wantOut, eff.DirtyIn, wantIn)
	}
	co, ci := 0, 0
	for i := range wantOut {
		if wantOut[i] {
			co++
		}
		if wantIn[i] {
			ci++
		}
	}
	if eff.DirtyOutCount != co || eff.DirtyInCount != ci {
		t.Fatalf("dirty counts %d/%d, want %d/%d", eff.DirtyOutCount, eff.DirtyInCount, co, ci)
	}
	if eff.Added != len(d.Add) || eff.Removed != len(d.Remove) || eff.Reweighted != len(d.Reweight) {
		t.Fatalf("op counts %d/%d/%d, want %d/%d/%d",
			eff.Added, eff.Removed, eff.Reweighted, len(d.Add), len(d.Remove), len(d.Reweight))
	}
}

// TestApplyDeltaErrors covers every rejection path.
func TestApplyDeltaErrors(t *testing.T) {
	b := NewBuilder(4)
	b.MustAddEdge(0, 1, 0.5, 0.75)
	b.MustAddEdge(1, 2, 0.25, 0.5)
	g := b.MustBuild()

	cases := []struct {
		name string
		d    EdgeDelta
		want string
	}{
		{"add existing", EdgeDelta{Add: []Edge{{From: 0, To: 1, P: 0.1, PBoost: 0.2}}}, "adds existing edge"},
		{"remove missing", EdgeDelta{Remove: []EdgeKey{{From: 2, To: 3}}}, "remove of missing edge"},
		{"reweight missing", EdgeDelta{Reweight: []Edge{{From: 3, To: 0, P: 0.1, PBoost: 0.2}}}, "reweight of missing edge"},
		{"duplicate ops", EdgeDelta{
			Remove:   []EdgeKey{{From: 0, To: 1}},
			Reweight: []Edge{{From: 0, To: 1, P: 0.1, PBoost: 0.2}},
		}, "multiple operations"},
		{"duplicate adds", EdgeDelta{Add: []Edge{
			{From: 2, To: 3, P: 0.1, PBoost: 0.2},
			{From: 2, To: 3, P: 0.3, PBoost: 0.4},
		}}, "multiple operations"},
		{"add out of range", EdgeDelta{Add: []Edge{{From: 0, To: 4, P: 0.1, PBoost: 0.2}}}, "out of range"},
		{"remove negative", EdgeDelta{Remove: []EdgeKey{{From: -1, To: 1}}}, "out of range"},
		{"add self loop", EdgeDelta{Add: []Edge{{From: 2, To: 2, P: 0.1, PBoost: 0.2}}}, "self loop"},
		{"add NaN", EdgeDelta{Add: []Edge{{From: 2, To: 3, P: math.NaN(), PBoost: 0.2}}}, ""},
		{"add pBoost below p", EdgeDelta{Add: []Edge{{From: 2, To: 3, P: 0.9, PBoost: 0.1}}}, ""},
		{"reweight above one", EdgeDelta{Reweight: []Edge{{From: 0, To: 1, P: 0.5, PBoost: 1.5}}}, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ng, eff, err := g.ApplyDelta(&tc.d)
			if err == nil {
				t.Fatalf("ApplyDelta accepted invalid delta %+v", tc.d)
			}
			if ng != nil || eff != nil {
				t.Fatalf("error return carried non-nil results")
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestApplyDeltaEmpty applies a zero-op delta: the result must be a
// distinct but identical graph with all-false masks.
func TestApplyDeltaEmpty(t *testing.T) {
	r := rng.New(5)
	g := randomTestGraph(t, r, 10, 25)
	ng, eff, err := g.ApplyDelta(&EdgeDelta{})
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	graphsIdentical(t, ng, g)
	if ng == g {
		t.Fatal("ApplyDelta returned the receiver")
	}
	if eff.DirtyOutCount != 0 || eff.DirtyInCount != 0 {
		t.Fatalf("empty delta dirtied nodes: %+v", eff)
	}
}

// TestApplyDeltaRemoveAll empties the graph entirely.
func TestApplyDeltaRemoveAll(t *testing.T) {
	r := rng.New(9)
	g := randomTestGraph(t, r, 6, 12)
	d := &EdgeDelta{}
	for _, e := range g.Edges() {
		d.Remove = append(d.Remove, EdgeKey{e.From, e.To})
	}
	ng, _, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatalf("ApplyDelta: %v", err)
	}
	if ng.M() != 0 {
		t.Fatalf("graph has %d edges after removing all", ng.M())
	}
	if err := ng.Validate(); err != nil {
		t.Fatalf("emptied graph invalid: %v", err)
	}
}

// TestEdgeDeltaRoundTrip checks the KBD1 codec reproduces deltas
// bit-exactly, including float payloads and empty sections.
func TestEdgeDeltaRoundTrip(t *testing.T) {
	cases := []*EdgeDelta{
		{},
		{Add: []Edge{{From: 0, To: 1, P: 0.25, PBoost: 0.5}}},
		{
			Add:      []Edge{{From: 3, To: 7, P: 0.1, PBoost: 0.9}, {From: 1, To: 0, P: 0, PBoost: 1}},
			Remove:   []EdgeKey{{From: 5, To: 6}},
			Reweight: []Edge{{From: 2, To: 4, P: 0.125, PBoost: 0.625}},
		},
	}
	for i, d := range cases {
		t.Run(fmt.Sprintf("case%d", i), func(t *testing.T) {
			var buf bytes.Buffer
			if err := d.WriteEdgeDelta(&buf); err != nil {
				t.Fatalf("WriteEdgeDelta: %v", err)
			}
			got, err := ReadEdgeDelta(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadEdgeDelta: %v", err)
			}
			if !deltasEqual(got, d) {
				t.Fatalf("round trip changed the delta:\n got %+v\nwant %+v", got, d)
			}
		})
	}
}

// deltasEqual compares two deltas bit-exactly; float payloads compare
// by bit pattern so fuzz-decoded NaNs round-trip as equal.
func deltasEqual(a, b *EdgeDelta) bool {
	if len(a.Add) != len(b.Add) || len(a.Remove) != len(b.Remove) || len(a.Reweight) != len(b.Reweight) {
		return false
	}
	edgeEq := func(x, y Edge) bool {
		return x.From == y.From && x.To == y.To &&
			mathFloat64bits(x.P) == mathFloat64bits(y.P) &&
			mathFloat64bits(x.PBoost) == mathFloat64bits(y.PBoost)
	}
	for i := range a.Add {
		if !edgeEq(a.Add[i], b.Add[i]) {
			return false
		}
	}
	for i := range a.Remove {
		if a.Remove[i] != b.Remove[i] {
			return false
		}
	}
	for i := range a.Reweight {
		if !edgeEq(a.Reweight[i], b.Reweight[i]) {
			return false
		}
	}
	return true
}

// TestReadEdgeDeltaLimits covers the hostile-header guards.
func TestReadEdgeDeltaLimits(t *testing.T) {
	valid := func() []byte {
		var buf bytes.Buffer
		d := &EdgeDelta{Add: []Edge{{From: 0, To: 1, P: 0.5, PBoost: 0.75}}}
		if err := d.WriteEdgeDelta(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}()

	t.Run("bad magic", func(t *testing.T) {
		if _, err := ReadEdgeDelta(bytes.NewReader([]byte("NOPE\x00\x00\x00\x00"))); err == nil {
			t.Fatal("accepted bad magic")
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		if _, err := ReadEdgeDelta(bytes.NewReader(valid[:9])); err == nil {
			t.Fatal("accepted truncated header")
		}
	})
	t.Run("truncated record", func(t *testing.T) {
		if _, err := ReadEdgeDelta(bytes.NewReader(valid[:len(valid)-5])); err == nil {
			t.Fatal("accepted truncated record")
		}
	})
	t.Run("over MaxEdges", func(t *testing.T) {
		var buf bytes.Buffer
		d := &EdgeDelta{
			Add:    []Edge{{From: 0, To: 1, P: 0.5, PBoost: 0.75}},
			Remove: []EdgeKey{{From: 1, To: 0}, {From: 2, To: 0}},
		}
		if err := d.WriteEdgeDelta(&buf); err != nil {
			t.Fatal(err)
		}
		if _, err := ReadEdgeDeltaLimited(bytes.NewReader(buf.Bytes()), ReadLimits{MaxEdges: 2}); err == nil {
			t.Fatal("accepted delta above MaxEdges")
		}
		if _, err := ReadEdgeDeltaLimited(bytes.NewReader(buf.Bytes()), ReadLimits{MaxEdges: 3}); err != nil {
			t.Fatalf("rejected delta at MaxEdges: %v", err)
		}
	})
	t.Run("int32 overflow header", func(t *testing.T) {
		// Three maxed uint32 counts: total must be computed at 64-bit
		// width and rejected, not wrapped.
		hostile := make([]byte, 16)
		copy(hostile, "KBD1")
		for i := 4; i < 16; i++ {
			hostile[i] = 0xFF
		}
		_, err := ReadEdgeDelta(bytes.NewReader(hostile))
		if err == nil || !strings.Contains(err.Error(), "int32 layout") {
			t.Fatalf("hostile header error = %v, want int32 layout rejection", err)
		}
	})
}
