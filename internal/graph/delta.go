package graph

import (
	"fmt"
	"sort"
)

// EdgeDelta is a batch mutation of a graph's edge set: edges to add,
// edges to remove, and edges whose probability pair changes. The node
// set is fixed — deltas mutate edges of an existing snapshot; growing
// the node universe is a full re-upload.
//
// A delta is a set, not a sequence: each (from, to) pair may appear in
// at most one operation, adds must not duplicate existing edges, and
// removes/reweights must reference existing edges. ApplyDelta rejects
// violations, so a validated delta applied to graph G yields exactly
// the graph FromEdges would build from the post-delta edge list.
type EdgeDelta struct {
	Add      []Edge
	Remove   []EdgeKey
	Reweight []Edge
}

// EdgeKey names one directed edge by its endpoints.
type EdgeKey struct {
	From, To int32
}

// Ops returns the total number of operations in the delta.
func (d *EdgeDelta) Ops() int {
	return len(d.Add) + len(d.Remove) + len(d.Reweight)
}

// DeltaEffect reports what ApplyDelta changed, in the form the pool
// repair paths consume: which nodes' adjacency lists (and therefore
// which cached samples) a change can have touched.
type DeltaEffect struct {
	// DirtyOut[u] is true when u's out-edge list changed in any way
	// (membership, order, or probabilities). DirtyIn[v] likewise for
	// v's in-edge list. len = g.N().
	DirtyOut []bool
	DirtyIn  []bool
	// DirtyOutCount / DirtyInCount are the number of true entries.
	DirtyOutCount int
	DirtyInCount  int

	Added, Removed, Reweighted int
}

// delta op kinds, ordered so sorting ops on one edge puts them adjacent.
const (
	opAdd uint8 = iota
	opRemove
	opReweight
)

// deltaOp is one normalized operation.
type deltaOp struct {
	from, to int32
	p, pb    float64
	kind     uint8
}

// ApplyDelta returns a new graph with d applied to g. The result is in
// the canonical Builder layout — every adjacency run sorted by neighbor
// id — and is bit-identical to rebuilding from the post-delta edge
// list, which is what lets pool repair compare against cold rebuilds.
// g is not modified.
func (g *Graph) ApplyDelta(d *EdgeDelta) (*Graph, *DeltaEffect, error) {
	n := g.n
	ops := make([]deltaOp, 0, d.Ops())
	for _, e := range d.Add {
		if err := checkDeltaEdge(n, e.From, e.To); err != nil {
			return nil, nil, fmt.Errorf("graph: delta add (%d,%d): %w", e.From, e.To, err)
		}
		if err := checkProbPair(e.P, e.PBoost); err != nil {
			return nil, nil, fmt.Errorf("graph: delta add (%d,%d): %w", e.From, e.To, err)
		}
		ops = append(ops, deltaOp{from: e.From, to: e.To, p: e.P, pb: e.PBoost, kind: opAdd})
	}
	for _, k := range d.Remove {
		if err := checkDeltaEdge(n, k.From, k.To); err != nil {
			return nil, nil, fmt.Errorf("graph: delta remove (%d,%d): %w", k.From, k.To, err)
		}
		ops = append(ops, deltaOp{from: k.From, to: k.To, kind: opRemove})
	}
	for _, e := range d.Reweight {
		if err := checkDeltaEdge(n, e.From, e.To); err != nil {
			return nil, nil, fmt.Errorf("graph: delta reweight (%d,%d): %w", e.From, e.To, err)
		}
		if err := checkProbPair(e.P, e.PBoost); err != nil {
			return nil, nil, fmt.Errorf("graph: delta reweight (%d,%d): %w", e.From, e.To, err)
		}
		ops = append(ops, deltaOp{from: e.From, to: e.To, p: e.P, pb: e.PBoost, kind: opReweight})
	}

	// Out-major order for the out-CSR pass; one op per edge.
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].from != ops[j].from {
			return ops[i].from < ops[j].from
		}
		return ops[i].to < ops[j].to
	})
	for i := 1; i < len(ops); i++ {
		if ops[i].from == ops[i-1].from && ops[i].to == ops[i-1].to {
			return nil, nil, fmt.Errorf("graph: delta has multiple operations on edge (%d,%d)", ops[i].from, ops[i].to)
		}
	}

	eff := &DeltaEffect{
		DirtyOut:   make([]bool, n),
		DirtyIn:    make([]bool, n),
		Added:      len(d.Add),
		Removed:    len(d.Remove),
		Reweighted: len(d.Reweight),
	}
	for _, op := range ops {
		if !eff.DirtyOut[op.from] {
			eff.DirtyOut[op.from] = true
			eff.DirtyOutCount++
		}
		if !eff.DirtyIn[op.to] {
			eff.DirtyIn[op.to] = true
			eff.DirtyInCount++
		}
	}

	m2 := g.M() + eff.Added - eff.Removed
	ng := &Graph{
		n:        n,
		outStart: make([]int32, n+1),
		outTo:    make([]int32, 0, m2),
		outP:     make([]float64, 0, m2),
		outPB:    make([]float64, 0, m2),
		inStart:  make([]int32, n+1),
		inFrom:   make([]int32, 0, m2),
		inP:      make([]float64, 0, m2),
		inPB:     make([]float64, 0, m2),
	}

	patch := func(dirty []bool, start []int32, ids []int32, p, pb []float64,
		opNode func(deltaOp) int32, opNbr func(deltaOp) int32,
		nStart *[]int32, nIDs *[]int32, nP, nPB *[]float64) error {
		oi := 0 // cursor into ops (sorted by (node, neighbor))
		for u := 0; u < n; u++ {
			lo, hi := start[u], start[u+1]
			if !dirty[u] {
				// Untouched run: copied verbatim, preserving the canonical
				// sorted order it already has.
				*nIDs = append(*nIDs, ids[lo:hi]...)
				*nP = append(*nP, p[lo:hi]...)
				*nPB = append(*nPB, pb[lo:hi]...)
				(*nStart)[u+1] = int32(len(*nIDs))
				for oi < len(ops) && int(opNode(ops[oi])) == u {
					oi++ // cannot happen: dirty[u] would be set
				}
				continue
			}
			// Merge the old sorted run with this node's sorted ops.
			ei := lo
			for ei < hi || (oi < len(ops) && int(opNode(ops[oi])) == u) {
				hasOp := oi < len(ops) && int(opNode(ops[oi])) == u
				switch {
				case !hasOp || (ei < hi && ids[ei] < opNbr(ops[oi])):
					*nIDs = append(*nIDs, ids[ei])
					*nP = append(*nP, p[ei])
					*nPB = append(*nPB, pb[ei])
					ei++
				case ei < hi && ids[ei] == opNbr(ops[oi]):
					op := ops[oi]
					oi++
					switch op.kind {
					case opAdd:
						return fmt.Errorf("graph: delta adds existing edge (%d,%d)", op.from, op.to)
					case opRemove:
						ei++
					case opReweight:
						*nIDs = append(*nIDs, ids[ei])
						*nP = append(*nP, op.p)
						*nPB = append(*nPB, op.pb)
						ei++
					}
				default: // op neighbor precedes the next old edge (or run done)
					op := ops[oi]
					oi++
					if op.kind != opAdd {
						return fmt.Errorf("graph: delta %s of missing edge (%d,%d)",
							opKindName(op.kind), op.from, op.to)
					}
					*nIDs = append(*nIDs, opNbr(op))
					*nP = append(*nP, op.p)
					*nPB = append(*nPB, op.pb)
				}
			}
			(*nStart)[u+1] = int32(len(*nIDs))
		}
		return nil
	}

	if err := patch(eff.DirtyOut, g.outStart, g.outTo, g.outP, g.outPB,
		func(o deltaOp) int32 { return o.from }, func(o deltaOp) int32 { return o.to },
		&ng.outStart, &ng.outTo, &ng.outP, &ng.outPB); err != nil {
		return nil, nil, err
	}

	// In-major order for the in-CSR pass.
	sort.Slice(ops, func(i, j int) bool {
		if ops[i].to != ops[j].to {
			return ops[i].to < ops[j].to
		}
		return ops[i].from < ops[j].from
	})
	if err := patch(eff.DirtyIn, g.inStart, g.inFrom, g.inP, g.inPB,
		func(o deltaOp) int32 { return o.to }, func(o deltaOp) int32 { return o.from },
		&ng.inStart, &ng.inFrom, &ng.inP, &ng.inPB); err != nil {
		return nil, nil, err
	}

	if len(ng.outTo) != m2 || len(ng.inFrom) != m2 {
		return nil, nil, fmt.Errorf("graph: delta application produced %d out / %d in edges, want %d",
			len(ng.outTo), len(ng.inFrom), m2)
	}
	return ng, eff, nil
}

func checkDeltaEdge(n int, u, v int32) error {
	if int(u) < 0 || int(u) >= n || int(v) < 0 || int(v) >= n {
		return fmt.Errorf("endpoint out of range [0,%d)", n)
	}
	if u == v {
		return fmt.Errorf("self loop")
	}
	return nil
}

func opKindName(k uint8) string {
	switch k {
	case opAdd:
		return "add"
	case opRemove:
		return "remove"
	default:
		return "reweight"
	}
}
