// Package testutil provides shared fixtures for kboost tests: the
// paper's worked examples and small random graphs suitable for exact
// enumeration.
package testutil

import (
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// Fig1 returns the paper's Figure 1 example: s -> v0 -> v1 with
// p(s,v0)=0.2, p'(s,v0)=0.4, p(v0,v1)=0.1, p'(v0,v1)=0.2, S={s}.
// Node ids: s=0, v0=1, v1=2.
//
// Ground truth (from the paper):
//
//	σ_S(∅)        = 1.22
//	σ_S({v0})     = 1.44   Δ = 0.22
//	σ_S({v1})     = 1.24   Δ = 0.02
//	σ_S({v0,v1})  = 1.48   Δ = 0.26
func Fig1() (*graph.Graph, []int32) {
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.2, 0.4)
	b.MustAddEdge(1, 2, 0.1, 0.2)
	return b.MustBuild(), []int32{0}
}

// Fig4 returns the paper's Figure 4 bidirected tree: v0 adjacent to
// v1, v2, v3, every directed edge with p=0.1 and p'=0.19, S={v1,v3}.
// Node ids match the paper's (v0=0 .. v3=3).
func Fig4() (*graph.Graph, []int32) {
	b := graph.NewBuilder(4)
	for _, leaf := range []int32{1, 2, 3} {
		b.MustAddEdge(0, leaf, 0.1, 0.19)
		b.MustAddEdge(leaf, 0, 0.1, 0.19)
	}
	return b.MustBuild(), []int32{1, 3}
}

// RandomGraph generates a small random directed graph with n nodes and
// about m edges, probabilities uniform in (0, maxP] and boosted
// probabilities 1-(1-p)^2. Suitable for exact enumeration when m <=
// exact.MaxEdges.
func RandomGraph(r *rng.Source, n, m int, maxP float64) *graph.Graph {
	b := graph.NewBuilder(n)
	seen := make(map[[2]int32]bool)
	attempts := 0
	for b.NumEdges() < m && attempts < 50*m {
		attempts++
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v || seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		p := r.Float64() * maxP
		if p == 0 {
			p = maxP / 2
		}
		pb := 1 - (1-p)*(1-p)
		b.MustAddEdge(u, v, p, pb)
	}
	return b.MustBuild()
}

// RandomSeedSet picks count distinct seeds from a graph with n nodes.
func RandomSeedSet(r *rng.Source, n, count int) []int32 {
	if count > n {
		count = n
	}
	picks := r.Sample(n, count)
	out := make([]int32, count)
	for i, v := range picks {
		out[i] = int32(v)
	}
	return out
}

// NonSeeds returns all node ids not in seeds.
func NonSeeds(n int, seeds []int32) []int32 {
	mask := make([]bool, n)
	for _, s := range seeds {
		mask[s] = true
	}
	var out []int32
	for v := int32(0); int(v) < n; v++ {
		if !mask[v] {
			out = append(out, v)
		}
	}
	return out
}
