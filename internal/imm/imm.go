// Package imm implements the sampling phase of the IMM framework
// ("Influence Maximization in Near-Linear Time: A Martingale Approach",
// Tang, Shi, Xiao — SIGMOD 2015), generalized over the sketch type.
//
// IMM estimates a monotone submodular objective F(S) = N * E[sketch is
// covered by S] by generating just enough random sketches that the
// greedy maximizer of empirical coverage is a (1-1/e-ε)-approximation
// with probability at least 1 - N^-ℓ. kboost instantiates it twice:
// with reverse-reachable sets for classic influence maximization
// (internal/rrset), and with PRR-graph critical-node sets for the
// submodular lower bound μ of the boost objective (internal/core), as
// described in Section V-B of the paper (Lemma 3).
package imm

import (
	"context"
	"fmt"
	"math"
)

// Sketcher abstracts a growable pool of random sketches with greedy
// max-coverage selection over the current pool.
type Sketcher interface {
	// Extend grows the pool to at least target sketches.
	Extend(target int)
	// Size returns the current number of sketches, including "empty"
	// sketches that no item can cover (their count matters: estimates
	// are normalized by the total pool size).
	Size() int
	// SelectAndCover greedily chooses up to k items and returns them with
	// the number of covered sketches.
	SelectAndCover(k int) (items []int32, covered int)
}

// CtxSketcher is implemented by sketchers whose Extend can be canceled
// mid-pool (the production pools: prr, rrset). RunContext uses it to
// propagate cancellation into the sampling loops; plain Sketchers are
// still supported and are only checked between rounds.
type CtxSketcher interface {
	Sketcher
	// ExtendContext grows the pool to at least target sketches, aborting
	// with ctx.Err() — merging nothing — if ctx is canceled first.
	ExtendContext(ctx context.Context, target int) error
}

// Params configures a run.
type Params struct {
	N          int     // number of nodes in the graph (universe for the union bound)
	K          int     // cardinality constraint
	Epsilon    float64 // approximation slack ε (default 0.5)
	Ell        float64 // failure exponent ℓ: success with probability 1-1/N^ℓ (default 1)
	MaxSamples int     // optional hard cap on pool size (0 = theory-driven only)
}

func (p Params) withDefaults() Params {
	if p.Epsilon <= 0 {
		p.Epsilon = 0.5
	}
	if p.Ell <= 0 {
		p.Ell = 1
	}
	return p
}

func (p Params) validate() error {
	if p.N < 2 {
		return fmt.Errorf("imm: need N >= 2, got %d", p.N)
	}
	if p.K < 1 || p.K > p.N {
		return fmt.Errorf("imm: need 1 <= K <= N, got K=%d N=%d", p.K, p.N)
	}
	if p.Epsilon >= 1 {
		return fmt.Errorf("imm: need Epsilon < 1, got %v", p.Epsilon)
	}
	return nil
}

// Stats reports what the sampling phase did.
type Stats struct {
	Samples  int     // final pool size
	LB       float64 // lower bound on OPT established by the doubling phase
	Theta    float64 // theoretical sample target λ*/LB
	Rounds   int     // doubling rounds executed
	CapHit   bool    // true if MaxSamples cut sampling short
	Coverage int     // covered sketches in the last doubling-round selection
}

// lnChoose returns ln(n choose k) via log-gamma.
func lnChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	ln1, _ := math.Lgamma(float64(n + 1))
	ln2, _ := math.Lgamma(float64(k + 1))
	ln3, _ := math.Lgamma(float64(n - k + 1))
	return ln1 - ln2 - ln3
}

// Run executes the IMM sampling phase: it grows the sketch pool until
// the pool size reaches θ = λ*/LB, where LB is a high-confidence lower
// bound on OPT found by geometric search. After Run returns, the caller
// performs the final selection on the same pool.
func Run(s Sketcher, p Params) (Stats, error) {
	return RunContext(context.Background(), s, p)
}

// RunContext is Run with cooperative cancellation: ctx is checked
// before every doubling round and threaded into the pool's Extend when
// the sketcher implements CtxSketcher, so a canceled caller stops
// within a few sketches rather than after the full sampling phase. On
// cancellation the pool may hold sketches from completed rounds but
// never a partial Extend.
func RunContext(ctx context.Context, s Sketcher, p Params) (Stats, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return Stats{}, err
	}
	extend := func(target int) error {
		if cs, ok := s.(CtxSketcher); ok {
			return cs.ExtendContext(ctx, target)
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		s.Extend(target)
		return nil
	}
	n := float64(p.N)
	lnN := math.Log(n)
	lnCnk := lnChoose(p.N, p.K)

	epsPrime := math.Sqrt2 * p.Epsilon
	lnLog2N := math.Log(math.Max(math.Log2(n), 2))
	lambdaPrime := (2 + 2*epsPrime/3) * (lnCnk + p.Ell*lnN + lnLog2N) * n / (epsPrime * epsPrime)

	alpha := math.Sqrt(p.Ell*lnN + math.Ln2)
	beta := math.Sqrt((1 - 1/math.E) * (lnCnk + p.Ell*lnN + math.Ln2))
	lambdaStar := 2 * n * sq((1-1/math.E)*alpha+beta) / (p.Epsilon * p.Epsilon)

	st := Stats{LB: 1}
	maxRounds := int(math.Ceil(math.Log2(n))) - 1
	if maxRounds < 1 {
		maxRounds = 1
	}
	for i := 1; i <= maxRounds; i++ {
		st.Rounds = i
		x := n / math.Pow(2, float64(i))
		thetaI := int(math.Ceil(lambdaPrime / x))
		if p.MaxSamples > 0 && thetaI > p.MaxSamples {
			thetaI = p.MaxSamples
			st.CapHit = true
		}
		if err := extend(thetaI); err != nil {
			return Stats{}, err
		}
		_, covered := s.SelectAndCover(p.K)
		st.Coverage = covered
		est := n * float64(covered) / float64(s.Size())
		if est >= (1+epsPrime)*x {
			st.LB = est / (1 + epsPrime)
			break
		}
		if st.CapHit {
			break
		}
	}

	st.Theta = lambdaStar / st.LB
	target := int(math.Ceil(st.Theta))
	if p.MaxSamples > 0 && target > p.MaxSamples {
		target = p.MaxSamples
		st.CapHit = true
	}
	if err := extend(target); err != nil {
		return Stats{}, err
	}
	st.Samples = s.Size()
	return st, nil
}

func sq(x float64) float64 { return x * x }

// EllForSandwich adjusts ℓ so that three union-bounded events (sampling,
// μ-selection, sandwich comparison) jointly succeed with probability
// 1 - 1/n^ell, per Algorithm 2 line 1 of the paper:
// ℓ' = ℓ * (1 + ln 3 / ln n).
func EllForSandwich(ell float64, n int) float64 {
	if n < 2 {
		return ell
	}
	return ell * (1 + math.Log(3)/math.Log(float64(n)))
}
