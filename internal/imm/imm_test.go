package imm

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/rng"
)

func TestLnChoose(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{
		{5, 2, math.Log(10)},
		{10, 0, 0},
		{10, 10, 0},
		{10, 1, math.Log(10)},
		{52, 5, math.Log(2598960)},
	}
	for _, c := range cases {
		if got := lnChoose(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("lnChoose(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
	if got := lnChoose(5, 7); !math.IsInf(got, -1) {
		t.Errorf("lnChoose(5,7) = %v, want -inf", got)
	}
}

func TestParamsValidation(t *testing.T) {
	s := newToySketcher(100, 0.5, 1)
	bad := []Params{
		{N: 1, K: 1},
		{N: 10, K: 0},
		{N: 10, K: 11},
		{N: 10, K: 1, Epsilon: 1.5},
	}
	for _, p := range bad {
		if _, err := Run(s, p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

// toySketcher models a universe where item 0 covers each sketch with
// probability pBest and every other item with probability pRest. The
// "true OPT" for k=1 is n*pBest.
type toySketcher struct {
	n     int
	pBest float64
	pRest float64
	r     *rng.Source
	// sketch i covered by best item? by rest item i%n?
	best []bool
	rest []bool
}

func newToySketcher(n int, pBest, pRest float64) *toySketcher {
	return &toySketcher{n: n, pBest: pBest, pRest: pRest, r: rng.New(9)}
}

func (s *toySketcher) Extend(target int) {
	for len(s.best) < target {
		s.best = append(s.best, s.r.Bernoulli(s.pBest))
		s.rest = append(s.rest, s.r.Bernoulli(s.pRest))
	}
}
func (s *toySketcher) Size() int { return len(s.best) }
func (s *toySketcher) SelectAndCover(k int) ([]int32, int) {
	// Item 0 covers best sketches; item 1 covers rest sketches.
	nb, nr := 0, 0
	for i := range s.best {
		if s.best[i] {
			nb++
		}
		if s.rest[i] {
			nr++
		}
	}
	if k == 1 {
		if nb >= nr {
			return []int32{0}, nb
		}
		return []int32{1}, nr
	}
	union := 0
	for i := range s.best {
		if s.best[i] || s.rest[i] {
			union++
		}
	}
	return []int32{0, 1}, union
}

func TestRunEstablishesLB(t *testing.T) {
	s := newToySketcher(1000, 0.2, 0.01)
	st, err := Run(s, Params{N: 1000, K: 1, Epsilon: 0.3, Ell: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples == 0 {
		t.Fatal("no samples generated")
	}
	// True OPT = 1000*0.2 = 200. LB must be below OPT (it is a lower
	// bound) and the doubling search should get within a factor ~4.
	if st.LB > 220 {
		t.Fatalf("LB %v exceeds OPT", st.LB)
	}
	if st.LB < 40 {
		t.Fatalf("LB %v too loose", st.LB)
	}
	if st.Samples < int(st.Theta) {
		t.Fatalf("samples %d below theta %v", st.Samples, st.Theta)
	}
}

func TestRunHonorsMaxSamples(t *testing.T) {
	s := newToySketcher(100000, 0.0001, 0.00005)
	st, err := Run(s, Params{N: 100000, K: 1, Epsilon: 0.5, Ell: 1, MaxSamples: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if st.Samples > 5000 {
		t.Fatalf("samples %d exceed cap", st.Samples)
	}
	if !st.CapHit {
		t.Fatal("CapHit not reported")
	}
}

func TestEllForSandwich(t *testing.T) {
	got := EllForSandwich(1, 1000)
	want := 1 * (1 + math.Log(3)/math.Log(1000))
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("EllForSandwich = %v, want %v", got, want)
	}
	if EllForSandwich(2, 1) != 2 {
		t.Fatal("degenerate n should return ell unchanged")
	}
}

func TestDefaults(t *testing.T) {
	p := Params{N: 100, K: 2}.withDefaults()
	if p.Epsilon != 0.5 || p.Ell != 1 {
		t.Fatalf("defaults %+v", p)
	}
}
