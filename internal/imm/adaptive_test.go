package imm

import (
	"testing"

	"github.com/kboost/kboost/internal/rng"
)

// validatableToy wraps toySketcher with coverage evaluation.
type validatableToy struct {
	*toySketcher
}

func (s validatableToy) CoverageOf(items []int32) int {
	hasBest, hasRest := false, false
	for _, v := range items {
		if v == 0 {
			hasBest = true
		}
		if v == 1 {
			hasRest = true
		}
	}
	count := 0
	for i := range s.best {
		if (hasBest && s.best[i]) || (hasRest && s.rest[i]) {
			count++
		}
	}
	return count
}

func newValidatableToy(n int, pBest, pRest float64, seed uint64) validatableToy {
	t := newToySketcher(n, pBest, pRest)
	t.r = rng.New(seed)
	return validatableToy{t}
}

func TestRunAdaptiveConverges(t *testing.T) {
	factory := func(seed uint64) (ValidatableSketcher, error) {
		return newValidatableToy(1000, 0.2, 0.01, seed), nil
	}
	trained, st, err := RunAdaptive(factory, Params{N: 1000, K: 1, Epsilon: 0.3, Ell: 1})
	if err != nil {
		t.Fatal(err)
	}
	if trained == nil || st.Samples == 0 {
		t.Fatal("no training pool")
	}
	// True OPT = 200; the validated estimate should be in the right
	// ballpark.
	if st.LB < 120 || st.LB > 280 {
		t.Fatalf("validated estimate %v far from OPT 200", st.LB)
	}
	items, _ := trained.SelectAndCover(1)
	if len(items) != 1 || items[0] != 0 {
		t.Fatalf("adaptive selection %v, want [0]", items)
	}
}

func TestRunAdaptiveHonorsCap(t *testing.T) {
	factory := func(seed uint64) (ValidatableSketcher, error) {
		return newValidatableToy(100000, 0.00001, 0.000005, seed), nil
	}
	_, st, err := RunAdaptive(factory, Params{N: 100000, K: 1, Epsilon: 0.5, Ell: 1, MaxSamples: 3000})
	if err != nil {
		t.Fatal(err)
	}
	if !st.CapHit || st.Samples > 3000 {
		t.Fatalf("cap not honored: %+v", st)
	}
}

func TestRunAdaptiveChecked(t *testing.T) {
	if _, _, err := RunAdaptiveChecked(nil, Params{N: 10, K: 1}); err == nil {
		t.Fatal("nil factory accepted")
	}
}

func TestRunAdaptiveValidatesParams(t *testing.T) {
	factory := func(seed uint64) (ValidatableSketcher, error) {
		return newValidatableToy(10, 0.5, 0.1, seed), nil
	}
	if _, _, err := RunAdaptive(factory, Params{N: 10, K: 0}); err == nil {
		t.Fatal("K=0 accepted")
	}
}
