package imm

import (
	"fmt"
	"math"
)

// RunAdaptive is a stop-and-stare style alternative to Run, after the
// SSA/D-SSA line of work the paper cites as interchangeable with IMM
// ("other similar frameworks based on RR-sets (e.g., SSA/D-SSA) could
// also be applied", Section IV-A).
//
// Instead of deriving a sample count from a lower bound on OPT, it
// doubles a training pool, greedily selects on it, and *stares*:
// an independent validation pool re-estimates the selected set's value.
// Sampling stops once (a) the validation pool covers at least Λ
// sketches of the selected set (variance control) and (b) training and
// validation estimates agree within ε/2 (overfitting control).
//
// This implementation keeps SSA's structure but not its exact constant
// bookkeeping; use Run when the formal (1−1/e−ε) certificate matters.
// In practice it needs considerably fewer sketches on easy instances —
// see BenchmarkAblationSampler.
func RunAdaptive(newSketcher func(seed uint64) (ValidatableSketcher, error), p Params) (ValidatableSketcher, Stats, error) {
	p = p.withDefaults()
	if err := p.validate(); err != nil {
		return nil, Stats{}, err
	}
	n := float64(p.N)
	lnN := math.Log(n)
	lnCnk := lnChoose(p.N, p.K)

	// Λ: the covered-count threshold that bounds the relative error of a
	// coverage estimate at ε/2 with the usual union bound.
	lambda := (8 + 2*p.Epsilon) * (lnCnk + p.Ell*lnN + math.Ln2) / (p.Epsilon * p.Epsilon)
	if lambda < 32 {
		lambda = 32
	}

	train, err := newSketcher(101)
	if err != nil {
		return nil, Stats{}, err
	}
	valid, err := newSketcher(202)
	if err != nil {
		return nil, Stats{}, err
	}

	st := Stats{Theta: lambda}
	target := 512
	for {
		st.Rounds++
		if p.MaxSamples > 0 && target > p.MaxSamples {
			target = p.MaxSamples
			st.CapHit = true
		}
		train.Extend(target)
		valid.Extend(target)

		items, covTrain := train.SelectAndCover(p.K)
		covValid := valid.CoverageOf(items)
		st.Coverage = covValid

		estTrain := n * float64(covTrain) / float64(train.Size())
		estValid := n * float64(covValid) / float64(valid.Size())
		st.LB = estValid
		st.Samples = train.Size()

		enough := float64(covValid) >= lambda
		agree := estValid > 0 && math.Abs(estTrain-estValid) <= (p.Epsilon/2)*estValid
		if (enough && agree) || st.CapHit {
			return train, st, nil
		}
		target *= 2
	}
}

// ValidatableSketcher extends Sketcher with coverage evaluation of an
// externally chosen item set, needed for the stare (validation) step.
type ValidatableSketcher interface {
	Sketcher
	// CoverageOf returns how many of this pool's sketches the items
	// cover.
	CoverageOf(items []int32) int
}

// ensure the error type for missing factories is informative.
var errNilFactory = fmt.Errorf("imm: nil sketcher factory")

// RunAdaptiveChecked guards against nil factories (convenience for
// callers plumbing optional configuration).
func RunAdaptiveChecked(newSketcher func(seed uint64) (ValidatableSketcher, error), p Params) (ValidatableSketcher, Stats, error) {
	if newSketcher == nil {
		return nil, Stats{}, errNilFactory
	}
	return RunAdaptive(newSketcher, p)
}
