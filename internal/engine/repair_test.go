package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/kboost/kboost/internal/graph"
)

// testDelta builds a small valid delta against g: remove one existing
// edge, reweight another, and add one edge that is not present. All
// three stay inside a band of nodes far from the test seed set
// {0, 20, 40} and from the seeds' out-neighbors: seeds are active in
// every LT profile and their out-neighbors sit in almost every
// profile's frontier, so dirtying either would push the touched
// fraction past the default fallback threshold in tests that want a
// repair, not a drop.
func testDelta(t *testing.T, g *graph.Graph) *graph.EdgeDelta {
	t.Helper()
	safe := map[int32]bool{}
	for _, v := range []int32{7, 8, 9, 10, 11, 13, 14, 15, 16, 17, 18, 19} {
		safe[v] = true
	}
	edges := g.Edges()
	present := make(map[[2]int32]bool, len(edges))
	for _, e := range edges {
		present[[2]int32{e.From, e.To}] = true
	}
	d := &graph.EdgeDelta{}
	for _, e := range edges {
		if !safe[e.From] || !safe[e.To] {
			continue
		}
		if len(d.Remove) == 0 {
			d.Remove = []graph.EdgeKey{{From: e.From, To: e.To}}
			continue
		}
		e.P, e.PBoost = 0.25, 0.45
		d.Reweight = []graph.Edge{e}
		break
	}
	if len(d.Remove) == 0 || len(d.Reweight) == 0 {
		t.Fatal("no band-internal edges left for a delta")
	}
	for u := range safe {
		for v := range safe {
			if u != v && !present[[2]int32{u, v}] {
				d.Add = []graph.Edge{{From: u, To: v, P: 0.2, PBoost: 0.4}}
				return d
			}
		}
	}
	t.Fatal("no absent edge to add")
	return nil
}

// patchedTestGraph returns testGraph with testDelta applied — the
// graph a fresh engine must be given to reproduce a patched engine.
func patchedTestGraph(t *testing.T) (*graph.Graph, *graph.EdgeDelta) {
	t.Helper()
	g := testGraph(t)
	d := testDelta(t, g)
	g2, _, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	return g2, d
}

// TestRepairGraphMigratesPools: a patch must bump the version, keep the
// cached PRR and LT pools (repaired, re-keyed), and leave follow-up
// queries warm at the new version. Fallback is disabled: the migration
// mechanics are under test, not the cost-weighted threshold (the test
// graph is dense enough that the default threshold would drop the PRR
// pool — TestRepairGraphDenseCostFallback pins that behavior).
func TestRepairGraphMigratesPools(t *testing.T) {
	e := newTestEngine(t, Options{RepairFallbackFraction: 1})
	req := testRequest()
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	ltReq := req
	ltReq.Mode = "lt"
	ltReq.Sims = 500
	if _, err := e.Boost(ltReq); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Pools != 2 {
		t.Fatalf("expected 2 cached pools before patch, got %d", st.Pools)
	}

	d := testDelta(t, testGraph(t))
	res, err := e.RepairGraph("g", d)
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != 2 {
		t.Fatalf("patched version %d, want 2", res.Version)
	}
	if res.Added != 1 || res.Removed != 1 || res.Reweighted != 1 {
		t.Fatalf("delta shape %d/%d/%d, want 1/1/1", res.Added, res.Removed, res.Reweighted)
	}
	if res.PoolsRepaired != 2 || res.PoolsDropped != 0 {
		t.Fatalf("repaired %d dropped %d, want 2/0", res.PoolsRepaired, res.PoolsDropped)
	}
	if res.RepairedSketches == 0 || res.RepairedProfiles == 0 {
		t.Fatalf("expected nonzero resampling, got %d sketches / %d profiles",
			res.RepairedSketches, res.RepairedProfiles)
	}

	st := e.Stats()
	if st.GraphPatches != 1 || st.RepairSkippedRebuilds != 2 || st.RepairFallbackRebuilds != 0 {
		t.Fatalf("patch counters: patches=%d skipped=%d fallback=%d, want 1/2/0",
			st.GraphPatches, st.RepairSkippedRebuilds, st.RepairFallbackRebuilds)
	}
	if st.RepairedSketches != int64(res.RepairedSketches) || st.RepairedProfiles != int64(res.RepairedProfiles) {
		t.Fatalf("stats resample counters %d/%d do not match result %d/%d",
			st.RepairedSketches, st.RepairedProfiles, res.RepairedSketches, res.RepairedProfiles)
	}
	if st.Pools != 2 {
		t.Fatalf("expected the 2 pools to survive the patch, got %d", st.Pools)
	}
	if st.InvalidatedPools != 0 {
		t.Fatalf("a clean patch invalidated %d pools", st.InvalidatedPools)
	}
	if st.GraphVersions["g"] != 2 {
		t.Fatalf("registered version %d, want 2", st.GraphVersions["g"])
	}
	if st.PoolBytes <= 0 {
		t.Fatalf("pool bytes %d after migration", st.PoolBytes)
	}

	// The migrated pools must serve the new version warm: no rebuild,
	// no fresh sampling beyond what a sizing top-up asks for.
	out, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit || out.Rebuilt {
		t.Fatalf("post-patch PRR query: CacheHit=%v Rebuilt=%v, want warm", out.CacheHit, out.Rebuilt)
	}
	if out.GraphVersion != 2 {
		t.Fatalf("post-patch query served version %d, want 2", out.GraphVersion)
	}
	ltOut, err := e.Boost(ltReq)
	if err != nil {
		t.Fatal(err)
	}
	if !ltOut.CacheHit || ltOut.NewSamples != 0 {
		t.Fatalf("post-patch LT query: CacheHit=%v NewSamples=%d, want warm/0", ltOut.CacheHit, ltOut.NewSamples)
	}
	if after := e.Stats(); after.PoolMisses != 2 {
		t.Fatalf("post-patch queries caused %d misses, want the original 2", after.PoolMisses)
	}
}

// TestRepairGraphLTEquivalence is the engine-level equivalence gate for
// the LT family: boosting and estimating on a patched engine's
// migrated pool must be bit-identical to a fresh engine handed the
// post-delta graph, because the repaired pool is bit-identical to the
// cold pool at the same (seed, sims).
func TestRepairGraphLTEquivalence(t *testing.T) {
	req := testRequest()
	req.Mode = "lt"
	req.Sims = 600

	patched := newTestEngine(t, Options{})
	if _, err := patched.Boost(req); err != nil {
		t.Fatal(err)
	}
	g2, d := patchedTestGraph(t)
	if _, err := patched.RepairGraph("g", d); err != nil {
		t.Fatal(err)
	}

	fresh := New(Options{})
	if err := fresh.RegisterGraph("g", g2); err != nil {
		t.Fatal(err)
	}

	got, err := patched.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(got.BoostSet) != fmt.Sprint(want.BoostSet) ||
		got.EstBoost != want.EstBoost || got.Samples != want.Samples {
		t.Fatalf("migrated LT pool diverges from cold engine:\n got %v Δ=%v n=%d\nwant %v Δ=%v n=%d",
			got.BoostSet, got.EstBoost, got.Samples, want.BoostSet, want.EstBoost, want.Samples)
	}

	est := EstimateRequest{GraphID: "g", Seeds: req.Seeds, Boost: got.BoostSet, Mode: "lt"}
	gotEst, err := patched.Estimate(est)
	if err != nil {
		t.Fatal(err)
	}
	wantEst, err := fresh.Estimate(est)
	if err != nil {
		t.Fatal(err)
	}
	if gotEst.Spread != wantEst.Spread || gotEst.Boost != wantEst.Boost {
		t.Fatalf("migrated LT estimates diverge: got %+v want %+v", gotEst, wantEst)
	}
}

// TestRepairGraphPRREquivalence: same property for the PRR family. The
// sample cap pins both pools to the same total, where pool-level repair
// equivalence guarantees identical contents, hence identical selections
// and estimates.
func TestRepairGraphPRREquivalence(t *testing.T) {
	req := testRequest()
	req.MaxSamples = 400

	patched := newTestEngine(t, Options{})
	first, err := patched.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Samples != req.MaxSamples {
		t.Skipf("sizing stopped at %d below the %d cap; cap-pinned equivalence does not apply", first.Samples, req.MaxSamples)
	}
	g2, d := patchedTestGraph(t)
	if _, err := patched.RepairGraph("g", d); err != nil {
		t.Fatal(err)
	}

	fresh := New(Options{})
	if err := fresh.RegisterGraph("g", g2); err != nil {
		t.Fatal(err)
	}

	got, err := patched.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if want.Samples != req.MaxSamples {
		t.Skipf("cold sizing stopped at %d below the %d cap", want.Samples, req.MaxSamples)
	}
	if got.Samples != want.Samples {
		t.Fatalf("sample totals diverge: %d vs %d", got.Samples, want.Samples)
	}
	if fmt.Sprint(got.BoostSet) != fmt.Sprint(want.BoostSet) || got.EstBoost != want.EstBoost {
		t.Fatalf("migrated PRR pool diverges from cold engine:\n got %v Δ=%v\nwant %v Δ=%v",
			got.BoostSet, got.EstBoost, want.BoostSet, want.EstBoost)
	}
}

// TestRepairGraphDenseCostFallback: under the *default* threshold, the
// dense test graph's PRR pool must fall back to a cold rebuild — the
// delta touches sketches carrying most of the pool's expansion mass
// even though the touched count is modest, which is exactly the case
// the cost-weighted decision exists for (a count-weighted threshold
// repaired here at ~rebuild speed). The sparser LT profile pool stays
// under the threshold and repairs in place.
func TestRepairGraphDenseCostFallback(t *testing.T) {
	e := newTestEngine(t, Options{}) // default RepairFallbackFraction
	req := testRequest()
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	ltReq := req
	ltReq.Mode = "lt"
	ltReq.Sims = 500
	if _, err := e.Boost(ltReq); err != nil {
		t.Fatal(err)
	}
	g2, d := patchedTestGraph(t)
	res, err := e.RepairGraph("g", d)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolsRepaired != 1 || res.PoolsDropped != 1 {
		t.Fatalf("repaired %d dropped %d, want 1 (lt) / 1 (prr)", res.PoolsRepaired, res.PoolsDropped)
	}
	if res.RepairedSketches != 0 || res.RepairedProfiles == 0 {
		t.Fatalf("resampled %d sketches / %d profiles, want 0 / >0",
			res.RepairedSketches, res.RepairedProfiles)
	}
	st := e.Stats()
	if st.RepairFallbackRebuilds != 1 || st.RepairSkippedRebuilds != 1 {
		t.Fatalf("fallback=%d skipped=%d, want 1/1",
			st.RepairFallbackRebuilds, st.RepairSkippedRebuilds)
	}
	// The dropped pool rebuilds cold at the new version and answers
	// bit-identically to a fresh engine on the patched graph.
	out, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	e2 := New(Options{})
	if err := e2.RegisterGraph("g", g2); err != nil {
		t.Fatal(err)
	}
	want, err := e2.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(out.BoostSet) != fmt.Sprint(want.BoostSet) || out.EstBoost != want.EstBoost {
		t.Fatalf("post-fallback rebuild diverges: got %v Δ=%v, want %v Δ=%v",
			out.BoostSet, out.EstBoost, want.BoostSet, want.EstBoost)
	}
}

// TestRepairGraphFallback: with a tiny fallback threshold every touched
// pool must be dropped, not repaired, and the next query rebuilds cold
// at the new version.
func TestRepairGraphFallback(t *testing.T) {
	e := newTestEngine(t, Options{RepairFallbackFraction: 1e-9})
	req := testRequest()
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	d := testDelta(t, testGraph(t))
	res, err := e.RepairGraph("g", d)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolsRepaired != 0 || res.PoolsDropped != 1 {
		t.Fatalf("repaired %d dropped %d, want 0/1", res.PoolsRepaired, res.PoolsDropped)
	}
	st := e.Stats()
	if st.RepairFallbackRebuilds != 1 || st.Pools != 0 {
		t.Fatalf("fallback=%d pools=%d, want 1/0", st.RepairFallbackRebuilds, st.Pools)
	}
	if st.InvalidatedPools != 1 || st.RetiredPoolBytes <= 0 {
		t.Fatalf("dropped pool not accounted: invalidated=%d retired=%d",
			st.InvalidatedPools, st.RetiredPoolBytes)
	}
	if st.PoolBytes != 0 {
		t.Fatalf("pool bytes %d after dropping the only pool", st.PoolBytes)
	}
	out, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.CacheHit || out.GraphVersion != 2 {
		t.Fatalf("post-fallback query: CacheHit=%v version=%d, want cold rebuild at 2",
			out.CacheHit, out.GraphVersion)
	}
}

// TestRepairGraphErrors: unknown ids, nil deltas and invalid deltas are
// rejected without touching the registry or the cache.
func TestRepairGraphErrors(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RepairGraph("nope", &graph.EdgeDelta{}); !errors.Is(err, ErrUnknownGraph) {
		t.Fatalf("unknown id: %v", err)
	}
	if _, err := e.RepairGraph("g", nil); err == nil {
		t.Fatal("nil delta accepted")
	}
	// Removing a non-existent edge must fail validation.
	bad := &graph.EdgeDelta{Remove: []graph.EdgeKey{{From: 0, To: 0}}}
	if _, err := e.RepairGraph("g", bad); err == nil {
		t.Fatal("invalid delta accepted")
	}
	st := e.Stats()
	if st.GraphPatches != 0 || st.GraphVersions["g"] != 1 || st.Pools != 1 {
		t.Fatalf("failed patches mutated state: %+v", st)
	}
}

// TestRepairGraphConcurrentQueries races warm queries against repeated
// patches: every query must succeed and observe a coherent snapshot.
// Run under -race this doubles as the repair path's race gate.
func TestRepairGraphConcurrentQueries(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	ltReq := req
	ltReq.Mode = "lt"
	ltReq.Sims = 300
	if _, err := e.Boost(ltReq); err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := req
			if w%2 == 1 {
				r = ltReq
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := e.Boost(r); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}

	g := testGraph(t)
	for i := 0; i < 4; i++ {
		d := testDelta(t, g)
		res, err := e.RepairGraph("g", d)
		if err != nil {
			t.Errorf("patch %d: %v", i, err)
			break
		}
		var eff *graph.DeltaEffect
		g, eff, err = g.ApplyDelta(d)
		if err != nil || eff == nil {
			t.Errorf("shadow apply %d: %v", i, err)
			break
		}
		if res.Version != uint64(i+2) {
			t.Errorf("patch %d installed version %d", i, res.Version)
			break
		}
	}
	close(stop)
	wg.Wait()

	out, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if out.GraphVersion != e.Stats().GraphVersions["g"] {
		t.Fatalf("final query version %d, registry %d", out.GraphVersion, e.Stats().GraphVersions["g"])
	}
}
