package engine

import (
	"fmt"
	"testing"

	"github.com/kboost/kboost/internal/model"
)

func tierRequest(mode string) EstimateRequest {
	return EstimateRequest{
		GraphID: "g",
		Seeds:   []int32{0, 20, 40},
		Boost:   []int32{5, 15},
		Mode:    mode,
		Seed:    11,
		Workers: 2,
	}
}

// A latency-capped estimate on a cold engine must be served closed-form
// without building (or even sizing) any pool — zero cached pools, zero
// pool bytes — for both diffusion models.
func TestEstimateTier0ColdNoPool(t *testing.T) {
	for _, mode := range []string{"ic", "lt"} {
		e := newTestEngine(t, Options{})
		req := tierRequest(mode)
		req.MaxLatencyMS = 50
		res, err := e.Estimate(req)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if res.Tier != 0 {
			t.Fatalf("mode %s: tier %d, want 0", mode, res.Tier)
		}
		if res.CI != nil {
			t.Fatalf("mode %s: tier 0 reported a CI", mode)
		}
		if res.Spread < float64(len(req.Seeds)) {
			t.Fatalf("mode %s: spread %v below seed count", mode, res.Spread)
		}
		if res.Boost < 0 {
			t.Fatalf("mode %s: negative boost %v", mode, res.Boost)
		}
		st := e.Stats()
		if st.Pools != 0 || st.PoolBytes != 0 {
			t.Fatalf("mode %s: tier 0 built pool state: %d pools, %d bytes", mode, st.Pools, st.PoolBytes)
		}
		if st.EstimateTier0 != 1 || st.EstimateQueries != 1 {
			t.Fatalf("mode %s: counters %+v", mode, st)
		}
	}
}

// A request with tiering knobs that lands on tier 2 must answer
// bit-identically to the knobless path — both at calibration time and
// on the calibrated tier-2 route afterwards.
func TestEstimateTier2BitIdentical(t *testing.T) {
	for _, mode := range []string{"ic", "lt"} {
		e := newTestEngine(t, Options{})
		plainReq := tierRequest(mode)
		plain, err := e.Estimate(plainReq)
		if err != nil {
			t.Fatalf("mode %s plain: %v", mode, err)
		}
		if plain.Tier != 2 {
			t.Fatalf("mode %s: knobless tier %d, want 2", mode, plain.Tier)
		}

		// First knobbed request: calibration pass, serves tier 2.
		req := plainReq
		req.MaxError = 1e-12
		calRes, err := e.Estimate(req)
		if err != nil {
			t.Fatalf("mode %s calibration: %v", mode, err)
		}
		// Calibrated repeat: still tier 2 (the target is unattainably
		// tight for the cheap tiers).
		warm, err := e.Estimate(req)
		if err != nil {
			t.Fatalf("mode %s warm: %v", mode, err)
		}
		for name, got := range map[string]EstimateResult{"calibration": calRes, "warm": warm} {
			if got.Tier != 2 {
				t.Fatalf("mode %s %s: tier %d, want 2", mode, name, got.Tier)
			}
			if got.Spread != plain.Spread || got.Boost != plain.Boost {
				t.Fatalf("mode %s %s: (%v, %v) diverges from knobless (%v, %v)",
					mode, name, got.Spread, got.Boost, plain.Spread, plain.Boost)
			}
		}
		if st := e.Stats(); st.TierCalibrations != 1 {
			t.Fatalf("mode %s: %d calibrations, want 1", mode, st.TierCalibrations)
		}
	}
}

// Tightening max_error must never move the choice to a cheaper tier:
// tier(maxError) is non-increasing in the target as it shrinks.
func TestEstimateTierSelectionMonotone(t *testing.T) {
	for _, mode := range []string{"ic", "lt"} {
		e := newTestEngine(t, Options{})
		base := tierRequest(mode)
		base.MaxError = 0.5
		if _, err := e.Estimate(base); err != nil { // calibration pass
			t.Fatalf("mode %s: %v", mode, err)
		}
		prev := -1
		for target := 4.0; target > 1e-12; target /= 2 {
			req := base
			req.MaxError = target
			res, err := e.Estimate(req)
			if err != nil {
				t.Fatalf("mode %s maxError=%g: %v", mode, target, err)
			}
			if res.Tier < prev {
				t.Fatalf("mode %s: tightening to %g dropped tier %d -> %d", mode, target, prev, res.Tier)
			}
			prev = res.Tier
			switch res.Tier {
			case 1:
				if res.CI == nil || res.CI.Sims != tier1Sims || res.CI.Half <= 0 {
					t.Fatalf("mode %s: tier-1 CI %+v", mode, res.CI)
				}
			case 0, 2:
				if res.CI != nil {
					t.Fatalf("mode %s: tier %d reported a CI", mode, res.Tier)
				}
			}
		}
		if prev != 2 {
			t.Fatalf("mode %s: tightest target served tier %d, want 2", mode, prev)
		}
		// A loose target must be served closed-form once calibrated.
		req := base
		req.MaxError = 1e6
		res, err := e.Estimate(req)
		if err != nil {
			t.Fatalf("mode %s loose: %v", mode, err)
		}
		if res.Tier != 0 {
			t.Fatalf("mode %s: loose target served tier %d, want 0", mode, res.Tier)
		}
	}
}

// The latency cap is hard: even an unattainably tight error target is
// sacrificed when every sampled tier measured over the cap.
func TestEstimateTierLatencyCapWins(t *testing.T) {
	e := newTestEngine(t, Options{})
	base := tierRequest("ic")
	base.MaxError = 0.5
	if _, err := e.Estimate(base); err != nil {
		t.Fatal(err)
	}
	req := base
	req.MaxError = 1e-12
	req.MaxLatencyMS = 1e-9 // below any measurable tier latency
	res, err := e.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != 0 {
		t.Fatalf("latency cap ignored: served tier %d", res.Tier)
	}
}

// Tier 1 must be bit-identical across worker counts (the sampled
// estimators are index-seeded, so partitioning cannot change sums).
func TestEstimateTier1WorkerInvariance(t *testing.T) {
	for _, mode := range []string{"ic", "lt"} {
		e := newTestEngine(t, Options{})
		g, err := e.Graph("g")
		if err != nil {
			t.Fatal(err)
		}
		req := tierRequest(mode)
		spec, err := resolveSpec(mode, model.Params{}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var want EstimateResult
		for i, workers := range []int{1, 2, 3, 7} {
			req.Workers = workers
			got, err := e.estimateTier1(req, g, spec)
			if err != nil {
				t.Fatalf("mode %s workers=%d: %v", mode, workers, err)
			}
			if i == 0 {
				want = got
				continue
			}
			if got.Spread != want.Spread || got.Boost != want.Boost ||
				*got.CI != *want.CI {
				t.Fatalf("mode %s workers=%d: %+v diverges from workers=1 %+v",
					mode, workers, got, want)
			}
		}
	}
}

// Calibrations are keyed to the snapshot version: replacing the graph
// must force a fresh calibration pass instead of serving stale tiers.
func TestEstimateTierCalibrationInvalidation(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := tierRequest("ic")
	req.MaxError = 0.5
	if _, err := e.Estimate(req); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UploadGraph("g", testGraph(t)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Estimate(req); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.TierCalibrations != 2 {
		t.Fatalf("%d calibrations after graph replacement, want 2", st.TierCalibrations)
	}
}

// The tier-0 pre-filter: a prefiltered boost query must return a valid
// result, cache it separately from the exact one, and — with a
// shortlist covering every useful candidate — match the exact greedy.
func TestBoostPrefilter(t *testing.T) {
	for _, mode := range []string{"", "lt"} {
		e := newTestEngine(t, Options{})
		req := testRequest()
		if mode == "lt" {
			req.Mode = "lt"
			req.Sims = 500
		}
		exact, err := e.Boost(req)
		if err != nil {
			t.Fatalf("mode %q exact: %v", mode, err)
		}

		pre := req
		pre.Prefilter = 10
		got, err := e.Boost(pre)
		if err != nil {
			t.Fatalf("mode %q prefiltered: %v", mode, err)
		}
		if got.ResultCached {
			t.Fatalf("mode %q: prefiltered query hit the exact result cache", mode)
		}
		if len(got.BoostSet) == 0 || got.EstBoost <= 0 {
			t.Fatalf("mode %q: empty prefiltered result %+v", mode, got.Result)
		}
		seeds := map[int32]bool{}
		for _, s := range req.Seeds {
			seeds[s] = true
		}
		for _, v := range got.BoostSet {
			if seeds[v] {
				t.Fatalf("mode %q: prefiltered set contains seed %d", mode, v)
			}
		}
		// No ordering assertion against the exact run: both greedy paths
		// are heuristics over candidate shortlists (the LT default ranks
		// by in-weight, the prefilter by two-hop score), so either may
		// win. Sanity-bound the estimate instead.
		if got.EstBoost > 2*exact.EstBoost+10 {
			t.Fatalf("mode %q: prefiltered estimate %v implausible vs exact %v", mode, got.EstBoost, exact.EstBoost)
		}

		repeat, err := e.Boost(pre)
		if err != nil {
			t.Fatal(err)
		}
		if !repeat.ResultCached {
			t.Fatalf("mode %q: identical prefiltered repeat missed the result cache", mode)
		}
		if fmt.Sprint(repeat.BoostSet) != fmt.Sprint(got.BoostSet) {
			t.Fatalf("mode %q: cached prefiltered set diverges", mode)
		}
	}
}
