package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"github.com/kboost/kboost/internal/graph"
)

// newPatchServer starts an httptest server whose engine is also handed
// back, so tests can warm pools and read counters directly.
func newPatchServer(t *testing.T, opt ServerOptions) (*httptest.Server, *Engine) {
	t.Helper()
	if opt.AuthToken == "" {
		opt.AuthToken = testToken
	}
	// Fallback disabled: these tests exercise the patch/repair plumbing
	// end to end, and the small dense test graph would trip the
	// cost-weighted threshold at its default.
	e := New(Options{RepairFallbackFraction: 1})
	srv := httptest.NewServer(NewServer(e, opt))
	t.Cleanup(srv.Close)
	return srv, e
}

// deltaJSON renders d as the PATCH endpoint's JSON body.
func deltaJSON(t *testing.T, d *graph.EdgeDelta) []byte {
	t.Helper()
	j := edgeDeltaJSON{}
	for _, e := range d.Add {
		j.Add = append(j.Add, deltaEdgeJSON{From: e.From, To: e.To, P: e.P, PBoost: e.PBoost})
	}
	for _, k := range d.Remove {
		j.Remove = append(j.Remove, deltaKeyJSON{From: k.From, To: k.To})
	}
	for _, e := range d.Reweight {
		j.Reweight = append(j.Reweight, deltaEdgeJSON{From: e.From, To: e.To, P: e.P, PBoost: e.PBoost})
	}
	body, err := json.Marshal(j)
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// deltaBinary renders d in the KBD1 codec.
func deltaBinary(t *testing.T, d *graph.EdgeDelta) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := d.WriteEdgeDelta(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGraphPatchEndToEnd: upload, warm both pool families, patch via
// JSON, prove the pools survived and serve the new version warm, patch
// again via the binary codec, and check the persisted snapshot tracked
// the patches.
func TestGraphPatchEndToEnd(t *testing.T) {
	dir := t.TempDir()
	srv, e := newPatchServer(t, ServerOptions{SnapshotDir: dir})

	g := testGraph(t)
	resp, body := doGraphReq(t, "POST", srv.URL+"/v1/graphs/prod", testToken, graphText(t, g))
	if resp.StatusCode != 201 {
		t.Fatalf("upload: %d %v", resp.StatusCode, body)
	}
	req := testRequest()
	req.GraphID = "prod"
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	ltReq := req
	ltReq.Mode = "lt"
	ltReq.Sims = 400
	if _, err := e.Boost(ltReq); err != nil {
		t.Fatal(err)
	}

	d := testDelta(t, g)
	resp, body = doGraphReq(t, "PATCH", srv.URL+"/v1/graphs/prod/edges", testToken, deltaJSON(t, d))
	if resp.StatusCode != 200 {
		t.Fatalf("patch: %d %v", resp.StatusCode, body)
	}
	if body["version"] != float64(2) || body["pools_repaired"] != float64(2) {
		t.Fatalf("patch response: %v", body)
	}
	if body["added"] != float64(1) || body["removed"] != float64(1) || body["reweighted"] != float64(1) {
		t.Fatalf("patch delta shape: %v", body)
	}

	out, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !out.CacheHit || out.GraphVersion != 2 {
		t.Fatalf("post-patch boost: CacheHit=%v version=%d", out.CacheHit, out.GraphVersion)
	}
	st := e.Stats()
	if st.GraphPatches != 1 || st.RepairSkippedRebuilds != 2 {
		t.Fatalf("patch counters: %+v", st)
	}

	// Second patch through the binary codec.
	g2, _, err := g.ApplyDelta(d)
	if err != nil {
		t.Fatal(err)
	}
	d2 := testDelta(t, g2)
	resp, body = doGraphReq(t, "PATCH", srv.URL+"/v1/graphs/prod/edges", testToken, deltaBinary(t, d2))
	if resp.StatusCode != 200 {
		t.Fatalf("binary patch: %d %v", resp.StatusCode, body)
	}
	if body["version"] != float64(3) {
		t.Fatalf("binary patch response: %v", body)
	}
	g3, _, err := g2.ApplyDelta(d2)
	if err != nil {
		t.Fatal(err)
	}

	// The persisted snapshot must be the patched graph: a rebooted
	// engine loads it at the patched edge count.
	e2 := New(Options{})
	if _, err := e2.LoadSnapshotDir(dir); err != nil {
		t.Fatal(err)
	}
	info, err := e2.GraphInfo("prod")
	if err != nil {
		t.Fatal(err)
	}
	if info.Edges != g3.M() || info.Nodes != g3.N() {
		t.Fatalf("persisted snapshot has %d nodes / %d edges, want %d / %d",
			info.Nodes, info.Edges, g3.N(), g3.M())
	}
}

// TestGraphPatchAuthAndErrors covers the endpoint's rejection paths.
func TestGraphPatchAuthAndErrors(t *testing.T) {
	srv, e := newPatchServer(t, ServerOptions{})
	g := testGraph(t)
	if err := e.RegisterGraph("prod", g); err != nil {
		t.Fatal(err)
	}
	d := testDelta(t, g)
	ok := deltaJSON(t, d)
	url := srv.URL + "/v1/graphs/prod/edges"

	if resp, _ := doGraphReq(t, "PATCH", url, "", ok); resp.StatusCode != 401 {
		t.Fatalf("missing token: %d", resp.StatusCode)
	}
	if resp, _ := doGraphReq(t, "PATCH", url, "wrong", ok); resp.StatusCode != 401 {
		t.Fatalf("bad token: %d", resp.StatusCode)
	}
	if resp, _ := doGraphReq(t, "POST", url, testToken, ok); resp.StatusCode != 405 {
		t.Fatalf("wrong method: %d", resp.StatusCode)
	}
	if resp, _ := doGraphReq(t, "PATCH", srv.URL+"/v1/graphs/nope/edges", testToken, ok); resp.StatusCode != 404 {
		t.Fatalf("unknown graph: %d", resp.StatusCode)
	}
	if resp, _ := doGraphReq(t, "PATCH", srv.URL+"/v1/graphs/b~d/edges", testToken, ok); resp.StatusCode != 400 {
		t.Fatalf("invalid name: %d", resp.StatusCode)
	}
	if resp, _ := doGraphReq(t, "PATCH", url, testToken, []byte("{nope")); resp.StatusCode != 400 {
		t.Fatalf("bad JSON: %d", resp.StatusCode)
	}
	if resp, _ := doGraphReq(t, "PATCH", url, testToken, []byte(`{"frobnicate":1}`)); resp.StatusCode != 400 {
		t.Fatalf("unknown field: %d", resp.StatusCode)
	}
	bad := deltaJSON(t, &graph.EdgeDelta{Remove: []graph.EdgeKey{{From: 0, To: 0}}})
	if resp, _ := doGraphReq(t, "PATCH", url, testToken, bad); resp.StatusCode != 400 {
		t.Fatalf("invalid delta: %d", resp.StatusCode)
	}
	// A truncated binary delta must be a 400, not an install.
	trunc := deltaBinary(t, d)
	if resp, _ := doGraphReq(t, "PATCH", url, testToken, trunc[:len(trunc)-3]); resp.StatusCode != 400 {
		t.Fatalf("truncated binary delta accepted")
	}
	if v, _ := e.GraphVersion("prod"); v != 1 {
		t.Fatalf("failed patches bumped the version to %d", v)
	}

	// Disabled administration answers 403 before reading anything.
	srv2, e2 := newPatchServer(t, ServerOptions{AuthToken: ""})
	_ = e2
	if resp, _ := doGraphReq(t, "PATCH", srv2.URL+"/v1/graphs/prod/edges", "", ok); resp.StatusCode != 401 && resp.StatusCode != 403 {
		t.Fatalf("disabled admin: %d", resp.StatusCode)
	}
}

// TestGraphPatchStatsEndpoint: the five repair counters must surface in
// /v1/stats with their wire names.
func TestGraphPatchStatsEndpoint(t *testing.T) {
	srv, e := newPatchServer(t, ServerOptions{})
	g := testGraph(t)
	if err := e.RegisterGraph("prod", g); err != nil {
		t.Fatal(err)
	}
	req := testRequest()
	req.GraphID = "prod"
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	resp, body := doGraphReq(t, "PATCH", srv.URL+"/v1/graphs/prod/edges", testToken, deltaJSON(t, testDelta(t, g)))
	if resp.StatusCode != 200 {
		t.Fatalf("patch: %d %v", resp.StatusCode, body)
	}
	resp, stats := doGraphReq(t, "GET", srv.URL+"/v1/stats", "", nil)
	if resp.StatusCode != 200 {
		t.Fatalf("stats: %d", resp.StatusCode)
	}
	for key, want := range map[string]float64{
		"graph_patches":            1,
		"repair_skipped_rebuilds":  1,
		"repair_fallback_rebuilds": 0,
		"repaired_profiles":        0,
	} {
		got, present := stats[key]
		if !present {
			t.Fatalf("stats missing %q: %v", key, stats)
		}
		if got != want {
			t.Fatalf("stats[%s] = %v, want %v", key, got, want)
		}
	}
	if rs, present := stats["repaired_sketches"]; !present || rs == float64(0) {
		t.Fatalf("repaired_sketches = %v (present=%v)", rs, present)
	}
	if fmt.Sprint(stats["graph_versions"]) == "" {
		t.Fatal("graph_versions missing")
	}
}
