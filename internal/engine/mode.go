package engine

// This file is the engine's diffusion-mode registry. Every query names
// a mode; resolveSpec canonicalizes it ("" and "full" are "ic"),
// validates the per-model knobs, and returns a modeSpec the serving
// paths dispatch on. Two families exist behind one registry:
//
//   - the PRR family ("ic" and its lower-bound variant "lb"), whose
//     k-dependent pools and approximation guarantees keep their own
//     specialized path (Boost's PRR branch), and
//   - the pooled simulation family (every internal/model Model: "lt",
//     "sir", "kthresh"), served by the generic boostSim/estimateSim
//     path written once against model.Pool.
//
// The registry is also where the optional content-properties modifier
// lives: a request carrying Content computes against a derived graph
// (base probabilities mapped through the virality/credibility
// transform) whose cache keys embed the content tag — distinct content
// never shares sampled worlds or calibrations.

import (
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/model"
	"github.com/kboost/kboost/internal/prr"
)

// modeSpec is one resolved (mode, params, content) triple.
type modeSpec struct {
	// name is the canonical mode: "ic", "lb", or a model.Names() entry.
	name string
	// prrMode is the PRR materialization mode; meaningful iff sim is nil.
	prrMode prr.Mode
	// sim is the pooled simulation model serving this mode; nil for the
	// PRR family.
	sim model.Model
	// content is the normalized transmission modifier (identity when the
	// request carried none).
	content model.Content
}

// errUnknownMode is the one unknown-mode error every endpoint returns,
// so clients see the same catalog whether they typo a boost, estimate
// or seeds request.
func errUnknownMode(mode string) error {
	return fmt.Errorf("engine: unknown mode %q (want \"ic\", \"lb\", \"lt\", \"sir\" or \"kthresh\")", mode)
}

// resolveSpec canonicalizes and validates a request's mode, per-model
// params and content modifier. It owns the unified unknown-mode error;
// knob misuse (recovery outside "sir", threshold outside "kthresh",
// out-of-range content scalars) is rejected here, before any cache or
// counter is touched.
func resolveSpec(mode string, p model.Params, content *model.Content) (*modeSpec, error) {
	spec := &modeSpec{}
	c := model.Content{}
	if content != nil {
		c = *content
	}
	c, err := c.Normalize()
	if err != nil {
		return nil, err
	}
	spec.content = c
	switch mode {
	case "", "full", "ic":
		spec.name, spec.prrMode = "ic", prr.ModeFull
	case "lb":
		spec.name, spec.prrMode = "lb", prr.ModeLB
	default:
		m, err := model.New(mode, p)
		if err != nil {
			known := false
			for _, n := range model.Names() {
				known = known || n == mode
			}
			if !known {
				return nil, errUnknownMode(mode)
			}
			return nil, fmt.Errorf("engine: %w", err)
		}
		spec.name, spec.sim = mode, m
		return spec, nil
	}
	// The PRR modes take no model params; rejecting them here keeps the
	// same knob-misuse contract model.New enforces for the sim family.
	if p.Recovery != 0 {
		return nil, fmt.Errorf("engine: recovery only applies to mode \"sir\" (got mode %q)", spec.name)
	}
	if p.Threshold != 0 {
		return nil, fmt.Errorf("engine: threshold only applies to mode \"kthresh\" (got mode %q)", spec.name)
	}
	return spec, nil
}

// tag is the pool-cache mode tag: the historical "m0"/"m1" for the PRR
// materialization modes, the model's parameterized key for the sim
// family, plus the content fragment when the request carries a
// non-identity modifier — so "sir:r=0.25" and "sir:r=0.5" pools, or the
// same model under different content, can never be confused.
func (s *modeSpec) tag() string {
	t := "m0"
	if s.sim != nil {
		t = s.sim.Key()
	} else if s.prrMode == prr.ModeLB {
		t = "m1"
	}
	if ck := s.content.Key(); ck != "" {
		t += "|" + ck
	}
	return t
}

// calID keys tier calibrations: the same parameterization that keys
// pools, except the PRR modes share the "ic" calibration (both estimate
// under plain IC — "lb" only changes selection).
func (s *modeSpec) calID() string {
	t := "ic"
	if s.sim != nil {
		t = s.sim.Key()
	}
	if ck := s.content.Key(); ck != "" {
		t += "|" + ck
	}
	return t
}

// tier0Norms resolves the closed-form tier's normalizers for this mode
// on g: raw edge probabilities for IC, the model's choice for the sim
// family — which may decline tier 0 outright (ok false) when its
// transmission semantics are inexpressible as per-node normalized edge
// probabilities.
func (s *modeSpec) tier0Norms(g *graph.Graph) (norm []float64, ok bool) {
	if s.sim == nil {
		return nil, true
	}
	return s.sim.Tier0Norms(g)
}

// reqGraph resolves a request's effective graph lazily: the registered
// snapshot itself for identity content, the content-derived copy (built
// at most once per request) otherwise. Laziness matters on the warm
// path — a result-cache hit never pays the O(M) derive.
type reqGraph struct {
	base    *graph.Graph
	content model.Content

	once    sync.Once
	derived *graph.Graph
	err     error
}

func (r *reqGraph) get() (*graph.Graph, error) {
	r.once.Do(func() {
		r.derived, r.err = r.content.Apply(r.base)
	})
	return r.derived, r.err
}

// simCounters is one simulation mode's query/cache counter block —
// the per-mode breakdown behind Stats.SimModes. All fields are atomic:
// the warm path bumps them without any lock.
type simCounters struct {
	boostQueries    atomic.Int64
	estimateQueries atomic.Int64
	poolHits        atomic.Int64
	poolMisses      atomic.Int64
	poolExtensions  atomic.Int64
	resultHits      atomic.Int64
	profiles        atomic.Int64
}

// SimModeStats is the exported snapshot of one simulation mode's
// counters, keyed by canonical mode name in Stats.SimModes.
type SimModeStats struct {
	BoostQueries    int64 `json:"boost_queries"`
	EstimateQueries int64 `json:"estimate_queries"`
	PoolHits        int64 `json:"pool_hits"`
	PoolMisses      int64 `json:"pool_misses"`
	PoolExtensions  int64 `json:"pool_extensions"`
	ResultHits      int64 `json:"result_hits"`
	Profiles        int64 `json:"profiles"`
}

// simCtr returns (creating on first use) the counter block for a
// simulation mode.
func (e *Engine) simCtr(name string) *simCounters {
	e.simCtrMu.Lock()
	defer e.simCtrMu.Unlock()
	sc := e.simCtrs[name]
	if sc == nil {
		sc = &simCounters{}
		e.simCtrs[name] = sc
	}
	return sc
}
