package engine

// Chaos property suite: drives the request path through the faults
// registry (injected latency, errors, and panics at the pool-build
// shard boundary) and asserts the robustness invariants hold —
//
//   - a canceled or failed cold build never poisons the cache (no
//     entry is left that a later query could mistake for a warm pool),
//   - a retried identical request is bit-identical to a run that was
//     never interrupted,
//   - a canceled extension leaves the existing pool intact and the
//     retry converges to the same pool a cold build would produce,
//   - counters stay consistent (canceled requests are counted, pool
//     accounting returns to zero when the cache is empty).
//
// Everything runs under -race in CI (make chaos-short).

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"github.com/kboost/kboost/internal/faults"
	"github.com/kboost/kboost/internal/panicsafe"
)

// chaosWorkers are the worker counts the properties are checked at:
// serial, the test default, and an uneven split.
var chaosWorkers = []int{1, 2, 7}

func resetFaults(t *testing.T) {
	t.Helper()
	faults.Reset()
	t.Cleanup(faults.Reset)
}

// assertNoPools asserts the cache is empty with consistent accounting.
func assertNoPools(t *testing.T, e *Engine) {
	t.Helper()
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.pools) != 0 || e.lru.Len() != 0 || e.poolBytes != 0 {
		t.Fatalf("cache not empty: %d pools, lru %d, %d bytes", len(e.pools), e.lru.Len(), e.poolBytes)
	}
}

func poolCount(e *Engine) int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.pools)
}

// sameBoost compares the algorithmically meaningful parts of two boost
// results (the selection and its estimates, and the sample count —
// cache metadata and timings legitimately differ between runs).
func sameBoost(a, b *BoostResult) bool {
	return reflect.DeepEqual(a.BoostSet, b.BoostSet) &&
		a.EstBoost == b.EstBoost &&
		reflect.DeepEqual(a.BoostSetMu, b.BoostSetMu) &&
		a.EstMu == b.EstMu &&
		reflect.DeepEqual(a.BoostSetDelta, b.BoostSetDelta) &&
		a.EstDelta == b.EstDelta &&
		a.Samples == b.Samples
}

// TestChaosCancelColdBuild cancels a Boost mid-cold-build (an injected
// latency fault holds every shard worker at the build boundary so the
// cancellation reliably lands mid-flight) and asserts the request
// returns ctx.Err() promptly, the cache is left unpoisoned, and a
// retried identical request is bit-identical to an uninterrupted run.
func TestChaosCancelColdBuild(t *testing.T) {
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			resetFaults(t)
			req := testRequest()
			req.Workers = w

			ref := newTestEngine(t, Options{})
			want, err := ref.Boost(req)
			if err != nil {
				t.Fatal(err)
			}

			e := newTestEngine(t, Options{})
			faults.Enable(faults.PoolBuildShard, faults.Fault{Mode: "latency", Delay: 2 * time.Second})
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			start := time.Now()
			_, err = e.BoostContext(ctx, req)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled build returned %v, want context.Canceled", err)
			}
			if d := time.Since(start); d > 1500*time.Millisecond {
				t.Errorf("cancellation took %s, want prompt return well before the injected 2s stall", d)
			}
			assertNoPools(t, e)
			if got := e.Stats().RequestsCanceled; got != 1 {
				t.Errorf("RequestsCanceled = %d, want 1", got)
			}

			faults.Reset()
			got, err := e.BoostContext(context.Background(), req)
			if err != nil {
				t.Fatal(err)
			}
			if got.CacheHit {
				t.Error("retry after canceled cold build reported a cache hit")
			}
			if !sameBoost(got, want) {
				t.Errorf("retry not bit-identical to uninterrupted run:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestChaosCancelSimExtension builds an LT profile pool, cancels a
// request that would extend it, and asserts the existing pool survives
// untouched (the extension rolls back its RNG draws) so the retried
// extension converges to the exact pool a cold build at the larger
// budget produces.
func TestChaosCancelSimExtension(t *testing.T) {
	for _, w := range chaosWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			resetFaults(t)
			small := testRequest()
			small.Mode, small.Sims, small.Workers = "lt", 200, w
			big := small
			big.Sims = 400

			ref := newTestEngine(t, Options{})
			want, err := ref.Boost(big) // cold build straight to 400
			if err != nil {
				t.Fatal(err)
			}

			e := newTestEngine(t, Options{})
			if _, err := e.Boost(small); err != nil {
				t.Fatal(err)
			}
			faults.Enable(faults.PoolBuildShard, faults.Fault{Mode: "latency", Delay: 2 * time.Second})
			ctx, cancel := context.WithCancel(context.Background())
			go func() {
				time.Sleep(30 * time.Millisecond)
				cancel()
			}()
			if _, err := e.BoostContext(ctx, big); !errors.Is(err, context.Canceled) {
				t.Fatalf("canceled extension returned %v, want context.Canceled", err)
			}
			// A failed extension keeps the entry: the 200-profile pool is
			// still valid and still warm.
			if n := poolCount(e); n != 1 {
				t.Fatalf("pool count after canceled extension = %d, want 1 (entry kept)", n)
			}

			faults.Reset()
			got, err := e.Boost(big)
			if err != nil {
				t.Fatal(err)
			}
			if !got.CacheHit || got.NewSamples != 200 {
				t.Errorf("retry should extend the surviving pool by 200: %+v", got)
			}
			if !reflect.DeepEqual(got.BoostSet, want.BoostSet) || got.EstBoost != want.EstBoost || got.Samples != want.Samples {
				t.Errorf("extended pool not bit-identical to cold build:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestChaosInjectedBuildError fails one shard of a cold build with an
// injected error and asserts the failure surfaces (wrapping the
// injected error), drops the entry rather than caching a half-built
// pool, and the retry is bit-identical to an uninterrupted run.
func TestChaosInjectedBuildError(t *testing.T) {
	resetFaults(t)
	req := testRequest()

	ref := newTestEngine(t, Options{})
	want, err := ref.Boost(req)
	if err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(t, Options{})
	faults.Enable(faults.PoolBuildShard, faults.Fault{Mode: "error", Count: 1})
	if _, err := e.Boost(req); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("build with injected shard error returned %v, want faults.ErrInjected", err)
	}
	assertNoPools(t, e)

	// Count: 1 disarmed the point after firing; the retry builds clean.
	got, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !sameBoost(got, want) {
		t.Errorf("retry after injected error not bit-identical:\n got %+v\nwant %+v", got, want)
	}
}

// TestChaosShardPanicIsolation panics a shard worker and asserts the
// panic is contained (surfacing as a *panicsafe.Error-wrapped internal
// error, not a crash), counted, and leaves the cache unpoisoned for a
// clean retry.
func TestChaosShardPanicIsolation(t *testing.T) {
	resetFaults(t)
	req := testRequest()

	ref := newTestEngine(t, Options{})
	want, err := ref.Boost(req)
	if err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(t, Options{})
	faults.Enable(faults.PoolBuildShard, faults.Fault{Mode: "panic", Count: 1})
	_, err = e.Boost(req)
	var pe *panicsafe.Error
	if !errors.As(err, &pe) {
		t.Fatalf("build with injected panic returned %v, want a *panicsafe.Error", err)
	}
	if got := e.Stats().PanicsRecovered; got != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", got)
	}
	assertNoPools(t, e)

	got, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !sameBoost(got, want) {
		t.Errorf("retry after contained panic not bit-identical:\n got %+v\nwant %+v", got, want)
	}
}

// TestChaosCanceledLeaderHandsOff cancels a cold-build leader while an
// identical follower waits on the entry. The abandoned entry must be
// handed to the follower (not dropped, not poisoned): the follower
// builds under the same lock and serves the same bit-identical result
// an uninterrupted run produces.
func TestChaosCanceledLeaderHandsOff(t *testing.T) {
	resetFaults(t)
	req := testRequest()

	ref := newTestEngine(t, Options{})
	want, err := ref.Boost(req)
	if err != nil {
		t.Fatal(err)
	}

	e := newTestEngine(t, Options{})
	faults.Enable(faults.PoolBuildShard, faults.Fault{Mode: "latency", Delay: 2 * time.Second})

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, err := e.BoostContext(leaderCtx, req)
		leaderErr <- err
	}()
	// Give the leader time to take the entry lock and stall on the
	// injected latency, and the follower time to queue behind it. If the
	// timing misses (loaded CI machine), the entry is dropped instead of
	// handed off and the follower cold-builds its own — the observable
	// result is identical either way; the sleeps just bias the test
	// toward exercising the handoff path.
	time.Sleep(50 * time.Millisecond)
	followerRes := make(chan *BoostResult, 1)
	followerErr := make(chan error, 1)
	go func() {
		res, err := e.Boost(req)
		followerRes <- res
		followerErr <- err
	}()
	time.Sleep(50 * time.Millisecond)
	cancelLeader()
	if err := <-leaderErr; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader returned %v, want context.Canceled", err)
	}
	// The follower now owns the build; let it run clean.
	faults.Reset()
	if err := <-followerErr; err != nil {
		t.Fatalf("follower failed after leader handoff: %v", err)
	}
	got := <-followerRes
	if !sameBoost(got, want) {
		t.Errorf("follower result not bit-identical after handoff:\n got %+v\nwant %+v", got, want)
	}
	if n := poolCount(e); n != 1 {
		t.Errorf("pool count after handoff = %d, want 1", n)
	}
	if got := e.Stats().RequestsCanceled; got != 1 {
		t.Errorf("RequestsCanceled = %d, want 1", got)
	}
}

// TestChaosRepairFaultLeavesRegistryIntact fails RepairGraph at its
// injection point and asserts the registry and cache are untouched: the
// snapshot stays at its version and warm pools still serve.
func TestChaosRepairFaultLeavesRegistryIntact(t *testing.T) {
	resetFaults(t)
	e := newTestEngine(t, Options{})
	req := testRequest()
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	infoBefore, err := e.GraphInfo("g")
	if err != nil {
		t.Fatal(err)
	}

	g, err := e.Graph("g")
	if err != nil {
		t.Fatal(err)
	}
	faults.Enable(faults.Repair, faults.Fault{Mode: "error", Count: 1})
	if _, err := e.RepairGraph("g", testDelta(t, g)); !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("repair with injected fault returned %v, want faults.ErrInjected", err)
	}
	infoAfter, err := e.GraphInfo("g")
	if err != nil {
		t.Fatal(err)
	}
	if infoAfter.Version != infoBefore.Version {
		t.Errorf("failed repair bumped version %d -> %d", infoBefore.Version, infoAfter.Version)
	}
	warm, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("warm pool lost after failed repair")
	}
}
