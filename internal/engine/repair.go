package engine

// This file is the engine side of delta graph mutation: RepairGraph
// applies an edge delta to a registered snapshot, installing the
// patched graph under a bumped version — and instead of sweeping the
// old version's cached pools the way UploadGraph does, it migrates
// them: each pool is repaired in place (prr.Pool.Repair / the sim
// pool's model.Repairer resample only the sketches/profiles the delta
// touched) and re-keyed to the new version, so the warm state survives
// the mutation. A pool whose touched share of regeneration cost
// (expansion/cascade size, not sketch count) exceeds
// Options.RepairFallbackFraction is dropped instead — at that point a
// cold rebuild is cheaper — and the next query rebuilds it. Sim pools
// whose model cannot migrate in place (no Repairer: "sir", "kthresh")
// and content-derived pools take the same fallback: dropped, rebuilt
// cold on next use.
//
// The version-migration protocol keeps the "no query ever mixes
// snapshots" invariant intact:
//
//  1. ApplyDelta runs outside Engine.mu (it is the expensive CSR
//     patch). Under Engine.mu we then verify the snapshot is still the
//     one the delta was applied to — if an upload or delete raced us,
//     the patch is refused with ErrGraphChanged rather than silently
//     applied to the wrong base — install the patched snapshot, and
//     detach every cached pool of the old version in the same critical
//     section. From that instant no new query can find the old pools.
//  2. Each detached entry is repaired under its own entry lock (which
//     waits out any in-flight build) and, on success, its pool is
//     transplanted into a *fresh* entry keyed to the new version. The
//     old entry is emptied so a racing query still holding it rebuilds
//     a detached throwaway instead of poisoning the re-keyed cache.
//  3. The fresh entry is inserted under Engine.mu only if the patched
//     version is still current and the key is unoccupied (a query
//     against the new version may have built its own pool meanwhile —
//     that pool is just as good, and keeping it avoids clobbering an
//     entry other queries already hold).
//
// Because repaired pools are bit-identical to cold rebuilds at the
// same sample count (the pool-level equivalence property), queries
// served by a migrated pool are indistinguishable from queries served
// by a pool built from scratch on the patched graph.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"

	"github.com/kboost/kboost/internal/faults"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/model"
)

// ErrGraphChanged is returned (wrapped) when a snapshot is replaced or
// deleted between a patch's delta application and its installation —
// the delta was computed against a base that is no longer current, so
// applying it would silently corrupt the new snapshot. Callers retry
// against the current version (HTTP maps this to 409 Conflict).
var ErrGraphChanged = errors.New("graph changed during patch")

// RepairResult reports an accepted edge-delta patch: the patched
// snapshot's descriptor, the delta's shape, and what happened to the
// old version's cached pools.
type RepairResult struct {
	GraphInfo
	// Added, Removed and Reweighted count the delta's applied edge ops.
	Added      int `json:"added"`
	Removed    int `json:"removed"`
	Reweighted int `json:"reweighted"`
	// PoolsRepaired counts cached pools migrated to the new version;
	// RepairedSketches / RepairedProfiles are the PRR sketches and LT
	// profiles they had to resample. PoolsDropped counts pools that fell
	// back to a cold rebuild (touched fraction above the threshold).
	PoolsRepaired    int `json:"pools_repaired"`
	PoolsDropped     int `json:"pools_dropped"`
	RepairedSketches int `json:"repaired_sketches"`
	RepairedProfiles int `json:"repaired_profiles"`
}

// rekey swaps the snapshot version embedded in a pool cache key
// ("id@version|tag|..."), preserving the mode tag and seed-set suffix.
func rekey(key, graphID string, version uint64) string {
	rest := key[len(graphID)+1:] // past "id@"
	return graphID + "@" + strconv.FormatUint(version, 10) + rest[strings.IndexByte(rest, '|'):]
}

// RepairGraph applies an edge delta to the current snapshot of id,
// installing the patched graph under a bumped version and migrating
// the old version's cached pools by repair instead of sweeping them.
// On any error the registry and cache are left untouched.
func (e *Engine) RepairGraph(id string, delta *graph.EdgeDelta) (RepairResult, error) {
	return e.RepairGraphContext(context.Background(), id, delta)
}

// RepairGraphContext is RepairGraph with cooperative cancellation up to
// the point of no return: ctx is honored before the delta is applied
// and again before the patched snapshot is installed, so a canceled
// patch leaves the registry and cache byte-identical. Once the new
// version is installed the pool migration runs to completion regardless
// of ctx — the old pools are already detached, and abandoning them
// half-migrated would leak warm state and skew the repair counters.
func (e *Engine) RepairGraphContext(ctx context.Context, id string, delta *graph.EdgeDelta) (RepairResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if delta == nil {
		return RepairResult{}, fmt.Errorf("engine: nil delta for graph %q", id)
	}
	if err := faults.CheckContext(ctx, faults.Repair); err != nil {
		return RepairResult{}, e.noteRequestErr(err)
	}
	g, version, err := e.snapshotFor(id)
	if err != nil {
		return RepairResult{}, err
	}
	g2, eff, err := g.ApplyDelta(delta)
	if err != nil {
		return RepairResult{}, err
	}
	if err := ctx.Err(); err != nil {
		// Canceled after the (side-effect-free) delta application: the
		// patched graph is discarded, nothing was installed.
		return RepairResult{}, e.noteRequestErr(err)
	}

	e.mu.Lock()
	snap, ok := e.graphs[id]
	if !ok {
		e.mu.Unlock()
		return RepairResult{}, fmt.Errorf("engine: %w: %q", ErrUnknownGraph, id)
	}
	if snap.g != g || snap.version != version {
		e.mu.Unlock()
		return RepairResult{}, fmt.Errorf("engine: %w: %q is at version %d, delta was applied to version %d",
			ErrGraphChanged, id, snap.version, version)
	}
	newVersion := e.nextVersionLocked(id)
	e.graphs[id] = &snapshot{g: g2, version: newVersion}
	// Detach the old version's pools in the same critical section that
	// installs the new snapshot: new queries key to the new version and
	// can only miss, while in-flight queries finish coherently against
	// detached entries.
	var detached []*poolEntry
	var detachedBytes []int64
	for key, ent := range e.pools {
		if ent.graphID != id {
			continue
		}
		delete(e.pools, key)
		e.lru.Remove(ent.elem)
		e.poolBytes -= ent.bytes
		detached = append(detached, ent)
		detachedBytes = append(detachedBytes, ent.bytes)
	}
	e.mu.Unlock()
	e.ctr.graphPatches.Add(1)

	res := RepairResult{
		GraphInfo: GraphInfo{ID: id, Version: newVersion, Nodes: g2.N(), Edges: g2.M()},
		Added:     eff.Added, Removed: eff.Removed, Reweighted: eff.Reweighted,
	}
	for i, ent := range detached {
		fresh, bytes, sketches, profiles, hadPool := e.repairEntry(ent, g2, eff, newVersion)
		if fresh == nil {
			if hadPool {
				res.PoolsDropped++
				e.ctr.repairFallback.Add(1)
				e.ctr.invalidatedPools.Add(1)
				e.ctr.retiredPoolBytes.Add(detachedBytes[i])
			}
			continue
		}
		res.PoolsRepaired++
		res.RepairedSketches += sketches
		res.RepairedProfiles += profiles
		e.ctr.repairSkipped.Add(1)
		e.ctr.repairedSketches.Add(int64(sketches))
		e.ctr.repairedProfiles.Add(int64(profiles))

		e.mu.Lock()
		cur, live := e.graphs[id]
		if live && cur.version == newVersion {
			if _, occupied := e.pools[fresh.key]; !occupied {
				e.pools[fresh.key] = fresh
				fresh.elem = e.lru.PushFront(fresh)
				fresh.bytes = bytes
				e.poolBytes += bytes
				e.evictLocked()
			}
		}
		e.mu.Unlock()
	}
	return res, nil
}

// repairEntry repairs one detached entry's pool onto the patched graph
// and transplants it into a fresh entry keyed to the new version.
// Returns fresh == nil when the entry holds nothing worth migrating
// (hadPool false) or the repair fell back (hadPool true); otherwise
// the fresh entry, its resident bytes, and the resampled
// sketch/profile counts. Either way the old entry is emptied, so a
// racing query that still holds it rebuilds a detached throwaway
// rather than serving (or growing) a pool that now belongs to the
// re-keyed fresh entry.
func (e *Engine) repairEntry(ent *poolEntry, g2 *graph.Graph, eff *graph.DeltaEffect, newVersion uint64) (fresh *poolEntry, bytes int64, sketches, profiles int, hadPool bool) {
	frac := e.opt.RepairFallbackFraction
	ent.mu.Lock()
	defer ent.mu.Unlock()
	defer ent.clearResults()

	switch {
	case ent.pool != nil:
		pool := ent.pool
		derived := ent.derived
		ent.pool, ent.sized = nil, nil
		if derived {
			// Sampled from a content-derived graph; the base-graph delta
			// does not describe its probabilities. Drop and rebuild cold.
			return nil, 0, 0, 0, true
		}
		touched, ok, err := pool.Repair(g2, eff.DirtyIn, frac)
		if err != nil || !ok {
			return nil, 0, 0, 0, true
		}
		sketches = touched
		fresh = &poolEntry{key: rekey(ent.key, ent.graphID, newVersion), graphID: ent.graphID}
		fresh.ready.Store(true)
		bytes = pool.MemoryEstimate()
		fresh.mu.Lock()
		// The sizing memo restarts empty (not carried over): it was
		// derived against the pre-patch graph, and re-running the sizing
		// against the patched one lets the next query top the pool up if
		// the patched graph demands more samples.
		fresh.pool = pool
		fresh.sized = make(map[string]bool)
		fresh.mu.Unlock()
		return fresh, bytes, sketches, 0, true
	case ent.sim != nil:
		pool := ent.sim
		derived := ent.derived
		ent.sim = nil
		// Only pools that can migrate in place (model.Repairer) and were
		// sampled from the base snapshot are repairable: a content-derived
		// pool's worlds came from transformed probabilities the base-graph
		// delta does not describe. Everything else falls back to a drop
		// and cold rebuild.
		rep, canRepair := pool.(model.Repairer)
		if !canRepair || derived {
			return nil, 0, 0, 0, true
		}
		touched, ok, err := rep.Repair(g2, eff.DirtyOut, eff.DirtyIn, frac)
		if err != nil || !ok {
			return nil, 0, 0, 0, true
		}
		profiles = touched
		fresh = &poolEntry{key: rekey(ent.key, ent.graphID, newVersion), graphID: ent.graphID}
		fresh.ready.Store(true)
		bytes = pool.MemoryEstimate()
		fresh.mu.Lock()
		fresh.sim = pool
		fresh.mu.Unlock()
		return fresh, bytes, 0, profiles, true
	default:
		// Never built (a failed or just-acquired entry): nothing to
		// migrate, nothing to drop.
		return nil, 0, 0, 0, false
	}
}
