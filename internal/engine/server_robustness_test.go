package engine

// HTTP-level robustness coverage: admission control sheds with 429 +
// Retry-After, estimates degrade instead of shedding, /healthz and
// /readyz report liveness vs drain, a shard-worker panic surfaces as a
// JSON 500 without killing the server, and a client disconnect during a
// cold build leaves the pool cache unpoisoned.

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/kboost/kboost/internal/faults"
)

// newRobustnessServer builds a server over a fresh test engine and
// returns both, so tests can drive HTTP traffic and then assert
// directly on the engine's cache and counters.
func newRobustnessServer(t *testing.T, opt ServerOptions) (*Engine, *Server, *httptest.Server) {
	t.Helper()
	e := newTestEngine(t, Options{})
	api := NewServer(e, opt)
	srv := httptest.NewServer(api)
	t.Cleanup(srv.Close)
	return e, api, srv
}

// getStatus issues a GET and returns the status code and body.
func getStatus(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 512)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return resp.StatusCode, sb.String()
}

// holdColdBuild parks one cold boost request inside an injected latency
// stall at the pool-build shard boundary, occupying a cold admission
// slot until the returned release func is called.
func holdColdBuild(t *testing.T, url string, seeds string) (release func()) {
	t.Helper()
	faults.Enable(faults.PoolBuildShard, faults.Fault{Mode: "latency", Delay: 10 * time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	body := `{"graph":"g","seeds":[` + seeds + `],"k":2,"seed":3,"max_samples":3000}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/v1/boost", strings.NewReader(body))
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	go func() {
		defer close(done)
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	// Let the request reach the stall and occupy its admission slot.
	time.Sleep(100 * time.Millisecond)
	return func() {
		cancel()
		<-done
	}
}

func TestHealthAndReadyEndpoints(t *testing.T) {
	_, api, srv := newRobustnessServer(t, ServerOptions{})

	if code, body := getStatus(t, srv.URL+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: %d %q, want 200 ok", code, body)
	}
	if code, body := getStatus(t, srv.URL+"/readyz"); code != http.StatusOK || !strings.Contains(body, "ready") {
		t.Errorf("readyz: %d %q, want 200 ready", code, body)
	}

	api.SetDraining(true)
	if code, body := getStatus(t, srv.URL+"/readyz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Errorf("readyz during drain: %d %q, want 503 draining", code, body)
	}
	// Liveness is about the process, not routability: still 200.
	if code, _ := getStatus(t, srv.URL+"/healthz"); code != http.StatusOK {
		t.Errorf("healthz during drain: %d, want 200", code)
	}

	api.SetDraining(false)
	if code, _ := getStatus(t, srv.URL+"/readyz"); code != http.StatusOK {
		t.Errorf("readyz after drain cleared: %d, want 200", code)
	}
}

func TestColdOverflowShedsWith429(t *testing.T) {
	resetFaults(t)
	e, _, srv := newRobustnessServer(t, ServerOptions{MaxInFlightCold: 1, RetryAfterSeconds: 7})

	release := holdColdBuild(t, srv.URL, "0,20,40")
	defer release()

	// A second cold request (different seed set, so no cache entry) must
	// be shed, not queued behind a ten-second build.
	resp, err := http.Post(srv.URL+"/v1/boost", "application/json",
		strings.NewReader(`{"graph":"g","seeds":[1,21,41],"k":2,"seed":3,"max_samples":3000}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow cold boost: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Errorf("Retry-After = %q, want \"7\"", ra)
	}
	if got := e.Stats().RequestsShed; got != 1 {
		t.Errorf("RequestsShed = %d, want 1", got)
	}
}

func TestEstimateDegradesUnderPressure(t *testing.T) {
	resetFaults(t)
	e, _, srv := newRobustnessServer(t, ServerOptions{MaxInFlightCold: 1})

	release := holdColdBuild(t, srv.URL, "0,20,40")
	defer release()

	// A knobless IC estimate classifies cold; with the lane full it must
	// be served from the floor tier with degraded:true instead of shed.
	resp, est := postJSON(t, srv.URL+"/v1/estimate", `{"graph":"g","seeds":[0,20,40],"boost":[1,2]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded estimate: status %d, body %v", resp.StatusCode, est)
	}
	if est["degraded"] != true {
		t.Errorf("estimate under pressure not marked degraded: %v", est)
	}
	if got := e.Stats().DegradedEstimates; got != 1 {
		t.Errorf("DegradedEstimates = %d, want 1", got)
	}
}

func TestEstimateShedsWhenDegradeDisabled(t *testing.T) {
	resetFaults(t)
	_, _, srv := newRobustnessServer(t, ServerOptions{MaxInFlightCold: 1, DisableDegrade: true})

	release := holdColdBuild(t, srv.URL, "0,20,40")
	defer release()

	resp, err := http.Post(srv.URL+"/v1/estimate", "application/json",
		strings.NewReader(`{"graph":"g","seeds":[0,20,40],"boost":[1,2]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("estimate with degrade disabled: status %d, want 429", resp.StatusCode)
	}
}

func TestShardPanicReturnsJSON500(t *testing.T) {
	resetFaults(t)
	e, _, srv := newRobustnessServer(t, ServerOptions{})

	faults.Enable(faults.PoolBuildShard, faults.Fault{Mode: "panic", Count: 1})
	body := `{"graph":"g","seeds":[0,20,40],"k":2,"seed":3,"max_samples":3000}`
	resp, decoded := postJSON(t, srv.URL+"/v1/boost", body)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicked build: status %d, body %v, want 500", resp.StatusCode, decoded)
	}
	if msg, _ := decoded["error"].(string); !strings.Contains(msg, "internal error") {
		t.Errorf("panicked build error body = %v, want an internal error message", decoded)
	}
	if got := e.Stats().PanicsRecovered; got != 1 {
		t.Errorf("PanicsRecovered = %d, want 1", got)
	}

	// The panic was contained: the same server serves the retry clean.
	resp, decoded = postJSON(t, srv.URL+"/v1/boost", body)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("retry after contained panic: status %d, body %v", resp.StatusCode, decoded)
	}
}

func TestClientDisconnectLeavesCacheUnpoisoned(t *testing.T) {
	resetFaults(t)
	e, _, srv := newRobustnessServer(t, ServerOptions{})

	faults.Enable(faults.PoolBuildShard, faults.Fault{Mode: "latency", Delay: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	body := `{"graph":"g","seeds":[0,20,40],"k":2,"seed":3,"max_samples":3000}`
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, srv.URL+"/v1/boost", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatal("request expected to be abandoned by its context deadline")
	}

	// The handler unwinds asynchronously after the disconnect; wait for
	// the cancellation to be recorded before inspecting the cache.
	deadline := time.Now().Add(5 * time.Second)
	for e.Stats().RequestsCanceled == 0 {
		if time.Now().After(deadline) {
			t.Fatal("canceled request never recorded")
		}
		time.Sleep(10 * time.Millisecond)
	}
	assertNoPools(t, e)

	faults.Reset()
	resp, decoded := postJSON(t, srv.URL+"/v1/boost", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after client disconnect: status %d, body %v", resp.StatusCode, decoded)
	}
	if decoded["cache_hit"] == true {
		t.Error("retry after abandoned cold build claims a cache hit")
	}
}
