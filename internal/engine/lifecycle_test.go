package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/kboost/kboost/internal/graph"
)

// smallGraph builds a deterministic ring-with-chords graph on n nodes,
// with probabilities p/pb. Distinct (n, p) values give snapshots whose
// boosting answers are distinguishable.
func smallGraph(tb testing.TB, n int, p, pb float64) *graph.Graph {
	tb.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(int32(i), int32((i+1)%n), p, pb)
		b.MustAddEdge(int32(i), int32((i+2)%n), p, pb)
	}
	return b.MustBuild()
}

// TestUploadInvalidatesCachesAcrossVersions pins the cache-invalidation
// semantics of a snapshot replacement: a warm repeat after a re-upload
// must recompute against the new snapshot — no stale pool, no stale
// cached result. The v2 graph is deliberately smaller than v1, so a
// stale v1 answer would contain out-of-range nodes and fail loudly
// here; before version-keyed pools this test would have served the v1
// result cache.
func TestUploadInvalidatesCachesAcrossVersions(t *testing.T) {
	for _, mode := range []string{"full", "lt"} {
		t.Run(mode, func(t *testing.T) {
			e := New(Options{})
			v1 := smallGraph(t, 40, 0.15, 0.35)
			v2 := smallGraph(t, 8, 0.2, 0.5)
			if err := e.RegisterGraph("g", v1); err != nil {
				t.Fatal(err)
			}
			req := BoostRequest{
				GraphID: "g", Seeds: []int32{0, 2, 4}, K: 2, Mode: mode,
				Seed: 9, Workers: 2, MaxSamples: 2000, Sims: 800,
			}
			if mode == "full" {
				req.Mode = ""
			}
			cold, err := e.Boost(req)
			if err != nil {
				t.Fatal(err)
			}
			if cold.GraphVersion != 1 {
				t.Errorf("cold query ran against version %d, want 1", cold.GraphVersion)
			}
			warm, err := e.Boost(req)
			if err != nil {
				t.Fatal(err)
			}
			if !warm.ResultCached {
				t.Fatal("warm repeat on an unchanged snapshot should hit the result cache")
			}

			up, err := e.UploadGraph("g", v2)
			if err != nil {
				t.Fatal(err)
			}
			if up.Version != 2 || !up.Replaced {
				t.Fatalf("upload = %+v, want version 2 replacing version 1", up)
			}
			if up.InvalidatedPools != 1 || up.RetiredBytes <= 0 {
				t.Errorf("upload invalidated %d pools / %d bytes, want the v1 pool swept",
					up.InvalidatedPools, up.RetiredBytes)
			}

			fresh, err := e.Boost(req)
			if err != nil {
				t.Fatal(err)
			}
			if fresh.CacheHit || fresh.ResultCached {
				t.Errorf("post-upload repeat was served stale state: CacheHit=%v ResultCached=%v",
					fresh.CacheHit, fresh.ResultCached)
			}
			if fresh.GraphVersion != 2 {
				t.Errorf("post-upload query ran against version %d, want 2", fresh.GraphVersion)
			}
			if fresh.NewSamples == 0 {
				t.Error("post-upload query generated no samples; it must rebuild for the new snapshot")
			}
			for _, v := range fresh.BoostSet {
				if int(v) >= v2.N() {
					t.Errorf("boost set %v contains node %d, out of range for the v2 snapshot (n=%d) — a stale v1 result leaked",
						fresh.BoostSet, v, v2.N())
				}
			}
			st := e.Stats()
			if st.UploadsTotal != 2 {
				t.Errorf("UploadsTotal=%d, want 2 (register + upload)", st.UploadsTotal)
			}
			if st.InvalidatedPools != 1 || st.RetiredPoolBytes <= 0 {
				t.Errorf("stats invalidated=%d retired=%d, want the swept v1 pool accounted",
					st.InvalidatedPools, st.RetiredPoolBytes)
			}
			if got := st.GraphVersions["g"]; got != 2 {
				t.Errorf("GraphVersions[g]=%d, want 2", got)
			}
		})
	}
}

// TestUploadInvalidatesEstimatePools: mode "lt" estimates share the
// boost pools, so they must also recompute after a re-upload.
func TestUploadInvalidatesEstimatePools(t *testing.T) {
	e := New(Options{})
	if err := e.RegisterGraph("g", smallGraph(t, 20, 0.15, 0.4)); err != nil {
		t.Fatal(err)
	}
	req := EstimateRequest{GraphID: "g", Seeds: []int32{0, 5}, Boost: []int32{2}, Mode: "lt", Sims: 600, Seed: 3, Workers: 1}
	if _, err := e.Estimate(req); err != nil {
		t.Fatal(err)
	}
	warm, err := e.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Fatal("repeat lt estimate should reuse the pool")
	}
	if _, err := e.UploadGraph("g", smallGraph(t, 20, 0.05, 0.6)); err != nil {
		t.Fatal(err)
	}
	fresh, err := e.Estimate(req)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.CacheHit {
		t.Error("lt estimate after a re-upload reused a stale profile pool")
	}
}

func TestDeleteGraphSweepsPools(t *testing.T) {
	e := New(Options{})
	if err := e.RegisterGraph("g", smallGraph(t, 30, 0.15, 0.35)); err != nil {
		t.Fatal(err)
	}
	req := BoostRequest{GraphID: "g", Seeds: []int32{0, 3}, K: 2, Seed: 7, Workers: 2, MaxSamples: 1500}
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	invalidated, err := e.DeleteGraph("g")
	if err != nil {
		t.Fatal(err)
	}
	if invalidated != 1 {
		t.Errorf("delete invalidated %d pools, want 1", invalidated)
	}
	st := e.Stats()
	if st.Graphs != 0 || st.Pools != 0 || st.PoolBytes != 0 {
		t.Errorf("after delete: graphs=%d pools=%d bytes=%d, want all zero", st.Graphs, st.Pools, st.PoolBytes)
	}
	if st.GraphDeletes != 1 {
		t.Errorf("GraphDeletes=%d, want 1", st.GraphDeletes)
	}
	if _, err := e.Boost(req); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("boost after delete: got %v, want ErrUnknownGraph", err)
	}
	if _, err := e.DeleteGraph("g"); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("double delete: got %v, want ErrUnknownGraph", err)
	}
}

func TestGraphInfosAndVersions(t *testing.T) {
	e := New(Options{})
	ga := smallGraph(t, 10, 0.1, 0.2)
	gb := smallGraph(t, 6, 0.1, 0.2)
	if err := e.RegisterGraph("b", gb); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UploadGraph("a", ga); err != nil {
		t.Fatal(err)
	}
	if _, err := e.UploadGraph("a", ga); err != nil {
		t.Fatal(err)
	}
	infos := e.GraphInfos()
	if len(infos) != 2 || infos[0].ID != "a" || infos[1].ID != "b" {
		t.Fatalf("GraphInfos = %+v, want [a b] sorted", infos)
	}
	if infos[0].Version != 2 || infos[0].Nodes != 10 || infos[0].Edges != ga.M() {
		t.Errorf("info a = %+v, want version 2, 10 nodes", infos[0])
	}
	if v, err := e.GraphVersion("b"); err != nil || v != 1 {
		t.Errorf("GraphVersion(b) = %d, %v; want 1", v, err)
	}
	if _, err := e.GraphInfo("nope"); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("GraphInfo(nope): got %v, want ErrUnknownGraph", err)
	}
}

// TestStatsConcurrentWithQueriesAndUploads hammers the engine's
// counters from every direction at once — warm boosts bumping hit
// counters, Stats() snapshots, and uploads sweeping pools — so the race
// detector can catch any unsynchronized counter access in the hot path.
func TestStatsConcurrentWithQueriesAndUploads(t *testing.T) {
	e := New(Options{})
	ga := smallGraph(t, 16, 0.15, 0.35)
	gb := smallGraph(t, 12, 0.2, 0.4)
	if err := e.RegisterGraph("g", ga); err != nil {
		t.Fatal(err)
	}
	req := BoostRequest{GraphID: "g", Seeds: []int32{0, 2}, K: 1, Mode: "lt", Seed: 5, Workers: 1, Sims: 300}
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				if _, err := e.Boost(req); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			st := e.Stats()
			if st.BoostQueries < 0 || st.PoolBytes < 0 {
				t.Errorf("implausible stats snapshot: %+v", st)
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			g := ga
			if i%2 == 0 {
				g = gb
			}
			if _, err := e.UploadGraph("g", g); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
	st := e.Stats()
	if st.BoostQueries != 121 {
		t.Errorf("BoostQueries=%d, want 121", st.BoostQueries)
	}
	if st.UploadsTotal != 7 || st.GraphVersions["g"] != 7 {
		t.Errorf("uploads=%d version=%d, want 7/7", st.UploadsTotal, st.GraphVersions["g"])
	}
}

// TestDeleteThenReuploadContinuesVersions pins that a graph id's
// version sequence is monotonic for the life of the process, even
// across deletion. If a re-created id restarted at version 1, a pool
// built against the deleted snapshot by an in-flight query would carry
// a "current-looking" version and could be cached for the unrelated new
// graph.
func TestDeleteThenReuploadContinuesVersions(t *testing.T) {
	e := New(Options{})
	if err := e.RegisterGraph("g", smallGraph(t, 20, 0.15, 0.35)); err != nil {
		t.Fatal(err)
	}
	if _, err := e.DeleteGraph("g"); err != nil {
		t.Fatal(err)
	}
	up, err := e.UploadGraph("g", smallGraph(t, 8, 0.2, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if up.Version != 2 || up.Replaced {
		t.Errorf("re-upload after delete = %+v, want version 2 (continuing the sequence) without Replaced", up)
	}
	res, err := e.Boost(BoostRequest{GraphID: "g", Seeds: []int32{0, 2}, K: 1, Seed: 3, Workers: 1, MaxSamples: 800})
	if err != nil {
		t.Fatal(err)
	}
	if res.GraphVersion != 2 {
		t.Errorf("boost ran against version %d, want 2", res.GraphVersion)
	}
}

// TestUploadValidation mirrors RegisterGraph's argument checks.
func TestUploadValidation(t *testing.T) {
	e := New(Options{})
	if _, err := e.UploadGraph("", smallGraph(t, 4, 0.1, 0.2)); err == nil {
		t.Error("empty id accepted")
	}
	if _, err := e.UploadGraph("g", nil); err == nil {
		t.Error("nil graph accepted")
	}
	if up, err := e.UploadGraph("g", smallGraph(t, 4, 0.1, 0.2)); err != nil || up.Version != 1 || up.Replaced {
		t.Errorf("first upload = %+v, %v; want fresh version 1", up, err)
	}
	if err := e.RegisterGraph("g", smallGraph(t, 4, 0.1, 0.2)); err == nil {
		t.Error("RegisterGraph over a live uploaded graph should still be a duplicate error")
	}
}

func ExampleEngine_UploadGraph() {
	e := New(Options{})
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.2, 0.6)
	b.MustAddEdge(1, 2, 0.2, 0.6)
	g := b.MustBuild()
	up, _ := e.UploadGraph("prod", g)
	fmt.Println(up.Version, up.Replaced)
	up, _ = e.UploadGraph("prod", g)
	fmt.Println(up.Version, up.Replaced)
	// Output:
	// 1 false
	// 2 true
}
