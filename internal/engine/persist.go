package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"github.com/kboost/kboost/internal/faults"
	"github.com/kboost/kboost/internal/graph"
)

// SnapshotExt is the file extension of persisted graph snapshots
// (binary codec).
const SnapshotExt = ".kbg"

// SnapshotPath returns the file a snapshot of id is persisted at.
func SnapshotPath(dir, id string) string {
	return filepath.Join(dir, id+SnapshotExt)
}

// snapshotTmpTag marks SaveSnapshot's in-flight temp files so
// LoadSnapshotDir can sweep ones orphaned by a crash.
const snapshotTmpTag = ".tmp-"

// SaveSnapshot persists g as dir/<id>.kbg in the binary codec, writing
// to a temp file and renaming so a crash mid-write never leaves a
// truncated snapshot where a reload would find it. The id must already
// be validated as path-safe (the HTTP layer enforces its name charset
// before calling this).
func SaveSnapshot(dir, id string, g *graph.Graph) error {
	if err := faults.Check(faults.PersistWrite); err != nil {
		return fmt.Errorf("engine: persisting snapshot %q: %w", id, err)
	}
	tmp, err := os.CreateTemp(dir, "."+id+snapshotTmpTag+"*")
	if err != nil {
		return fmt.Errorf("engine: persisting snapshot %q: %w", id, err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := g.WriteBinary(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("engine: persisting snapshot %q: %w", id, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("engine: persisting snapshot %q: %w", id, err)
	}
	if err := os.Rename(tmp.Name(), SnapshotPath(dir, id)); err != nil {
		return fmt.Errorf("engine: persisting snapshot %q: %w", id, err)
	}
	return nil
}

// SnapshotCaseClash reports the id of a persisted snapshot whose name
// matches id case-insensitively but not exactly ("" when there is
// none). On case-insensitive filesystems (macOS, Windows) two such ids
// would share one snapshot file, so uploads must refuse the second
// spelling rather than silently clobber the first.
func SnapshotCaseClash(dir, id string) (string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return "", nil
		}
		return "", fmt.Errorf("engine: checking snapshot dir: %w", err)
	}
	exact := id + SnapshotExt
	folded := strings.ToLower(exact)
	for _, entry := range entries {
		if name := entry.Name(); name != exact && strings.ToLower(name) == folded {
			return strings.TrimSuffix(name, SnapshotExt), nil
		}
	}
	return "", nil
}

// RemoveSnapshot deletes the persisted snapshot of id; a snapshot that
// was never persisted is not an error.
func RemoveSnapshot(dir, id string) error {
	if err := os.Remove(SnapshotPath(dir, id)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("engine: removing snapshot %q: %w", id, err)
	}
	return nil
}

// LoadSnapshotDir registers every *.kbg snapshot found in dir,
// replacing any graph already registered under the same id (persisted
// uploads are the freshest state), and returns how many were loaded.
// Versions restart at the registry's next number — versions are
// per-process, not persisted.
func (e *Engine) LoadSnapshotDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, fmt.Errorf("engine: loading snapshot dir: %w", err)
	}
	loaded := 0
	if err := faults.Check(faults.SnapshotLoad); err != nil {
		return 0, fmt.Errorf("engine: loading snapshot dir: %w", err)
	}
	for _, entry := range entries {
		name := entry.Name()
		if !entry.IsDir() && strings.HasPrefix(name, ".") && strings.Contains(name, snapshotTmpTag) {
			// A SaveSnapshot temp file orphaned by a crash mid-write; it
			// will never be renamed into place, so sweep it at boot.
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		id, ok := strings.CutSuffix(name, SnapshotExt)
		if !ok || id == "" || entry.IsDir() {
			continue
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			return loaded, fmt.Errorf("engine: loading snapshot %q: %w", id, err)
		}
		g, err := graph.ReadBinary(f)
		f.Close()
		if err != nil {
			return loaded, fmt.Errorf("engine: loading snapshot %q: %w", id, err)
		}
		if _, err := e.UploadGraph(id, g); err != nil {
			return loaded, err
		}
		loaded++
	}
	return loaded, nil
}
