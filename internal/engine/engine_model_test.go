package engine

// Tests for the pluggable-model serving path (modes "sir" and
// "kthresh" behind the same pool/result-cache plumbing as "lt"), the
// content-properties modifier's cache keying, the prefilter
// correctness fixes, the ErrorTargetMet conflict reporting, and the
// uniform unknown-mode dispatch across every endpoint.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/model"
)

// simModes are the pooled simulation modes served by boostSim; every
// generic-path test loops over all of them so a regression in one
// model's adapter cannot hide behind the others.
var simModes = []string{"lt", "sir", "kthresh"}

// TestSimBoostRoundTripAllModes: every simulation mode serves a boost
// query end to end — cold build, warm result-cache hit, per-mode
// counters — through the one generic path.
func TestSimBoostRoundTripAllModes(t *testing.T) {
	for _, mode := range simModes {
		e := newTestEngine(t, Options{})
		req := testRequest()
		req.Mode = mode
		req.Sims = 800

		cold, err := e.Boost(req)
		if err != nil {
			t.Fatalf("mode %s cold: %v", mode, err)
		}
		if cold.CacheHit || cold.NewSamples != 800 {
			t.Errorf("mode %s cold: CacheHit=%v NewSamples=%d, want false/800", mode, cold.CacheHit, cold.NewSamples)
		}
		if len(cold.BoostSet) == 0 || len(cold.BoostSet) > req.K {
			t.Errorf("mode %s: boost set %v, want 1..%d nodes", mode, cold.BoostSet, req.K)
		}

		warm, err := e.Boost(req)
		if err != nil {
			t.Fatalf("mode %s warm: %v", mode, err)
		}
		if !warm.CacheHit || !warm.ResultCached || warm.NewSamples != 0 {
			t.Errorf("mode %s warm: CacheHit=%v ResultCached=%v NewSamples=%d, want true/true/0",
				mode, warm.CacheHit, warm.ResultCached, warm.NewSamples)
		}
		if fmt.Sprint(warm.BoostSet) != fmt.Sprint(cold.BoostSet) || warm.EstBoost != cold.EstBoost {
			t.Errorf("mode %s: warm result diverges from cold", mode)
		}

		sm, ok := e.Stats().SimModes[mode]
		if !ok {
			t.Fatalf("mode %s: no SimModes entry after two queries", mode)
		}
		if sm.BoostQueries != 2 || sm.PoolMisses != 1 || sm.PoolHits != 1 ||
			sm.ResultHits != 1 || sm.Profiles != 800 {
			t.Errorf("mode %s counters: %+v, want 2 queries / 1 miss / 1 hit / 1 result hit / 800 profiles", mode, sm)
		}
	}
}

// TestSimBoostWorkerInvariance: the served boost set and Δ̂ must be
// bit-identical for every worker count, for each pooled model.
func TestSimBoostWorkerInvariance(t *testing.T) {
	for _, mode := range simModes {
		var want *BoostResult
		for i, workers := range []int{1, 2, 7} {
			e := newTestEngine(t, Options{})
			req := testRequest()
			req.Mode = mode
			req.Sims = 500
			req.Workers = workers
			got, err := e.Boost(req)
			if err != nil {
				t.Fatalf("mode %s workers=%d: %v", mode, workers, err)
			}
			if i == 0 {
				want = got
				continue
			}
			if fmt.Sprint(got.BoostSet) != fmt.Sprint(want.BoostSet) || got.EstBoost != want.EstBoost {
				t.Errorf("mode %s workers=%d: (%v, %g) diverges from workers=1 (%v, %g)",
					mode, workers, got.BoostSet, got.EstBoost, want.BoostSet, want.EstBoost)
			}
		}
	}
}

// TestSimEstimateSharesBoostPool: an estimate in a simulation mode must
// reuse the pool its boost queries built (and vice versa) — one pool
// per (graph, mode, seeds), not one per endpoint.
func TestSimEstimateSharesBoostPool(t *testing.T) {
	for _, mode := range []string{"sir", "kthresh"} {
		e := newTestEngine(t, Options{})
		req := testRequest()
		req.Mode = mode
		req.Sims = 600
		res, err := e.Boost(req)
		if err != nil {
			t.Fatalf("mode %s boost: %v", mode, err)
		}
		est, err := e.Estimate(EstimateRequest{
			GraphID: "g", Seeds: req.Seeds, Boost: res.BoostSet, Mode: mode,
		})
		if err != nil {
			t.Fatalf("mode %s estimate: %v", mode, err)
		}
		if !est.CacheHit {
			t.Errorf("mode %s: estimate missed the pool its boost query built", mode)
		}
		// Same worlds, integer-differenced: the estimate's Δ̂ for the
		// chosen set must agree exactly with what selection reported.
		if est.Boost != res.EstBoost {
			t.Errorf("mode %s: estimate Δ̂=%g, boost query reported %g", mode, est.Boost, res.EstBoost)
		}
		if st := e.Stats(); st.Pools != 1 {
			t.Errorf("mode %s: %d pools cached, want 1 shared", mode, st.Pools)
		}
	}
}

// TestSimModeParamsKeyPools: distinct model parameters must never
// share sampled worlds — "sir" at two recovery rates builds two pools.
func TestSimModeParamsKeyPools(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	req.Mode = "sir"
	req.Sims = 300
	req.Recovery = 0.25
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	req.Recovery = 0.75
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Pools != 2 || st.PoolMisses != 2 {
		t.Errorf("pools=%d misses=%d after two recovery rates, want 2/2", st.Pools, st.PoolMisses)
	}
}

// TestSimModeKnobMisuse: setting a model knob for a mode it does not
// apply to is rejected before any pool or counter is touched.
func TestSimModeKnobMisuse(t *testing.T) {
	e := newTestEngine(t, Options{})
	cases := []BoostRequest{
		{GraphID: "g", Seeds: []int32{0}, K: 1, Mode: "lt", Recovery: 0.5},
		{GraphID: "g", Seeds: []int32{0}, K: 1, Mode: "sir", Threshold: 2},
		{GraphID: "g", Seeds: []int32{0}, K: 1, Mode: "ic", Recovery: 0.5},
		{GraphID: "g", Seeds: []int32{0}, K: 1, Mode: "sir", Recovery: 1.5},
		{GraphID: "g", Seeds: []int32{0}, K: 1, Mode: "kthresh", Threshold: -1},
	}
	for _, req := range cases {
		if _, err := e.Boost(req); err == nil {
			t.Errorf("mode %s (recovery=%g threshold=%d): knob misuse accepted", req.Mode, req.Recovery, req.Threshold)
		}
	}
	if st := e.Stats(); st.BoostQueries != 0 || st.Pools != 0 {
		t.Errorf("rejected requests touched state: queries=%d pools=%d", st.BoostQueries, st.Pools)
	}
}

// TestContentKeysPools: distinct content modifiers must never share
// sampled worlds, while the identity modifier (explicit or omitted)
// shares the content-free pool.
func TestContentKeysPools(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	req.Mode = "lt"
	req.Sims = 400

	if _, err := e.Boost(req); err != nil { // content-free
		t.Fatal(err)
	}
	req.Content = &model.Content{Virality: 1, Credibility: 1} // explicit identity
	warm, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("explicit identity content missed the content-free pool")
	}

	req.Content = &model.Content{Virality: 1.5}
	hot, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if hot.CacheHit {
		t.Error("non-identity content hit the content-free pool")
	}
	req.Content = &model.Content{Virality: 1.5, Credibility: 0.5}
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.Pools != 3 {
		t.Errorf("%d pools after identity + two content variants, want 3", st.Pools)
	}

	// Out-of-range scalars are rejected up front.
	for _, bad := range []*model.Content{{Virality: -1}, {Credibility: 2}, {Credibility: -0.1}} {
		req.Content = bad
		if _, err := e.Boost(req); err == nil {
			t.Errorf("content %+v accepted", *bad)
		}
	}
}

// TestContentAffectsSpread: a higher-virality content must not estimate
// a lower spread than the same query on stale content — the modifier
// has to actually reach the sampled worlds, not just the cache key.
func TestContentAffectsSpread(t *testing.T) {
	e := newTestEngine(t, Options{})
	base := EstimateRequest{GraphID: "g", Seeds: []int32{0, 20, 40}, Mode: "lt", Sims: 1500, Seed: 9}

	viral := base
	viral.Content = &model.Content{Virality: 2}
	stale := base
	stale.Content = &model.Content{Virality: 0.25}

	hi, err := e.Estimate(viral)
	if err != nil {
		t.Fatal(err)
	}
	lo, err := e.Estimate(stale)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Spread <= lo.Spread {
		t.Errorf("virality 2 spread %g <= virality 0.25 spread %g", hi.Spread, lo.Spread)
	}
}

// TestSimPoolDroppedOnPatch: pools of models without in-place repair
// ("sir", "kthresh") are dropped on a graph patch — counted as repair
// fallbacks — and the next query rebuilds cold on the patched graph.
func TestSimPoolDroppedOnPatch(t *testing.T) {
	for _, mode := range []string{"sir", "kthresh"} {
		e := newTestEngine(t, Options{})
		req := testRequest()
		req.Mode = mode
		req.Sims = 300
		if _, err := e.Boost(req); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		d := testDelta(t, testGraph(t))
		res, err := e.RepairGraph("g", d)
		if err != nil {
			t.Fatalf("mode %s patch: %v", mode, err)
		}
		if res.PoolsRepaired != 0 || res.PoolsDropped != 1 {
			t.Errorf("mode %s: repaired=%d dropped=%d, want 0/1 (no Repairer)", mode, res.PoolsRepaired, res.PoolsDropped)
		}
		after, err := e.Boost(req)
		if err != nil {
			t.Fatalf("mode %s post-patch: %v", mode, err)
		}
		if after.CacheHit {
			t.Errorf("mode %s: post-patch query hit a pool that should have been dropped", mode)
		}
	}
}

// TestContentPoolDroppedOnPatch: even an LT pool (which can repair in
// place) is dropped when it was sampled from a content-derived graph —
// the base-graph delta does not describe its probabilities.
func TestContentPoolDroppedOnPatch(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	req.Mode = "lt"
	req.Sims = 300
	req.Content = &model.Content{Virality: 1.5}
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	d := testDelta(t, testGraph(t))
	res, err := e.RepairGraph("g", d)
	if err != nil {
		t.Fatal(err)
	}
	if res.PoolsRepaired != 0 || res.PoolsDropped != 1 {
		t.Errorf("content pool: repaired=%d dropped=%d, want 0/1", res.PoolsRepaired, res.PoolsDropped)
	}
}

// --- satellite 1: prefilter correctness ---

// TestPrefilterSmallerThanKRejected: prefilter < k can never fill the
// boost set, so the request is rejected before any cache or counter is
// touched — on the PRR path and every simulation mode alike.
func TestPrefilterSmallerThanKRejected(t *testing.T) {
	for _, mode := range []string{"", "lt", "sir", "kthresh"} {
		e := newTestEngine(t, Options{})
		req := testRequest()
		req.Mode = mode
		req.K = 3
		req.Prefilter = 2
		_, err := e.Boost(req)
		if err == nil {
			t.Fatalf("mode %q: prefilter 2 < k=3 accepted", mode)
		}
		if msg := fmt.Sprint(err); !strings.Contains(msg, "prefilter") {
			t.Errorf("mode %q: error %q does not name the prefilter", mode, msg)
		}
		if st := e.Stats(); st.BoostQueries != 0 || st.Pools != 0 || st.PoolMisses != 0 {
			t.Errorf("mode %q: rejected request touched state: queries=%d pools=%d misses=%d",
				mode, st.BoostQueries, st.Pools, st.PoolMisses)
		}
	}
}

// sparseGraph is a graph where almost no node has a boostable path from
// the seed: a short directed chain inside a sea of isolated nodes, so
// the two-hop prefilter ranking runs out of nonzero-score candidates
// long before a generous cap.
func sparseGraph(t *testing.T) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(40)
	for i := int32(0); i < 4; i++ {
		b.MustAddEdge(i, i+1, 0.3, 0.6)
	}
	return b.MustBuild()
}

// TestPrefilterShortShortlistFallsBack: when the two-hop shortlist
// comes back shorter than the requested cap, the query must fall back
// to unrestricted selection — identical result, shared result-cache
// slot (pre normalized to 0) — instead of silently serving and caching
// a degraded shortlist.
func TestPrefilterShortShortlistFallsBack(t *testing.T) {
	for _, mode := range []string{"", "lt", "sir", "kthresh"} {
		e := New(Options{})
		if err := e.RegisterGraph("s", sparseGraph(t)); err != nil {
			t.Fatal(err)
		}
		req := BoostRequest{
			GraphID: "s", Seeds: []int32{0}, K: 2, Mode: mode,
			Seed: 11, Workers: 2, MaxSamples: 2000, Sims: 500,
		}
		exact, err := e.Boost(req)
		if err != nil {
			t.Fatalf("mode %q exact: %v", mode, err)
		}

		pre := req
		pre.Prefilter = 25 // far more than the graph's boostable nodes
		got, err := e.Boost(pre)
		if err != nil {
			t.Fatalf("mode %q prefilter: %v", mode, err)
		}
		if fmt.Sprint(got.BoostSet) != fmt.Sprint(exact.BoostSet) || got.EstBoost != exact.EstBoost {
			t.Errorf("mode %q: fallback result (%v, %g) diverges from exact (%v, %g)",
				mode, got.BoostSet, got.EstBoost, exact.BoostSet, exact.EstBoost)
		}
		if !got.ResultCached {
			t.Errorf("mode %q: fallback did not share the exact query's result-cache slot", mode)
		}
	}
}

// --- satellite 2: ErrorTargetMet ---

// TestEstimateErrorTargetMet pins the conflict semantics: the latency
// cap is hard and wins, and the response must say when that sacrificed
// the error target — and only then.
func TestEstimateErrorTargetMet(t *testing.T) {
	e := newTestEngine(t, Options{})
	base := tierRequest("ic")

	// Knobless exact requests trivially meet their (absent) target.
	plain, err := e.Estimate(base)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.ErrorTargetMet {
		t.Error("knobless request reported ErrorTargetMet=false")
	}

	// Latency-only: no target to miss.
	latOnly := base
	latOnly.MaxLatencyMS = 50
	res, err := e.Estimate(latOnly)
	if err != nil {
		t.Fatal(err)
	}
	if !res.ErrorTargetMet {
		t.Error("latency-only request reported ErrorTargetMet=false")
	}

	// Calibrate, then an achievable error target: met.
	calReq := base
	calReq.MaxError = 0.5
	if _, err := e.Estimate(calReq); err != nil {
		t.Fatal(err)
	}
	loose, err := e.Estimate(calReq)
	if err != nil {
		t.Fatal(err)
	}
	if !loose.ErrorTargetMet {
		t.Errorf("achievable target served tier %d with ErrorTargetMet=false", loose.Tier)
	}

	// Both knobs in conflict: an unattainably tight error target needs
	// tier 2, an unattainably tight latency cap forces tier 0 — latency
	// wins, and the response must disclose the sacrifice.
	conflict := base
	conflict.MaxError = 1e-12
	conflict.MaxLatencyMS = 1e-9
	res, err = e.Estimate(conflict)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tier != 0 {
		t.Fatalf("conflicting knobs served tier %d, want 0 (latency cap is hard)", res.Tier)
	}
	if res.ErrorTargetMet {
		t.Error("latency cap sacrificed the error target but ErrorTargetMet=true")
	}
}

// TestEstimateTierFloorForNoTier0Modes: modes whose semantics the
// closed-form estimator cannot express ("sir"; "kthresh" at τ >= 2)
// decline tier 0, so even a pure latency cap serves tier 1.
func TestEstimateTierFloorForNoTier0Modes(t *testing.T) {
	for _, mode := range []string{"sir", "kthresh"} {
		e := newTestEngine(t, Options{})
		req := tierRequest(mode)
		req.MaxLatencyMS = 1e-9 // would force tier 0 if admissible
		res, err := e.Estimate(req)
		if err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if res.Tier != 1 {
			t.Errorf("mode %s: latency-capped estimate served tier %d, want floor 1", mode, res.Tier)
		}
		if !res.ErrorTargetMet {
			t.Errorf("mode %s: no error target set but ErrorTargetMet=false", mode)
		}

		// With a calibration on file the floor still holds, and a tight
		// error target under a hard latency cap reports the sacrifice.
		cal := tierRequest(mode)
		cal.MaxError = 0.5
		if _, err := e.Estimate(cal); err != nil {
			t.Fatalf("mode %s calibrate: %v", mode, err)
		}
		cal.MaxError = 1e-12
		cal.MaxLatencyMS = 1e-9
		res, err = e.Estimate(cal)
		if err != nil {
			t.Fatalf("mode %s conflict: %v", mode, err)
		}
		if res.Tier != 1 {
			t.Errorf("mode %s: conflicting knobs served tier %d, want floor 1", mode, res.Tier)
		}
		if res.ErrorTargetMet {
			t.Errorf("mode %s: sacrificed error target reported as met", mode)
		}
	}
}

// --- satellite 3: uniform mode dispatch ---

// TestModeDispatchUniform: every query endpoint rejects an unknown mode
// with the same 400 body, so clients see one mode catalog no matter
// where they typo.
func TestModeDispatchUniform(t *testing.T) {
	srv := newTestServer(t)
	endpoints := []struct {
		path string
		body string
	}{
		{"/v1/boost", `{"graph":"g","seeds":[0],"k":1,"mode":"turbo"}`},
		{"/v1/estimate", `{"graph":"g","seeds":[0],"mode":"turbo"}`},
		{"/v1/seeds", `{"graph":"g","k":1,"mode":"turbo"}`},
	}
	var msgs []string
	for _, ep := range endpoints {
		resp, decoded := postJSON(t, srv.URL+ep.path, ep.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: unknown mode status %d, want 400", ep.path, resp.StatusCode)
		}
		msg, _ := decoded["error"].(string)
		if !strings.Contains(msg, "turbo") {
			t.Errorf("%s: error %q does not name the offending mode", ep.path, msg)
		}
		for _, known := range []string{"ic", "lb", "lt", "sir", "kthresh"} {
			if !strings.Contains(msg, known) {
				t.Errorf("%s: error %q does not list known mode %q", ep.path, msg, known)
			}
		}
		msgs = append(msgs, msg)
	}
	if msgs[0] != msgs[1] || msgs[1] != msgs[2] {
		t.Errorf("unknown-mode bodies differ across endpoints: %q", msgs)
	}

	// Known-but-unservable modes are rejected with a specific error, not
	// the unknown-mode catalog.
	resp, decoded := postJSON(t, srv.URL+"/v1/estimate", `{"graph":"g","seeds":[0],"mode":"lb"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("estimate mode lb: status %d, want 400", resp.StatusCode)
	}
	if msg, _ := decoded["error"].(string); !strings.Contains(msg, "selection-only") {
		t.Errorf("estimate mode lb: error %q does not explain selection-only", msg)
	}
	resp, decoded = postJSON(t, srv.URL+"/v1/seeds", `{"graph":"g","k":1,"mode":"lt"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("seeds mode lt: status %d, want 400", resp.StatusCode)
	}
	if msg, _ := decoded["error"].(string); !strings.Contains(msg, "ic") {
		t.Errorf("seeds mode lt: error %q does not point at mode ic", msg)
	}
}

// TestDefaultModeIsIC: "" and "full" are aliases for "ic" everywhere —
// same pool, same result-cache slot, same calibration, same counters as
// the explicit spelling.
func TestDefaultModeIsIC(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	req.Mode = ""
	cold, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, alias := range []string{"ic", "full"} {
		req.Mode = alias
		warm, err := e.Boost(req)
		if err != nil {
			t.Fatalf("mode %q: %v", alias, err)
		}
		if !warm.CacheHit || !warm.ResultCached {
			t.Errorf("mode %q: CacheHit=%v ResultCached=%v, want the \"\" pool and result", alias, warm.CacheHit, warm.ResultCached)
		}
		if fmt.Sprint(warm.BoostSet) != fmt.Sprint(cold.BoostSet) {
			t.Errorf("mode %q: boost set diverges from default-mode query", alias)
		}
	}
	if st := e.Stats(); st.Pools != 1 || st.PoolMisses != 1 || st.PoolHits != 2 || st.ResultHits != 2 {
		t.Errorf("alias queries fragmented the cache: %d pools, %d misses, %d hits, %d result hits",
			st.Pools, st.PoolMisses, st.PoolHits, st.ResultHits)
	}

	// Tiered estimates share one calibration across the spellings.
	est := tierRequest("")
	est.MaxError = 0.5
	if _, err := e.Estimate(est); err != nil {
		t.Fatal(err)
	}
	est.Mode = "ic"
	if _, err := e.Estimate(est); err != nil {
		t.Fatal(err)
	}
	if st := e.Stats(); st.TierCalibrations != 1 {
		t.Errorf("%d calibrations for \"\" and \"ic\", want 1 shared", st.TierCalibrations)
	}
}

// TestSimModesOverHTTP: the new models (with their knobs and content)
// are served end to end over the JSON API, and /v1/stats reports the
// per-mode breakdown.
func TestSimModesOverHTTP(t *testing.T) {
	srv := newTestServer(t)
	bodies := map[string]string{
		"sir":     `{"graph":"g","seeds":[0,20,40],"k":3,"mode":"sir","recovery":0.3,"seed":7,"sims":400}`,
		"kthresh": `{"graph":"g","seeds":[0,20,40],"k":3,"mode":"kthresh","threshold":2,"seed":7,"sims":400,"content":{"virality":1.2}}`,
	}
	for mode, body := range bodies {
		resp, cold := postJSON(t, srv.URL+"/v1/boost", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("mode %s: status %d, body %v", mode, resp.StatusCode, cold)
		}
		if _, ok := cold["boost_set"].([]any); !ok {
			t.Fatalf("mode %s: no boost_set in %v", mode, cold)
		}
		resp, warm := postJSON(t, srv.URL+"/v1/boost", body)
		if resp.StatusCode != http.StatusOK || warm["cache_hit"] != true {
			t.Errorf("mode %s warm: status %d cache_hit=%v", mode, resp.StatusCode, warm["cache_hit"])
		}
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	for mode := range bodies {
		sm, ok := st.SimModes[mode]
		if !ok || sm.BoostQueries != 2 || sm.PoolMisses != 1 {
			t.Errorf("stats sim_modes[%s] = %+v (present=%v), want 2 queries / 1 miss", mode, sm, ok)
		}
	}

	// error_target_met flows through the wire format.
	resp2, est := postJSON(t, srv.URL+"/v1/estimate",
		`{"graph":"g","seeds":[0,20],"mode":"sir","max_latency_ms":50,"seed":3}`)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("tiered sir estimate: status %d, body %v", resp2.StatusCode, est)
	}
	if est["tier"] != float64(1) || est["error_target_met"] != true {
		t.Errorf("tiered sir estimate: tier=%v error_target_met=%v, want 1/true", est["tier"], est["error_target_met"])
	}
}
