package engine

// This file is the latency-tiered estimate read path. A request that
// sets MaxLatencyMS or MaxError is served by the cheapest of three
// estimators that satisfies its knobs:
//
//	tier 0 — closed-form one/two-hop approximation (internal/approx),
//	         straight off the CSR. Microseconds, no pool, no sampling,
//	         and no error guarantee of any kind. A model may decline
//	         this tier outright (spec.tier0Norms ok == false) when its
//	         transmission semantics have no per-node-normalizer form;
//	         its tier floor is then tier 1.
//	tier 1 — small fixed-budget Monte-Carlo (tier1Sims worker-invariant
//	         simulations) with a normal-approximation 95% CI.
//	tier 2 — the full evaluation (estimateTier2): fresh 10k-sim Monte-
//	         Carlo for IC, the cached profile pool for the simulation
//	         modes.
//
// Tier choice needs to know how wrong the cheap tiers are *on this
// graph*, which cannot be derived a priori — so the first MaxError
// request against a snapshot runs a calibration pass: all admissible
// tiers once, timed, with the cheap tiers' relative error measured
// against the exact answer (inflated by a safety factor, since one
// operand pair is only a point probe of the error surface). The
// profile is cached per (graph id, mode parameterization, content) and
// keyed to the snapshot version, so uploads and patches invalidate it
// by construction.
//
// Requests that only cap latency never calibrate: with no error target
// there is nothing to trade off, and tier 0 is the one tier whose cost
// is known to be negligible without measuring anything — so they are
// served closed-form immediately, pool-free even on a cold engine
// (tier 1 when the mode declines tier 0).
//
// When both knobs are set they can conflict: the latency cap is hard
// and wins, degrading below the tier the error target fits. The
// response's ErrorTargetMet field reports exactly that sacrifice.

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"github.com/kboost/kboost/internal/approx"
	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/stats"
)

// tier1Sims is tier 1's fixed simulation budget: large enough for a
// meaningful CI, ~40x cheaper than the 10k-sim tier-2 default.
const tier1Sims = 256

// calSafety inflates the calibrated tier errors: the calibration pass
// measures one (seeds, boost) operand pair, and other operands on the
// same graph can disagree more.
const calSafety = 2.0

// calibration is one (graph snapshot, mode spec)'s measured tier
// profile.
type calibration struct {
	version uint64
	// relErr[t] is tier t's observed relative error against the tier-2
	// answer, times calSafety. Tier 2 is implicitly 0; a declined tier 0
	// is +Inf (it can never fit an error target).
	relErr [2]float64
	// latMS[t] is tier t's measured serving latency in milliseconds.
	latMS [3]float64
	// norm caches the mode's tier-0 normalizers (nil for raw edge
	// probabilities), so calibrated tier-0 serves skip the O(N+M)
	// recompute.
	norm []float64
	// tier0OK records whether the mode admits the closed-form tier at
	// all; false floors every pick at tier 1.
	tier0OK bool
}

// calKey builds the calibration cache key. Graph ids cannot contain
// NUL (they arrive via URL paths / flag values), so the separator
// cannot collide.
func calKey(id, mode string) string { return id + "\x00" + mode }

// calibrationFor returns the cached calibration for (id, calID) if it
// matches the given snapshot version, else nil.
func (e *Engine) calibrationFor(id, calID string, version uint64) *calibration {
	e.calMu.Lock()
	defer e.calMu.Unlock()
	c := e.cals[calKey(id, calID)]
	if c == nil || c.version != version {
		return nil
	}
	return c
}

// dropCalibrations forgets every mode's calibrations for id — the key
// space is open-ended (parameterized models, content variants), so this
// is a prefix sweep rather than a fixed enumeration. Stale entries are
// never served anyway (version mismatch); this is memory hygiene on
// delete/replace. Safe to call under Engine.mu — calMu is a leaf lock.
func (e *Engine) dropCalibrations(id string) {
	prefix := id + "\x00"
	e.calMu.Lock()
	for k := range e.cals {
		if strings.HasPrefix(k, prefix) {
			delete(e.cals, k)
		}
	}
	e.calMu.Unlock()
}

// validateEstimateNodes range-checks both node lists and rejects an
// empty seed set, mirroring what the tier-2 estimators enforce — the
// closed-form tier indexes masks directly and must never see a bad id.
func validateEstimateNodes(g *graph.Graph, seeds, boost []int32) error {
	if len(seeds) == 0 {
		return fmt.Errorf("engine: empty seed set")
	}
	for _, v := range seeds {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("engine: seed %d out of range [0,%d)", v, g.N())
		}
	}
	for _, v := range boost {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("engine: boost node %d out of range [0,%d)", v, g.N())
		}
	}
	return nil
}

// estimateTiered serves a request with at least one tiering knob set.
func (e *Engine) estimateTiered(ctx context.Context, spec *modeSpec, req EstimateRequest) (EstimateResult, error) {
	g, version, err := e.snapshotFor(req.GraphID)
	if err != nil {
		return EstimateResult{}, err
	}
	if err := validateEstimateNodes(g, req.Seeds, req.Boost); err != nil {
		return EstimateResult{}, err
	}
	rg := &reqGraph{base: g, content: spec.content}

	cal := e.calibrationFor(req.GraphID, spec.calID(), version)
	if cal == nil {
		if req.MaxError <= 0 {
			// Latency cap only: tier 0 is the one tier known-cheap without
			// measurement, so serve it directly — no calibration, no pool.
			// A mode that declines the closed-form tier is floored at tier
			// 1 instead; with no error target set, either serve trivially
			// meets it.
			g2, err := rg.get()
			if err != nil {
				return EstimateResult{}, err
			}
			norm, ok := spec.tier0Norms(g2)
			if !ok {
				out, err := e.estimateTier1(req, g2, spec)
				if err != nil {
					return EstimateResult{}, err
				}
				out.ErrorTargetMet = true
				e.countTier(1, spec)
				return out, nil
			}
			out := estimateTier0(g2, req, norm)
			out.ErrorTargetMet = true
			e.countTier(0, spec)
			return out, nil
		}
		return e.calibrate(ctx, spec, req, rg, version)
	}

	tier, errMet := pickTier(cal, req)
	switch tier {
	case 0:
		g2, err := rg.get()
		if err != nil {
			return EstimateResult{}, err
		}
		out := estimateTier0(g2, req, cal.norm)
		out.ErrorTargetMet = errMet
		e.countTier(0, spec)
		return out, nil
	case 1:
		g2, err := rg.get()
		if err != nil {
			return EstimateResult{}, err
		}
		out, err := e.estimateTier1(req, g2, spec)
		if err != nil {
			return EstimateResult{}, err
		}
		out.ErrorTargetMet = errMet
		e.countTier(1, spec)
		return out, nil
	default:
		out, err := e.estimateTier2(ctx, spec, req)
		if err != nil {
			return out, err
		}
		out.Tier = 2
		out.ErrorTargetMet = true
		e.ctr.estimateTier2.Add(1)
		return out, nil
	}
}

// estimateFloor serves a request at the cheapest tier the mode admits —
// tier 0 when the mode has a closed-form normalizer form, tier 1
// otherwise. It is the degrade-mode workhorse (EstimateDegraded):
// pool-free in both cases, so it stays cheap even on a cold engine
// under load. Tier/counters are recorded; the caller owns the Degraded
// and ErrorTargetMet marks.
func (e *Engine) estimateFloor(ctx context.Context, spec *modeSpec, req EstimateRequest) (EstimateResult, error) {
	g, _, err := e.snapshotFor(req.GraphID)
	if err != nil {
		return EstimateResult{}, err
	}
	if err := validateEstimateNodes(g, req.Seeds, req.Boost); err != nil {
		return EstimateResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return EstimateResult{}, e.noteRequestErr(err)
	}
	rg := &reqGraph{base: g, content: spec.content}
	g2, err := rg.get()
	if err != nil {
		return EstimateResult{}, err
	}
	if norm, ok := spec.tier0Norms(g2); ok {
		out := estimateTier0(g2, req, norm)
		e.ctr.estimateTier0.Add(1)
		return out, nil
	}
	out, err := e.estimateTier1(req, g2, spec)
	if err != nil {
		return EstimateResult{}, err
	}
	e.ctr.estimateTier1.Add(1)
	return out, nil
}

// pickTier chooses the cheapest tier consistent with the knobs, and
// reports whether that choice still honors the error target. The error
// target picks the cheapest tier whose calibrated relative error fits
// (tier 2 is exact and always fits); tightening MaxError can therefore
// only move the choice to a more expensive tier — the monotonicity the
// property tests pin. The latency cap then degrades the choice
// downward: it is a hard budget, unlike the best-effort error target,
// so a tier that measured over it is never served even when that
// sacrifices the error target — the one case errMet is false. Modes
// that decline tier 0 are floored at tier 1 throughout.
func pickTier(cal *calibration, req EstimateRequest) (tier int, errMet bool) {
	minTier := 0
	if !cal.tier0OK {
		minTier = 1
	}
	tier = minTier
	if req.MaxError > 0 {
		switch {
		case minTier == 0 && cal.relErr[0] <= req.MaxError:
			tier = 0
		case cal.relErr[1] <= req.MaxError:
			tier = 1
		default:
			tier = 2
		}
	}
	errTier := tier
	if req.MaxLatencyMS > 0 {
		for tier > minTier && cal.latMS[tier] > req.MaxLatencyMS {
			tier--
		}
	}
	return tier, tier >= errTier
}

// countTier bumps the query counters for a tier-0/1 serve (the tier-2
// path counts itself inside the full estimators).
func (e *Engine) countTier(tier int, spec *modeSpec) {
	e.ctr.estimateQueries.Add(1)
	if spec.sim != nil {
		e.simCtr(spec.name).estimateQueries.Add(1)
	}
	if tier == 0 {
		e.ctr.estimateTier0.Add(1)
	} else {
		e.ctr.estimateTier1.Add(1)
	}
}

// estimateTier0 answers closed-form: the Chung-Lee style two-hop
// approximation of the boosted spread, and its boosted-minus-base
// difference when the request carries a boost set.
func estimateTier0(g *graph.Graph, req EstimateRequest, norm []float64) EstimateResult {
	out := EstimateResult{Tier: 0}
	if len(req.Boost) > 0 {
		out.Spread, out.Boost = approx.TwoHopBoost(g, req.Seeds, req.Boost, norm)
	} else {
		out.Spread = approx.TwoHopSpread(g, req.Seeds, nil, norm)
	}
	return out
}

// estimateTier1 answers from tier1Sims worker-invariant simulations:
// means for the point estimates, and a CI over the headline quantity.
// The per-simulation samples are index-seeded (rng.ReseedStream), so
// the result is bit-identical for every worker count. g is the
// request's effective (content-applied) graph.
func (e *Engine) estimateTier1(req EstimateRequest, g *graph.Graph, spec *modeSpec) (EstimateResult, error) {
	var spreadS, deltaS []float64
	var err error
	if spec.sim != nil {
		spreadS, deltaS, err = spec.sim.EstimateSamples(g, req.Seeds, req.Boost,
			tier1Sims, req.Seed, e.workersFor(req.Workers))
	} else {
		spreadS, deltaS, err = diffusion.EstimateSamples(g, req.Seeds, req.Boost, diffusion.Options{
			Sims: tier1Sims, Seed: req.Seed, Workers: e.workersFor(req.Workers),
		})
	}
	if err != nil {
		return EstimateResult{}, err
	}
	ss := stats.Summarize(spreadS)
	out := EstimateResult{Tier: 1, Spread: ss.Mean}
	headline, half := spreadS, ss.CI95()
	if len(req.Boost) > 0 {
		ds := stats.Summarize(deltaS)
		out.Boost = ds.Mean
		headline, half = deltaS, ds.CI95()
	}
	// In-place sort + QuantileSorted: the samples are query-local, so
	// the hot path takes the allocation-free median.
	sort.Float64s(headline)
	out.CI = &EstimateCI{Half: half, Median: stats.QuantileSorted(headline, 0.5), Sims: len(headline)}
	return out, nil
}

// calibrate is the first-contact pass for a MaxError request with no
// profile on file: run every admissible tier on this request's
// operands, time them, measure the cheap tiers against the exact
// answer, cache the profile for the snapshot, and serve the tier-2
// result — the only answer that honors an error target before any
// profile exists.
func (e *Engine) calibrate(ctx context.Context, spec *modeSpec, req EstimateRequest, rg *reqGraph, version uint64) (EstimateResult, error) {
	g2, err := rg.get()
	if err != nil {
		return EstimateResult{}, err
	}
	cal := &calibration{version: version}
	norm, tier0OK := spec.tier0Norms(g2)
	cal.tier0OK = tier0OK
	if norm != nil {
		// Copied, not aliased: the calibration outlives the pool state
		// backing the normalizers and is shared across queries.
		cal.norm = append([]float64(nil), norm...)
	}
	boosted := len(req.Boost) > 0

	var r0 EstimateResult
	if tier0OK {
		t := time.Now()
		r0 = estimateTier0(g2, req, cal.norm)
		cal.latMS[0] = msSince(t)
	}

	t := time.Now()
	r1, err := e.estimateTier1(req, g2, spec)
	if err != nil {
		return EstimateResult{}, err
	}
	cal.latMS[1] = msSince(t)

	t = time.Now()
	out, err := e.estimateTier2(ctx, spec, req)
	if err != nil {
		return out, err
	}
	cal.latMS[2] = msSince(t)

	if tier0OK {
		cal.relErr[0] = calSafety * relErrVs(r0, out, boosted)
	} else {
		// A declined closed-form tier can never fit an error target.
		cal.relErr[0] = math.Inf(1)
	}
	// Tier 1's profile also folds in its own CI half-width: a pass that
	// happened to land near the exact answer must not understate the
	// tier's intrinsic sampling noise.
	err1 := relErrVs(r1, out, boosted)
	if ciErr := r1.CI.Half / refScale(out, boosted); ciErr > err1 {
		err1 = ciErr
	}
	cal.relErr[1] = calSafety * err1

	e.calMu.Lock()
	e.cals[calKey(req.GraphID, spec.calID())] = cal
	e.calMu.Unlock()
	e.ctr.tierCalibrations.Add(1)

	out.Tier = 2
	out.ErrorTargetMet = true
	e.ctr.estimateTier2.Add(1)
	return out, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

// relErrVs is the relative disagreement between a cheap tier's answer
// and the exact one — the max over the quantities the request asked
// for, each against a denominator floored at 1 so near-zero exact
// values cannot blow the ratio up.
func relErrVs(got, exact EstimateResult, boosted bool) float64 {
	err := math.Abs(got.Spread-exact.Spread) / math.Max(1, math.Abs(exact.Spread))
	if boosted {
		if d := math.Abs(got.Boost-exact.Boost) / math.Max(1, math.Abs(exact.Boost)); d > err {
			err = d
		}
	}
	return err
}

// refScale is the headline quantity's magnitude, floored at 1.
func refScale(exact EstimateResult, boosted bool) float64 {
	v := exact.Spread
	if boosted {
		v = exact.Boost
	}
	return math.Max(1, math.Abs(v))
}
