package engine

// This file is the latency-tiered estimate read path. A request that
// sets MaxLatencyMS or MaxError is served by the cheapest of three
// estimators that satisfies its knobs:
//
//	tier 0 — closed-form one/two-hop approximation (internal/approx),
//	         straight off the CSR. Microseconds, no pool, no sampling,
//	         and no error guarantee of any kind.
//	tier 1 — small fixed-budget Monte-Carlo (tier1Sims worker-invariant
//	         simulations) with a normal-approximation 95% CI.
//	tier 2 — the full evaluation (estimateTier2): fresh 10k-sim Monte-
//	         Carlo for IC, the cached profile pool for LT.
//
// Tier choice needs to know how wrong the cheap tiers are *on this
// graph*, which cannot be derived a priori — so the first MaxError
// request against a snapshot runs a calibration pass: all three tiers
// once, timed, with the cheap tiers' relative error measured against
// the exact answer (inflated by a safety factor, since one operand
// pair is only a point probe of the error surface). The profile is
// cached per (graph id, mode) and keyed to the snapshot version, so
// uploads and patches invalidate it by construction.
//
// Requests that only cap latency never calibrate: with no error target
// there is nothing to trade off, and tier 0 is the one tier whose cost
// is known to be negligible without measuring anything — so they are
// served closed-form immediately, pool-free even on a cold engine.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/kboost/kboost/internal/approx"
	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/lt"
	"github.com/kboost/kboost/internal/stats"
)

// tier1Sims is tier 1's fixed simulation budget: large enough for a
// meaningful CI, ~40x cheaper than the 10k-sim tier-2 default.
const tier1Sims = 256

// calSafety inflates the calibrated tier errors: the calibration pass
// measures one (seeds, boost) operand pair, and other operands on the
// same graph can disagree more.
const calSafety = 2.0

// calibration is one (graph snapshot, mode)'s measured tier profile.
type calibration struct {
	version uint64
	// relErr[t] is tier t's observed relative error against the tier-2
	// answer, times calSafety. Tier 2 is implicitly 0.
	relErr [2]float64
	// latMS[t] is tier t's measured serving latency in milliseconds.
	latMS [3]float64
	// ltNorm caches the LT in-weight normalizers for tier 0 (mode "lt"
	// only), so calibrated tier-0 serves skip the O(N+M) recompute.
	ltNorm []float64
}

// calKey builds the calibration cache key. Graph ids cannot contain
// NUL (they arrive via URL paths / flag values), so the separator
// cannot collide.
func calKey(id, mode string) string { return id + "\x00" + mode }

// calibrationFor returns the cached calibration for (id, mode) if it
// matches the given snapshot version, else nil.
func (e *Engine) calibrationFor(id, mode string, version uint64) *calibration {
	e.calMu.Lock()
	defer e.calMu.Unlock()
	c := e.cals[calKey(id, mode)]
	if c == nil || c.version != version {
		return nil
	}
	return c
}

// dropCalibrations forgets both modes' calibrations for id. Stale
// entries are never served anyway (version mismatch); this is memory
// hygiene on delete/replace. Safe to call under Engine.mu — calMu is
// a leaf lock.
func (e *Engine) dropCalibrations(id string) {
	e.calMu.Lock()
	delete(e.cals, calKey(id, "ic"))
	delete(e.cals, calKey(id, "lt"))
	e.calMu.Unlock()
}

// validateEstimateNodes range-checks both node lists and rejects an
// empty seed set, mirroring what the tier-2 estimators enforce — the
// closed-form tier indexes masks directly and must never see a bad id.
func validateEstimateNodes(g *graph.Graph, seeds, boost []int32) error {
	if len(seeds) == 0 {
		return fmt.Errorf("engine: empty seed set")
	}
	for _, v := range seeds {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("engine: seed %d out of range [0,%d)", v, g.N())
		}
	}
	for _, v := range boost {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("engine: boost node %d out of range [0,%d)", v, g.N())
		}
	}
	return nil
}

// estimateTiered serves a request with at least one tiering knob set.
func (e *Engine) estimateTiered(req EstimateRequest) (EstimateResult, error) {
	g, version, err := e.snapshotFor(req.GraphID)
	if err != nil {
		return EstimateResult{}, err
	}
	if err := validateEstimateNodes(g, req.Seeds, req.Boost); err != nil {
		return EstimateResult{}, err
	}
	mode := req.Mode
	if mode == "" {
		mode = "ic"
	}

	cal := e.calibrationFor(req.GraphID, mode, version)
	if cal == nil {
		if req.MaxError <= 0 {
			// Latency cap only: tier 0 is the one tier known-cheap without
			// measurement, so serve it directly — no calibration, no pool.
			out := estimateTier0(g, req, e.tier0Norms(g, mode, nil))
			e.countTier(0, mode)
			return out, nil
		}
		return e.calibrate(req, g, version, mode)
	}

	switch tier := pickTier(cal, req); tier {
	case 0:
		out := estimateTier0(g, req, e.tier0Norms(g, mode, cal))
		e.countTier(0, mode)
		return out, nil
	case 1:
		out, err := e.estimateTier1(req, g, mode)
		if err != nil {
			return EstimateResult{}, err
		}
		e.countTier(1, mode)
		return out, nil
	default:
		out, err := e.estimateTier2(req)
		if err != nil {
			return out, err
		}
		out.Tier = 2
		e.ctr.estimateTier2.Add(1)
		return out, nil
	}
}

// pickTier chooses the cheapest tier consistent with the knobs. The
// error target picks the cheapest tier whose calibrated relative error
// fits (tier 2 is exact and always fits); tightening MaxError can
// therefore only move the choice to a more expensive tier — the
// monotonicity the property tests pin. The latency cap then degrades
// the choice downward: it is a hard budget, unlike the best-effort
// error target, so a tier that measured over it is never served even
// when that sacrifices the error target.
func pickTier(cal *calibration, req EstimateRequest) int {
	tier := 0
	if req.MaxError > 0 {
		switch {
		case cal.relErr[0] <= req.MaxError:
			tier = 0
		case cal.relErr[1] <= req.MaxError:
			tier = 1
		default:
			tier = 2
		}
	}
	if req.MaxLatencyMS > 0 {
		for tier > 0 && cal.latMS[tier] > req.MaxLatencyMS {
			tier--
		}
	}
	return tier
}

// countTier bumps the query counters for a tier-0/1 serve (the tier-2
// path counts itself inside the legacy estimators).
func (e *Engine) countTier(tier int, mode string) {
	e.ctr.estimateQueries.Add(1)
	if mode == "lt" {
		e.ctr.ltEstimateQueries.Add(1)
	}
	if tier == 0 {
		e.ctr.estimateTier0.Add(1)
	} else {
		e.ctr.estimateTier1.Add(1)
	}
}

// tier0Norms resolves the probability normalizers tier 0 needs: nil
// for IC (raw edge probabilities), the LT in-weight normalizers for
// "lt" — from the calibration cache when present, else an O(N+M)
// recompute off the CSR (still pool-free).
func (e *Engine) tier0Norms(g *graph.Graph, mode string, cal *calibration) []float64 {
	if mode != "lt" {
		return nil
	}
	if cal != nil && cal.ltNorm != nil {
		return cal.ltNorm
	}
	return lt.New(g).Norms()
}

// estimateTier0 answers closed-form: the Chung-Lee style two-hop
// approximation of the boosted spread, and its boosted-minus-base
// difference when the request carries a boost set.
func estimateTier0(g *graph.Graph, req EstimateRequest, norm []float64) EstimateResult {
	out := EstimateResult{Tier: 0}
	if len(req.Boost) > 0 {
		out.Spread, out.Boost = approx.TwoHopBoost(g, req.Seeds, req.Boost, norm)
	} else {
		out.Spread = approx.TwoHopSpread(g, req.Seeds, nil, norm)
	}
	return out
}

// estimateTier1 answers from tier1Sims worker-invariant simulations:
// means for the point estimates, and a CI over the headline quantity.
// The per-simulation samples are index-seeded (rng.ReseedStream), so
// the result is bit-identical for every worker count.
func (e *Engine) estimateTier1(req EstimateRequest, g *graph.Graph, mode string) (EstimateResult, error) {
	var spreadS, deltaS []float64
	var err error
	if mode == "lt" {
		spreadS, deltaS, err = lt.EstimateSamples(g, req.Seeds, req.Boost, lt.Options{
			Sims: tier1Sims, Seed: req.Seed, Workers: e.workersFor(req.Workers),
		})
	} else {
		spreadS, deltaS, err = diffusion.EstimateSamples(g, req.Seeds, req.Boost, diffusion.Options{
			Sims: tier1Sims, Seed: req.Seed, Workers: e.workersFor(req.Workers),
		})
	}
	if err != nil {
		return EstimateResult{}, err
	}
	ss := stats.Summarize(spreadS)
	out := EstimateResult{Tier: 1, Spread: ss.Mean}
	headline, half := spreadS, ss.CI95()
	if len(req.Boost) > 0 {
		ds := stats.Summarize(deltaS)
		out.Boost = ds.Mean
		headline, half = deltaS, ds.CI95()
	}
	// In-place sort + QuantileSorted: the samples are query-local, so
	// the hot path takes the allocation-free median.
	sort.Float64s(headline)
	out.CI = &EstimateCI{Half: half, Median: stats.QuantileSorted(headline, 0.5), Sims: len(headline)}
	return out, nil
}

// calibrate is the first-contact pass for a MaxError request with no
// profile on file: run every tier on this request's operands, time
// them, measure the cheap tiers against the exact answer, cache the
// profile for the snapshot, and serve the tier-2 result — the only
// answer that honors an error target before any profile exists.
func (e *Engine) calibrate(req EstimateRequest, g *graph.Graph, version uint64, mode string) (EstimateResult, error) {
	cal := &calibration{version: version}
	if mode == "lt" {
		// Copied, not aliased: the calibration outlives the Model built
		// here and is shared across queries.
		cal.ltNorm = append([]float64(nil), lt.New(g).Norms()...)
	}
	boosted := len(req.Boost) > 0

	t := time.Now()
	r0 := estimateTier0(g, req, cal.ltNorm)
	cal.latMS[0] = msSince(t)

	t = time.Now()
	r1, err := e.estimateTier1(req, g, mode)
	if err != nil {
		return EstimateResult{}, err
	}
	cal.latMS[1] = msSince(t)

	t = time.Now()
	out, err := e.estimateTier2(req)
	if err != nil {
		return out, err
	}
	cal.latMS[2] = msSince(t)

	cal.relErr[0] = calSafety * relErrVs(r0, out, boosted)
	// Tier 1's profile also folds in its own CI half-width: a pass that
	// happened to land near the exact answer must not understate the
	// tier's intrinsic sampling noise.
	err1 := relErrVs(r1, out, boosted)
	if ciErr := r1.CI.Half / refScale(out, boosted); ciErr > err1 {
		err1 = ciErr
	}
	cal.relErr[1] = calSafety * err1

	e.calMu.Lock()
	e.cals[calKey(req.GraphID, mode)] = cal
	e.calMu.Unlock()
	e.ctr.tierCalibrations.Add(1)

	out.Tier = 2
	e.ctr.estimateTier2.Add(1)
	return out, nil
}

func msSince(t time.Time) float64 { return float64(time.Since(t)) / float64(time.Millisecond) }

// relErrVs is the relative disagreement between a cheap tier's answer
// and the exact one — the max over the quantities the request asked
// for, each against a denominator floored at 1 so near-zero exact
// values cannot blow the ratio up.
func relErrVs(got, exact EstimateResult, boosted bool) float64 {
	err := math.Abs(got.Spread-exact.Spread) / math.Max(1, math.Abs(exact.Spread))
	if boosted {
		if d := math.Abs(got.Boost-exact.Boost) / math.Max(1, math.Abs(exact.Boost)); d > err {
			err = d
		}
	}
	return err
}

// refScale is the headline quantity's magnitude, floored at 1.
func refScale(exact EstimateResult, boosted bool) float64 {
	v := exact.Spread
	if boosted {
		v = exact.Boost
	}
	return math.Max(1, math.Abs(v))
}
