package engine

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/panicsafe"
)

// ServerOptions configures the HTTP front end.
type ServerOptions struct {
	// MaxWorkers caps the per-request worker budget; requests asking for
	// more are clamped (0 = no cap beyond the engine default).
	MaxWorkers int
	// MaxBodyBytes bounds the JSON query request bodies (default 8 MiB —
	// seed and boost lists can be large; graph uploads have their own
	// MaxUploadBytes cap).
	MaxBodyBytes int64
	// AuthToken, when non-empty, enables the mutating graph-lifecycle
	// endpoints (POST/PUT/DELETE /v1/graphs/{name}); clients must send
	// it as "Authorization: Bearer <token>". When empty, those
	// endpoints answer 403 — a daemon is never mutable by accident.
	AuthToken string
	// MaxUploadBytes bounds graph upload bodies (default 64 MiB);
	// larger uploads are rejected with 413.
	MaxUploadBytes int64
	// MaxGraphNodes caps the declared node count of uploaded snapshots
	// (default 1<<24), bounding the CSR allocation a hostile header can
	// demand. The edge cap follows from MaxUploadBytes (every edge
	// costs at least 8 input bytes in either codec).
	MaxGraphNodes int
	// SnapshotDir, when non-empty, persists every accepted upload as
	// <dir>/<name>.kbg (binary codec, atomic rename) and removes the
	// file on DELETE, so a restarted daemon can reload its live graphs
	// with Engine.LoadSnapshotDir.
	SnapshotDir string
	// MaxInFlightCold bounds concurrently admitted cold queries — ones
	// that must build a pool, run a tier calibration, or run a pool-free
	// full Monte-Carlo (identical concurrent queries do not count twice:
	// singleflight followers of an in-flight build ride the warm lane,
	// since they only wait). Cold work is the expensive, memory-hungry
	// kind, so its lane should be narrow — kboostd defaults it to
	// GOMAXPROCS. Overflow is shed with 429 and a Retry-After hint
	// (estimates degrade instead; see DisableDegrade). 0, the library
	// default, leaves the lane unbounded.
	MaxInFlightCold int
	// MaxInFlightWarm bounds concurrently admitted warm queries (served
	// from an already-built pool or closed-form). Warm work is cheap, so
	// its lane should be wide — kboostd defaults it to 16×GOMAXPROCS. 0,
	// the library default, leaves it unbounded.
	MaxInFlightWarm int
	// RetryAfterSeconds is the Retry-After hint on shed (429) responses
	// (default 1).
	RetryAfterSeconds int
	// DisableDegrade turns off the estimate pressure valve. By default
	// an estimate that would be shed is served degraded instead: the
	// cheapest tier its mode supports (closed-form two-hop, or tier 1's
	// fixed small sample budget for modes without a closed form), marked
	// "degraded": true — availability traded for fidelity. With
	// DisableDegrade estimates are shed with 429 like everything else.
	DisableDegrade bool
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	if o.MaxUploadBytes <= 0 {
		o.MaxUploadBytes = 64 << 20
	}
	if o.MaxGraphNodes <= 0 {
		o.MaxGraphNodes = 1 << 24
	}
	if o.RetryAfterSeconds <= 0 {
		o.RetryAfterSeconds = 1
	}
	return o
}

// DefaultMaxInFlightCold / DefaultMaxInFlightWarm are the admission
// bounds kboostd serves with unless overridden by flag: a cold lane as
// wide as the machine (pool builds saturate all cores anyway, more of
// them just thrash) and a generously wide warm lane.
func DefaultMaxInFlightCold() int { return runtime.GOMAXPROCS(0) }
func DefaultMaxInFlightWarm() int { return 16 * runtime.GOMAXPROCS(0) }

// Server is the HTTP front end of an Engine. It serves:
//
//	POST /v1/boost           — run PRR-Boost / PRR-Boost-LB / boosted-LT
//	                           greedy (mode "full", "lb" or "lt")
//	POST /v1/seeds           — classic IMM seed selection
//	POST /v1/estimate        — spread / boost estimation (mode "ic" runs
//	                           fresh Monte-Carlo; mode "lt" evaluates on
//	                           the cached LT profile pool)
//	GET  /v1/stats           — engine counters and uptime
//	GET  /v1/graphs          — list registered snapshots (id, version,
//	                           size)
//	GET  /v1/graphs/{name}   — one snapshot's descriptor
//	POST /v1/graphs/{name}   — upload a snapshot (text or binary graph
//	                           codec, auto-detected; bearer auth; PUT is
//	                           accepted as an alias)
//	DELETE /v1/graphs/{name} — remove a snapshot (bearer auth)
//	PATCH /v1/graphs/{name}/edges
//	                         — apply an edge delta (add/remove/reweight
//	                           batches, JSON or the KBD1 binary delta
//	                           codec, auto-detected; bearer auth). The
//	                           patched snapshot gets a bumped version
//	                           and its cached pools are repaired, not
//	                           invalidated.
//
// Query request and response bodies are JSON; upload bodies are the
// graph codecs themselves, decoded in a streaming pass. Errors are
// reported as {"error": "..."} with a matching status code: 400 for
// malformed or invalid requests, 401 for missing/bad auth, 403 when
// graph administration is disabled, 404 for unknown graph ids, 405 for
// wrong methods, 409 for patches raced by a concurrent replacement,
// 413 for oversized bodies.
type Server struct {
	engine *Engine
	opt    ServerOptions
	mux    *http.ServeMux
	start  time.Time
	// adminMu serializes the persist+install (and delete+remove) pair of
	// the mutating graph endpoints: without it, two concurrent uploads of
	// one name could interleave so that the snapshot on disk and the one
	// the registry serves are different — and a restart would silently
	// revive the loser. Admin traffic is rare; one mutex is plenty.
	adminMu sync.Mutex

	// coldSem / warmSem are the admission semaphores (nil = unbounded):
	// a query handler try-acquires the lane its request classifies into
	// and sheds (or degrades) on overflow instead of queueing — the
	// expensive pool builds behind a full lane would only pile up behind
	// the entry locks anyway, and a bounded 429 beats an unbounded queue
	// of doomed requests.
	coldSem chan struct{}
	warmSem chan struct{}

	// draining flips the /readyz probe to 503 so load balancers stop
	// routing new work here before http.Server.Shutdown starts refusing
	// connections; requests already in flight (and stragglers that still
	// arrive) are served normally.
	draining atomic.Bool
}

// NewServer wraps an Engine in the HTTP front end.
func NewServer(e *Engine, opt ServerOptions) *Server {
	s := &Server{engine: e, opt: opt.withDefaults(), mux: http.NewServeMux(), start: time.Now()}
	if s.opt.MaxInFlightCold > 0 {
		s.coldSem = make(chan struct{}, s.opt.MaxInFlightCold)
	}
	if s.opt.MaxInFlightWarm > 0 {
		s.warmSem = make(chan struct{}, s.opt.MaxInFlightWarm)
	}
	s.mux.HandleFunc("/v1/boost", s.handleBoost)
	s.mux.HandleFunc("/v1/seeds", s.handleSeeds)
	s.mux.HandleFunc("/v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/v1/graphs", s.handleGraphList)
	s.mux.HandleFunc("/v1/graphs/", s.handleGraph)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	return s
}

// ServeHTTP implements http.Handler, wrapping the mux in the panic
// containment middleware: a panic that escapes a handler (including one
// re-raised from a shard worker before panicsafe containment existed on
// that path) is converted into a JSON 500 and counted, instead of
// killing the connection — and, under http.Server, being the only
// goroutine that dies. http.ErrAbortHandler is the deliberate
// abort-this-response sentinel and is re-raised untouched.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		if rec := recover(); rec != nil {
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			s.engine.ctr.panicsRecovered.Add(1)
			// If the handler already started its response this write is a
			// no-op on the status line; the client sees a truncated body,
			// which is the best available outcome mid-stream.
			s.writeJSON(w, http.StatusInternalServerError,
				errorResponse{Error: fmt.Sprintf("internal error: recovered panic: %v", rec)})
		}
	}()
	s.mux.ServeHTTP(w, r)
}

// SetDraining flips the /readyz readiness probe (true ⇒ 503). Call with
// true before http.Server.Shutdown so load balancers drain this
// instance first; the liveness probe /healthz is unaffected.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}

// tryAcquire claims a slot in the warm or cold admission lane without
// blocking. ok == false means the lane is full; the caller sheds or
// degrades. release must be called exactly once when ok.
func (s *Server) tryAcquire(cold bool) (release func(), ok bool) {
	sem := s.warmSem
	if cold {
		sem = s.coldSem
	}
	if sem == nil {
		return func() {}, true
	}
	select {
	case sem <- struct{}{}:
		return func() { <-sem }, true
	default:
		return nil, false
	}
}

// shed rejects an unadmittable request with 429 and a Retry-After hint.
func (s *Server) shed(w http.ResponseWriter) {
	s.engine.ctr.requestsShed.Add(1)
	w.Header().Set("Retry-After", strconv.Itoa(s.opt.RetryAfterSeconds))
	s.writeJSON(w, http.StatusTooManyRequests,
		errorResponse{Error: "server is at capacity; retry shortly"})
}

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

// statusClientClosedRequest is the (nginx-convention) status for a
// request abandoned by its own client: the engine returned ctx.Err()
// because the connection went away, and nobody is reading the reply —
// but logs and middleware still deserve an honest status over a 400.
const statusClientClosedRequest = 499

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	var tooBig *http.MaxBytesError
	var panicked *panicsafe.Error
	switch {
	case errors.Is(err, ErrUnknownGraph):
		status = http.StatusNotFound
	case errors.Is(err, ErrGraphChanged):
		status = http.StatusConflict
	case errors.As(err, &tooBig):
		status = http.StatusRequestEntityTooLarge
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		status = statusClientClosedRequest
	case errors.As(err, &panicked):
		status = http.StatusInternalServerError
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decode parses a JSON request body strictly: unknown fields and
// trailing garbage are errors, so client typos fail loudly instead of
// silently running a default query.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decoding request: trailing data after JSON body")
	}
	return nil
}

// requirePost returns false (after replying 405) unless the request is
// a POST.
func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return false
	}
	return true
}

// clampWorkers applies the server-wide cap to a per-request budget. A
// request that omits workers (<= 0) falls through to the engine
// default rather than being forced up to the cap.
func (s *Server) clampWorkers(requested int) int {
	if s.opt.MaxWorkers > 0 && requested > s.opt.MaxWorkers {
		return s.opt.MaxWorkers
	}
	return requested
}

type boostResponse struct {
	BoostSet  []int32 `json:"boost_set"`
	EstBoost  float64 `json:"est_boost"`
	EstMu     float64 `json:"est_mu"`
	EstDelta  float64 `json:"est_delta,omitempty"`
	Samples   int     `json:"samples"`
	CacheHit  bool    `json:"cache_hit"`
	ResultHit bool    `json:"result_cached,omitempty"`
	Rebuilt   bool    `json:"rebuilt,omitempty"`
	NewPRR    int     `json:"new_prr_graphs"`
	PoolK     int     `json:"pool_k"`
	Boostable int     `json:"boostable_prr_graphs"`
	SampleMS  float64 `json:"sampling_ms"`
	SelectMS  float64 `json:"selection_ms"`
	// GraphVersion is the snapshot version the query computed against;
	// it bumps whenever the graph is re-uploaded.
	GraphVersion uint64 `json:"graph_version"`
}

func (s *Server) handleBoost(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req BoostRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	req.Workers = s.clampWorkers(req.Workers)
	release, ok := s.tryAcquire(!s.engine.boostWarm(req))
	if !ok {
		s.shed(w)
		return
	}
	defer release()
	res, err := s.engine.BoostContext(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, boostResponse{
		BoostSet:  res.BoostSet,
		EstBoost:  res.EstBoost,
		EstMu:     res.EstMu,
		EstDelta:  res.EstDelta,
		Samples:   res.Samples,
		CacheHit:  res.CacheHit,
		ResultHit: res.ResultCached,
		Rebuilt:   res.Rebuilt,
		NewPRR:    res.NewSamples,
		PoolK:     res.PoolK,
		Boostable: res.PoolStats.Boostable,
		SampleMS:  float64(res.SamplingTime.Microseconds()) / 1e3,
		SelectMS:  float64(res.SelectionTime.Microseconds()) / 1e3,

		GraphVersion: res.GraphVersion,
	})
}

type seedsResponse struct {
	Seeds        []int32 `json:"seeds"`
	EstInfluence float64 `json:"est_influence"`
	Samples      int     `json:"samples"`
}

func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req SeedsRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	req.Workers = s.clampWorkers(req.Workers)
	// Seed selection builds a per-request RR-set pool every time — there
	// is no warm case — so it always rides the cold lane.
	release, ok := s.tryAcquire(true)
	if !ok {
		s.shed(w)
		return
	}
	defer release()
	res, err := s.engine.SelectSeedsContext(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, seedsResponse{
		Seeds:        res.Seeds,
		EstInfluence: res.EstInfluence,
		Samples:      res.Samples,
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req EstimateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	req.Workers = s.clampWorkers(req.Workers)
	release, ok := s.tryAcquire(!s.engine.estimateWarm(req))
	if !ok {
		if s.opt.DisableDegrade {
			s.shed(w)
			return
		}
		// The estimate pressure valve: serve the cheapest tier the mode
		// supports instead of shedding. Degraded serves are pool-free and
		// closed-form or small-sample, so admitting them outside the lanes
		// cannot pile up expensive work.
		res, err := s.engine.EstimateDegraded(r.Context(), req)
		if err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, res)
		return
	}
	defer release()
	res, err := s.engine.EstimateContext(r.Context(), req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

// --- the graph lifecycle endpoints ---

// validGraphName restricts uploadable graph names to a path- and
// key-safe charset: letters, digits, '.', '_', '-', at most 64 bytes,
// and no leading dot — a dot-led name would persist as a hidden file,
// collide with path navigation, and could match the orphaned-temp-file
// sweep in LoadSnapshotDir.
func validGraphName(name string) bool {
	if name == "" || len(name) > 64 || name[0] == '.' {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// authorize gates the mutating graph endpoints behind the configured
// bearer token (constant-time comparison). Without a configured token
// the endpoints are disabled outright: 403, not an open server.
func (s *Server) authorize(w http.ResponseWriter, r *http.Request) bool {
	if s.opt.AuthToken == "" {
		s.writeJSON(w, http.StatusForbidden,
			errorResponse{Error: "graph administration disabled: server has no auth token"})
		return false
	}
	const prefix = "Bearer "
	auth := r.Header.Get("Authorization")
	if len(auth) < len(prefix) || !strings.EqualFold(auth[:len(prefix)], prefix) ||
		subtle.ConstantTimeCompare([]byte(auth[len(prefix):]), []byte(s.opt.AuthToken)) != 1 {
		w.Header().Set("WWW-Authenticate", `Bearer realm="kboost"`)
		s.writeJSON(w, http.StatusUnauthorized, errorResponse{Error: "missing or invalid bearer token"})
		return false
	}
	return true
}

func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	s.writeJSON(w, http.StatusOK, struct {
		Graphs []GraphInfo `json:"graphs"`
	}{Graphs: s.engine.GraphInfos()})
}

func (s *Server) handleGraph(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/graphs/")
	// The edge-delta subresource is routed before name validation so
	// "name/edges" is never mistaken for a (slash-invalid) graph name.
	if base, isEdges := strings.CutSuffix(name, "/edges"); isEdges {
		s.handleGraphEdges(w, r, base)
		return
	}
	if !validGraphName(name) {
		s.writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("invalid graph name %q (want 1-64 of [A-Za-z0-9._-])", name)})
		return
	}
	switch r.Method {
	case http.MethodGet:
		info, err := s.engine.GraphInfo(name)
		if err != nil {
			s.writeError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, info)
	case http.MethodPost, http.MethodPut:
		if s.authorize(w, r) {
			s.uploadGraph(w, r, name)
		}
	case http.MethodDelete:
		if s.authorize(w, r) {
			s.deleteGraph(w, name)
		}
	default:
		w.Header().Set("Allow", "GET, POST, PUT, DELETE")
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET, POST, PUT or DELETE"})
	}
}

// decodeGraphUpload reads a graph off the (size-capped) request body in
// one streaming pass, sniffing the binary magic to pick the codec.
func (s *Server) decodeGraphUpload(w http.ResponseWriter, r *http.Request) (*graph.Graph, error) {
	br := bufio.NewReader(http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes))
	lim := graph.ReadLimits{
		MaxNodes: s.opt.MaxGraphNodes,
		// Every edge costs >= 8 body bytes in the text codec (24 in the
		// binary one), so this cap never rejects an upload that fits the
		// body budget — it only fails absurd headers early.
		MaxEdges: int(s.opt.MaxUploadBytes/8) + 1,
	}
	if magic, _ := br.Peek(4); string(magic) == "KBG1" {
		return graph.ReadBinaryLimited(br, lim)
	}
	return graph.ReadTextLimited(br, lim)
}

type graphUploadResponse struct {
	GraphInfo
	Replaced bool `json:"replaced"`
	// InvalidatedPools counts the replaced snapshot's cached pools that
	// were swept by this upload.
	InvalidatedPools int `json:"invalidated_pools"`
}

func (s *Server) uploadGraph(w http.ResponseWriter, r *http.Request, name string) {
	g, err := s.decodeGraphUpload(w, r)
	if err != nil {
		s.writeError(w, fmt.Errorf("decoding graph upload: %w", err))
		return
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	if s.opt.SnapshotDir != "" {
		clash, err := SnapshotCaseClash(s.opt.SnapshotDir, name)
		if err != nil {
			s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
		if clash != "" {
			// On a case-insensitive filesystem the two ids would share one
			// snapshot file, and a restart would silently drop one graph.
			s.writeJSON(w, http.StatusConflict, errorResponse{
				Error: fmt.Sprintf("graph name %q collides with persisted snapshot %q (names must differ beyond letter case)", name, clash)})
			return
		}
		if err := SaveSnapshot(s.opt.SnapshotDir, name, g); err != nil {
			s.writeJSON(w, http.StatusInternalServerError, errorResponse{Error: err.Error()})
			return
		}
	}
	res, err := s.engine.UploadGraph(name, g)
	if err != nil {
		s.writeError(w, err)
		return
	}
	status := http.StatusCreated
	if res.Replaced {
		status = http.StatusOK
	}
	s.writeJSON(w, status, graphUploadResponse{
		GraphInfo:        GraphInfo{ID: name, Version: res.Version, Nodes: g.N(), Edges: g.M()},
		Replaced:         res.Replaced,
		InvalidatedPools: res.InvalidatedPools,
	})
}

type graphDeleteResponse struct {
	Graph            string `json:"graph"`
	Deleted          bool   `json:"deleted"`
	InvalidatedPools int    `json:"invalidated_pools"`
}

func (s *Server) deleteGraph(w http.ResponseWriter, name string) {
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	invalidated, err := s.engine.DeleteGraph(name)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.opt.SnapshotDir != "" {
		if err := RemoveSnapshot(s.opt.SnapshotDir, name); err != nil {
			// The snapshot is gone from the engine but its file remains;
			// be loud so the operator reconciles before the next boot.
			s.writeJSON(w, http.StatusInternalServerError,
				errorResponse{Error: fmt.Sprintf("graph %q deleted, but removing its persisted snapshot failed: %v", name, err)})
			return
		}
	}
	s.writeJSON(w, http.StatusOK, graphDeleteResponse{
		Graph: name, Deleted: true, InvalidatedPools: invalidated,
	})
}

// --- the edge-delta (graph patch) endpoint ---

// deltaEdgeJSON / deltaKeyJSON are the JSON spellings of one delta op.
type deltaEdgeJSON struct {
	From   int32   `json:"from"`
	To     int32   `json:"to"`
	P      float64 `json:"p"`
	PBoost float64 `json:"p_boost"`
}

type deltaKeyJSON struct {
	From int32 `json:"from"`
	To   int32 `json:"to"`
}

// edgeDeltaJSON is the JSON request body of PATCH
// /v1/graphs/{name}/edges; any of the three batches may be omitted.
type edgeDeltaJSON struct {
	Add      []deltaEdgeJSON `json:"add,omitempty"`
	Remove   []deltaKeyJSON  `json:"remove,omitempty"`
	Reweight []deltaEdgeJSON `json:"reweight,omitempty"`
}

func (j *edgeDeltaJSON) toDelta() *graph.EdgeDelta {
	d := &graph.EdgeDelta{}
	for _, e := range j.Add {
		d.Add = append(d.Add, graph.Edge{From: e.From, To: e.To, P: e.P, PBoost: e.PBoost})
	}
	for _, k := range j.Remove {
		d.Remove = append(d.Remove, graph.EdgeKey{From: k.From, To: k.To})
	}
	for _, e := range j.Reweight {
		d.Reweight = append(d.Reweight, graph.Edge{From: e.From, To: e.To, P: e.P, PBoost: e.PBoost})
	}
	return d
}

// decodeDeltaUpload reads an edge delta off the (size-capped) request
// body, sniffing the KBD1 magic to pick between the binary delta codec
// and strict JSON. Mutations share the upload body budget — deltas are
// admin traffic, not query traffic.
func (s *Server) decodeDeltaUpload(w http.ResponseWriter, r *http.Request) (*graph.EdgeDelta, error) {
	body := http.MaxBytesReader(w, r.Body, s.opt.MaxUploadBytes)
	br := bufio.NewReader(body)
	// Every binary delta op costs >= 8 body bytes (JSON far more), so
	// the cap only fails absurd headers early, never a body that fits.
	maxOps := int(s.opt.MaxUploadBytes/8) + 1
	if magic, _ := br.Peek(4); string(magic) == "KBD1" {
		return graph.ReadEdgeDeltaLimited(br, graph.ReadLimits{MaxEdges: maxOps})
	}
	var j edgeDeltaJSON
	dec := json.NewDecoder(br)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&j); err != nil {
		return nil, fmt.Errorf("decoding edge delta: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("decoding edge delta: trailing data after JSON body")
	}
	d := j.toDelta()
	if d.Ops() > maxOps {
		return nil, fmt.Errorf("edge delta has %d ops, limit %d", d.Ops(), maxOps)
	}
	return d, nil
}

func (s *Server) handleGraphEdges(w http.ResponseWriter, r *http.Request, name string) {
	if !validGraphName(name) {
		s.writeJSON(w, http.StatusBadRequest,
			errorResponse{Error: fmt.Sprintf("invalid graph name %q (want 1-64 of [A-Za-z0-9._-])", name)})
		return
	}
	if r.Method != http.MethodPatch {
		w.Header().Set("Allow", http.MethodPatch)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use PATCH"})
		return
	}
	if !s.authorize(w, r) {
		return
	}
	delta, err := s.decodeDeltaUpload(w, r)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.adminMu.Lock()
	defer s.adminMu.Unlock()
	res, err := s.engine.RepairGraph(name, delta)
	if err != nil {
		s.writeError(w, err)
		return
	}
	if s.opt.SnapshotDir != "" {
		// Persist after the install (the patched graph only exists once
		// the engine has accepted the delta). adminMu guarantees no other
		// admin op interleaves between install and persist; if the write
		// still fails, be loud so the operator reconciles before the next
		// boot revives the pre-patch snapshot.
		g, gerr := s.engine.Graph(name)
		if gerr == nil {
			gerr = SaveSnapshot(s.opt.SnapshotDir, name, g)
		}
		if gerr != nil {
			s.writeJSON(w, http.StatusInternalServerError, errorResponse{
				Error: fmt.Sprintf("graph %q patched to version %d, but persisting the snapshot failed: %v",
					name, res.Version, gerr)})
			return
		}
	}
	s.writeJSON(w, http.StatusOK, res)
}

type statsResponse struct {
	Stats
	GraphIDs      []string `json:"graph_ids"`
	UptimeSeconds float64  `json:"uptime_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	s.writeJSON(w, http.StatusOK, statsResponse{
		Stats:         s.engine.Stats(),
		GraphIDs:      s.engine.GraphIDs(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}
