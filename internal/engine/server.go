package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"
)

// ServerOptions configures the HTTP front end.
type ServerOptions struct {
	// MaxWorkers caps the per-request worker budget; requests asking for
	// more are clamped (0 = no cap beyond the engine default).
	MaxWorkers int
	// MaxBodyBytes bounds request bodies (default 8 MiB — seed and boost
	// lists can be large, graphs are never uploaded through this API).
	MaxBodyBytes int64
}

func (o ServerOptions) withDefaults() ServerOptions {
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 8 << 20
	}
	return o
}

// Server is the HTTP front end of an Engine. It serves:
//
//	POST /v1/boost    — run PRR-Boost / PRR-Boost-LB / boosted-LT
//	                    greedy (mode "full", "lb" or "lt"; cached pools)
//	POST /v1/seeds    — classic IMM seed selection
//	POST /v1/estimate — spread / boost estimation (mode "ic" runs fresh
//	                    Monte-Carlo; mode "lt" evaluates on the cached
//	                    LT profile pool and reports cache_hit)
//	GET  /v1/stats    — engine counters (incl. the lt_* family) and
//	                    uptime
//
// All request and response bodies are JSON. Errors are reported as
// {"error": "..."} with a matching status code: 400 for malformed or
// invalid requests, 404 for unknown graph ids, 405 for wrong methods.
type Server struct {
	engine *Engine
	opt    ServerOptions
	mux    *http.ServeMux
	start  time.Time
}

// NewServer wraps an Engine in the HTTP front end.
func NewServer(e *Engine, opt ServerOptions) *Server {
	s := &Server{engine: e, opt: opt.withDefaults(), mux: http.NewServeMux(), start: time.Now()}
	s.mux.HandleFunc("/v1/boost", s.handleBoost)
	s.mux.HandleFunc("/v1/seeds", s.handleSeeds)
	s.mux.HandleFunc("/v1/estimate", s.handleEstimate)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	if errors.Is(err, ErrUnknownGraph) {
		status = http.StatusNotFound
	}
	s.writeJSON(w, status, errorResponse{Error: err.Error()})
}

// decode parses a JSON request body strictly: unknown fields and
// trailing garbage are errors, so client typos fail loudly instead of
// silently running a default query.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, s.opt.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("decoding request: trailing data after JSON body")
	}
	return nil
}

// requirePost returns false (after replying 405) unless the request is
// a POST.
func (s *Server) requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use POST"})
		return false
	}
	return true
}

// clampWorkers applies the server-wide cap to a per-request budget. A
// request that omits workers (<= 0) falls through to the engine
// default rather than being forced up to the cap.
func (s *Server) clampWorkers(requested int) int {
	if s.opt.MaxWorkers > 0 && requested > s.opt.MaxWorkers {
		return s.opt.MaxWorkers
	}
	return requested
}

type boostResponse struct {
	BoostSet  []int32 `json:"boost_set"`
	EstBoost  float64 `json:"est_boost"`
	EstMu     float64 `json:"est_mu"`
	EstDelta  float64 `json:"est_delta,omitempty"`
	Samples   int     `json:"samples"`
	CacheHit  bool    `json:"cache_hit"`
	ResultHit bool    `json:"result_cached,omitempty"`
	Rebuilt   bool    `json:"rebuilt,omitempty"`
	NewPRR    int     `json:"new_prr_graphs"`
	PoolK     int     `json:"pool_k"`
	Boostable int     `json:"boostable_prr_graphs"`
	SampleMS  float64 `json:"sampling_ms"`
	SelectMS  float64 `json:"selection_ms"`
}

func (s *Server) handleBoost(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req BoostRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	req.Workers = s.clampWorkers(req.Workers)
	res, err := s.engine.Boost(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, boostResponse{
		BoostSet:  res.BoostSet,
		EstBoost:  res.EstBoost,
		EstMu:     res.EstMu,
		EstDelta:  res.EstDelta,
		Samples:   res.Samples,
		CacheHit:  res.CacheHit,
		ResultHit: res.ResultCached,
		Rebuilt:   res.Rebuilt,
		NewPRR:    res.NewSamples,
		PoolK:     res.PoolK,
		Boostable: res.PoolStats.Boostable,
		SampleMS:  float64(res.SamplingTime.Microseconds()) / 1e3,
		SelectMS:  float64(res.SelectionTime.Microseconds()) / 1e3,
	})
}

type seedsResponse struct {
	Seeds        []int32 `json:"seeds"`
	EstInfluence float64 `json:"est_influence"`
	Samples      int     `json:"samples"`
}

func (s *Server) handleSeeds(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req SeedsRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	req.Workers = s.clampWorkers(req.Workers)
	res, err := s.engine.SelectSeeds(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, seedsResponse{
		Seeds:        res.Seeds,
		EstInfluence: res.EstInfluence,
		Samples:      res.Samples,
	})
}

func (s *Server) handleEstimate(w http.ResponseWriter, r *http.Request) {
	if !s.requirePost(w, r) {
		return
	}
	var req EstimateRequest
	if err := s.decode(w, r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	req.Workers = s.clampWorkers(req.Workers)
	res, err := s.engine.Estimate(req)
	if err != nil {
		s.writeError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, res)
}

type statsResponse struct {
	Stats
	GraphIDs      []string `json:"graph_ids"`
	UptimeSeconds float64  `json:"uptime_seconds"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "use GET"})
		return
	}
	s.writeJSON(w, http.StatusOK, statsResponse{
		Stats:         s.engine.Stats(),
		GraphIDs:      s.engine.GraphIDs(),
		UptimeSeconds: time.Since(s.start).Seconds(),
	})
}
