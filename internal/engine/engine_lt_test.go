package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func testLTRequest() BoostRequest {
	return BoostRequest{
		GraphID: "g",
		Seeds:   []int32{0, 20, 40},
		K:       3,
		Mode:    "lt",
		Seed:    11,
		Workers: 2,
		Sims:    2000,
	}
}

func TestLTWarmQuerySkipsResampling(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testLTRequest()

	cold, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit || cold.ResultCached {
		t.Error("first LT query reported a cache hit")
	}
	if cold.NewSamples != req.Sims || cold.Samples != req.Sims {
		t.Errorf("cold LT query: NewSamples=%d Samples=%d, want %d profiles", cold.NewSamples, cold.Samples, req.Sims)
	}
	if len(cold.BoostSet) != req.K {
		t.Errorf("boost set has %d nodes, want %d", len(cold.BoostSet), req.K)
	}

	warm, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit || !warm.ResultCached {
		t.Errorf("warm identical LT query: CacheHit=%v ResultCached=%v, want both", warm.CacheHit, warm.ResultCached)
	}
	if warm.NewSamples != 0 {
		t.Errorf("warm LT query generated %d profiles, want 0", warm.NewSamples)
	}
	if fmt.Sprint(warm.BoostSet) != fmt.Sprint(cold.BoostSet) || warm.EstBoost != cold.EstBoost {
		t.Errorf("warm result differs: %v/%v vs %v/%v", warm.BoostSet, warm.EstBoost, cold.BoostSet, cold.EstBoost)
	}

	st := e.Stats()
	if st.LTBoostQueries != 2 || st.LTPoolMisses != 1 || st.LTPoolHits != 1 || st.LTResultHits != 1 {
		t.Errorf("lt stats = %+v, want 2 queries / 1 miss / 1 hit / 1 result hit", st)
	}
	if st.LTProfiles != int64(req.Sims) {
		t.Errorf("LTProfiles=%d, want %d", st.LTProfiles, req.Sims)
	}
	if st.BoostQueries != 2 || st.PoolMisses != 1 || st.PoolHits != 1 {
		t.Errorf("shared counters not bumped by LT traffic: %+v", st)
	}
	if st.PRRGenerated != 0 {
		t.Errorf("LT queries generated %d PRR-graphs", st.PRRGenerated)
	}
	if st.PoolBytes <= 0 {
		t.Errorf("PoolBytes=%d, want positive LT pool estimate", st.PoolBytes)
	}
}

func TestLTMoreSimsExtendsInPlace(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testLTRequest()
	req.Sims = 800
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	req.Sims = 2000
	grown, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !grown.CacheHit {
		t.Error("raised sim budget should still hit the cached pool")
	}
	if grown.NewSamples != 1200 {
		t.Errorf("NewSamples=%d, want the 1200 shortfall", grown.NewSamples)
	}
	if grown.ResultCached {
		t.Error("query that grew the pool reported a cached result")
	}
	if grown.Samples != 2000 {
		t.Errorf("Samples=%d, want 2000", grown.Samples)
	}
	st := e.Stats()
	if st.LTPoolExtensions != 1 || st.PoolExtensions != 1 {
		t.Errorf("extensions=%d/%d, want 1/1", st.LTPoolExtensions, st.PoolExtensions)
	}
	if st.LTProfiles != 2000 {
		t.Errorf("LTProfiles=%d, want 2000 cumulative", st.LTProfiles)
	}
	// A smaller budget after growth is fully warm.
	req.Sims = 500
	small, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !small.CacheHit || small.NewSamples != 0 {
		t.Errorf("smaller sims: CacheHit=%v NewSamples=%d, want warm hit", small.CacheHit, small.NewSamples)
	}
}

// TestLTDifferentKSharesPool pins the big structural difference from
// the PRR path: LT profiles are k-independent, so a larger k never
// rebuilds the pool.
func TestLTDifferentKSharesPool(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testLTRequest()
	req.K = 1
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	req.K = 5
	res, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.Rebuilt || res.NewSamples != 0 {
		t.Errorf("k=5 after k=1: CacheHit=%v Rebuilt=%v NewSamples=%d, want pure hit", res.CacheHit, res.Rebuilt, res.NewSamples)
	}
	if res.ResultCached {
		t.Error("different k hit the result cache")
	}
	if st := e.Stats(); st.PoolRebuilds != 0 || st.Pools != 1 {
		t.Errorf("rebuilds=%d pools=%d, want 0/1", st.PoolRebuilds, st.Pools)
	}
}

// TestLTSeparateFromPRRPools: the same (graph, seeds) under mode "lt"
// and mode "full" must live in distinct cache entries.
func TestLTSeparateFromPRRPools(t *testing.T) {
	e := newTestEngine(t, Options{})
	if _, err := e.Boost(testRequest()); err != nil {
		t.Fatal(err)
	}
	res, err := e.Boost(testLTRequest())
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("lt query hit the PRR pool")
	}
	if st := e.Stats(); st.Pools != 2 {
		t.Errorf("pools=%d, want separate PRR and LT pools", st.Pools)
	}
}

func TestLTEstimateSharesBoostPool(t *testing.T) {
	e := newTestEngine(t, Options{})
	boostRes, err := e.Boost(testLTRequest())
	if err != nil {
		t.Fatal(err)
	}
	est, err := e.Estimate(EstimateRequest{
		GraphID: "g", Seeds: []int32{0, 20, 40}, Boost: boostRes.BoostSet,
		Mode: "lt", Sims: 2000, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !est.CacheHit {
		t.Error("lt estimate after lt boost missed the shared pool")
	}
	if est.Spread < 3 {
		t.Errorf("spread %.2f below seed count", est.Spread)
	}
	if est.Boost < 0 {
		t.Errorf("boost %.4f negative (coupled profiles cannot go negative)", est.Boost)
	}
	// The pooled greedy's own estimate and the estimate endpoint
	// evaluate the same profiles: they must agree exactly.
	if est.Boost != boostRes.EstBoost {
		t.Errorf("estimate Δ̂=%v != selection Δ̂=%v on the same pool", est.Boost, boostRes.EstBoost)
	}
	st := e.Stats()
	if st.LTEstimateQueries != 1 || st.EstimateQueries != 1 {
		t.Errorf("estimate counters = %d/%d, want 1/1", st.LTEstimateQueries, st.EstimateQueries)
	}
	if st.LTPoolMisses != 1 {
		t.Errorf("LTPoolMisses=%d, want the single boost-side build", st.LTPoolMisses)
	}

	// An estimate that omits sims reuses the cached pool at its current
	// size — a read must not silently extend the pool to the default
	// budget.
	profiles := e.Stats().LTProfiles
	lazy, err := e.Estimate(EstimateRequest{
		GraphID: "g", Seeds: []int32{0, 20, 40}, Boost: []int32{7}, Mode: "lt",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !lazy.CacheHit {
		t.Error("sims-less estimate missed the warm pool")
	}
	if got := e.Stats().LTProfiles; got != profiles {
		t.Errorf("sims-less estimate grew the pool: %d -> %d profiles", profiles, got)
	}

	// Cold LT estimate on different seeds builds (and caches) a pool.
	cold, err := e.Estimate(EstimateRequest{
		GraphID: "g", Seeds: []int32{5, 25}, Boost: []int32{7}, Mode: "lt", Sims: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("cold lt estimate reported a cache hit")
	}
	if st := e.Stats(); st.Pools != 2 {
		t.Errorf("pools=%d, want the estimate-built pool cached", st.Pools)
	}
}

func TestLTValidation(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testLTRequest()
	req.K = 0
	if _, err := e.Boost(req); err == nil {
		t.Error("k=0 accepted")
	}
	req = testLTRequest()
	req.Seeds = nil
	if _, err := e.Boost(req); err == nil {
		t.Error("empty seed set accepted")
	}
	req = testLTRequest()
	req.Seeds = []int32{999}
	if _, err := e.Boost(req); err == nil {
		t.Error("out-of-range seed accepted")
	}
	// Duplicate seeds are rejected like the PRR path rejects them, so
	// [0,0,20] cannot cache a second pool next to [0,20].
	req = testLTRequest()
	req.Seeds = []int32{0, 0, 20}
	if _, err := e.Boost(req); err == nil {
		t.Error("duplicate seeds accepted")
	}
	if _, err := e.Estimate(EstimateRequest{GraphID: "g", Seeds: []int32{0, 0, 20}, Mode: "lt"}); err == nil {
		t.Error("duplicate seeds accepted by estimate")
	}
	if st := e.Stats(); st.Pools != 0 {
		t.Errorf("invalid LT queries created %d pools", st.Pools)
	}
	if _, err := e.Estimate(EstimateRequest{GraphID: "g", Seeds: []int32{0}, Boost: []int32{999}, Mode: "lt"}); err == nil {
		t.Error("out-of-range boost node accepted")
	}
	if _, err := e.Estimate(EstimateRequest{GraphID: "g", Seeds: []int32{0}, Mode: "turbo"}); err == nil {
		t.Error("unknown estimate mode accepted")
	} else if msg := fmt.Sprint(err); !strings.Contains(msg, "turbo") {
		t.Errorf("estimate mode error %q does not name the mode", msg)
	}
}

// TestLTConcurrentQueries exercises the LT warm path under -race:
// identical queries dedupe to one build, and mixed warm queries
// (alternating k, plus estimates) run concurrently under the entry's
// read lock.
func TestLTConcurrentQueries(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testLTRequest()
	cold, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	results := make([]*BoostResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req
			switch i % 3 {
			case 1:
				r.K = 2
			case 2:
				_, errs[i] = e.Estimate(EstimateRequest{
					GraphID: "g", Seeds: req.Seeds, Boost: []int32{7},
					Mode: "lt", Sims: req.Sims,
				})
				return
			}
			results[i], errs[i] = e.Boost(r)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if results[i] == nil {
			continue
		}
		if !results[i].CacheHit || results[i].NewSamples != 0 {
			t.Errorf("query %d was not fully warm: hit=%v new=%d", i, results[i].CacheHit, results[i].NewSamples)
		}
	}
	for i := 0; i < workers; i += 3 {
		if fmt.Sprint(results[i].BoostSet) != fmt.Sprint(cold.BoostSet) {
			t.Errorf("warm query %d returned %v, cold returned %v", i, results[i].BoostSet, cold.BoostSet)
		}
	}
}

// TestLTConcurrentColdQueriesShareOneBuild: the per-entry mutex must
// singleflight concurrent identical cold LT queries.
func TestLTConcurrentColdQueriesShareOneBuild(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testLTRequest()
	const workers = 6
	results := make([]*BoostResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Boost(req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if fmt.Sprint(results[i].BoostSet) != fmt.Sprint(results[0].BoostSet) {
			t.Errorf("query %d returned %v, query 0 returned %v", i, results[i].BoostSet, results[0].BoostSet)
		}
	}
	st := e.Stats()
	if st.LTPoolMisses != 1 {
		t.Errorf("LTPoolMisses=%d, want 1 (singleflight should dedupe the build)", st.LTPoolMisses)
	}
	if st.LTProfiles != int64(req.Sims) {
		t.Errorf("LTProfiles=%d, want one pool's worth (%d)", st.LTProfiles, req.Sims)
	}
}

// TestLTEvictionByBytes: LT pools are byte-accounted like PRR pools and
// evict under the same budget.
func TestLTEvictionByBytes(t *testing.T) {
	e := newTestEngine(t, Options{MaxPools: 100, MaxPoolBytes: 1})
	a := testLTRequest()
	b := testLTRequest()
	b.Seeds = []int32{5, 25}
	if _, err := e.Boost(a); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Boost(b); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Pools != 1 || st.Evictions != 1 {
		t.Errorf("pools=%d evictions=%d, want 1/1", st.Pools, st.Evictions)
	}
	res, err := e.Boost(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("query against a byte-evicted LT pool reported a cache hit")
	}
}
