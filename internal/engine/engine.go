// Package engine turns the one-shot kboost library into a long-lived
// query-serving system: it holds registered graph snapshots and a
// bounded LRU cache of PRR-graph pools, so that repeated boosting
// queries over the same (graph, seed set) amortize the expensive
// sampling phase instead of regenerating it from scratch.
//
// Pools are cached per (graph, seed set, mode). Each cached pool
// remembers the generation budget k it was built with; because a
// PRR-graph generated for budget k' is valid for any query with
// k <= k', a cached pool serves every smaller-or-equal k directly,
// while a larger k forces a rebuild (generation-time pruning depends
// on k, so growth cannot help there). A query that needs more samples
// — tighter ε, higher ℓ, or a raised sample cap — grows the cached
// pool in place via core.GrowPool: existing PRR-graphs are reused and
// only the shortfall is generated.
//
// Access to each cached pool is serialized by a per-entry mutex, which
// doubles as singleflight deduplication: when identical queries arrive
// concurrently, exactly one builds the pool and the rest block until
// it is ready, then reuse it.
package engine

import (
	"container/list"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/kboost/kboost/internal/core"
	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/prr"
	"github.com/kboost/kboost/internal/rrset"
)

// ErrUnknownGraph is returned (wrapped) when a request names a graph id
// that was never registered.
var ErrUnknownGraph = errors.New("unknown graph id")

// Options configures an Engine.
type Options struct {
	// MaxPools bounds the PRR-pool LRU cache (default 8, minimum 1).
	// Each pool can hold hundreds of thousands of compressed PRR-graphs,
	// so this is the engine's main memory knob.
	MaxPools int
	// Workers is the worker budget used for pool construction and for
	// requests that do not set their own (default GOMAXPROCS). A pool's
	// worker count is fixed at construction — per-worker RNG streams
	// make sampling deterministic for a fixed (seed, workers) pair — so
	// this, not the per-request budget, governs cached pools.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxPools < 1 {
		o.MaxPools = 8
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	return o
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Graphs int `json:"graphs"` // registered graph snapshots
	Pools  int `json:"pools"`  // currently cached PRR pools

	BoostQueries    int64 `json:"boost_queries"`
	SeedQueries     int64 `json:"seed_queries"`
	EstimateQueries int64 `json:"estimate_queries"`

	// PoolHits counts boost queries served from a cached pool (possibly
	// after an in-place extension); PoolMisses counts cold builds;
	// PoolRebuilds counts builds forced by a k larger than the cached
	// pool's generation budget.
	PoolHits     int64 `json:"pool_hits"`
	PoolMisses   int64 `json:"pool_misses"`
	PoolRebuilds int64 `json:"pool_rebuilds"`
	// PoolExtensions counts warm queries that grew a cached pool in
	// place (tighter ε / larger sample budget).
	PoolExtensions int64 `json:"pool_extensions"`
	Evictions      int64 `json:"evictions"`

	// PRRGenerated is the cumulative number of PRR-graphs generated
	// across all pools, including rebuilt and evicted ones. A warm-path
	// query leaves it unchanged.
	PRRGenerated int64 `json:"prr_generated"`
}

// Engine is a long-lived, concurrency-safe boosting service over a set
// of registered graph snapshots. The zero value is not usable; create
// one with New.
type Engine struct {
	opt Options

	mu     sync.Mutex
	graphs map[string]*graph.Graph
	pools  map[string]*poolEntry
	lru    *list.List // of *poolEntry; front = most recently used
	stats  Stats
}

// poolEntry is one cached pool. entry.mu serializes every use of the
// pool (build, extend, select): prr.Pool is not safe for concurrent
// mutation, and the serialization doubles as singleflight — concurrent
// identical queries block here while the first one builds.
type poolEntry struct {
	key  string
	elem *list.Element

	mu   sync.Mutex
	pool *prr.Pool // nil until the first query builds it
	// sized records the (K, ε, ℓ, MaxSamples) sizings already applied to
	// the current pool. Re-running the IMM sizing re-derives its OPT
	// lower bound from the now-larger pool and can land on a slightly
	// larger sample target, so without this memo a literally identical
	// repeat query would still generate a few samples. Reset on rebuild.
	sized map[string]bool
}

// New creates an Engine.
func New(opt Options) *Engine {
	return &Engine{
		opt:    opt.withDefaults(),
		graphs: make(map[string]*graph.Graph),
		pools:  make(map[string]*poolEntry),
		lru:    list.New(),
	}
}

// RegisterGraph adds a graph snapshot under id. Graphs are immutable
// once registered; re-registering an id is an error (evolving a graph
// means registering a new snapshot id, which naturally invalidates
// nothing — old pools stay keyed to the old id until evicted).
func (e *Engine) RegisterGraph(id string, g *graph.Graph) error {
	if id == "" {
		return fmt.Errorf("engine: empty graph id")
	}
	if g == nil {
		return fmt.Errorf("engine: nil graph for id %q", id)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.graphs[id]; dup {
		return fmt.Errorf("engine: graph id %q already registered", id)
	}
	e.graphs[id] = g
	e.stats.Graphs = len(e.graphs)
	return nil
}

// Graph returns the registered snapshot for id.
func (e *Engine) Graph(id string) (*graph.Graph, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	g, ok := e.graphs[id]
	if !ok {
		return nil, fmt.Errorf("engine: %w: %q", ErrUnknownGraph, id)
	}
	return g, nil
}

// GraphIDs lists the registered snapshot ids, sorted.
func (e *Engine) GraphIDs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, 0, len(e.graphs))
	for id := range e.graphs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := e.stats
	st.Pools = len(e.pools)
	return st
}

// BoostRequest is one boosting query against a registered graph.
type BoostRequest struct {
	GraphID string  `json:"graph"`
	Seeds   []int32 `json:"seeds"`
	K       int     `json:"k"`
	// Mode selects the algorithm: "full" (PRR-Boost, default) or "lb"
	// (PRR-Boost-LB, leaner pools, lower-bound greedy only).
	Mode       string  `json:"mode,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Ell        float64 `json:"ell,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
}

// BoostResult is a core.Result plus cache provenance.
type BoostResult struct {
	core.Result
	// CacheHit is true when the query was served from a cached pool
	// (NewSamples then reports the in-place extension, zero for a fully
	// warm query).
	CacheHit bool
	// Rebuilt is true when a cached pool existed but had to be rebuilt
	// because the query's K exceeded its generation budget.
	Rebuilt bool
	// NewSamples is the number of PRR-graphs generated by this query.
	NewSamples int
	// PoolK is the generation budget of the pool that served the query.
	PoolK int
}

func parseMode(s string) (prr.Mode, error) {
	switch s {
	case "", "full":
		return prr.ModeFull, nil
	case "lb":
		return prr.ModeLB, nil
	default:
		return 0, fmt.Errorf("engine: unknown mode %q (want \"full\" or \"lb\")", s)
	}
}

// canonicalSeeds returns a sorted copy of seeds so that permutations of
// the same seed set share one cache entry.
func canonicalSeeds(seeds []int32) []int32 {
	out := append([]int32(nil), seeds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func poolKey(graphID string, mode prr.Mode, seeds []int32) string {
	var b strings.Builder
	b.WriteString(graphID)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(mode)))
	for _, s := range seeds {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(int(s)))
	}
	return b.String()
}

// Boost answers a boosting query, reusing a cached PRR pool when one
// exists for the same (graph, seed set, mode) with a generation budget
// covering req.K. Selection always runs against the current pool, so a
// given query is deterministic for a fixed engine history.
func (e *Engine) Boost(req BoostRequest) (*BoostResult, error) {
	mode, err := parseMode(req.Mode)
	if err != nil {
		return nil, err
	}
	g, err := e.Graph(req.GraphID)
	if err != nil {
		return nil, err
	}
	seeds := canonicalSeeds(req.Seeds)
	opt := core.Options{
		K:          req.K,
		Epsilon:    req.Epsilon,
		Ell:        req.Ell,
		Seed:       req.Seed,
		Workers:    e.workersFor(req.Workers),
		MaxSamples: req.MaxSamples,
	}.WithDefaults()
	// Reject bad requests before touching the cache: a garbage query
	// must not bump the LRU or evict a warm pool.
	if err := core.Validate(g, seeds, opt); err != nil {
		return nil, err
	}
	key := poolKey(req.GraphID, mode, seeds)
	sizeKey := fmt.Sprintf("%d|%g|%g|%d", opt.K, opt.Epsilon, opt.Ell, opt.MaxSamples)

	e.mu.Lock()
	e.stats.BoostQueries++
	ent, ok := e.pools[key]
	if !ok {
		ent = &poolEntry{key: key}
		e.pools[key] = ent
		ent.elem = e.lru.PushFront(ent)
	} else {
		e.lru.MoveToFront(ent.elem)
	}
	e.evictLocked()
	e.mu.Unlock()

	ent.mu.Lock()
	defer ent.mu.Unlock()

	out := &BoostResult{}
	switch {
	case ent.pool == nil:
		pool, err := core.BuildPool(g, seeds, opt, mode)
		if err != nil {
			e.dropEntry(ent)
			return nil, err
		}
		ent.pool = pool
		ent.sized = map[string]bool{sizeKey: true}
		out.NewSamples = pool.Size()
		e.count(func(st *Stats) {
			st.PoolMisses++
			st.PRRGenerated += int64(out.NewSamples)
		})
	case ent.pool.K() < req.K:
		// Generation-time pruning depends on k; a bigger budget needs a
		// rebuild. The new pool serves this and every smaller k after it.
		// On failure keep the old pool — it still serves smaller k.
		pool, err := core.BuildPool(g, seeds, opt, mode)
		if err != nil {
			return nil, err
		}
		ent.pool = pool
		ent.sized = map[string]bool{sizeKey: true}
		out.Rebuilt = true
		out.NewSamples = pool.Size()
		e.count(func(st *Stats) {
			st.PoolRebuilds++
			st.PRRGenerated += int64(out.NewSamples)
		})
	default:
		var added int
		if !ent.sized[sizeKey] {
			if added, err = core.GrowPool(ent.pool, opt); err != nil {
				return nil, err
			}
			ent.sized[sizeKey] = true
		}
		out.CacheHit = true
		out.NewSamples = added
		e.count(func(st *Stats) {
			st.PoolHits++
			if added > 0 {
				st.PoolExtensions++
				st.PRRGenerated += int64(added)
			}
		})
	}

	res, err := core.BoostFromPool(ent.pool, opt)
	if err != nil {
		return nil, err
	}
	out.Result = *res
	out.PoolK = ent.pool.K()
	return out, nil
}

// workersFor resolves a per-request worker budget against the engine
// default.
func (e *Engine) workersFor(requested int) int {
	if requested > 0 {
		return requested
	}
	return e.opt.Workers
}

// count applies a mutation to the stats under the engine lock.
func (e *Engine) count(f func(*Stats)) {
	e.mu.Lock()
	f(&e.stats)
	e.mu.Unlock()
}

// dropEntry removes a failed entry from the cache so the next query
// retries the build instead of inheriting a nil pool.
func (e *Engine) dropEntry(ent *poolEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.pools[ent.key]; ok && cur == ent {
		delete(e.pools, ent.key)
		e.lru.Remove(ent.elem)
	}
}

// evictLocked trims the LRU to MaxPools. Callers hold e.mu. An evicted
// entry may still be in use by an in-flight query holding its own
// reference; it simply stops being findable and is freed when the
// query finishes.
func (e *Engine) evictLocked() {
	for len(e.pools) > e.opt.MaxPools {
		back := e.lru.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*poolEntry)
		e.lru.Remove(back)
		delete(e.pools, ent.key)
		e.stats.Evictions++
	}
}

// SeedsRequest asks for k influence-maximizing seeds on a registered
// graph (classic IMM, no boosting).
type SeedsRequest struct {
	GraphID    string  `json:"graph"`
	K          int     `json:"k"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Ell        float64 `json:"ell,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
}

// SelectSeeds runs IMM seed selection on a registered graph. RR-set
// pools are much cheaper than PRR pools and are not cached.
func (e *Engine) SelectSeeds(req SeedsRequest) (rrset.Result, error) {
	g, err := e.Graph(req.GraphID)
	if err != nil {
		return rrset.Result{}, err
	}
	e.count(func(st *Stats) { st.SeedQueries++ })
	return rrset.SelectSeeds(g, req.K, rrset.Options{
		Epsilon:    req.Epsilon,
		Ell:        req.Ell,
		Seed:       req.Seed,
		Workers:    e.workersFor(req.Workers),
		MaxSamples: req.MaxSamples,
	})
}

// EstimateRequest asks for Monte-Carlo estimates of the boosted spread
// σ_S(B) and the boost of influence Δ_S(B) on a registered graph.
type EstimateRequest struct {
	GraphID string  `json:"graph"`
	Seeds   []int32 `json:"seeds"`
	Boost   []int32 `json:"boost,omitempty"`
	Sims    int     `json:"sims,omitempty"`
	Seed    uint64  `json:"seed,omitempty"`
	Workers int     `json:"workers,omitempty"`
}

// EstimateResult reports the two Monte-Carlo estimates.
type EstimateResult struct {
	// Spread is σ_S(B), the expected boosted spread.
	Spread float64 `json:"spread"`
	// Boost is Δ_S(B), estimated with coupled possible worlds.
	Boost float64 `json:"boost"`
}

// Estimate runs Monte-Carlo estimation of spread and boost.
func (e *Engine) Estimate(req EstimateRequest) (EstimateResult, error) {
	g, err := e.Graph(req.GraphID)
	if err != nil {
		return EstimateResult{}, err
	}
	e.count(func(st *Stats) { st.EstimateQueries++ })
	opt := diffusion.Options{
		Sims:    req.Sims,
		Seed:    req.Seed,
		Workers: e.workersFor(req.Workers),
	}
	spread, err := diffusion.EstimateSpread(g, req.Seeds, req.Boost, opt)
	if err != nil {
		return EstimateResult{}, err
	}
	out := EstimateResult{Spread: spread}
	if len(req.Boost) > 0 {
		boost, err := diffusion.EstimateBoost(g, req.Seeds, req.Boost, opt)
		if err != nil {
			return EstimateResult{}, err
		}
		out.Boost = boost
	}
	return out, nil
}
