// Package engine turns the one-shot kboost library into a long-lived
// query-serving system: it holds registered graph snapshots and a
// bounded LRU cache of PRR-graph pools, so that repeated boosting
// queries over the same (graph, seed set) amortize the expensive
// sampling phase instead of regenerating it from scratch.
//
// Graphs mutate only by installing a fresh immutable snapshot under a
// monotonically increasing per-id version, and every pool cache key
// embeds the version it was built against. UploadGraph replaces the
// whole snapshot and sweeps the replaced version's pools and result
// caches; RepairGraph applies an edge delta and instead *migrates* the
// cached pools to the new version by repairing them in place (see
// repair.go). Either way a query can never mix sketches from two
// snapshot versions: in-flight queries keep the coherent snapshot they
// started with, and new queries only ever find pools keyed to the
// current version.
//
// Pools are cached per (graph snapshot, seed set, mode). Each cached
// pool remembers the generation budget k it was built with; because a
// PRR-graph generated for budget k' is valid for any query with
// k <= k', a cached pool serves every smaller-or-equal k directly,
// while a larger k forces a rebuild (generation-time pruning depends
// on k, so growth cannot help there). A query that needs more samples
// — tighter ε, higher ℓ, or a raised sample cap — grows the cached
// pool in place via core.GrowPool: existing PRR-graphs are reused and
// only the shortfall is generated.
//
// Access to each cached pool is serialized by a per-entry mutex, which
// doubles as singleflight deduplication: when identical queries arrive
// concurrently, exactly one builds the pool and the rest block until
// it is ready, then reuse it.
//
// The simulation modes ("lt", "sir", "kthresh" — every internal/model
// Model) are served from a second pool family under the same cache:
// pre-sampled possible-world pools behind the generic model.Pool
// interface. They share the LRU, the byte budget, the singleflight
// entry locks and the per-pool result cache, but differ structurally in
// one happy way: simulation profiles do not depend on the boost budget
// k, so a sim pool never rebuilds — any k is a warm query, and only a
// larger simulation budget grows it (in place). The mode registry
// (mode.go) resolves request modes and per-model knobs onto the two
// families, and the optional content modifier derives per-request
// graphs whose pools are cached under content-tagged keys.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/kboost/kboost/internal/approx"
	"github.com/kboost/kboost/internal/core"
	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/model"
	"github.com/kboost/kboost/internal/panicsafe"
	"github.com/kboost/kboost/internal/prr"
	"github.com/kboost/kboost/internal/rrset"
)

// ErrUnknownGraph is returned (wrapped) when a request names a graph id
// that was never registered (or has been deleted).
var ErrUnknownGraph = errors.New("unknown graph id")

// Options configures an Engine.
type Options struct {
	// MaxPools bounds the PRR-pool LRU cache by entry count (default 8,
	// minimum 1).
	MaxPools int
	// MaxPoolBytes bounds the cache by resident pool bytes, the
	// engine's main memory knob now that pool sizes vary by orders of
	// magnitude across graphs. Pool storage is arena-backed, so
	// MemoryEstimate is exact (backing-array lengths × element sizes:
	// graph arena + coverage index + selection index for PRR pools, flat
	// profile state + frontier index for LT pools) and pool_bytes /
	// retired_pool_bytes report real memory, not a per-edge guess.
	// Default 1 GiB. The most recently used pool is always retained,
	// even when it alone exceeds the budget.
	MaxPoolBytes int64
	// Workers is the worker budget used for pool construction and for
	// requests that do not set their own (default GOMAXPROCS). A pool's
	// worker count is fixed at construction — per-worker RNG streams
	// make sampling deterministic for a fixed (seed, workers) pair — so
	// this, not the per-request budget, governs cached pools.
	Workers int
	// RepairFallbackFraction is the touched-cost threshold for graph
	// patches (RepairGraph): a cached pool whose touched share of total
	// regeneration cost — Σ expansion size over touched PRR sketches, or
	// Σ cascade size over touched LT profiles, which is what resampling
	// time is actually proportional to — exceeds it is dropped instead
	// of repaired; at that point a cold rebuild is cheaper than a repair
	// that resamples almost everything and still rebuilds the indexes.
	// (Earlier versions weighted by touched *count*, which understates
	// the bill on dense supercritical graphs where the touched sketches
	// are exactly the expensive ones.) Default 0.5; values above 1 are
	// clamped to 1 (always repair, never fall back).
	RepairFallbackFraction float64
}

func (o Options) withDefaults() Options {
	if o.MaxPools < 1 {
		o.MaxPools = 8
	}
	if o.MaxPoolBytes <= 0 {
		o.MaxPoolBytes = 1 << 30
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.RepairFallbackFraction <= 0 {
		o.RepairFallbackFraction = 0.5
	}
	if o.RepairFallbackFraction > 1 {
		o.RepairFallbackFraction = 1
	}
	return o
}

// Stats is a snapshot of the engine's counters.
type Stats struct {
	Graphs int `json:"graphs"` // registered graph snapshots
	Pools  int `json:"pools"`  // currently cached PRR pools
	// PoolBytes is the summed resident size of the cached pools (the
	// quantity MaxPoolBytes evicts on) — exact arena byte counts since
	// pool storage went flat, so operators can size MaxPoolBytes against
	// real memory.
	PoolBytes int64 `json:"pool_bytes"`

	// GraphVersions maps each registered graph id to its current
	// snapshot version: 1 for the first upload, bumped by every
	// replacement. Versions are per-process; a restarted engine starts
	// over at 1.
	GraphVersions map[string]uint64 `json:"graph_versions,omitempty"`
	// UploadsTotal counts accepted graph snapshots — startup
	// registrations and live uploads alike. GraphDeletes counts
	// successful DeleteGraph calls.
	UploadsTotal int64 `json:"uploads_total"`
	GraphDeletes int64 `json:"graph_deletes"`
	// InvalidatedPools and RetiredPoolBytes account the pools swept
	// because an upload replaced (or a delete removed) their snapshot —
	// cumulative, so operators can see how much warm state graph churn
	// is throwing away.
	InvalidatedPools int64 `json:"invalidated_pools"`
	RetiredPoolBytes int64 `json:"retired_pool_bytes"`

	// GraphPatches counts accepted edge-delta patches (RepairGraph). The
	// four repair counters below account what happened to the patched
	// graph's cached pools: RepairSkippedRebuilds pools were repaired in
	// place (a cold rebuild avoided), at the cost of re-deriving
	// RepairedSketches PRR sketches and RepairedProfiles LT profiles;
	// RepairFallbackRebuilds pools were dropped because their touched
	// cost share exceeded RepairFallbackFraction, leaving the next query
	// to rebuild cold.
	GraphPatches           int64 `json:"graph_patches"`
	RepairedSketches       int64 `json:"repaired_sketches"`
	RepairedProfiles       int64 `json:"repaired_profiles"`
	RepairSkippedRebuilds  int64 `json:"repair_skipped_rebuilds"`
	RepairFallbackRebuilds int64 `json:"repair_fallback_rebuilds"`

	BoostQueries    int64 `json:"boost_queries"`
	SeedQueries     int64 `json:"seed_queries"`
	EstimateQueries int64 `json:"estimate_queries"`

	// EstimateTier0/1/2 break the estimate queries down by the tier that
	// served them: 0 = closed-form two-hop approximation, 1 =
	// small-sample Monte-Carlo with a CI, 2 = full evaluation (knobless
	// requests always count here). TierCalibrations counts per-snapshot
	// calibration passes, each of which ran all three tiers once to
	// measure the cheap tiers' error against the exact answer.
	EstimateTier0    int64 `json:"estimate_tier0"`
	EstimateTier1    int64 `json:"estimate_tier1"`
	EstimateTier2    int64 `json:"estimate_tier2"`
	TierCalibrations int64 `json:"tier_calibrations"`

	// PoolHits counts pool-backed queries (PRR and LT alike) served from
	// a cached pool (possibly after an in-place extension); PoolMisses
	// counts cold builds; PoolRebuilds counts builds forced by a k larger
	// than the cached pool's generation budget (PRR only — LT profiles
	// are k-independent and never rebuild).
	PoolHits     int64 `json:"pool_hits"`
	PoolMisses   int64 `json:"pool_misses"`
	PoolRebuilds int64 `json:"pool_rebuilds"`
	// PoolExtensions counts warm queries that grew a cached pool in
	// place (tighter ε / larger sample budget / more LT simulations).
	PoolExtensions int64 `json:"pool_extensions"`
	// ResultHits counts boost queries answered from the per-pool result
	// cache — identical warm queries that skipped selection entirely.
	ResultHits int64 `json:"result_hits"`
	Evictions  int64 `json:"evictions"`

	// PRRGenerated is the cumulative number of PRR-graphs generated
	// across all pools, including rebuilt and evicted ones. A warm-path
	// query leaves it unchanged.
	PRRGenerated int64 `json:"prr_generated"`

	// SimModes breaks the pooled simulation traffic down per mode
	// ("lt", "sir", "kthresh"): queries, their share of the pool cache
	// traffic, and the cumulative number of Monte-Carlo profiles
	// generated. A mode appears once it has served at least one query.
	SimModes map[string]SimModeStats `json:"sim_modes,omitempty"`

	// The lt_* counters mirror SimModes["lt"] — the boosted-LT path
	// predates the generic mode registry and dashboards already scrape
	// these names.
	LTBoostQueries    int64 `json:"lt_boost_queries"`
	LTEstimateQueries int64 `json:"lt_estimate_queries"`
	LTPoolHits        int64 `json:"lt_pool_hits"`
	LTPoolMisses      int64 `json:"lt_pool_misses"`
	LTPoolExtensions  int64 `json:"lt_pool_extensions"`
	LTResultHits      int64 `json:"lt_result_hits"`
	LTProfiles        int64 `json:"lt_profiles"`

	// The request-lifecycle counters. RequestsShed counts requests the
	// server's admission control rejected with 429 (never admitted, so
	// they appear in no per-query counter); RequestsCanceled counts
	// admitted requests abandoned because their context was canceled or
	// timed out mid-flight; PanicsRecovered counts panics contained by
	// the shard workers or the server middleware and converted into
	// errors instead of crashing the process; DegradedEstimates counts
	// estimate queries that admission pressure forced down to tier 0
	// (served with degraded: true instead of being shed).
	RequestsShed      int64 `json:"requests_shed"`
	RequestsCanceled  int64 `json:"requests_canceled"`
	PanicsRecovered   int64 `json:"panics_recovered"`
	DegradedEstimates int64 `json:"degraded_estimates"`
}

// counters is the engine's live counter set. Every field is atomic so
// the hot path (warm queries bumping hit counters) neither contends on
// nor races with Engine.mu; Stats() assembles a consistent-enough
// snapshot from atomic loads.
type counters struct {
	uploads          atomic.Int64
	deletes          atomic.Int64
	invalidatedPools atomic.Int64
	retiredPoolBytes atomic.Int64

	graphPatches     atomic.Int64
	repairedSketches atomic.Int64
	repairedProfiles atomic.Int64
	repairSkipped    atomic.Int64
	repairFallback   atomic.Int64

	boostQueries    atomic.Int64
	seedQueries     atomic.Int64
	estimateQueries atomic.Int64

	estimateTier0    atomic.Int64
	estimateTier1    atomic.Int64
	estimateTier2    atomic.Int64
	tierCalibrations atomic.Int64

	poolHits       atomic.Int64
	poolMisses     atomic.Int64
	poolRebuilds   atomic.Int64
	poolExtensions atomic.Int64
	resultHits     atomic.Int64
	evictions      atomic.Int64
	prrGenerated   atomic.Int64

	requestsShed      atomic.Int64
	requestsCanceled  atomic.Int64
	panicsRecovered   atomic.Int64
	degradedEstimates atomic.Int64
}

// snapshot is one immutable registered graph plus its version.
type snapshot struct {
	g       *graph.Graph
	version uint64
}

// Engine is a long-lived, concurrency-safe boosting service over a set
// of registered graph snapshots. The zero value is not usable; create
// one with New.
type Engine struct {
	opt Options

	mu     sync.Mutex
	graphs map[string]*snapshot // kboost:guarded-by mu
	// versions is the per-id version high-water mark. Unlike graphs it
	// survives DeleteGraph: if a deleted id could restart at version 1,
	// a pool built against the deleted snapshot by an in-flight query
	// would pass acquireEntry's version-currency check and be cached for
	// the unrelated new graph. Monotonicity across recreation keeps the
	// "no query ever mixes snapshots" invariant airtight.
	versions  map[string]uint64     // kboost:guarded-by mu
	pools     map[string]*poolEntry // kboost:guarded-by mu
	lru       *list.List            // of *poolEntry; front = most recently used // kboost:guarded-by mu
	poolBytes int64                 // summed ent.bytes of cached pools // kboost:guarded-by mu

	// cals caches per-(graph, mode) tier calibrations for the tiered
	// estimate path (see tier.go). calMu is a leaf lock: it is never
	// held while acquiring Engine.mu or an entry lock.
	calMu sync.Mutex
	cals  map[string]*calibration // kboost:guarded-by calMu

	ctr counters

	// simCtrs holds the per-mode counter blocks for the pooled
	// simulation family, created on first use. simCtrMu is a leaf lock
	// guarding only map access; the blocks themselves are atomic.
	simCtrMu sync.Mutex
	simCtrs  map[string]*simCounters // kboost:guarded-by simCtrMu
}

// poolEntry is one cached pool. entry.mu serializes pool *mutation*
// (build, rebuild, grow) against everything else, and doubles as
// singleflight — concurrent identical cold queries block here while the
// first one builds. Selection and estimation only read the pool, so
// they share an RLock: warm queries on the same pool run concurrently
// instead of serializing behind one mutex.
type poolEntry struct {
	key string
	// graphID is the registered graph the pool was built against;
	// UploadGraph/DeleteGraph sweep entries by it.
	graphID string
	// elem is nil for detached entries (see acquireEntry).
	elem *list.Element // kboost:guarded-by Engine.mu

	mu   sync.RWMutex
	pool *prr.Pool // nil until the first query builds it // kboost:guarded-by mu
	// sim is the possible-world profile pool for simulation-mode entries
	// ("lt", "sir", "kthresh"; an entry is either a PRR pool or a sim
	// pool, never both — the families live under distinct keys but share
	// the LRU, byte accounting and result cache machinery).
	sim model.Pool // kboost:guarded-by mu
	// derived marks a sim pool sampled from a content-derived graph
	// rather than the registered snapshot itself. Such pools are dropped
	// (not repaired) on graph patches: the patch delta describes the base
	// graph, and migrating worlds sampled under transformed probabilities
	// onto it would mix the two.
	derived bool // kboost:guarded-by mu
	// sized records the (K, ε, ℓ, MaxSamples) sizings already applied to
	// the current pool. Re-running the IMM sizing re-derives its OPT
	// lower bound from the now-larger pool and can land on a slightly
	// larger sample target, so without this memo a literally identical
	// repeat query would still generate a few samples. Reset on rebuild.
	sized map[string]bool // kboost:guarded-by mu

	// bytes is the pool's last MemoryEstimate, accounted into
	// Engine.poolBytes; guarded by Engine.mu, not entry.mu.
	bytes int64 // kboost:guarded-by Engine.mu

	// waiters counts requests currently blocked on (or about to block
	// on) mu. A canceled cold build consults it to decide between
	// handing the entry off to a blocked follower (who retries the
	// build under the same singleflight lock) and dropping the entry
	// outright; either way the cache never retains a half-built pool.
	waiters atomic.Int32
	// ready flips true after the first successful build and stays true
	// (repairs and extensions keep the pool warm). The server's
	// admission control reads it lock-free to classify an incoming
	// request as warm or cold.
	ready atomic.Bool

	// results caches final selection results keyed by (pool generation,
	// k): selection is a pure function of the pool contents, so an
	// identical warm query skips it entirely. resultsGen tracks the
	// generation the map is valid for; growth or rebuild invalidates by
	// generation mismatch / explicit clear.
	resMu      sync.Mutex
	results    map[resultKey]*core.Result // kboost:guarded-by resMu
	resultsGen uint64                     // kboost:guarded-by resMu
}

// resultKey identifies one cached selection result. cand is the
// resolved candidate-pool cap for LT selections (0 for PRR, whose
// selection has no candidate cap); pre is the request's tier-0
// pre-filter cap (0 when disabled). Both are part of the key because
// they change which candidates the greedy may pick.
type resultKey struct {
	gen  uint64
	k    int
	cand int
	pre  int
}

// maxCachedResults bounds a pool's result cache; distinct k values per
// generation rarely exceed a handful, this is a backstop.
const maxCachedResults = 128

// New creates an Engine.
func New(opt Options) *Engine {
	return &Engine{
		opt:      opt.withDefaults(),
		graphs:   make(map[string]*snapshot),
		versions: make(map[string]uint64),
		pools:    make(map[string]*poolEntry),
		lru:      list.New(),
		cals:     make(map[string]*calibration),
		simCtrs:  make(map[string]*simCounters),
	}
}

// RegisterGraph adds a graph snapshot under id (at version 1).
// Re-registering an id is an error; use UploadGraph to replace a live
// snapshot.
func (e *Engine) RegisterGraph(id string, g *graph.Graph) error {
	if err := validateUpload(id, g); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.graphs[id]; dup {
		return fmt.Errorf("engine: graph id %q already registered", id)
	}
	e.graphs[id] = &snapshot{g: g, version: e.nextVersionLocked(id)}
	e.ctr.uploads.Add(1)
	return nil
}

// nextVersionLocked advances and returns the version high-water mark
// for id. Callers hold e.mu.
func (e *Engine) nextVersionLocked(id string) uint64 {
	v := e.versions[id] + 1
	e.versions[id] = v
	return v
}

// UploadResult reports an accepted snapshot upload.
type UploadResult struct {
	// Version is the snapshot's version: 1 for a never-seen id,
	// previous+1 otherwise — monotonic per id for the life of the
	// process, even across DeleteGraph.
	Version uint64
	// Replaced is true when the upload superseded a live snapshot.
	Replaced bool
	// InvalidatedPools and RetiredBytes account the replaced version's
	// swept pool cache entries.
	InvalidatedPools int
	RetiredBytes     int64
}

// UploadGraph installs g as the current snapshot for id, creating the
// id or replacing the live snapshot under a bumped version. Replacement
// atomically sweeps every cached pool (and its result cache) built
// against the old version, so no future query can observe a stale
// sketch; queries already in flight keep the coherent old snapshot they
// started with.
func (e *Engine) UploadGraph(id string, g *graph.Graph) (UploadResult, error) {
	if err := validateUpload(id, g); err != nil {
		return UploadResult{}, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var res UploadResult
	if _, ok := e.graphs[id]; ok {
		res.Replaced = true
		res.InvalidatedPools, res.RetiredBytes = e.invalidateGraphLocked(id)
		e.dropCalibrations(id)
	}
	res.Version = e.nextVersionLocked(id)
	e.graphs[id] = &snapshot{g: g, version: res.Version}
	e.ctr.uploads.Add(1)
	return res, nil
}

// DeleteGraph removes the snapshot for id and sweeps its cached pools,
// returning how many were invalidated.
func (e *Engine) DeleteGraph(id string) (int, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.graphs[id]; !ok {
		return 0, fmt.Errorf("engine: %w: %q", ErrUnknownGraph, id)
	}
	delete(e.graphs, id)
	invalidated, _ := e.invalidateGraphLocked(id)
	e.dropCalibrations(id)
	e.ctr.deletes.Add(1)
	return invalidated, nil
}

func validateUpload(id string, g *graph.Graph) error {
	if id == "" {
		return fmt.Errorf("engine: empty graph id")
	}
	if g == nil {
		return fmt.Errorf("engine: nil graph for id %q", id)
	}
	return nil
}

// invalidateGraphLocked sweeps every cached pool built against id,
// clearing their result caches and byte accounting. Callers hold e.mu.
// An in-flight query holding an entry reference simply finishes against
// its detached pool; nothing new can find the entry afterwards.
func (e *Engine) invalidateGraphLocked(id string) (pools int, bytes int64) {
	for key, ent := range e.pools {
		if ent.graphID != id {
			continue
		}
		delete(e.pools, key)
		e.lru.Remove(ent.elem)
		e.poolBytes -= ent.bytes
		bytes += ent.bytes
		pools++
		ent.clearResults()
	}
	e.ctr.invalidatedPools.Add(int64(pools))
	e.ctr.retiredPoolBytes.Add(bytes)
	return pools, bytes
}

// snapshotFor returns the current snapshot for id. The (graph, version)
// pair is read atomically, so a query keys its pools to exactly the
// snapshot it computes against.
func (e *Engine) snapshotFor(id string) (*graph.Graph, uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	snap, ok := e.graphs[id]
	if !ok {
		return nil, 0, fmt.Errorf("engine: %w: %q", ErrUnknownGraph, id)
	}
	return snap.g, snap.version, nil
}

// Graph returns the registered snapshot for id.
func (e *Engine) Graph(id string) (*graph.Graph, error) {
	g, _, err := e.snapshotFor(id)
	return g, err
}

// GraphVersion returns the current snapshot version for id.
func (e *Engine) GraphVersion(id string) (uint64, error) {
	_, v, err := e.snapshotFor(id)
	return v, err
}

// GraphIDs lists the registered snapshot ids, sorted.
func (e *Engine) GraphIDs() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	ids := make([]string, 0, len(e.graphs))
	for id := range e.graphs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// GraphInfo describes one registered snapshot.
type GraphInfo struct {
	ID      string `json:"graph"`
	Version uint64 `json:"version"`
	Nodes   int    `json:"nodes"`
	Edges   int    `json:"edges"`
}

// GraphInfo returns the descriptor of the current snapshot for id.
func (e *Engine) GraphInfo(id string) (GraphInfo, error) {
	g, v, err := e.snapshotFor(id)
	if err != nil {
		return GraphInfo{}, err
	}
	return GraphInfo{ID: id, Version: v, Nodes: g.N(), Edges: g.M()}, nil
}

// GraphInfos lists the registered snapshots, sorted by id.
func (e *Engine) GraphInfos() []GraphInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	infos := make([]GraphInfo, 0, len(e.graphs))
	for id, snap := range e.graphs {
		infos = append(infos, GraphInfo{ID: id, Version: snap.version, Nodes: snap.g.N(), Edges: snap.g.M()})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].ID < infos[j].ID })
	return infos
}

// Stats returns a snapshot of the engine's counters.
func (e *Engine) Stats() Stats {
	st := Stats{
		UploadsTotal:     e.ctr.uploads.Load(),
		GraphDeletes:     e.ctr.deletes.Load(),
		InvalidatedPools: e.ctr.invalidatedPools.Load(),
		RetiredPoolBytes: e.ctr.retiredPoolBytes.Load(),

		GraphPatches:           e.ctr.graphPatches.Load(),
		RepairedSketches:       e.ctr.repairedSketches.Load(),
		RepairedProfiles:       e.ctr.repairedProfiles.Load(),
		RepairSkippedRebuilds:  e.ctr.repairSkipped.Load(),
		RepairFallbackRebuilds: e.ctr.repairFallback.Load(),

		BoostQueries:    e.ctr.boostQueries.Load(),
		SeedQueries:     e.ctr.seedQueries.Load(),
		EstimateQueries: e.ctr.estimateQueries.Load(),

		EstimateTier0:    e.ctr.estimateTier0.Load(),
		EstimateTier1:    e.ctr.estimateTier1.Load(),
		EstimateTier2:    e.ctr.estimateTier2.Load(),
		TierCalibrations: e.ctr.tierCalibrations.Load(),

		PoolHits:       e.ctr.poolHits.Load(),
		PoolMisses:     e.ctr.poolMisses.Load(),
		PoolRebuilds:   e.ctr.poolRebuilds.Load(),
		PoolExtensions: e.ctr.poolExtensions.Load(),
		ResultHits:     e.ctr.resultHits.Load(),
		Evictions:      e.ctr.evictions.Load(),
		PRRGenerated:   e.ctr.prrGenerated.Load(),

		RequestsShed:      e.ctr.requestsShed.Load(),
		RequestsCanceled:  e.ctr.requestsCanceled.Load(),
		PanicsRecovered:   e.ctr.panicsRecovered.Load(),
		DegradedEstimates: e.ctr.degradedEstimates.Load(),
	}
	e.simCtrMu.Lock()
	if len(e.simCtrs) > 0 {
		st.SimModes = make(map[string]SimModeStats, len(e.simCtrs))
		for name, sc := range e.simCtrs {
			st.SimModes[name] = SimModeStats{
				BoostQueries:    sc.boostQueries.Load(),
				EstimateQueries: sc.estimateQueries.Load(),
				PoolHits:        sc.poolHits.Load(),
				PoolMisses:      sc.poolMisses.Load(),
				PoolExtensions:  sc.poolExtensions.Load(),
				ResultHits:      sc.resultHits.Load(),
				Profiles:        sc.profiles.Load(),
			}
		}
	}
	e.simCtrMu.Unlock()
	// The legacy lt_* fields mirror SimModes["lt"] for existing scrapes.
	if ltStats, ok := st.SimModes["lt"]; ok {
		st.LTBoostQueries = ltStats.BoostQueries
		st.LTEstimateQueries = ltStats.EstimateQueries
		st.LTPoolHits = ltStats.PoolHits
		st.LTPoolMisses = ltStats.PoolMisses
		st.LTPoolExtensions = ltStats.PoolExtensions
		st.LTResultHits = ltStats.ResultHits
		st.LTProfiles = ltStats.Profiles
	}
	e.mu.Lock()
	st.Graphs = len(e.graphs)
	st.Pools = len(e.pools)
	st.PoolBytes = e.poolBytes
	st.GraphVersions = make(map[string]uint64, len(e.graphs))
	for id, snap := range e.graphs {
		st.GraphVersions[id] = snap.version
	}
	e.mu.Unlock()
	return st
}

// BoostRequest is one boosting query against a registered graph.
type BoostRequest struct {
	GraphID string  `json:"graph"`
	Seeds   []int32 `json:"seeds"`
	K       int     `json:"k"`
	// Mode selects the diffusion model and algorithm: "ic" (PRR-Boost,
	// the default; "" and the legacy "full" are aliases), "lb"
	// (PRR-Boost-LB, leaner pools, lower-bound greedy only), or one of
	// the pooled simulation models — "lt" (boosted Linear Threshold),
	// "sir" (boosted SIR epidemic), "kthresh" (k-threshold complex
	// contagion) — each a Monte-Carlo greedy over a cached pool of
	// pre-sampled possible worlds, heuristics with no approximation
	// guarantee (see internal/model).
	Mode       string  `json:"mode,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Ell        float64 `json:"ell,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
	// Sims is the Monte-Carlo profile budget for the simulation modes
	// (default 10000); a cached pool with fewer profiles is extended in
	// place. Ignored by the PRR modes.
	Sims int `json:"sims,omitempty"`
	// CandCap caps the greedy candidate pool for the simulation modes
	// (<= 0 picks the 4k default). Ignored by the PRR modes.
	CandCap int `json:"cand_cap,omitempty"`
	// Recovery is mode "sir"'s per-round recovery probability in (0, 1]
	// (0 picks the 0.5 default); rejected for every other mode.
	Recovery float64 `json:"recovery,omitempty"`
	// Threshold is mode "kthresh"'s activation threshold, >= 1 (0 picks
	// the default of 2); rejected for every other mode.
	Threshold int `json:"threshold,omitempty"`
	// Content, when set, applies the content-properties transmission
	// modifier: the query computes against a derived graph whose edge
	// probabilities are scaled by the item's virality and credibility,
	// and pools/results/calibrations are cached under content-tagged
	// keys so distinct content never shares sampled worlds.
	Content *model.Content `json:"content,omitempty"`
	// Prefilter, when > 0, restricts the greedy to the top-Prefilter
	// candidates of the closed-form two-hop ranking (internal/approx) —
	// the tier-0 estimator doubling as a CELF pre-filter. Selection gets
	// cheaper but inherits tier 0's lack of guarantees: nodes the
	// two-hop ranking scores at zero can never be picked. 0 (the
	// default) keeps the exact candidate handling, and results are
	// cached separately per Prefilter value.
	Prefilter int `json:"prefilter,omitempty"`
}

// BoostResult is a core.Result plus cache provenance.
type BoostResult struct {
	core.Result
	// CacheHit is true when the query was served from a cached pool
	// (NewSamples then reports the in-place extension, zero for a fully
	// warm query).
	CacheHit bool
	// ResultCached is true when even the selection phase was skipped:
	// an identical query (same pool contents, same k) had already run
	// and its result was cached.
	ResultCached bool
	// Rebuilt is true when a cached pool existed but had to be rebuilt
	// because the query's K exceeded its generation budget.
	Rebuilt bool
	// NewSamples is the number of samples generated by this query:
	// PRR-graphs for the PRR modes, threshold profiles for mode "lt"
	// (both surface as new_prr_graphs in the HTTP response).
	NewSamples int
	// PoolK is the generation budget of the pool that served the query.
	// Always 0 for mode "lt": LT profiles are k-independent, so an LT
	// pool has no generation budget and serves every k.
	PoolK int
	// GraphVersion is the snapshot version the query computed against.
	GraphVersion uint64
}

// canonicalSeeds returns a sorted copy of seeds so that permutations of
// the same seed set share one cache entry.
func canonicalSeeds(seeds []int32) []int32 {
	out := append([]int32(nil), seeds...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// poolKey builds a cache key from the graph id and snapshot version, a
// mode tag ("m0"/"m1" for the PRR materialization modes, "lt" for LT
// profile pools) and the canonical seed set. Embedding the version
// means a replaced snapshot's pools can never be found by queries
// against the new one, even if a sweep raced an in-flight insert.
func poolKey(graphID string, version uint64, modeTag string, seeds []int32) string {
	var b strings.Builder
	b.WriteString(graphID)
	b.WriteByte('@')
	b.WriteString(strconv.FormatUint(version, 10))
	b.WriteByte('|')
	b.WriteString(modeTag)
	for _, s := range seeds {
		b.WriteByte('|')
		b.WriteString(strconv.Itoa(int(s)))
	}
	return b.String()
}

// acquireEntry returns the cache entry for key, creating it if needed
// and bumping it in the LRU. If the snapshot the key was derived from
// is no longer current — an upload or delete raced this query between
// its snapshot read and here — the entry is created detached: the query
// still runs coherently against the snapshot it fetched, but nothing is
// inserted into the cache for a retired version.
func (e *Engine) acquireEntry(key, graphID string, version uint64) *poolEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ent, ok := e.pools[key]; ok {
		e.lru.MoveToFront(ent.elem)
		e.evictLocked()
		return ent
	}
	ent := &poolEntry{key: key, graphID: graphID}
	if snap, ok := e.graphs[graphID]; ok && snap.version == version {
		e.pools[key] = ent
		ent.elem = e.lru.PushFront(ent)
		e.evictLocked()
	}
	return ent
}

// boostWarm reports — best-effort, without blocking on any entry lock —
// whether a boost request would be served without paying for a cold
// build itself. An existing cache entry counts as warm even before its
// pool is ready: some other request is building it, and this one will
// only wait on the singleflight lock and then read — admitting it to
// the warm lane is what makes canceled-leader handoff possible at all.
// The server's admission control uses this to pick the request's lane;
// a stale or optimistic answer (e.g. a PRR pool about to be rebuilt for
// a larger K, or an entry evicted a microsecond later) misclassifies
// the queue the request waits in, never the result it gets. Invalid
// requests classify warm: their rejection is cheap and should never be
// shed as if it were expensive.
func (e *Engine) boostWarm(req BoostRequest) bool {
	spec, err := resolveSpec(req.Mode, model.Params{Recovery: req.Recovery, Threshold: req.Threshold}, req.Content)
	if err != nil {
		return true
	}
	_, version, err := e.snapshotFor(req.GraphID)
	if err != nil {
		return true
	}
	key := poolKey(req.GraphID, version, spec.tag(), canonicalSeeds(req.Seeds))
	e.mu.Lock()
	_, ok := e.pools[key]
	e.mu.Unlock()
	return ok
}

// estimateWarm is boostWarm for the estimate path. Pool-backed modes
// classify by pool readiness; the pool-free IC path classifies by what
// the request will actually run — closed-form for latency-capped
// requests, a full-tier calibration pass on first contact with an error
// target, and the full Monte-Carlo when knobless.
func (e *Engine) estimateWarm(req EstimateRequest) bool {
	spec, err := resolveSpec(req.Mode, model.Params{Recovery: req.Recovery, Threshold: req.Threshold}, req.Content)
	if err != nil {
		return true
	}
	if spec.sim == nil {
		if req.MaxError > 0 {
			_, version, err := e.snapshotFor(req.GraphID)
			if err != nil {
				return true
			}
			return e.calibrationFor(req.GraphID, spec.calID(), version) != nil
		}
		return req.MaxLatencyMS > 0
	}
	return e.boostWarm(BoostRequest{
		GraphID: req.GraphID, Seeds: req.Seeds, Mode: req.Mode,
		Recovery: req.Recovery, Threshold: req.Threshold, Content: req.Content,
	})
}

// Boost answers a boosting query, reusing a cached PRR pool when one
// exists for the same (graph snapshot, seed set, mode) with a
// generation budget covering req.K. Selection always runs against the
// current pool, so a given query is deterministic for a fixed engine
// history.
func (e *Engine) Boost(req BoostRequest) (*BoostResult, error) {
	return e.BoostContext(context.Background(), req)
}

// BoostContext is Boost with cooperative cancellation. Cancellation is
// polled at shard and pick boundaries in the sampling and selection
// loops, so a canceled cold build returns ctx.Err() within a few
// sketches. A canceled build never poisons the cache: the pool under
// construction is discarded whole (nothing half-merged), and the cache
// entry is either handed off to a follower already blocked on its
// singleflight lock or dropped — a retried identical request rebuilds
// from the same RNG streams and returns bit-identical results.
func (e *Engine) BoostContext(ctx context.Context, req BoostRequest) (*BoostResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, err := resolveSpec(req.Mode, model.Params{Recovery: req.Recovery, Threshold: req.Threshold}, req.Content)
	if err != nil {
		return nil, err
	}
	if spec.sim != nil {
		return e.boostSim(ctx, spec, req)
	}
	g, version, err := e.snapshotFor(req.GraphID)
	if err != nil {
		return nil, err
	}
	rg := &reqGraph{base: g, content: spec.content}
	seeds := canonicalSeeds(req.Seeds)
	opt := core.Options{
		K:          req.K,
		Epsilon:    req.Epsilon,
		Ell:        req.Ell,
		Seed:       req.Seed,
		Workers:    e.workersFor(req.Workers),
		MaxSamples: req.MaxSamples,
	}.WithDefaults()
	// Reject bad requests before touching the cache: a garbage query
	// must not bump the LRU or evict a warm pool.
	if err := core.Validate(g, seeds, opt); err != nil {
		return nil, err
	}
	if err := validatePrefilter(req.Prefilter, opt.K); err != nil {
		return nil, err
	}
	pre := 0
	if req.Prefilter > 0 {
		// Tier-0 pre-filter: the Δ̂ greedy only considers the two-hop
		// ranking's shortlist. Deterministic in (graph, seeds, cap), so
		// the result cache can key on the cap alone.
		g2, err := rg.get()
		if err != nil {
			return nil, err
		}
		if cands := approx.BoostCandidates(g2, seeds, req.Prefilter, nil); len(cands) >= req.Prefilter {
			opt.Candidates = cands
			pre = req.Prefilter
		}
		// A shorter shortlist means the two-hop ranking ran out of nodes
		// with any boostable path from the seeds: restricting the greedy
		// to it would silently degrade (and cache!) the result, so fall
		// back to unrestricted selection — pre stays 0, sharing the
		// exact queries' cache slot.
	}
	key := poolKey(req.GraphID, version, spec.tag(), seeds)
	sizeKey := fmt.Sprintf("%d|%g|%g|%d", opt.K, opt.Epsilon, opt.Ell, opt.MaxSamples)

	e.ctr.boostQueries.Add(1)
	ent := e.acquireEntry(key, req.GraphID, version)

	out := &BoostResult{GraphVersion: version}

	// Fast path: a fully warm entry — pool built, budget covers K, this
	// exact sizing already applied — needs only read access. Taking the
	// read lock lets concurrent warm queries on the same pool select in
	// parallel instead of serializing.
	rlockEntry(ent)
	if ent.pool != nil && ent.pool.K() >= req.K && ent.sized[sizeKey] {
		defer ent.mu.RUnlock()
		out.CacheHit = true
		e.ctr.poolHits.Add(1)
		return e.finishBoost(ctx, ent, out, opt, pre)
	}
	ent.mu.RUnlock()

	lockEntry(ent)
	if err := ctx.Err(); err != nil {
		// Canceled while blocked on the singleflight lock: nothing was
		// built on our behalf, so just walk away. The entry belongs to
		// whoever is building (or will build) under it.
		ent.mu.Unlock()
		return nil, e.noteRequestErr(err)
	}
	switch {
	case ent.pool == nil:
		g2, err := rg.get()
		if err != nil {
			e.abandonColdBuild(ent)
			return nil, err
		}
		pool, err := core.BuildPoolContext(ctx, g2, seeds, opt, spec.prrMode)
		if err != nil {
			e.abandonColdBuild(ent)
			return nil, e.noteRequestErr(err)
		}
		ent.pool = pool
		ent.derived = !spec.content.Identity()
		ent.sized = map[string]bool{sizeKey: true}
		ent.ready.Store(true)
		out.NewSamples = pool.Size()
		e.ctr.poolMisses.Add(1)
		e.ctr.prrGenerated.Add(int64(out.NewSamples))
	case ent.pool.K() < req.K:
		// Generation-time pruning depends on k; a bigger budget needs a
		// rebuild. The new pool serves this and every smaller k after it.
		// On failure keep the old pool — it still serves smaller k.
		g2, err := rg.get()
		if err != nil {
			ent.mu.Unlock()
			return nil, err
		}
		pool, err := core.BuildPoolContext(ctx, g2, seeds, opt, spec.prrMode)
		if err != nil {
			ent.mu.Unlock()
			return nil, e.noteRequestErr(err)
		}
		ent.pool = pool
		ent.derived = !spec.content.Identity()
		ent.sized = map[string]bool{sizeKey: true}
		ent.clearResults() // a rebuilt pool may repeat generation numbers
		out.Rebuilt = true
		out.NewSamples = pool.Size()
		e.ctr.poolRebuilds.Add(1)
		e.ctr.prrGenerated.Add(int64(out.NewSamples))
	default:
		// Another query raced us here and finished the sizing between the
		// read and write locks; or this sizing still needs a growth pass.
		// A failed growth (canceled or faulted) merges nothing — the pool
		// keeps serving its current sizings, so the entry stays.
		var added int
		if !ent.sized[sizeKey] {
			if added, err = core.GrowPoolContext(ctx, ent.pool, opt); err != nil {
				ent.mu.Unlock()
				return nil, e.noteRequestErr(err)
			}
			ent.sized[sizeKey] = true
		}
		out.CacheHit = true
		out.NewSamples = added
		e.ctr.poolHits.Add(1)
		if added > 0 {
			e.ctr.poolExtensions.Add(1)
			e.ctr.prrGenerated.Add(int64(added))
		}
	}
	e.accountBytes(ent, ent.pool.MemoryEstimate())
	// Downgrade to a read lock for selection. Another query may grow the
	// pool in the gap; selection then simply runs against the larger
	// pool, which is the same behavior concurrent queries always had.
	ent.mu.Unlock()
	ent.mu.RLock()
	defer ent.mu.RUnlock()
	return e.finishBoost(ctx, ent, out, opt, pre)
}

// lockEntry acquires ent.mu for writing while counting the caller in
// ent.waiters for the duration of the wait, so a failing leader can see
// whether a follower is poised to take over the entry.
// kboost:locks mu
func lockEntry(ent *poolEntry) {
	ent.waiters.Add(1)
	ent.mu.Lock()
	ent.waiters.Add(-1)
}

// rlockEntry is lockEntry for the warm fast paths. Readers must be
// counted too: a follower that arrives while a leader is building
// blocks in this RLock, and if the leader's build is then canceled it
// must see the follower and hand the entry off instead of dropping it —
// the follower falls through to the write lock and runs the cold build
// itself, keeping the entry (and the result) cached. Two uncontended
// atomic adds on the warm path; invisible next to selection.
// kboost:rlocks mu
func rlockEntry(ent *poolEntry) {
	ent.waiters.Add(1)
	ent.mu.RLock()
	ent.waiters.Add(-1)
}

// abandonColdBuild releases an entry whose cold build did not complete
// (canceled, faulted, or panicked). The entry holds no pool, so it must
// not stay in the cache looking warm: if followers are blocked on the
// singleflight lock the entry is handed off — the next follower finds
// pool == nil and runs the cold build itself, exactly the path it would
// have taken had it arrived first — otherwise the entry is dropped.
// Either way the cache never retains a half-built pool. Called with
// ent.mu held for writing; always unlocks it.
func (e *Engine) abandonColdBuild(ent *poolEntry) {
	handoff := ent.waiters.Load() > 0
	ent.mu.Unlock()
	if !handoff {
		e.dropEntry(ent)
	}
}

// noteRequestErr classifies a request-path failure into the lifecycle
// counters: context cancellations and deadline expiries bump
// requests_canceled; contained shard-worker panics bump
// panics_recovered and are wrapped so callers see an internal error
// rather than a crash. Other errors pass through unchanged.
func (e *Engine) noteRequestErr(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		e.ctr.requestsCanceled.Add(1)
		return err
	}
	var pe *panicsafe.Error
	if errors.As(err, &pe) {
		e.ctr.panicsRecovered.Add(1)
		return fmt.Errorf("engine: internal error: %w", err)
	}
	return err
}

// validatePrefilter rejects a pre-filter cap smaller than the boost
// budget: the shortlist could never fill the requested k, so the query
// would silently return (and cache) a degraded result. 0 disables the
// pre-filter and is always valid.
func validatePrefilter(prefilter, k int) error {
	if prefilter > 0 && prefilter < k {
		return fmt.Errorf("engine: prefilter %d is smaller than k=%d — the shortlist cannot fill the boost set (raise prefilter or drop it)", prefilter, k)
	}
	return nil
}

// finishBoost runs (or recalls) the selection phase for a ready pool.
// Callers hold ent.mu.RLock; ent.pool is immutable for the duration.
// kboost:holds mu
func (e *Engine) finishBoost(ctx context.Context, ent *poolEntry, out *BoostResult, opt core.Options, pre int) (*BoostResult, error) {
	pool := ent.pool
	key := resultKey{gen: pool.Generation(), k: opt.K, pre: pre}

	ent.resMu.Lock()
	if ent.resultsGen != key.gen {
		ent.results, ent.resultsGen = nil, key.gen
	}
	cached := ent.results[key]
	ent.resMu.Unlock()
	if cached != nil {
		out.Result = copyResult(cached)
		out.ResultCached = true
		out.PoolK = pool.K()
		e.ctr.resultHits.Add(1)
		return out, nil
	}

	res, err := core.BoostFromPoolContext(ctx, pool, opt)
	if err != nil {
		return nil, e.noteRequestErr(err)
	}
	ent.resMu.Lock()
	if ent.resultsGen == key.gen && len(ent.results) < maxCachedResults {
		if ent.results == nil {
			ent.results = make(map[resultKey]*core.Result)
		}
		ent.results[key] = res
	}
	ent.resMu.Unlock()

	out.Result = copyResult(res)
	out.PoolK = pool.K()
	return out, nil
}

// copyResult returns res with its slices copied, so callers (and later
// cache hits) cannot corrupt each other through shared backing arrays.
func copyResult(res *core.Result) core.Result {
	out := *res
	out.BoostSet = append([]int32(nil), res.BoostSet...)
	out.BoostSetMu = append([]int32(nil), res.BoostSetMu...)
	out.BoostSetDelta = append([]int32(nil), res.BoostSetDelta...)
	return out
}

// clearResults empties the result cache; called on rebuild while the
// caller holds ent.mu for writing, and on snapshot invalidation under
// Engine.mu.
func (ent *poolEntry) clearResults() {
	ent.resMu.Lock()
	ent.results, ent.resultsGen = nil, 0
	ent.resMu.Unlock()
}

// --- the pooled simulation serving path ("lt", "sir", "kthresh") ---

// defaultSimProfiles is the Monte-Carlo profile budget when a request
// does not set one (matching lt.Options' historical default).
const defaultSimProfiles = 10000

// validateSimBoost rejects bad simulation-mode boost queries before
// they can touch the cache.
func validateSimBoost(g *graph.Graph, seeds []int32, k int) error {
	if k < 1 {
		return fmt.Errorf("engine: k=%d must be >= 1", k)
	}
	return validateSimSeeds(g, seeds)
}

// validateSimSeeds checks a canonical (sorted) seed set: non-empty, in
// range, and free of duplicates — rejected like the PRR path does, so
// two spellings of one seed set cannot fragment the pool cache.
func validateSimSeeds(g *graph.Graph, seeds []int32) error {
	if len(seeds) == 0 {
		return fmt.Errorf("engine: empty seed set")
	}
	for i, v := range seeds {
		if v < 0 || int(v) >= g.N() {
			return fmt.Errorf("engine: seed %d out of range [0,%d)", v, g.N())
		}
		if i > 0 && seeds[i-1] == v {
			return fmt.Errorf("engine: duplicate seed %d", v)
		}
	}
	return nil
}

// boostSim answers a simulation-mode boosting query from the cached
// profile pool for (graph snapshot, mode spec, seed set): warm queries
// reuse (and, when the request asks for more simulations, extend in
// place) the pool's pre-sampled possible worlds, and identical repeat
// queries are answered from the generation-keyed result cache without
// running selection at all. Sim pools have no generation budget —
// profiles are k-independent — so unlike the PRR path there is no
// rebuild case. The profile RNG seed is fixed at pool construction; a
// later query's Seed does not re-sample a cached pool (register a new
// query with different seeds, or rely on eviction, to draw fresh
// worlds). simAcquire returns holding ent.mu.RLock, which covers the
// ent.sim reads below.
// kboost:holds mu
func (e *Engine) boostSim(ctx context.Context, spec *modeSpec, req BoostRequest) (*BoostResult, error) {
	g, version, err := e.snapshotFor(req.GraphID)
	if err != nil {
		return nil, err
	}
	rg := &reqGraph{base: g, content: spec.content}
	seeds := canonicalSeeds(req.Seeds)
	if err := validateSimBoost(g, seeds, req.K); err != nil {
		return nil, err
	}
	if err := validatePrefilter(req.Prefilter, req.K); err != nil {
		return nil, err
	}
	sc := e.simCtr(spec.name)
	e.ctr.boostQueries.Add(1)
	sc.boostQueries.Add(1)
	// A boost query's simulation budget is a quality floor, so an
	// omitted Sims means the full default — unlike estimates, which
	// reuse a cached pool lazily at whatever size it has.
	if req.Sims <= 0 {
		req.Sims = defaultSimProfiles
	}
	ent, hit, added, err := e.simAcquire(ctx, spec, sc, req, rg, version, seeds)
	if err != nil {
		return nil, err
	}
	defer ent.mu.RUnlock()
	out := &BoostResult{CacheHit: hit, NewSamples: added, GraphVersion: version}
	if req.Prefilter > 0 {
		// Tier-0 pre-filter: rank candidates with the closed-form two-hop
		// score under the pool's model normalizers instead of the model's
		// default ranking. CandCap is ignored — the shortlist IS the cap.
		g2, err := rg.get()
		if err != nil {
			return nil, err
		}
		cands := approx.BoostCandidates(g2, seeds, req.Prefilter, ent.sim.Norms())
		if len(cands) >= req.Prefilter {
			return e.finishBoostSim(ctx, ent, sc, out, req.K, 0, req.Prefilter, cands)
		}
		// Shortlist ran dry (fewer nonzero-score candidates than the
		// cap): fall through to unrestricted selection under pre=0 so the
		// degraded shortlist is neither used nor cached.
	}
	return e.finishBoostSim(ctx, ent, sc, out, req.K, spec.sim.CandidateCap(req.K, req.CandCap), 0, nil)
}

// simAcquire returns the pool entry for (graph snapshot, mode tag,
// seeds) with its profile pool built or extended to at least the
// requested simulation count, holding ent.mu for reading on success
// (the caller must RUnlock). sims <= 0 is lazy: an existing pool is
// reused at whatever size it has (a read must not silently trigger an
// expensive extension), and only a cold build falls back to
// defaultSimProfiles. hit reports whether a cached pool served the
// query (true even when it was extended in place); added is the number
// of freshly generated profiles. The content-derived graph is only
// materialized on a cold build — warm queries never pay the derive.
func (e *Engine) simAcquire(ctx context.Context, spec *modeSpec, sc *simCounters, req BoostRequest, rg *reqGraph, version uint64, seeds []int32) (ent *poolEntry, hit bool, added int, err error) {
	sims := req.Sims
	seed := req.Seed
	if seed == 0 {
		seed = 1
	}
	key := poolKey(req.GraphID, version, spec.tag(), seeds)

	ent = e.acquireEntry(key, req.GraphID, version)

	// Fast path: the pool exists and already holds enough profiles —
	// concurrent warm queries share the read lock and run in parallel.
	rlockEntry(ent)
	if ent.sim != nil && ent.sim.NumProfiles() >= sims {
		e.ctr.poolHits.Add(1)
		sc.poolHits.Add(1)
		return ent, true, 0, nil
	}
	ent.mu.RUnlock()

	lockEntry(ent)
	if err := ctx.Err(); err != nil {
		// Canceled while blocked on the singleflight lock: nothing was
		// built on our behalf, walk away and leave the entry to the
		// builder (see BoostContext).
		ent.mu.Unlock()
		return nil, false, 0, e.noteRequestErr(err)
	}
	switch {
	case ent.sim != nil && sims <= 0:
		// Lazy request racing a concurrent build: reuse whatever exists.
		hit = true
		e.ctr.poolHits.Add(1)
		sc.poolHits.Add(1)
	case ent.sim == nil:
		if sims <= 0 {
			sims = defaultSimProfiles
		}
		g2, err := rg.get()
		if err != nil {
			e.abandonColdBuild(ent)
			return nil, false, 0, err
		}
		pool, err := spec.sim.NewPool(g2, seeds, seed, e.workersFor(req.Workers))
		if err != nil {
			e.abandonColdBuild(ent)
			return nil, false, 0, err
		}
		if err := pool.ExtendContext(ctx, sims); err != nil {
			// The half-sampled pool is discarded whole; the entry is
			// handed to a waiting follower or dropped, never cached.
			e.abandonColdBuild(ent)
			return nil, false, 0, e.noteRequestErr(err)
		}
		ent.sim = pool
		ent.derived = !spec.content.Identity()
		ent.ready.Store(true)
		added = sims
		e.ctr.poolMisses.Add(1)
		sc.poolMisses.Add(1)
		sc.profiles.Add(int64(added))
	case ent.sim.NumProfiles() < sims:
		added = sims - ent.sim.NumProfiles()
		if err := ent.sim.ExtendContext(ctx, sims); err != nil {
			// A failed extension merges nothing and restores the RNG
			// state, so the cached pool is exactly as it was: keep it.
			ent.mu.Unlock()
			return nil, false, 0, e.noteRequestErr(err)
		}
		hit = true
		e.ctr.poolHits.Add(1)
		sc.poolHits.Add(1)
		e.ctr.poolExtensions.Add(1)
		sc.poolExtensions.Add(1)
		sc.profiles.Add(int64(added))
	default:
		// Another query raced us here and finished the extension between
		// the read and write locks.
		hit = true
		e.ctr.poolHits.Add(1)
		sc.poolHits.Add(1)
	}
	e.accountBytes(ent, ent.sim.MemoryEstimate())
	ent.mu.Unlock()
	ent.mu.RLock()
	return ent, hit, added, nil
}

// finishBoostSim runs (or recalls) the pooled greedy for a ready
// pool. Callers hold ent.mu.RLock; ent.sim is immutable for the
// duration.
// kboost:holds mu
func (e *Engine) finishBoostSim(ctx context.Context, ent *poolEntry, sc *simCounters, out *BoostResult, k, candCap, pre int, cands []int32) (*BoostResult, error) {
	pool := ent.sim
	key := resultKey{gen: pool.Generation(), k: k, cand: candCap, pre: pre}

	ent.resMu.Lock()
	if ent.resultsGen != key.gen {
		ent.results, ent.resultsGen = nil, key.gen
	}
	cached := ent.results[key]
	ent.resMu.Unlock()
	if cached != nil {
		out.Result = copyResult(cached)
		out.ResultCached = true
		e.ctr.resultHits.Add(1)
		sc.resultHits.Add(1)
		return out, nil
	}

	start := time.Now()
	var chosen []int32
	var est float64
	var err error
	if pre > 0 {
		chosen, est, err = pool.GreedyBoostAmongContext(ctx, k, cands)
	} else {
		chosen, est, err = pool.GreedyBoostContext(ctx, k, candCap)
	}
	if err != nil {
		return nil, e.noteRequestErr(err)
	}
	res := &core.Result{
		BoostSet:      chosen,
		EstBoost:      est,
		Samples:       pool.NumProfiles(),
		SelectionTime: time.Since(start),
	}
	ent.resMu.Lock()
	if ent.resultsGen == key.gen && len(ent.results) < maxCachedResults {
		if ent.results == nil {
			ent.results = make(map[resultKey]*core.Result)
		}
		ent.results[key] = res
	}
	ent.resMu.Unlock()

	out.Result = copyResult(res)
	return out, nil
}

// accountBytes records a pool's current memory estimate into the
// engine-wide total and trims the cache if the byte budget is now
// exceeded. An entry evicted or invalidated mid-build is skipped — it
// is no longer in the cache, so crediting it would inflate poolBytes
// with bytes nothing can ever subtract. Safe to call while holding
// ent.mu: eviction never takes entry locks.
func (e *Engine) accountBytes(ent *poolEntry, bytes int64) {
	e.mu.Lock()
	if cur, ok := e.pools[ent.key]; ok && cur == ent {
		e.poolBytes += bytes - ent.bytes
		ent.bytes = bytes
		e.evictLocked()
	}
	e.mu.Unlock()
}

// workersFor resolves a per-request worker budget against the engine
// default.
func (e *Engine) workersFor(requested int) int {
	if requested > 0 {
		return requested
	}
	return e.opt.Workers
}

// dropEntry removes a failed entry from the cache so the next query
// retries the build instead of inheriting a nil pool.
func (e *Engine) dropEntry(ent *poolEntry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cur, ok := e.pools[ent.key]; ok && cur == ent {
		delete(e.pools, ent.key)
		e.lru.Remove(ent.elem)
		e.poolBytes -= ent.bytes
	}
}

// evictLocked trims the LRU to MaxPools entries and MaxPoolBytes
// estimated bytes (the byte bound always keeps the most recently used
// pool, so one oversized pool cannot evict itself into a rebuild loop).
// Callers hold e.mu. An evicted entry may still be in use by an
// in-flight query holding its own reference; it simply stops being
// findable and is freed when the query finishes.
func (e *Engine) evictLocked() {
	for len(e.pools) > e.opt.MaxPools ||
		(e.poolBytes > e.opt.MaxPoolBytes && len(e.pools) > 1) {
		back := e.lru.Back()
		if back == nil {
			return
		}
		ent := back.Value.(*poolEntry)
		e.lru.Remove(back)
		delete(e.pools, ent.key)
		e.poolBytes -= ent.bytes
		e.ctr.evictions.Add(1)
	}
}

// SeedsRequest asks for k influence-maximizing seeds on a registered
// graph (classic IMM, no boosting).
type SeedsRequest struct {
	GraphID string `json:"graph"`
	K       int    `json:"k"`
	// Mode must name a registered diffusion mode, and of those only ""
	// and "ic" are servable — IMM's RR-set machinery is IC-specific. The
	// field exists so a mistyped mode gets the same unknown-mode 400
	// every other endpoint returns instead of being silently ignored.
	Mode       string  `json:"mode,omitempty"`
	Epsilon    float64 `json:"epsilon,omitempty"`
	Ell        float64 `json:"ell,omitempty"`
	Seed       uint64  `json:"seed,omitempty"`
	Workers    int     `json:"workers,omitempty"`
	MaxSamples int     `json:"max_samples,omitempty"`
}

// SelectSeeds runs IMM seed selection on a registered graph. RR-set
// pools are much cheaper than PRR pools and are not cached.
func (e *Engine) SelectSeeds(req SeedsRequest) (rrset.Result, error) {
	return e.SelectSeedsContext(context.Background(), req)
}

// SelectSeedsContext is SelectSeeds with cooperative cancellation: the
// RR-set pool is per-request (never cached), so a canceled selection
// simply abandons it — there is no cache state to protect.
func (e *Engine) SelectSeedsContext(ctx context.Context, req SeedsRequest) (rrset.Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, err := resolveSpec(req.Mode, model.Params{}, nil)
	if err != nil {
		return rrset.Result{}, err
	}
	if spec.name != "ic" {
		return rrset.Result{}, fmt.Errorf("engine: seed selection runs under mode \"ic\" only (got mode %q)", spec.name)
	}
	g, err := e.Graph(req.GraphID)
	if err != nil {
		return rrset.Result{}, err
	}
	e.ctr.seedQueries.Add(1)
	res, err := rrset.SelectSeedsContext(ctx, g, req.K, rrset.Options{
		Epsilon:    req.Epsilon,
		Ell:        req.Ell,
		Seed:       req.Seed,
		Workers:    e.workersFor(req.Workers),
		MaxSamples: req.MaxSamples,
	})
	if err != nil {
		return rrset.Result{}, e.noteRequestErr(err)
	}
	return res, nil
}

// EstimateRequest asks for Monte-Carlo estimates of the boosted spread
// σ_S(B) and the boost of influence Δ_S(B) on a registered graph.
type EstimateRequest struct {
	GraphID string  `json:"graph"`
	Seeds   []int32 `json:"seeds"`
	Boost   []int32 `json:"boost,omitempty"`
	// Mode selects the diffusion model: "" or "ic" runs fresh Monte-
	// Carlo under the influence boosting (IC) model; a simulation mode
	// ("lt", "sir", "kthresh") evaluates on the cached profile pool for
	// (graph, mode, seeds) — the same pool that mode's boost queries
	// use, so a warm pool answers both. "lb" is selection-only and is
	// rejected here.
	Mode string `json:"mode,omitempty"`
	// Recovery is mode:"sir"'s per-round recovery probability γ in
	// (0, 1]; rejected for every other mode.
	Recovery float64 `json:"recovery,omitempty"`
	// Threshold is mode:"kthresh"'s uniform activation threshold τ >= 1;
	// rejected for every other mode.
	Threshold int `json:"threshold,omitempty"`
	// Content optionally scales transmission by content properties; see
	// BoostRequest.Content.
	Content *model.Content `json:"content,omitempty"`
	// Sims is the simulation count. For the simulation modes it is
	// lazy: omitted (<= 0), an existing pool is reused at whatever size
	// it has — an estimate never silently triggers an expensive
	// extension — and only a cold build samples the 10000-profile
	// default.
	Sims    int    `json:"sims,omitempty"`
	Seed    uint64 `json:"seed,omitempty"`
	Workers int    `json:"workers,omitempty"`

	// MaxLatencyMS and MaxError opt the request into the tiered read
	// path (tier.go): the engine serves the cheapest tier consistent
	// with the knobs instead of always running the full evaluation.
	// MaxLatencyMS is a hard budget in milliseconds — tiers whose
	// calibrated latency exceeds it are never chosen, down to the
	// closed-form tier 0 if need be. MaxError is a best-effort relative
	// error target, judged against a per-snapshot calibration (the first
	// such request runs all tiers once to measure them). Both zero (the
	// default) bypasses tiering entirely: the request runs the exact
	// pre-tier path, bit for bit.
	MaxLatencyMS float64 `json:"max_latency_ms,omitempty"`
	MaxError     float64 `json:"max_error,omitempty"`
}

// EstimateCI is tier 1's uncertainty report for the headline quantity
// (Δ when the request has a boost set, σ otherwise).
type EstimateCI struct {
	// Half is the 95% confidence half-width around the reported mean
	// (normal approximation; Student-t below 30 simulations).
	Half float64 `json:"half_width"`
	// Median is the sample median over the Sims simulations.
	Median float64 `json:"median"`
	Sims   int     `json:"sims"`
}

// EstimateResult reports the two Monte-Carlo estimates.
type EstimateResult struct {
	// Spread is σ_S(B), the expected boosted spread.
	Spread float64 `json:"spread"`
	// Boost is Δ_S(B), estimated with coupled possible worlds.
	Boost float64 `json:"boost"`
	// CacheHit reports whether a mode:"lt" estimate was served from an
	// already-built profile pool (IC estimates are never cached).
	CacheHit bool `json:"cache_hit,omitempty"`
	// Tier is the estimator that served the query: 0 = closed-form
	// two-hop approximation (no error guarantee), 1 = small-sample
	// Monte-Carlo, 2 = full evaluation. Requests without tiering knobs
	// are always tier 2.
	Tier int `json:"tier"`
	// CI is tier 1's confidence report; nil for tiers 0 and 2.
	CI *EstimateCI `json:"ci,omitempty"`
	// ErrorTargetMet reports whether the tier that served the query is
	// at least as accurate as the one MaxError asked for. It is false
	// exactly when a MaxLatencyMS budget forced a cheaper tier than the
	// error target fits — the one case where the knobs conflict and
	// latency silently won before this field existed. Requests without a
	// MaxError target (including knobless exact requests) always report
	// true.
	ErrorTargetMet bool `json:"error_target_met"`
	// Degraded reports that server admission pressure forced the query
	// down to the cheapest tier its mode supports instead of shedding
	// it: the answer is served, but at lower fidelity than the request's
	// knobs (or their absence) asked for. ErrorTargetMet is reported
	// against the tier that actually served the query.
	Degraded bool `json:"degraded,omitempty"`
}

// Estimate runs spread/boost estimation. Requests with a tiering knob
// set (MaxLatencyMS / MaxError) are routed through the tiered read
// path; everything else runs the full evaluation and reports tier 2.
// Knobless requests trivially meet their (absent) error target.
func (e *Engine) Estimate(req EstimateRequest) (EstimateResult, error) {
	return e.EstimateContext(context.Background(), req)
}

// EstimateContext is Estimate with cooperative cancellation (threaded
// into pool builds and the Monte-Carlo loops like BoostContext).
func (e *Engine) EstimateContext(ctx context.Context, req EstimateRequest) (EstimateResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, err := resolveSpec(req.Mode, model.Params{Recovery: req.Recovery, Threshold: req.Threshold}, req.Content)
	if err != nil {
		return EstimateResult{}, err
	}
	if spec.sim == nil && spec.prrMode == prr.ModeLB {
		return EstimateResult{}, fmt.Errorf("engine: mode \"lb\" is selection-only — estimate under mode \"ic\" (both diffuse identically)")
	}
	if req.MaxLatencyMS > 0 || req.MaxError > 0 {
		return e.estimateTiered(ctx, spec, req)
	}
	out, err := e.estimateTier2(ctx, spec, req)
	if err != nil {
		return out, err
	}
	out.Tier = 2
	out.ErrorTargetMet = true
	e.ctr.estimateTier2.Add(1)
	return out, nil
}

// EstimateDegraded serves an estimate at the cheapest tier the mode
// supports, regardless of the request's tiering knobs — the server's
// admission-control pressure valve. Tier 0 is closed-form (no
// sampling, microseconds); modes that decline tier 0 (sir; kthresh at
// τ >= 2) are served at tier 1's fixed small sample budget. The result
// carries Degraded=true so callers can tell fidelity was traded for
// availability.
func (e *Engine) EstimateDegraded(ctx context.Context, req EstimateRequest) (EstimateResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	spec, err := resolveSpec(req.Mode, model.Params{Recovery: req.Recovery, Threshold: req.Threshold}, req.Content)
	if err != nil {
		return EstimateResult{}, err
	}
	if spec.sim == nil && spec.prrMode == prr.ModeLB {
		return EstimateResult{}, fmt.Errorf("engine: mode \"lb\" is selection-only — estimate under mode \"ic\" (both diffuse identically)")
	}
	out, err := e.estimateFloor(ctx, spec, req)
	if err != nil {
		return out, err
	}
	out.Degraded = true
	// Degraded answers only meet an explicit error target by luck; report
	// the honest default (no target ⇒ trivially met, like tier dispatch).
	out.ErrorTargetMet = req.MaxError <= 0
	e.ctr.estimateQueries.Add(1)
	e.ctr.degradedEstimates.Add(1)
	return out, nil
}

// estimateTier2 is the full evaluation: fresh Monte-Carlo for mode
// ""/"ic", the cached profile pool for the simulation modes. The
// knobless dispatch above and the tiered path both funnel here, so a
// tiered request that lands on tier 2 answers bit-identically to a
// knobless one.
func (e *Engine) estimateTier2(ctx context.Context, spec *modeSpec, req EstimateRequest) (EstimateResult, error) {
	if spec.sim != nil {
		return e.estimateSim(ctx, spec, req)
	}
	g, err := e.Graph(req.GraphID)
	if err != nil {
		return EstimateResult{}, err
	}
	if g, err = spec.content.Apply(g); err != nil {
		return EstimateResult{}, err
	}
	e.ctr.estimateQueries.Add(1)
	opt := diffusion.Options{
		Sims:    req.Sims,
		Seed:    req.Seed,
		Workers: e.workersFor(req.Workers),
	}
	// The IC Monte-Carlo is uncancelable once launched (stateless, no
	// cache to protect); honor ctx between the two estimation legs.
	if err := ctx.Err(); err != nil {
		return EstimateResult{}, e.noteRequestErr(err)
	}
	spread, err := diffusion.EstimateSpread(g, req.Seeds, req.Boost, opt)
	if err != nil {
		return EstimateResult{}, err
	}
	out := EstimateResult{Spread: spread}
	if len(req.Boost) > 0 {
		if err := ctx.Err(); err != nil {
			return EstimateResult{}, e.noteRequestErr(err)
		}
		boost, err := diffusion.EstimateBoost(g, req.Seeds, req.Boost, opt)
		if err != nil {
			return EstimateResult{}, err
		}
		out.Boost = boost
	}
	return out, nil
}

// estimateSim evaluates σ̂ and Δ̂ under a pooled simulation model on
// the cached profile pool for (graph snapshot, mode, seed set),
// building or extending the pool exactly like a boost query in the
// same mode would — so estimates issued after a boost query (or vice
// versa) hit the same warm pool, and both legs of Δ̂ share possible
// worlds (coupled, low-variance). simAcquire returns holding
// ent.mu.RLock, which covers the ent.sim reads below.
// kboost:holds mu
func (e *Engine) estimateSim(ctx context.Context, spec *modeSpec, req EstimateRequest) (EstimateResult, error) {
	g, version, err := e.snapshotFor(req.GraphID)
	if err != nil {
		return EstimateResult{}, err
	}
	rg := &reqGraph{base: g, content: spec.content}
	seeds := canonicalSeeds(req.Seeds)
	if err := validateSimSeeds(g, seeds); err != nil {
		return EstimateResult{}, err
	}
	for _, v := range req.Boost {
		if v < 0 || int(v) >= g.N() {
			return EstimateResult{}, fmt.Errorf("engine: boost node %d out of range [0,%d)", v, g.N())
		}
	}
	sc := e.simCtr(spec.name)
	e.ctr.estimateQueries.Add(1)
	sc.estimateQueries.Add(1)
	ent, hit, _, err := e.simAcquire(ctx, spec, sc, BoostRequest{
		GraphID: req.GraphID, Seeds: seeds,
		Sims: req.Sims, Seed: req.Seed, Workers: req.Workers,
	}, rg, version, seeds)
	if err != nil {
		return EstimateResult{}, err
	}
	defer ent.mu.RUnlock()
	spread, err := ent.sim.EstimateSpread(req.Boost)
	if err != nil {
		return EstimateResult{}, err
	}
	out := EstimateResult{Spread: spread, CacheHit: hit}
	if len(req.Boost) > 0 {
		// Differenced on the pool's integer activation sums, so it agrees
		// bit-for-bit with the Δ̂ a boost query reports for the same set.
		boost, err := ent.sim.EstimateBoost(req.Boost)
		if err != nil {
			return EstimateResult{}, err
		}
		out.Boost = boost
	}
	return out, nil
}
