package engine

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"

	"github.com/kboost/kboost/internal/graph"
)

const testToken = "sekrit-token"

func newLifecycleServer(t *testing.T, opt ServerOptions) *httptest.Server {
	t.Helper()
	if opt.AuthToken == "" {
		opt.AuthToken = testToken
	}
	srv := httptest.NewServer(NewServer(New(Options{}), opt))
	t.Cleanup(srv.Close)
	return srv
}

// doGraphReq issues a /v1/graphs request; token "" sends no
// Authorization header.
func doGraphReq(t *testing.T, method, url, token string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	decoded := map[string]any{}
	if len(raw) > 0 {
		if err := json.Unmarshal(raw, &decoded); err != nil {
			t.Fatalf("%s %s: non-JSON response %q", method, url, raw)
		}
	}
	return resp, decoded
}

func graphText(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func graphBinary(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := g.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGraphLifecycleEndToEnd is the acceptance walk: upload, boost in
// both modes, re-upload a modified graph, prove the warm repeat
// recomputes against the new snapshot, delete, 404.
func TestGraphLifecycleEndToEnd(t *testing.T) {
	srv := newLifecycleServer(t, ServerOptions{})
	v1 := smallGraph(t, 24, 0.15, 0.35)
	v2 := smallGraph(t, 10, 0.25, 0.55)

	resp, up := doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/live", testToken, graphText(t, v1))
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d, body %v", resp.StatusCode, up)
	}
	if up["version"] != float64(1) || up["replaced"] != false || up["nodes"] != float64(24) {
		t.Fatalf("upload response %v, want fresh version 1 with 24 nodes", up)
	}

	resp, info := doGraphReq(t, http.MethodGet, srv.URL+"/v1/graphs/live", "", nil)
	if resp.StatusCode != http.StatusOK || info["version"] != float64(1) || info["edges"] != float64(v1.M()) {
		t.Fatalf("info: status %d body %v", resp.StatusCode, info)
	}

	boostBodies := map[string]string{
		"prr": `{"graph":"live","seeds":[0,2,4],"k":2,"seed":9,"workers":1,"max_samples":1500}`,
		"lt":  `{"graph":"live","seeds":[0,2,4],"k":2,"mode":"lt","seed":9,"workers":1,"sims":600}`,
	}
	for name, body := range boostBodies {
		resp, res := postJSON(t, srv.URL+"/v1/boost", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s boost on uploaded graph: status %d, body %v", name, resp.StatusCode, res)
		}
		if res["graph_version"] != float64(1) {
			t.Errorf("%s boost ran against graph_version %v, want 1", name, res["graph_version"])
		}
	}

	// Replace the snapshot (binary codec this time) and prove the warm
	// repeats recompute: new version, no result-cache hit, and answers
	// in the new (smaller) node range.
	resp, up = doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/live", testToken, graphBinary(t, v2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-upload: status %d, body %v", resp.StatusCode, up)
	}
	if up["version"] != float64(2) || up["replaced"] != true || up["invalidated_pools"] != float64(2) {
		t.Fatalf("re-upload response %v, want version 2 replacing and sweeping both pools", up)
	}
	for name, body := range boostBodies {
		resp, res := postJSON(t, srv.URL+"/v1/boost", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s boost after re-upload: status %d, body %v", name, resp.StatusCode, res)
		}
		if res["graph_version"] != float64(2) {
			t.Errorf("%s boost after re-upload: graph_version %v, want 2", name, res["graph_version"])
		}
		if res["result_cached"] == true || res["cache_hit"] == true {
			t.Errorf("%s boost after re-upload served stale cache state: %v", name, res)
		}
		for _, v := range res["boost_set"].([]any) {
			if int(v.(float64)) >= v2.N() {
				t.Errorf("%s boost set %v contains a node outside the v2 snapshot (n=%d)",
					name, res["boost_set"], v2.N())
			}
		}
	}

	var st statsResponse
	resp2, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if err := json.NewDecoder(resp2.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.UploadsTotal != 2 || st.GraphVersions["live"] != 2 || st.InvalidatedPools != 2 {
		t.Errorf("stats uploads=%d versions=%v invalidated=%d, want 2 / live:2 / 2",
			st.UploadsTotal, st.GraphVersions, st.InvalidatedPools)
	}

	resp, del := doGraphReq(t, http.MethodDelete, srv.URL+"/v1/graphs/live", testToken, nil)
	if resp.StatusCode != http.StatusOK || del["deleted"] != true {
		t.Fatalf("delete: status %d, body %v", resp.StatusCode, del)
	}
	if resp, res := postJSON(t, srv.URL+"/v1/boost", boostBodies["prr"]); resp.StatusCode != http.StatusNotFound {
		t.Errorf("boost after delete: status %d body %v, want 404", resp.StatusCode, res)
	}
	if resp, _ := doGraphReq(t, http.MethodGet, srv.URL+"/v1/graphs/live", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("info after delete: status %d, want 404", resp.StatusCode)
	}
}

func TestGraphUploadAuth(t *testing.T) {
	srv := newLifecycleServer(t, ServerOptions{})
	body := graphText(t, smallGraph(t, 6, 0.1, 0.2))

	for name, token := range map[string]string{"missing": "", "wrong": "not-the-token"} {
		resp, decoded := doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/g", token, body)
		if resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s token: status %d, want 401 (body %v)", name, resp.StatusCode, decoded)
		}
		if resp.Header.Get("WWW-Authenticate") == "" {
			t.Errorf("%s token: missing WWW-Authenticate challenge", name)
		}
		if resp, _ := doGraphReq(t, http.MethodDelete, srv.URL+"/v1/graphs/g", token, nil); resp.StatusCode != http.StatusUnauthorized {
			t.Errorf("%s token DELETE: status %d, want 401", name, resp.StatusCode)
		}
	}

	// Reads stay open; only mutation needs the token.
	if resp, _ := doGraphReq(t, http.MethodGet, srv.URL+"/v1/graphs", "", nil); resp.StatusCode != http.StatusOK {
		t.Errorf("unauthenticated list: status %d, want 200", resp.StatusCode)
	}

	// A server configured without a token refuses administration
	// outright, even with some bearer token attached.
	open := httptest.NewServer(NewServer(New(Options{}), ServerOptions{}))
	defer open.Close()
	resp, decoded := doGraphReq(t, http.MethodPost, open.URL+"/v1/graphs/g", "anything", body)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("tokenless server: status %d, want 403 (body %v)", resp.StatusCode, decoded)
	}
}

func TestGraphUploadTooLarge(t *testing.T) {
	srv := newLifecycleServer(t, ServerOptions{MaxUploadBytes: 1 << 10})
	// Long-printing probabilities keep the declared edge count under the
	// derived cap while the body itself blows the byte budget, so this
	// exercises the MaxBytesReader path (413), not the header check (400).
	big := graphText(t, smallGraph(t, 40, 1.0/3, 2.0/3)) // 80 edges, ~45 B/line
	if len(big) <= 1<<10 {
		t.Fatalf("test graph only %d bytes; grow it", len(big))
	}
	resp, decoded := doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/big", testToken, big)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, want 413 (body %v)", resp.StatusCode, decoded)
	}
	if msg, _ := decoded["error"].(string); msg == "" {
		t.Error("413 without an error message")
	}
}

func TestGraphUploadBadRequests(t *testing.T) {
	srv := newLifecycleServer(t, ServerOptions{})
	for name, body := range map[string][]byte{
		"garbage":        []byte("not a graph at all"),
		"empty":          nil,
		"hostile header": []byte("2000000000 0\n"),
		"truncated text": []byte("4 2\n0 1 0.1 0.2\n"),
		"bad magic-ish":  []byte("KBG2xxxxxxxxxxxx"),
		"truncated bin":  graphBinary(t, smallGraph(t, 6, 0.1, 0.2))[:15],
	} {
		resp, decoded := doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/g", testToken, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %v)", name, resp.StatusCode, decoded)
		}
		if msg, _ := decoded["error"].(string); msg == "" {
			t.Errorf("%s: missing error message", name)
		}
	}
	// A failed upload must not register anything.
	if resp, _ := doGraphReq(t, http.MethodGet, srv.URL+"/v1/graphs/g", "", nil); resp.StatusCode != http.StatusNotFound {
		t.Errorf("graph registered despite failed uploads: status %d, want 404", resp.StatusCode)
	}

	for _, bad := range []string{"a%20b", "a|b", "...", ".hidden", ".tmp-x", strings.Repeat("x", 65)} {
		resp, _ := doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/"+bad, testToken, graphText(t, smallGraph(t, 4, 0.1, 0.2)))
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("name %q: status %d, want 400", bad, resp.StatusCode)
		}
	}

	resp, _ := doGraphReq(t, http.MethodPatch, srv.URL+"/v1/graphs/g", testToken, nil)
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PATCH: status %d, want 405", resp.StatusCode)
	}
}

// TestConcurrentUploadWhileBoosting stress-tests snapshot swapping
// under live traffic: with workers pinned to 1 every answer is a pure
// function of the snapshot version it reports, so each response must
// bit-match the answer an isolated engine gives for that version's
// graph — proof that queries see either the old or the new snapshot,
// never a mix of the two.
func TestConcurrentUploadWhileBoosting(t *testing.T) {
	ga := smallGraph(t, 24, 0.15, 0.35) // odd versions
	gb := smallGraph(t, 8, 0.2, 0.4)    // even versions
	req := BoostRequest{GraphID: "live", Seeds: []int32{0, 2, 4}, K: 2, Seed: 9, Workers: 1, MaxSamples: 800}
	ltReq := req
	ltReq.Mode, ltReq.Sims = "lt", 400

	// Ground truth per snapshot, from isolated engines.
	type answer struct{ set, est string }
	expect := func(g *graph.Graph, r BoostRequest) answer {
		e := New(Options{})
		if err := e.RegisterGraph("live", g); err != nil {
			t.Fatal(err)
		}
		res, err := e.Boost(r)
		if err != nil {
			t.Fatal(err)
		}
		return answer{set: fmt.Sprint(res.BoostSet), est: fmt.Sprint(res.EstBoost)}
	}
	want := map[string]map[bool]answer{ // mode -> odd version? -> answer
		"prr": {true: expect(ga, req), false: expect(gb, req)},
		"lt":  {true: expect(ga, ltReq), false: expect(gb, ltReq)},
	}

	srv := newLifecycleServer(t, ServerOptions{})
	if resp, up := doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/live", testToken, graphText(t, ga)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("initial upload: status %d body %v", resp.StatusCode, up)
	}

	bodies := map[string]string{
		"prr": `{"graph":"live","seeds":[0,2,4],"k":2,"seed":9,"workers":1,"max_samples":800}`,
		"lt":  `{"graph":"live","seeds":[0,2,4],"k":2,"mode":"lt","seed":9,"workers":1,"sims":400}`,
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			mode := "prr"
			if w%2 == 1 {
				mode = "lt"
			}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, res := postJSON(t, srv.URL+"/v1/boost", bodies[mode])
				if resp.StatusCode != http.StatusOK {
					t.Errorf("%s query: status %d, body %v", mode, resp.StatusCode, res)
					return
				}
				version := uint64(res["graph_version"].(float64))
				if version < 1 || version > 16 {
					t.Errorf("implausible graph_version %d", version)
					return
				}
				exp := want[mode][version%2 == 1]
				got := answer{set: fmt.Sprint(jsonInt32s(res["boost_set"])), est: fmt.Sprint(res["est_boost"].(float64))}
				if got != exp {
					t.Errorf("%s query against version %d returned %+v, want %+v — snapshot state mixed",
						mode, version, got, exp)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 8; i++ {
		g := gb
		if i%2 == 1 {
			g = ga
		}
		if resp, up := doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/live", testToken, graphText(t, g)); resp.StatusCode != http.StatusOK {
			t.Errorf("re-upload %d: status %d body %v", i, resp.StatusCode, up)
			break
		}
	}
	close(stop)
	wg.Wait()
}

// jsonInt32s renders a decoded JSON number array like fmt.Sprint of an
// []int32 does, so ground-truth and HTTP answers compare directly.
func jsonInt32s(v any) []int32 {
	arr, _ := v.([]any)
	out := make([]int32, len(arr))
	for i, x := range arr {
		out[i] = int32(x.(float64))
	}
	return out
}

func TestSnapshotPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	srv := newLifecycleServer(t, ServerOptions{SnapshotDir: dir})
	g := smallGraph(t, 12, 0.1, 0.3)

	if resp, up := doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/persisted", testToken, graphText(t, g)); resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d body %v", resp.StatusCode, up)
	}
	if _, err := os.Stat(SnapshotPath(dir, "persisted")); err != nil {
		t.Fatalf("snapshot file not written: %v", err)
	}

	// A name differing only in letter case would share the snapshot file
	// on case-insensitive filesystems; the upload must refuse it.
	if resp, body := doGraphReq(t, http.MethodPost, srv.URL+"/v1/graphs/PERSISTED", testToken, graphText(t, g)); resp.StatusCode != http.StatusConflict {
		t.Errorf("case-folding name clash: status %d body %v, want 409", resp.StatusCode, body)
	}

	// Simulate a crash mid-upload: an orphaned temp file that boot must
	// sweep instead of accumulating.
	orphan := dir + "/.persisted.tmp-123"
	if err := os.WriteFile(orphan, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh engine reloads the directory.
	e2 := New(Options{})
	n, err := e2.LoadSnapshotDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("reloaded %d snapshots, want 1", n)
	}
	info, err := e2.GraphInfo("persisted")
	if err != nil {
		t.Fatal(err)
	}
	if info.Nodes != g.N() || info.Edges != g.M() || info.Version != 1 {
		t.Errorf("reloaded info %+v, want %d nodes / %d edges at version 1", info, g.N(), g.M())
	}
	if _, err := os.Stat(orphan); !os.IsNotExist(err) {
		t.Errorf("orphaned temp file survived the boot sweep (err=%v)", err)
	}

	if resp, del := doGraphReq(t, http.MethodDelete, srv.URL+"/v1/graphs/persisted", testToken, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("delete: status %d body %v", resp.StatusCode, del)
	}
	if _, err := os.Stat(SnapshotPath(dir, "persisted")); !os.IsNotExist(err) {
		t.Errorf("snapshot file still present after DELETE (err=%v)", err)
	}
}
