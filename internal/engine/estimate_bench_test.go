package engine

import (
	"testing"

	"github.com/kboost/kboost/internal/model"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// benchTierSetup registers a mid-size random graph (2k nodes / 12k
// edges full-size, 200 / 1.2k under -short) and returns the engine
// plus the estimate request shared by every tier benchmark, so the
// tier-0 / tier-1 / warm tier-2 numbers in BENCH_select.json are
// directly comparable.
func benchTierSetup(b *testing.B) (*Engine, EstimateRequest) {
	b.Helper()
	n, m := 2000, 12000
	if testing.Short() {
		n, m = 200, 1200
	}
	g := testutil.RandomGraph(rng.New(5), n, m, 0.3)
	e := New(Options{})
	if err := e.RegisterGraph("bench", g); err != nil {
		b.Fatal(err)
	}
	req := EstimateRequest{
		GraphID: "bench",
		Seeds:   []int32{1, 3, 5, 7, 11},
		Boost:   []int32{2, 4, 6},
		Seed:    9,
		Workers: 2,
	}
	return e, req
}

// BenchmarkEstimateTier0 measures the closed-form serve: a latency-
// capped request on an engine with no pools, answered straight off the
// CSR. The setup asserts the tier-0 contract (tier 0, zero pool bytes)
// once before timing.
func BenchmarkEstimateTier0(b *testing.B) {
	for _, mode := range []string{"ic", "lt"} {
		b.Run(mode, func(b *testing.B) {
			e, req := benchTierSetup(b)
			req.Mode = mode
			req.MaxLatencyMS = 1000
			res, err := e.Estimate(req)
			if err != nil {
				b.Fatal(err)
			}
			if res.Tier != 0 {
				b.Fatalf("served tier %d, want 0", res.Tier)
			}
			if st := e.Stats(); st.Pools != 0 || st.PoolBytes != 0 {
				b.Fatalf("tier 0 built pool state: %d pools, %d bytes", st.Pools, st.PoolBytes)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Estimate(req); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateTier1 measures the small-sample Monte-Carlo tier
// directly (tier routing depends on per-graph calibration, so the
// public knobs cannot target tier 1 deterministically).
func BenchmarkEstimateTier1(b *testing.B) {
	for _, mode := range []string{"ic", "lt"} {
		b.Run(mode, func(b *testing.B) {
			e, req := benchTierSetup(b)
			req.Mode = mode
			g, err := e.Graph("bench")
			if err != nil {
				b.Fatal(err)
			}
			spec, err := resolveSpec(mode, model.Params{}, nil)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.estimateTier1(req, g, spec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEstimateTier2Warm measures the full evaluation on a warm
// LT profile pool — the baseline the tiered path undercuts. The pool
// is built outside the timer; every timed call must hit it.
func BenchmarkEstimateTier2Warm(b *testing.B) {
	e, req := benchTierSetup(b)
	req.Mode = "lt"
	req.Sims = 5000
	if testing.Short() {
		req.Sims = 200
	}
	if _, err := e.Estimate(req); err != nil { // builds the pool
		b.Fatal(err)
	}
	res, err := e.Estimate(req)
	if err != nil {
		b.Fatal(err)
	}
	if !res.CacheHit || res.Tier != 2 {
		b.Fatalf("warm repeat: cache_hit=%v tier=%d, want warm tier 2", res.CacheHit, res.Tier)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Estimate(req); err != nil {
			b.Fatal(err)
		}
	}
}
