package engine

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// testGraph builds a deterministic ~60-node graph with enough structure
// that PRR pools contain boostable graphs: a directed ring with random
// chords, base probability 0.15, boosted 0.35.
func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	const n = 60
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.MustAddEdge(int32(i), int32((i+1)%n), 0.15, 0.35)
	}
	r := rng.New(7)
	seen := make(map[[2]int32]bool)
	for len(seen) < 3*n {
		u, v := int32(r.Intn(n)), int32(r.Intn(n))
		if u == v || v == (u+1)%int32(n) || seen[[2]int32{u, v}] {
			continue
		}
		seen[[2]int32{u, v}] = true
		b.MustAddEdge(u, v, 0.15, 0.35)
	}
	return b.MustBuild()
}

func testRequest() BoostRequest {
	return BoostRequest{
		GraphID:    "g",
		Seeds:      []int32{0, 20, 40},
		K:          3,
		Seed:       11,
		Workers:    2,
		MaxSamples: 3000,
	}
}

func newTestEngine(t *testing.T, opt Options) *Engine {
	t.Helper()
	e := New(opt)
	if err := e.RegisterGraph("g", testGraph(t)); err != nil {
		t.Fatal(err)
	}
	return e
}

func TestWarmQuerySkipsRegeneration(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()

	cold, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.CacheHit {
		t.Error("first query reported a cache hit")
	}
	if cold.NewSamples == 0 || cold.NewSamples != cold.Samples {
		t.Errorf("cold query: NewSamples=%d, Samples=%d; want equal and positive",
			cold.NewSamples, cold.Samples)
	}
	generated := e.Stats().PRRGenerated

	warm, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("second identical query missed the cache")
	}
	if warm.NewSamples != 0 {
		t.Errorf("warm query generated %d new PRR-graphs, want 0", warm.NewSamples)
	}
	if got := e.Stats().PRRGenerated; got != generated {
		t.Errorf("warm query moved PRRGenerated from %d to %d", generated, got)
	}
	if warm.PoolStats.Total != cold.PoolStats.Total {
		t.Errorf("pool grew across warm query: %d -> %d", cold.PoolStats.Total, warm.PoolStats.Total)
	}
	if fmt.Sprint(warm.BoostSet) != fmt.Sprint(cold.BoostSet) {
		t.Errorf("same pool, different boost sets: %v vs %v", cold.BoostSet, warm.BoostSet)
	}
	st := e.Stats()
	if st.PoolMisses != 1 || st.PoolHits != 1 {
		t.Errorf("stats: misses=%d hits=%d, want 1/1", st.PoolMisses, st.PoolHits)
	}
}

func TestSmallerKReusesPool(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	req.K = 1
	res, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit || res.NewSamples != 0 {
		t.Errorf("k=1 after k=3: CacheHit=%v NewSamples=%d, want hit with 0", res.CacheHit, res.NewSamples)
	}
	if res.PoolK != 3 {
		t.Errorf("PoolK=%d, want the cached pool's 3", res.PoolK)
	}
	if len(res.BoostSet) != 1 {
		t.Errorf("boost set has %d nodes, want 1", len(res.BoostSet))
	}
}

func TestLargerKRebuildsPool(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	req.K = 1
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	req.K = 4
	res, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit || !res.Rebuilt {
		t.Errorf("k=4 after k=1: CacheHit=%v Rebuilt=%v, want rebuild", res.CacheHit, res.Rebuilt)
	}
	if res.PoolK != 4 {
		t.Errorf("PoolK=%d, want 4", res.PoolK)
	}
	if st := e.Stats(); st.PoolRebuilds != 1 {
		t.Errorf("PoolRebuilds=%d, want 1", st.PoolRebuilds)
	}
}

func TestLargerSampleBudgetExtendsInPlace(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	req.MaxSamples = 500
	cold, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	req.MaxSamples = 1500
	warm, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.CacheHit {
		t.Error("raised sample budget should still hit the cached pool")
	}
	if warm.NewSamples == 0 {
		t.Skip("theory target below 500 samples; nothing to extend")
	}
	if warm.Samples != cold.Samples+warm.NewSamples {
		t.Errorf("pool size %d != %d old + %d new", warm.Samples, cold.Samples, warm.NewSamples)
	}
	if st := e.Stats(); st.PoolExtensions != 1 {
		t.Errorf("PoolExtensions=%d, want 1", st.PoolExtensions)
	}
}

func TestLRUEviction(t *testing.T) {
	e := newTestEngine(t, Options{MaxPools: 1})
	a := testRequest()
	b := testRequest()
	b.Seeds = []int32{5, 25}
	for _, req := range []BoostRequest{a, b} {
		if _, err := e.Boost(req); err != nil {
			t.Fatal(err)
		}
	}
	st := e.Stats()
	if st.Evictions != 1 || st.Pools != 1 {
		t.Errorf("evictions=%d pools=%d, want 1/1", st.Evictions, st.Pools)
	}
	// The first pool was evicted, so re-running request a is a miss.
	res, err := e.Boost(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("query against an evicted pool reported a cache hit")
	}
}

func TestSeedOrderSharesPool(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	req.Seeds = []int32{40, 0, 20} // permutation of the same set
	res, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("permuted seed set missed the cache")
	}
}

func TestConcurrentIdenticalQueriesShareOneBuild(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	const workers = 8
	results := make([]*BoostResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Boost(req)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if fmt.Sprint(results[i].BoostSet) != fmt.Sprint(results[0].BoostSet) {
			t.Errorf("query %d returned %v, query 0 returned %v", i, results[i].BoostSet, results[0].BoostSet)
		}
	}
	st := e.Stats()
	if st.PoolMisses != 1 {
		t.Errorf("PoolMisses=%d, want 1 (singleflight should dedupe the build)", st.PoolMisses)
	}
	if st.PoolHits != workers-1 {
		t.Errorf("PoolHits=%d, want %d", st.PoolHits, workers-1)
	}
	if st.PRRGenerated != int64(results[0].Samples) {
		t.Errorf("PRRGenerated=%d, want one pool's worth (%d)", st.PRRGenerated, results[0].Samples)
	}
}

func TestMixedConcurrentQueries(t *testing.T) {
	e := newTestEngine(t, Options{MaxPools: 2})
	reqs := []BoostRequest{testRequest(), testRequest(), testRequest()}
	reqs[1].Seeds = []int32{5, 25}
	reqs[2].Mode = "lb"
	var wg sync.WaitGroup
	for round := 0; round < 3; round++ {
		for _, req := range reqs {
			wg.Add(1)
			go func(req BoostRequest) {
				defer wg.Done()
				if _, err := e.Boost(req); err != nil {
					t.Error(err)
				}
			}(req)
		}
	}
	wg.Wait()
}

func TestUnknownGraph(t *testing.T) {
	e := New(Options{})
	_, err := e.Boost(testRequest())
	if !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("got %v, want ErrUnknownGraph", err)
	}
	if _, err := e.SelectSeeds(SeedsRequest{GraphID: "nope", K: 1}); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("SelectSeeds: got %v, want ErrUnknownGraph", err)
	}
	if _, err := e.Estimate(EstimateRequest{GraphID: "nope"}); !errors.Is(err, ErrUnknownGraph) {
		t.Errorf("Estimate: got %v, want ErrUnknownGraph", err)
	}
}

func TestRegisterGraphValidation(t *testing.T) {
	e := newTestEngine(t, Options{})
	if err := e.RegisterGraph("g", testGraph(t)); err == nil {
		t.Error("duplicate graph id registered without error")
	}
	if err := e.RegisterGraph("", testGraph(t)); err == nil {
		t.Error("empty graph id registered without error")
	}
	if err := e.RegisterGraph("h", nil); err == nil {
		t.Error("nil graph registered without error")
	}
}

func TestBadMode(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	req.Mode = "turbo"
	if _, err := e.Boost(req); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestInvalidQueryDoesNotPoisonCache(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	req.K = 0 // invalid
	if _, err := e.Boost(req); err == nil {
		t.Fatal("K=0 accepted")
	}
	req.K = 2
	res, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("query after a failed build reported a cache hit")
	}
}

func TestInvalidQueryDoesNotEvictWarmPool(t *testing.T) {
	e := newTestEngine(t, Options{MaxPools: 1})
	warm := testRequest()
	if _, err := e.Boost(warm); err != nil {
		t.Fatal(err)
	}
	// A garbage query (k exceeds non-seed nodes) on different seeds must
	// not enter the LRU and push out the only warm pool.
	bad := testRequest()
	bad.Seeds = []int32{1}
	bad.K = 1000
	if _, err := e.Boost(bad); err == nil {
		t.Fatal("oversized K accepted")
	}
	// Same seeds, invalid K: rejected up front, cached pool untouched.
	bad2 := testRequest()
	bad2.K = 1000
	if _, err := e.Boost(bad2); err == nil {
		t.Fatal("oversized K accepted")
	}
	res, err := e.Boost(warm)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("warm pool was evicted by invalid queries")
	}
	if st := e.Stats(); st.Evictions != 0 {
		t.Errorf("evictions=%d, want 0", st.Evictions)
	}
}

func TestLBModeUsesSeparatePool(t *testing.T) {
	e := newTestEngine(t, Options{})
	full := testRequest()
	if _, err := e.Boost(full); err != nil {
		t.Fatal(err)
	}
	lb := testRequest()
	lb.Mode = "lb"
	res, err := e.Boost(lb)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("lb query hit the full-mode pool")
	}
	if len(res.BoostSet) != lb.K {
		t.Errorf("lb boost set has %d nodes, want %d", len(res.BoostSet), lb.K)
	}
	if st := e.Stats(); st.Pools != 2 {
		t.Errorf("pools=%d, want separate full and lb pools", st.Pools)
	}
}

func TestEstimateAndSeeds(t *testing.T) {
	e := newTestEngine(t, Options{})
	seeds, err := e.SelectSeeds(SeedsRequest{GraphID: "g", K: 3, Seed: 5, MaxSamples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if len(seeds.Seeds) != 3 {
		t.Fatalf("got %d seeds, want 3", len(seeds.Seeds))
	}
	est, err := e.Estimate(EstimateRequest{
		GraphID: "g", Seeds: seeds.Seeds, Boost: []int32{7}, Sims: 500, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if est.Spread < float64(len(seeds.Seeds)) {
		t.Errorf("spread %.2f below seed count", est.Spread)
	}
	if est.Boost < 0 {
		t.Errorf("boost %.4f negative", est.Boost)
	}
}

func TestResultCacheSkipsSelection(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	cold, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if cold.ResultCached {
		t.Error("cold query reported a cached result")
	}
	warm, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.ResultCached {
		t.Error("identical warm query did not hit the result cache")
	}
	if fmt.Sprint(warm.BoostSet) != fmt.Sprint(cold.BoostSet) || warm.EstBoost != cold.EstBoost {
		t.Errorf("cached result differs: %v/%v vs %v/%v",
			warm.BoostSet, warm.EstBoost, cold.BoostSet, cold.EstBoost)
	}
	// A different k on the same (unchanged) pool is a selection miss but
	// a pool hit.
	req2 := req
	req2.K = 2
	other, err := e.Boost(req2)
	if err != nil {
		t.Fatal(err)
	}
	if other.ResultCached {
		t.Error("different k hit the result cache")
	}
	if !other.CacheHit {
		t.Error("different k missed the pool cache")
	}
	st := e.Stats()
	if st.ResultHits != 1 {
		t.Errorf("ResultHits=%d, want 1", st.ResultHits)
	}
}

func TestResultCacheReturnsAreIsolated(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	first, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprint(first.BoostSet)
	for i := range first.BoostSet {
		first.BoostSet[i] = -1 // a hostile caller scribbling on the result
	}
	again, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(again.BoostSet) != want {
		t.Errorf("mutating a returned result corrupted the cache: got %v, want %s", again.BoostSet, want)
	}
}

func TestResultCacheInvalidatedByGrowth(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	req.MaxSamples = 500
	if _, err := e.Boost(req); err != nil {
		t.Fatal(err)
	}
	grown := req
	grown.MaxSamples = 2000
	res, err := e.Boost(grown)
	if err != nil {
		t.Fatal(err)
	}
	if res.NewSamples == 0 {
		t.Skip("theory target below 500 samples; nothing to extend")
	}
	if res.ResultCached {
		t.Error("query that grew the pool reported a cached result")
	}
}

func TestConcurrentWarmQueriesSelectInParallel(t *testing.T) {
	e := newTestEngine(t, Options{})
	req := testRequest()
	cold, err := e.Boost(req)
	if err != nil {
		t.Fatal(err)
	}
	// Alternate two k values so half the queries skip selection via the
	// result cache and half run it concurrently under the read lock.
	const workers = 8
	results := make([]*BoostResult, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r := req
			if i%2 == 1 {
				r.K = 2
			}
			results[i], errs[i] = e.Boost(r)
		}(i)
	}
	wg.Wait()
	for i := 0; i < workers; i++ {
		if errs[i] != nil {
			t.Fatalf("query %d: %v", i, errs[i])
		}
		if !results[i].CacheHit || results[i].NewSamples != 0 {
			t.Errorf("query %d was not fully warm: hit=%v new=%d",
				i, results[i].CacheHit, results[i].NewSamples)
		}
	}
	for i := 0; i < workers; i += 2 {
		if fmt.Sprint(results[i].BoostSet) != fmt.Sprint(cold.BoostSet) {
			t.Errorf("warm query %d returned %v, cold returned %v", i, results[i].BoostSet, cold.BoostSet)
		}
	}
}

func TestByteBasedEviction(t *testing.T) {
	// A byte budget of 1 forces every second pool to evict the first;
	// the most recently used pool must survive its own oversize.
	e := newTestEngine(t, Options{MaxPools: 100, MaxPoolBytes: 1})
	a := testRequest()
	b := testRequest()
	b.Seeds = []int32{5, 25}
	if _, err := e.Boost(a); err != nil {
		t.Fatal(err)
	}
	st := e.Stats()
	if st.Pools != 1 || st.Evictions != 0 {
		t.Fatalf("after one query: pools=%d evictions=%d, want 1/0", st.Pools, st.Evictions)
	}
	if st.PoolBytes <= 0 {
		t.Errorf("PoolBytes=%d, want positive estimate", st.PoolBytes)
	}
	if _, err := e.Boost(b); err != nil {
		t.Fatal(err)
	}
	st = e.Stats()
	if st.Pools != 1 || st.Evictions != 1 {
		t.Errorf("after second query: pools=%d evictions=%d, want 1/1", st.Pools, st.Evictions)
	}
	// Pool a is gone: re-running it is a miss.
	res, err := e.Boost(a)
	if err != nil {
		t.Fatal(err)
	}
	if res.CacheHit {
		t.Error("query against a byte-evicted pool reported a cache hit")
	}
}

func TestPoolBytesAccounting(t *testing.T) {
	e := newTestEngine(t, Options{})
	a := testRequest()
	b := testRequest()
	b.Seeds = []int32{5, 25}
	if _, err := e.Boost(a); err != nil {
		t.Fatal(err)
	}
	one := e.Stats().PoolBytes
	if _, err := e.Boost(b); err != nil {
		t.Fatal(err)
	}
	two := e.Stats().PoolBytes
	if two <= one {
		t.Errorf("PoolBytes did not grow with a second pool: %d -> %d", one, two)
	}
}
