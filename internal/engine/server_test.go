package engine

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func newTestServer(t *testing.T) *httptest.Server {
	t.Helper()
	e := newTestEngine(t, Options{})
	srv := httptest.NewServer(NewServer(e, ServerOptions{MaxWorkers: 2}))
	t.Cleanup(srv.Close)
	return srv
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, decoded
}

func TestBoostEndpointRoundTrip(t *testing.T) {
	srv := newTestServer(t)
	body := `{"graph":"g","seeds":[0,20,40],"k":3,"seed":11,"max_samples":3000}`

	resp, cold := postJSON(t, srv.URL+"/v1/boost", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold boost: status %d, body %v", resp.StatusCode, cold)
	}
	set, ok := cold["boost_set"].([]any)
	if !ok || len(set) != 3 {
		t.Fatalf("boost_set = %v, want 3 nodes", cold["boost_set"])
	}
	if cold["cache_hit"] != false {
		t.Error("cold query reported cache_hit=true")
	}

	resp, warm := postJSON(t, srv.URL+"/v1/boost", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm boost: status %d", resp.StatusCode)
	}
	if warm["cache_hit"] != true {
		t.Error("warm query reported cache_hit=false")
	}
	if warm["new_prr_graphs"] != float64(0) {
		t.Errorf("warm query generated %v PRR-graphs, want 0", warm["new_prr_graphs"])
	}
}

func TestBoostEndpointMalformedRequest(t *testing.T) {
	srv := newTestServer(t)
	for name, body := range map[string]string{
		"truncated":     `{"graph":"g","seeds":[0`,
		"wrong type":    `{"graph":"g","seeds":"zero","k":3}`,
		"unknown field": `{"graph":"g","seeds":[0],"k":3,"turbo":true}`,
		"trailing data": `{"graph":"g","seeds":[0],"k":3}{"again":1}`,
	} {
		resp, decoded := postJSON(t, srv.URL+"/v1/boost", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
		if msg, _ := decoded["error"].(string); msg == "" {
			t.Errorf("%s: missing error message in %v", name, decoded)
		}
	}
}

func TestBoostEndpointUnknownGraph(t *testing.T) {
	srv := newTestServer(t)
	resp, decoded := postJSON(t, srv.URL+"/v1/boost", `{"graph":"missing","seeds":[0],"k":1}`)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status %d, want 404", resp.StatusCode)
	}
	if msg, _ := decoded["error"].(string); !strings.Contains(msg, "missing") {
		t.Errorf("error %q does not name the graph id", msg)
	}
}

func TestBoostEndpointInvalidQuery(t *testing.T) {
	srv := newTestServer(t)
	resp, decoded := postJSON(t, srv.URL+"/v1/boost", `{"graph":"g","seeds":[],"k":1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty seed set: status %d, want 400; body %v", resp.StatusCode, decoded)
	}
}

func TestBoostEndpointWrongMethod(t *testing.T) {
	srv := newTestServer(t)
	resp, err := http.Get(srv.URL + "/v1/boost")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/boost: status %d, want 405", resp.StatusCode)
	}
	if allow := resp.Header.Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow header %q, want POST", allow)
	}
}

func TestSeedsAndEstimateEndpoints(t *testing.T) {
	srv := newTestServer(t)
	resp, seeds := postJSON(t, srv.URL+"/v1/seeds", `{"graph":"g","k":2,"seed":5,"max_samples":2000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seeds: status %d, body %v", resp.StatusCode, seeds)
	}
	picked, ok := seeds["seeds"].([]any)
	if !ok || len(picked) != 2 {
		t.Fatalf("seeds = %v, want 2 nodes", seeds["seeds"])
	}

	resp, est := postJSON(t, srv.URL+"/v1/estimate",
		`{"graph":"g","seeds":[0,20],"boost":[7],"sims":500,"seed":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("estimate: status %d, body %v", resp.StatusCode, est)
	}
	if spread, _ := est["spread"].(float64); spread < 2 {
		t.Errorf("spread %v below seed count", est["spread"])
	}
}

func TestLTBoostEndpointRoundTrip(t *testing.T) {
	srv := newTestServer(t)
	body := `{"graph":"g","seeds":[0,20,40],"k":3,"mode":"lt","seed":11,"sims":1500}`

	resp, cold := postJSON(t, srv.URL+"/v1/boost", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cold lt boost: status %d, body %v", resp.StatusCode, cold)
	}
	set, ok := cold["boost_set"].([]any)
	if !ok || len(set) != 3 {
		t.Fatalf("boost_set = %v, want 3 nodes", cold["boost_set"])
	}
	if cold["cache_hit"] != false {
		t.Error("cold lt query reported cache_hit=true")
	}
	if cold["new_prr_graphs"] != float64(1500) {
		t.Errorf("cold lt query reported %v new samples, want 1500 profiles", cold["new_prr_graphs"])
	}

	resp, warm := postJSON(t, srv.URL+"/v1/boost", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm lt boost: status %d", resp.StatusCode)
	}
	if warm["cache_hit"] != true || warm["result_cached"] != true {
		t.Errorf("warm lt query: cache_hit=%v result_cached=%v, want both true", warm["cache_hit"], warm["result_cached"])
	}
	if warm["new_prr_graphs"] != float64(0) {
		t.Errorf("warm lt query generated %v profiles, want 0", warm["new_prr_graphs"])
	}
	if fmt.Sprint(warm["boost_set"]) != fmt.Sprint(cold["boost_set"]) {
		t.Errorf("warm lt boost set %v != cold %v", warm["boost_set"], cold["boost_set"])
	}
}

func TestLTBoostEndpointBadMode(t *testing.T) {
	srv := newTestServer(t)
	resp, decoded := postJSON(t, srv.URL+"/v1/boost", `{"graph":"g","seeds":[0],"k":1,"mode":"turbo"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad mode: status %d, want 400", resp.StatusCode)
	}
	if msg, _ := decoded["error"].(string); !strings.Contains(msg, "turbo") || !strings.Contains(msg, "lt") {
		t.Errorf("error %q should name the bad mode and list \"lt\"", msg)
	}
	resp, decoded = postJSON(t, srv.URL+"/v1/estimate", `{"graph":"g","seeds":[0],"mode":"turbo"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad estimate mode: status %d, want 400; body %v", resp.StatusCode, decoded)
	}
}

// TestLTBoostEndpointWorkerClamping: a request demanding more workers
// than the server cap must be clamped, not rejected — and because LT
// pool results are worker-count invariant, the clamped response must
// match a plain one bit-for-bit.
func TestLTBoostEndpointWorkerClamping(t *testing.T) {
	srv := newTestServer(t) // MaxWorkers: 2
	plain := `{"graph":"g","seeds":[0,20,40],"k":2,"mode":"lt","sims":1000}`
	greedy := `{"graph":"g","seeds":[0,20,40],"k":2,"mode":"lt","sims":1000,"workers":64}`
	resp, a := postJSON(t, srv.URL+"/v1/boost", plain)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plain: status %d, body %v", resp.StatusCode, a)
	}
	resp, b := postJSON(t, srv.URL+"/v1/boost", greedy)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clamped: status %d, body %v", resp.StatusCode, b)
	}
	if fmt.Sprint(a["boost_set"]) != fmt.Sprint(b["boost_set"]) || a["est_boost"] != b["est_boost"] {
		t.Errorf("clamped request diverged: %v/%v vs %v/%v", b["boost_set"], b["est_boost"], a["boost_set"], a["est_boost"])
	}
}

func TestLTEstimateEndpoint(t *testing.T) {
	srv := newTestServer(t)
	if resp, body := postJSON(t, srv.URL+"/v1/boost",
		`{"graph":"g","seeds":[0,20,40],"k":2,"mode":"lt","sims":1200}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("lt boost: status %d, body %v", resp.StatusCode, body)
	}
	resp, est := postJSON(t, srv.URL+"/v1/estimate",
		`{"graph":"g","seeds":[0,20,40],"boost":[7],"mode":"lt","sims":1200}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("lt estimate: status %d, body %v", resp.StatusCode, est)
	}
	if est["cache_hit"] != true {
		t.Error("lt estimate after lt boost did not report the warm pool")
	}
	if spread, _ := est["spread"].(float64); spread < 3 {
		t.Errorf("spread %v below seed count", est["spread"])
	}
}

func TestLTStatsCounters(t *testing.T) {
	srv := newTestServer(t)
	if _, decoded := postJSON(t, srv.URL+"/v1/boost",
		`{"graph":"g","seeds":[0,20,40],"k":2,"mode":"lt","sims":900}`); decoded["error"] != nil {
		t.Fatalf("lt boost failed: %v", decoded["error"])
	}
	if _, decoded := postJSON(t, srv.URL+"/v1/boost",
		`{"graph":"g","seeds":[0,20,40],"k":2,"mode":"lt","sims":900}`); decoded["error"] != nil {
		t.Fatalf("warm lt boost failed: %v", decoded["error"])
	}
	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.LTBoostQueries != 2 || st.LTPoolMisses != 1 || st.LTPoolHits != 1 || st.LTResultHits != 1 {
		t.Errorf("lt counters = %+v, want 2 queries / 1 miss / 1 hit / 1 result hit", st.Stats)
	}
	if st.LTProfiles != 900 {
		t.Errorf("lt_profiles = %d, want 900", st.LTProfiles)
	}
	if st.Pools != 1 || st.PoolBytes <= 0 {
		t.Errorf("pools=%d pool_bytes=%d, want the LT pool accounted", st.Pools, st.PoolBytes)
	}
}

func TestStatsEndpoint(t *testing.T) {
	srv := newTestServer(t)
	if _, decoded := postJSON(t, srv.URL+"/v1/boost",
		`{"graph":"g","seeds":[0,20,40],"k":2,"max_samples":2000}`); decoded["error"] != nil {
		t.Fatalf("boost failed: %v", decoded["error"])
	}

	resp, err := http.Get(srv.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stats: status %d", resp.StatusCode)
	}
	var st statsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.BoostQueries != 1 || st.PoolMisses != 1 || st.Pools != 1 {
		t.Errorf("stats = %+v, want one boost query / miss / pool", st.Stats)
	}
	if len(st.GraphIDs) != 1 || st.GraphIDs[0] != "g" {
		t.Errorf("graph_ids = %v, want [g]", st.GraphIDs)
	}

	resp2, err := http.Post(srv.URL+"/v1/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/stats: status %d, want 405", resp2.StatusCode)
	}
}
