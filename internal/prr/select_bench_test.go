package prr

import (
	"testing"

	"github.com/kboost/kboost/internal/dataset"
)

// The selection benchmarks run on a scaled stand-in of the paper's
// flixster dataset — the same generator the repo-level figure
// benchmarks use — so ns/op here tracks the warm-query numbers of the
// serving path. `make bench` emits them as BENCH_select.json; CI runs
// them once in short mode as a smoke test.

func benchPool(b *testing.B, k int) *Pool {
	b.Helper()
	scale, samples := 0.01, 20000
	if testing.Short() {
		scale, samples = 0.004, 3000
	}
	spec, err := dataset.ByName("flixster")
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Generate(scale, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	seeds := dataset.InfluentialSeeds(g, 20)
	pool, err := NewPool(g, seeds, k, ModeFull, 7, 0)
	if err != nil {
		b.Fatal(err)
	}
	pool.Extend(samples)
	return pool
}

// BenchmarkSelectDeltaWarm measures repeat-query selection on an
// already-built pool: the incremental index + lazy-heap SelectDelta
// against the retained from-scratch naive reference. This is the
// warm-path cost a cached Engine pool pays per boost query (absent a
// result-cache hit).
func BenchmarkSelectDeltaWarm(b *testing.B) {
	const k = 20
	pool := benchPool(b, k)
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pool.SelectDelta(k); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := pool.selectDeltaNaive(k); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkExtendIncremental measures pool growth including the
// incremental maintenance of the selection index: one-shot generation
// versus the same total arriving in ten batches (the Engine's GrowPool
// pattern), which exercises the posting-CSR merge repeatedly.
func BenchmarkExtendIncremental(b *testing.B) {
	total := 10000
	if testing.Short() {
		total = 2000
	}
	spec, err := dataset.ByName("flixster")
	if err != nil {
		b.Fatal(err)
	}
	scale := 0.01
	if testing.Short() {
		scale = 0.004
	}
	g, err := spec.Generate(scale, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	seeds := dataset.InfluentialSeeds(g, 20)
	run := func(b *testing.B, steps int) {
		for i := 0; i < b.N; i++ {
			pool, err := NewPool(g, seeds, 20, ModeFull, 7, 0)
			if err != nil {
				b.Fatal(err)
			}
			for s := 1; s <= steps; s++ {
				pool.Extend(total * s / steps)
			}
		}
	}
	b.Run("oneshot", func(b *testing.B) { run(b, 1) })
	b.Run("staged10", func(b *testing.B) { run(b, 10) })
}

// BenchmarkPoolBuildCold is the cold-path gate: the full first-query
// cost of a boost request that misses the pool cache — NewPool plus a
// one-shot Extend to the sample budget, including arena emission, the
// coverage index and the selection index. This is what pre-warming and
// the arena layout exist to amortize.
func BenchmarkPoolBuildCold(b *testing.B) {
	scale, samples := 0.01, 10000
	if testing.Short() {
		scale, samples = 0.004, 2000
	}
	spec, err := dataset.ByName("flixster")
	if err != nil {
		b.Fatal(err)
	}
	g, err := spec.Generate(scale, 2, 1)
	if err != nil {
		b.Fatal(err)
	}
	seeds := dataset.InfluentialSeeds(g, 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, err := NewPool(g, seeds, 20, ModeFull, 7, 0)
		if err != nil {
			b.Fatal(err)
		}
		pool.Extend(samples)
	}
}

// BenchmarkPRREval measures a full Δ̂ evaluation sweep over the pool:
// one Eval BFS per boostable graph against a fixed boost set. With
// arena-backed storage the sweep walks contiguous memory; before the
// refactor every graph was a separate heap object. Reported per sweep,
// with graphs/op recording the sweep width.
func BenchmarkPRREval(b *testing.B) {
	pool := benchPool(b, 20)
	chosen, _, err := pool.SelectDelta(20)
	if err != nil {
		b.Fatal(err)
	}
	if len(chosen) == 0 {
		b.Fatal("empty selection")
	}
	mask := make([]bool, pool.Graph().N())
	for _, v := range chosen {
		mask[v] = true
	}
	s := NewScratch()
	covered := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for gi := 0; gi < pool.arena.numGraphs(); gi++ {
			R := pool.arena.at(gi)
			if R.Eval(mask, s) {
				covered++
			}
		}
	}
	if covered == 0 {
		b.Fatal("boost set covered nothing")
	}
	b.ReportMetric(float64(pool.arena.numGraphs()), "graphs/op")
}
