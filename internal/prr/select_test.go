package prr

import (
	"fmt"
	"slices"
	"testing"

	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// TestSelectDeltaMatchesNaive is the equivalence property test for the
// incremental selection subsystem: across random pools, k values and
// interleaved growth, SelectDelta must return exactly the chosen set
// and coverage of the retained from-scratch reference.
func TestSelectDeltaMatchesNaive(t *testing.T) {
	r := rng.New(99)
	for trial := 0; trial < 25; trial++ {
		n := 10 + r.Intn(30)
		m := n + r.Intn(4*n)
		g := testutil.RandomGraph(r, n, m, 0.4)
		numSeeds := 1 + r.Intn(3)
		seeds := make([]int32, 0, numSeeds)
		for len(seeds) < numSeeds {
			s := int32(r.Intn(n))
			dup := false
			for _, prev := range seeds {
				dup = dup || prev == s
			}
			if !dup {
				seeds = append(seeds, s)
			}
		}
		kGen := 1 + r.Intn(4)
		pool, err := NewPool(g, seeds, kGen, ModeFull, uint64(trial)+1, 1+trial%3)
		if err != nil {
			t.Fatal(err)
		}
		// Grow in stages, checking equivalence between every stage so the
		// index is exercised after each incremental extension.
		target := 0
		for stage := 0; stage < 3; stage++ {
			target += 300 + r.Intn(1200)
			pool.Extend(target)
			for k := 1; k <= kGen; k++ {
				fast, fastCov, err := pool.SelectDelta(k)
				if err != nil {
					t.Fatal(err)
				}
				slow, slowCov, err := pool.selectDeltaNaive(k)
				if err != nil {
					t.Fatal(err)
				}
				if fastCov != slowCov || fmt.Sprint(fast) != fmt.Sprint(slow) {
					t.Fatalf("trial %d stage %d k=%d: incremental %v/%d != naive %v/%d",
						trial, stage, k, fast, fastCov, slow, slowCov)
				}
			}
		}
	}
}

// TestSelectDeltaMatchesNaiveParallelReEval forces the sharded
// post-pick re-evaluation path (normally reserved for large affected
// sets) and re-checks equivalence with the naive reference.
func TestSelectDeltaMatchesNaiveParallelReEval(t *testing.T) {
	old := reEvalParallelMin
	reEvalParallelMin = 1
	defer func() { reEvalParallelMin = old }()

	r := rng.New(55)
	for trial := 0; trial < 8; trial++ {
		g := testutil.RandomGraph(r, 20+r.Intn(20), 80+r.Intn(80), 0.4)
		pool, err := NewPool(g, []int32{0, 1}, 3, ModeFull, uint64(trial)+3, 2+trial%3)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(2000)
		fast, fastCov, err := pool.SelectDelta(3)
		if err != nil {
			t.Fatal(err)
		}
		slow, slowCov, err := pool.selectDeltaNaive(3)
		if err != nil {
			t.Fatal(err)
		}
		if fastCov != slowCov || fmt.Sprint(fast) != fmt.Sprint(slow) {
			t.Fatalf("trial %d: parallel re-eval %v/%d != naive %v/%d",
				trial, fast, fastCov, slow, slowCov)
		}
	}
}

// TestSelectDeltaAmongFullSetMatches pins the restricted variant's
// contract: with every non-seed node listed (or nil) it is exactly
// SelectDelta, and with a shortlist it only ever picks listed nodes.
func TestSelectDeltaAmongFullSetMatches(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 8; trial++ {
		g := testutil.RandomGraph(r, 20+r.Intn(20), 80+r.Intn(80), 0.4)
		pool, err := NewPool(g, []int32{0, 1}, 3, ModeFull, uint64(trial)+11, 2)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(1500)
		want, wantCov, err := pool.SelectDelta(3)
		if err != nil {
			t.Fatal(err)
		}
		all := make([]int32, 0, g.N())
		for v := int32(2); int(v) < g.N(); v++ {
			all = append(all, v)
		}
		for name, cands := range map[string][]int32{"all": all, "nil": nil} {
			got, gotCov, err := pool.SelectDeltaAmong(3, cands)
			if err != nil {
				t.Fatal(err)
			}
			if gotCov != wantCov || fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("trial %d (%s): restricted %v/%d != exact %v/%d",
					trial, name, got, gotCov, want, wantCov)
			}
		}
		// A genuine shortlist: picks must stay inside it.
		short := all[:4]
		got, _, err := pool.SelectDeltaAmong(3, short)
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range got {
			if !slices.Contains(short, v) {
				t.Fatalf("trial %d: pick %d outside shortlist %v", trial, v, short)
			}
		}
	}
}

// TestSelectDeltaRepeatable checks that repeated warm selections on an
// unchanged pool agree with each other (the per-query state must not
// leak into the shared index).
func TestSelectDeltaRepeatable(t *testing.T) {
	r := rng.New(7)
	g := testutil.RandomGraph(r, 25, 80, 0.4)
	pool, err := NewPool(g, []int32{0, 1}, 3, ModeFull, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(4000)
	first, firstCov, err := pool.SelectDelta(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		again, againCov, err := pool.SelectDelta(3)
		if err != nil {
			t.Fatal(err)
		}
		if againCov != firstCov || fmt.Sprint(again) != fmt.Sprint(first) {
			t.Fatalf("warm selection %d drifted: %v/%d vs %v/%d", i, again, againCov, first, firstCov)
		}
	}
}

// TestDeltaIndexMatchesRebuild verifies the incrementally maintained
// index against a from-scratch rebuild after several Extend calls.
func TestDeltaIndexMatchesRebuild(t *testing.T) {
	r := rng.New(31)
	g := testutil.RandomGraph(r, 20, 70, 0.4)
	pool, err := NewPool(g, []int32{2}, 2, ModeFull, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, target := range []int{500, 1300, 2600} {
		pool.Extend(target)
		// From-scratch rebuild over the full arena. Independently verify
		// the candidate contract first: each graph's indexed candidate set
		// must equal its Candidates(∅) output (sorted — the critical set).
		s := NewScratch()
		for i := 0; i < pool.arena.numGraphs(); i++ {
			R := pool.arena.at(i)
			_, cs := R.Candidates(pool.zeroMask, s)
			sorted := append([]int32(nil), cs...)
			slices.Sort(sorted)
			if fmt.Sprint(sorted) != fmt.Sprint(pool.sel.initialCands(i)) {
				t.Fatalf("graph %d: indexed candidates %v != Candidates(∅) %v", i, pool.sel.initialCands(i), sorted)
			}
		}
		want := newDeltaIndex(g.N())
		want.extend(&pool.arena, 0)
		got := pool.sel
		if fmt.Sprint(got.postStart) != fmt.Sprint(want.postStart) ||
			fmt.Sprint(got.postItems) != fmt.Sprint(want.postItems) {
			t.Fatalf("postings diverge from rebuild at target %d", target)
		}
		if fmt.Sprint(got.candStart) != fmt.Sprint(want.candStart) ||
			fmt.Sprint(got.candItems) != fmt.Sprint(want.candItems) {
			t.Fatalf("candidate sets diverge from rebuild at target %d", target)
		}
		if fmt.Sprint(got.gain0) != fmt.Sprint(want.gain0) {
			t.Fatalf("initial gains diverge from rebuild at target %d", target)
		}
	}
}

// TestGenerationAdvances pins the cache-key contract: Extend that adds
// graphs bumps Generation, selection does not.
func TestGenerationAdvances(t *testing.T) {
	r := rng.New(13)
	g := testutil.RandomGraph(r, 15, 40, 0.4)
	pool, err := NewPool(g, []int32{0}, 2, ModeFull, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Generation() != 0 {
		t.Fatalf("fresh pool generation %d, want 0", pool.Generation())
	}
	pool.Extend(200)
	gen := pool.Generation()
	if gen == 0 {
		t.Fatal("Extend did not bump generation")
	}
	if _, _, err := pool.SelectDelta(2); err != nil {
		t.Fatal(err)
	}
	if pool.Generation() != gen {
		t.Fatal("selection changed the generation")
	}
	pool.Extend(100) // no-op: target below current size
	if pool.Generation() != gen {
		t.Fatal("no-op Extend bumped the generation")
	}
	if pool.MemoryEstimate() <= 0 {
		t.Fatal("memory estimate not positive for a grown pool")
	}
}
