package prr

import (
	"fmt"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// This file pins the pool to its serial reference semantics: a
// reference pool is rebuilt from the standalone GenerateFrom path — one
// heap-allocated PRR per boostable graph — by replaying the per-sketch
// stateless stream schedule serially: sketch i is always generated from
// rng.StreamSeed(seed, i), so pool contents are a pure function of
// (graph, seeds, k, mode, seed, total), independent of worker count and
// of staged versus one-shot growth. The arena-backed pool must match
// the single serial reference bit for bit — same graphs in the same
// order with identical CSRs and critical sets, same statistics, same
// estimates, and same selections — for every worker count and staging.

// refPool replays the pool's generation schedule using standalone
// serial generation.
type refPool struct {
	graphs []*PRR    // boostable graphs in sketch-index order (ModeFull)
	crits  [][]int32 // critical sets in sketch-index order (both modes)

	total, activated, hopeless, boostable int
}

func buildRefPool(g *refGraphCase, mode Mode, total int, t *testing.T) *refPool {
	t.Helper()
	gen, err := NewGenerator(g.g, g.seeds, g.k, mode)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(0)
	ref := &refPool{}
	for i := 0; i < total; i++ {
		r.ReseedStream(g.seed, uint64(i))
		res := gen.Generate(r)
		ref.total++
		switch res.Kind {
		case KindActivated:
			ref.activated++
		case KindHopeless:
			ref.hopeless++
		case KindBoostable:
			ref.boostable++
			ref.crits = append(ref.crits, res.Critical)
			if mode == ModeFull {
				ref.graphs = append(ref.graphs, res.Graph)
			}
		}
	}
	return ref
}

type refGraphCase struct {
	g     *graph.Graph
	seeds []int32
	k     int
	seed  uint64
}

func newRefCase(t *testing.T, trialSeed uint64) *refGraphCase {
	r := rng.New(trialSeed)
	g := testutil.RandomGraph(r, 25+r.Intn(20), 100+r.Intn(100), 0.5)
	return &refGraphCase{
		g:     g,
		seeds: testutil.RandomSeedSet(r, g.N(), 1+r.Intn(2)),
		k:     2 + r.Intn(3),
		seed:  trialSeed*977 + 5,
	}
}

// samePRR compares an arena view against a standalone reference graph
// field by field.
func samePRR(a, b *PRR) bool {
	return a.root == b.root &&
		fmt.Sprint(a.orig) == fmt.Sprint(b.orig) &&
		fmt.Sprint(a.outStart) == fmt.Sprint(b.outStart) &&
		fmt.Sprint(a.outTo) == fmt.Sprint(b.outTo) &&
		fmt.Sprint(a.outBoost) == fmt.Sprint(b.outBoost) &&
		fmt.Sprint(a.inStart) == fmt.Sprint(b.inStart) &&
		fmt.Sprint(a.inFrom) == fmt.Sprint(b.inFrom) &&
		fmt.Sprint(a.inBoost) == fmt.Sprint(b.inBoost) &&
		fmt.Sprint(a.critical) == fmt.Sprint(b.critical)
}

// refSelectDelta is an independent greedy Δ̂ reference over standalone
// graphs (the pre-refactor selection semantics, reimplemented without
// any pool machinery).
func refSelectDelta(g *refGraphCase, graphs []*PRR, total, k int) ([]int32, int) {
	n := g.g.N()
	seedMask := make([]bool, n)
	for _, s := range g.seeds {
		seedMask[s] = true
	}
	mask := make([]bool, n)
	covered := make([]bool, len(graphs))
	s := NewScratch()
	var chosen []int32
	coveredCount := 0
	for len(chosen) < k {
		gain := make([]int32, n)
		for gi, R := range graphs {
			if covered[gi] {
				continue
			}
			_, cands := R.Candidates(mask, s)
			for _, v := range cands {
				gain[v]++
			}
		}
		best := int32(-1)
		var bestGain int32
		for v := int32(0); int(v) < n; v++ {
			if mask[v] || seedMask[v] {
				continue
			}
			if gain[v] > bestGain {
				best, bestGain = v, gain[v]
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		chosen = append(chosen, best)
		mask[best] = true
		for gi, R := range graphs {
			if !covered[gi] && R.Eval(mask, s) {
				covered[gi] = true
				coveredCount++
			}
		}
	}
	return chosen, coveredCount
}

// TestArenaPoolMatchesReference is the main equivalence property test:
// for worker counts 1, 2 and 7 and for staged vs one-shot growth, the
// arena-backed pool must be bit-identical to the pre-refactor reference
// — contents, statistics, estimates and selections.
func TestArenaPoolMatchesReference(t *testing.T) {
	workerCounts := []int{1, 2, 7}
	for trial := 0; trial < 4; trial++ {
		c := newRefCase(t, uint64(trial)+11)
		stages := [][]int{
			{900},           // one-shot
			{300, 600, 900}, // staged
		}
		// One serial reference per case: per-sketch stateless streams
		// make pool contents invariant to workers and staging, so every
		// (workers, stage-set) pool below must equal the same reference.
		ref := buildRefPool(c, ModeFull, 900, t)
		for _, workers := range workerCounts {
			for si, targets := range stages {
				pool, err := NewPool(c.g, c.seeds, c.k, ModeFull, c.seed, workers)
				if err != nil {
					t.Fatal(err)
				}
				for _, target := range targets {
					pool.Extend(target)
				}
				if uint64(len(targets)) != pool.Generation() {
					t.Fatalf("trial %d workers %d stage-set %d: generation %d, want %d",
						trial, workers, si, pool.Generation(), len(targets))
				}
				st := pool.Stats()
				if st.Total != ref.total || st.Activated != ref.activated ||
					st.Hopeless != ref.hopeless || st.Boostable != ref.boostable {
					t.Fatalf("trial %d workers %d stage-set %d: stats %+v diverge from reference (%d/%d/%d/%d)",
						trial, workers, si, st, ref.total, ref.activated, ref.hopeless, ref.boostable)
				}
				if pool.arena.numGraphs() != len(ref.graphs) {
					t.Fatalf("trial %d workers %d: %d arena graphs, reference has %d",
						trial, workers, pool.arena.numGraphs(), len(ref.graphs))
				}
				// Shards merge in worker order within every Extend, so the
				// arena reproduces the reference merge order graph by
				// graph for staged and one-shot growth alike.
				for i := range ref.graphs {
					view := pool.arena.at(i)
					if !samePRR(&view, ref.graphs[i]) {
						t.Fatalf("trial %d workers %d stage-set %d: arena graph %d differs from reference",
							trial, workers, si, i)
					}
				}
				// Estimates: Δ̂ against a brute-force Eval sweep of the
				// reference graphs, μ̂ against the reference critical sets.
				boost := []int32{int32(trial % c.g.N()), int32((trial*7 + 3) % c.g.N())}
				mask := make([]bool, c.g.N())
				for _, v := range boost {
					mask[v] = true
				}
				s := NewScratch()
				covered := 0
				for _, R := range ref.graphs {
					if R.Eval(mask, s) {
						covered++
					}
				}
				wantDelta := float64(c.g.N()) * float64(covered) / float64(ref.total)
				gotDelta, err := pool.EstimateDelta(boost)
				if err != nil {
					t.Fatal(err)
				}
				if gotDelta != wantDelta {
					t.Fatalf("trial %d workers %d: EstimateDelta %v, reference %v", trial, workers, gotDelta, wantDelta)
				}
				muCovered := 0
				for _, crit := range ref.crits {
					for _, v := range crit {
						if mask[v] {
							muCovered++
							break
						}
					}
				}
				wantMu := float64(c.g.N()) * float64(muCovered) / float64(ref.total)
				if gotMu := pool.EstimateMu(boost); gotMu != wantMu {
					t.Fatalf("trial %d workers %d: EstimateMu %v, reference %v", trial, workers, gotMu, wantMu)
				}
				// Selections: incremental == naive == independent reference.
				fast, fastCov, err := pool.SelectDelta(c.k)
				if err != nil {
					t.Fatal(err)
				}
				slow, slowCov, err := pool.selectDeltaNaive(c.k)
				if err != nil {
					t.Fatal(err)
				}
				refChosen, refCov := refSelectDelta(c, ref.graphs, ref.total, c.k)
				if fmt.Sprint(fast) != fmt.Sprint(slow) || fastCov != slowCov {
					t.Fatalf("trial %d workers %d: SelectDelta %v/%d != naive %v/%d",
						trial, workers, fast, fastCov, slow, slowCov)
				}
				if fmt.Sprint(fast) != fmt.Sprint(refChosen) || fastCov != refCov {
					t.Fatalf("trial %d workers %d stage-set %d: SelectDelta %v/%d != reference %v/%d",
						trial, workers, si, fast, fastCov, refChosen, refCov)
				}
			}
		}
	}
}

// TestArenaPoolMatchesReferenceLB pins the lower-bound pool family:
// ModeLB stores only critical sets, which must match the standalone
// reference in content and order, and drive identical μ̂ estimates and
// coverage selections.
func TestArenaPoolMatchesReferenceLB(t *testing.T) {
	for trial := 0; trial < 4; trial++ {
		c := newRefCase(t, uint64(trial)+31)
		ref := buildRefPool(c, ModeLB, 800, t)
		for _, workers := range []int{1, 2, 7} {
			pool, err := NewPool(c.g, c.seeds, c.k, ModeLB, c.seed, workers)
			if err != nil {
				t.Fatal(err)
			}
			pool.Extend(800)
			if pool.arena.numGraphs() != len(ref.crits) {
				t.Fatalf("trial %d workers %d: %d critical sets, reference has %d",
					trial, workers, pool.arena.numGraphs(), len(ref.crits))
			}
			for i, crit := range ref.crits {
				if fmt.Sprint(pool.arena.critAt(i)) != fmt.Sprint(crit) {
					t.Fatalf("trial %d workers %d: critical set %d = %v, reference %v",
						trial, workers, i, pool.arena.critAt(i), crit)
				}
			}
			chosen, covered := pool.SelectAndCover(c.k)
			if got := pool.CoverageOf(chosen); got != covered {
				t.Fatalf("trial %d workers %d: SelectAndCover coverage %d != CoverageOf %d",
					trial, workers, covered, got)
			}
		}
	}
}
