package prr

import (
	"context"
	"fmt"
	"sync"

	"github.com/kboost/kboost/internal/maxcover"
)

// This file is the Δ̂ selection subsystem: a persistent inverted index
// over the pool's boostable PRR-graphs, maintained incrementally as the
// pool grows, plus the CELF-style lazy-greedy SelectDelta that runs on
// it. The naive from-scratch implementation it replaced is retained at
// the bottom as selectDeltaNaive, the reference for equivalence tests
// and the warm-selection benchmark.

// deltaIndex is the persistent selection state for a ModeFull pool. It
// is owned by the Pool and mutated only by extendIndex (called from
// Pool.Extend); SelectDelta treats it as read-only, so concurrent
// selections may share it.
//
// Both mappings are stored flat (CSR-style) rather than as [][]int32:
// one offset array plus one item array each, which halves the memory of
// a posting list and keeps iteration cache-friendly.
type deltaIndex struct {
	n int // item universe: nodes of the original graph

	// postStart/postItems: original node -> ids of the boostable
	// PRR-graphs whose compressed form contains it.
	postStart []int32
	postItems []int32

	// candStart/candItems: PRR-graph id -> its initial candidate set
	// (the nodes v with f_R({v}) = 1, i.e. Candidates under B = ∅).
	// Graph ids only ever grow, so this CSR is append-only.
	candStart []int32
	candItems []int32

	// gain0[v] = number of graphs whose initial candidate set contains
	// v: the marginal gains of the first greedy pick, precomputed.
	gain0 []int32
}

func newDeltaIndex(n int) *deltaIndex {
	return &deltaIndex{
		n:         n,
		postStart: make([]int32, n+1),
		candStart: []int32{0},
		gain0:     make([]int32, n),
	}
}

// numGraphs returns the number of indexed PRR-graphs.
func (x *deltaIndex) numGraphs() int { return len(x.candStart) - 1 }

// postings returns the graph ids containing node v.
func (x *deltaIndex) postings(v int32) []int32 {
	return x.postItems[x.postStart[v]:x.postStart[v+1]]
}

// initialCands returns graph gi's candidate set under B = ∅. The result
// aliases the index and must not be modified.
func (x *deltaIndex) initialCands(gi int) []int32 {
	return x.candItems[x.candStart[gi]:x.candStart[gi+1]]
}

// extend indexes a.refs[from:]. A graph's initial candidate set — the
// nodes v with f_R({v}) = 1 under B = ∅ — is by definition its critical
// set C_R, which the generation workers already extracted into the
// arena while each graph was cache-hot; extending the index is
// therefore pure merging: candidate rows are copied out of the arena
// and the posting CSR is rebuilt by interleaving the old lists with the
// batch in one O(old+new) pass. Extend calls grow the pool
// geometrically, so the merge amortizes to
// O(total postings × log(growth steps)) over the pool's lifetime —
// versus O(total postings) per *query* for the naive path.
func (x *deltaIndex) extend(a *arena, from int) {
	batch := a.numGraphs() - from
	if batch == 0 {
		return
	}

	// Candidate CSR and first-pick gains: append-only, in arena order.
	for i := from; i < a.numGraphs(); i++ {
		cs := a.critAt(i)
		x.candItems = append(x.candItems, cs...)
		x.candStart = append(x.candStart, int32(len(x.candItems)))
		for _, v := range cs {
			x.gain0[v]++
		}
	}

	// Posting CSR: count the batch contribution per node, then merge.
	counts := make([]int32, x.n)
	for i := from; i < a.numGraphs(); i++ {
		R := a.at(i)
		for _, v := range R.Nodes() {
			counts[v]++
		}
	}
	newStart := make([]int32, x.n+1)
	for v := 0; v < x.n; v++ {
		newStart[v+1] = newStart[v] + (x.postStart[v+1] - x.postStart[v]) + counts[v]
	}
	newItems := make([]int32, newStart[x.n])
	// next[v] tracks the write cursor per node during the merge.
	next := counts // reuse: overwritten below
	for v := 0; v < x.n; v++ {
		old := x.postItems[x.postStart[v]:x.postStart[v+1]]
		copy(newItems[newStart[v]:], old)
		next[v] = newStart[v] + int32(len(old))
	}
	for i := from; i < a.numGraphs(); i++ {
		R := a.at(i)
		for _, v := range R.Nodes() {
			newItems[next[v]] = int32(i)
			next[v]++
		}
	}
	x.postStart, x.postItems = newStart, newItems
}

// scratchPool recycles BFS scratch buffers across selections and index
// extensions; per-query ownership keeps concurrent selections safe.
var scratchPool = sync.Pool{New: func() interface{} { return NewScratch() }}

func getScratch() *Scratch  { return scratchPool.Get().(*Scratch) }
func putScratch(s *Scratch) { scratchPool.Put(s) }

// reEvalParallelMin is the minimum number of affected PRR-graphs per
// greedy pick before the re-evaluation fans out to the pool's workers;
// below it the goroutine handoff costs more than the BFSes. A variable
// so tests can force the parallel path on small pools.
var reEvalParallelMin = 192

// reEval is one post-pick re-evaluation result.
type reEval struct {
	covered bool
	cands   []int32
}

// SelectDelta greedily selects up to k nodes maximizing Δ̂ over the pool
// (the non-submodular objective; no worst-case guarantee, per Section
// V-B this is the B_Δ of Algorithm 2 line 4). It returns the chosen
// nodes and the number of covered PRR-graphs.
//
// The implementation is incremental: the inverted index and the initial
// candidate sets are read from the pool's deltaIndex (maintained by
// Extend) instead of being rebuilt, the per-pick argmax is a lazy
// max-heap instead of an O(n) scan, and the post-pick re-evaluation of
// affected graphs is sharded across the pool's workers. It is safe to
// run concurrently with other read-only pool methods (not with Extend)
// and returns exactly what selectDeltaNaive would.
func (p *Pool) SelectDelta(k int) ([]int32, int, error) {
	return p.selectDelta(context.Background(), k, nil)
}

// SelectDeltaContext is SelectDelta with cooperative cancellation: the
// CELF pick loop polls ctx once per chosen node, so a canceled request
// stops within one re-evaluation round.
func (p *Pool) SelectDeltaContext(ctx context.Context, k int) ([]int32, int, error) {
	return p.selectDelta(ctx, k, nil)
}

// SelectDeltaAmong is SelectDelta restricted to the given candidate
// set: only listed nodes may be picked. Coverage accounting and gain
// maintenance still run over the whole pool, so the returned covered
// count means the same thing — only the argmax is narrowed. Callers
// (the engine's tier-0 pre-filter) trade the exact greedy for a
// cheaper one over a shortlist; cands == nil behaves like SelectDelta.
func (p *Pool) SelectDeltaAmong(k int, cands []int32) ([]int32, int, error) {
	return p.SelectDeltaAmongContext(context.Background(), k, cands)
}

// SelectDeltaAmongContext is SelectDeltaAmong with cooperative
// cancellation (see SelectDeltaContext).
func (p *Pool) SelectDeltaAmongContext(ctx context.Context, k int, cands []int32) ([]int32, int, error) {
	if cands == nil {
		return p.selectDelta(ctx, k, nil)
	}
	candMask := make([]bool, p.g.N())
	for _, v := range cands {
		if v >= 0 && int(v) < len(candMask) {
			candMask[v] = true
		}
	}
	return p.selectDelta(ctx, k, candMask)
}

// selectDelta is the shared implementation; a non-nil candMask
// restricts which nodes may enter the heap (initially and on gain
// rises), leaving the rest of the incremental machinery untouched.
func (p *Pool) selectDelta(ctx context.Context, k int, candMask []bool) ([]int32, int, error) {
	if p.mode != ModeFull {
		return nil, 0, fmt.Errorf("prr: SelectDelta requires ModeFull")
	}
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	x := p.sel
	n := p.g.N()
	numGraphs := p.arena.numGraphs()

	// Per-query mutable state. cands[gi] starts as a view into the
	// index; owned[gi] flips when the graph gets its own re-evaluated
	// slice (so the shared index is never written).
	mask := make([]bool, n)
	gain := append([]int32(nil), x.gain0...)
	covered := make([]bool, numGraphs)
	coveredCount := 0
	cands := make([][]int32, numGraphs)
	owned := make([]bool, numGraphs)
	for gi := 0; gi < numGraphs; gi++ {
		cands[gi] = x.initialCands(gi)
	}

	// Lazy max-heap over gains, maxcover's CELF heap with lazy-deletion
	// semantics: gain[] is authoritative; a popped entry whose Gain
	// disagrees is stale and is reinserted at the current value. Gains
	// may *rise* after a pick (Δ̂ is not submodular), so every increment
	// pushes a fresh entry — the heap top is then always an upper bound
	// on the true maximum, which makes the pop loop exact.
	h := make(maxcover.Heap, 0, n/2)
	for v := int32(0); int(v) < n; v++ {
		if gain[v] > 0 && !p.seedMask[v] && (candMask == nil || candMask[v]) {
			h = append(h, maxcover.Entry{Item: v, Gain: gain[v]})
		}
	}
	h.Init()

	scratch := getScratch()
	defer putScratch(scratch)
	// bumped collects the distinct nodes incremented during one pick's
	// re-evaluation (stamped by pick number): each gets a fresh heap
	// entry at its final gain, since increments can raise a gain above
	// every entry the heap holds for it.
	var bumped []int32
	bumpStamp := make([]int32, n)
	evals := make([]reEval, 0, 256)

	var chosen []int32
	for len(chosen) < k && h.Len() > 0 {
		top := h.PopMax()
		if mask[top.Item] {
			continue // already picked (duplicate entry)
		}
		if top.Gain != gain[top.Item] {
			h.PushEntry(maxcover.Entry{Item: top.Item, Gain: gain[top.Item]})
			continue
		}
		if top.Gain == 0 {
			break
		}
		// One poll per pick: re-evaluation below is the expensive part
		// of a round, so this bounds cancellation latency to one round
		// while costing nothing measurable on the warm path.
		if err := ctx.Err(); err != nil {
			return nil, 0, err
		}
		best := top.Item
		chosen = append(chosen, best)
		mask[best] = true

		// Re-evaluate the candidate sets of every uncovered graph that
		// contains best; only those can change.
		affected := x.postings(best)
		evals = evals[:0]
		if cap(evals) < len(affected) {
			evals = make([]reEval, 0, len(affected))
		}
		evals = evals[:len(affected)]
		if len(affected) >= reEvalParallelMin && p.workers > 1 {
			p.reEvalParallel(affected, mask, covered, evals)
		} else {
			for i, gi := range affected {
				if covered[gi] {
					continue
				}
				R := p.arena.at(int(gi))
				cov, cs := R.Candidates(mask, scratch)
				evals[i] = reEval{covered: cov, cands: append(evals[i].cands[:0], cs...)}
			}
		}

		// Apply serially: retract old gains, install new candidate sets,
		// and push heap entries for nodes whose gain rose.
		bumped = bumped[:0]
		for i, gi := range affected {
			if covered[gi] {
				continue
			}
			for _, v := range cands[gi] {
				gain[v]--
			}
			if evals[i].covered {
				covered[gi] = true
				coveredCount++
				cands[gi], owned[gi] = nil, false
				continue
			}
			if owned[gi] {
				cands[gi] = append(cands[gi][:0], evals[i].cands...)
			} else {
				cands[gi] = append([]int32(nil), evals[i].cands...)
				owned[gi] = true
			}
			for _, v := range cands[gi] {
				gain[v]++
				if bumpStamp[v] != int32(len(chosen)) {
					bumpStamp[v] = int32(len(chosen))
					bumped = append(bumped, v)
				}
			}
		}
		for _, v := range bumped {
			if gain[v] > 0 && !mask[v] && !p.seedMask[v] && (candMask == nil || candMask[v]) {
				h.PushEntry(maxcover.Entry{Item: v, Gain: gain[v]})
			}
		}
	}
	return chosen, coveredCount, nil
}

// reEvalParallel shards the post-pick Candidates re-evaluation of the
// affected graphs across the pool's workers. evals must have
// len(affected) entries; covered is read-only here.
func (p *Pool) reEvalParallel(affected []int32, mask, covered []bool, evals []reEval) {
	var wg sync.WaitGroup
	chunk := (len(affected) + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= len(affected) {
			break
		}
		hi := lo + chunk
		if hi > len(affected) {
			hi = len(affected)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := getScratch()
			defer putScratch(s)
			for i := lo; i < hi; i++ {
				gi := affected[i]
				if covered[gi] {
					continue
				}
				R := p.arena.at(int(gi))
				cov, cs := R.Candidates(mask, s)
				evals[i] = reEval{covered: cov, cands: append(evals[i].cands[:0], cs...)}
			}
		}(lo, hi)
	}
	wg.Wait()
}

// The heap invariant behind the pop loop above, spelled out: every
// unmasked node v with gain[v] > 0 always has at least one heap entry
// with Gain >= gain[v]. The initial build covers gain0; decrements only
// make entries stale-high; every node incremented during a pick gets a
// fresh entry at its final gain; and reinsertion on mismatch repairs
// the rest. The top of the heap therefore dominates the true maximum,
// so a popped entry that matches gain[] *is* the argmax — with ties
// broken toward the smallest node id by the heap ordering, exactly like
// the linear scan below.

// selectDeltaNaive is the original from-scratch implementation: it
// rebuilds the inverted index and every candidate set per call and does
// an O(n) scan per pick. Kept unexported as the behavioral reference —
// the equivalence property test and BenchmarkSelectDeltaWarm run it
// against SelectDelta.
func (p *Pool) selectDeltaNaive(k int) ([]int32, int, error) {
	if p.mode != ModeFull {
		return nil, 0, fmt.Errorf("prr: SelectDelta requires ModeFull")
	}
	n := p.g.N()
	numGraphs := p.arena.numGraphs()
	mask := make([]bool, n)
	covered := make([]bool, numGraphs)
	gain := make([]int32, n)
	cands := make([][]int32, numGraphs)

	// Inverted index: original node -> PRR-graphs containing it.
	postings := make([][]int32, n)
	for gi := 0; gi < numGraphs; gi++ {
		R := p.arena.at(gi)
		for _, v := range R.Nodes() {
			postings[v] = append(postings[v], int32(gi))
		}
	}

	// Initial candidate sets, computed in parallel.
	var wg sync.WaitGroup
	chunk := (numGraphs + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= numGraphs {
			break
		}
		hi := lo + chunk
		if hi > numGraphs {
			hi = numGraphs
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			s := NewScratch()
			for gi := lo; gi < hi; gi++ {
				R := p.arena.at(gi)
				cov, cs := R.Candidates(mask, s)
				if cov {
					covered[gi] = true // cannot happen for boostable graphs with B=∅
					continue
				}
				cands[gi] = append([]int32(nil), cs...)
			}
		}(lo, hi)
	}
	wg.Wait()
	coveredCount := 0
	for gi := 0; gi < numGraphs; gi++ {
		if covered[gi] {
			coveredCount++
		}
		for _, v := range cands[gi] {
			gain[v]++
		}
	}

	scratch := NewScratch()
	var chosen []int32
	for len(chosen) < k {
		best := int32(-1)
		var bestGain int32
		for v := int32(0); int(v) < n; v++ {
			if mask[v] || p.seedMask[v] {
				continue
			}
			if gain[v] > bestGain {
				best, bestGain = v, gain[v]
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		chosen = append(chosen, best)
		mask[best] = true
		for _, gi := range postings[best] {
			if covered[gi] {
				continue
			}
			for _, v := range cands[gi] {
				gain[v]--
			}
			R := p.arena.at(int(gi))
			cov, cs := R.Candidates(mask, scratch)
			if cov {
				covered[gi] = true
				coveredCount++
				cands[gi] = nil
				continue
			}
			cands[gi] = append(cands[gi][:0], cs...)
			for _, v := range cands[gi] {
				gain[v]++
			}
		}
	}
	return chosen, coveredCount, nil
}
