package prr

import (
	"math"
	"sort"
	"testing"

	"github.com/kboost/kboost/internal/exact"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// fig2PRR builds (by hand) the compressed PRR-graph of the paper's
// Figure 3b, derived from the Figure 2 example: super-seed {v4,v7},
// nodes v1..v5 and root r.
//
// Local ids: 0=super-seed, 1=r, 2=v1, 3=v2, 4=v3, 5=v5.
// Original ids (arbitrary but distinct): r=10, v1=1, v2=2, v3=3, v5=5.
//
// Edges (from Figure 3b):
//
//	super-seed -> v1 (boost)   [v4 -> v1 was live-upon-boost]
//	super-seed -> v3 (boost)   [v7 -> v3]
//	super-seed -> v5 (boost)   [v7 -> v5]
//	v1 -> r (live), v3 -> r (live), v2 -> r (live)
//	v5 -> v2 (boost), v2 -> v1 (boost), v1 -> v5 (boost)
//
// Ground truth from the paper: f(∅)=0, f({v1})=1, f({v3})=1,
// f({v2,v5})=1, C_R = {v1, v3}.
func fig2PRR() *PRR {
	type e struct {
		from, to int32
		boost    uint8
	}
	edges := []e{
		{0, 2, 1}, // ss -> v1 boost
		{0, 4, 1}, // ss -> v3 boost
		{0, 5, 1}, // ss -> v5 boost
		{2, 1, 0}, // v1 -> r live
		{4, 1, 0}, // v3 -> r live
		{3, 1, 0}, // v2 -> r live
		{5, 3, 1}, // v5 -> v2 boost
		{3, 2, 1}, // v2 -> v1 boost
		{2, 5, 1}, // v1 -> v5 boost
	}
	n := int32(6)
	R := &PRR{
		root: 1,
		orig: []int32{-1, 10, 1, 2, 3, 5},
	}
	R.outStart = make([]int32, n+1)
	R.inStart = make([]int32, n+1)
	for _, ed := range edges {
		R.outStart[ed.from+1]++
		R.inStart[ed.to+1]++
	}
	for i := int32(0); i < n; i++ {
		R.outStart[i+1] += R.outStart[i]
		R.inStart[i+1] += R.inStart[i]
	}
	R.outTo = make([]int32, len(edges))
	R.outBoost = make([]uint8, len(edges))
	R.inFrom = make([]int32, len(edges))
	R.inBoost = make([]uint8, len(edges))
	outPos := append([]int32(nil), R.outStart[:n]...)
	inPos := append([]int32(nil), R.inStart[:n]...)
	for _, ed := range edges {
		R.outTo[outPos[ed.from]] = ed.to
		R.outBoost[outPos[ed.from]] = ed.boost
		outPos[ed.from]++
		R.inFrom[inPos[ed.to]] = ed.from
		R.inBoost[inPos[ed.to]] = ed.boost
		inPos[ed.to]++
	}
	return R
}

func maskOf(n int, nodes ...int32) []bool {
	m := make([]bool, n)
	for _, v := range nodes {
		m[v] = true
	}
	return m
}

func TestFig2Eval(t *testing.T) {
	R := fig2PRR()
	if err := R.validate(); err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	const n = 16
	cases := []struct {
		boost []int32
		want  bool
	}{
		{nil, false},
		{[]int32{1}, true},        // boost v1
		{[]int32{3}, true},        // boost v3
		{[]int32{2, 5}, true},     // boost {v2,v5}
		{[]int32{2}, false},       // v2 alone: ss->..->v2 needs v5 or v1 path
		{[]int32{5}, false},       // v5 alone
		{[]int32{10}, false},      // boosting the root alone: no boost in-edge to r
		{[]int32{1, 2, 3}, true},  // superset stays covered
		{[]int32{5, 2, 10}, true}, // {v5,v2} plus root
	}
	for _, c := range cases {
		if got := R.Eval(maskOf(n, c.boost...), s); got != c.want {
			t.Errorf("f_R(%v) = %v, want %v", c.boost, got, c.want)
		}
	}
}

func TestFig2Critical(t *testing.T) {
	R := fig2PRR()
	s := NewScratch()
	covered, cands := R.Candidates(make([]bool, 16), s)
	if covered {
		t.Fatal("boostable graph reported covered at B=∅")
	}
	got := append([]int32(nil), cands...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int32{1, 3} // v1 and v3
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("C_R = %v, want %v", got, want)
	}
}

func TestFig2CandidatesAfterBoost(t *testing.T) {
	R := fig2PRR()
	s := NewScratch()
	// With v5 boosted, v2 becomes a candidate (path ss->v5->v2->r), and
	// v1, v3 remain candidates.
	covered, cands := R.Candidates(maskOf(16, 5), s)
	if covered {
		t.Fatal("covered with only v5 boosted")
	}
	got := append([]int32(nil), cands...)
	sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
	want := []int32{1, 2, 3}
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Fatalf("candidates = %v, want %v", got, want)
	}
}

// Candidates must agree with brute-force single-node evaluation on
// randomly generated PRR-graphs.
func TestCandidatesMatchBruteForce(t *testing.T) {
	r := rng.New(2024)
	for trial := 0; trial < 40; trial++ {
		g := testutil.RandomGraph(r, 12, 24, 0.5)
		seeds := testutil.RandomSeedSet(r, g.N(), 2)
		gen, err := NewGenerator(g, seeds, 3, ModeFull)
		if err != nil {
			t.Fatal(err)
		}
		s := NewScratch()
		for i := 0; i < 30; i++ {
			res := gen.Generate(r)
			if res.Kind != KindBoostable {
				continue
			}
			R := res.Graph
			// Random current boost set B.
			var b []int32
			for _, v := range R.Nodes() {
				if r.Bernoulli(0.3) {
					b = append(b, v)
				}
			}
			mask := maskOf(g.N(), b...)
			covered, cands := R.Candidates(mask, s)
			candCopy := append([]int32(nil), cands...)
			if covered != R.Eval(mask, s) {
				t.Fatalf("Candidates covered=%v disagrees with Eval", covered)
			}
			if covered {
				continue
			}
			isCand := make(map[int32]bool, len(candCopy))
			for _, v := range candCopy {
				isCand[v] = true
			}
			for _, v := range R.Nodes() {
				if mask[v] {
					continue
				}
				mask[v] = true
				evalWith := R.Eval(mask, s)
				mask[v] = false
				if evalWith != isCand[v] {
					t.Fatalf("node %d: Eval(B∪{v})=%v but candidate=%v", v, evalWith, isCand[v])
				}
			}
		}
	}
}

// The PRR estimator must be unbiased: n·E[f_R(B)] = Δ_S(B) (Lemma 1),
// verified against exact enumeration on small graphs.
func TestEstimatorUnbiased(t *testing.T) {
	r := rng.New(77)
	for trial := 0; trial < 4; trial++ {
		g := testutil.RandomGraph(r, 8, 12, 0.6)
		seeds := testutil.RandomSeedSet(r, g.N(), 2)
		nonSeeds := testutil.NonSeeds(g.N(), seeds)
		if len(nonSeeds) < 2 {
			continue
		}
		boost := nonSeeds[:2]

		want, err := exact.Boost(g, seeds, boost)
		if err != nil {
			t.Fatal(err)
		}

		pool, err := NewPool(g, seeds, 2, ModeFull, uint64(trial)+1, 2)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(200000)
		got, err := pool.EstimateDelta(boost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.05+0.05*want {
			t.Fatalf("trial %d: Δ̂=%v, exact Δ=%v", trial, got, want)
		}
	}
}

// μ̂(B) ≤ Δ̂(B) must hold per possible world: I(B∩C_R≠∅) ≤ f_R(B)
// (Lemma 2's pointwise statement).
func TestMuLowerBoundsDeltaPointwise(t *testing.T) {
	r := rng.New(88)
	g := testutil.RandomGraph(r, 12, 24, 0.5)
	seeds := testutil.RandomSeedSet(r, g.N(), 2)
	gen, err := NewGenerator(g, seeds, 3, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	s := NewScratch()
	checked := 0
	for i := 0; i < 400 && checked < 100; i++ {
		res := gen.Generate(r)
		if res.Kind != KindBoostable {
			continue
		}
		checked++
		R := res.Graph
		var b []int32
		for _, v := range R.Nodes() {
			if r.Bernoulli(0.4) {
				b = append(b, v)
			}
		}
		mask := maskOf(g.N(), b...)
		fLower := false
		for _, c := range R.Critical() {
			if mask[c] {
				fLower = true
				break
			}
		}
		if fLower && !R.Eval(mask, s) {
			t.Fatalf("f−_R(B)=1 but f_R(B)=0 for B=%v", b)
		}
	}
	if checked == 0 {
		t.Skip("no boostable PRR-graphs generated")
	}
}

// The μ estimate itself must match n·E[f−_R(B)] computed from critical
// sets, and must lower-bound the exact Δ_S(B).
func TestMuEstimateLowerBoundsExact(t *testing.T) {
	r := rng.New(99)
	g := testutil.RandomGraph(r, 8, 12, 0.6)
	seeds := []int32{0}
	nonSeeds := testutil.NonSeeds(g.N(), seeds)
	boost := nonSeeds[:3]

	want, err := exact.Boost(g, seeds, boost)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := NewPool(g, seeds, 3, ModeFull, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(150000)
	mu := pool.EstimateMu(boost)
	if mu > want+0.05+0.05*want {
		t.Fatalf("μ̂=%v exceeds exact Δ=%v", mu, want)
	}
}

// LB mode and full mode must agree on the μ estimate (they generate
// with different pruning budgets but critical sets are identical in
// distribution).
func TestLBModeMatchesFullModeMu(t *testing.T) {
	r := rng.New(111)
	g := testutil.RandomGraph(r, 10, 20, 0.5)
	seeds := []int32{0, 1}
	boost := []int32{4, 5}

	full, err := NewPool(g, seeds, 3, ModeFull, 7, 2)
	if err != nil {
		t.Fatal(err)
	}
	full.Extend(120000)
	lb, err := NewPool(g, seeds, 3, ModeLB, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	lb.Extend(120000)

	muFull := full.EstimateMu(boost)
	muLB := lb.EstimateMu(boost)
	if math.Abs(muFull-muLB) > 0.08+0.08*muFull {
		t.Fatalf("μ̂ full=%v vs LB=%v", muFull, muLB)
	}
}

func TestGeneratorRootSeed(t *testing.T) {
	g, seeds := testutil.Fig1()
	gen, err := NewGenerator(g, seeds, 1, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	res := gen.GenerateFrom(0, r) // root is the seed
	if res.Kind != KindActivated {
		t.Fatalf("seed root gave %v, want activated", res.Kind)
	}
}

func TestGeneratorKinds(t *testing.T) {
	// Graph: s -> a (p=1), s -> b (p=0, p'=0), c isolated.
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 1, 1)
	b.MustAddEdge(0, 2, 0, 0)
	g := b.MustBuild()
	gen, err := NewGenerator(g, []int32{0}, 1, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	if res := gen.GenerateFrom(1, r); res.Kind != KindActivated {
		t.Fatalf("root a: %v, want activated", res.Kind)
	}
	if res := gen.GenerateFrom(2, r); res.Kind != KindHopeless {
		t.Fatalf("root b: %v, want hopeless", res.Kind)
	}
	if res := gen.GenerateFrom(3, r); res.Kind != KindHopeless {
		t.Fatalf("root c: %v, want hopeless", res.Kind)
	}
}

func TestGeneratorBoostable(t *testing.T) {
	// s -> v with p=0, p'=1: rooting at v always yields a boostable
	// graph with critical node v.
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 0, 1)
	g := b.MustBuild()
	gen, err := NewGenerator(g, []int32{0}, 1, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(4)
	res := gen.GenerateFrom(1, r)
	if res.Kind != KindBoostable {
		t.Fatalf("kind %v, want boostable", res.Kind)
	}
	if len(res.Critical) != 1 || res.Critical[0] != 1 {
		t.Fatalf("critical = %v, want [1]", res.Critical)
	}
	if res.Graph.NumNodes() != 2 || res.Graph.NumEdges() != 1 {
		t.Fatalf("compressed size %d/%d, want 2/1", res.Graph.NumNodes(), res.Graph.NumEdges())
	}
}

func TestGeneratorValidation(t *testing.T) {
	g, seeds := testutil.Fig1()
	if _, err := NewGenerator(g, seeds, 0, ModeFull); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := NewGenerator(g, nil, 1, ModeFull); err == nil {
		t.Fatal("empty seeds accepted")
	}
	if _, err := NewGenerator(g, []int32{77}, 1, ModeFull); err == nil {
		t.Fatal("invalid seed accepted")
	}
}

// Compression must preserve f_R: estimates over compressed graphs have
// to match exact Δ for many different boost sets, including sets larger
// than 1 that exercise multi-hop boost paths.
func TestCompressionPreservesEstimates(t *testing.T) {
	r := rng.New(500)
	g := testutil.RandomGraph(r, 7, 11, 0.7)
	seeds := []int32{0}
	nonSeeds := testutil.NonSeeds(g.N(), seeds)
	if len(nonSeeds) < 3 {
		t.Skip("not enough non-seeds")
	}
	k := 3
	pool, err := NewPool(g, seeds, k, ModeFull, 13, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(200000)
	// Try every subset of size <= k from the first few non-seeds.
	sets := [][]int32{
		{nonSeeds[0]},
		{nonSeeds[1]},
		{nonSeeds[0], nonSeeds[1]},
		{nonSeeds[0], nonSeeds[2]},
		{nonSeeds[0], nonSeeds[1], nonSeeds[2]},
	}
	for _, b := range sets {
		want, err := exact.Boost(g, seeds, b)
		if err != nil {
			t.Fatal(err)
		}
		got, err := pool.EstimateDelta(b)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 0.05+0.08*want {
			t.Fatalf("B=%v: Δ̂=%v, exact=%v", b, got, want)
		}
	}
}

func TestPoolStats(t *testing.T) {
	r := rng.New(12)
	g := testutil.RandomGraph(r, 20, 50, 0.4)
	seeds := []int32{0, 1}
	pool, err := NewPool(g, seeds, 2, ModeFull, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(2000)
	st := pool.Stats()
	if st.Total != 2000 {
		t.Fatalf("total %d, want 2000", st.Total)
	}
	if st.Activated+st.Hopeless+st.Boostable != st.Total {
		t.Fatalf("kind counts %d+%d+%d != %d", st.Activated, st.Hopeless, st.Boostable, st.Total)
	}
	if st.Boostable > 0 && st.CompressionRatio < 1 {
		t.Fatalf("compression ratio %v < 1", st.CompressionRatio)
	}
}

func TestSelectDeltaImprovesCoverage(t *testing.T) {
	r := rng.New(21)
	g := testutil.RandomGraph(r, 20, 60, 0.4)
	seeds := []int32{0}
	pool, err := NewPool(g, seeds, 3, ModeFull, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(5000)
	chosen, covered, err := pool.SelectDelta(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(chosen) > 3 {
		t.Fatalf("chose %d nodes", len(chosen))
	}
	for _, v := range chosen {
		if v == 0 {
			t.Fatal("seed selected as boost node")
		}
	}
	// The greedy Δ̂ selection must cover at least as much as any single
	// node.
	if len(chosen) > 0 {
		single, err2 := pool.EstimateDelta(chosen[:1])
		if err2 != nil {
			t.Fatal(err2)
		}
		full, err2 := pool.EstimateDelta(chosen)
		if err2 != nil {
			t.Fatal(err2)
		}
		if full+1e-9 < single {
			t.Fatalf("Δ̂ of full set %v below its own first pick %v", full, single)
		}
		est := float64(g.N()) * float64(covered) / float64(pool.Size())
		if math.Abs(est-full) > 1e-9 {
			t.Fatalf("greedy coverage estimate %v != EstimateDelta %v", est, full)
		}
	}
}

func TestSelectDeltaRequiresFullMode(t *testing.T) {
	r := rng.New(22)
	g := testutil.RandomGraph(r, 10, 20, 0.4)
	pool, err := NewPool(g, []int32{0}, 2, ModeLB, 9, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(100)
	if _, _, err := pool.SelectDelta(2); err == nil {
		t.Fatal("SelectDelta worked in LB mode")
	}
	if _, err := pool.EstimateDelta([]int32{1}); err == nil {
		t.Fatal("EstimateDelta worked in LB mode")
	}
}

func TestPoolDeterminism(t *testing.T) {
	r := rng.New(23)
	g := testutil.RandomGraph(r, 15, 40, 0.5)
	seeds := []int32{0}
	run := func() ([]int32, int) {
		pool, err := NewPool(g, seeds, 2, ModeFull, 42, 3)
		if err != nil {
			t.Fatal(err)
		}
		pool.Extend(3000)
		return pool.SelectDelta2(t)
	}
	a, ca := run()
	b, cb := run()
	if ca != cb || len(a) != len(b) {
		t.Fatalf("nondeterministic pool: %v/%d vs %v/%d", a, ca, b, cb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic selection: %v vs %v", a, b)
		}
	}
}

// SelectDelta2 is a tiny test helper binding errors to t.
func (p *Pool) SelectDelta2(t *testing.T) ([]int32, int) {
	t.Helper()
	chosen, covered, err := p.SelectDelta(2)
	if err != nil {
		t.Fatal(err)
	}
	return chosen, covered
}
