package prr

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/kboost/kboost/internal/faults"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/imm"
	"github.com/kboost/kboost/internal/maxcover"
	"github.com/kboost/kboost/internal/panicsafe"
	"github.com/kboost/kboost/internal/rng"
)

// cancelStride is how many sketches a shard worker generates between
// cooperative ctx polls. Amortizing the check keeps the per-sketch cost
// at one predictable branch in 64 — invisible next to a BFS per sketch —
// while still bounding cancellation latency to a few sketches' work.
const cancelStride = 64

// Pool is a growable collection of random PRR-graphs for a fixed
// (graph, seed set, k). It implements imm.Sketcher over the critical
// node sets (the μ lower bound), and — in ModeFull — supports greedy
// selection and estimation of the true boost objective Δ̂.
//
// Storage is arena-backed (see arena.go): all boostable graphs live in
// shared flat arrays, so growing the pool costs O(1) allocations per
// backing array instead of O(graphs × 9), selection re-evaluation walks
// contiguous memory, and MemoryEstimate is exact.
//
// Estimates are normalized by the total number of generated PRR-graphs,
// including activated and hopeless ones (they contribute f_R ≡ 0).
type Pool struct {
	g        *graph.Graph
	seeds    []int32
	seedMask []bool
	k        int
	mode     Mode
	workers  int
	seed     uint64
	streams  []*rng.Source // per-worker scratch Sources, reseeded per sketch
	gens     []*Generator
	shards   []*extendShard // per-worker emission buffers, reused across Extends

	// log records every generated sketch — kind, size statistics, and
	// the expanded-node set that determines its RNG draw sequence — in
	// global sketch-index order. It is what makes Repair possible: the
	// expanded sets are the per-sketch touched-edge index, and the
	// statistics let counters be recomputed after selective resampling.
	log sketchLog

	cov   *maxcover.Coverage // critical sets of boostable graphs
	arena arena              // flat storage of the boostable graphs (ModeFull: full structure; ModeLB: critical sets only)
	sel   *deltaIndex        // ModeFull: persistent Δ̂ selection index

	// zeroMask is a shared all-false boost mask (read-only) used when
	// computing initial candidate sets.
	zeroMask []bool
	// generation counts Extend calls that added PRR-graphs. Estimates
	// and selections depend only on the pool contents, so callers may
	// cache results keyed by (generation, k) and invalidate on change.
	generation uint64

	total         int
	numActivated  int
	numHopeless   int
	numBoostable  int
	sumRaw        int64
	sumCompressed int64
	sumExamined   int64
	sumCritical   int64
}

// extendShard is one worker's private output for an Extend call: an
// arena of freshly generated boostable graphs plus the batch
// statistics. Shards are merged into the pool in worker order, so pool
// contents are bit-identical to the serial merge for any fixed
// (seed, workers) pair.
type extendShard struct {
	arena arena
	log   sketchLog

	total, activated, hopeless, boostable int
	sumRaw, sumCompressed, sumExamined    int64
}

func (sh *extendShard) reset() {
	sh.arena.reset()
	sh.log.reset()
	sh.total, sh.activated, sh.hopeless, sh.boostable = 0, 0, 0, 0
	sh.sumRaw, sh.sumCompressed, sh.sumExamined = 0, 0, 0
}

// record tallies one generation result into the shard.
func (sh *extendShard) record(res Result, expanded []int32) {
	sh.log.append(res, expanded)
	sh.total++
	sh.sumExamined += int64(res.EdgesExamined)
	switch res.Kind {
	case KindActivated:
		sh.activated++
	case KindHopeless:
		sh.hopeless++
	case KindBoostable:
		sh.boostable++
		sh.sumRaw += int64(res.RawEdges)
		sh.sumCompressed += int64(res.CompressedEdges)
	}
}

// NewPool creates an empty pool. workers <= 0 means GOMAXPROCS.
func NewPool(g *graph.Graph, seeds []int32, k int, mode Mode, seed uint64, workers int) (*Pool, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		g:        g,
		seeds:    append([]int32(nil), seeds...),
		seedMask: make([]bool, g.N()),
		k:        k,
		mode:     mode,
		workers:  workers,
		seed:     seed,
		cov:      maxcover.New(g.N()),
		zeroMask: make([]bool, g.N()),
	}
	if mode == ModeFull {
		p.sel = newDeltaIndex(g.N())
	}
	for w := 0; w < workers; w++ {
		gen, err := NewGenerator(g, seeds, k, mode)
		if err != nil {
			return nil, err
		}
		p.gens = append(p.gens, gen)
		p.streams = append(p.streams, rng.New(seed))
		p.shards = append(p.shards, &extendShard{})
	}
	for _, s := range seeds {
		p.seedMask[s] = true
	}
	return p, nil
}

// Size returns the total number of PRR-graphs generated (all kinds).
func (p *Pool) Size() int { return p.total }

// Graph returns the influence graph the pool samples from.
func (p *Pool) Graph() *graph.Graph { return p.g }

// Seeds returns the seed set the pool was built for. The returned slice
// is owned by the pool (kboost:aliased-view); callers must not modify
// it.
func (p *Pool) Seeds() []int32 { return p.seeds }

// K returns the generation budget: PRR-graphs were classified and
// compressed assuming boost sets of at most K nodes, so the pool can
// serve any query with k <= K.
func (p *Pool) K() int { return p.k }

// Mode returns the materialization mode the pool generates with.
func (p *Pool) Mode() Mode { return p.mode }

// NumBoostable returns the number of boostable PRR-graphs stored.
func (p *Pool) NumBoostable() int { return p.numBoostable }

// splitCounts divides need across workers (the leading workers take the
// remainder), returning per-worker counts and their exclusive prefix
// sums.
func splitCounts(need, workers int) (counts, offs []int) {
	counts = make([]int, workers)
	offs = make([]int, workers+1)
	base, rem := need/workers, need%workers
	for w := range counts {
		counts[w] = base
		if w < rem {
			counts[w]++
		}
		offs[w+1] = offs[w] + counts[w]
	}
	return counts, offs
}

// Extend grows the pool to at least target total PRR-graphs.
//
// Sketch i — globally indexed across the pool's lifetime — is always
// generated from the stateless stream rng.StreamSeed(seed, i), and
// workers take contiguous index ranges merged in worker order, so the
// pool's contents are a pure function of (graph, seeds, k, mode, seed,
// total): bit-identical across worker counts and across staged versus
// one-shot growth. That invariance is what lets Repair regenerate
// exactly the sketches a graph delta touched and prove the result equal
// to a cold rebuild.
//
// Workers generate concurrently into per-shard arenas — including each
// boostable graph's initial candidate set, computed while the graph is
// cache-hot — and the shards are merged in deterministic worker order.
func (p *Pool) Extend(target int) {
	// Ctx-less compat form; without a cancelable ctx or armed faults the
	// context variant cannot fail.
	_ = p.ExtendContext(context.Background(), target)
}

// ExtendContext is Extend with cooperative cancellation and shard-worker
// panic containment. On any error — ctx canceled, injected fault, or a
// worker panic (returned as *panicsafe.Error) — NO shard is merged and
// the pool is left exactly as it was, so a retried call regenerates the
// same sketches from the same stateless per-index streams and the final
// pool is bit-identical to one built without interruption.
func (p *Pool) ExtendContext(ctx context.Context, target int) error {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	need := target - p.total
	if need <= 0 {
		return nil
	}
	start := p.total
	counts, offs := splitCounts(need, p.workers)
	var wg sync.WaitGroup
	var stop atomic.Bool // flipped on first failure so sibling shards bail early
	errs := make([]error, p.workers)
	for w := 0; w < p.workers; w++ {
		if counts[w] == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			err := panicsafe.Do(func() {
				if e := faults.CheckContext(ctx, faults.PoolBuildShard); e != nil {
					errs[w] = e
					stop.Store(true)
					return
				}
				r := p.streams[w]
				gen := p.gens[w]
				sh := p.shards[w]
				sh.reset()
				for i := 0; i < counts[w]; i++ {
					if i%cancelStride == 0 && (stop.Load() || ctx.Err() != nil) {
						errs[w] = ctx.Err()
						stop.Store(true)
						return
					}
					r.ReseedStream(p.seed, uint64(start+offs[w]+i))
					res := gen.GenerateInto(&sh.arena, r)
					sh.record(res, gen.lastExpanded)
				}
			})
			if err != nil {
				errs[w] = err
				stop.Store(true)
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		// Canceled after the last stride poll: the shards are complete
		// but unmerged; discard them rather than merge work the caller
		// no longer wants.
		return err
	}

	// Deterministic merge in worker order (= global sketch-index order).
	from := p.arena.numGraphs()
	for w := 0; w < p.workers; w++ {
		if counts[w] == 0 {
			continue
		}
		sh := p.shards[w]
		p.total += sh.total
		p.numActivated += sh.activated
		p.numHopeless += sh.hopeless
		p.numBoostable += sh.boostable
		p.sumRaw += sh.sumRaw
		p.sumCompressed += sh.sumCompressed
		p.sumExamined += sh.sumExamined
		base := p.arena.numGraphs()
		p.arena.appendArena(&sh.arena)
		p.log.appendLog(&sh.log)
		for i := base; i < p.arena.numGraphs(); i++ {
			crit := p.arena.critAt(i)
			p.sumCritical += int64(len(crit))
			p.cov.AddSortedSet(crit)
		}
	}
	if p.sel != nil {
		p.sel.extend(&p.arena, from)
	}
	p.generation++
	return nil
}

// SelectAndCover greedily maximizes μ̂ coverage (critical-node max
// coverage) with seeds banned; it implements imm.Sketcher.
func (p *Pool) SelectAndCover(k int) ([]int32, int) {
	return p.cov.Select(k, p.seedMask, nil)
}

// CoverageOf returns how many boostable PRR-graphs have a critical node
// among items (the validation hook for imm.RunAdaptive).
func (p *Pool) CoverageOf(items []int32) int {
	return p.cov.CoverageOf(items)
}

var (
	_ imm.Sketcher            = (*Pool)(nil)
	_ imm.ValidatableSketcher = (*Pool)(nil)
)

// scale converts a covered-sketch count into an estimate of a boost:
// n * covered / total.
func (p *Pool) scale(covered int) float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.g.N()) * float64(covered) / float64(p.total)
}

// EstimateMu returns μ̂(B) = n/|R| * Σ I(B ∩ C_R ≠ ∅).
func (p *Pool) EstimateMu(b []int32) float64 {
	return p.scale(p.cov.CoverageOf(b))
}

// EstimateDelta returns Δ̂(B) = n/|R| * Σ f_R(B). ModeFull only.
func (p *Pool) EstimateDelta(b []int32) (float64, error) {
	if p.mode != ModeFull {
		return 0, fmt.Errorf("prr: EstimateDelta requires ModeFull")
	}
	mask := make([]bool, p.g.N())
	for _, v := range b {
		if v < 0 || int(v) >= p.g.N() {
			return 0, fmt.Errorf("prr: boost node %d out of range", v)
		}
		mask[v] = true
	}
	numGraphs := p.arena.numGraphs()
	counts := make([]int, p.workers)
	var wg sync.WaitGroup
	chunk := (numGraphs + p.workers - 1) / p.workers
	for w := 0; w < p.workers; w++ {
		lo := w * chunk
		if lo >= numGraphs {
			break
		}
		hi := lo + chunk
		if hi > numGraphs {
			hi = numGraphs
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			s := getScratch()
			defer putScratch(s)
			c := 0
			for i := lo; i < hi; i++ {
				R := p.arena.at(i)
				if R.Eval(mask, s) {
					c++
				}
			}
			counts[w] = c
		}(w, lo, hi)
	}
	wg.Wait()
	covered := 0
	for _, c := range counts {
		covered += c
	}
	return p.scale(covered), nil
}

// Generation identifies the pool's contents: it increments on every
// Extend call (estimates and selections are pure functions of the
// contents, so results may be cached keyed by Generation).
func (p *Pool) Generation() uint64 { return p.generation }

// MemoryEstimate returns the pool's resident bytes: the graph arena,
// the retained per-worker shard arenas (kept for allocation-free
// re-extension — their capacity is real memory even while empty), the
// coverage index, and the selection index. Counted from backing-array
// capacities, so the engine's byte-based eviction tracks real memory
// instead of a per-edge approximation.
func (p *Pool) MemoryEstimate() int64 {
	bytes := p.arena.bytes() + p.log.bytes()
	for _, sh := range p.shards {
		bytes += sh.arena.bytes() + sh.log.bytes()
	}
	bytes += p.cov.MemoryBytes()
	if p.sel != nil {
		bytes += int64(cap(p.sel.postItems)+cap(p.sel.candItems)+cap(p.sel.postStart)+cap(p.sel.candStart)+cap(p.sel.gain0)) * 4
	}
	return bytes
}

// PoolStats summarizes the pool for the compression and memory tables.
type PoolStats struct {
	Total        int
	Activated    int
	Hopeless     int
	Boostable    int
	AvgRawEdges  float64 // average uncompressed edges per boostable graph
	AvgCompEdges float64 // average compressed edges per boostable graph
	// CompressionRatio = AvgRawEdges / AvgCompEdges (Tables 2-3).
	CompressionRatio float64
	AvgCriticalSize  float64
	AvgExamined      float64 // average edges examined per generated graph
}

// Stats returns current pool statistics.
func (p *Pool) Stats() PoolStats {
	st := PoolStats{
		Total:     p.total,
		Activated: p.numActivated,
		Hopeless:  p.numHopeless,
		Boostable: p.numBoostable,
	}
	if p.numBoostable > 0 {
		st.AvgRawEdges = float64(p.sumRaw) / float64(p.numBoostable)
		st.AvgCompEdges = float64(p.sumCompressed) / float64(p.numBoostable)
		st.AvgCriticalSize = float64(p.sumCritical) / float64(p.numBoostable)
		if st.AvgCompEdges > 0 {
			st.CompressionRatio = st.AvgRawEdges / st.AvgCompEdges
		}
	}
	if p.total > 0 {
		st.AvgExamined = float64(p.sumExamined) / float64(p.total)
	}
	return st
}
