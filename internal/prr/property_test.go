package prr

import (
	"testing"
	"testing/quick"

	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// Property: on random graphs and roots, every generated boostable
// PRR-graph satisfies the structural contract: valid CSR, root not
// covered at B=∅, critical nodes are exactly the single-node covers,
// and f−_R(B) ≤ f_R(B) for random B.
func TestQuickPRRStructuralContract(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		r := rng.New(seed)
		g := testutil.RandomGraph(r, 10, 20, 0.6)
		seeds := testutil.RandomSeedSet(r, g.N(), 1+r.Intn(2))
		k := 1 + int(kRaw%4)
		gen, err := NewGenerator(g, seeds, k, ModeFull)
		if err != nil {
			return false
		}
		s := NewScratch()
		for i := 0; i < 20; i++ {
			res := gen.Generate(r)
			if res.Kind != KindBoostable {
				continue
			}
			R := res.Graph
			if err := R.validate(); err != nil {
				return false
			}
			emptyMask := make([]bool, g.N())
			if R.Eval(emptyMask, s) {
				return false // boostable graph must not be covered at ∅
			}
			// Critical definition check: f_R({v}) = 1 iff v ∈ C_R.
			crit := map[int32]bool{}
			for _, c := range R.Critical() {
				crit[c] = true
			}
			for _, v := range R.Nodes() {
				mask := make([]bool, g.N())
				mask[v] = true
				if R.Eval(mask, s) != crit[v] {
					return false
				}
			}
			// Lower bound property on a random B.
			mask := make([]bool, g.N())
			lower := false
			for _, v := range R.Nodes() {
				if r.Bernoulli(0.5) {
					mask[v] = true
					if crit[v] {
						lower = true
					}
				}
			}
			if lower && !R.Eval(mask, s) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: the LB generator's critical sets match the full generator's
// in distribution — here checked structurally: every critical node of
// an LB-mode graph is a non-seed node of the original graph.
func TestQuickLBCriticalNodesValid(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		g := testutil.RandomGraph(r, 12, 25, 0.5)
		seeds := testutil.RandomSeedSet(r, g.N(), 2)
		seedMask := make(map[int32]bool)
		for _, s := range seeds {
			seedMask[s] = true
		}
		gen, err := NewGenerator(g, seeds, 3, ModeLB)
		if err != nil {
			return false
		}
		for i := 0; i < 30; i++ {
			res := gen.Generate(r)
			if res.Kind != KindBoostable {
				continue
			}
			for _, c := range res.Critical {
				if c < 0 || int(c) >= g.N() || seedMask[c] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: generation leaves no residue — repeated generation from
// the same Generator must stay consistent (the scratch reset paths are
// exercised by interleaving roots and kinds).
func TestGeneratorScratchReset(t *testing.T) {
	r := rng.New(33)
	g := testutil.RandomGraph(r, 15, 35, 0.5)
	seeds := testutil.RandomSeedSet(r, g.N(), 2)
	gen, err := NewGenerator(g, seeds, 2, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	// Interleave fixed-root generations; statuses must be independently
	// resampled, so outcomes vary, but the structure must stay valid.
	kinds := map[Kind]int{}
	for i := 0; i < 300; i++ {
		root := int32(i % g.N())
		res := gen.GenerateFrom(root, r)
		kinds[res.Kind]++
		if res.Kind == KindBoostable && res.Graph != nil {
			if err := res.Graph.validate(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
	}
	if kinds[KindBoostable] == 0 {
		t.Skip("no boostable graphs on this instance")
	}
}
