package prr

import (
	"fmt"
	"sort"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// Mode selects how much of a boostable PRR-graph is materialized.
type Mode uint8

const (
	// ModeFull builds the compressed PRR-graph and its critical nodes
	// (needed by PRR-Boost, which greedily optimizes Δ̂ on the pool).
	ModeFull Mode = iota
	// ModeLB computes only the critical node set C_R, generating with an
	// effective budget of one boost: single-boost seed→root paths are all
	// C_R depends on, which is why PRR-Boost-LB is faster and leaner
	// (Section V-C).
	ModeLB
)

// edge status codes for the sampled possible world.
const (
	esUnsampled uint8 = iota
	esBlocked
	esLive
	esBoost // live-upon-boost
)

const inf = int32(1) << 29

// rawEdge is a non-blocked edge recorded during the backward BFS, in
// original node ids. boost is 1 for live-upon-boost edges.
type rawEdge struct {
	from, to int32
	boost    uint8
}

// Result reports one generated PRR-graph.
type Result struct {
	Kind     Kind
	Root     int32
	Graph    *PRR    // compressed graph; nil unless Kind==Boostable and ModeFull
	Critical []int32 // critical node ids; nil unless Kind==Boostable
	// RawEdges is the number of non-blocked edges recorded before
	// compression (the "uncompressed" size of Tables 2-3).
	RawEdges int
	// CompressedEdges is the edge count after compression (ModeFull).
	CompressedEdges int
	// EdgesExamined counts edge lookups during generation: the empirical
	// analogue of EPT in the running-time analysis.
	EdgesExamined int
}

// Generator produces random PRR-graphs for a fixed (graph, seeds, k).
// It owns large scratch buffers; create one per goroutine.
type Generator struct {
	g        *graph.Graph
	seedMask []bool
	k        int
	mode     Mode

	status  []uint8 // per global in-edge: sampled status
	touched []int32 // in-edge indices to reset

	dr       []int32 // phase 1: node -> #boost-edges to root (inf if unseen)
	expanded []bool
	cur      []int32
	next     []int32

	rawEdges []rawEdge
	rawNodes []int32 // original ids with dr assigned, in discovery order

	localOf []int32 // original id -> raw local index (valid for rawNodes)

	emptyMask []bool // all-false mask for critical extraction
	scratch   *Scratch
}

// NewGenerator returns a Generator. seeds must be valid node ids; k>=1.
func NewGenerator(g *graph.Graph, seeds []int32, k int, mode Mode) (*Generator, error) {
	if k < 1 {
		return nil, fmt.Errorf("prr: k=%d must be >= 1", k)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("prr: empty seed set")
	}
	seedMask := make([]bool, g.N())
	for _, s := range seeds {
		if s < 0 || int(s) >= g.N() {
			return nil, fmt.Errorf("prr: seed %d out of range [0,%d)", s, g.N())
		}
		seedMask[s] = true
	}
	gen := &Generator{
		g:         g,
		seedMask:  seedMask,
		k:         k,
		mode:      mode,
		status:    make([]uint8, g.M()),
		dr:        make([]int32, g.N()),
		expanded:  make([]bool, g.N()),
		localOf:   make([]int32, g.N()),
		emptyMask: make([]bool, g.N()),
		scratch:   NewScratch(),
	}
	for i := range gen.dr {
		gen.dr[i] = inf
	}
	return gen, nil
}

// genBudget is the pruning budget for phase 1 (k, or 1 in LB mode).
func (gen *Generator) genBudget() int32 {
	if gen.mode == ModeLB {
		return 1
	}
	return int32(gen.k)
}

// cleanup resets all per-generation scratch state.
func (gen *Generator) cleanup() {
	for _, e := range gen.touched {
		gen.status[e] = esUnsampled
	}
	gen.touched = gen.touched[:0]
	for _, v := range gen.rawNodes {
		gen.dr[v] = inf
		gen.expanded[v] = false
	}
	gen.rawNodes = gen.rawNodes[:0]
	gen.rawEdges = gen.rawEdges[:0]
	gen.cur = gen.cur[:0]
	gen.next = gen.next[:0]
}

// Generate produces one PRR-graph for a uniformly random root.
func (gen *Generator) Generate(r *rng.Source) Result {
	root := int32(r.Intn(gen.g.N()))
	return gen.GenerateFrom(root, r)
}

// GenerateFrom produces one PRR-graph rooted at root (Algorithm 1).
func (gen *Generator) GenerateFrom(root int32, r *rng.Source) Result {
	defer gen.cleanup()
	res := Result{Root: root}
	if gen.seedMask[root] {
		res.Kind = KindActivated
		return res
	}

	g := gen.g
	kGen := gen.genBudget()

	// Phase 1: backward 0-1 BFS from the root. Bucket queues process
	// nodes in nondecreasing boost-distance, so a node's distance is
	// final when it is expanded.
	gen.dr[root] = 0
	gen.rawNodes = append(gen.rawNodes, root)
	gen.cur = append(gen.cur, root)
	seenSeed := false
	d := int32(0)
	for len(gen.cur) > 0 {
		for qi := 0; qi < len(gen.cur); qi++ {
			u := gen.cur[qi]
			if gen.dr[u] != d || gen.expanded[u] {
				continue
			}
			gen.expanded[u] = true
			from := g.InFrom(u)
			pArr := g.InP(u)
			pbArr := g.InPBoost(u)
			offs := g.InOffset(u)
			for i, v := range from {
				e := offs + int32(i)
				st := gen.status[e]
				if st == esUnsampled {
					st = sampleEdge(pArr[i], pbArr[i], r)
					gen.status[e] = st
					gen.touched = append(gen.touched, e)
				}
				res.EdgesExamined++
				if st == esBlocked {
					continue
				}
				dvr := d
				var b uint8
				if st == esBoost {
					dvr++
					b = 1
				}
				if dvr > kGen {
					continue // pruning: cannot become live with <= k boosts
				}
				gen.rawEdges = append(gen.rawEdges, rawEdge{from: v, to: u, boost: b})
				if dvr < gen.dr[v] {
					if gen.dr[v] == inf {
						gen.rawNodes = append(gen.rawNodes, v)
					}
					gen.dr[v] = dvr
					if gen.seedMask[v] {
						if dvr == 0 {
							res.Kind = KindActivated
							return res
						}
						seenSeed = true
						// Seeds terminate paths: never expanded.
					} else if dvr == d {
						gen.cur = append(gen.cur, v)
					} else {
						gen.next = append(gen.next, v)
					}
				}
			}
		}
		gen.cur, gen.next = gen.next, gen.cur[:0]
		d++
	}
	if !seenSeed {
		res.Kind = KindHopeless
		return res
	}

	res.Kind = KindBoostable
	res.RawEdges = len(gen.rawEdges)

	if gen.mode == ModeLB {
		res.Critical = gen.criticalFromRaw(root)
		return res
	}

	prr, err := gen.compress(root)
	if err != nil {
		// Compression failing indicates an internal invariant violation;
		// surface it loudly rather than silently skewing estimates.
		panic(fmt.Sprintf("prr: compression failed: %v", err))
	}
	res.Graph = prr
	res.Critical = prr.critical
	res.CompressedEdges = prr.NumEdges()
	return res
}

func sampleEdge(p, pb float64, r *rng.Source) uint8 {
	u := r.Float64()
	switch {
	case u < p:
		return esLive
	case u < pb:
		return esBoost
	default:
		return esBlocked
	}
}

// rawAdj builds forward and backward adjacency over the raw edges in
// local indices. Returns CSR-style arrays.
func (gen *Generator) rawAdj() (cnt int, outStart, outIdx, inStart, inIdx []int32) {
	cnt = len(gen.rawNodes)
	for i, orig := range gen.rawNodes {
		gen.localOf[orig] = int32(i)
	}
	outStart = make([]int32, cnt+1)
	inStart = make([]int32, cnt+1)
	for _, e := range gen.rawEdges {
		outStart[gen.localOf[e.from]+1]++
		inStart[gen.localOf[e.to]+1]++
	}
	for i := 0; i < cnt; i++ {
		outStart[i+1] += outStart[i]
		inStart[i+1] += inStart[i]
	}
	outIdx = make([]int32, len(gen.rawEdges)) // edge indices into rawEdges
	inIdx = make([]int32, len(gen.rawEdges))
	outPos := append([]int32(nil), outStart[:cnt]...)
	inPos := append([]int32(nil), inStart[:cnt]...)
	for ei, e := range gen.rawEdges {
		f := gen.localOf[e.from]
		t := gen.localOf[e.to]
		outIdx[outPos[f]] = int32(ei)
		outPos[f]++
		inIdx[inPos[t]] = int32(ei)
		inPos[t]++
	}
	return cnt, outStart, outIdx, inStart, inIdx
}

// criticalFromRaw computes C_R directly on the raw structure:
// X = nodes live-reachable from seeds, Z = nodes live-reaching the root;
// v is critical iff v ∉ X, v ∈ Z, and some live-upon-boost edge (u,v)
// has u ∈ X.
func (gen *Generator) criticalFromRaw(root int32) []int32 {
	cnt, outStart, outIdx, inStart, inIdx := gen.rawAdj()

	inX := make([]bool, cnt)
	queue := make([]int32, 0, cnt)
	for i, orig := range gen.rawNodes {
		if gen.seedMask[orig] {
			inX[i] = true
			queue = append(queue, int32(i))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for j := outStart[u]; j < outStart[u+1]; j++ {
			e := gen.rawEdges[outIdx[j]]
			if e.boost == 1 {
				continue
			}
			t := gen.localOf[e.to]
			if !inX[t] {
				inX[t] = true
				queue = append(queue, t)
			}
		}
	}

	inZ := make([]bool, cnt)
	rl := gen.localOf[root]
	inZ[rl] = true
	queue = append(queue[:0], rl)
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for j := inStart[v]; j < inStart[v+1]; j++ {
			e := gen.rawEdges[inIdx[j]]
			if e.boost == 1 {
				continue
			}
			f := gen.localOf[e.from]
			if !inZ[f] {
				inZ[f] = true
				queue = append(queue, f)
			}
		}
	}

	var critical []int32
	for i, orig := range gen.rawNodes {
		if inX[i] || !inZ[i] {
			continue
		}
		for j := inStart[i]; j < inStart[int32(i)+1]; j++ {
			e := gen.rawEdges[inIdx[j]]
			if e.boost == 1 && inX[gen.localOf[e.from]] {
				critical = append(critical, orig)
				break
			}
		}
	}
	sort.Slice(critical, func(i, j int) bool { return critical[i] < critical[j] })
	return critical
}

// compress implements phase 2 of Algorithm 1 (Section V-A): merge the
// live-reachable region into a super-seed, drop nodes that cannot lie on
// a <=k-boost seed→root path, shortcut live paths to the root, and keep
// only nodes on super-seed→root paths. The result preserves f_R(B) and
// f−_R(B) for all |B| <= k.
func (gen *Generator) compress(root int32) (*PRR, error) {
	cnt, outStart, outIdx, inStart, inIdx := gen.rawAdj()
	rl := gen.localOf[root]

	// dS: 0-1 BFS from seeds over raw edges (forward). Weight 1 on
	// live-upon-boost edges.
	dS := make([]int32, cnt)
	for i := range dS {
		dS[i] = inf
	}
	var cur, next []int32
	for i, orig := range gen.rawNodes {
		if gen.seedMask[orig] {
			dS[i] = 0
			cur = append(cur, int32(i))
		}
	}
	for d := int32(0); len(cur) > 0; d++ {
		for qi := 0; qi < len(cur); qi++ {
			u := cur[qi]
			if dS[u] != d {
				continue
			}
			for j := outStart[u]; j < outStart[u+1]; j++ {
				e := gen.rawEdges[outIdx[j]]
				t := gen.localOf[e.to]
				nd := d + int32(e.boost)
				if nd < dS[t] {
					dS[t] = nd
					if nd == d {
						cur = append(cur, t)
					} else {
						next = append(next, t)
					}
				}
			}
		}
		cur, next = next, cur[:0]
	}

	inX := make([]bool, cnt)
	for i := range inX {
		inX[i] = dS[i] == 0
	}
	if inX[rl] {
		return nil, fmt.Errorf("root is live-reachable in a boostable PRR-graph")
	}

	// d'r: 0-1 BFS backward from the root, not passing through X.
	dpr := make([]int32, cnt)
	for i := range dpr {
		dpr[i] = inf
	}
	dpr[rl] = 0
	cur = append(cur[:0], rl)
	next = next[:0]
	for d := int32(0); len(cur) > 0; d++ {
		for qi := 0; qi < len(cur); qi++ {
			v := cur[qi]
			if dpr[v] != d {
				continue
			}
			for j := inStart[v]; j < inStart[v+1]; j++ {
				e := gen.rawEdges[inIdx[j]]
				f := gen.localOf[e.from]
				if inX[f] {
					continue // paths may start at the super-seed but not cross it
				}
				nd := d + int32(e.boost)
				if nd < dpr[f] {
					dpr[f] = nd
					if nd == d {
						cur = append(cur, f)
					} else {
						next = append(next, f)
					}
				}
			}
		}
		cur, next = next, cur[:0]
	}

	// Stage-2 ids: 0 = super-seed; kept non-X nodes renumbered 1..
	keepID := make([]int32, cnt)
	var stageOrig []int32 // stage id -> original id (stage 0 = -1)
	stageOrig = append(stageOrig, -1)
	for i := 0; i < cnt; i++ {
		switch {
		case inX[i]:
			keepID[i] = 0
		case dS[i] < inf && dpr[i] < inf && dS[i]+dpr[i] <= int32(gen.k):
			keepID[i] = int32(len(stageOrig))
			stageOrig = append(stageOrig, gen.rawNodes[i])
		default:
			keepID[i] = -1
		}
	}
	rootStage := keepID[rl]
	if rootStage <= 0 {
		return nil, fmt.Errorf("root dropped during compression")
	}

	// Stage-2 edge list with super-seed contraction and root shortcuts.
	type sEdge struct {
		from, to int32
		boost    uint8
	}
	var edges []sEdge
	for i := 0; i < cnt; i++ {
		si := keepID[i]
		if si < 0 {
			continue
		}
		if si > 0 && si != rootStage && dpr[i] == 0 {
			// Live path to the root: outgoing edges replaced by a direct
			// live edge below.
			continue
		}
		for j := outStart[i]; j < outStart[int32(i)+1]; j++ {
			e := gen.rawEdges[outIdx[j]]
			t := keepID[gen.localOf[e.to]]
			if t <= 0 {
				continue // dropped, or edge into the super-seed
			}
			if si == 0 && t == 0 {
				continue
			}
			edges = append(edges, sEdge{from: si, to: t, boost: e.boost})
		}
	}
	for i := 0; i < cnt; i++ {
		si := keepID[i]
		if si > 0 && si != rootStage && dpr[i] == 0 {
			edges = append(edges, sEdge{from: si, to: rootStage, boost: 0})
		}
	}

	// Dedup parallel edges (contraction can create them), preferring live
	// over live-upon-boost.
	sort.Slice(edges, func(a, b int) bool {
		if edges[a].from != edges[b].from {
			return edges[a].from < edges[b].from
		}
		if edges[a].to != edges[b].to {
			return edges[a].to < edges[b].to
		}
		return edges[a].boost < edges[b].boost
	})
	dedup := edges[:0]
	for i, e := range edges {
		if i > 0 && e.from == dedup[len(dedup)-1].from && e.to == dedup[len(dedup)-1].to {
			continue
		}
		dedup = append(dedup, e)
	}
	edges = dedup

	// Keep only nodes on some super-seed→root chain: forward-reachable
	// from the super-seed and backward-reachable from the root, over all
	// (live + live-upon-boost) edges.
	ns := len(stageOrig)
	fwd := make([]bool, ns)
	bwd := make([]bool, ns)
	outAdj := make([][]int32, ns) // stage node -> edge indices
	inAdj := make([][]int32, ns)
	for ei, e := range edges {
		outAdj[e.from] = append(outAdj[e.from], int32(ei))
		inAdj[e.to] = append(inAdj[e.to], int32(ei))
	}
	q := append([]int32(nil), 0)
	fwd[0] = true
	for qi := 0; qi < len(q); qi++ {
		for _, ei := range outAdj[q[qi]] {
			t := edges[ei].to
			if !fwd[t] {
				fwd[t] = true
				q = append(q, t)
			}
		}
	}
	if !fwd[rootStage] {
		return nil, fmt.Errorf("root unreachable from super-seed after contraction")
	}
	q = append(q[:0], rootStage)
	bwd[rootStage] = true
	for qi := 0; qi < len(q); qi++ {
		for _, ei := range inAdj[q[qi]] {
			f := edges[ei].from
			if !bwd[f] {
				bwd[f] = true
				q = append(q, f)
			}
		}
	}

	// Final renumbering.
	finalID := make([]int32, ns)
	finalID[0] = 0
	finalOrig := []int32{-1}
	for s := 1; s < ns; s++ {
		if fwd[s] && bwd[s] {
			finalID[s] = int32(len(finalOrig))
			finalOrig = append(finalOrig, stageOrig[s])
		} else {
			finalID[s] = -1
		}
	}
	n := int32(len(finalOrig))
	R := &PRR{
		root: finalID[rootStage],
		orig: finalOrig,
	}

	// Final CSR (both directions).
	R.outStart = make([]int32, n+1)
	R.inStart = make([]int32, n+1)
	kept := 0
	for _, e := range edges {
		if finalID[e.from] >= 0 && finalID[e.to] >= 0 {
			R.outStart[finalID[e.from]+1]++
			R.inStart[finalID[e.to]+1]++
			kept++
		}
	}
	for i := int32(0); i < n; i++ {
		R.outStart[i+1] += R.outStart[i]
		R.inStart[i+1] += R.inStart[i]
	}
	R.outTo = make([]int32, kept)
	R.outBoost = make([]uint8, kept)
	R.inFrom = make([]int32, kept)
	R.inBoost = make([]uint8, kept)
	outPos := append([]int32(nil), R.outStart[:n]...)
	inPos := append([]int32(nil), R.inStart[:n]...)
	for _, e := range edges {
		f, t := finalID[e.from], finalID[e.to]
		if f < 0 || t < 0 {
			continue
		}
		R.outTo[outPos[f]] = t
		R.outBoost[outPos[f]] = e.boost
		outPos[f]++
		R.inFrom[inPos[t]] = f
		R.inBoost[inPos[t]] = e.boost
		inPos[t]++
	}

	if err := R.validate(); err != nil {
		return nil, err
	}

	// Critical nodes from the compressed structure.
	_, cands := R.Candidates(gen.emptyMask, gen.scratch)
	R.critical = append([]int32(nil), cands...)
	sort.Slice(R.critical, func(i, j int) bool { return R.critical[i] < R.critical[j] })
	return R, nil
}
