package prr

import (
	"fmt"
	"slices"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// Mode selects how much of a boostable PRR-graph is materialized.
type Mode uint8

const (
	// ModeFull builds the compressed PRR-graph and its critical nodes
	// (needed by PRR-Boost, which greedily optimizes Δ̂ on the pool).
	ModeFull Mode = iota
	// ModeLB computes only the critical node set C_R, generating with an
	// effective budget of one boost: single-boost seed→root paths are all
	// C_R depends on, which is why PRR-Boost-LB is faster and leaner
	// (Section V-C).
	ModeLB
)

// edge status codes for the sampled possible world.
const (
	esUnsampled uint8 = iota
	esBlocked
	esLive
	esBoost // live-upon-boost
)

const inf = int32(1) << 29

// rawEdge is a non-blocked edge recorded during the backward BFS, in
// original node ids. boost is 1 for live-upon-boost edges.
type rawEdge struct {
	from, to int32
	boost    uint8
}

// sEdge is a stage-2 (post-contraction) edge in stage-local ids.
type sEdge struct {
	from, to int32
	boost    uint8
}

// Result reports one generated PRR-graph.
type Result struct {
	Kind     Kind
	Root     int32
	Graph    *PRR    // compressed graph; nil unless Kind==Boostable and ModeFull via GenerateFrom
	Critical []int32 // critical node ids; nil unless Kind==Boostable via GenerateFrom
	// RawEdges is the number of non-blocked edges recorded before
	// compression (the "uncompressed" size of Tables 2-3).
	RawEdges int
	// CompressedEdges is the edge count after compression (ModeFull).
	CompressedEdges int
	// NumCritical is the size of the critical node set C_R (set on the
	// pooled GenerateInto path, where Critical itself stays in the
	// arena).
	NumCritical int
	// EdgesExamined counts edge lookups during generation: the empirical
	// analogue of EPT in the running-time analysis.
	EdgesExamined int
}

// Generator produces random PRR-graphs for a fixed (graph, seeds, k).
// It owns large scratch buffers; create one per goroutine. All scratch
// — including the compression working set — is reused across
// generations, so pooled generation (GenerateInto) performs no
// steady-state allocations beyond amortized arena growth.
type Generator struct {
	g        *graph.Graph
	seedMask []bool
	k        int
	mode     Mode

	dr       []int32 // phase 1: node -> #boost-edges to root (inf if unseen)
	expanded []bool
	cur      []int32
	next     []int32

	rawEdges []rawEdge
	rawNodes []int32 // original ids with dr assigned, in discovery order

	localOf []int32 // original id -> raw local index (valid for rawNodes)

	emptyMask []bool // all-false mask for critical extraction
	scratch   *Scratch

	// rawAdj scratch: CSR over the raw edges in raw-local ids, with the
	// edge payloads (endpoint local id, boost flag) materialized in CSR
	// order so the compression BFS passes read contiguous memory instead
	// of chasing edge indices through rawEdges.
	adjOutStart, adjInStart []int32
	adjOutTo, adjInFrom     []int32
	adjOutBoost, adjInBoost []uint8
	adjOutPos, adjInPos     []int32

	// compress scratch, all sized by the raw or stage node count.
	dS, dpr             []int32
	inX                 []bool
	keepID              []int32
	stageOrig           []int32
	sEdges              []sEdge
	sOutStart, sInStart []int32
	sOutTo, sInFrom     []int32
	fwd, bwd            []bool
	finalID             []int32
	finalOrig           []int32
	outPosF, inPosF     []int32
	sortKeys            []uint64
	q                   []int32

	// own is the single-graph emission buffer behind the standalone
	// GenerateFrom path (tests, examples, reference implementations).
	own arena

	// lastExpanded records the nodes expanded by the most recent
	// generation, in discovery order. A generation's RNG draw sequence is
	// exactly: one root draw, then one draw per in-edge of each expanded
	// node — so a sketch is affected by a graph delta iff some expanded
	// node's in-edge list changed. Pool repair reads this after every
	// GenerateInto to maintain its per-sketch touched-edge index. The
	// slice is overwritten by the next generation.
	lastExpanded []int32
}

// NewGenerator returns a Generator. seeds must be valid node ids; k>=1.
func NewGenerator(g *graph.Graph, seeds []int32, k int, mode Mode) (*Generator, error) {
	if k < 1 {
		return nil, fmt.Errorf("prr: k=%d must be >= 1", k)
	}
	if len(seeds) == 0 {
		return nil, fmt.Errorf("prr: empty seed set")
	}
	seedMask := make([]bool, g.N())
	for _, s := range seeds {
		if s < 0 || int(s) >= g.N() {
			return nil, fmt.Errorf("prr: seed %d out of range [0,%d)", s, g.N())
		}
		seedMask[s] = true
	}
	gen := &Generator{
		g:         g,
		seedMask:  seedMask,
		k:         k,
		mode:      mode,
		dr:        make([]int32, g.N()),
		expanded:  make([]bool, g.N()),
		localOf:   make([]int32, g.N()),
		emptyMask: make([]bool, g.N()),
		scratch:   NewScratch(),
	}
	for i := range gen.dr {
		gen.dr[i] = inf
	}
	return gen, nil
}

// genBudget is the pruning budget for phase 1 (k, or 1 in LB mode).
func (gen *Generator) genBudget() int32 {
	if gen.mode == ModeLB {
		return 1
	}
	return int32(gen.k)
}

// cleanup resets all per-generation scratch state, harvesting the
// expanded-node set into lastExpanded on the way out (rawNodes is in
// discovery order, so lastExpanded is too).
func (gen *Generator) cleanup() {
	gen.lastExpanded = gen.lastExpanded[:0]
	for _, v := range gen.rawNodes {
		gen.dr[v] = inf
		if gen.expanded[v] {
			gen.lastExpanded = append(gen.lastExpanded, v)
			gen.expanded[v] = false
		}
	}
	gen.rawNodes = gen.rawNodes[:0]
	gen.rawEdges = gen.rawEdges[:0]
	gen.cur = gen.cur[:0]
	gen.next = gen.next[:0]
}

// Generate produces one PRR-graph for a uniformly random root,
// returning a standalone Result (see GenerateFrom).
func (gen *Generator) Generate(r *rng.Source) Result {
	root := int32(r.Intn(gen.g.N()))
	return gen.GenerateFrom(root, r)
}

// GenerateFrom produces one PRR-graph rooted at root (Algorithm 1) as a
// standalone Result: Graph and Critical own their memory and outlive
// the Generator. Pool construction uses GenerateInto instead, which
// appends the same bits to a shared arena without the copies.
func (gen *Generator) GenerateFrom(root int32, r *rng.Source) Result {
	gen.own.reset()
	res := gen.generateInto(&gen.own, root, r)
	if res.Kind != KindBoostable {
		return res
	}
	if gen.mode == ModeFull {
		view := gen.own.at(0)
		res.Graph = clonePRR(&view)
		res.Critical = res.Graph.critical
	} else {
		res.Critical = append([]int32(nil), gen.own.critAt(0)...)
	}
	return res
}

// GenerateInto produces one PRR-graph for a uniformly random root,
// appending any boostable payload (compressed graph in ModeFull,
// critical set in both modes) to a. The Result carries kind and size
// statistics only; Graph and Critical stay nil.
func (gen *Generator) GenerateInto(a *arena, r *rng.Source) Result {
	root := int32(r.Intn(gen.g.N()))
	return gen.generateInto(a, root, r)
}

// clonePRR deep-copies a (possibly arena-backed) PRR view into a
// standalone graph owning its storage.
func clonePRR(v *PRR) *PRR {
	return &PRR{
		root:     v.root,
		orig:     append([]int32(nil), v.orig...),
		outStart: append([]int32(nil), v.outStart...),
		outTo:    append([]int32(nil), v.outTo...),
		outBoost: append([]uint8(nil), v.outBoost...),
		inStart:  append([]int32(nil), v.inStart...),
		inFrom:   append([]int32(nil), v.inFrom...),
		inBoost:  append([]uint8(nil), v.inBoost...),
		critical: append([]int32(nil), v.critical...),
	}
}

// generateInto is the shared generation core (Algorithm 1): phase-1
// backward sampling, then — for boostable roots — compression (ModeFull)
// or direct critical extraction (ModeLB) emitted into a.
func (gen *Generator) generateInto(a *arena, root int32, r *rng.Source) Result {
	defer gen.cleanup()
	res := Result{Root: root}
	if gen.seedMask[root] {
		res.Kind = KindActivated
		return res
	}

	g := gen.g
	kGen := gen.genBudget()

	// Phase 1: backward 0-1 BFS from the root. Bucket queues process
	// nodes in nondecreasing boost-distance, so a node's distance is
	// final when it is expanded.
	gen.dr[root] = 0
	gen.rawNodes = append(gen.rawNodes, root)
	gen.cur = append(gen.cur, root)
	seenSeed := false
	d := int32(0)
	for len(gen.cur) > 0 {
		for qi := 0; qi < len(gen.cur); qi++ {
			u := gen.cur[qi]
			if gen.dr[u] != d || gen.expanded[u] {
				continue
			}
			gen.expanded[u] = true
			from := g.InFrom(u)
			pArr := g.InP(u)
			pbArr := g.InPBoost(u)
			for i, v := range from {
				// Every node is expanded at most once and edge (v,u) lives
				// only in u's in-edge list, so each edge of the possible
				// world is sampled exactly once per generation — no status
				// cache is needed for consistency.
				st := sampleEdge(pArr[i], pbArr[i], r)
				res.EdgesExamined++
				if st == esBlocked {
					continue
				}
				dvr := d
				var b uint8
				if st == esBoost {
					dvr++
					b = 1
				}
				if dvr > kGen {
					continue // pruning: cannot become live with <= k boosts
				}
				gen.rawEdges = append(gen.rawEdges, rawEdge{from: v, to: u, boost: b})
				if dvr < gen.dr[v] {
					if gen.dr[v] == inf {
						gen.rawNodes = append(gen.rawNodes, v)
					}
					gen.dr[v] = dvr
					if gen.seedMask[v] {
						if dvr == 0 {
							res.Kind = KindActivated
							return res
						}
						seenSeed = true
						// Seeds terminate paths: never expanded.
					} else if dvr == d {
						gen.cur = append(gen.cur, v)
					} else {
						gen.next = append(gen.next, v)
					}
				}
			}
		}
		gen.cur, gen.next = gen.next, gen.cur[:0]
		d++
	}
	if !seenSeed {
		res.Kind = KindHopeless
		return res
	}

	res.Kind = KindBoostable
	res.RawEdges = len(gen.rawEdges)

	if gen.mode == ModeLB {
		res.NumCritical = gen.criticalFromRawInto(a, root)
		return res
	}

	numCrit, compressed, err := gen.compressInto(a, root)
	if err != nil {
		// Compression failing indicates an internal invariant violation;
		// surface it loudly rather than silently skewing estimates.
		panic(fmt.Sprintf("prr: compression failed: %v", err))
	}
	res.NumCritical = numCrit
	res.CompressedEdges = compressed
	return res
}

func sampleEdge(p, pb float64, r *rng.Source) uint8 {
	u := r.Float64()
	switch {
	case u < p:
		return esLive
	case u < pb:
		return esBoost
	default:
		return esBlocked
	}
}

// rawAdj builds forward and backward adjacency over the raw edges in
// local indices, reusing the Generator's CSR scratch. Edge payloads are
// materialized in CSR order — outTo/outBoost indexed by outStart (the
// target local id and boost flag of each out-edge), inFrom/inBoost by
// inStart — so downstream BFS passes stream through contiguous arrays.
func (gen *Generator) rawAdj() (cnt int, outStart, outTo, inStart, inFrom []int32, outBoost, inBoost []uint8) {
	cnt = len(gen.rawNodes)
	for i, orig := range gen.rawNodes {
		gen.localOf[orig] = int32(i)
	}
	outStart = sized(&gen.adjOutStart, cnt+1)
	inStart = sized(&gen.adjInStart, cnt+1)
	for _, e := range gen.rawEdges {
		outStart[gen.localOf[e.from]+1]++
		inStart[gen.localOf[e.to]+1]++
	}
	for i := 0; i < cnt; i++ {
		outStart[i+1] += outStart[i]
		inStart[i+1] += inStart[i]
	}
	m := len(gen.rawEdges)
	outTo = sizedDirty(&gen.adjOutTo, m)
	inFrom = sizedDirty(&gen.adjInFrom, m)
	outBoost = sizedDirty(&gen.adjOutBoost, m)
	inBoost = sizedDirty(&gen.adjInBoost, m)
	outPos := sizedDirty(&gen.adjOutPos, cnt)
	inPos := sizedDirty(&gen.adjInPos, cnt)
	copy(outPos, outStart[:cnt])
	copy(inPos, inStart[:cnt])
	for _, e := range gen.rawEdges {
		f := gen.localOf[e.from]
		t := gen.localOf[e.to]
		outTo[outPos[f]] = t
		outBoost[outPos[f]] = e.boost
		outPos[f]++
		inFrom[inPos[t]] = f
		inBoost[inPos[t]] = e.boost
		inPos[t]++
	}
	return cnt, outStart, outTo, inStart, inFrom, outBoost, inBoost
}

// criticalFromRawInto computes C_R directly on the raw structure and
// appends it (sorted) to a:
// X = nodes live-reachable from seeds, Z = nodes live-reaching the root;
// v is critical iff v ∉ X, v ∈ Z, and some live-upon-boost edge (u,v)
// has u ∈ X. Returns |C_R|.
func (gen *Generator) criticalFromRawInto(a *arena, root int32) int {
	cnt, outStart, outTo, inStart, inFrom, outBoost, inBoost := gen.rawAdj()

	inX := sized(&gen.inX, cnt)
	queue := gen.q[:0]
	for i, orig := range gen.rawNodes {
		if gen.seedMask[orig] {
			inX[i] = true
			queue = append(queue, int32(i))
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for j := outStart[u]; j < outStart[u+1]; j++ {
			if outBoost[j] == 1 {
				continue
			}
			t := outTo[j]
			if !inX[t] {
				inX[t] = true
				queue = append(queue, t)
			}
		}
	}

	inZ := sized(&gen.fwd, cnt) // reuse fwd scratch as the Z mask
	rl := gen.localOf[root]
	inZ[rl] = true
	queue = append(queue[:0], rl)
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for j := inStart[v]; j < inStart[v+1]; j++ {
			if inBoost[j] == 1 {
				continue
			}
			f := inFrom[j]
			if !inZ[f] {
				inZ[f] = true
				queue = append(queue, f)
			}
		}
	}
	gen.q = queue[:0]

	critOff := int32(len(a.critical))
	for i, orig := range gen.rawNodes {
		if inX[i] || !inZ[i] {
			continue
		}
		for j := inStart[i]; j < inStart[int32(i)+1]; j++ {
			if inBoost[j] == 1 && inX[inFrom[j]] {
				a.critical = append(a.critical, orig)
				break
			}
		}
	}
	crit := a.critical[critOff:]
	slices.Sort(crit)
	a.refs = append(a.refs, prrRef{
		nodeOff: int32(len(a.orig)), startOff: int32(len(a.outStart)),
		edgeOff: int32(len(a.outTo)),
		critOff: critOff, numCrit: int32(len(crit)),
	})
	return len(crit)
}

// compressInto implements phase 2 of Algorithm 1 (Section V-A): merge
// the live-reachable region into a super-seed, drop nodes that cannot
// lie on a <=k-boost seed→root path, shortcut live paths to the root,
// and keep only nodes on super-seed→root paths. The compressed graph
// and its critical set are appended to a. The result preserves f_R(B)
// and f−_R(B) for all |B| <= k.
func (gen *Generator) compressInto(a *arena, root int32) (numCrit, compressedEdges int, err error) {
	cnt, outStart, outTo, inStart, inFrom, outBoost, inBoost := gen.rawAdj()
	rl := gen.localOf[root]

	// dS: 0-1 BFS from seeds over raw edges (forward). Weight 1 on
	// live-upon-boost edges.
	dS := sizedDirty(&gen.dS, cnt)
	for i := range dS {
		dS[i] = inf
	}
	cur, next := gen.q[:0], gen.next[:0]
	for i, orig := range gen.rawNodes {
		if gen.seedMask[orig] {
			dS[i] = 0
			cur = append(cur, int32(i))
		}
	}
	for d := int32(0); len(cur) > 0; d++ {
		for qi := 0; qi < len(cur); qi++ {
			u := cur[qi]
			if dS[u] != d {
				continue
			}
			for j := outStart[u]; j < outStart[u+1]; j++ {
				t := outTo[j]
				nd := d + int32(outBoost[j])
				if nd < dS[t] {
					dS[t] = nd
					if nd == d {
						cur = append(cur, t)
					} else {
						next = append(next, t)
					}
				}
			}
		}
		cur, next = next, cur[:0]
	}

	// X is the live-reachable region: exactly the nodes with dS == 0.
	if dS[rl] == 0 {
		return 0, 0, fmt.Errorf("root is live-reachable in a boostable PRR-graph")
	}

	// d'r: 0-1 BFS backward from the root, not passing through X.
	dpr := sizedDirty(&gen.dpr, cnt)
	for i := range dpr {
		dpr[i] = inf
	}
	dpr[rl] = 0
	cur = append(cur[:0], rl)
	next = next[:0]
	for d := int32(0); len(cur) > 0; d++ {
		for qi := 0; qi < len(cur); qi++ {
			v := cur[qi]
			if dpr[v] != d {
				continue
			}
			for j := inStart[v]; j < inStart[v+1]; j++ {
				f := inFrom[j]
				if dS[f] == 0 {
					continue // paths may start at the super-seed but not cross it
				}
				nd := d + int32(inBoost[j])
				if nd < dpr[f] {
					dpr[f] = nd
					if nd == d {
						cur = append(cur, f)
					} else {
						next = append(next, f)
					}
				}
			}
		}
		cur, next = next, cur[:0]
	}
	gen.q, gen.next = cur[:0], next[:0]

	// Stage-2 ids: 0 = super-seed; kept non-X nodes renumbered 1..
	keepID := sizedDirty(&gen.keepID, cnt)
	stageOrig := append(gen.stageOrig[:0], -1) // stage id -> original id (stage 0 = -1)
	for i := 0; i < cnt; i++ {
		switch {
		case dS[i] == 0:
			keepID[i] = 0
		case dS[i] < inf && dpr[i] < inf && dS[i]+dpr[i] <= int32(gen.k):
			keepID[i] = int32(len(stageOrig))
			stageOrig = append(stageOrig, gen.rawNodes[i])
		default:
			keepID[i] = -1
		}
	}
	gen.stageOrig = stageOrig
	rootStage := keepID[rl]
	if rootStage <= 0 {
		return 0, 0, fmt.Errorf("root dropped during compression")
	}

	// Stage-2 edge list with super-seed contraction and root shortcuts.
	edges := gen.sEdges[:0]
	for i := 0; i < cnt; i++ {
		si := keepID[i]
		if si < 0 {
			continue
		}
		if si > 0 && si != rootStage && dpr[i] == 0 {
			// Live path to the root: outgoing edges replaced by a direct
			// live edge below.
			continue
		}
		for j := outStart[i]; j < outStart[int32(i)+1]; j++ {
			t := keepID[outTo[j]]
			if t <= 0 {
				continue // dropped, or edge into the super-seed
			}
			if si == 0 && t == 0 {
				continue
			}
			edges = append(edges, sEdge{from: si, to: t, boost: outBoost[j]})
		}
	}
	for i := 0; i < cnt; i++ {
		si := keepID[i]
		if si > 0 && si != rootStage && dpr[i] == 0 {
			edges = append(edges, sEdge{from: si, to: rootStage, boost: 0})
		}
	}

	// Dedup parallel edges (contraction can create them), preferring live
	// over live-upon-boost: sort packed (from, to, boost) keys — a total
	// order, so the unstable sort is deterministic — and keep the first
	// key of each (from, to) pair.
	keys := sizedDirty(&gen.sortKeys, len(edges))
	for i, e := range edges {
		keys[i] = uint64(e.from)<<33 | uint64(e.to)<<1 | uint64(e.boost)
	}
	slices.Sort(keys)
	edges = edges[:0]
	for i, k := range keys {
		if i > 0 && k>>1 == keys[i-1]>>1 {
			continue
		}
		edges = append(edges, sEdge{from: int32(k >> 33), to: int32(k >> 1 & 0xffffffff), boost: uint8(k & 1)})
	}
	gen.sEdges = edges

	// Keep only nodes on some super-seed→root chain: forward-reachable
	// from the super-seed and backward-reachable from the root, over all
	// (live + live-upon-boost) edges. Stage adjacency is a CSR over the
	// deduplicated edge list.
	ns := len(stageOrig)
	sOutStart := sized(&gen.sOutStart, ns+1)
	sInStart := sized(&gen.sInStart, ns+1)
	for _, e := range edges {
		sOutStart[e.from+1]++
		sInStart[e.to+1]++
	}
	for i := 0; i < ns; i++ {
		sOutStart[i+1] += sOutStart[i]
		sInStart[i+1] += sInStart[i]
	}
	sOutTo := sizedDirty(&gen.sOutTo, len(edges))
	sInFrom := sizedDirty(&gen.sInFrom, len(edges))
	outPos := sizedDirty(&gen.outPosF, ns)
	inPos := sizedDirty(&gen.inPosF, ns)
	copy(outPos, sOutStart[:ns])
	copy(inPos, sInStart[:ns])
	for _, e := range edges {
		sOutTo[outPos[e.from]] = e.to
		outPos[e.from]++
		sInFrom[inPos[e.to]] = e.from
		inPos[e.to]++
	}

	fwd := sized(&gen.fwd, ns)
	bwd := sized(&gen.bwd, ns)
	q := append(gen.q[:0], 0)
	fwd[0] = true
	for qi := 0; qi < len(q); qi++ {
		u := q[qi]
		for j := sOutStart[u]; j < sOutStart[u+1]; j++ {
			t := sOutTo[j]
			if !fwd[t] {
				fwd[t] = true
				q = append(q, t)
			}
		}
	}
	if !fwd[rootStage] {
		gen.q = q[:0]
		return 0, 0, fmt.Errorf("root unreachable from super-seed after contraction")
	}
	q = append(q[:0], rootStage)
	bwd[rootStage] = true
	for qi := 0; qi < len(q); qi++ {
		v := q[qi]
		for j := sInStart[v]; j < sInStart[v+1]; j++ {
			f := sInFrom[j]
			if !bwd[f] {
				bwd[f] = true
				q = append(q, f)
			}
		}
	}
	gen.q = q[:0]

	// Final renumbering.
	finalID := sizedDirty(&gen.finalID, ns)
	finalID[0] = 0
	finalOrig := append(gen.finalOrig[:0], -1)
	for s := 1; s < ns; s++ {
		if fwd[s] && bwd[s] {
			finalID[s] = int32(len(finalOrig))
			finalOrig = append(finalOrig, stageOrig[s])
		} else {
			finalID[s] = -1
		}
	}
	gen.finalOrig = finalOrig
	n := int32(len(finalOrig))

	// Final CSR (both directions), emitted straight into the arena.
	ref := prrRef{
		root:     finalID[rootStage],
		nodeOff:  int32(len(a.orig)),
		numNodes: n,
		startOff: int32(len(a.outStart)),
		edgeOff:  int32(len(a.outTo)),
	}
	a.orig = append(a.orig, finalOrig...)
	a.outStart = grown(a.outStart, int(n)+1)
	a.inStart = grown(a.inStart, int(n)+1)
	rOutStart := a.outStart[ref.startOff:]
	rInStart := a.inStart[ref.startOff:]
	kept := 0
	for _, e := range edges {
		if finalID[e.from] >= 0 && finalID[e.to] >= 0 {
			rOutStart[finalID[e.from]+1]++
			rInStart[finalID[e.to]+1]++
			kept++
		}
	}
	for i := int32(0); i < n; i++ {
		rOutStart[i+1] += rOutStart[i]
		rInStart[i+1] += rInStart[i]
	}
	ref.numEdges = int32(kept)
	a.outTo = grown(a.outTo, kept)
	a.outBoost = grown(a.outBoost, kept)
	a.inFrom = grown(a.inFrom, kept)
	a.inBoost = grown(a.inBoost, kept)
	rOutTo := a.outTo[ref.edgeOff:]
	rOutBoost := a.outBoost[ref.edgeOff:]
	rInFrom := a.inFrom[ref.edgeOff:]
	rInBoost := a.inBoost[ref.edgeOff:]
	outPosF := outPos[:n]
	inPosF := inPos[:n]
	copy(outPosF, rOutStart[:n])
	copy(inPosF, rInStart[:n])
	for _, e := range edges {
		f, t := finalID[e.from], finalID[e.to]
		if f < 0 || t < 0 {
			continue
		}
		rOutTo[outPosF[f]] = t
		rOutBoost[outPosF[f]] = e.boost
		outPosF[f]++
		rInFrom[inPosF[t]] = f
		rInBoost[inPosF[t]] = e.boost
		inPosF[t]++
	}

	R := a.view(&ref)
	if err := R.validate(); err != nil {
		return 0, 0, err
	}

	// Critical nodes from the compressed structure.
	_, cands := R.Candidates(gen.emptyMask, gen.scratch)
	ref.critOff = int32(len(a.critical))
	a.critical = append(a.critical, cands...)
	crit := a.critical[ref.critOff:]
	slices.Sort(crit)
	ref.numCrit = int32(len(crit))
	a.refs = append(a.refs, ref)
	return len(crit), kept, nil
}
