package prr

// This file is the arena layout for pooled PRR-graph storage. A pool
// used to hold `graphs []*PRR`, each owning ~9 tiny heap slices; at
// tens of thousands of sketches per pool that is hundreds of thousands
// of allocations per build and a pointer-chasing walk for every
// selection re-evaluation. An arena instead concatenates every graph's
// node table, CSR offsets, edge arrays and critical set into shared
// backing arrays, with one fixed-size prrRef record locating each
// graph. Pool growth is O(1) allocations per backing array (amortized),
// Eval and Candidates walk contiguous memory, byte accounting is exact,
// and per-worker shard arenas merge into the pool arena with bulk
// copies in deterministic worker order.

// prrRef locates one compressed PRR-graph inside an arena. All offsets
// are into the arena's shared backing arrays; CSR offset values inside
// the outStart/inStart segments stay graph-local (0..numEdges), so a
// view sliced out of the arena is bit-identical to the standalone PRR
// the generator used to allocate.
type prrRef struct {
	root     int32 // local id of the root node
	nodeOff  int32 // into orig; numNodes entries
	numNodes int32
	startOff int32 // into outStart/inStart; numNodes+1 entries each
	edgeOff  int32 // into outTo/outBoost/inFrom/inBoost; numEdges entries each
	numEdges int32
	critOff  int32 // into critical; numCrit entries
	numCrit  int32
}

// arena is flat backing storage for compressed PRR-graphs. In ModeLB
// only the critical segments are populated (refs carry zero nodes and
// edges) — the lower-bound pool never materializes graph structure.
type arena struct {
	refs     []prrRef
	orig     []int32
	outStart []int32
	inStart  []int32
	outTo    []int32
	outBoost []uint8
	inFrom   []int32
	inBoost  []uint8
	critical []int32
}

// numGraphs returns the number of stored graphs.
func (a *arena) numGraphs() int { return len(a.refs) }

// view materializes ref as a PRR aliasing the arena's storage. The
// result is a value; take its address to call PRR methods. It stays
// valid across appends (slices keep pointing at the old backing array
// if one grows) but callers inside the pool only build views under the
// pool's usual read/extend discipline.
func (a *arena) view(ref *prrRef) PRR {
	return PRR{
		root:     ref.root,
		orig:     a.orig[ref.nodeOff : ref.nodeOff+ref.numNodes],
		outStart: a.outStart[ref.startOff : ref.startOff+ref.numNodes+1],
		outTo:    a.outTo[ref.edgeOff : ref.edgeOff+ref.numEdges],
		outBoost: a.outBoost[ref.edgeOff : ref.edgeOff+ref.numEdges],
		inStart:  a.inStart[ref.startOff : ref.startOff+ref.numNodes+1],
		inFrom:   a.inFrom[ref.edgeOff : ref.edgeOff+ref.numEdges],
		inBoost:  a.inBoost[ref.edgeOff : ref.edgeOff+ref.numEdges],
		critical: a.critical[ref.critOff : ref.critOff+ref.numCrit],
	}
}

// at materializes graph i as a PRR view (see view).
func (a *arena) at(i int) PRR { return a.view(&a.refs[i]) }

// critAt returns graph i's critical node set (sorted original ids),
// aliasing the arena (kboost:aliased-view).
func (a *arena) critAt(i int) []int32 {
	ref := &a.refs[i]
	return a.critical[ref.critOff : ref.critOff+ref.numCrit]
}

// reset truncates the arena for reuse (shards are recycled across
// Extend calls), keeping the backing arrays.
func (a *arena) reset() {
	a.refs = a.refs[:0]
	a.orig = a.orig[:0]
	a.outStart = a.outStart[:0]
	a.inStart = a.inStart[:0]
	a.outTo = a.outTo[:0]
	a.outBoost = a.outBoost[:0]
	a.inFrom = a.inFrom[:0]
	a.inBoost = a.inBoost[:0]
	a.critical = a.critical[:0]
}

// appendArena bulk-appends o's graphs onto a, shifting offsets. This is
// the shard merge: a handful of memmoves regardless of graph count.
func (a *arena) appendArena(o *arena) {
	nodeBase := int32(len(a.orig))
	startBase := int32(len(a.outStart))
	edgeBase := int32(len(a.outTo))
	critBase := int32(len(a.critical))
	a.orig = append(a.orig, o.orig...)
	a.outStart = append(a.outStart, o.outStart...)
	a.inStart = append(a.inStart, o.inStart...)
	a.outTo = append(a.outTo, o.outTo...)
	a.outBoost = append(a.outBoost, o.outBoost...)
	a.inFrom = append(a.inFrom, o.inFrom...)
	a.inBoost = append(a.inBoost, o.inBoost...)
	a.critical = append(a.critical, o.critical...)
	for _, ref := range o.refs {
		ref.nodeOff += nodeBase
		ref.startOff += startBase
		ref.edgeOff += edgeBase
		ref.critOff += critBase
		a.refs = append(a.refs, ref)
	}
}

// appendGraph copies graph i of src onto a, shifting offsets — the
// per-sketch sibling of appendArena, used by pool repair to carry an
// untouched sketch into the rebuilt arena by reference to its bits. In
// ModeLB refs carry no node/edge structure (numNodes == 0) and only the
// critical segment is copied, matching how such refs were emitted.
func (a *arena) appendGraph(src *arena, i int) {
	ref := src.refs[i]
	nref := prrRef{
		root:     ref.root,
		nodeOff:  int32(len(a.orig)),
		numNodes: ref.numNodes,
		startOff: int32(len(a.outStart)),
		edgeOff:  int32(len(a.outTo)),
		numEdges: ref.numEdges,
		critOff:  int32(len(a.critical)),
		numCrit:  ref.numCrit,
	}
	if ref.numNodes > 0 {
		a.orig = append(a.orig, src.orig[ref.nodeOff:ref.nodeOff+ref.numNodes]...)
		a.outStart = append(a.outStart, src.outStart[ref.startOff:ref.startOff+ref.numNodes+1]...)
		a.inStart = append(a.inStart, src.inStart[ref.startOff:ref.startOff+ref.numNodes+1]...)
		a.outTo = append(a.outTo, src.outTo[ref.edgeOff:ref.edgeOff+ref.numEdges]...)
		a.outBoost = append(a.outBoost, src.outBoost[ref.edgeOff:ref.edgeOff+ref.numEdges]...)
		a.inFrom = append(a.inFrom, src.inFrom[ref.edgeOff:ref.edgeOff+ref.numEdges]...)
		a.inBoost = append(a.inBoost, src.inBoost[ref.edgeOff:ref.edgeOff+ref.numEdges]...)
	}
	a.critical = append(a.critical, src.critical[ref.critOff:ref.critOff+ref.numCrit]...)
	a.refs = append(a.refs, nref)
}

// bytes returns the resident size of the arena's backing arrays,
// counted by capacity: append-doubling slack and truncated-but-reused
// shard buffers are real memory, so they belong in the eviction weight.
func (a *arena) bytes() int64 {
	b := int64(cap(a.orig)+cap(a.outStart)+cap(a.inStart)+cap(a.outTo)+cap(a.inFrom)+cap(a.critical)) * 4
	b += int64(cap(a.outBoost) + cap(a.inBoost))
	b += int64(cap(a.refs)) * 32 // 8 × int32 per ref
	return b
}

// grown returns s extended by n elements, zeroing the new tail. It
// doubles capacity on growth so repeated per-graph extensions amortize
// to O(1) allocations.
func grown[T int32 | uint8 | bool](s []T, n int) []T {
	need := len(s) + n
	if cap(s) < need {
		grow := 2 * cap(s)
		if grow < need {
			grow = need
		}
		ns := make([]T, len(s), grow)
		copy(ns, s)
		s = ns
	}
	s = s[:need]
	clear(s[need-n:])
	return s
}

// sized returns a scratch buffer of length n backed by *buf, growing
// the backing array when needed. Contents are zeroed.
func sized[T int32 | uint8 | bool](buf *[]T, n int) []T {
	s := *buf
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
		clear(s)
	}
	*buf = s
	return s
}

// sizedDirty is sized without the zeroing, for buffers the caller fully
// overwrites before reading.
func sizedDirty[T int32 | uint8 | uint64 | bool](buf *[]T, n int) []T {
	s := *buf
	if cap(s) < n {
		s = make([]T, n)
	} else {
		s = s[:n]
	}
	*buf = s
	return s
}
