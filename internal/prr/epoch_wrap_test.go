package prr

import (
	"fmt"
	"math"
	"testing"

	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// TestScratchEpochWrap forces the int32 epoch stamp to wrap and checks
// that evaluation stays correct across the wrap: before the fix, the
// epoch restarted at values still present in mark[], so stale entries
// read as "marked" and BFS results silently went stale.
func TestScratchEpochWrap(t *testing.T) {
	r := rng.New(17)
	g := testutil.RandomGraph(r, 15, 40, 0.5)
	seeds := testutil.RandomSeedSet(r, g.N(), 2)
	gen, err := NewGenerator(g, seeds, 3, ModeFull)
	if err != nil {
		t.Fatal(err)
	}
	// Collect a few boostable graphs to evaluate.
	var graphs []*PRR
	for i := 0; i < 200 && len(graphs) < 5; i++ {
		res := gen.Generate(r)
		if res.Kind == KindBoostable {
			graphs = append(graphs, res.Graph)
		}
	}
	if len(graphs) == 0 {
		t.Skip("no boostable graphs on this instance")
	}

	// Reference results from a fresh scratch per call (epoch far from
	// wrapping).
	mask := make([]bool, g.N())
	for v := 0; v < g.N(); v += 2 {
		mask[v] = true
	}
	type ref struct {
		eval    bool
		covered bool
		cands   string
	}
	refs := make([]ref, len(graphs))
	for i, R := range graphs {
		s := NewScratch()
		refs[i].eval = R.Eval(mask, s)
		covered, cands := R.Candidates(mask, NewScratch())
		refs[i].covered = covered
		refs[i].cands = fmt.Sprint(cands)
	}

	// One shared scratch, pushed to the brink of the wrap, then used
	// across it. Eval resets with n and Candidates with 2n, so the
	// wrap-triggering reset is exercised for both mark layouts.
	s := NewScratch()
	for i, R := range graphs {
		s.epoch = math.MaxInt32 - 1 // next reset lands on MaxInt32, then wraps
		for rep := 0; rep < 4; rep++ {
			if got := R.Eval(mask, s); got != refs[i].eval {
				t.Fatalf("graph %d rep %d: Eval=%v across wrap, want %v (epoch=%d)", i, rep, got, refs[i].eval, s.epoch)
			}
			covered, cands := R.Candidates(mask, s)
			if covered != refs[i].covered || fmt.Sprint(cands) != refs[i].cands {
				t.Fatalf("graph %d rep %d: Candidates=(%v,%v) across wrap, want (%v,%s)",
					i, rep, covered, cands, refs[i].covered, refs[i].cands)
			}
		}
		if s.epoch >= math.MaxInt32-1 {
			t.Fatalf("epoch did not wrap: %d", s.epoch)
		}
	}
}
