package prr

// This file is the PRR side of delta graph mutation: the per-sketch
// generation log that doubles as a touched-edge index, and Pool.Repair,
// which transitions a pool to a patched graph by regenerating only the
// sketches whose RNG draw sequence a delta could have changed.
//
// The correctness argument rests on two invariants established in
// pool.go and generator.go:
//
//  1. Sketch i is generated from the stateless stream
//     rng.StreamSeed(seed, i), independent of worker count and staging,
//     and the arena stores boostable sketches in global index order.
//  2. A generation's draw sequence is exactly one root draw (a function
//     of n only) plus one draw per in-edge of each expanded node, in
//     deterministic order; everything downstream (raw edges,
//     compression, critical sets) is a pure function of those draws and
//     the seed set.
//
// Therefore a sketch whose expanded nodes all kept their in-edge lists
// is bit-identical on the patched graph — copying it by reference IS
// regenerating it — and a touched sketch regenerated from its stream on
// the patched graph is bit-identical to what a cold pool build at the
// same (seed, total) would produce. Repair yields a pool
// indistinguishable from that cold rebuild.

import (
	"fmt"
	"sync"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/maxcover"
)

// sketchLog records, for every generated sketch in global index order,
// its classification, its size statistics, and the set of nodes its
// generation expanded (a CSR, discovery-ordered). The expanded sets are
// the pool's touched-edge index: sketch i depends on the graph only
// through the in-edge lists of exp(i).
type sketchLog struct {
	kind     []Kind
	examined []int32
	raw      []int32 // raw edges (boostable sketches; 0 otherwise)
	comp     []int32 // compressed edges (ModeFull boostable; 0 otherwise)
	expStart []int32 // CSR offsets into expItems; len = count+1
	expItems []int32
}

func (l *sketchLog) count() int { return len(l.kind) }

// exp returns sketch i's expanded-node set, aliasing the log
// (kboost:aliased-view).
func (l *sketchLog) exp(i int) []int32 {
	return l.expItems[l.expStart[i]:l.expStart[i+1]]
}

func (l *sketchLog) reset() {
	l.kind = l.kind[:0]
	l.examined = l.examined[:0]
	l.raw = l.raw[:0]
	l.comp = l.comp[:0]
	l.expStart = l.expStart[:0]
	l.expItems = l.expItems[:0]
}

// append records one generation result and its expanded-node set.
func (l *sketchLog) append(res Result, expanded []int32) {
	if len(l.expStart) == 0 {
		l.expStart = append(l.expStart, 0)
	}
	l.kind = append(l.kind, res.Kind)
	l.examined = append(l.examined, int32(res.EdgesExamined))
	l.raw = append(l.raw, int32(res.RawEdges))
	l.comp = append(l.comp, int32(res.CompressedEdges))
	l.expItems = append(l.expItems, expanded...)
	l.expStart = append(l.expStart, int32(len(l.expItems)))
}

// appendFrom copies sketch i of src onto l.
func (l *sketchLog) appendFrom(src *sketchLog, i int) {
	if len(l.expStart) == 0 {
		l.expStart = append(l.expStart, 0)
	}
	l.kind = append(l.kind, src.kind[i])
	l.examined = append(l.examined, src.examined[i])
	l.raw = append(l.raw, src.raw[i])
	l.comp = append(l.comp, src.comp[i])
	l.expItems = append(l.expItems, src.exp(i)...)
	l.expStart = append(l.expStart, int32(len(l.expItems)))
}

// appendLog bulk-appends src onto l (the shard merge).
func (l *sketchLog) appendLog(src *sketchLog) {
	if src.count() == 0 {
		return
	}
	if len(l.expStart) == 0 {
		l.expStart = append(l.expStart, 0)
	}
	base := int32(len(l.expItems))
	l.kind = append(l.kind, src.kind...)
	l.examined = append(l.examined, src.examined...)
	l.raw = append(l.raw, src.raw...)
	l.comp = append(l.comp, src.comp...)
	l.expItems = append(l.expItems, src.expItems...)
	for _, off := range src.expStart[1:] {
		l.expStart = append(l.expStart, base+off)
	}
}

// bytes returns the log's resident size, counted by capacity.
func (l *sketchLog) bytes() int64 {
	return int64(cap(l.examined)+cap(l.raw)+cap(l.comp)+cap(l.expStart)+cap(l.expItems))*4 +
		int64(cap(l.kind))
}

// Repair transitions the pool from its current graph to g2 — the result
// of applying an edge delta whose per-node in-edge dirtiness is dirtyIn
// (see graph.DeltaEffect) — by regenerating exactly the sketches whose
// expanded region touches a dirty in-edge list and copying every other
// sketch by reference. The repaired pool is bit-identical to a cold
// pool built on g2 at the same (seed, total): contents, statistics,
// estimates and selections all match, which is the property the engine's
// equivalence gate asserts.
//
// touched reports how many sketches needed regeneration. When the
// touched share of the pool's total expansion size — the number of
// nodes the generation BFSes examined, the quantity regeneration cost
// is actually proportional to — exceeds maxFrac (0 < maxFrac <= 1),
// Repair declines without mutating the pool and returns ok == false: at
// high touched cost a cold rebuild is cheaper than a repair that
// resamples almost everything and still rebuilds the indexes. Weighting
// by expansion size instead of sketch count matters on dense
// supercritical graphs, where a sketch's probability of being touched
// and its regeneration cost are both proportional to its expansion: the
// ~15% of sketches a small delta touches there can carry ~75% of the
// pool's generation cost, making repair as slow as a rebuild even
// though the touched count looks low. The caller decides what to do
// with a declined pool (the engine drops it).
//
// The node universe is fixed: g2 must have the same node count (deltas
// mutate edges only). Growing the universe is a re-upload.
func (p *Pool) Repair(g2 *graph.Graph, dirtyIn []bool, maxFrac float64) (touched int, ok bool, err error) {
	n := p.g.N()
	if g2.N() != n {
		return 0, false, fmt.Errorf("prr: repair changes node count %d -> %d", n, g2.N())
	}
	if len(dirtyIn) != n {
		return 0, false, fmt.Errorf("prr: dirtyIn has %d entries, want %d", len(dirtyIn), n)
	}

	total := p.total
	// Touched scan: parallel over contiguous index ranges, accumulating
	// both the touched count and the touched expansion size (the cost
	// weight for the fallback decision below).
	touchedMask := make([]bool, total)
	counts, offs := splitCounts(total, p.workers)
	perWorker := make([]int, p.workers)
	perWorkerExp := make([]int64, p.workers)
	var wg sync.WaitGroup
	for w := 0; w < p.workers; w++ {
		if counts[w] == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := 0
			var exp int64
			for i := offs[w]; i < offs[w+1]; i++ {
				for _, v := range p.log.exp(i) {
					if dirtyIn[v] {
						touchedMask[i] = true
						c++
						exp += int64(len(p.log.exp(i)))
						break
					}
				}
			}
			perWorker[w] = c
			perWorkerExp[w] = exp
		}(w)
	}
	wg.Wait()
	var touchedExp int64
	for w := range perWorker {
		touched += perWorker[w]
		touchedExp += perWorkerExp[w]
	}
	totalExp := int64(len(p.log.expItems))
	if totalExp > 0 && float64(touchedExp) > maxFrac*float64(totalExp) {
		return touched, false, nil
	}

	// Fresh generators bound to the patched graph. Built before any pool
	// state is mutated so an error leaves the pool intact.
	gens := make([]*Generator, p.workers)
	for w := range gens {
		gens[w], err = NewGenerator(g2, p.seeds, p.k, p.mode)
		if err != nil {
			return touched, false, err
		}
	}

	// rowOf[i]: arena row of boostable sketch i (arena order == global
	// index order among boostable sketches).
	rowOf := make([]int32, total)
	row := int32(0)
	for i := 0; i < total; i++ {
		if p.log.kind[i] == KindBoostable {
			rowOf[i] = row
			row++
		} else {
			rowOf[i] = -1
		}
	}

	// Rebuild: workers take the same contiguous index ranges as the
	// touched scan, regenerating touched sketches from their stateless
	// streams and copying untouched ones out of the old arena and log.
	for w := 0; w < p.workers; w++ {
		if counts[w] == 0 {
			continue
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := p.streams[w]
			gen := gens[w]
			sh := p.shards[w]
			sh.reset()
			for i := offs[w]; i < offs[w+1]; i++ {
				if touchedMask[i] {
					r.ReseedStream(p.seed, uint64(i))
					res := gen.GenerateInto(&sh.arena, r)
					sh.record(res, gen.lastExpanded)
				} else {
					sh.log.appendFrom(&p.log, i)
					if ri := rowOf[i]; ri >= 0 {
						sh.arena.appendGraph(&p.arena, int(ri))
					}
				}
			}
		}(w)
	}
	wg.Wait()

	// Merge in worker order into fresh storage (the old arena is still
	// the copy source), then recompute counters and rebuild the
	// coverage/selection indexes from the repaired arena — critical sets
	// are reused from the arena, so no sampling happens here.
	var na arena
	var nl sketchLog
	for w := 0; w < p.workers; w++ {
		if counts[w] == 0 {
			continue
		}
		na.appendArena(&p.shards[w].arena)
		nl.appendLog(&p.shards[w].log)
		p.shards[w].reset()
	}
	p.arena = na
	p.log = nl
	p.g = g2
	p.gens = gens

	p.numActivated, p.numHopeless, p.numBoostable = 0, 0, 0
	p.sumRaw, p.sumCompressed, p.sumExamined, p.sumCritical = 0, 0, 0, 0
	for i := 0; i < total; i++ {
		p.sumExamined += int64(p.log.examined[i])
		switch p.log.kind[i] {
		case KindActivated:
			p.numActivated++
		case KindHopeless:
			p.numHopeless++
		case KindBoostable:
			p.numBoostable++
			p.sumRaw += int64(p.log.raw[i])
			p.sumCompressed += int64(p.log.comp[i])
		}
	}
	p.cov = maxcover.New(n)
	for i := 0; i < p.arena.numGraphs(); i++ {
		crit := p.arena.critAt(i)
		p.sumCritical += int64(len(crit))
		p.cov.AddSortedSet(crit)
	}
	if p.mode == ModeFull {
		p.sel = newDeltaIndex(n)
		p.sel.extend(&p.arena, 0)
	}
	p.generation++
	return touched, true, nil
}
