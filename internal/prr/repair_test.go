package prr

import (
	"fmt"
	"testing"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// randomPoolDelta derives a random valid delta against g: removals and
// reweights sampled from existing edges, adds from absent pairs.
func randomPoolDelta(t testing.TB, r *rng.Source, g *graph.Graph, nAdd, nRemove, nReweight int) *graph.EdgeDelta {
	t.Helper()
	existing := g.Edges()
	used := map[graph.EdgeKey]bool{}
	for _, e := range existing {
		used[graph.EdgeKey{From: e.From, To: e.To}] = false
	}
	d := &graph.EdgeDelta{}
	perm := r.Perm(len(existing))
	pi := 0
	takeExisting := func() (graph.Edge, bool) {
		for pi < len(perm) {
			e := existing[perm[pi]]
			pi++
			k := graph.EdgeKey{From: e.From, To: e.To}
			if !used[k] {
				used[k] = true
				return e, true
			}
		}
		return graph.Edge{}, false
	}
	for i := 0; i < nRemove; i++ {
		if e, ok := takeExisting(); ok {
			d.Remove = append(d.Remove, graph.EdgeKey{From: e.From, To: e.To})
		}
	}
	for i := 0; i < nReweight; i++ {
		if e, ok := takeExisting(); ok {
			p := r.Float64() * 0.5
			e.P, e.PBoost = p, 1-(1-p)*(1-p)
			d.Reweight = append(d.Reweight, e)
		}
	}
	for tries := 0; len(d.Add) < nAdd && tries < 50*nAdd+100; tries++ {
		u := int32(r.Intn(g.N()))
		v := int32(r.Intn(g.N()))
		k := graph.EdgeKey{From: u, To: v}
		if _, present := used[k]; u == v || present {
			continue
		}
		used[k] = true
		p := r.Float64() * 0.5
		d.Add = append(d.Add, graph.Edge{From: u, To: v, P: p, PBoost: 1 - (1-p)*(1-p)})
	}
	return d
}

// samePoolBits asserts two pools are bit-identical: same log, arena,
// statistics, estimates and selections. This is the repair equivalence
// gate — got is a repaired pool, want a cold rebuild on the same graph.
func samePoolBits(t *testing.T, label string, got, want *Pool) {
	t.Helper()
	eq := func(what string, a, b interface{}) {
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("%s: %s differ:\n got %v\nwant %v", label, what, a, b)
		}
	}
	eq("stats", got.Stats(), want.Stats())
	eq("log kinds", got.log.kind, want.log.kind)
	eq("log examined", got.log.examined, want.log.examined)
	eq("log raw", got.log.raw, want.log.raw)
	eq("log comp", got.log.comp, want.log.comp)
	eq("log expStart", got.log.expStart, want.log.expStart)
	eq("log expItems", got.log.expItems, want.log.expItems)
	eq("arena refs", got.arena.refs, want.arena.refs)
	eq("arena orig", got.arena.orig, want.arena.orig)
	eq("arena outStart", got.arena.outStart, want.arena.outStart)
	eq("arena inStart", got.arena.inStart, want.arena.inStart)
	eq("arena outTo", got.arena.outTo, want.arena.outTo)
	eq("arena outBoost", got.arena.outBoost, want.arena.outBoost)
	eq("arena inFrom", got.arena.inFrom, want.arena.inFrom)
	eq("arena inBoost", got.arena.inBoost, want.arena.inBoost)
	eq("arena critical", got.arena.critical, want.arena.critical)

	n := got.g.N()
	boost := []int32{int32(1 % n), int32(7 % n)}
	eq("EstimateMu", got.EstimateMu(boost), want.EstimateMu(boost))
	if got.mode == ModeFull {
		gd, err := got.EstimateDelta(boost)
		if err != nil {
			t.Fatalf("%s: EstimateDelta: %v", label, err)
		}
		wd, err := want.EstimateDelta(boost)
		if err != nil {
			t.Fatalf("%s: EstimateDelta (cold): %v", label, err)
		}
		eq("EstimateDelta", gd, wd)
		gs, gc, err := got.SelectDelta(got.k)
		if err != nil {
			t.Fatalf("%s: SelectDelta: %v", label, err)
		}
		ws, wc, err := want.SelectDelta(want.k)
		if err != nil {
			t.Fatalf("%s: SelectDelta (cold): %v", label, err)
		}
		eq("SelectDelta", gs, ws)
		eq("SelectDelta coverage", gc, wc)
	} else {
		gs, gc := got.SelectAndCover(got.k)
		ws, wc := want.SelectAndCover(want.k)
		eq("SelectAndCover", gs, ws)
		eq("SelectAndCover coverage", gc, wc)
	}
}

// TestRepairMatchesColdRebuild is the tentpole equivalence property:
// applying staged delta sequences and repairing after each must leave
// the pool bit-identical to a cold pool built on the final graph at the
// same (seed, total), across worker counts and both modes.
func TestRepairMatchesColdRebuild(t *testing.T) {
	for trial := 0; trial < 3; trial++ {
		for _, mode := range []Mode{ModeFull, ModeLB} {
			for _, workers := range []int{1, 2, 7} {
				tr := rng.New(uint64(trial)*131 + uint64(workers)*17 + uint64(mode) + 7)
				g := testutil.RandomGraph(tr, 25+tr.Intn(20), 120+tr.Intn(80), 0.5)
				seeds := testutil.RandomSeedSet(tr, g.N(), 1+tr.Intn(2))
				k := 2 + tr.Intn(3)
				seed := uint64(trial)*977 + 55

				pool, err := NewPool(g, seeds, k, mode, seed, workers)
				if err != nil {
					t.Fatal(err)
				}
				pool.Extend(600)

				batches := 1 + tr.Intn(3)
				for b := 0; b < batches; b++ {
					d := randomPoolDelta(t, tr, g, 1+tr.Intn(4), tr.Intn(4), tr.Intn(4))
					g2, eff, err := g.ApplyDelta(d)
					if err != nil {
						t.Fatalf("ApplyDelta: %v", err)
					}
					wantGen := pool.Generation() + 1
					touched, ok, err := pool.Repair(g2, eff.DirtyIn, 1.0)
					if err != nil {
						t.Fatalf("Repair: %v", err)
					}
					if !ok {
						t.Fatalf("Repair declined at maxFrac=1.0 (touched %d)", touched)
					}
					if touched < 0 || touched > pool.Size() {
						t.Fatalf("touched %d out of range [0,%d]", touched, pool.Size())
					}
					if pool.Generation() != wantGen {
						t.Fatalf("generation %d after repair, want %d", pool.Generation(), wantGen)
					}
					if pool.Graph() != g2 {
						t.Fatal("pool graph not swapped")
					}
					g = g2

					cold, err := NewPool(g2, seeds, k, mode, seed, 1)
					if err != nil {
						t.Fatal(err)
					}
					cold.Extend(600)
					label := fmt.Sprintf("trial %d mode %d workers %d batch %d (touched %d)",
						trial, mode, workers, b, touched)
					samePoolBits(t, label, pool, cold)

					// Growing a repaired pool must also match growing the
					// cold one: streams and indices survived the repair.
					if b == batches-1 {
						pool.Extend(700)
						cold.Extend(700)
						samePoolBits(t, label+" post-grow", pool, cold)
					}
				}
			}
		}
	}
}

// TestRepairUntouchedDelta: a delta in a region no sketch expanded
// (possible when seeds block expansion) must report touched counts that
// agree with the expanded-set index, and a zero-dirty repair touches
// nothing while still swapping the graph.
func TestRepairNoDirtyNodes(t *testing.T) {
	tr := rng.New(3)
	g := testutil.RandomGraph(tr, 20, 80, 0.4)
	seeds := testutil.RandomSeedSet(tr, g.N(), 2)
	pool, err := NewPool(g, seeds, 3, ModeFull, 42, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(300)
	before := pool.Stats()
	g2, _, err := g.ApplyDelta(&graph.EdgeDelta{})
	if err != nil {
		t.Fatal(err)
	}
	touched, ok, err := pool.Repair(g2, make([]bool, g.N()), 1.0)
	if err != nil || !ok {
		t.Fatalf("Repair: touched=%d ok=%v err=%v", touched, ok, err)
	}
	if touched != 0 {
		t.Fatalf("zero-dirty repair touched %d sketches", touched)
	}
	if pool.Graph() != g2 {
		t.Fatal("graph not swapped")
	}
	if fmt.Sprint(pool.Stats()) != fmt.Sprint(before) {
		t.Fatalf("zero-dirty repair changed stats: %+v vs %+v", pool.Stats(), before)
	}
}

// TestRepairFallback: when the touched fraction exceeds maxFrac, Repair
// must decline without mutating anything.
func TestRepairFallback(t *testing.T) {
	tr := rng.New(11)
	g := testutil.RandomGraph(tr, 20, 100, 0.5)
	seeds := testutil.RandomSeedSet(tr, g.N(), 1)
	pool, err := NewPool(g, seeds, 3, ModeFull, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(400)
	before := pool.Stats()
	gen := pool.Generation()

	// Dirty every node: every sketch that expanded anything is touched.
	dirty := make([]bool, g.N())
	for i := range dirty {
		dirty[i] = true
	}
	g2, _, err := g.ApplyDelta(&graph.EdgeDelta{})
	if err != nil {
		t.Fatal(err)
	}
	touched, ok, err := pool.Repair(g2, dirty, 0.01)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if ok {
		t.Fatalf("Repair accepted %d touched sketches above 1%% threshold", touched)
	}
	if touched == 0 {
		t.Fatal("all-dirty repair touched no sketches")
	}
	if pool.Generation() != gen || pool.Graph() != g ||
		fmt.Sprint(pool.Stats()) != fmt.Sprint(before) {
		t.Fatal("declined repair mutated the pool")
	}
	// The same repair goes through with the threshold lifted.
	if _, ok, err := pool.Repair(g2, dirty, 1.0); err != nil || !ok {
		t.Fatalf("unrestricted repair failed: ok=%v err=%v", ok, err)
	}
}

// TestRepairRejectsNodeCountChange: deltas never change the node
// universe.
func TestRepairRejectsNodeCountChange(t *testing.T) {
	tr := rng.New(1)
	g := testutil.RandomGraph(tr, 10, 30, 0.5)
	g2 := testutil.RandomGraph(tr, 11, 30, 0.5)
	pool, err := NewPool(g, []int32{0}, 2, ModeFull, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pool.Extend(50)
	if _, _, err := pool.Repair(g2, make([]bool, g2.N()), 1.0); err == nil {
		t.Fatal("Repair accepted a node-count change")
	}
	if _, _, err := pool.Repair(g, make([]bool, 3), 1.0); err == nil {
		t.Fatal("Repair accepted a mis-sized dirty mask")
	}
}
