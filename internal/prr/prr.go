// Package prr implements Potentially Reverse Reachable graphs
// (PRR-graphs, Section IV-B of the paper), the sampling primitive behind
// PRR-Boost and PRR-Boost-LB.
//
// A PRR-graph for a random root r is the subgraph of a sampled possible
// world containing all seed→root paths made of non-blocked edges, where
// each edge is live (probability p), live-upon-boost (probability p'−p)
// or blocked (probability 1−p'). For a boost set B,
//
//	f_R(B) = 1  iff  the root is inactive without boosting but a
//	             seed→root path becomes live once B is boosted,
//
// and n·E[f_R(B)] = Δ_S(B) (Lemma 1). The critical nodes
// C_R = {v : f_R({v}) = 1} define the submodular lower bound
// f−_R(B) = I(B ∩ C_R ≠ ∅) with n·E[f−_R(B)] = μ(B) ≤ Δ_S(B) (Lemma 2).
//
// Boostable PRR-graphs are stored compressed (Section V-A phase 2):
// everything live-reachable from the seeds is merged into a single
// super-seed (local node 0), nodes that cannot sit on any ≤k-boost
// seed→root path are dropped, and nodes with a live path to the root get
// a direct live edge to it.
package prr

import (
	"fmt"
	"math"
)

// Kind classifies a generated PRR-graph.
type Kind uint8

const (
	// KindActivated means the root is activated without any boosting:
	// f_R ≡ 0.
	KindActivated Kind = iota
	// KindHopeless means no seed→root path exists with at most k
	// live-upon-boost edges: f_R ≡ 0.
	KindHopeless
	// KindBoostable means boosting can activate the root.
	KindBoostable
)

func (k Kind) String() string {
	switch k {
	case KindActivated:
		return "activated"
	case KindHopeless:
		return "hopeless"
	case KindBoostable:
		return "boostable"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// PRR is a compressed boostable PRR-graph. Local node 0 is the
// super-seed; all other local nodes map to (non-seed) nodes of the
// original graph via Orig.
type PRR struct {
	root int32 // local id of the root node

	orig []int32 // local -> original id; orig[0] == -1 (super-seed)

	outStart []int32
	outTo    []int32
	outBoost []uint8 // 1 if the edge is live-upon-boost, 0 if live

	inStart []int32
	inFrom  []int32
	inBoost []uint8

	critical []int32 // original ids of the critical nodes C_R
}

// NumNodes returns the number of local nodes (including the super-seed).
func (R *PRR) NumNodes() int { return len(R.orig) }

// NumEdges returns the number of compressed edges.
func (R *PRR) NumEdges() int { return len(R.outTo) }

// Root returns the original id of the root node.
func (R *PRR) Root() int32 { return R.orig[R.root] }

// Critical returns the original ids of the critical nodes C_R. The
// slice aliases internal storage (kboost:aliased-view): treat it as
// read-only and copy it before growing or retaining it.
func (R *PRR) Critical() []int32 { return R.critical }

// Nodes returns the original ids of all boostable local nodes (every
// node except the super-seed). The result aliases internal storage
// starting at index 1 (kboost:aliased-view).
func (R *PRR) Nodes() []int32 { return R.orig[1:] }

// Scratch holds reusable BFS state for PRR evaluation. One Scratch may
// be shared across many PRR graphs but not across goroutines.
type Scratch struct {
	mark  []int32
	epoch int32 // kboost:epoch
	queue []int32
	cand  []int32
}

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch { return &Scratch{} }

// reset prepares the scratch for one evaluation over n local nodes:
// it is the wrap-safe epoch bump (kboost:epoch-helper), so every other
// increment of s.epoch is an analyzer error by construction.
func (s *Scratch) reset(n int) {
	if len(s.mark) < n {
		s.mark = make([]int32, n)
		s.epoch = 0
	}
	// The epoch stamp must never repeat a value still present in mark:
	// after 2³¹ resets the int32 would wrap back over live stamps and
	// stale entries would read as "marked", so clear and restart instead.
	if s.epoch == math.MaxInt32 {
		clear(s.mark)
		s.epoch = 0
	}
	s.epoch++
	s.queue = s.queue[:0]
}

// edgeLive reports whether an edge with the given boost flag and target
// is traversable: live edges always, boost edges only if the target's
// original node is boosted.
func (R *PRR) edgeLive(boost uint8, toLocal int32, mask []bool) bool {
	if boost == 0 {
		return true
	}
	o := R.orig[toLocal]
	return o >= 0 && mask[o]
}

// Eval computes f_R(B) for the boost set given as a node mask over the
// original graph: it reports whether the root becomes activated when B
// is boosted. (For a boostable PRR-graph the root is never active
// without boosting, so Eval(∅) is always false.)
func (R *PRR) Eval(mask []bool, s *Scratch) bool {
	s.reset(R.NumNodes())
	s.mark[0] = s.epoch
	s.queue = append(s.queue, 0)
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		for e := R.outStart[u]; e < R.outStart[u+1]; e++ {
			v := R.outTo[e]
			if s.mark[v] == s.epoch {
				continue
			}
			if !R.edgeLive(R.outBoost[e], v, mask) {
				continue
			}
			if v == R.root {
				return true
			}
			s.mark[v] = s.epoch
			s.queue = append(s.queue, v)
		}
	}
	return false
}

// Candidates computes, for the current boost set B (as a mask), whether
// the root is already covered (f_R(B)=1) and — if not — the set of
// original node ids v ∉ B such that f_R(B ∪ {v}) = 1.
//
// A single extra boosted node v activates the root iff v lies on a
// seed→root path whose only non-live, non-B-boosted edge enters v:
// equivalently, v is backward-live-reachable from the root (under B) and
// has an in-edge that is live-upon-boost from a node forward-reachable
// from the super-seed (under B).
//
// The returned slice aliases s and is valid until the next call with s.
func (R *PRR) Candidates(mask []bool, s *Scratch) (covered bool, cands []int32) {
	n := R.NumNodes()
	s.reset(2 * n) // [0,n) forward marks, [n,2n) backward marks

	// Forward reachability A_B from the super-seed.
	s.mark[0] = s.epoch
	s.queue = append(s.queue, 0)
	for qi := 0; qi < len(s.queue); qi++ {
		u := s.queue[qi]
		for e := R.outStart[u]; e < R.outStart[u+1]; e++ {
			v := R.outTo[e]
			if s.mark[v] == s.epoch {
				continue
			}
			if !R.edgeLive(R.outBoost[e], v, mask) {
				continue
			}
			s.mark[v] = s.epoch
			s.queue = append(s.queue, v)
		}
	}
	if s.mark[R.root] == s.epoch {
		return true, nil
	}

	// Backward reachability Z_B from the root.
	s.queue = s.queue[:0]
	s.mark[int32(n)+R.root] = s.epoch
	s.queue = append(s.queue, R.root)
	for qi := 0; qi < len(s.queue); qi++ {
		v := s.queue[qi]
		for e := R.inStart[v]; e < R.inStart[v+1]; e++ {
			u := R.inFrom[e]
			if s.mark[int32(n)+u] == s.epoch {
				continue
			}
			// The edge (u,v) must itself be traversable under B.
			if !R.edgeLive(R.inBoost[e], v, mask) {
				continue
			}
			s.mark[int32(n)+u] = s.epoch
			s.queue = append(s.queue, u)
		}
	}

	// Candidates: v in Z_B with a live-upon-boost in-edge from A_B.
	s.cand = s.cand[:0]
	for v := int32(1); int(v) < n; v++ {
		if s.mark[int32(n)+v] != s.epoch {
			continue // not in Z_B
		}
		o := R.orig[v]
		if mask[o] {
			continue // already boosted
		}
		for e := R.inStart[v]; e < R.inStart[v+1]; e++ {
			if R.inBoost[e] == 1 && s.mark[R.inFrom[e]] == s.epoch {
				s.cand = append(s.cand, o)
				break
			}
		}
	}
	return false, s.cand
}

// validate checks internal consistency; used by tests and the generator.
func (R *PRR) validate() error {
	n := int32(R.NumNodes())
	if n < 2 {
		return fmt.Errorf("prr: graph with %d nodes (need super-seed + root)", n)
	}
	if R.root <= 0 || R.root >= n {
		return fmt.Errorf("prr: root local id %d out of range", R.root)
	}
	if R.orig[0] != -1 {
		return fmt.Errorf("prr: super-seed orig id %d != -1", R.orig[0])
	}
	if len(R.outStart) != int(n)+1 || len(R.inStart) != int(n)+1 {
		return fmt.Errorf("prr: CSR offset arrays have wrong length")
	}
	if R.outStart[n] != int32(len(R.outTo)) || R.inStart[n] != int32(len(R.inFrom)) {
		return fmt.Errorf("prr: CSR offsets do not cover edge arrays")
	}
	for i := int32(1); i < n; i++ {
		if R.orig[i] < 0 {
			return fmt.Errorf("prr: node %d has negative orig id", i)
		}
	}
	for _, v := range R.outTo {
		if v <= 0 || v >= n {
			return fmt.Errorf("prr: edge targets super-seed or out of range: %d", v)
		}
	}
	for _, u := range R.inFrom {
		if u < 0 || u >= n {
			return fmt.Errorf("prr: in-edge source out of range: %d", u)
		}
	}
	return nil
}
