package exp

import (
	"bytes"
	"strings"
	"testing"

	"github.com/kboost/kboost/internal/rng"
)

func rngNew(seed uint64) *rng.Source { return rng.New(seed) }

// tinyConfig keeps the harness tests fast: minimal graphs, few sims.
func tinyConfig() Config {
	return Config{
		Scale:      0.002,
		Datasets:   []string{"digg"},
		KValues:    []int{3, 6},
		Sims:       200,
		MaxSamples: 5000,
		Seed:       1,
		TreeN:      127,
		TreeKs:     []int{5},
		TreeEps:    []float64{1.0},
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3",
		"fig5", "fig6", "fig7", "fig8", "fig9",
		"fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %s missing from registry", id)
		}
	}
	if len(ids) != len(want) {
		t.Errorf("registry has %d ids, want %d", len(ids), len(want))
	}
}

func TestRunUnknownID(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", tinyConfig(), &buf); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	tables, err := Table1(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].NumRows() != 1 {
		t.Fatalf("unexpected shape: %d tables", len(tables))
	}
	out := tables[0].String()
	if !strings.Contains(out, "digg") {
		t.Fatalf("missing dataset row:\n%s", out)
	}
}

func TestFig5Shape(t *testing.T) {
	cfg := tinyConfig()
	tables, err := Fig5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 {
		t.Fatalf("%d tables, want 1 per dataset", len(tables))
	}
	if tables[0].NumRows() != len(cfg.KValues) {
		t.Fatalf("%d rows, want %d", tables[0].NumRows(), len(cfg.KValues))
	}
	for _, col := range algoOrder {
		if !strings.Contains(tables[0].String(), col) {
			t.Fatalf("missing column %s", col)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	tables, err := Fig6(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("no timing rows")
	}
	if !strings.Contains(tables[0].String(), "speedup") {
		t.Fatal("missing speedup column")
	}
}

func TestTable2Shape(t *testing.T) {
	tables, err := Table2(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	if !strings.Contains(out, "ratio") {
		t.Fatalf("missing ratio column:\n%s", out)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("no compression rows")
	}
}

func TestFig7Shape(t *testing.T) {
	tables, err := Fig7(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("no sandwich rows")
	}
}

func TestFig13Shape(t *testing.T) {
	tables, err := Fig13(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("no budget rows")
	}
}

func TestFig14Shape(t *testing.T) {
	tables, err := Fig14(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables, want boost+time", len(tables))
	}
	if tables[0].NumRows() != 1 || tables[1].NumRows() != 1 {
		t.Fatal("wrong row counts")
	}
}

func TestFig15Shape(t *testing.T) {
	tables, err := Fig15(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("%d tables", len(tables))
	}
	if tables[0].NumRows() != 3 { // 3 sizes x 1 k
		t.Fatalf("%d rows, want 3", tables[0].NumRows())
	}
}

func TestRunRendersOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table1", tinyConfig(), &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "Table 1") {
		t.Fatalf("missing rendered title:\n%s", buf.String())
	}
}

// The headline sanity check across the harness: PRR-Boost must beat
// MoreSeeds and PageRank on the stand-in, as in the paper's Figure 5.
func TestFig5Ordering(t *testing.T) {
	cfg := tinyConfig()
	cfg.Scale = 0.004
	cfg.KValues = []int{10}
	cfg.Sims = 1000
	cfg.MaxSamples = 20000
	cfg = cfg.WithDefaults()
	inst, err := loadInstance("digg", cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := algorithms(inst.g, inst.infSeeds, 10, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res["PRR-Boost"] < res["PageRank"] {
		t.Errorf("PRR-Boost %v below PageRank %v", res["PRR-Boost"], res["PageRank"])
	}
	if res["PRR-Boost"] < res["MoreSeeds"] {
		t.Errorf("PRR-Boost %v below MoreSeeds %v", res["PRR-Boost"], res["MoreSeeds"])
	}
}

func TestPerturbSets(t *testing.T) {
	cfg := tinyConfig()
	_ = cfg
	base := []int32{1, 2, 3}
	r := rngNew(7)
	sets := perturbSets(base, 50, []int32{0}, 8, r)
	if len(sets) != 8 {
		t.Fatalf("%d sets, want 8", len(sets))
	}
	// First set is the base itself.
	for i, v := range sets[0] {
		if v != base[i] {
			t.Fatalf("first set %v != base %v", sets[0], base)
		}
	}
	for _, s := range sets {
		if len(s) != len(base) {
			t.Fatalf("set %v has wrong size", s)
		}
		seen := map[int32]bool{}
		for _, v := range s {
			if v == 0 {
				t.Fatalf("seed in perturbed set %v", s)
			}
			if seen[v] {
				t.Fatalf("duplicate in perturbed set %v", s)
			}
			seen[v] = true
		}
	}
}
