package exp

import (
	"strings"
	"testing"
)

// The random-seed and beta-sweep runners share engines with the tested
// influential-seed runners; these tests pin their shapes at tiny scale.

func TestFig10Shape(t *testing.T) {
	tables, err := Fig10(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0].NumRows() == 0 {
		t.Fatalf("unexpected shape")
	}
	if !strings.Contains(tables[0].Title, "random seeds") {
		t.Fatalf("title %q", tables[0].Title)
	}
}

func TestFig11Shape(t *testing.T) {
	tables, err := Fig11(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("no rows")
	}
}

func TestTable3Shape(t *testing.T) {
	tables, err := Table3(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("no rows")
	}
	if !strings.Contains(tables[0].Title, "random seeds") {
		t.Fatalf("title %q", tables[0].Title)
	}
}

func TestFig12Shape(t *testing.T) {
	tables, err := Fig12(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if tables[0].NumRows() == 0 {
		t.Fatal("no sandwich rows")
	}
}

func TestFig8Shape(t *testing.T) {
	cfg := tinyConfig()
	tables, err := Fig8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 5 betas x 1 dataset.
	if tables[0].NumRows() != 5 {
		t.Fatalf("%d rows, want 5", tables[0].NumRows())
	}
}

func TestFig9Shape(t *testing.T) {
	tables, err := Fig9(tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	out := tables[0].String()
	for _, beta := range []string{"4", "5", "6"} {
		if !strings.Contains(out, beta) {
			t.Fatalf("missing beta %s:\n%s", beta, out)
		}
	}
}

// The instance cache must return identical instances for identical
// configurations.
func TestInstanceCache(t *testing.T) {
	cfg := tinyConfig().WithDefaults()
	a, err := loadInstance("digg", cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := loadInstance("digg", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache miss for identical config")
	}
	cfg2 := cfg
	cfg2.Beta = 3
	c, err := loadInstance("digg", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Fatal("cache hit across different beta")
	}
}
