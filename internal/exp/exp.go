// Package exp is the experiment harness: one runner per table/figure of
// the paper's evaluation (Sections VII-VIII), each printing rows that
// mirror the paper's artifact. cmd/boostexp drives it.
//
// Runs are scaled: the crawled datasets are replaced by synthetic
// stand-ins (see internal/dataset) and sizes default to laptop scale.
// Absolute numbers therefore differ from the paper; the shapes —
// algorithm orderings, speedups, ratio decay, crossovers — are the
// reproduction targets, and EXPERIMENTS.md records both sides.
package exp

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/kboost/kboost/internal/baselines"
	"github.com/kboost/kboost/internal/core"
	"github.com/kboost/kboost/internal/dataset"
	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rrset"
	"github.com/kboost/kboost/internal/texttab"
)

// Config controls the scale and determinism of every experiment.
type Config struct {
	// Scale shrinks the paper's dataset sizes (1.0 = paper size).
	// Default 0.02.
	Scale float64
	// Datasets to run on (default: all four stand-ins).
	Datasets []string
	// Beta is the boosting parameter p' = 1-(1-p)^beta (default 2).
	Beta float64
	// KValues is the boost-set size sweep (default {10, 50, 100}).
	KValues []int
	// InfSeedCount / RandSeedCount mirror the paper's 50 influential and
	// 500 random seeds, clamped to a quarter of the graph.
	InfSeedCount  int
	RandSeedCount int
	// Sims is the Monte-Carlo evaluation budget (paper: 20000; default
	// here 2000).
	Sims int
	// MaxSamples caps PRR/RR pool sizes (default 100000).
	MaxSamples int
	// Epsilon / Ell are the approximation parameters (paper: 0.5 / 1).
	Epsilon float64
	Ell     float64
	Seed    uint64
	Workers int
	// TreeN / TreeKs / TreeEps configure the bidirected-tree experiments.
	TreeN   int
	TreeKs  []int
	TreeEps []float64
	// Out receives the rendered tables (default ignored by runners; the
	// caller renders).
	Out io.Writer
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.02
	}
	if len(c.Datasets) == 0 {
		c.Datasets = []string{"digg", "flixster", "twitter", "flickr"}
	}
	if c.Beta < 1 {
		c.Beta = 2
	}
	if len(c.KValues) == 0 {
		c.KValues = []int{10, 50, 100}
	}
	if c.InfSeedCount <= 0 {
		c.InfSeedCount = 50
	}
	if c.RandSeedCount <= 0 {
		c.RandSeedCount = 500
	}
	if c.Sims <= 0 {
		c.Sims = 2000
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 100000
	}
	if c.Epsilon <= 0 {
		c.Epsilon = 0.5
	}
	if c.Ell <= 0 {
		c.Ell = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.TreeN <= 0 {
		c.TreeN = 1000
	}
	if len(c.TreeKs) == 0 {
		c.TreeKs = []int{25, 50, 100}
	}
	if len(c.TreeEps) == 0 {
		c.TreeEps = []float64{0.2, 0.5, 1.0}
	}
	return c
}

// Runner produces the tables of one experiment.
type Runner func(cfg Config) ([]*texttab.Table, error)

// Registry maps experiment ids (paper artifact names) to runners.
var Registry = map[string]Runner{
	"table1": Table1,
	"fig5":   Fig5,
	"fig6":   Fig6,
	"table2": Table2,
	"fig7":   Fig7,
	"fig8":   Fig8,
	"fig9":   Fig9,
	"fig10":  Fig10,
	"fig11":  Fig11,
	"table3": Table3,
	"fig12":  Fig12,
	"fig13":  Fig13,
	"fig14":  Fig14,
	"fig15":  Fig15,
}

// IDs returns the registered experiment ids in stable order.
func IDs() []string {
	ids := make([]string, 0, len(Registry))
	for id := range Registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment and renders its tables to out.
func Run(id string, cfg Config, out io.Writer) error {
	r, ok := Registry[id]
	if !ok {
		return fmt.Errorf("exp: unknown experiment %q (have %v)", id, IDs())
	}
	tables, err := r(cfg)
	if err != nil {
		return fmt.Errorf("exp: %s: %w", id, err)
	}
	for _, t := range tables {
		if err := t.Render(out); err != nil {
			return err
		}
		fmt.Fprintln(out)
	}
	return nil
}

// --- shared workload helpers ---

// instance is a prepared dataset with both seed setups.
type instance struct {
	name      string
	g         *graph.Graph
	infSeeds  []int32 // IMM-selected influential seeds
	randSeeds []int32 // uniformly random seeds
}

func clampSeeds(n, want int) int {
	max := n / 4
	if max < 1 {
		max = 1
	}
	if want > max {
		return max
	}
	return want
}

// instanceCache avoids rebuilding stand-ins and re-running IMM seed
// selection when several experiments share a (dataset, scale, beta,
// seed) workload, which `boostexp -run all` does fourteen times over.
var instanceCache = struct {
	sync.Mutex
	m map[string]*instance
}{m: make(map[string]*instance)}

// loadInstance builds (or returns a cached) dataset stand-in with its
// seed sets.
func loadInstance(name string, cfg Config) (*instance, error) {
	key := fmt.Sprintf("%s|%g|%g|%d|%d|%d|%d|%d",
		name, cfg.Scale, cfg.Beta, cfg.Seed, cfg.InfSeedCount, cfg.RandSeedCount,
		cfg.MaxSamples, cfg.Workers)
	instanceCache.Lock()
	cached, ok := instanceCache.m[key]
	instanceCache.Unlock()
	if ok {
		return cached, nil
	}
	inst, err := buildInstance(name, cfg)
	if err != nil {
		return nil, err
	}
	instanceCache.Lock()
	instanceCache.m[key] = inst
	instanceCache.Unlock()
	return inst, nil
}

func buildInstance(name string, cfg Config) (*instance, error) {
	spec, err := dataset.ByName(name)
	if err != nil {
		return nil, err
	}
	g, err := spec.Generate(cfg.Scale, cfg.Beta, cfg.Seed)
	if err != nil {
		return nil, err
	}
	inst := &instance{name: name, g: g}
	nInf := clampSeeds(g.N(), cfg.InfSeedCount)
	res, err := rrset.SelectSeeds(g, nInf, rrset.Options{
		Epsilon: cfg.Epsilon, Ell: cfg.Ell, Seed: cfg.Seed,
		Workers: cfg.Workers, MaxSamples: cfg.MaxSamples,
	})
	if err != nil {
		return nil, fmt.Errorf("selecting seeds on %s: %w", name, err)
	}
	inst.infSeeds = res.Seeds
	inst.randSeeds = dataset.RandomSeeds(g, clampSeeds(g.N(), cfg.RandSeedCount), cfg.Seed+17)
	return inst, nil
}

// boostOf Monte-Carlo-evaluates Δ_S(B).
func boostOf(g *graph.Graph, seeds, boost []int32, cfg Config) (float64, error) {
	return diffusion.EstimateBoost(g, seeds, boost, diffusion.Options{
		Sims: cfg.Sims, Seed: cfg.Seed + 99, Workers: cfg.Workers,
	})
}

// bestOfSets evaluates each candidate set and returns the best boost
// (the paper reports the max across the four HighDegree variants).
func bestOfSets(g *graph.Graph, seeds []int32, sets [][]int32, cfg Config) (float64, error) {
	best := 0.0
	for _, b := range sets {
		v, err := boostOf(g, seeds, b, cfg)
		if err != nil {
			return 0, err
		}
		if v > best {
			best = v
		}
	}
	return best, nil
}

func coreOptions(cfg Config, k int) core.Options {
	return core.Options{
		K: k, Epsilon: cfg.Epsilon, Ell: cfg.Ell,
		Seed: cfg.Seed, Workers: cfg.Workers, MaxSamples: cfg.MaxSamples,
	}
}

func rrOptions(cfg Config) rrset.Options {
	return rrset.Options{
		Epsilon: cfg.Epsilon, Ell: cfg.Ell, Seed: cfg.Seed,
		Workers: cfg.Workers, MaxSamples: cfg.MaxSamples,
	}
}

// algorithms runs the six algorithms of Figures 5/10 for one (graph,
// seeds, k) and returns named boosts.
func algorithms(g *graph.Graph, seeds []int32, k int, cfg Config) (map[string]float64, error) {
	out := make(map[string]float64, 6)
	if k > g.N()-len(seeds) {
		k = g.N() - len(seeds)
	}
	if k < 1 {
		return nil, fmt.Errorf("k too small after clamping")
	}

	full, err := core.PRRBoost(g, seeds, coreOptions(cfg, k))
	if err != nil {
		return nil, err
	}
	if out["PRR-Boost"], err = boostOf(g, seeds, full.BoostSet, cfg); err != nil {
		return nil, err
	}

	lb, err := core.PRRBoostLB(g, seeds, coreOptions(cfg, k))
	if err != nil {
		return nil, err
	}
	if out["PRR-Boost-LB"], err = boostOf(g, seeds, lb.BoostSet, cfg); err != nil {
		return nil, err
	}

	if out["HighDegreeGlobal"], err = bestOfSets(g, seeds, baselines.HighDegreeGlobal(g, seeds, k), cfg); err != nil {
		return nil, err
	}
	if out["HighDegreeLocal"], err = bestOfSets(g, seeds, baselines.HighDegreeLocal(g, seeds, k), cfg); err != nil {
		return nil, err
	}

	pr := baselines.PageRankBoost(g, seeds, k, baselines.PageRankOptions{})
	if out["PageRank"], err = boostOf(g, seeds, pr, cfg); err != nil {
		return nil, err
	}

	ms, err := baselines.MoreSeeds(g, seeds, k, rrOptions(cfg))
	if err != nil {
		return nil, err
	}
	if out["MoreSeeds"], err = boostOf(g, seeds, ms, cfg); err != nil {
		return nil, err
	}
	return out, nil
}

var algoOrder = []string{
	"PRR-Boost", "PRR-Boost-LB", "HighDegreeGlobal",
	"HighDegreeLocal", "PageRank", "MoreSeeds",
}
