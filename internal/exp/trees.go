package exp

import (
	"fmt"
	"time"

	"github.com/kboost/kboost/internal/gen"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/rrset"
	"github.com/kboost/kboost/internal/texttab"
	"github.com/kboost/kboost/internal/tree"
)

// makeTree mirrors the paper's Section VIII setup: a complete binary
// bidirected tree with trivalency probabilities, β=2, and seeds chosen
// by IMM.
func makeTree(n int, numSeeds int, beta float64, seed uint64, cfg Config) (*tree.Tree, error) {
	r := rng.New(seed)
	parents := gen.CompleteBinaryTreeParents(n)
	g, err := gen.BidirectedTree(parents, gen.Trivalency(), beta, r)
	if err != nil {
		return nil, err
	}
	if numSeeds > n/4 {
		numSeeds = n / 4
	}
	if numSeeds < 1 {
		numSeeds = 1
	}
	res, err := rrset.SelectSeeds(g, numSeeds, rrset.Options{
		Epsilon: cfg.Epsilon, Ell: cfg.Ell, Seed: seed,
		Workers: cfg.Workers, MaxSamples: cfg.MaxSamples,
	})
	if err != nil {
		return nil, err
	}
	return tree.FromGraph(g, res.Seeds)
}

// Fig14 reproduces Figure 14: Greedy-Boost vs DP-Boost(ε) on a fixed
// tree, sweeping k: achieved boost and running time.
func Fig14(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	tr, err := makeTree(cfg.TreeN, 50, cfg.Beta, cfg.Seed, cfg)
	if err != nil {
		return nil, err
	}
	boost := texttab.New(
		fmt.Sprintf("Figure 14a: boost of influence on a binary tree (n=%d)", cfg.TreeN),
		append([]string{"k", "Greedy-Boost"}, epsColumns(cfg.TreeEps)...)...)
	times := texttab.New(
		fmt.Sprintf("Figure 14b: running time (s) on a binary tree (n=%d)", cfg.TreeN),
		append([]string{"k", "Greedy-Boost"}, epsColumns(cfg.TreeEps)...)...)
	for _, k := range cfg.TreeKs {
		t0 := time.Now()
		greedy, err := tree.GreedyBoost(tr, k)
		if err != nil {
			return nil, err
		}
		gSec := time.Since(t0).Seconds()
		boostRow := []interface{}{k, greedy.Delta}
		timeRow := []interface{}{k, gSec}
		for _, eps := range cfg.TreeEps {
			t1 := time.Now()
			dp, err := tree.DPBoost(tr, k, tree.DPOptions{Epsilon: eps})
			if err != nil {
				return nil, err
			}
			boostRow = append(boostRow, dp.Delta)
			timeRow = append(timeRow, time.Since(t1).Seconds())
		}
		boost.AddRow(boostRow...)
		times.AddRow(timeRow...)
	}
	return []*texttab.Table{boost, times}, nil
}

// Fig15 reproduces Figure 15: Greedy-Boost vs DP-Boost(ε=0.5) across
// tree sizes for several k.
func Fig15(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	sizes := []int{cfg.TreeN / 2, cfg.TreeN, cfg.TreeN * 2}
	boost := texttab.New("Figure 15a: boost of influence vs tree size (ε=0.5)",
		"n", "k", "Greedy-Boost", "DP-Boost")
	times := texttab.New("Figure 15b: running time (s) vs tree size (ε=0.5)",
		"n", "k", "Greedy-Boost", "DP-Boost")
	for _, n := range sizes {
		tr, err := makeTree(n, 50, cfg.Beta, cfg.Seed, cfg)
		if err != nil {
			return nil, err
		}
		for _, k := range cfg.TreeKs {
			t0 := time.Now()
			greedy, err := tree.GreedyBoost(tr, k)
			if err != nil {
				return nil, err
			}
			gSec := time.Since(t0).Seconds()
			t1 := time.Now()
			dp, err := tree.DPBoost(tr, k, tree.DPOptions{Epsilon: 0.5})
			if err != nil {
				return nil, err
			}
			dpSec := time.Since(t1).Seconds()
			boost.AddRow(n, k, greedy.Delta, dp.Delta)
			times.AddRow(n, k, gSec, dpSec)
		}
	}
	return []*texttab.Table{boost, times}, nil
}

func epsColumns(eps []float64) []string {
	out := make([]string, len(eps))
	for i, e := range eps {
		out[i] = fmt.Sprintf("DP-Boost(ε=%.2g)", e)
	}
	return out
}
