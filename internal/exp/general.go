package exp

import (
	"fmt"
	"time"

	"github.com/kboost/kboost/internal/core"
	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/prr"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/stats"
	"github.com/kboost/kboost/internal/texttab"
)

// Table1 reproduces Table 1: dataset statistics and the influence of
// the two seed setups.
func Table1(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	t := texttab.New("Table 1: datasets (scaled stand-ins)",
		"dataset", "nodes", "edges", "avg p",
		"influence(inf seeds)", "#inf", "influence(rand seeds)", "#rand")
	for _, name := range cfg.Datasets {
		inst, err := loadInstance(name, cfg)
		if err != nil {
			return nil, err
		}
		st := inst.g.ComputeStats()
		infSpread, err := diffusion.EstimateSpread(inst.g, inst.infSeeds, nil,
			diffusion.Options{Sims: cfg.Sims, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		randSpread, err := diffusion.EstimateSpread(inst.g, inst.randSeeds, nil,
			diffusion.Options{Sims: cfg.Sims, Seed: cfg.Seed, Workers: cfg.Workers})
		if err != nil {
			return nil, err
		}
		t.AddRow(name, st.N, st.M, st.AvgP,
			infSpread, len(inst.infSeeds), randSpread, len(inst.randSeeds))
	}
	return []*texttab.Table{t}, nil
}

// boostVsK is the shared engine of Figures 5 and 10.
func boostVsK(cfg Config, title string, useRandomSeeds bool) ([]*texttab.Table, error) {
	var tables []*texttab.Table
	for _, name := range cfg.Datasets {
		inst, err := loadInstance(name, cfg)
		if err != nil {
			return nil, err
		}
		seeds := inst.infSeeds
		if useRandomSeeds {
			seeds = inst.randSeeds
		}
		t := texttab.New(fmt.Sprintf("%s — %s", title, name),
			append([]string{"k"}, algoOrder...)...)
		for _, k := range cfg.KValues {
			res, err := algorithms(inst.g, seeds, k, cfg)
			if err != nil {
				return nil, err
			}
			row := []interface{}{k}
			for _, a := range algoOrder {
				row = append(row, res[a])
			}
			t.AddRow(row...)
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// Fig5 reproduces Figure 5: boost vs k with influential seeds, six
// algorithms, all datasets.
func Fig5(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	return boostVsK(cfg, "Figure 5: boost vs k (influential seeds)", false)
}

// Fig10 reproduces Figure 10: boost vs k with random seeds.
func Fig10(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	return boostVsK(cfg, "Figure 10: boost vs k (random seeds)", true)
}

// runningTime is the shared engine of Figures 6 and 11.
func runningTime(cfg Config, title string, useRandomSeeds bool) ([]*texttab.Table, error) {
	t := texttab.New(title,
		"dataset", "k", "PRR-Boost (s)", "PRR-Boost-LB (s)", "speedup")
	for _, name := range cfg.Datasets {
		inst, err := loadInstance(name, cfg)
		if err != nil {
			return nil, err
		}
		seeds := inst.infSeeds
		if useRandomSeeds {
			seeds = inst.randSeeds
		}
		for _, k := range cfg.KValues {
			if k > inst.g.N()-len(seeds) {
				continue
			}
			t0 := time.Now()
			if _, err := core.PRRBoost(inst.g, seeds, coreOptions(cfg, k)); err != nil {
				return nil, err
			}
			full := time.Since(t0).Seconds()
			t1 := time.Now()
			if _, err := core.PRRBoostLB(inst.g, seeds, coreOptions(cfg, k)); err != nil {
				return nil, err
			}
			lb := time.Since(t1).Seconds()
			speedup := 0.0
			if lb > 0 {
				speedup = full / lb
			}
			t.AddRow(name, k, full, lb, speedup)
		}
	}
	return []*texttab.Table{t}, nil
}

// Fig6 reproduces Figure 6: running times (influential seeds).
func Fig6(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	return runningTime(cfg, "Figure 6: running time (influential seeds)", false)
}

// Fig11 reproduces Figure 11: running times (random seeds).
func Fig11(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	return runningTime(cfg, "Figure 11: running time (random seeds)", true)
}

// compression is the shared engine of Tables 2 and 3.
func compression(cfg Config, title string, useRandomSeeds bool) ([]*texttab.Table, error) {
	ks := []int{cfg.KValues[0], cfg.KValues[len(cfg.KValues)-1]}
	t := texttab.New(title,
		"k", "dataset", "uncompressed", "compressed", "ratio",
		"mem full (MB)", "mem LB (MB)", "avg |C_R|")
	for _, k := range ks {
		for _, name := range cfg.Datasets {
			inst, err := loadInstance(name, cfg)
			if err != nil {
				return nil, err
			}
			seeds := inst.infSeeds
			if useRandomSeeds {
				seeds = inst.randSeeds
			}
			if k > inst.g.N()-len(seeds) {
				continue
			}
			memBefore := stats.HeapAllocMB()
			full, err := core.PRRBoost(inst.g, seeds, coreOptions(cfg, k))
			if err != nil {
				return nil, err
			}
			memFull := stats.HeapAllocMB() - memBefore
			if memFull < 0 {
				memFull = 0
			}
			memBefore = stats.HeapAllocMB()
			lbRes, err := core.PRRBoostLB(inst.g, seeds, coreOptions(cfg, k))
			if err != nil {
				return nil, err
			}
			memLB := stats.HeapAllocMB() - memBefore
			if memLB < 0 {
				memLB = 0
			}
			ps := full.PoolStats
			t.AddRow(k, name, ps.AvgRawEdges, ps.AvgCompEdges, ps.CompressionRatio,
				memFull, memLB, lbRes.PoolStats.AvgCriticalSize)
		}
	}
	return []*texttab.Table{t}, nil
}

// Table2 reproduces Table 2: compression ratio and memory usage with
// influential seeds.
func Table2(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	return compression(cfg, "Table 2: PRR-graph compression (influential seeds)", false)
}

// Table3 reproduces Table 3: compression with random seeds.
func Table3(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	return compression(cfg, "Table 3: PRR-graph compression (random seeds)", true)
}

// sandwichRatios is the shared engine of Figures 7, 9 and 12: it
// perturbs the PRR-Boost solution into sets of varying quality and
// reports μ̂(B)/Δ̂(B) against Δ̂(B).
func sandwichRatios(cfg Config, title string, useRandomSeeds bool, betas []float64) ([]*texttab.Table, error) {
	const perturbations = 12
	t := texttab.New(title,
		"dataset", "beta", "k", "boost Δ̂", "μ̂", "ratio")
	for _, name := range cfg.Datasets {
		for _, beta := range betas {
			bcfg := cfg
			bcfg.Beta = beta
			inst, err := loadInstance(name, bcfg)
			if err != nil {
				return nil, err
			}
			seeds := inst.infSeeds
			if useRandomSeeds {
				seeds = inst.randSeeds
			}
			for _, k := range cfg.KValues {
				if k > inst.g.N()-len(seeds) {
					continue
				}
				res, err := core.PRRBoost(inst.g, seeds, coreOptions(bcfg, k))
				if err != nil {
					return nil, err
				}
				// A dedicated pool to evaluate μ̂/Δ̂ of perturbed sets.
				pool, err := prr.NewPool(inst.g, seeds, k, prr.ModeFull, cfg.Seed+5, cfg.Workers)
				if err != nil {
					return nil, err
				}
				samples := res.Samples
				if samples > cfg.MaxSamples {
					samples = cfg.MaxSamples
				}
				if samples < 2000 {
					samples = 2000
				}
				pool.Extend(samples)
				r := rng.New(cfg.Seed + 31)
				sets := perturbSets(res.BoostSet, inst.g.N(), seeds, perturbations, r)
				for _, b := range sets {
					mu := pool.EstimateMu(b)
					delta, err := pool.EstimateDelta(b)
					if err != nil {
						return nil, err
					}
					if delta <= 0 {
						continue
					}
					// The paper plots only sets with at least half the best
					// boost.
					t.AddRow(name, beta, k, delta, mu, mu/delta)
				}
			}
		}
	}
	return []*texttab.Table{t}, nil
}

// perturbSets mimics the paper's Figure 7 setup: replace a random
// number of nodes in the solution with other non-seed nodes.
func perturbSets(base []int32, n int, seeds []int32, count int, r *rng.Source) [][]int32 {
	seedMask := make([]bool, n)
	for _, s := range seeds {
		seedMask[s] = true
	}
	sets := [][]int32{append([]int32(nil), base...)}
	for i := 1; i < count; i++ {
		b := append([]int32(nil), base...)
		if len(b) == 0 {
			break
		}
		replace := 1 + r.Intn(len(b))
		used := make(map[int32]bool, len(b))
		for _, v := range b {
			used[v] = true
		}
		for j := 0; j < replace; j++ {
			pos := r.Intn(len(b))
			for tries := 0; tries < 64; tries++ {
				v := int32(r.Intn(n))
				if seedMask[v] || used[v] {
					continue
				}
				used[v] = true
				b[pos] = v
				break
			}
		}
		sets = append(sets, b)
	}
	return sets
}

// Fig7 reproduces Figure 7: sandwich-approximation ratios with
// influential seeds.
func Fig7(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	return sandwichRatios(cfg, "Figure 7: sandwich ratio μ/Δ (influential seeds)", false, []float64{cfg.Beta})
}

// Fig9 reproduces Figure 9: sandwich ratios with larger boosting
// parameters.
func Fig9(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	cfg.KValues = cfg.KValues[len(cfg.KValues)/2 : len(cfg.KValues)/2+1]
	return sandwichRatios(cfg, "Figure 9: sandwich ratio vs beta (influential seeds)", false, []float64{4, 5, 6})
}

// Fig12 reproduces Figure 12: sandwich ratios with random seeds.
func Fig12(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	return sandwichRatios(cfg, "Figure 12: sandwich ratio μ/Δ (random seeds)", true, []float64{cfg.Beta})
}

// Fig8 reproduces Figure 8: effect of the boosting parameter β on the
// achieved boost and the running time, k fixed at the sweep's midpoint.
func Fig8(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	k := cfg.KValues[len(cfg.KValues)/2]
	t := texttab.New("Figure 8: effect of the boosting parameter (influential seeds)",
		"dataset", "beta", "k",
		"PRR-Boost Δ", "LB Δ", "PRR-Boost (s)", "LB (s)")
	for _, name := range cfg.Datasets {
		for _, beta := range []float64{2, 3, 4, 5, 6} {
			bcfg := cfg
			bcfg.Beta = beta
			inst, err := loadInstance(name, bcfg)
			if err != nil {
				return nil, err
			}
			if k > inst.g.N()-len(inst.infSeeds) {
				continue
			}
			t0 := time.Now()
			full, err := core.PRRBoost(inst.g, inst.infSeeds, coreOptions(bcfg, k))
			if err != nil {
				return nil, err
			}
			fullSec := time.Since(t0).Seconds()
			fullBoost, err := boostOf(inst.g, inst.infSeeds, full.BoostSet, bcfg)
			if err != nil {
				return nil, err
			}
			t1 := time.Now()
			lb, err := core.PRRBoostLB(inst.g, inst.infSeeds, coreOptions(bcfg, k))
			if err != nil {
				return nil, err
			}
			lbSec := time.Since(t1).Seconds()
			lbBoost, err := boostOf(inst.g, inst.infSeeds, lb.BoostSet, bcfg)
			if err != nil {
				return nil, err
			}
			t.AddRow(name, beta, k, fullBoost, lbBoost, fullSec, lbSec)
		}
	}
	return []*texttab.Table{t}, nil
}

// Fig13 reproduces Figure 13: budget allocation between seeding and
// boosting. Budgets are scaled down with the graphs (the paper's 100
// seeds and cost ratios 100-800 become 10 and 10-80).
func Fig13(cfg Config) ([]*texttab.Table, error) {
	cfg = cfg.WithDefaults()
	t := texttab.New("Figure 13: budget allocation seeding vs boosting",
		"dataset", "cost ratio", "seed frac", "#seeds", "#boost", "boosted spread")
	fracs := []float64{0.2, 0.4, 0.6, 0.8, 1.0}
	for _, name := range cfg.Datasets {
		inst, err := loadInstance(name, cfg)
		if err != nil {
			return nil, err
		}
		budgetSeeds := clampSeeds(inst.g.N(), 10)
		// Keep only cost ratios whose full-boost budgets fit the graph;
		// on tiny graphs fall back to the largest feasible ratio.
		ratios := []int{}
		for _, r := range []int{10, 20, 40, 80} {
			if budgetSeeds*r <= inst.g.N() {
				ratios = append(ratios, r)
			}
		}
		if len(ratios) == 0 {
			r := inst.g.N() / budgetSeeds
			if r < 1 {
				r = 1
			}
			ratios = []int{r}
		}
		for _, ratio := range ratios {
			pts, err := core.BudgetAllocation(inst.g, core.BudgetAllocationOptions{
				BudgetSeeds: budgetSeeds,
				CostRatio:   ratio,
				SeedFracs:   fracs,
				Boost:       coreOptions(cfg, 1),
				Sims:        cfg.Sims,
			})
			if err != nil {
				return nil, err
			}
			for _, pt := range pts {
				t.AddRow(name, ratio, pt.SeedFrac, pt.NumSeeds, pt.NumBoost, pt.BoostedSpread)
			}
		}
	}
	return []*texttab.Table{t}, nil
}
