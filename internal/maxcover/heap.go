package maxcover

import "container/heap"

// Entry is one lazily evaluated marginal gain in a Heap. Stamp is
// caller-defined staleness metadata: CELF-style selection stores the
// round the gain was computed in, lazy-deletion users store nothing and
// compare Gain against their authoritative gain array instead.
type Entry struct {
	Item  int32
	Gain  int32
	Stamp int32
}

// Heap is a max-heap of lazily evaluated gains ordered by (Gain desc,
// Item asc); the deterministic tie-break makes selection reproducible
// regardless of push order. It is shared by the μ̂ greedy here and the
// Δ̂ greedy in internal/prr.
//
// Use the Push/Pop methods below, not container/heap directly.
type Heap []Entry

func (h Heap) Len() int { return len(h) }
func (h Heap) Less(i, j int) bool {
	if h[i].Gain != h[j].Gain {
		return h[i].Gain > h[j].Gain
	}
	return h[i].Item < h[j].Item
}
func (h Heap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *Heap) Push(x interface{}) { *h = append(*h, x.(Entry)) }
func (h *Heap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Init establishes the heap invariant over entries appended directly.
func (h *Heap) Init() { heap.Init(h) }

// PushEntry adds an entry.
func (h *Heap) PushEntry(e Entry) { heap.Push(h, e) }

// PopMax removes and returns the maximum entry.
func (h *Heap) PopMax() Entry { return heap.Pop(h).(Entry) }
