package maxcover

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"github.com/kboost/kboost/internal/rng"
)

func TestSelectBasic(t *testing.T) {
	c := New(5)
	c.AddSet([]int32{0, 1})
	c.AddSet([]int32{1, 2})
	c.AddSet([]int32{3})
	chosen, covered := c.Select(1, nil, nil)
	if len(chosen) != 1 || chosen[0] != 1 || covered != 2 {
		t.Fatalf("chose %v covering %d, want [1] covering 2", chosen, covered)
	}
}

func TestSelectAllCoverable(t *testing.T) {
	c := New(4)
	c.AddSet([]int32{0})
	c.AddSet([]int32{1})
	c.AddSet([]int32{2})
	chosen, covered := c.Select(3, nil, nil)
	if covered != 3 || len(chosen) != 3 {
		t.Fatalf("covered %d with %v", covered, chosen)
	}
}

func TestSelectStopsAtZeroGain(t *testing.T) {
	c := New(4)
	c.AddSet([]int32{0})
	chosen, covered := c.Select(3, nil, nil)
	if len(chosen) != 1 || covered != 1 {
		t.Fatalf("chose %v covering %d", chosen, covered)
	}
}

func TestSelectBanned(t *testing.T) {
	c := New(3)
	c.AddSet([]int32{0})
	c.AddSet([]int32{0})
	c.AddSet([]int32{1})
	banned := []bool{true, false, false}
	chosen, covered := c.Select(2, banned, nil)
	if covered != 1 || len(chosen) != 1 || chosen[0] != 1 {
		t.Fatalf("banned node ignored: %v covering %d", chosen, covered)
	}
}

func TestSelectPreCovered(t *testing.T) {
	c := New(3)
	c.AddSet([]int32{0, 1})
	c.AddSet([]int32{2})
	chosen, covered := c.Select(2, nil, []int32{0})
	// Set 0 is pre-covered; only set 1 contributes.
	if covered != 1 || len(chosen) != 1 || chosen[0] != 2 {
		t.Fatalf("pre-covered not honored: %v covering %d", chosen, covered)
	}
}

func TestEmptySketchesAllowed(t *testing.T) {
	c := New(3)
	c.AddSet(nil)
	c.AddSet([]int32{1})
	if c.NumSets() != 2 {
		t.Fatalf("NumSets=%d", c.NumSets())
	}
	_, covered := c.Select(2, nil, nil)
	if covered != 1 {
		t.Fatalf("covered=%d", covered)
	}
}

func TestAddSetDedupsAndFilters(t *testing.T) {
	c := New(3)
	c.AddSet([]int32{1, 1, 7, -2, 2})
	if got := c.Sets()[0]; len(got) != 2 {
		t.Fatalf("stored set %v, want deduped in-range pair", got)
	}
}

func TestCoverageOf(t *testing.T) {
	c := New(4)
	c.AddSet([]int32{0, 1})
	c.AddSet([]int32{2})
	c.AddSet([]int32{1, 2})
	if got := c.CoverageOf([]int32{1}); got != 2 {
		t.Fatalf("CoverageOf([1]) = %d, want 2", got)
	}
	if got := c.CoverageOf([]int32{0, 2}); got != 3 {
		t.Fatalf("CoverageOf([0,2]) = %d, want 3", got)
	}
	if got := c.CoverageOf(nil); got != 0 {
		t.Fatalf("CoverageOf(nil) = %d", got)
	}
}

// Lazy greedy must equal plain greedy: coverage functions are
// submodular, so CELF's lazy evaluations are exact.
func TestLazyEqualsPlainGreedy(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 30; trial++ {
		numItems := 2 + r.Intn(20)
		c := New(numItems)
		numSets := r.Intn(40)
		for s := 0; s < numSets; s++ {
			size := r.Intn(5)
			set := make([]int32, 0, size)
			for j := 0; j < size; j++ {
				set = append(set, int32(r.Intn(numItems)))
			}
			c.AddSet(set)
		}
		k := 1 + r.Intn(4)
		_, lazyCov := c.Select(k, nil, nil)
		plainCov := plainGreedy(c, k)
		if lazyCov != plainCov {
			t.Fatalf("trial %d: lazy coverage %d != plain %d", trial, lazyCov, plainCov)
		}
	}
}

// plainGreedy is an O(k·items·sets) reference implementation.
func plainGreedy(c *Coverage, k int) int {
	covered := make([]bool, c.NumSets())
	chosen := make([]bool, c.NumItems())
	total := 0
	for round := 0; round < k; round++ {
		best, bestGain := -1, 0
		for v := 0; v < c.NumItems(); v++ {
			if chosen[v] {
				continue
			}
			gain := 0
			for si, set := range c.Sets() {
				if covered[si] {
					continue
				}
				for _, item := range set {
					if int(item) == v {
						gain++
						break
					}
				}
			}
			if gain > bestGain {
				best, bestGain = v, gain
			}
		}
		if best < 0 || bestGain == 0 {
			break
		}
		chosen[best] = true
		total += bestGain
		for si, set := range c.Sets() {
			if covered[si] {
				continue
			}
			for _, item := range set {
				if int(item) == best {
					covered[si] = true
					break
				}
			}
		}
	}
	return total
}

// Property: coverage of the greedy solution equals CoverageOf(chosen).
func TestQuickSelectConsistent(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		r := rng.New(seed)
		c := New(10)
		for s := 0; s < 20; s++ {
			var set []int32
			for j := 0; j < r.Intn(4); j++ {
				set = append(set, int32(r.Intn(10)))
			}
			c.AddSet(set)
		}
		k := 1 + int(kRaw%5)
		chosen, covered := c.Select(k, nil, nil)
		return covered == c.CoverageOf(chosen)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestAddSetStampedDedup(t *testing.T) {
	// Repeated AddSet calls must not let the epoch-stamped seen array
	// leak state between sketches, and heavy duplication within one
	// sketch must collapse to the distinct items.
	c := New(8)
	c.AddSet([]int32{3, 3, 3, 1, 3, 1, -5, 99})
	c.AddSet([]int32{3, 2}) // 3 again: must survive the previous epoch
	c.AddSet(nil)
	sets := c.Sets()
	if got := fmt.Sprint(sets[0]); got != "[3 1]" {
		t.Errorf("set 0 = %s, want [3 1]", got)
	}
	if got := fmt.Sprint(sets[1]); got != "[3 2]" {
		t.Errorf("set 1 = %s, want [3 2]", got)
	}
	if len(sets[2]) != 0 {
		t.Errorf("set 2 = %v, want empty", sets[2])
	}
	if got := c.CoverageOf([]int32{3}); got != 2 {
		t.Errorf("CoverageOf(3) = %d, want 2", got)
	}
}

func TestCoverageOfReusableScratch(t *testing.T) {
	c := New(4)
	c.AddSet([]int32{0, 1})
	c.AddSet([]int32{1, 2})
	c.AddSet([]int32{3})
	// Repeated calls reuse the stamped scratch; results must not bleed.
	for i := 0; i < 5; i++ {
		if got := c.CoverageOf([]int32{1}); got != 2 {
			t.Fatalf("call %d: CoverageOf(1) = %d, want 2", i, got)
		}
		if got := c.CoverageOf([]int32{0, 2, 3}); got != 3 {
			t.Fatalf("call %d: CoverageOf(0,2,3) = %d, want 3", i, got)
		}
		if got := c.CoverageOf(nil); got != 0 {
			t.Fatalf("call %d: CoverageOf() = %d, want 0", i, got)
		}
	}
	// Growing the instance mid-life must resize the scratch.
	c.AddSet([]int32{0, 3})
	if got := c.CoverageOf([]int32{3}); got != 2 {
		t.Errorf("after growth: CoverageOf(3) = %d, want 2", got)
	}
}

func TestCoverageOfConcurrent(t *testing.T) {
	c := New(32)
	r := rng.New(5)
	for s := 0; s < 500; s++ {
		set := make([]int32, 0, 4)
		for j := 0; j < 1+r.Intn(4); j++ {
			set = append(set, int32(r.Intn(32)))
		}
		c.AddSet(set)
	}
	want := c.CoverageOf([]int32{1, 7, 13})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if got := c.CoverageOf([]int32{1, 7, 13}); got != want {
					t.Errorf("concurrent CoverageOf = %d, want %d", got, want)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestHeapDeterministicOrder(t *testing.T) {
	// Same entries, different push orders: pops must agree, with ties
	// broken toward the smaller item.
	entries := []Entry{{Item: 4, Gain: 2}, {Item: 1, Gain: 5}, {Item: 2, Gain: 5}, {Item: 9, Gain: 7}}
	pop := func(order []int) []Entry {
		var h Heap
		for _, i := range order {
			h.PushEntry(entries[i])
		}
		var out []Entry
		for h.Len() > 0 {
			out = append(out, h.PopMax())
		}
		return out
	}
	a := pop([]int{0, 1, 2, 3})
	b := pop([]int{3, 2, 1, 0})
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("pop order depends on push order: %v vs %v", a, b)
	}
	wantItems := []int32{9, 1, 2, 4}
	for i, e := range a {
		if e.Item != wantItems[i] {
			t.Fatalf("pop %d = item %d, want %d (full order %v)", i, e.Item, wantItems[i], a)
		}
	}
}

// TestAddSetSeenEpochWrap forces the AddSet dedup stamp to wrap: after
// 2³¹ adds the int32 epoch would revisit stamps still stored in seen[],
// making fresh items look like duplicates. The wrap must clear the
// stamps instead.
func TestAddSetSeenEpochWrap(t *testing.T) {
	c := New(4)
	c.AddSet([]int32{0, 1}) // leaves seen[0] = seen[1] = 1
	c.seenEpoch = math.MaxInt32 - 1
	c.AddSet([]int32{1, 2, 2}) // epoch MaxInt32: normal dedup
	if got := c.Set(1); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("set 1 = %v, want [1 2]", got)
	}
	// Next add wraps: epoch restarts at 1, the value stamped on items 0
	// and 1 by the very first AddSet. Without clearing, 0 and 1 would be
	// silently dropped as "already seen".
	c.AddSet([]int32{0, 1, 3})
	if got := c.Set(2); len(got) != 3 {
		t.Fatalf("post-wrap set = %v, want [0 1 3]", got)
	}
	if c.seenEpoch != 1 {
		t.Fatalf("seenEpoch = %d after wrap, want 1", c.seenEpoch)
	}
	if got := c.CoverageOf([]int32{0}); got != 2 {
		t.Fatalf("CoverageOf(0) = %d, want 2", got)
	}
}

// TestCoverageOfEpochWrap forces the CoverageOf stamp to wrap and
// checks counts stay exact across it.
func TestCoverageOfEpochWrap(t *testing.T) {
	c := New(3)
	c.AddSet([]int32{0, 1})
	c.AddSet([]int32{1, 2})
	if got := c.CoverageOf([]int32{1}); got != 2 {
		t.Fatalf("warmup CoverageOf = %d, want 2", got)
	}
	c.covEpoch = math.MaxInt32 - 1
	for rep := 0; rep < 4; rep++ {
		if got := c.CoverageOf([]int32{1}); got != 2 {
			t.Fatalf("rep %d: CoverageOf = %d across wrap, want 2", rep, got)
		}
		if got := c.CoverageOf([]int32{0, 2}); got != 2 {
			t.Fatalf("rep %d: CoverageOf = %d across wrap, want 2", rep, got)
		}
	}
	if c.covEpoch >= math.MaxInt32-1 {
		t.Fatalf("covEpoch did not wrap: %d", c.covEpoch)
	}
}
