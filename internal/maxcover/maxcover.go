// Package maxcover implements greedy weighted maximum coverage with
// lazy (CELF-style) evaluation.
//
// The universe of "sets" are sketches (RR-sets or PRR-graph critical
// node sets); the pickable items are graph nodes. Greedy max coverage
// over submodular coverage functions yields the classic (1-1/e)
// guarantee, which the IMM machinery converts into an end-to-end
// approximation bound.
package maxcover

import (
	"math"
	"sync"
)

// Coverage is an incremental max-coverage instance. Add sketches with
// AddSet (or AddSortedSet), then call Select (repeatedly, as the pool
// grows). Adds must be externally serialized against every other
// method; CoverageOf and Select are safe to call concurrently with each
// other.
//
// Sketch item lists are stored flat (CSR-style): one offset array plus
// one item array, so steady-state adds cost zero allocations beyond
// amortized array growth — the layout the PRR pool arenas feed
// shard-by-shard on every Extend.
type Coverage struct {
	numItems int
	setStart []int32   // sketch id -> offset into setItems; len = NumSets()+1
	setItems []int32   // concatenated deduplicated item lists
	postings [][]int32 // item -> sketch ids containing it
	// postingsLen tracks the summed posting-list lengths so MemoryBytes
	// is O(1) instead of a scan over the item universe.
	postingsLen int64

	// seen is an epoch-stamped per-item array reused across AddSet calls
	// so deduplication is O(len(items)) instead of O(len(items)^2).
	// AddSet mutation is externally serialized (the pool's entry lock),
	// so seen needs no mutex — but its epoch stamp still must only be
	// bumped through the wrap-safe helper.
	seen      []int32
	seenEpoch int32 // kboost:epoch

	// covMu guards the reusable stamped sketch array of CoverageOf,
	// which runs on every μ̂ estimate and must not allocate per call.
	covMu    sync.Mutex
	covSeen  []int32 // kboost:guarded-by covMu
	covEpoch int32   // kboost:guarded-by covMu // kboost:epoch
}

// New returns a Coverage over items 0..numItems-1.
func New(numItems int) *Coverage {
	return &Coverage{
		numItems: numItems,
		setStart: []int32{0},
		postings: make([][]int32, numItems),
		seen:     make([]int32, numItems),
	}
}

// NumItems returns the size of the item universe.
func (c *Coverage) NumItems() int { return c.numItems }

// NumSets returns the number of sketches added.
func (c *Coverage) NumSets() int { return len(c.setStart) - 1 }

// Set returns sketch id's deduplicated item list; the result aliases
// internal storage (kboost:aliased-view).
func (c *Coverage) Set(id int) []int32 {
	return c.setItems[c.setStart[id]:c.setStart[id+1]]
}

// Sets materializes the stored sketches as a slice of views into
// internal storage (the items alias; the outer slice is fresh).
func (c *Coverage) Sets() [][]int32 {
	out := make([][]int32, c.NumSets())
	for i := range out {
		out[i] = c.Set(i)
	}
	return out
}

// bumpSeenEpoch advances the dedup stamp, clearing the stamp array when
// the int32 epoch wraps so ancient stamps can never read as current.
// kboost:epoch-helper
func (c *Coverage) bumpSeenEpoch() {
	if c.seenEpoch == math.MaxInt32 {
		clear(c.seen)
		c.seenEpoch = 0
	}
	c.seenEpoch++
}

// AddSet records one sketch. Items outside [0,numItems) are ignored;
// duplicates within one sketch are deduplicated. Empty sketches are
// allowed (they can never be covered) and count toward NumSets.
func (c *Coverage) AddSet(items []int32) {
	id := int32(c.NumSets())
	c.bumpSeenEpoch()
	for _, v := range items {
		if v < 0 || int(v) >= c.numItems {
			continue
		}
		if c.seen[v] == c.seenEpoch {
			continue
		}
		c.seen[v] = c.seenEpoch
		c.setItems = append(c.setItems, v)
		c.postings[v] = append(c.postings[v], id)
		c.postingsLen++
	}
	c.setStart = append(c.setStart, int32(len(c.setItems)))
}

// AddSortedSet records one sketch whose items the caller guarantees are
// already sorted, duplicate-free and inside [0,numItems) — the shape
// PRR-graph critical sets leave generation with. It skips the dedup
// stamping pass, so merging per-worker shard arenas into the coverage
// index is a straight append.
func (c *Coverage) AddSortedSet(items []int32) {
	id := int32(c.NumSets())
	c.setItems = append(c.setItems, items...)
	c.setStart = append(c.setStart, int32(len(c.setItems)))
	for _, v := range items {
		c.postings[v] = append(c.postings[v], id)
	}
	c.postingsLen += int64(len(items))
}

// bumpCovEpoch sizes the CoverageOf stamp array for the current sketch
// count and advances its stamp, clearing the array when the int32 epoch
// wraps so ancient stamps can never read as current. Surfaced by the
// epochstamp analyzer: the bump used to live inline in CoverageOf,
// where the next inlined copy could have dropped the wrap guard.
// kboost:epoch-helper
// kboost:holds covMu
func (c *Coverage) bumpCovEpoch() {
	if len(c.covSeen) < c.NumSets() {
		c.covSeen = make([]int32, c.NumSets())
		c.covEpoch = 0
	}
	if c.covEpoch == math.MaxInt32 {
		clear(c.covSeen)
		c.covEpoch = 0
	}
	c.covEpoch++
}

// CoverageOf returns how many sketches contain at least one item of
// chosen.
func (c *Coverage) CoverageOf(chosen []int32) int {
	c.covMu.Lock()
	defer c.covMu.Unlock()
	c.bumpCovEpoch()
	covered := 0
	for _, v := range chosen {
		if v < 0 || int(v) >= c.numItems {
			continue
		}
		for _, s := range c.postings[v] {
			if c.covSeen[s] != c.covEpoch {
				c.covSeen[s] = c.covEpoch
				covered++
			}
		}
	}
	return covered
}

// MemoryBytes returns the resident size of the index's backing arrays
// (sets CSR, postings, and the stamp arrays) — the coverage share of a
// pool's MemoryEstimate. O(1): posting lengths are tracked as they
// grow, so byte accounting never scans the item universe. covMu is
// taken for the covSeen header read (surfaced by the guardedby
// analyzer: CoverageOf reallocates that array under covMu, and nothing
// orders an engine-side MemoryBytes call against concurrent
// estimates).
func (c *Coverage) MemoryBytes() int64 {
	c.covMu.Lock()
	covSeenLen := len(c.covSeen)
	c.covMu.Unlock()
	bytes := int64(cap(c.setStart)+cap(c.setItems)+len(c.seen)+covSeenLen) * 4
	bytes += c.postingsLen * 4
	bytes += int64(len(c.postings)) * 24 // slice headers
	return bytes
}

// Select greedily picks up to k items maximizing sketch coverage, using
// lazy evaluation. banned items (may be nil) are never picked;
// preCovered sketches (by the items in pre) count as already covered and
// do not contribute to gains or the returned coverage delta.
//
// It returns the chosen items in pick order and the number of sketches
// they cover (excluding sketches pre covered).
func (c *Coverage) Select(k int, banned []bool, pre []int32) (chosen []int32, covered int) {
	if k <= 0 {
		return nil, 0
	}
	coveredSet := make([]bool, c.NumSets())
	for _, v := range pre {
		if v < 0 || int(v) >= c.numItems {
			continue
		}
		for _, s := range c.postings[v] {
			coveredSet[s] = true
		}
	}

	gainOf := func(item int32) int32 {
		gain := int32(0)
		for _, s := range c.postings[item] {
			if !coveredSet[s] {
				gain++
			}
		}
		return gain
	}

	h := make(Heap, 0, c.numItems)
	for v := 0; v < c.numItems; v++ {
		if banned != nil && banned[v] {
			continue
		}
		if len(c.postings[v]) == 0 {
			continue
		}
		h = append(h, Entry{Item: int32(v), Gain: int32(len(c.postings[v])), Stamp: -1})
	}
	h.Init()

	taken := make([]bool, c.numItems)
	for len(chosen) < k && h.Len() > 0 {
		top := h.PopMax()
		if taken[top.Item] {
			continue
		}
		if top.Stamp == int32(len(chosen)) {
			// Gain is current: take it.
			if top.Gain == 0 {
				break
			}
			chosen = append(chosen, top.Item)
			taken[top.Item] = true
			covered += int(top.Gain)
			for _, s := range c.postings[top.Item] {
				coveredSet[s] = true
			}
			continue
		}
		// Stale: recompute and push back.
		top.Gain = gainOf(top.Item)
		top.Stamp = int32(len(chosen))
		h.PushEntry(top)
	}
	return chosen, covered
}
