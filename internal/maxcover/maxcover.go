// Package maxcover implements greedy weighted maximum coverage with
// lazy (CELF-style) evaluation.
//
// The universe of "sets" are sketches (RR-sets or PRR-graph critical
// node sets); the pickable items are graph nodes. Greedy max coverage
// over submodular coverage functions yields the classic (1-1/e)
// guarantee, which the IMM machinery converts into an end-to-end
// approximation bound.
package maxcover

import "container/heap"

// Coverage is an incremental max-coverage instance. Add sketches with
// AddSet, then call Select (repeatedly, as the pool grows).
type Coverage struct {
	numItems int
	sets     [][]int32 // sketch id -> item list (deduplicated per sketch)
	postings [][]int32 // item -> sketch ids containing it
}

// New returns a Coverage over items 0..numItems-1.
func New(numItems int) *Coverage {
	return &Coverage{
		numItems: numItems,
		postings: make([][]int32, numItems),
	}
}

// NumItems returns the size of the item universe.
func (c *Coverage) NumItems() int { return c.numItems }

// NumSets returns the number of sketches added.
func (c *Coverage) NumSets() int { return len(c.sets) }

// Sets exposes the stored sketches; the result aliases internal storage.
func (c *Coverage) Sets() [][]int32 { return c.sets }

// AddSet records one sketch. Items outside [0,numItems) are ignored;
// duplicates within one sketch are deduplicated. Empty sketches are
// allowed (they can never be covered) and count toward NumSets.
func (c *Coverage) AddSet(items []int32) {
	id := int32(len(c.sets))
	clean := make([]int32, 0, len(items))
	for _, v := range items {
		if v < 0 || int(v) >= c.numItems {
			continue
		}
		dup := false
		for _, w := range clean {
			if w == v {
				dup = true
				break
			}
		}
		if !dup {
			clean = append(clean, v)
		}
	}
	c.sets = append(c.sets, clean)
	for _, v := range clean {
		c.postings[v] = append(c.postings[v], id)
	}
}

// CoverageOf returns how many sketches contain at least one item of
// chosen.
func (c *Coverage) CoverageOf(chosen []int32) int {
	covered := make(map[int32]struct{})
	for _, v := range chosen {
		if v < 0 || int(v) >= c.numItems {
			continue
		}
		for _, s := range c.postings[v] {
			covered[s] = struct{}{}
		}
	}
	return len(covered)
}

// celfEntry is a lazily evaluated marginal gain.
type celfEntry struct {
	item  int32
	gain  int
	round int // the selection round in which gain was computed
}

type celfHeap []celfEntry

func (h celfHeap) Len() int { return len(h) }
func (h celfHeap) Less(i, j int) bool {
	if h[i].gain != h[j].gain {
		return h[i].gain > h[j].gain
	}
	return h[i].item < h[j].item // deterministic tie-break
}
func (h celfHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *celfHeap) Push(x interface{}) { *h = append(*h, x.(celfEntry)) }
func (h *celfHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Select greedily picks up to k items maximizing sketch coverage, using
// lazy evaluation. banned items (may be nil) are never picked;
// preCovered sketches (by the items in pre) count as already covered and
// do not contribute to gains or the returned coverage delta.
//
// It returns the chosen items in pick order and the number of sketches
// they cover (excluding sketches pre covered).
func (c *Coverage) Select(k int, banned []bool, pre []int32) (chosen []int32, covered int) {
	if k <= 0 {
		return nil, 0
	}
	coveredSet := make([]bool, len(c.sets))
	for _, v := range pre {
		if v < 0 || int(v) >= c.numItems {
			continue
		}
		for _, s := range c.postings[v] {
			coveredSet[s] = true
		}
	}

	gainOf := func(item int32) int {
		gain := 0
		for _, s := range c.postings[item] {
			if !coveredSet[s] {
				gain++
			}
		}
		return gain
	}

	h := make(celfHeap, 0, c.numItems)
	for v := 0; v < c.numItems; v++ {
		if banned != nil && banned[v] {
			continue
		}
		if len(c.postings[v]) == 0 {
			continue
		}
		h = append(h, celfEntry{item: int32(v), gain: len(c.postings[v]), round: -1})
	}
	heap.Init(&h)

	taken := make([]bool, c.numItems)
	for len(chosen) < k && h.Len() > 0 {
		top := heap.Pop(&h).(celfEntry)
		if taken[top.item] {
			continue
		}
		if top.round == len(chosen) {
			// Gain is current: take it.
			if top.gain == 0 {
				break
			}
			chosen = append(chosen, top.item)
			taken[top.item] = true
			covered += top.gain
			for _, s := range c.postings[top.item] {
				coveredSet[s] = true
			}
			continue
		}
		// Stale: recompute and push back.
		top.gain = gainOf(top.item)
		top.round = len(chosen)
		heap.Push(&h, top)
	}
	return chosen, covered
}
