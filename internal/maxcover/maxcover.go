// Package maxcover implements greedy weighted maximum coverage with
// lazy (CELF-style) evaluation.
//
// The universe of "sets" are sketches (RR-sets or PRR-graph critical
// node sets); the pickable items are graph nodes. Greedy max coverage
// over submodular coverage functions yields the classic (1-1/e)
// guarantee, which the IMM machinery converts into an end-to-end
// approximation bound.
package maxcover

import "sync"

// Coverage is an incremental max-coverage instance. Add sketches with
// AddSet, then call Select (repeatedly, as the pool grows). AddSet must
// be externally serialized against every other method; CoverageOf and
// Select are safe to call concurrently with each other.
type Coverage struct {
	numItems int
	sets     [][]int32 // sketch id -> item list (deduplicated per sketch)
	postings [][]int32 // item -> sketch ids containing it

	// seen is an epoch-stamped per-item array reused across AddSet calls
	// so deduplication is O(len(items)) instead of O(len(items)^2).
	seen      []int32
	seenEpoch int32

	// covMu guards the reusable stamped sketch array of CoverageOf,
	// which runs on every μ̂ estimate and must not allocate per call.
	covMu    sync.Mutex
	covSeen  []int32
	covEpoch int32
}

// New returns a Coverage over items 0..numItems-1.
func New(numItems int) *Coverage {
	return &Coverage{
		numItems: numItems,
		postings: make([][]int32, numItems),
		seen:     make([]int32, numItems),
	}
}

// NumItems returns the size of the item universe.
func (c *Coverage) NumItems() int { return c.numItems }

// NumSets returns the number of sketches added.
func (c *Coverage) NumSets() int { return len(c.sets) }

// Sets exposes the stored sketches; the result aliases internal storage.
func (c *Coverage) Sets() [][]int32 { return c.sets }

// AddSet records one sketch. Items outside [0,numItems) are ignored;
// duplicates within one sketch are deduplicated. Empty sketches are
// allowed (they can never be covered) and count toward NumSets.
func (c *Coverage) AddSet(items []int32) {
	id := int32(len(c.sets))
	c.seenEpoch++
	clean := make([]int32, 0, len(items))
	for _, v := range items {
		if v < 0 || int(v) >= c.numItems {
			continue
		}
		if c.seen[v] == c.seenEpoch {
			continue
		}
		c.seen[v] = c.seenEpoch
		clean = append(clean, v)
	}
	c.sets = append(c.sets, clean)
	for _, v := range clean {
		c.postings[v] = append(c.postings[v], id)
	}
}

// CoverageOf returns how many sketches contain at least one item of
// chosen.
func (c *Coverage) CoverageOf(chosen []int32) int {
	c.covMu.Lock()
	defer c.covMu.Unlock()
	if len(c.covSeen) < len(c.sets) {
		c.covSeen = make([]int32, len(c.sets))
		c.covEpoch = 0
	}
	c.covEpoch++
	covered := 0
	for _, v := range chosen {
		if v < 0 || int(v) >= c.numItems {
			continue
		}
		for _, s := range c.postings[v] {
			if c.covSeen[s] != c.covEpoch {
				c.covSeen[s] = c.covEpoch
				covered++
			}
		}
	}
	return covered
}

// Select greedily picks up to k items maximizing sketch coverage, using
// lazy evaluation. banned items (may be nil) are never picked;
// preCovered sketches (by the items in pre) count as already covered and
// do not contribute to gains or the returned coverage delta.
//
// It returns the chosen items in pick order and the number of sketches
// they cover (excluding sketches pre covered).
func (c *Coverage) Select(k int, banned []bool, pre []int32) (chosen []int32, covered int) {
	if k <= 0 {
		return nil, 0
	}
	coveredSet := make([]bool, len(c.sets))
	for _, v := range pre {
		if v < 0 || int(v) >= c.numItems {
			continue
		}
		for _, s := range c.postings[v] {
			coveredSet[s] = true
		}
	}

	gainOf := func(item int32) int32 {
		gain := int32(0)
		for _, s := range c.postings[item] {
			if !coveredSet[s] {
				gain++
			}
		}
		return gain
	}

	h := make(Heap, 0, c.numItems)
	for v := 0; v < c.numItems; v++ {
		if banned != nil && banned[v] {
			continue
		}
		if len(c.postings[v]) == 0 {
			continue
		}
		h = append(h, Entry{Item: int32(v), Gain: int32(len(c.postings[v])), Stamp: -1})
	}
	h.Init()

	taken := make([]bool, c.numItems)
	for len(chosen) < k && h.Len() > 0 {
		top := h.PopMax()
		if taken[top.Item] {
			continue
		}
		if top.Stamp == int32(len(chosen)) {
			// Gain is current: take it.
			if top.Gain == 0 {
				break
			}
			chosen = append(chosen, top.Item)
			taken[top.Item] = true
			covered += int(top.Gain)
			for _, s := range c.postings[top.Item] {
				coveredSet[s] = true
			}
			continue
		}
		// Stale: recompute and push back.
		top.Gain = gainOf(top.Item)
		top.Stamp = int32(len(chosen))
		h.PushEntry(top)
	}
	return chosen, covered
}
