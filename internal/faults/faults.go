// Package faults is a fault-injection registry for chaos testing the
// serving path. Production code calls Check at named injection points
// (snapshot load, pool-build shards, persistence writes, repair); tests
// and operators arm those points with latency, errors, or panics and
// then assert the system's invariants still hold — no cache poisoning,
// consistent counters, bit-identical results on retry.
//
// The registry is zero-cost when disarmed: Check is a single atomic
// bool load (no locks, no map lookups) until the first Enable call, so
// the injection points can live on cold-path shard boundaries without
// showing up in benchmarks.
package faults

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Injection point names. These are the places a production replica can
// actually fail: loading a snapshot directory at boot, the sharded
// Monte-Carlo build loops, the atomic-rename persistence writes, and
// the pool repair path after an edge delta.
const (
	SnapshotLoad   = "snapshot.load"
	PoolBuildShard = "pool.build.shard"
	PersistWrite   = "persist.write"
	Repair         = "repair"
)

// ErrInjected is the default error returned by an armed "error" point.
var ErrInjected = errors.New("faults: injected error")

// Fault describes what an armed point does when hit.
type Fault struct {
	// Mode is "error" (Check returns Err), "panic" (Check panics), or
	// "latency" (Check sleeps Delay, honoring context cancellation).
	Mode string
	// Err is returned in mode "error"; nil means ErrInjected.
	Err error
	// Delay is the sleep applied in mode "latency".
	Delay time.Duration
	// Count limits how many times the fault fires; <= 0 means every hit.
	Count int
}

var (
	gate  atomic.Bool // package-wide fast-path gate; see Check
	mu    sync.Mutex
	table map[string]*Fault
)

// Enable arms point with f. Arming any point flips the global gate on.
func Enable(point string, f Fault) {
	mu.Lock()
	defer mu.Unlock()
	if table == nil {
		table = make(map[string]*Fault)
	}
	ff := f
	table[point] = &ff
	gate.Store(true)
}

// Disable disarms a single point; the global gate stays on while any
// other point is armed.
func Disable(point string) {
	mu.Lock()
	defer mu.Unlock()
	delete(table, point)
	if len(table) == 0 {
		gate.Store(false)
	}
}

// Reset disarms every point and turns the gate off.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	table = nil
	gate.Store(false)
}

// Enabled reports whether any point is armed.
func Enabled() bool { return gate.Load() }

// Check applies the fault armed at point, if any. With the gate off it
// is a single atomic load. See CheckContext for latency semantics.
func Check(point string) error { return CheckContext(context.Background(), point) }

// CheckContext is Check with cancellation: an injected latency sleep
// returns early with ctx.Err() if ctx is canceled first, so a canceled
// request does not serve out an injected stall.
func CheckContext(ctx context.Context, point string) error {
	if !gate.Load() {
		return nil
	}
	mu.Lock()
	f, ok := table[point]
	if ok && f.Count > 0 {
		f.Count--
		if f.Count == 0 {
			delete(table, point)
			if len(table) == 0 {
				gate.Store(false)
			}
		}
	}
	var act Fault
	if ok {
		act = *f
	}
	mu.Unlock()
	if !ok {
		return nil
	}
	switch act.Mode {
	case "latency":
		t := time.NewTimer(act.Delay)
		defer t.Stop()
		select {
		case <-t.C:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case "panic":
		panic(fmt.Sprintf("faults: injected panic at %s", point))
	case "error", "":
		if act.Err != nil {
			return act.Err
		}
		return ErrInjected
	default:
		return fmt.Errorf("faults: unknown mode %q at %s", act.Mode, point)
	}
}

// InitFromEnv arms points from a spec string, the value of the
// KBOOST_FAULTS environment variable in the daemon. Grammar:
//
//	spec    = entry *( ";" entry )
//	entry   = point "=" mode [ ":" arg ] [ "#" count ]
//	mode    = "error" | "panic" | "latency"
//
// arg is a Go duration for latency ("50ms") and ignored otherwise;
// count limits the number of firings. Example:
//
//	KBOOST_FAULTS="pool.build.shard=latency:250ms;persist.write=error#2"
func InitFromEnv(spec string) error {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil
	}
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		point, rest, ok := strings.Cut(entry, "=")
		if !ok || point == "" {
			return fmt.Errorf("faults: bad entry %q (want point=mode[:arg][#count])", entry)
		}
		var f Fault
		if base, cnt, has := strings.Cut(rest, "#"); has {
			n := 0
			if _, err := fmt.Sscanf(cnt, "%d", &n); err != nil || n < 1 {
				return fmt.Errorf("faults: bad count in %q", entry)
			}
			f.Count = n
			rest = base
		}
		mode, arg, _ := strings.Cut(rest, ":")
		f.Mode = mode
		switch mode {
		case "latency":
			d, err := time.ParseDuration(arg)
			if err != nil {
				return fmt.Errorf("faults: bad latency in %q: %v", entry, err)
			}
			f.Delay = d
		case "error", "panic":
			// no arg
		default:
			return fmt.Errorf("faults: unknown mode %q in %q", mode, entry)
		}
		Enable(point, f)
	}
	return nil
}
