package faults

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestDisarmedIsNil(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("gate on with empty table")
	}
	if err := Check(PoolBuildShard); err != nil {
		t.Fatalf("disarmed Check returned %v", err)
	}
}

func TestErrorModeAndCount(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable(PersistWrite, Fault{Mode: "error", Count: 2})
	for i := 0; i < 2; i++ {
		if err := Check(PersistWrite); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: got %v, want ErrInjected", i, err)
		}
	}
	if err := Check(PersistWrite); err != nil {
		t.Fatalf("after count exhausted: got %v", err)
	}
	if Enabled() {
		t.Fatal("gate still on after last armed point expired")
	}
}

func TestCustomError(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	sentinel := errors.New("boom")
	Enable(Repair, Fault{Mode: "error", Err: sentinel})
	if err := Check(Repair); !errors.Is(err, sentinel) {
		t.Fatalf("got %v, want sentinel", err)
	}
}

func TestPanicMode(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable(SnapshotLoad, Fault{Mode: "panic"})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	_ = Check(SnapshotLoad)
}

func TestLatencyHonorsContext(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	Enable(PoolBuildShard, Fault{Mode: "latency", Delay: time.Minute})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	err := CheckContext(ctx, PoolBuildShard)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("latency injection ignored cancellation")
	}
}

func TestInitFromEnv(t *testing.T) {
	Reset()
	t.Cleanup(Reset)
	if err := InitFromEnv("pool.build.shard=latency:1ms;persist.write=error#1"); err != nil {
		t.Fatal(err)
	}
	if err := Check(PoolBuildShard); err != nil {
		t.Fatalf("latency point errored: %v", err)
	}
	if err := Check(PersistWrite); !errors.Is(err, ErrInjected) {
		t.Fatalf("got %v, want ErrInjected", err)
	}
	if err := Check(PersistWrite); err != nil {
		t.Fatalf("count=1 point fired twice: %v", err)
	}
	for _, bad := range []string{"nope", "p=frob", "p=latency:xx", "p=error#0"} {
		Reset()
		if err := InitFromEnv(bad); err == nil {
			t.Fatalf("spec %q accepted", bad)
		}
	}
}
