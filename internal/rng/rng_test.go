package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams with different seeds matched %d/100 outputs", same)
	}
}

func TestReseedRestartsStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 10)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed output %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(5)
	c1 := parent.Split()
	c2 := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if c1.Uint64() == c2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split streams matched %d/100 outputs", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean %v too far from 0.5", mean)
	}
}

func TestBernoulliMean(t *testing.T) {
	r := New(13)
	for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
		hits := 0
		const n = 100000
		for i := 0; i < n; i++ {
			if r.Bernoulli(p) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-p) > 0.01 {
			t.Fatalf("Bernoulli(%v) frequency %v", p, got)
		}
	}
}

func TestBernoulliClamps(t *testing.T) {
	r := New(1)
	if r.Bernoulli(-0.5) {
		t.Fatal("Bernoulli(-0.5) returned true")
	}
	if !r.Bernoulli(1.5) {
		t.Fatal("Bernoulli(1.5) returned false")
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const n, buckets = 120000, 6
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > want*0.05 {
			t.Fatalf("bucket %d count %d too far from %v", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nPowerOfTwo(t *testing.T) {
	r := New(23)
	for i := 0; i < 1000; i++ {
		if v := r.Uint64n(16); v >= 16 {
			t.Fatalf("Uint64n(16) = %d", v)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(29)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestSampleDistinct(t *testing.T) {
	r := New(31)
	for _, tc := range []struct{ n, k int }{{10, 0}, {10, 1}, {10, 5}, {10, 10}, {1000, 3}} {
		s := r.Sample(tc.n, tc.k)
		if len(s) != tc.k {
			t.Fatalf("Sample(%d,%d) returned %d values", tc.n, tc.k, len(s))
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= tc.n || seen[v] {
				t.Fatalf("Sample(%d,%d) invalid value set %v", tc.n, tc.k, s)
			}
			seen[v] = true
		}
	}
}

func TestSamplePanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Sample(3,4) did not panic")
		}
	}()
	New(1).Sample(3, 4)
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(37)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Fatalf("normal variance %v", variance)
	}
}

func TestExpMean(t *testing.T) {
	r := New(41)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean %v", mean)
	}
}

// Property: Sample always returns k distinct in-range values.
func TestQuickSample(t *testing.T) {
	f := func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 1
		k := int(kRaw) % (n + 1)
		s := New(seed).Sample(n, k)
		if len(s) != k {
			return false
		}
		seen := map[int]bool{}
		for _, v := range s {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Uint64n(n) < n for all n >= 1.
func TestQuickUint64n(t *testing.T) {
	f := func(seed, n uint64) bool {
		if n == 0 {
			n = 1
		}
		return New(seed).Uint64n(n) < n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// StreamSeed must be a pure function of (base, index) — the property
// pool repair relies on to regenerate sketch i in isolation — and
// distinct (base, index) pairs must not collide in practice.
func TestStreamSeedStatelessAndDistinct(t *testing.T) {
	seen := map[uint64][2]uint64{}
	for base := uint64(0); base < 8; base++ {
		for index := uint64(0); index < 1000; index++ {
			s := StreamSeed(base, index)
			if s != StreamSeed(base, index) {
				t.Fatalf("StreamSeed(%d,%d) not deterministic", base, index)
			}
			if prev, dup := seen[s]; dup {
				t.Fatalf("StreamSeed collision: (%d,%d) and (%d,%d) -> %d",
					base, index, prev[0], prev[1], s)
			}
			seen[s] = [2]uint64{base, index}
		}
	}
	// ReseedStream must match a fresh New(StreamSeed(...)) source.
	r := New(1)
	r.Uint64()
	r.ReseedStream(42, 7)
	want := New(StreamSeed(42, 7))
	for i := 0; i < 8; i++ {
		if got, w := r.Uint64(), want.Uint64(); got != w {
			t.Fatalf("ReseedStream output %d: got %d want %d", i, got, w)
		}
	}
}
