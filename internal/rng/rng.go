// Package rng provides a small, fast, deterministic random number
// generator used by every randomized component in kboost.
//
// The generator is xoshiro256** seeded through splitmix64. It is not
// cryptographically secure; it is chosen for speed, quality, and — most
// importantly — reproducibility: every algorithm in this repository takes
// an explicit seed, and parallel workers derive independent streams with
// Split, so a fixed (seed, workers) pair always yields identical results.
package rng

import "math"

// Source is a deterministic pseudo-random source. It is NOT safe for
// concurrent use; derive one Source per goroutine with Split.
type Source struct {
	s0, s1, s2, s3 uint64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output.
// It is the canonical way to seed xoshiro state from a single word.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns a Source seeded deterministically from seed.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// Reseed resets the Source to the stream defined by seed.
func (r *Source) Reseed(seed uint64) {
	state := seed
	r.s0 = splitmix64(&state)
	r.s1 = splitmix64(&state)
	r.s2 = splitmix64(&state)
	r.s3 = splitmix64(&state)
	// xoshiro must not be seeded with all-zero state; splitmix64 of any
	// seed cannot produce four zeros, but guard anyway.
	if r.s0|r.s1|r.s2|r.s3 == 0 {
		r.s0 = 0x9e3779b97f4a7c15
	}
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits (xoshiro256**).
func (r *Source) Uint64() uint64 {
	result := rotl(r.s1*5, 7) * 9
	t := r.s1 << 17
	r.s2 ^= r.s0
	r.s3 ^= r.s1
	r.s1 ^= r.s2
	r.s0 ^= r.s3
	r.s2 ^= t
	r.s3 = rotl(r.s3, 45)
	return result
}

// Split derives a new Source whose stream is statistically independent of
// the receiver's. The receiver advances by one output.
func (r *Source) Split() *Source {
	return New(r.Uint64())
}

// StreamSeed derives the seed of the index-th stream of base: a
// stateless hash of (base, index), so stream i can be (re)constructed
// without drawing streams 0..i-1 first. Sequentially indexed streams
// are as independent as Split streams — both reduce to seeding xoshiro
// from splitmix64 outputs of well-separated states.
func StreamSeed(base, index uint64) uint64 {
	state := base
	mixed := splitmix64(&state)
	state = mixed ^ (index+1)*0x9e3779b97f4a7c15
	return splitmix64(&state)
}

// ReseedStream resets the Source to the index-th stream of base (see
// StreamSeed), reusing the receiver's storage.
func (r *Source) ReseedStream(base, index uint64) {
	r.Reseed(StreamSeed(base, index))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli reports true with probability p. p outside [0,1] is clamped.
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform uint64 in [0, n) using Lemire's nearly
// division-free reduction with rejection to remove modulo bias.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with zero n")
	}
	// Fast path for powers of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling on the top of the range.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int31 returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *Source) Int31n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int31n with non-positive n")
	}
	return int32(r.Uint64n(uint64(n)))
}

// NormFloat64 returns a standard normal variate (Box–Muller; one value
// per call, the pair's second value is discarded for simplicity).
func (r *Source) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Exp returns an exponential variate with rate 1.
func (r *Source) Exp() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a uniform random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Sample returns k distinct values from [0, n) in random order.
// It panics if k > n or k < 0.
func (r *Source) Sample(n, k int) []int {
	if k < 0 || k > n {
		panic("rng: Sample with k out of range")
	}
	if k == 0 {
		return nil
	}
	// For small k relative to n, use a set-based approach; otherwise a
	// partial Fisher–Yates shuffle.
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.Intn(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + r.Intn(n-i)
		p[i], p[j] = p[j], p[i]
	}
	return p[:k]
}

// Shuffle permutes s in place.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
