// Package panicsafe converts panics into errors at goroutine
// boundaries. Shard workers inside the pool builders run user-graph
// driven simulation code; a panic there (a poisoned sketch, an injected
// fault, a latent bug) must not kill the daemon or — worse — skip a
// WaitGroup.Done and deadlock the merge that is waiting on it. Workers
// wrap their loop body in Do and report the resulting error through the
// normal error path instead.
package panicsafe

import (
	"fmt"
	"runtime/debug"
)

// Error is a recovered panic carried as an error value. Callers can
// errors.As on it to distinguish "a worker panicked and was contained"
// from ordinary failures (the engine counts these as panics_recovered).
type Error struct {
	Val   any    // the value passed to panic()
	Stack []byte // stack of the panicking goroutine, captured at recover
}

func (e *Error) Error() string {
	return fmt.Sprintf("recovered panic: %v", e.Val)
}

// Do runs fn, converting a panic into a *Error. A nil return means fn
// completed normally. The deferred recover runs on fn's goroutine, so
// Do is safe to use as the entire body of a worker goroutine:
//
//	go func() {
//		defer wg.Done()
//		if err := panicsafe.Do(work); err != nil { record(err) }
//	}()
func Do(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &Error{Val: r, Stack: debug.Stack()}
		}
	}()
	fn()
	return nil
}
