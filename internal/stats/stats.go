// Package stats provides small numeric summaries, timing and memory
// helpers shared by the experiment harness and the benchmarks.
package stats

import (
	"math"
	"runtime"
	"sort"
	"time"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation (n-1 denominator)
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// tCrit975 holds two-sided 95% Student-t critical values t_{0.975,df}
// for df = 1..28 (index df-1), covering samples of size N = 2..29. From
// N = 30 on, the normal value 1.96 is within 2.5% of the t value.
var tCrit975 = [28]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
	2.228, 2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101,
	2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052,
	2.048,
}

// CI95 returns the half-width of a 95% confidence interval for the
// mean: Student-t critical values for small samples (N < 30, where the
// normal approximation understates the interval — at N=5 by ~30%) and
// z = 1.96 for larger ones.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	crit := 1.96
	if s.N < 30 {
		crit = tCrit975[s.N-2]
	}
	return crit * s.Std / math.Sqrt(float64(s.N))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 for empty input). xs is not
// modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear
// interpolation. xs is not modified; a caller that already holds sorted
// data (or owns xs and can sort it once) should use QuantileSorted to
// skip the per-call copy and sort.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return QuantileSorted(cp, q)
}

// QuantileSorted returns the q-quantile (0<=q<=1) of the
// ascending-sorted sample xs using linear interpolation, without
// copying or allocating. Behavior on unsorted input is undefined.
func QuantileSorted(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	pos := q * float64(len(xs)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return xs[lo]
	}
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// Timer measures wall-clock durations.
type Timer struct{ start time.Time }

// StartTimer returns a running Timer.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Seconds returns the elapsed time in seconds.
func (t Timer) Seconds() float64 { return time.Since(t.start).Seconds() }

// HeapAllocMB returns the current heap allocation in mebibytes. It is a
// coarse proxy for the "memory usage" columns of the paper's Tables 2-3.
func HeapAllocMB() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}
