// Package stats provides small numeric summaries, timing and memory
// helpers shared by the experiment harness and the benchmarks.
package stats

import (
	"math"
	"runtime"
	"sort"
	"time"
)

// Summary holds basic descriptive statistics of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation (n-1 denominator)
	Min  float64
	Max  float64
}

// Summarize computes a Summary of xs. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	s.Min = math.Inf(1)
	s.Max = math.Inf(-1)
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the half-width of a normal-approximation 95% confidence
// interval for the mean.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs (0 for empty input). xs is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	mid := len(cp) / 2
	if len(cp)%2 == 1 {
		return cp[mid]
	}
	return (cp[mid-1] + cp[mid]) / 2
}

// Quantile returns the q-quantile (0<=q<=1) of xs using linear
// interpolation. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if q <= 0 {
		return cp[0]
	}
	if q >= 1 {
		return cp[len(cp)-1]
	}
	pos := q * float64(len(cp)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return cp[lo]
	}
	frac := pos - float64(lo)
	return cp[lo]*(1-frac) + cp[hi]*frac
}

// Timer measures wall-clock durations.
type Timer struct{ start time.Time }

// StartTimer returns a running Timer.
func StartTimer() Timer { return Timer{start: time.Now()} }

// Elapsed returns the time since the timer started.
func (t Timer) Elapsed() time.Duration { return time.Since(t.start) }

// Seconds returns the elapsed time in seconds.
func (t Timer) Seconds() float64 { return time.Since(t.start).Seconds() }

// HeapAllocMB returns the current heap allocation in mebibytes. It is a
// coarse proxy for the "memory usage" columns of the paper's Tables 2-3.
func HeapAllocMB() float64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}
