package stats

import (
	"math"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary %+v", s)
	}
	wantStd := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std %v, want %v", s.Std, wantStd)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 || s.Std != 0 {
		t.Fatalf("empty summary %+v", s)
	}
	if s.CI95() != 0 {
		t.Fatal("CI of empty sample not 0")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.Min != 7 || s.Max != 7 {
		t.Fatalf("single summary %+v", s)
	}
}

func TestCI95(t *testing.T) {
	// Small samples use Student-t critical values: t_{0.975,3} = 3.182.
	s := Summarize([]float64{0, 2, 0, 2})
	want := 3.182 * s.Std / 2
	if math.Abs(s.CI95()-want) > 1e-12 {
		t.Fatalf("CI %v, want %v", s.CI95(), want)
	}
}

func TestCI95StudentT(t *testing.T) {
	// Pairs of (N, critical value): the t table below 30, z at 30+.
	cases := []struct {
		n    int
		crit float64
	}{
		{2, 12.706}, {5, 2.776}, {29, 2.048}, {30, 1.96}, {100, 1.96},
	}
	for _, c := range cases {
		xs := make([]float64, c.n)
		for i := range xs {
			xs[i] = float64(i % 2) // alternating 0/1: nonzero Std
		}
		s := Summarize(xs)
		want := c.crit * s.Std / math.Sqrt(float64(c.n))
		if got := s.CI95(); math.Abs(got-want) > 1e-12 {
			t.Fatalf("N=%d: CI %v, want %v", c.n, got, want)
		}
	}
	// Tightening monotonicity across the t/z boundary: for a fixed
	// underlying distribution the half-width shrinks as N grows.
	prev := math.Inf(1)
	for n := 2; n <= 40; n++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i % 2)
		}
		ci := Summarize(xs).CI95()
		if ci > prev*1.05 { // small slack: Std itself wiggles with parity
			t.Fatalf("CI95 grew sharply at N=%d: %v -> %v", n, prev, ci)
		}
		prev = ci
	}
}

func TestQuantileSorted(t *testing.T) {
	xs := []float64{4, 0, 3, 1, 2}
	sorted := []float64{0, 1, 2, 3, 4}
	for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.77, 1} {
		if got, want := QuantileSorted(sorted, q), Quantile(xs, q); got != want {
			t.Fatalf("QuantileSorted(%v) = %v, want %v", q, got, want)
		}
	}
	if QuantileSorted(nil, 0.5) != 0 {
		t.Fatal("empty QuantileSorted wrong")
	}
	allocs := testing.AllocsPerRun(100, func() {
		QuantileSorted(sorted, 0.5)
	})
	if allocs != 0 {
		t.Fatalf("QuantileSorted allocates (%v allocs/op)", allocs)
	}
}

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if Mean([]float64{1, 3}) != 2 {
		t.Fatal("Mean wrong")
	}
}

func TestMedian(t *testing.T) {
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median wrong")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median wrong")
	}
	if Median(nil) != 0 {
		t.Fatal("empty median wrong")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("Median mutated input")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 4}, {0.5, 2}, {0.25, 1}, {0.125, 0.5},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("empty quantile wrong")
	}
}

func TestTimer(t *testing.T) {
	tm := StartTimer()
	if tm.Seconds() < 0 {
		t.Fatal("negative elapsed time")
	}
	if tm.Elapsed() < 0 {
		t.Fatal("negative duration")
	}
}

func TestHeapAllocMB(t *testing.T) {
	if HeapAllocMB() <= 0 {
		t.Fatal("heap allocation not positive")
	}
}
