// Package gen produces synthetic graphs and trees for tests, examples
// and the experiment harness.
//
// The paper evaluates on four crawled social networks (Digg, Flixster,
// Twitter, Flickr) with influence probabilities learned from action
// logs, plus synthetic complete binary bidirected trees with trivalency
// probabilities. The crawls are not redistributable, so this package
// provides the synthetic equivalents: scale-free topologies with matched
// density and probability distributions (see internal/dataset), plus the
// classic generators (Erdős–Rényi, Watts–Strogatz) and bidirected trees.
package gen

import (
	"fmt"
	"math"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// Topology is a directed multigraph skeleton before probabilities are
// assigned. Arcs must not contain self-loops or duplicates.
type Topology struct {
	N    int
	Arcs [][2]int32
}

// InDegrees returns the in-degree of every node.
func (t Topology) InDegrees() []int {
	deg := make([]int, t.N)
	for _, a := range t.Arcs {
		deg[a[1]]++
	}
	return deg
}

// ProbAssigner maps an arc to a base influence probability. inDeg is the
// in-degree array of the topology (used by the weighted-cascade model).
type ProbAssigner func(from, to int32, inDeg []int, r *rng.Source) float64

// Trivalency assigns probabilities uniformly at random from
// {0.1, 0.01, 0.001}, the classic trivalency model.
func Trivalency() ProbAssigner {
	vals := [3]float64{0.1, 0.01, 0.001}
	return func(_, _ int32, _ []int, r *rng.Source) float64 {
		return vals[r.Intn(3)]
	}
}

// WeightedCascade assigns p(u,v) = 1/inDeg(v).
func WeightedCascade() ProbAssigner {
	return func(_, to int32, inDeg []int, _ *rng.Source) float64 {
		d := inDeg[to]
		if d == 0 {
			return 0
		}
		return 1 / float64(d)
	}
}

// Const assigns the same probability to every arc.
func Const(p float64) ProbAssigner {
	return func(_, _ int32, _ []int, _ *rng.Source) float64 { return p }
}

// ExpMean assigns probabilities drawn from an exponential distribution
// with the given mean, clamped to [lo, 0.999]. It mimics the skewed
// probability distributions learned from action logs: many weak edges, a
// few strong ones. The clamp slightly biases the realized mean; for
// means <= 0.6 the bias is small, and dataset stand-ins correct for it
// by calibrating on the realized average (see internal/dataset).
func ExpMean(mean float64) ProbAssigner {
	const lo = 1e-4
	return func(_, _ int32, _ []int, r *rng.Source) float64 {
		p := mean * r.Exp()
		if p < lo {
			p = lo
		}
		if p > 0.999 {
			p = 0.999
		}
		return p
	}
}

// BuildGraph assigns probabilities to every arc of t with assign, sets
// the boosted probability to 1-(1-p)^beta, and returns the built graph.
func BuildGraph(t Topology, assign ProbAssigner, beta float64, r *rng.Source) (*graph.Graph, error) {
	if beta < 1 {
		return nil, fmt.Errorf("gen: beta=%v must be >= 1", beta)
	}
	inDeg := t.InDegrees()
	b := graph.NewBuilder(t.N)
	for _, a := range t.Arcs {
		p := assign(a[0], a[1], inDeg, r)
		pb := 1 - math.Pow(1-p, beta)
		if pb < p {
			pb = p
		}
		if err := b.AddEdge(a[0], a[1], p, pb); err != nil {
			return nil, err
		}
	}
	return b.Build()
}

// arcSet tracks added arcs to prevent duplicates.
type arcSet map[[2]int32]struct{}

func (s arcSet) add(u, v int32) bool {
	if u == v {
		return false
	}
	key := [2]int32{u, v}
	if _, dup := s[key]; dup {
		return false
	}
	s[key] = struct{}{}
	return true
}

// ScaleFree generates a directed scale-free topology by preferential
// attachment. Each new node draws edgesPerNode targets proportionally to
// (current degree + 1); each attachment adds the arc new->target, and
// with probability backProb also target->new (social links are often
// reciprocated). The result has no duplicate arcs or self-loops.
func ScaleFree(n, edgesPerNode int, backProb float64, r *rng.Source) (Topology, error) {
	if n < 2 {
		return Topology{}, fmt.Errorf("gen: ScaleFree needs n >= 2, got %d", n)
	}
	if edgesPerNode < 1 {
		return Topology{}, fmt.Errorf("gen: ScaleFree needs edgesPerNode >= 1, got %d", edgesPerNode)
	}
	t := Topology{N: n}
	seen := make(arcSet)
	// The repeated-nodes list implements preferential attachment: each
	// endpoint occurrence makes a node proportionally more likely to be
	// chosen again.
	endpoints := make([]int32, 0, 2*n*edgesPerNode)
	endpoints = append(endpoints, 0)
	for v := int32(1); v < int32(n); v++ {
		d := edgesPerNode
		if int(v) < edgesPerNode {
			d = int(v)
		}
		attached := 0
		attempts := 0
		for attached < d && attempts < 20*d {
			attempts++
			var target int32
			// Mix preferential attachment with uniform choice to keep the
			// degree distribution heavy-tailed but connected.
			if r.Float64() < 0.9 {
				target = endpoints[r.Intn(len(endpoints))]
			} else {
				target = int32(r.Intn(int(v)))
			}
			if target == v {
				continue
			}
			if !seen.add(v, target) {
				continue
			}
			t.Arcs = append(t.Arcs, [2]int32{v, target})
			endpoints = append(endpoints, target)
			attached++
			if r.Bernoulli(backProb) && seen.add(target, v) {
				t.Arcs = append(t.Arcs, [2]int32{target, v})
			}
		}
		endpoints = append(endpoints, v)
	}
	return t, nil
}

// ErdosRenyi generates a uniform random directed topology with exactly m
// arcs (no duplicates, no self-loops). It errors if m exceeds n*(n-1).
func ErdosRenyi(n, m int, r *rng.Source) (Topology, error) {
	if n < 2 {
		return Topology{}, fmt.Errorf("gen: ErdosRenyi needs n >= 2, got %d", n)
	}
	if m < 0 || m > n*(n-1) {
		return Topology{}, fmt.Errorf("gen: ErdosRenyi m=%d out of range [0,%d]", m, n*(n-1))
	}
	t := Topology{N: n}
	seen := make(arcSet, m)
	for len(t.Arcs) < m {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if seen.add(u, v) {
			t.Arcs = append(t.Arcs, [2]int32{u, v})
		}
	}
	return t, nil
}

// SmallWorld generates a Watts–Strogatz-style directed topology: a ring
// where every node links to its next k clockwise neighbors in both
// directions, with each arc's head rewired uniformly with probability
// rewire.
func SmallWorld(n, k int, rewire float64, r *rng.Source) (Topology, error) {
	if n < 4 || k < 1 || 2*k >= n {
		return Topology{}, fmt.Errorf("gen: SmallWorld needs n >= 4 and 1 <= k < n/2 (n=%d k=%d)", n, k)
	}
	if rewire < 0 || rewire > 1 {
		return Topology{}, fmt.Errorf("gen: SmallWorld rewire=%v out of [0,1]", rewire)
	}
	t := Topology{N: n}
	seen := make(arcSet)
	addOrRewire := func(u, v int32) {
		if r.Bernoulli(rewire) {
			for tries := 0; tries < 32; tries++ {
				w := int32(r.Intn(n))
				if seen.add(u, w) {
					t.Arcs = append(t.Arcs, [2]int32{u, w})
					return
				}
			}
			return // extremely unlikely; drop the arc
		}
		if seen.add(u, v) {
			t.Arcs = append(t.Arcs, [2]int32{u, v})
		}
	}
	for u := 0; u < n; u++ {
		for j := 1; j <= k; j++ {
			v := (u + j) % n
			addOrRewire(int32(u), int32(v))
			addOrRewire(int32(v), int32(u))
		}
	}
	return t, nil
}

// CompleteBinaryTreeParents returns the parent array of a complete
// binary tree with n nodes: parent(i) = (i-1)/2, parent(0) = -1.
func CompleteBinaryTreeParents(n int) []int32 {
	parents := make([]int32, n)
	parents[0] = -1
	for i := 1; i < n; i++ {
		parents[i] = int32((i - 1) / 2)
	}
	return parents
}

// RandomTreeParents returns the parent array of a random tree in which
// node i attaches to a uniformly random earlier node, subject to the
// maxChildren bound (0 = unbounded).
func RandomTreeParents(n, maxChildren int, r *rng.Source) ([]int32, error) {
	if n < 1 {
		return nil, fmt.Errorf("gen: RandomTreeParents needs n >= 1, got %d", n)
	}
	if maxChildren == 1 && n > 2 {
		// A path still works: each node has at most one child.
		parents := make([]int32, n)
		parents[0] = -1
		for i := 1; i < n; i++ {
			parents[i] = int32(i - 1)
		}
		return parents, nil
	}
	parents := make([]int32, n)
	parents[0] = -1
	childCount := make([]int, n)
	for i := 1; i < n; i++ {
		for {
			p := int32(r.Intn(i))
			if maxChildren > 0 && childCount[p] >= maxChildren {
				continue
			}
			parents[i] = p
			childCount[p]++
			break
		}
	}
	return parents, nil
}

// BidirectedTree builds a bidirected tree graph from a parent array:
// every undirected tree edge becomes two directed edges, each with an
// independently assigned probability.
func BidirectedTree(parents []int32, assign ProbAssigner, beta float64, r *rng.Source) (*graph.Graph, error) {
	n := len(parents)
	t := Topology{N: n}
	for i := 1; i < n; i++ {
		p := parents[i]
		if p < 0 || int(p) >= n || int(p) == i {
			return nil, fmt.Errorf("gen: invalid parent %d for node %d", p, i)
		}
		t.Arcs = append(t.Arcs, [2]int32{int32(i), p}, [2]int32{p, int32(i)})
	}
	return BuildGraph(t, assign, beta, r)
}
