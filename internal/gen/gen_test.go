package gen

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/kboost/kboost/internal/rng"
)

func TestScaleFreeBasics(t *testing.T) {
	r := rng.New(1)
	topo, err := ScaleFree(500, 4, 0.3, r)
	if err != nil {
		t.Fatal(err)
	}
	if topo.N != 500 {
		t.Fatalf("N=%d", topo.N)
	}
	if len(topo.Arcs) < 500 {
		t.Fatalf("only %d arcs", len(topo.Arcs))
	}
	assertNoDupArcs(t, topo)
}

func TestScaleFreeHeavyTail(t *testing.T) {
	r := rng.New(2)
	topo, err := ScaleFree(2000, 3, 0.2, r)
	if err != nil {
		t.Fatal(err)
	}
	deg := topo.InDegrees()
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	avg := float64(len(topo.Arcs)) / float64(topo.N)
	// Preferential attachment must produce hubs far above the mean.
	if float64(max) < 5*avg {
		t.Fatalf("max in-degree %d vs avg %v: no heavy tail", max, avg)
	}
}

func TestScaleFreeValidation(t *testing.T) {
	r := rng.New(3)
	if _, err := ScaleFree(1, 2, 0.5, r); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := ScaleFree(10, 0, 0.5, r); err == nil {
		t.Fatal("edgesPerNode=0 accepted")
	}
}

func TestErdosRenyi(t *testing.T) {
	r := rng.New(4)
	topo, err := ErdosRenyi(50, 200, r)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Arcs) != 200 {
		t.Fatalf("%d arcs, want 200", len(topo.Arcs))
	}
	assertNoDupArcs(t, topo)
	if _, err := ErdosRenyi(3, 7, r); err == nil {
		t.Fatal("m > n(n-1) accepted")
	}
	if _, err := ErdosRenyi(1, 0, r); err == nil {
		t.Fatal("n=1 accepted")
	}
}

func TestSmallWorld(t *testing.T) {
	r := rng.New(5)
	topo, err := SmallWorld(100, 3, 0.1, r)
	if err != nil {
		t.Fatal(err)
	}
	assertNoDupArcs(t, topo)
	// Roughly 2*k*n arcs (some lost to rewire collisions).
	if len(topo.Arcs) < 500 {
		t.Fatalf("only %d arcs", len(topo.Arcs))
	}
	if _, err := SmallWorld(4, 2, 0.1, r); err == nil {
		t.Fatal("2k >= n accepted")
	}
	if _, err := SmallWorld(10, 2, 1.5, r); err == nil {
		t.Fatal("rewire > 1 accepted")
	}
}

func TestBuildGraphProbabilities(t *testing.T) {
	r := rng.New(6)
	topo, err := ErdosRenyi(30, 100, r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := BuildGraph(topo, Const(0.3), 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 100 {
		t.Fatalf("M=%d", g.M())
	}
	for _, e := range g.Edges() {
		if e.P != 0.3 {
			t.Fatalf("edge p=%v", e.P)
		}
		want := 1 - 0.7*0.7
		if math.Abs(e.PBoost-want) > 1e-12 {
			t.Fatalf("edge p'=%v want %v", e.PBoost, want)
		}
	}
	if _, err := BuildGraph(topo, Const(0.3), 0.5, r); err == nil {
		t.Fatal("beta < 1 accepted")
	}
}

func TestTrivalencyValues(t *testing.T) {
	r := rng.New(7)
	assign := Trivalency()
	seen := map[float64]int{}
	for i := 0; i < 3000; i++ {
		seen[assign(0, 1, nil, r)]++
	}
	for _, v := range []float64{0.1, 0.01, 0.001} {
		if seen[v] < 800 {
			t.Fatalf("trivalency value %v seen only %d times", v, seen[v])
		}
	}
	if len(seen) != 3 {
		t.Fatalf("unexpected trivalency values: %v", seen)
	}
}

func TestWeightedCascade(t *testing.T) {
	assign := WeightedCascade()
	inDeg := []int{0, 4}
	if got := assign(0, 1, inDeg, nil); got != 0.25 {
		t.Fatalf("WC prob %v, want 0.25", got)
	}
	if got := assign(1, 0, inDeg, nil); got != 0 {
		t.Fatalf("WC prob for zero in-degree %v, want 0", got)
	}
}

func TestExpMeanApproximatesMean(t *testing.T) {
	r := rng.New(8)
	for _, mean := range []float64{0.013, 0.1, 0.24} {
		assign := ExpMean(mean)
		var sum float64
		const n = 100000
		for i := 0; i < n; i++ {
			p := assign(0, 1, nil, r)
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of range", p)
			}
			sum += p
		}
		got := sum / n
		if math.Abs(got-mean) > mean*0.15 {
			t.Fatalf("ExpMean(%v) realized mean %v", mean, got)
		}
	}
}

func TestCompleteBinaryTreeParents(t *testing.T) {
	p := CompleteBinaryTreeParents(7)
	want := []int32{-1, 0, 0, 1, 1, 2, 2}
	for i := range want {
		if p[i] != want[i] {
			t.Fatalf("parents = %v, want %v", p, want)
		}
	}
}

func TestRandomTreeParents(t *testing.T) {
	r := rng.New(9)
	p, err := RandomTreeParents(100, 3, r)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, 100)
	for i := 1; i < 100; i++ {
		if p[i] < 0 || int(p[i]) >= i {
			t.Fatalf("parent[%d] = %d not earlier node", i, p[i])
		}
		counts[p[i]]++
	}
	for v, c := range counts {
		if c > 3 {
			t.Fatalf("node %d has %d children, cap 3", v, c)
		}
	}
}

func TestBidirectedTreeIsTree(t *testing.T) {
	r := rng.New(10)
	parents := CompleteBinaryTreeParents(31)
	g, err := BidirectedTree(parents, Trivalency(), 2, r)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsBidirectedTree() {
		t.Fatal("generated tree is not a bidirected tree")
	}
	if g.M() != 2*30 {
		t.Fatalf("M=%d, want 60", g.M())
	}
}

func TestBidirectedTreeBadParents(t *testing.T) {
	r := rng.New(11)
	if _, err := BidirectedTree([]int32{-1, 5}, Const(0.1), 2, r); err == nil {
		t.Fatal("invalid parent accepted")
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a, err := ScaleFree(200, 3, 0.3, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ScaleFree(200, 3, 0.3, rng.New(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Arcs) != len(b.Arcs) {
		t.Fatalf("arc counts differ: %d vs %d", len(a.Arcs), len(b.Arcs))
	}
	for i := range a.Arcs {
		if a.Arcs[i] != b.Arcs[i] {
			t.Fatalf("arc %d differs", i)
		}
	}
}

// Property: generated trees always satisfy parent[i] < i and exactly
// n-1 undirected edges.
func TestQuickRandomTree(t *testing.T) {
	f := func(seed uint64, nRaw uint8, capRaw uint8) bool {
		n := int(nRaw%60) + 2
		maxC := int(capRaw % 5) // 0 = unbounded
		if maxC == 1 {
			maxC = 2 // maxChildren=1 only supports paths; avoid stalls
		}
		p, err := RandomTreeParents(n, maxC, rng.New(seed))
		if err != nil {
			return false
		}
		if len(p) != n || p[0] != -1 {
			return false
		}
		for i := 1; i < n; i++ {
			if p[i] < 0 || int(p[i]) >= i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func assertNoDupArcs(t *testing.T, topo Topology) {
	t.Helper()
	seen := map[[2]int32]bool{}
	for _, a := range topo.Arcs {
		if a[0] == a[1] {
			t.Fatalf("self loop %v", a)
		}
		if seen[a] {
			t.Fatalf("duplicate arc %v", a)
		}
		seen[a] = true
		if a[0] < 0 || int(a[0]) >= topo.N || a[1] < 0 || int(a[1]) >= topo.N {
			t.Fatalf("arc %v out of range", a)
		}
	}
}
