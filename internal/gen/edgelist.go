package gen

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// ReadEdgeList ingests a plain "from to" edge list (the common format
// of SNAP-style network dumps) and assigns influence probabilities with
// the given model, mirroring how the paper derives probabilities for
// crawled graphs when no action log is available. Node ids may be
// arbitrary non-negative integers; they are remapped densely in order
// of first appearance. Lines starting with '#' or '%' are comments;
// self-loops and duplicate arcs are dropped.
func ReadEdgeList(rd io.Reader, assign ProbAssigner, beta float64, r *rng.Source) (*graph.Graph, []int64, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)

	idOf := make(map[int64]int32)
	var origIDs []int64
	intern := func(raw int64) int32 {
		if id, ok := idOf[raw]; ok {
			return id
		}
		id := int32(len(origIDs))
		idOf[raw] = id
		origIDs = append(origIDs, raw)
		return id
	}

	topo := Topology{}
	seen := make(arcSet)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || line[0] == '#' || line[0] == '%' {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, nil, fmt.Errorf("gen: edge list line %d: want 'from to', got %q", lineNo, line)
		}
		from, err := strconv.ParseInt(fields[0], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("gen: edge list line %d: %w", lineNo, err)
		}
		to, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return nil, nil, fmt.Errorf("gen: edge list line %d: %w", lineNo, err)
		}
		if from < 0 || to < 0 {
			return nil, nil, fmt.Errorf("gen: edge list line %d: negative node id", lineNo)
		}
		u, v := intern(from), intern(to)
		if u == v {
			continue
		}
		if seen.add(u, v) {
			topo.Arcs = append(topo.Arcs, [2]int32{u, v})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	topo.N = len(origIDs)
	if topo.N == 0 {
		return nil, nil, fmt.Errorf("gen: empty edge list")
	}
	g, err := BuildGraph(topo, assign, beta, r)
	if err != nil {
		return nil, nil, err
	}
	return g, origIDs, nil
}

// ParseProbModel parses a probability-model string: "trivalency", "wc"
// (weighted cascade), "const:<p>", or "expmean:<m>".
func ParseProbModel(s string) (ProbAssigner, error) {
	switch {
	case s == "trivalency":
		return Trivalency(), nil
	case s == "wc":
		return WeightedCascade(), nil
	case strings.HasPrefix(s, "const:"):
		p, err := strconv.ParseFloat(s[len("const:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("gen: bad const probability %q", s)
		}
		return Const(p), nil
	case strings.HasPrefix(s, "expmean:"):
		m, err := strconv.ParseFloat(s[len("expmean:"):], 64)
		if err != nil {
			return nil, fmt.Errorf("gen: bad expmean %q", s)
		}
		return ExpMean(m), nil
	default:
		return nil, fmt.Errorf("gen: unknown probability model %q (want trivalency, wc, const:<p>, expmean:<m>)", s)
	}
}
