package gen

import (
	"strings"
	"testing"

	"github.com/kboost/kboost/internal/rng"
)

func TestReadEdgeList(t *testing.T) {
	input := `# a SNAP-style comment
% another comment style
100 200
200 100
100 300
300 400
100 100
100 200
`
	g, orig, err := ReadEdgeList(strings.NewReader(input), Const(0.2), 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 4 {
		t.Fatalf("N=%d, want 4", g.N())
	}
	// Self-loop and duplicate dropped: 4 arcs remain.
	if g.M() != 4 {
		t.Fatalf("M=%d, want 4", g.M())
	}
	if len(orig) != 4 || orig[0] != 100 || orig[1] != 200 || orig[2] != 300 || orig[3] != 400 {
		t.Fatalf("orig ids %v", orig)
	}
	p, pb, ok := g.FindEdge(0, 1) // 100 -> 200
	if !ok || p != 0.2 {
		t.Fatalf("edge probabilities %v %v %v", p, pb, ok)
	}
	want := 1 - 0.8*0.8
	if diff := pb - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("boosted probability %v, want %v", pb, want)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"",            // empty
		"1\n",         // one field
		"a b\n",       // non-numeric
		"1 -2\n",      // negative id
		"# only\n",    // comments only -> empty
		"9 x extra\n", // bad second field
	}
	for _, c := range cases {
		if _, _, err := ReadEdgeList(strings.NewReader(c), Const(0.1), 2, rng.New(1)); err == nil {
			t.Fatalf("accepted %q", c)
		}
	}
}

func TestReadEdgeListWeightedCascade(t *testing.T) {
	input := "1 3\n2 3\n"
	g, _, err := ReadEdgeList(strings.NewReader(input), WeightedCascade(), 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	// Node 3 has in-degree 2 -> p = 0.5 on both in-edges.
	for _, e := range g.Edges() {
		if e.P != 0.5 {
			t.Fatalf("WC probability %v, want 0.5", e.P)
		}
	}
}

func TestParseProbModel(t *testing.T) {
	for _, ok := range []string{"trivalency", "wc", "const:0.25", "expmean:0.1"} {
		if _, err := ParseProbModel(ok); err != nil {
			t.Fatalf("ParseProbModel(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{"", "nope", "const:x", "expmean:"} {
		if _, err := ParseProbModel(bad); err == nil {
			t.Fatalf("ParseProbModel(%q) accepted", bad)
		}
	}
	assign, err := ParseProbModel("const:0.25")
	if err != nil {
		t.Fatal(err)
	}
	if got := assign(0, 1, nil, nil); got != 0.25 {
		t.Fatalf("const assigner gave %v", got)
	}
}
