package tree

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/gen"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

// bruteForceOpt enumerates all boost sets of size <= k with the exact
// tree evaluator.
func bruteForceOpt(t *testing.T, tr *Tree, k int) float64 {
	t.Helper()
	e := NewEvaluator(tr)
	var nonSeeds []int32
	for v := int32(0); int(v) < tr.N(); v++ {
		if !tr.IsSeed(v) {
			nonSeeds = append(nonSeeds, v)
		}
	}
	best := 0.0
	var rec func(start int, cur []int32)
	rec = func(start int, cur []int32) {
		if len(cur) > 0 {
			d, err := e.Delta(cur)
			if err != nil {
				t.Fatal(err)
			}
			if d > best {
				best = d
			}
		}
		if len(cur) == k {
			return
		}
		for i := start; i < len(nonSeeds); i++ {
			rec(i+1, append(cur, nonSeeds[i]))
		}
	}
	rec(0, nil)
	return best
}

// buildTree makes a bidirected tree from parent array with the given
// probability assigner.
func buildTestTree(t *testing.T, parents []int32, seeds []int32, r *rng.Source, lo, hi float64) *Tree {
	t.Helper()
	n := len(parents)
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		p1 := lo + (hi-lo)*r.Float64()
		p2 := lo + (hi-lo)*r.Float64()
		b.MustAddEdge(int32(i), parents[i], p1, 1-(1-p1)*(1-p1))
		b.MustAddEdge(parents[i], int32(i), p2, 1-(1-p2)*(1-p2))
	}
	tr, err := FromGraph(b.MustBuild(), seeds)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// The FPTAS guarantee in additive form: Δ(B̃) ≥ OPT − ε·max(LB,1).
func checkGuarantee(t *testing.T, tr *Tree, k int, eps float64, label string) {
	t.Helper()
	res, err := DPBoost(tr, k, DPOptions{Epsilon: eps})
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	if len(res.Boost) > k {
		t.Fatalf("%s: |B|=%d > k=%d", label, len(res.Boost), k)
	}
	for _, v := range res.Boost {
		if tr.IsSeed(v) {
			t.Fatalf("%s: DP boosted seed %d", label, v)
		}
	}
	seen := map[int32]bool{}
	for _, v := range res.Boost {
		if seen[v] {
			t.Fatalf("%s: duplicate boost %d", label, v)
		}
		seen[v] = true
	}
	// The realized boost must be at least the DP's own lower bound.
	if res.Delta+1e-9 < res.DPValue {
		t.Fatalf("%s: exact Δ=%v below DP value %v", label, res.Delta, res.DPValue)
	}
	opt := bruteForceOpt(t, tr, k)
	slack := eps*math.Max(res.LB, 1) + 1e-9
	if res.Delta < opt-slack {
		t.Fatalf("%s: Δ(B̃)=%v violates guarantee OPT−ε·max(LB,1)=%v−%v",
			label, res.Delta, opt, slack)
	}
}

func TestDPPathTree(t *testing.T) {
	r := rng.New(1)
	parents := []int32{-1, 0, 1, 2, 3, 4}
	tr := buildTestTree(t, parents, []int32{0}, r, 0.3, 0.7)
	checkGuarantee(t, tr, 2, 0.5, "path")
}

func TestDPBinaryTree(t *testing.T) {
	r := rng.New(2)
	parents := gen.CompleteBinaryTreeParents(15)
	tr := buildTestTree(t, parents, []int32{0}, r, 0.2, 0.6)
	checkGuarantee(t, tr, 3, 0.5, "binary")
}

func TestDPStarTree(t *testing.T) {
	// Root with 5 children: exercises the chain-helper DP (d >= 3).
	r := rng.New(3)
	parents := []int32{-1, 0, 0, 0, 0, 0}
	tr := buildTestTree(t, parents, []int32{1}, r, 0.3, 0.7)
	checkGuarantee(t, tr, 2, 0.5, "star")
}

func TestDPStarTreeSeedCenter(t *testing.T) {
	r := rng.New(4)
	parents := []int32{-1, 0, 0, 0, 0, 0, 0}
	tr := buildTestTree(t, parents, []int32{0}, r, 0.3, 0.7)
	checkGuarantee(t, tr, 3, 0.5, "star-seed-center")
}

func TestDPRandomTrees(t *testing.T) {
	r := rng.New(5)
	for trial := 0; trial < 8; trial++ {
		n := 5 + r.Intn(7)
		parents, err := gen.RandomTreeParents(n, 0, r)
		if err != nil {
			t.Fatal(err)
		}
		seeds := testutil.RandomSeedSet(r, n, 1+r.Intn(2))
		tr := buildTestTree(t, parents, seeds, r, 0.2, 0.8)
		k := 1 + r.Intn(3)
		eps := 0.3 + 0.4*r.Float64()
		checkGuarantee(t, tr, k, eps, "random")
	}
}

func TestDPTightEpsilonNearExact(t *testing.T) {
	r := rng.New(6)
	parents := []int32{-1, 0, 0, 1, 1}
	tr := buildTestTree(t, parents, []int32{0}, r, 0.4, 0.8)
	opt := bruteForceOpt(t, tr, 2)
	res, err := DPBoost(tr, 2, DPOptions{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta < opt-0.05*math.Max(res.LB, 1)-1e-9 {
		t.Fatalf("tight-ε DP Δ=%v, OPT=%v", res.Delta, opt)
	}
}

func TestDPVsGreedy(t *testing.T) {
	// DP with small ε should never be much worse than greedy.
	r := rng.New(7)
	parents := gen.CompleteBinaryTreeParents(31)
	tr := buildTestTree(t, parents, []int32{0, 5}, r, 0.2, 0.5)
	greedy, err := GreedyBoost(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DPBoost(tr, 4, DPOptions{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta < greedy.Delta-0.3*math.Max(res.LB, 1)-1e-9 {
		t.Fatalf("DP Δ=%v far below greedy Δ=%v", res.Delta, greedy.Delta)
	}
}

func TestDPValidation(t *testing.T) {
	r := rng.New(8)
	tr := buildTestTree(t, []int32{-1, 0, 1}, []int32{0}, r, 0.3, 0.5)
	if _, err := DPBoost(tr, 0, DPOptions{}); err == nil {
		t.Fatal("k=0 accepted")
	}
	g, _ := testutil.Fig4()
	noSeeds, err := FromGraph(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DPBoost(noSeeds, 1, DPOptions{}); err == nil {
		t.Fatal("seedless tree accepted")
	}
}

func TestDPGridCellCap(t *testing.T) {
	r := rng.New(9)
	parents := gen.CompleteBinaryTreeParents(63)
	tr := buildTestTree(t, parents, []int32{0}, r, 0.4, 0.8)
	if _, err := DPBoost(tr, 5, DPOptions{Epsilon: 0.5, MaxGridCells: 10}); err == nil {
		t.Fatal("tiny cell cap not enforced")
	}
}

func TestDPDeterminism(t *testing.T) {
	r := rng.New(10)
	parents := gen.CompleteBinaryTreeParents(15)
	tr := buildTestTree(t, parents, []int32{0}, r, 0.3, 0.6)
	a, err := DPBoost(tr, 3, DPOptions{Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := DPBoost(tr, 3, DPOptions{Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if a.Delta != b.Delta || len(a.Boost) != len(b.Boost) {
		t.Fatalf("nondeterministic DP: %+v vs %+v", a, b)
	}
}

func TestDPKExceedsNonSeeds(t *testing.T) {
	r := rng.New(11)
	tr := buildTestTree(t, []int32{-1, 0, 1}, []int32{0}, r, 0.3, 0.5)
	res, err := DPBoost(tr, 10, DPOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boost) > 2 {
		t.Fatalf("boosted %d nodes with only 2 non-seeds", len(res.Boost))
	}
}

func TestDPTrivalencyLikeTree(t *testing.T) {
	// Mirrors the paper's synthetic setup: complete binary tree with
	// trivalency probabilities and β=2.
	r := rng.New(12)
	parents := gen.CompleteBinaryTreeParents(63)
	g, err := gen.BidirectedTree(parents, gen.Trivalency(), 2, r)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := FromGraph(g, []int32{0, 7, 20})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := GreedyBoost(tr, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DPBoost(tr, 5, DPOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta+1e-9 < res.DPValue {
		t.Fatalf("Δ=%v below DP value %v", res.Delta, res.DPValue)
	}
	// The DP must be competitive with greedy under its guarantee slack.
	if res.Delta < greedy.Delta-0.5*math.Max(res.LB, 1)-1e-9 {
		t.Fatalf("DP Δ=%v vs greedy Δ=%v with LB=%v", res.Delta, greedy.Delta, res.LB)
	}
}
