package tree

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/exact"
	"github.com/kboost/kboost/internal/gen"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
	"github.com/kboost/kboost/internal/testutil"
)

func fig4Tree(t *testing.T) *Tree {
	t.Helper()
	g, seeds := testutil.Fig4()
	tr, err := FromGraph(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// randomTree builds a random bidirected tree with n nodes (2(n-1) edges,
// so n <= 9 keeps exact enumeration feasible) and pseudo-random
// probabilities.
func randomTree(t *testing.T, r *rng.Source, n int, numSeeds int) (*graph.Graph, *Tree, []int32) {
	t.Helper()
	parents, err := gen.RandomTreeParents(n, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		p1 := 0.1 + 0.5*r.Float64()
		p2 := 0.1 + 0.5*r.Float64()
		b.MustAddEdge(int32(i), parents[i], p1, 1-(1-p1)*(1-p1))
		b.MustAddEdge(parents[i], int32(i), p2, 1-(1-p2)*(1-p2))
	}
	g := b.MustBuild()
	seeds := testutil.RandomSeedSet(r, n, numSeeds)
	tr, err := FromGraph(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	return g, tr, seeds
}

func TestFromGraphValidation(t *testing.T) {
	// Not a tree: triangle.
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.5, 0.6)
	b.MustAddEdge(1, 2, 0.5, 0.6)
	b.MustAddEdge(2, 0, 0.5, 0.6)
	if _, err := FromGraph(b.MustBuild(), []int32{0}); err == nil {
		t.Fatal("triangle accepted")
	}
	// Bad seeds.
	g, _ := testutil.Fig4()
	if _, err := FromGraph(g, []int32{9}); err == nil {
		t.Fatal("out-of-range seed accepted")
	}
	if _, err := FromGraph(g, []int32{1, 1}); err == nil {
		t.Fatal("duplicate seed accepted")
	}
}

// The paper's Figure 4 example: ap_∅(v0) = 0.19, ap_∅(v0\v1) = 0.1,
// and g_∅(v0\v1) = 0.99.
func TestFig4PaperValues(t *testing.T) {
	tr := fig4Tree(t)
	e := NewEvaluator(tr)
	mask := make([]bool, tr.N())
	e.computeAP(mask)
	if math.Abs(e.ap[0]-0.19) > 1e-12 {
		t.Fatalf("ap(v0) = %v, want 0.19", e.ap[0])
	}
	// slot v0 -> v1:
	var slot01 int32 = -1
	for j := tr.start[0]; j < tr.start[1]; j++ {
		if tr.nbr[j] == 1 {
			slot01 = j
		}
	}
	if slot01 < 0 {
		t.Fatal("slot v0->v1 not found")
	}
	if math.Abs(e.apOut[slot01]-0.1) > 1e-12 {
		t.Fatalf("ap(v0\\v1) = %v, want 0.1", e.apOut[slot01])
	}
	e.computeG(mask)
	if math.Abs(e.gOut[slot01]-0.99) > 1e-12 {
		t.Fatalf("g(v0\\v1) = %v, want 0.99", e.gOut[slot01])
	}
}

func TestFig4Sigma(t *testing.T) {
	tr := fig4Tree(t)
	e := NewEvaluator(tr)
	got, err := e.Sigma(nil)
	if err != nil {
		t.Fatal(err)
	}
	// ap(v1)=ap(v3)=1, ap(v0)=0.19, ap(v2)=0.19*0.1.
	want := 1 + 1 + 0.19 + 0.019
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("σ(∅) = %v, want %v", got, want)
	}
}

// Exact tree computation must match possible-world enumeration for many
// random trees and boost sets.
func TestSigmaMatchesEnumeration(t *testing.T) {
	r := rng.New(42)
	for trial := 0; trial < 25; trial++ {
		n := 3 + r.Intn(6) // 3..8 nodes -> <= 14 edges
		g, tr, seeds := randomTree(t, r, n, 1+r.Intn(2))
		var boost []int32
		for v := int32(0); int(v) < n; v++ {
			if !tr.IsSeed(v) && r.Bernoulli(0.4) {
				boost = append(boost, v)
			}
		}
		want, err := exact.Spread(g, seeds, boost)
		if err != nil {
			t.Fatal(err)
		}
		e := NewEvaluator(tr)
		got, err := e.Sigma(boost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d (n=%d, B=%v): tree σ=%v, enumeration σ=%v",
				trial, n, boost, got, want)
		}
	}
}

// Marginals from SigmaWithEach must equal σ recomputed from scratch
// with u added.
func TestSigmaWithEachConsistent(t *testing.T) {
	r := rng.New(43)
	for trial := 0; trial < 15; trial++ {
		n := 4 + r.Intn(8)
		_, tr, _ := randomTree(t, r, n, 1)
		var boost []int32
		for v := int32(0); int(v) < n; v++ {
			if !tr.IsSeed(v) && r.Bernoulli(0.3) {
				boost = append(boost, v)
			}
		}
		e := NewEvaluator(tr)
		sigma, withU, err := e.SigmaWithEach(boost)
		if err != nil {
			t.Fatal(err)
		}
		check, err := e.Sigma(boost)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(sigma-check) > 1e-9 {
			t.Fatalf("σ mismatch: %v vs %v", sigma, check)
		}
		for u := int32(0); int(u) < n; u++ {
			want, err := e.Sigma(append(append([]int32(nil), boost...), u))
			if err != nil {
				t.Fatal(err)
			}
			inB := tr.IsSeed(u)
			for _, b := range boost {
				if b == u {
					inB = true
				}
			}
			if inB {
				want = check
			}
			if math.Abs(withU[u]-want) > 1e-9 {
				t.Fatalf("trial %d: σ(B∪{%d}) = %v, recomputed %v (B=%v)",
					trial, u, withU[u], want, boost)
			}
		}
	}
}

func TestDeterministicEdgesGuard(t *testing.T) {
	// p=1 edges exercise the division guard in the g computation.
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 1, 1)
	b.MustAddEdge(1, 0, 1, 1)
	b.MustAddEdge(1, 2, 0.5, 0.75)
	b.MustAddEdge(2, 1, 0.5, 0.75)
	b.MustAddEdge(2, 3, 0.2, 0.36)
	b.MustAddEdge(3, 2, 0.2, 0.36)
	g := b.MustBuild()
	tr, err := FromGraph(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(tr)
	sigma, withU, err := e.SigmaWithEach(nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := exact.Spread(g, []int32{0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sigma-want) > 1e-9 {
		t.Fatalf("σ=%v, want %v", sigma, want)
	}
	for u := int32(1); u < 4; u++ {
		wu, err := exact.Spread(g, []int32{0}, []int32{u})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(withU[u]-wu) > 1e-9 {
			t.Fatalf("σ(∅∪{%d}) = %v, want %v", u, withU[u], wu)
		}
	}
}

func TestOneDirectionalTreeEdges(t *testing.T) {
	// A tree given with only one direction per edge: the reverse
	// direction is implicit with p=0.
	b := graph.NewBuilder(3)
	b.MustAddEdge(0, 1, 0.5, 0.75)
	b.MustAddEdge(1, 2, 0.5, 0.75)
	g := b.MustBuild()
	tr, err := FromGraph(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(tr)
	got, err := e.Sigma(nil)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 + 0.5 + 0.25
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("σ = %v, want %v", got, want)
	}
}

func TestDeltaBaseline(t *testing.T) {
	r := rng.New(44)
	_, tr, _ := randomTree(t, r, 7, 1)
	e := NewEvaluator(tr)
	d, err := e.Delta(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d) > 1e-12 {
		t.Fatalf("Δ(∅) = %v, want 0", d)
	}
}

func TestGreedyBoostBasics(t *testing.T) {
	r := rng.New(45)
	_, tr, _ := randomTree(t, r, 12, 2)
	res, err := GreedyBoost(tr, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boost) > 3 {
		t.Fatalf("|B| = %d", len(res.Boost))
	}
	for _, v := range res.Boost {
		if tr.IsSeed(v) {
			t.Fatalf("greedy picked seed %d", v)
		}
	}
	if res.Delta < 0 {
		t.Fatalf("negative Δ %v", res.Delta)
	}
	// Delta must equal recomputed exact delta.
	e := NewEvaluator(tr)
	want, err := e.Delta(res.Boost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Delta-want) > 1e-9 {
		t.Fatalf("greedy Δ=%v, recomputed %v", res.Delta, want)
	}
}

// Greedy marginal values must be consistent: each picked node is the
// argmax of the exact marginals at its round.
func TestGreedyPicksArgmax(t *testing.T) {
	r := rng.New(46)
	_, tr, _ := randomTree(t, r, 9, 1)
	res, err := GreedyBoost(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boost) == 0 {
		t.Skip("nothing to boost")
	}
	e := NewEvaluator(tr)
	_, withU, err := e.SigmaWithEach(nil)
	if err != nil {
		t.Fatal(err)
	}
	first := res.Boost[0]
	for u := int32(0); int(u) < tr.N(); u++ {
		if withU[u] > withU[first]+1e-12 {
			t.Fatalf("greedy first pick %d (σ=%v) beaten by %d (σ=%v)",
				first, withU[first], u, withU[u])
		}
	}
}

// On small trees greedy should be close to the enumerated optimum.
func TestGreedyNearOptimal(t *testing.T) {
	r := rng.New(47)
	for trial := 0; trial < 10; trial++ {
		n := 5 + r.Intn(4)
		_, tr, _ := randomTree(t, r, n, 1)
		const k = 2
		res, err := GreedyBoost(tr, k)
		if err != nil {
			t.Fatal(err)
		}
		// Brute force optimum using the tree evaluator.
		e := NewEvaluator(tr)
		nonSeeds := []int32{}
		for v := int32(0); int(v) < tr.N(); v++ {
			if !tr.IsSeed(v) {
				nonSeeds = append(nonSeeds, v)
			}
		}
		best := 0.0
		for i := 0; i < len(nonSeeds); i++ {
			for j := i + 1; j < len(nonSeeds); j++ {
				d, err := e.Delta([]int32{nonSeeds[i], nonSeeds[j]})
				if err != nil {
					t.Fatal(err)
				}
				if d > best {
					best = d
				}
			}
		}
		if res.Delta < 0.6*best-1e-9 {
			t.Fatalf("trial %d: greedy Δ=%v, optimum %v", trial, res.Delta, best)
		}
	}
}

func TestGreedyZeroK(t *testing.T) {
	r := rng.New(48)
	_, tr, _ := randomTree(t, r, 6, 1)
	res, err := GreedyBoost(tr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boost) != 0 || math.Abs(res.Delta) > 1e-12 {
		t.Fatalf("k=0 gave %v Δ=%v", res.Boost, res.Delta)
	}
	if _, err := GreedyBoost(tr, -1); err == nil {
		t.Fatal("negative k accepted")
	}
}

func TestEvaluatorInputValidation(t *testing.T) {
	tr := fig4Tree(t)
	e := NewEvaluator(tr)
	if _, err := e.Sigma([]int32{99}); err == nil {
		t.Fatal("bad boost node accepted")
	}
	if _, _, err := e.SigmaWithEach([]int32{-1}); err == nil {
		t.Fatal("negative boost node accepted")
	}
}

// Boosting monotonicity on trees: σ non-decreasing as B grows.
func TestTreeBoostMonotone(t *testing.T) {
	r := rng.New(49)
	_, tr, _ := randomTree(t, r, 10, 2)
	e := NewEvaluator(tr)
	var boost []int32
	prev, err := e.Sigma(nil)
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); int(v) < tr.N(); v++ {
		if tr.IsSeed(v) {
			continue
		}
		boost = append(boost, v)
		cur, err := e.Sigma(boost)
		if err != nil {
			t.Fatal(err)
		}
		if cur+1e-12 < prev {
			t.Fatalf("σ decreased adding %d: %v -> %v", v, prev, cur)
		}
		prev = cur
	}
}
