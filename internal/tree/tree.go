// Package tree implements the paper's Section VI: the k-boosting
// problem on bidirected trees. It provides
//
//   - an O(n) exact computation of the boosted influence spread σ_S(B)
//     and of all single-node marginals σ_S(B ∪ {u}) (Lemmas 5-7),
//   - Greedy-Boost, the O(kn) greedy algorithm built on it, and
//   - DP-Boost, a rounded dynamic program that is a fully
//     polynomial-time approximation scheme (Theorem 3 / Appendix B).
//
// A bidirected tree is a directed graph whose underlying undirected
// graph is a tree; influence may flow in both directions of each edge
// with independent probabilities.
package tree

import (
	"fmt"

	"github.com/kboost/kboost/internal/graph"
)

// Tree is an immutable bidirected tree with seed annotations, stored as
// a flattened adjacency structure: for the j-th adjacency slot of node u
// (edge u->v), rev[j] is the global slot index of the reverse direction
// (v->u).
type Tree struct {
	n int

	start []int32 // len n+1: adjacency offsets
	nbr   []int32 // neighbor node ids
	rev   []int32 // global slot index of the reverse slot
	p     []float64
	pb    []float64 // boosted probability

	seed  []bool
	seeds []int32

	// Rooted orientation used by traversals (root 0): parents, BFS order.
	parent     []int32 // -1 for root
	parentSlot []int32 // slot index (u->parent) for each u; -1 for root
	order      []int32 // BFS order from the root
}

// FromGraph validates that g is a bidirected tree and builds the Tree.
// Missing reverse directions are treated as probability-0 edges, per the
// paper's convention that every adjacent pair is connected both ways.
func FromGraph(g *graph.Graph, seeds []int32) (*Tree, error) {
	n := g.N()
	if n == 0 {
		return nil, fmt.Errorf("tree: empty graph")
	}
	if !g.IsBidirectedTree() {
		return nil, fmt.Errorf("tree: graph is not a bidirected tree")
	}
	t := &Tree{n: n, seed: make([]bool, n)}
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("tree: seed %d out of range [0,%d)", s, n)
		}
		if t.seed[s] {
			return nil, fmt.Errorf("tree: duplicate seed %d", s)
		}
		t.seed[s] = true
		t.seeds = append(t.seeds, s)
	}

	// Undirected neighbor sets (union of out- and in-neighbors).
	nbrSets := make([][]int32, n)
	addNbr := func(u, v int32) {
		for _, w := range nbrSets[u] {
			if w == v {
				return
			}
		}
		nbrSets[u] = append(nbrSets[u], v)
	}
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.OutTo(u) {
			addNbr(u, v)
			addNbr(v, u)
		}
	}

	t.start = make([]int32, n+1)
	for u := 0; u < n; u++ {
		t.start[u+1] = t.start[u] + int32(len(nbrSets[u]))
	}
	total := t.start[n]
	t.nbr = make([]int32, total)
	t.rev = make([]int32, total)
	t.p = make([]float64, total)
	t.pb = make([]float64, total)
	for u := int32(0); int(u) < n; u++ {
		base := t.start[u]
		for i, v := range nbrSets[u] {
			j := base + int32(i)
			t.nbr[j] = v
			if p, pbv, ok := g.FindEdge(u, v); ok {
				t.p[j] = p
				t.pb[j] = pbv
			}
		}
	}
	// Reverse slot index.
	for u := int32(0); int(u) < n; u++ {
		for j := t.start[u]; j < t.start[u+1]; j++ {
			v := t.nbr[j]
			found := false
			for jj := t.start[v]; jj < t.start[v+1]; jj++ {
				if t.nbr[jj] == u {
					t.rev[j] = jj
					found = true
					break
				}
			}
			if !found {
				return nil, fmt.Errorf("tree: internal error: missing reverse slot for (%d,%d)", u, v)
			}
		}
	}

	// Rooted orientation from node 0.
	t.parent = make([]int32, n)
	t.parentSlot = make([]int32, n)
	for i := range t.parent {
		t.parent[i] = -2 // unvisited
		t.parentSlot[i] = -1
	}
	t.order = make([]int32, 0, n)
	t.parent[0] = -1
	t.order = append(t.order, 0)
	for qi := 0; qi < len(t.order); qi++ {
		u := t.order[qi]
		for j := t.start[u]; j < t.start[u+1]; j++ {
			v := t.nbr[j]
			if t.parent[v] == -2 {
				t.parent[v] = u
				t.parentSlot[v] = t.rev[j] // slot (v -> u)
				t.order = append(t.order, v)
			}
		}
	}
	if len(t.order) != n {
		return nil, fmt.Errorf("tree: internal error: BFS visited %d of %d nodes", len(t.order), n)
	}
	return t, nil
}

// N returns the number of nodes.
func (t *Tree) N() int { return t.n }

// NumSeeds returns the number of seed nodes.
func (t *Tree) NumSeeds() int { return len(t.seeds) }

// Seeds returns the seed node ids (aliases internal storage).
func (t *Tree) Seeds() []int32 { return t.seeds }

// IsSeed reports whether v is a seed.
func (t *Tree) IsSeed(v int32) bool { return t.seed[v] }

// Degree returns the number of neighbors of u.
func (t *Tree) Degree(u int32) int { return int(t.start[u+1] - t.start[u]) }

// children returns the child node ids of u in the rooted orientation.
func (t *Tree) children(u int32) []int32 {
	var out []int32
	for j := t.start[u]; j < t.start[u+1]; j++ {
		v := t.nbr[j]
		if t.parent[v] == u {
			out = append(out, v)
		}
	}
	return out
}

// probInto returns p(from->to) given whether `to` is boosted; slot j is
// the (from->to) slot.
func (t *Tree) probInto(j int32, boosted bool) float64 {
	if boosted {
		return t.pb[j]
	}
	return t.p[j]
}
