package tree

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/diffusion"
	"github.com/kboost/kboost/internal/gen"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

type graphAlias = graph.Graph

func newBuilderAlias(n int) *graph.Builder { return graph.NewBuilder(n) }

// The tree evaluator must agree with Monte-Carlo simulation on trees
// too large for exact enumeration — this closes the loop between the
// O(n) analytic computation and the diffusion engine.
func TestSigmaMatchesMonteCarloMediumTree(t *testing.T) {
	r := rng.New(7)
	parents, err := gen.RandomTreeParents(200, 0, r)
	if err != nil {
		t.Fatal(err)
	}
	g, err := gen.BidirectedTree(parents, gen.Const(0.3), 2, r)
	if err != nil {
		t.Fatal(err)
	}
	seeds := []int32{0, 50, 120}
	tr, err := FromGraph(g, seeds)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(tr)

	var boost []int32
	for v := int32(1); v < 40; v += 3 {
		boost = append(boost, v)
	}
	exactSigma, err := e.Sigma(boost)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := diffusion.EstimateSpread(g, seeds, boost, diffusion.Options{Sims: 150000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(exactSigma-mc) > 0.02*exactSigma+0.3 {
		t.Fatalf("tree σ=%v vs Monte-Carlo %v", exactSigma, mc)
	}
}

// Greedy on a star where one leaf is behind a high-gain boost edge:
// sanity-check the marginal ordering on an interpretable instance.
func TestGreedyInterpretable(t *testing.T) {
	// seed -> a (p=0.9 fixed), seed -> b (p=0.1, p'=0.9).
	// Boosting b is worth ~0.8; boosting a is worth ~0.
	b := buildStar(t)
	tr, err := FromGraph(b, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	res, err := GreedyBoost(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boost) != 1 || res.Boost[0] != 2 {
		t.Fatalf("greedy chose %v, want [2] (the boost-sensitive leaf)", res.Boost)
	}
	if math.Abs(res.Delta-0.8) > 1e-9 {
		t.Fatalf("Δ=%v, want 0.8", res.Delta)
	}
}

func buildStar(t *testing.T) *graphAlias {
	t.Helper()
	b := newBuilderAlias(3)
	b.MustAddEdge(0, 1, 0.9, 0.9)
	b.MustAddEdge(1, 0, 0.9, 0.9)
	b.MustAddEdge(0, 2, 0.1, 0.9)
	b.MustAddEdge(2, 0, 0.1, 0.9)
	return b.MustBuild()
}

// DP and greedy must agree with the evaluator on larger trivalency
// trees: the extracted sets' Delta values recompute identically.
func TestDPDeltaRecomputes(t *testing.T) {
	r := rng.New(9)
	parents := gen.CompleteBinaryTreeParents(255)
	g, err := gen.BidirectedTree(parents, gen.Trivalency(), 2, r)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := FromGraph(g, []int32{0, 3, 9})
	if err != nil {
		t.Fatal(err)
	}
	res, err := DPBoost(tr, 10, DPOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(tr)
	want, err := e.Delta(res.Boost)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Delta-want) > 1e-9 {
		t.Fatalf("reported Δ=%v, recomputed %v", res.Delta, want)
	}
}
