package tree

import (
	"math"
	"testing"

	"github.com/kboost/kboost/internal/gen"
	"github.com/kboost/kboost/internal/graph"
	"github.com/kboost/kboost/internal/rng"
)

// All nodes seeds: nothing to boost; both algorithms return empty sets.
func TestAllSeeds(t *testing.T) {
	r := rng.New(1)
	tr := buildTestTree(t, []int32{-1, 0, 0}, []int32{0, 1, 2}, r, 0.3, 0.6)
	greedy, err := GreedyBoost(tr, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.Boost) != 0 || greedy.Delta != 0 {
		t.Fatalf("greedy on all-seed tree: %+v", greedy)
	}
	dp, err := DPBoost(tr, 2, DPOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(dp.Boost) != 0 || dp.Delta != 0 {
		t.Fatalf("DP on all-seed tree: %+v", dp)
	}
}

// A two-node tree, the smallest valid instance.
func TestTwoNodeTree(t *testing.T) {
	b := graph.NewBuilder(2)
	b.MustAddEdge(0, 1, 0.2, 0.7)
	b.MustAddEdge(1, 0, 0.2, 0.7)
	tr, err := FromGraph(b.MustBuild(), []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := GreedyBoost(tr, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(greedy.Boost) != 1 || greedy.Boost[0] != 1 {
		t.Fatalf("greedy %v", greedy.Boost)
	}
	if math.Abs(greedy.Delta-0.5) > 1e-12 {
		t.Fatalf("Δ = %v, want 0.5", greedy.Delta)
	}
	dp, err := DPBoost(tr, 1, DPOptions{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dp.Delta-0.5) > 1e-12 {
		t.Fatalf("DP Δ = %v, want 0.5", dp.Delta)
	}
}

// Zero-probability reverse edges (one-directional trees) must work in
// the DP too.
func TestDPOneDirectionalTree(t *testing.T) {
	b := graph.NewBuilder(4)
	b.MustAddEdge(0, 1, 0.3, 0.6)
	b.MustAddEdge(1, 2, 0.3, 0.6)
	b.MustAddEdge(1, 3, 0.3, 0.6)
	tr, err := FromGraph(b.MustBuild(), []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	opt := bruteForceOpt(t, tr, 2)
	res, err := DPBoost(tr, 2, DPOptions{Epsilon: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta < opt-0.3*math.Max(res.LB, 1)-1e-9 {
		t.Fatalf("DP Δ=%v vs OPT=%v", res.Delta, opt)
	}
}

// Seeds deep in the tree (not at the root) exercise the f-range
// propagation across seed boundaries.
func TestDPSeedsAtLeaves(t *testing.T) {
	r := rng.New(3)
	parents := gen.CompleteBinaryTreeParents(15)
	tr := buildTestTree(t, parents, []int32{7, 8, 14}, r, 0.3, 0.7)
	opt := bruteForceOpt(t, tr, 2)
	res, err := DPBoost(tr, 2, DPOptions{Epsilon: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta < opt-0.4*math.Max(res.LB, 1)-1e-9 {
		t.Fatalf("DP Δ=%v vs OPT=%v (LB=%v)", res.Delta, opt, res.LB)
	}
}

// Wide star with many children and a leaf seed: the chain DP with a
// seed at one chain position.
func TestDPWideStarChain(t *testing.T) {
	r := rng.New(4)
	parents := []int32{-1, 0, 0, 0, 0, 0, 0, 0}
	tr := buildTestTree(t, parents, []int32{3}, r, 0.25, 0.7)
	opt := bruteForceOpt(t, tr, 3)
	res, err := DPBoost(tr, 3, DPOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta < opt-0.5*math.Max(res.LB, 1)-1e-9 {
		t.Fatalf("DP Δ=%v vs OPT=%v", res.Delta, opt)
	}
}

// Greedy's reported Sigma must equal baseline + Delta.
func TestGreedySigmaConsistency(t *testing.T) {
	r := rng.New(5)
	parents := gen.CompleteBinaryTreeParents(31)
	tr := buildTestTree(t, parents, []int32{0}, r, 0.2, 0.6)
	res, err := GreedyBoost(tr, 4)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEvaluator(tr)
	base := e.baseline()
	if math.Abs(res.Sigma-(base+res.Delta)) > 1e-9 {
		t.Fatalf("σ=%v != base %v + Δ %v", res.Sigma, base, res.Delta)
	}
}
