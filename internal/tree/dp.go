package tree

import (
	"fmt"
	"math"
)

// DP-Boost (Section VI-B and Appendix B): a rounded bottom-up dynamic
// program over the tree rooted at node 0. For every node v it tabulates
//
//	g'(v, κ, c, f) = max expected boost inside v's subtree, given that
//	  at most κ nodes of the subtree are boosted, v is activated within
//	  the subtree with probability c, and v's parent is activated with
//	  probability f when the subtree is removed,
//
// with c and f restricted to multiples of a rounding parameter δ and
// range-refined per node (the refinement of Section VI-B; without it
// table sizes are impractical). Values are rounded down, so g' lower
// bounds the true g, and the returned set B̃ satisfies
// Δ(B̃) ≥ (1−ε)·OPT when OPT ≥ 1 (Theorems 3-4).
//
// δ follows Algorithm 4: δ = ε·max(LB,1) / (2·Σ_{u,v} p(k)(u⇝v)), where
// LB comes from Greedy-Boost. We upper-bound p(k)(u⇝v) (the path
// probability with the top-k edges boosted) by the all-boosted path
// probability, which only shrinks δ and therefore preserves the
// guarantee. Nodes with more than two children use the helper-chain DP
// of Definition 5 with intermediate values rounded on the finer grid
// δ/d, again only tightening the rounding the analysis allows.

// DPOptions configures DPBoost.
type DPOptions struct {
	Epsilon float64 // approximation slack ε (default 0.5)
	// MaxGridCells caps the total number of DP table cells as a safety
	// valve (default 64M). DPBoost returns an error suggesting a larger
	// ε when exceeded.
	MaxGridCells int64
}

func (o DPOptions) withDefaults() DPOptions {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.5
	}
	if o.MaxGridCells <= 0 {
		o.MaxGridCells = 64 << 20
	}
	return o
}

// DPResult reports a DPBoost run.
type DPResult struct {
	Boost   []int32 // chosen boost set (|B| <= k)
	Delta   float64 // exact Δ_S(B) of the returned set
	DPValue float64 // the DP's (lower-bound) objective value
	DeltaG  float64 // the rounding parameter δ
	GridN   int     // 1/δ
	LB      float64 // Greedy-Boost lower bound used to set δ
}

var negInf = math.Inf(-1)

// table is a dense DP table for one node.
type table struct {
	kmax       int
	ciLo, ciHi int32
	fiLo, fiHi int32
	nc, nf     int32
	vals       []float64
}

func newTable(kmax int, ciLo, ciHi, fiLo, fiHi int32) *table {
	tb := &table{
		kmax: kmax,
		ciLo: ciLo, ciHi: ciHi, fiLo: fiLo, fiHi: fiHi,
		nc: ciHi - ciLo + 1, nf: fiHi - fiLo + 1,
	}
	tb.vals = make([]float64, (kmax+1)*int(tb.nc)*int(tb.nf))
	for i := range tb.vals {
		tb.vals[i] = negInf
	}
	return tb
}

func (tb *table) cells() int64 { return int64(len(tb.vals)) }

func (tb *table) idx(k int, ci, fi int32) int {
	return (k*int(tb.nc)+int(ci-tb.ciLo))*int(tb.nf) + int(fi-tb.fiLo)
}

// at returns the value, or -inf when the coordinate is out of range.
func (tb *table) at(k int, ci, fi int32) float64 {
	if k < 0 || ci < tb.ciLo || ci > tb.ciHi || fi < tb.fiLo || fi > tb.fiHi {
		return negInf
	}
	if k > tb.kmax {
		k = tb.kmax
	}
	return tb.vals[tb.idx(k, ci, fi)]
}

func (tb *table) bump(k int, ci, fi int32, v float64) {
	if ci < tb.ciLo || ci > tb.ciHi || fi < tb.fiLo || fi > tb.fiHi || k < 0 || k > tb.kmax {
		return
	}
	i := tb.idx(k, ci, fi)
	if v > tb.vals[i] {
		tb.vals[i] = v
	}
}

// monotonize makes the table non-decreasing in κ ("at most κ" semantics).
func (tb *table) monotonize() {
	for k := 1; k <= tb.kmax; k++ {
		for ci := tb.ciLo; ci <= tb.ciHi; ci++ {
			for fi := tb.fiLo; fi <= tb.fiHi; fi++ {
				lo := tb.vals[tb.idx(k-1, ci, fi)]
				i := tb.idx(k, ci, fi)
				if lo > tb.vals[i] {
					tb.vals[i] = lo
				}
			}
		}
	}
}

// dpState carries everything the DP needs.
type dpState struct {
	t     *Tree
	k     int
	gridN int     // δ = 1/gridN
	delta float64 // rounding parameter

	ap0      []float64
	children [][]int32
	kmax     []int
	ciLo     []int32
	ciHi     []int32
	fiLo     []int32
	fiHi     []int32
	tables   []*table
}

// floorIdx maps a value to its δ-grid index, rounding down (with a fuzz
// guard so exact grid points are not pushed below themselves).
func (s *dpState) floorIdx(x float64) int32 {
	i := int32(math.Floor(x*float64(s.gridN) + 1e-9))
	if i < 0 {
		i = 0
	}
	if i > int32(s.gridN) {
		i = int32(s.gridN)
	}
	return i
}

func (s *dpState) ceilIdx(x float64) int32 {
	i := int32(math.Ceil(x*float64(s.gridN) - 1e-9))
	if i < 0 {
		i = 0
	}
	if i > int32(s.gridN) {
		i = int32(s.gridN)
	}
	return i
}

func (s *dpState) val(idx int32) float64 { return float64(idx) * s.delta }

// probs into v from its parent (slot parent->v).
func (s *dpState) parentProb(v int32) (p, pb float64) {
	ps := s.t.parentSlot[v]
	if ps < 0 {
		return 0, 0 // virtual parent of the root
	}
	j := s.t.rev[ps] // slot (parent -> v)
	return s.t.p[j], s.t.pb[j]
}

// probs into v from child c (slot c->v).
func (s *dpState) childProb(v, c int32) (p, pb float64) {
	for j := s.t.start[c]; j < s.t.start[c+1]; j++ {
		if s.t.nbr[j] == v {
			return s.t.p[j], s.t.pb[j]
		}
	}
	panic("tree: childProb: not adjacent")
}

// selfTerm is the node's own contribution max{1-(1-c)(1-f·p^b)-ap∅, 0}.
func (s *dpState) selfTerm(v int32, cVal, fVal float64, b int) float64 {
	p, pb := s.parentProb(v)
	pin := p
	if b == 1 {
		pin = pb
	}
	val := 1 - (1-cVal)*(1-fVal*pin) - s.ap0[v]
	if val < 0 {
		return 0
	}
	return val
}

// DPBoost runs the rounded dynamic program and extracts a boost set.
func DPBoost(t *Tree, k int, opt DPOptions) (*DPResult, error) {
	opt = opt.withDefaults()
	if k < 1 {
		return nil, fmt.Errorf("tree: DPBoost needs k >= 1, got %d", k)
	}
	if len(t.seeds) == 0 {
		return nil, fmt.Errorf("tree: DPBoost needs at least one seed")
	}

	greedy, err := GreedyBoost(t, k)
	if err != nil {
		return nil, err
	}
	lb := greedy.Delta

	denom := t.allBoostPathSum()
	delta := opt.Epsilon * math.Max(lb, 1) / (2 * denom)
	if delta > 1 {
		delta = 1
	}
	gridN := int(math.Ceil(1/delta - 1e-9))
	if gridN < 1 {
		gridN = 1
	}
	delta = 1 / float64(gridN)

	s := &dpState{t: t, k: k, gridN: gridN, delta: delta}
	e := NewEvaluator(t)
	e.baseline()
	s.ap0 = e.ap0

	s.children = make([][]int32, t.n)
	for v := int32(0); int(v) < t.n; v++ {
		s.children[v] = t.children(v)
	}
	s.computeKmax()
	s.computeRanges()

	// Table budget check.
	var totalCells int64
	for v := int32(0); int(v) < t.n; v++ {
		nc := int64(s.ciHi[v]-s.ciLo[v]) + 1
		nf := int64(s.fiHi[v]-s.fiLo[v]) + 1
		totalCells += int64(s.kmax[v]+1) * nc * nf
	}
	if totalCells > opt.MaxGridCells {
		return nil, fmt.Errorf("tree: DP tables need %d cells (cap %d); increase Epsilon", totalCells, opt.MaxGridCells)
	}

	s.tables = make([]*table, t.n)
	for oi := len(t.order) - 1; oi >= 0; oi-- {
		v := t.order[oi]
		s.fillNode(v)
		s.tables[v].monotonize()
	}

	// Best root cell: f of the root is fixed at index 0.
	root := t.order[0]
	rt := s.tables[root]
	bestVal := 0.0
	bestCi := int32(-1)
	for ci := rt.ciLo; ci <= rt.ciHi; ci++ {
		if v := rt.at(rt.kmax, ci, 0); v > bestVal {
			bestVal, bestCi = v, ci
		}
	}
	res := &DPResult{DPValue: bestVal, DeltaG: delta, GridN: gridN, LB: lb}
	if bestCi >= 0 {
		boost, err := s.extract(root, rt.kmax, bestCi, 0)
		if err != nil {
			return nil, err
		}
		res.Boost = boost
	}
	// If greedy beat the DP extraction (possible because the DP optimizes
	// a floor-rounded objective), return the better set, as the paper's
	// experiments do when comparing the two.
	d, err := e.Delta(res.Boost)
	if err != nil {
		return nil, err
	}
	res.Delta = d
	return res, nil
}

// allBoostPathSum computes Σ_{u,v∈V} Π_{e∈path(u→v)} p'(e), the
// upper bound on Σ p(k)(u⇝v) used for δ (diagonal terms count 1 each).
func (t *Tree) allBoostPathSum() float64 {
	total := float64(t.n) // u == v terms
	// DFS from every node, multiplying boosted probabilities outward.
	type frame struct {
		node, prev int32
		prod       float64
	}
	stack := make([]frame, 0, t.n)
	for u := int32(0); int(u) < t.n; u++ {
		stack = append(stack[:0], frame{u, -1, 1})
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for j := t.start[fr.node]; j < t.start[fr.node+1]; j++ {
				w := t.nbr[j]
				if w == fr.prev {
					continue
				}
				prod := fr.prod * t.pb[j]
				total += prod
				if prod > 0 {
					stack = append(stack, frame{w, fr.node, prod})
				}
			}
		}
	}
	return total
}

// computeKmax sets kmax[v] = min(k, #non-seed nodes in subtree(v)).
func (s *dpState) computeKmax() {
	t := s.t
	s.kmax = make([]int, t.n)
	count := make([]int, t.n)
	for oi := len(t.order) - 1; oi >= 0; oi-- {
		v := t.order[oi]
		c := 0
		if !t.seed[v] {
			c = 1
		}
		for _, ch := range s.children[v] {
			c += count[ch]
		}
		count[v] = c
		if c > s.k {
			c = s.k
		}
		s.kmax[v] = c
	}
}

// computeRanges fills the per-node [cLo,cHi] and [fLo,fHi] index ranges
// (the range refinement): lo under no boosting with DP-style flooring,
// hi under all-boosting with ceiling.
func (s *dpState) computeRanges() {
	t := s.t
	n := t.n
	s.ciLo = make([]int32, n)
	s.ciHi = make([]int32, n)
	s.fiLo = make([]int32, n)
	s.fiHi = make([]int32, n)

	one := int32(s.gridN)
	// Bottom-up c ranges.
	for oi := len(t.order) - 1; oi >= 0; oi-- {
		v := t.order[oi]
		if t.seed[v] {
			s.ciLo[v], s.ciHi[v] = one, one
			continue
		}
		if len(s.children[v]) == 0 {
			s.ciLo[v], s.ciHi[v] = 0, 0
			continue
		}
		prodLo, prodHi := 1.0, 1.0
		for _, c := range s.children[v] {
			p, pb := s.childProb(v, c)
			prodLo *= 1 - s.val(s.ciLo[c])*p
			prodHi *= 1 - s.val(s.ciHi[c])*pb
		}
		s.ciLo[v] = s.floorIdx(1 - prodLo)
		s.ciHi[v] = s.ceilIdx(1 - prodHi)
	}
	// Top-down f ranges.
	for _, v := range t.order {
		if t.parent[v] == -1 {
			s.fiLo[v], s.fiHi[v] = 0, 0
		}
		kids := s.children[v]
		if len(kids) == 0 {
			continue
		}
		if t.seed[v] {
			for _, c := range kids {
				s.fiLo[c], s.fiHi[c] = one, one
			}
			continue
		}
		pu, pbu := s.parentProb(v)
		baseLo := 1 - s.val(s.fiLo[v])*pu
		baseHi := 1 - s.val(s.fiHi[v])*pbu
		// prefix/suffix products of sibling terms.
		d := len(kids)
		preLo := make([]float64, d+1)
		preHi := make([]float64, d+1)
		sufLo := make([]float64, d+1)
		sufHi := make([]float64, d+1)
		preLo[0], preHi[0] = 1, 1
		for i, c := range kids {
			p, pb := s.childProb(v, c)
			preLo[i+1] = preLo[i] * (1 - s.val(s.ciLo[c])*p)
			preHi[i+1] = preHi[i] * (1 - s.val(s.ciHi[c])*pb)
		}
		sufLo[d], sufHi[d] = 1, 1
		for i := d - 1; i >= 0; i-- {
			c := kids[i]
			p, pb := s.childProb(v, c)
			sufLo[i] = sufLo[i+1] * (1 - s.val(s.ciLo[c])*p)
			sufHi[i] = sufHi[i+1] * (1 - s.val(s.ciHi[c])*pb)
		}
		for i, c := range kids {
			s.fiLo[c] = s.floorIdx(1 - baseLo*preLo[i]*sufLo[i+1])
			s.fiHi[c] = s.ceilIdx(1 - baseHi*preHi[i]*sufHi[i+1])
		}
	}
}

// fillNode dispatches on the node case.
func (s *dpState) fillNode(v int32) {
	tb := newTable(s.kmax[v], s.ciLo[v], s.ciHi[v], s.fiLo[v], s.fiHi[v])
	s.tables[v] = tb
	kids := s.children[v]
	switch {
	case s.t.seed[v] && len(kids) == 0:
		s.fillSeedLeaf(v, tb)
	case s.t.seed[v]:
		s.fillSeedInternal(v, tb, kids)
	case len(kids) == 0:
		s.fillLeaf(v, tb)
	case len(kids) <= 2:
		s.fillSmall(v, tb, kids)
	default:
		s.fillChain(v, tb, kids)
	}
}

func (s *dpState) fillSeedLeaf(v int32, tb *table) {
	one := int32(s.gridN)
	for k := 0; k <= tb.kmax; k++ {
		for fi := tb.fiLo; fi <= tb.fiHi; fi++ {
			tb.bump(k, one, fi, 0)
		}
	}
}

func (s *dpState) fillLeaf(v int32, tb *table) {
	for k := 0; k <= tb.kmax; k++ {
		b := 0
		if k > 0 {
			b = 1
		}
		for fi := tb.fiLo; fi <= tb.fiHi; fi++ {
			tb.bump(k, 0, fi, s.selfTerm(v, 0, s.val(fi), b))
		}
	}
}

// seedBest returns, for child c, best over ci of table(c) at (κ, ci, f=1).
func (s *dpState) seedBest(c int32, kappa int) float64 {
	ct := s.tables[c]
	one := int32(s.gridN)
	best := negInf
	for ci := ct.ciLo; ci <= ct.ciHi; ci++ {
		if val := ct.at(kappa, ci, one); val > best {
			best = val
		}
	}
	return best
}

func (s *dpState) fillSeedInternal(v int32, tb *table, kids []int32) {
	// Knapsack over children; each child sees f = 1.
	h := make([]float64, tb.kmax+1) // best sum for first i children
	for i := range h {
		h[i] = negInf
	}
	h[0] = 0
	for _, c := range kids {
		nh := make([]float64, tb.kmax+1)
		for i := range nh {
			nh[i] = negInf
		}
		cmax := s.kmax[c]
		for kPrev := 0; kPrev <= tb.kmax; kPrev++ {
			if h[kPrev] == negInf {
				continue
			}
			for kc := 0; kc <= cmax && kPrev+kc <= tb.kmax; kc++ {
				val := h[kPrev] + s.seedBest(c, kc)
				if val > nh[kPrev+kc] {
					nh[kPrev+kc] = val
				}
			}
		}
		h = nh
	}
	one := int32(s.gridN)
	for k := 0; k <= tb.kmax; k++ {
		if h[k] == negInf {
			continue
		}
		for fi := tb.fiLo; fi <= tb.fiHi; fi++ {
			tb.bump(k, one, fi, h[k])
		}
	}
}

// fillSmall handles non-seed nodes with 1 or 2 children (Definition 4).
func (s *dpState) fillSmall(v int32, tb *table, kids []int32) {
	s.enumSmall(v, tb, kids, nil)
}

// enumSmall enumerates all (b, f, c-children, κ-split) combinations for
// d<=2. When visit is nil the table is filled; otherwise visit is called
// with each combination (used for extraction) and filling is skipped.
type smallCombo struct {
	b          int
	kTotal     int
	ci, fi     int32
	kc         [2]int
	cic, fic   [2]int32
	childCount int
	value      float64
}

func (s *dpState) enumSmall(v int32, tb *table, kids []int32, visit func(smallCombo) bool) {
	pu, pbu := s.parentProb(v)
	d := len(kids)
	c1 := kids[0]
	t1 := s.tables[c1]
	p1, pb1 := s.childProb(v, c1)
	var t2 *table
	var p2, pb2 float64
	var c2 int32
	if d == 2 {
		c2 = kids[1]
		t2 = s.tables[c2]
		p2, pb2 = s.childProb(v, c2)
	}

	for b := 0; b <= 1; b++ {
		if b > tb.kmax {
			break
		}
		e1, eu := p1, pu
		if b == 1 {
			e1, eu = pb1, pbu
		}
		e2 := p2
		if b == 1 {
			e2 = pb2
		}
		for fi := tb.fiLo; fi <= tb.fiHi; fi++ {
			fVal := s.val(fi)
			parentFactor := 1 - fVal*eu
			for ci1 := t1.ciLo; ci1 <= t1.ciHi; ci1++ {
				c1Val := s.val(ci1)
				f1 := 1 - c1Val*e1 // factor (1 - c1·p^b)
				if d == 1 {
					ci := s.floorIdx(c1Val * e1)
					fi1 := s.floorIdx(fVal * eu)
					cVal := s.val(ci)
					st := s.selfTerm(v, cVal, fVal, b)
					for k1 := 0; k1 <= t1.kmax && k1+b <= tb.kmax; k1++ {
						val := t1.at(k1, ci1, fi1)
						if val == negInf {
							continue
						}
						total := val + st
						if visit != nil {
							cmb := smallCombo{b: b, kTotal: k1 + b, ci: ci, fi: fi, childCount: 1, value: total}
							cmb.kc[0], cmb.cic[0], cmb.fic[0] = k1, ci1, fi1
							if visit(cmb) {
								return
							}
							continue
						}
						tb.bump(k1+b, ci, fi, total)
					}
					continue
				}
				for ci2 := t2.ciLo; ci2 <= t2.ciHi; ci2++ {
					c2Val := s.val(ci2)
					f2 := 1 - c2Val*e2
					ci := s.floorIdx(1 - f1*f2)
					fi1 := s.floorIdx(1 - parentFactor*f2)
					fi2 := s.floorIdx(1 - parentFactor*f1)
					cVal := s.val(ci)
					st := s.selfTerm(v, cVal, fVal, b)
					for k1 := 0; k1 <= t1.kmax; k1++ {
						v1 := t1.at(k1, ci1, fi1)
						if v1 == negInf {
							continue
						}
						maxK2 := tb.kmax - b - k1
						if maxK2 > t2.kmax {
							maxK2 = t2.kmax
						}
						for k2 := 0; k2 <= maxK2; k2++ {
							v2 := t2.at(k2, ci2, fi2)
							if v2 == negInf {
								continue
							}
							total := v1 + v2 + st
							if visit != nil {
								cmb := smallCombo{b: b, kTotal: k1 + k2 + b, ci: ci, fi: fi, childCount: 2, value: total}
								cmb.kc[0], cmb.cic[0], cmb.fic[0] = k1, ci1, fi1
								cmb.kc[1], cmb.cic[1], cmb.fic[1] = k2, ci2, fi2
								if visit(cmb) {
									return
								}
								continue
							}
							tb.bump(k1+k2+b, ci, fi, total)
						}
					}
				}
			}
		}
	}
}
