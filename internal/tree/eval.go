package tree

import "fmt"

// Evaluator computes exact boosted influence spreads on a Tree in O(n)
// per evaluation, following the three-step computation of Section VI-A:
//
//	Step I   activation probabilities ap_B(u) and ap_B(u\v) (Lemma 5)
//	Step II  seeding gains g_B(u\v) (Lemma 6)
//	Step III σ_S(B) and σ_S(B ∪ {u}) for every u (Lemma 7)
//
// Instead of the recursion with division of Eqs. (9)/(11), the rerooting
// passes use prefix/suffix aggregation, which avoids divide-by-zero
// special cases on deterministic (p=1) edges.
//
// An Evaluator owns scratch arrays; create one per goroutine.
type Evaluator struct {
	t *Tree

	ap    []float64 // ap_B(u), per node
	apOut []float64 // ap_B(u\v), per slot (u->v)
	gOut  []float64 // g_B(u\v), per slot (u->v)

	// scratch for prefix/suffix aggregation, sized to max degree
	pre []float64
	suf []float64

	ap0 []float64 // ap_∅(u), baseline activation probabilities (lazily computed)
}

// NewEvaluator returns an Evaluator for t.
func NewEvaluator(t *Tree) *Evaluator {
	maxDeg := 0
	for u := int32(0); int(u) < t.n; u++ {
		if d := t.Degree(u); d > maxDeg {
			maxDeg = d
		}
	}
	return &Evaluator{
		t:     t,
		ap:    make([]float64, t.n),
		apOut: make([]float64, len(t.nbr)),
		gOut:  make([]float64, len(t.nbr)),
		pre:   make([]float64, maxDeg+1),
		suf:   make([]float64, maxDeg+1),
	}
}

// computeAP fills ap and apOut for the boost mask (Step I).
func (e *Evaluator) computeAP(boost []bool) {
	t := e.t
	// Bottom-up: apOut[slot u->parent] over reverse BFS order.
	for oi := len(t.order) - 1; oi >= 0; oi-- {
		u := t.order[oi]
		ps := t.parentSlot[u]
		if ps < 0 {
			continue // root has no parent slot
		}
		if t.seed[u] {
			e.apOut[ps] = 1
			continue
		}
		prod := 1.0
		for j := t.start[u]; j < t.start[u+1]; j++ {
			v := t.nbr[j]
			if v == t.parent[u] {
				continue
			}
			// child v: ap_B(v\u) is apOut at slot (v->u) = rev[j];
			// probability v->u uses u's boost status.
			rj := t.rev[j]
			prod *= 1 - e.apOut[rj]*t.probInto(rj, boost[u])
		}
		e.apOut[ps] = 1 - prod
	}
	// Top-down: apOut[slot u->child] and ap[u], using prefix/suffix
	// products over all neighbors.
	for _, u := range t.order {
		deg := t.Degree(u)
		base := t.start[u]
		if t.seed[u] {
			e.ap[u] = 1
			for j := base; j < t.start[u+1]; j++ {
				e.apOut[j] = 1
			}
			continue
		}
		// Factor per neighbor x: 1 - ap_B(x\u) * p^B(x->u).
		e.pre[0] = 1
		for i := 0; i < deg; i++ {
			j := base + int32(i)
			rj := t.rev[j]
			f := 1 - e.apOut[rj]*t.probInto(rj, boost[u])
			e.pre[i+1] = e.pre[i] * f
		}
		e.suf[deg] = 1
		for i := deg - 1; i >= 0; i-- {
			j := base + int32(i)
			rj := t.rev[j]
			f := 1 - e.apOut[rj]*t.probInto(rj, boost[u])
			e.suf[i] = e.suf[i+1] * f
		}
		e.ap[u] = 1 - e.pre[deg]
		for i := 0; i < deg; i++ {
			j := base + int32(i)
			v := t.nbr[j]
			if t.parent[u] == v {
				continue // slot to parent already computed bottom-up
			}
			e.apOut[j] = 1 - e.pre[i]*e.suf[i+1]
		}
	}
}

// gTerm computes the summand of Lemma 6 for neighbor x of u at slot
// j=(u->x): p^B(u->x) * g_B(x\u) / (1 - ap_B(x\u) * p^B(x->u)). The
// guarded zero when the denominator vanishes is safe: that case forces
// 1-ap_B(u\v)=0 for every v≠x, so the term is always multiplied by 0.
func (e *Evaluator) gTerm(j int32, boost []bool) float64 {
	t := e.t
	x := t.nbr[j]
	rj := t.rev[j]
	denom := 1 - e.apOut[rj]*t.probInto(rj, boost[t.nbr[rj]])
	if denom <= 1e-15 {
		return 0
	}
	return t.probInto(j, boost[x]) * e.gOut[rj] / denom
}

// computeG fills gOut for the boost mask (Step II). Requires computeAP.
func (e *Evaluator) computeG(boost []bool) {
	t := e.t
	// Bottom-up: gOut[slot u->parent].
	for oi := len(t.order) - 1; oi >= 0; oi-- {
		u := t.order[oi]
		ps := t.parentSlot[u]
		if ps < 0 {
			continue
		}
		if t.seed[u] {
			e.gOut[ps] = 0
			continue
		}
		sum := 1.0
		for j := t.start[u]; j < t.start[u+1]; j++ {
			if t.nbr[j] == t.parent[u] {
				continue
			}
			sum += e.gTerm(j, boost)
		}
		e.gOut[ps] = (1 - e.apOut[ps]) * sum
	}
	// Top-down: gOut[slot u->child] via prefix/suffix sums.
	for _, u := range t.order {
		if t.seed[u] {
			for j := t.start[u]; j < t.start[u+1]; j++ {
				e.gOut[j] = 0
			}
			continue
		}
		deg := t.Degree(u)
		base := t.start[u]
		e.pre[0] = 0
		for i := 0; i < deg; i++ {
			e.pre[i+1] = e.pre[i] + e.gTerm(base+int32(i), boost)
		}
		e.suf[deg] = 0
		for i := deg - 1; i >= 0; i-- {
			e.suf[i] = e.suf[i+1] + e.gTerm(base+int32(i), boost)
		}
		for i := 0; i < deg; i++ {
			j := base + int32(i)
			v := t.nbr[j]
			if t.parent[u] == v {
				continue
			}
			e.gOut[j] = (1 - e.apOut[j]) * (1 + e.pre[i] + e.suf[i+1])
		}
	}
}

// maskOf converts a node list to a mask, validating entries.
func (e *Evaluator) maskOf(boost []int32) ([]bool, error) {
	mask := make([]bool, e.t.n)
	for _, v := range boost {
		if v < 0 || int(v) >= e.t.n {
			return nil, fmt.Errorf("tree: boost node %d out of range [0,%d)", v, e.t.n)
		}
		mask[v] = true
	}
	return mask, nil
}

// Sigma returns the exact boosted influence spread σ_S(B).
func (e *Evaluator) Sigma(boost []int32) (float64, error) {
	mask, err := e.maskOf(boost)
	if err != nil {
		return 0, err
	}
	return e.sigmaMask(mask), nil
}

func (e *Evaluator) sigmaMask(mask []bool) float64 {
	e.computeAP(mask)
	var sigma float64
	for _, a := range e.ap {
		sigma += a
	}
	return sigma
}

// baseline returns σ_S(∅), computing and caching ap_∅.
func (e *Evaluator) baseline() float64 {
	if e.ap0 == nil {
		mask := make([]bool, e.t.n)
		e.computeAP(mask)
		e.ap0 = append([]float64(nil), e.ap...)
	}
	var s float64
	for _, a := range e.ap0 {
		s += a
	}
	return s
}

// Ap0 returns the baseline activation probability ap_∅(v).
func (e *Evaluator) Ap0(v int32) float64 {
	e.baseline()
	return e.ap0[v]
}

// Delta returns the exact boost of influence Δ_S(B) = σ_S(B) − σ_S(∅).
func (e *Evaluator) Delta(boost []int32) (float64, error) {
	base := e.baseline()
	sigma, err := e.Sigma(boost)
	if err != nil {
		return 0, err
	}
	return sigma - base, nil
}

// SigmaWithEach returns σ_S(B) and, for every node u, σ_S(B ∪ {u})
// (Step III, Lemma 7). For u ∈ B ∪ S the marginal equals σ_S(B). Total
// cost O(n).
func (e *Evaluator) SigmaWithEach(boost []int32) (sigma float64, withU []float64, err error) {
	mask, err := e.maskOf(boost)
	if err != nil {
		return 0, nil, err
	}
	sigma, withU = e.sigmaWithEachMask(mask)
	return sigma, withU, nil
}

func (e *Evaluator) sigmaWithEachMask(mask []bool) (float64, []float64) {
	t := e.t
	e.computeAP(mask)
	e.computeG(mask)
	var sigma float64
	for _, a := range e.ap {
		sigma += a
	}
	withU := make([]float64, t.n)
	for u := int32(0); int(u) < t.n; u++ {
		if t.seed[u] || mask[u] {
			withU[u] = sigma
			continue
		}
		deg := t.Degree(u)
		base := t.start[u]
		// Products of 1 - ap_B(x\u) * p'(x->u) over neighbors x: boosting
		// u upgrades every incoming probability to p'.
		e.pre[0] = 1
		for i := 0; i < deg; i++ {
			rj := t.rev[base+int32(i)]
			e.pre[i+1] = e.pre[i] * (1 - e.apOut[rj]*t.pb[rj])
		}
		e.suf[deg] = 1
		for i := deg - 1; i >= 0; i-- {
			rj := t.rev[base+int32(i)]
			e.suf[i] = e.suf[i+1] * (1 - e.apOut[rj]*t.pb[rj])
		}
		dApU := (1 - e.pre[deg]) - e.ap[u]
		total := sigma + dApU
		for i := 0; i < deg; i++ {
			j := base + int32(i)
			v := t.nbr[j]
			dApUV := (1 - e.pre[i]*e.suf[i+1]) - e.apOut[j]
			total += t.probInto(j, mask[v]) * dApUV * e.gOut[t.rev[j]]
		}
		withU[u] = total
	}
	return sigma, withU
}

// GreedyResult reports a Greedy-Boost run.
type GreedyResult struct {
	Boost []int32 // chosen nodes in pick order
	Sigma float64 // σ_S(B) of the final set
	Delta float64 // Δ_S(B) of the final set
}

// GreedyBoost runs the paper's Greedy-Boost: k rounds, each picking the
// node u maximizing the exact σ_S(B ∪ {u}). O(kn) total.
func GreedyBoost(t *Tree, k int) (*GreedyResult, error) {
	if k < 0 {
		return nil, fmt.Errorf("tree: negative k")
	}
	e := NewEvaluator(t)
	base := e.baseline()
	mask := make([]bool, t.n)
	res := &GreedyResult{}
	sigma := base
	for round := 0; round < k; round++ {
		_, withU := e.sigmaWithEachMask(mask)
		best := int32(-1)
		bestVal := sigma
		for u := int32(0); int(u) < t.n; u++ {
			if mask[u] || t.seed[u] {
				continue
			}
			if withU[u] > bestVal+1e-15 {
				best, bestVal = u, withU[u]
			}
		}
		if best < 0 {
			break // no strictly improving node remains
		}
		mask[best] = true
		res.Boost = append(res.Boost, best)
		sigma = bestVal
	}
	res.Sigma = e.sigmaMask(mask)
	res.Delta = res.Sigma - base
	return res, nil
}
