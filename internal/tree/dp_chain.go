package tree

import (
	"fmt"
	"math"
)

// The helper-chain DP of Definition 5 (Appendix B): a non-seed node v
// with children v_1..v_d (d >= 3) processes children sequentially.
// State after position i:
//
//	x_i = probability v is activated by the first i subtrees,
//	z_i = probability v is activated "from the right": by the parent
//	      side and subtrees j > i (z_d is the table's f coordinate).
//
// Intermediate x/z values are rounded on the finer grid γ = δ/d, which
// keeps the per-level rounding budget within the δ the analysis of
// Theorem 4 allots (the paper rounds at δ/(d-2); rounding finer only
// tightens the bound). The overall δ already carries the factor 2 of
// Algorithm 4 to absorb this intermediate rounding.

// htab is a dense helper table h(κ, xIdx, zIdx) for one chain position.
type htab struct {
	kmax     int
	xLo, xHi int32
	zLo, zHi int32
	nx, nz   int32
	vals     []float64
}

func newHtab(kmax int, xLo, xHi, zLo, zHi int32) *htab {
	h := &htab{
		kmax: kmax,
		xLo:  xLo, xHi: xHi, zLo: zLo, zHi: zHi,
		nx: xHi - xLo + 1, nz: zHi - zLo + 1,
	}
	h.vals = make([]float64, (kmax+1)*int(h.nx)*int(h.nz))
	for i := range h.vals {
		h.vals[i] = negInf
	}
	return h
}

func (h *htab) idx(k int, xi, zi int32) int {
	return (k*int(h.nx)+int(xi-h.xLo))*int(h.nz) + int(zi-h.zLo)
}

func (h *htab) at(k int, xi, zi int32) float64 {
	if k < 0 || k > h.kmax || xi < h.xLo || xi > h.xHi || zi < h.zLo || zi > h.zHi {
		return negInf
	}
	return h.vals[h.idx(k, xi, zi)]
}

func (h *htab) bump(k int, xi, zi int32, v float64) {
	if k < 0 || k > h.kmax || xi < h.xLo || xi > h.xHi || zi < h.zLo || zi > h.zHi {
		return
	}
	i := h.idx(k, xi, zi)
	if v > h.vals[i] {
		h.vals[i] = v
	}
}

// chainCtx holds the per-node chain structures for one value of b.
type chainCtx struct {
	v    int32
	kids []int32
	b    int
	d    int

	gridM int       // intermediate grid: γ = 1/gridM = δ/d
	eKids []float64 // p^b(kid_i -> v), 1-based position i
	eu    float64   // p^b(parent -> v)

	xLo, xHi []int32 // per position 0..d, γ grid
	zLo, zHi []int32 // per position 2..d (position d on the δ grid)

	h []*htab // per position 2..d (index i)
}

func (s *dpState) gammaFloor(c *chainCtx, x float64) int32 {
	i := int32(math.Floor(x*float64(c.gridM) + 1e-9))
	if i < 0 {
		i = 0
	}
	if i > int32(c.gridM) {
		i = int32(c.gridM)
	}
	return i
}

func (s *dpState) gammaCeil(c *chainCtx, x float64) int32 {
	i := int32(math.Ceil(x*float64(c.gridM) - 1e-9))
	if i < 0 {
		i = 0
	}
	if i > int32(c.gridM) {
		i = int32(c.gridM)
	}
	return i
}

func (s *dpState) gammaVal(c *chainCtx, idx int32) float64 {
	return float64(idx) / float64(c.gridM)
}

// buildChain constructs the chain helper tables for node v and boost
// flag b.
func (s *dpState) buildChain(v int32, kids []int32, b int) *chainCtx {
	d := len(kids)
	c := &chainCtx{v: v, kids: kids, b: b, d: d, gridM: s.gridN * d}
	pu, pbu := s.parentProb(v)
	c.eu = pu
	if b == 1 {
		c.eu = pbu
	}
	c.eKids = make([]float64, d+1)
	for i := 1; i <= d; i++ {
		p, pb := s.childProb(v, kids[i-1])
		c.eKids[i] = p
		if b == 1 {
			c.eKids[i] = pb
		}
	}

	// x ranges (prefix, positions 0..d). Lo uses base probabilities and
	// flooring; Hi uses boosted probabilities and ceiling — independent
	// of b, these bound every reachable value.
	c.xLo = make([]int32, d+1)
	c.xHi = make([]int32, d+1)
	for i := 1; i <= d; i++ {
		kid := kids[i-1]
		p, pb := s.childProb(v, kid)
		lo := 1 - (1-s.gammaVal(c, c.xLo[i-1]))*(1-s.val(s.ciLo[kid])*p)
		hi := 1 - (1-s.gammaVal(c, c.xHi[i-1]))*(1-s.val(s.ciHi[kid])*pb)
		c.xLo[i] = s.gammaFloor(c, lo)
		c.xHi[i] = s.gammaCeil(c, hi)
	}

	// z ranges (suffix, positions 2..d). Position d is the node's own f
	// grid (δ); earlier positions live on the γ grid.
	c.zLo = make([]int32, d+1)
	c.zHi = make([]int32, d+1)
	c.zLo[d] = s.fiLo[v]
	c.zHi[d] = s.fiHi[v]
	yLo := s.val(s.fiLo[v]) * pu
	yHi := s.val(s.fiHi[v]) * pbu
	for i := d - 1; i >= 2; i-- {
		kid := kids[i] // position i+1 child (1-based i+1 => kids[i])
		p, pb := s.childProb(v, kid)
		lo := 1 - (1-s.val(s.ciLo[kid])*p)*(1-yLo)
		hi := 1 - (1-s.val(s.ciHi[kid])*pb)*(1-yHi)
		c.zLo[i] = s.gammaFloor(c, lo)
		c.zHi[i] = s.gammaCeil(c, hi)
		yLo = s.gammaVal(c, c.zLo[i])
		yHi = s.gammaVal(c, c.zHi[i])
	}

	// Helper kmax per position: b plus the child budgets so far.
	c.h = make([]*htab, d+1)
	kSoFar := b
	for i := 1; i <= d; i++ {
		kSoFar += s.kmax[kids[i-1]]
		if kSoFar > s.kmax[v] {
			kSoFar = s.kmax[v]
		}
		if i >= 2 {
			c.h[i] = newHtab(kSoFar, c.xLo[i], c.xHi[i], c.zLo[i], c.zHi[i])
		}
	}

	s.chainBoundary(c)
	for i := 3; i <= d; i++ {
		s.chainLevel(c, i)
	}
	return c
}

// yAt returns y_i given the stored z index at position i.
func (s *dpState) yAt(c *chainCtx, i int, zIdx int32) float64 {
	if i == c.d {
		return s.val(zIdx) * c.eu
	}
	return s.gammaVal(c, zIdx)
}

// chainBoundary fills h[2] from children at positions 1 and 2.
func (s *dpState) chainBoundary(c *chainCtx) {
	k1t := s.tables[c.kids[0]]
	k2t := s.tables[c.kids[1]]
	e1, e2 := c.eKids[1], c.eKids[2]
	h2 := c.h[2]
	for zIdx := c.zLo[2]; zIdx <= c.zHi[2]; zIdx++ {
		y2 := s.yAt(c, 2, zIdx)
		for ci1 := k1t.ciLo; ci1 <= k1t.ciHi; ci1++ {
			f1fac := 1 - s.val(ci1)*e1
			for ci2 := k2t.ciLo; ci2 <= k2t.ciHi; ci2++ {
				f2fac := 1 - s.val(ci2)*e2
				x2 := s.gammaFloor(c, 1-f1fac*f2fac)
				fi1 := s.floorIdx(1 - f2fac*(1-y2))
				fi2 := s.floorIdx(1 - f1fac*(1-y2))
				for k1 := 0; k1 <= k1t.kmax; k1++ {
					v1 := k1t.at(k1, ci1, fi1)
					if v1 == negInf {
						continue
					}
					for k2 := 0; k2 <= k2t.kmax; k2++ {
						v2 := k2t.at(k2, ci2, fi2)
						if v2 == negInf {
							continue
						}
						h2.bump(k1+k2+c.b, x2, zIdx, v1+v2)
					}
				}
			}
		}
	}
}

// chainLevel fills h[i] from h[i-1] and child at position i.
func (s *dpState) chainLevel(c *chainCtx, i int) {
	kid := c.kids[i-1]
	kt := s.tables[kid]
	e := c.eKids[i]
	hPrev := c.h[i-1]
	hi := c.h[i]
	for zIdx := c.zLo[i]; zIdx <= c.zHi[i]; zIdx++ {
		y := s.yAt(c, i, zIdx)
		for xPrev := c.xLo[i-1]; xPrev <= c.xHi[i-1]; xPrev++ {
			xPrevVal := s.gammaVal(c, xPrev)
			for ci := kt.ciLo; ci <= kt.ciHi; ci++ {
				cfac := 1 - s.val(ci)*e
				xNew := s.gammaFloor(c, 1-(1-xPrevVal)*cfac)
				zPrev := s.gammaFloor(c, 1-cfac*(1-y))
				fIdx := s.floorIdx(1 - (1-xPrevVal)*(1-y))
				for kc := 0; kc <= kt.kmax; kc++ {
					cv := kt.at(kc, ci, fIdx)
					if cv == negInf {
						continue
					}
					for kp := 0; kp <= hPrev.kmax; kp++ {
						pv := hPrev.at(kp, xPrev, zPrev)
						if pv == negInf {
							continue
						}
						hi.bump(kp+kc, xNew, zIdx, pv+cv)
					}
				}
			}
		}
	}
}

// fillChain handles non-seed nodes with d >= 3 children.
func (s *dpState) fillChain(v int32, tb *table, kids []int32) {
	for b := 0; b <= 1 && b <= tb.kmax; b++ {
		c := s.buildChain(v, kids, b)
		hd := c.h[c.d]
		for fi := tb.fiLo; fi <= tb.fiHi; fi++ {
			fVal := s.val(fi)
			for xIdx := hd.xLo; xIdx <= hd.xHi; xIdx++ {
				ci := s.floorIdx(s.gammaVal(c, xIdx))
				st := s.selfTerm(v, s.val(ci), fVal, b)
				for k := 0; k <= hd.kmax; k++ {
					hv := hd.at(k, xIdx, fi)
					if hv == negInf {
						continue
					}
					tb.bump(k, ci, fi, hv+st)
				}
			}
		}
	}
}

// --- extraction ---

// extract walks the filled tables and returns the encoded boost set.
func (s *dpState) extract(root int32, kappa int, ci, fi int32) ([]int32, error) {
	var out []int32
	if err := s.assign(root, kappa, ci, fi, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// eq compares DP values for extraction matching; fills and re-runs use
// identical expressions, so exact equality holds (a tiny tolerance
// guards against compiler-level fused operations).
func eq(a, b float64) bool {
	return a == b || math.Abs(a-b) <= 1e-12
}

func (s *dpState) assign(v int32, kappa int, ci, fi int32, out *[]int32) error {
	tb := s.tables[v]
	if kappa > tb.kmax {
		kappa = tb.kmax
	}
	for kappa > 0 && tb.at(kappa-1, ci, fi) == tb.at(kappa, ci, fi) {
		kappa--
	}
	target := tb.at(kappa, ci, fi)
	if target == negInf {
		return fmt.Errorf("tree: extraction reached infeasible cell (v=%d κ=%d ci=%d fi=%d)", v, kappa, ci, fi)
	}
	kids := s.children[v]
	t := s.t
	switch {
	case len(kids) == 0:
		if !t.seed[v] && kappa > 0 {
			// Leaf value used b = I(κ>0); re-check which b realizes it.
			if !eq(s.selfTerm(v, 0, s.val(fi), 0), target) {
				*out = append(*out, v)
			}
		}
		return nil
	case t.seed[v]:
		return s.assignSeedInternal(v, kappa, fi, target, out)
	case len(kids) <= 2:
		return s.assignSmall(v, kappa, ci, fi, target, out)
	default:
		return s.assignChain(v, kappa, ci, fi, target, out)
	}
}

func (s *dpState) assignSeedInternal(v int32, kappa int, fi int32, target float64, out *[]int32) error {
	kids := s.children[v]
	one := int32(s.gridN)
	// Rebuild the knapsack keeping all levels.
	levels := make([][]float64, len(kids)+1)
	levels[0] = make([]float64, kappa+1)
	for i := range levels[0] {
		levels[0][i] = negInf
	}
	levels[0][0] = 0
	for li, c := range kids {
		nh := make([]float64, kappa+1)
		for i := range nh {
			nh[i] = negInf
		}
		cmax := s.kmax[c]
		for kPrev := 0; kPrev <= kappa; kPrev++ {
			if levels[li][kPrev] == negInf {
				continue
			}
			for kc := 0; kc <= cmax && kPrev+kc <= kappa; kc++ {
				val := levels[li][kPrev] + s.seedBest(c, kc)
				if val > nh[kPrev+kc] {
					nh[kPrev+kc] = val
				}
			}
		}
		levels[li+1] = nh
	}
	_ = fi
	// Walk back.
	kRem := kappa
	// levels[len(kids)][kRem] may exceed target only if monotonization
	// reduced κ; find the matching budget.
	for kRem > 0 && !eq(levels[len(kids)][kRem], target) {
		kRem--
	}
	for li := len(kids); li >= 1; li-- {
		c := kids[li-1]
		cmax := s.kmax[c]
		found := false
		for kc := 0; kc <= cmax && kc <= kRem; kc++ {
			if levels[li-1][kRem-kc] == negInf {
				continue
			}
			if eq(levels[li-1][kRem-kc]+s.seedBest(c, kc), levels[li][kRem]) {
				// Find the child c-index achieving seedBest.
				ct := s.tables[c]
				best := s.seedBest(c, kc)
				for ci := ct.ciLo; ci <= ct.ciHi; ci++ {
					if eq(ct.at(kc, ci, one), best) {
						if err := s.assign(c, kc, ci, one, out); err != nil {
							return err
						}
						found = true
						break
					}
				}
				if found {
					kRem -= kc
					break
				}
			}
		}
		if !found {
			return fmt.Errorf("tree: extraction failed at seed node %d", v)
		}
	}
	return nil
}

func (s *dpState) assignSmall(v int32, kappa int, ci, fi int32, target float64, out *[]int32) error {
	kids := s.children[v]
	tb := s.tables[v]
	var match *smallCombo
	s.enumSmall(v, tb, kids, func(cmb smallCombo) bool {
		if cmb.kTotal == kappa && cmb.ci == ci && cmb.fi == fi && eq(cmb.value, target) {
			m := cmb
			match = &m
			return true
		}
		return false
	})
	if match == nil {
		return fmt.Errorf("tree: extraction failed at node %d (κ=%d ci=%d fi=%d)", v, kappa, ci, fi)
	}
	if match.b == 1 {
		*out = append(*out, v)
	}
	for i := 0; i < match.childCount; i++ {
		if err := s.assign(kids[i], match.kc[i], match.cic[i], match.fic[i], out); err != nil {
			return err
		}
	}
	return nil
}

func (s *dpState) assignChain(v int32, kappa int, ci, fi int32, target float64, out *[]int32) error {
	kids := s.children[v]
	for b := 0; b <= 1 && b <= kappa; b++ {
		c := s.buildChain(v, kids, b)
		hd := c.h[c.d]
		for xIdx := hd.xLo; xIdx <= hd.xHi; xIdx++ {
			if s.floorIdx(s.gammaVal(c, xIdx)) != ci {
				continue
			}
			hv := hd.at(kappa, xIdx, fi)
			if hv == negInf {
				continue
			}
			st := s.selfTerm(v, s.val(ci), s.val(fi), b)
			if !eq(hv+st, target) {
				continue
			}
			if b == 1 {
				*out = append(*out, v)
			}
			return s.walkChain(c, kappa, xIdx, fi, out)
		}
	}
	return fmt.Errorf("tree: chain extraction failed at node %d (κ=%d ci=%d fi=%d)", v, kappa, ci, fi)
}

// walkChain decodes positions d..2 of the chain.
func (s *dpState) walkChain(c *chainCtx, kappa int, xIdx, zIdx int32, out *[]int32) error {
	for i := c.d; i >= 3; i-- {
		kid := c.kids[i-1]
		kt := s.tables[kid]
		e := c.eKids[i]
		hPrev := c.h[i-1]
		hCur := c.h[i]
		cur := hCur.at(kappa, xIdx, zIdx)
		y := s.yAt(c, i, zIdx)
		found := false
		for xPrev := c.xLo[i-1]; xPrev <= c.xHi[i-1] && !found; xPrev++ {
			xPrevVal := s.gammaVal(c, xPrev)
			for ci := kt.ciLo; ci <= kt.ciHi && !found; ci++ {
				cfac := 1 - s.val(ci)*e
				if s.gammaFloor(c, 1-(1-xPrevVal)*cfac) != xIdx {
					continue
				}
				zPrev := s.gammaFloor(c, 1-cfac*(1-y))
				fIdx := s.floorIdx(1 - (1-xPrevVal)*(1-y))
				for kc := 0; kc <= kt.kmax && kc <= kappa && !found; kc++ {
					cv := kt.at(kc, ci, fIdx)
					if cv == negInf {
						continue
					}
					pv := hPrev.at(kappa-kc, xPrev, zPrev)
					if pv == negInf || !eq(pv+cv, cur) {
						continue
					}
					if err := s.assign(kid, kc, ci, fIdx, out); err != nil {
						return err
					}
					kappa -= kc
					xIdx, zIdx = xPrev, zPrev
					found = true
				}
			}
		}
		if !found {
			return fmt.Errorf("tree: chain walk failed at node %d position %d", c.v, i)
		}
	}
	// Boundary: positions 1 and 2.
	k1t := s.tables[c.kids[0]]
	k2t := s.tables[c.kids[1]]
	e1, e2 := c.eKids[1], c.eKids[2]
	cur := c.h[2].at(kappa, xIdx, zIdx)
	y2 := s.yAt(c, 2, zIdx)
	for ci1 := k1t.ciLo; ci1 <= k1t.ciHi; ci1++ {
		f1fac := 1 - s.val(ci1)*e1
		for ci2 := k2t.ciLo; ci2 <= k2t.ciHi; ci2++ {
			f2fac := 1 - s.val(ci2)*e2
			if s.gammaFloor(c, 1-f1fac*f2fac) != xIdx {
				continue
			}
			fi1 := s.floorIdx(1 - f2fac*(1-y2))
			fi2 := s.floorIdx(1 - f1fac*(1-y2))
			for k1 := 0; k1 <= k1t.kmax && k1+c.b <= kappa; k1++ {
				v1 := k1t.at(k1, ci1, fi1)
				if v1 == negInf {
					continue
				}
				k2 := kappa - k1 - c.b
				if k2 < 0 || k2 > k2t.kmax {
					// Try all k2 (h entries are exact-κ but children are
					// monotone); enumerate instead of deriving.
					continue
				}
				v2 := k2t.at(k2, ci2, fi2)
				if v2 == negInf || !eq(v1+v2, cur) {
					continue
				}
				if err := s.assign(c.kids[0], k1, ci1, fi1, out); err != nil {
					return err
				}
				return s.assign(c.kids[1], k2, ci2, fi2, out)
			}
		}
	}
	return fmt.Errorf("tree: chain boundary extraction failed at node %d", c.v)
}
