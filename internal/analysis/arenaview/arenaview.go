// Package arenaview enforces the aliasing discipline of arena-backed
// slice views. Accessors annotated `kboost:aliased-view` return slices
// that alias shared flat storage (the PR 5 arena layout: a PRR-graph's
// critical set, a coverage index's item list, a pool's seed set). Such
// a view must be treated as read-only and transient:
//
//   - appending to it either clobbers the arena's slack (corrupting the
//     next graph's segment) or silently reallocates, depending on cap —
//     both wrong;
//   - reslicing it beyond its length (v[:cap(v)], v[a:b:c]) exposes
//     neighboring segments of the arena;
//   - storing it into a struct field outlives the pool's read/extend
//     discipline: a later Extend may grow the backing array and leave
//     the stored view pointing at dead memory.
//
// The analyzer taints local variables assigned from annotated calls
// (including through plain copies and subslicing) with simple
// function-local dataflow, then reports append, cap-growing reslice,
// and escape-to-struct-field on tainted values. Copying out
// (append([]T(nil), view...), copy(dst, view)) and read-only iteration
// are, deliberately, not findings.
package arenaview

import (
	"go/ast"
	"go/types"

	"github.com/kboost/kboost/internal/analysis/framework"
)

// Analyzer is the arenaview pass.
var Analyzer = &framework.Analyzer{
	Name: "arenaview",
	Doc: "flag append, cap-growing reslice, and escape-to-struct-field " +
		"of slices returned by kboost:aliased-view accessors",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

// isViewCall reports whether e is a call to a kboost:aliased-view
// annotated function or method.
func isViewCall(pass *framework.Pass, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	var obj types.Object
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		obj = pass.TypesInfo.Uses[fun.Sel]
	case *ast.Ident:
		obj = pass.TypesInfo.Uses[fun]
	default:
		return "", false
	}
	if obj == nil {
		return "", false
	}
	for _, ann := range pass.Program.FuncAnnotations(obj) {
		if ann.Key == "aliased-view" {
			return obj.Name(), true
		}
	}
	return "", false
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	// tainted maps local variable objects to the accessor that produced
	// their aliased view. Two passes make ordering irrelevant for the
	// common straight-line flows while staying O(ast).
	tainted := make(map[types.Object]string)

	// taintSource returns the accessor name when e evaluates to an
	// aliased view: a direct annotated call, a subslice of one, or a
	// variable already tainted.
	var taintSource func(e ast.Expr) (string, bool)
	taintSource = func(e ast.Expr) (string, bool) {
		e = ast.Unparen(e)
		if name, ok := isViewCall(pass, e); ok {
			return name, true
		}
		switch e := e.(type) {
		case *ast.Ident:
			if name, ok := tainted[pass.TypesInfo.ObjectOf(e)]; ok {
				return name, true
			}
		case *ast.SliceExpr:
			return taintSource(e.X)
		}
		return "", false
	}

	for pass2 := 0; pass2 < 2; pass2++ {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			asg, ok := n.(*ast.AssignStmt)
			if !ok || len(asg.Lhs) != len(asg.Rhs) {
				return true
			}
			for i, lhs := range asg.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				if name, ok := taintSource(asg.Rhs[i]); ok {
					if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
						tainted[obj] = name
					}
				}
			}
			return true
		})
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// append(view, ...): growing an aliased view in place.
			if id, ok := n.Fun.(*ast.Ident); ok && len(n.Args) >= 1 {
				if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "append" {
					if name, ok := taintSource(n.Args[0]); ok {
						pass.Reportf(n.Pos(),
							"append to aliased view from %s (kboost:aliased-view): it shares arena backing storage; copy it first (append([]T(nil), v...))",
							name)
					}
				}
			}
		case *ast.SliceExpr:
			// v[:cap(v)] or any 3-index slice raising Max: exposes arena
			// slack beyond the view's segment.
			if name, ok := taintSource(n.X); ok {
				if n.Max != nil || mentionsCap(pass, n.High) {
					pass.Reportf(n.Pos(),
						"cap-growing reslice of aliased view from %s (kboost:aliased-view): bytes past len belong to neighboring arena segments",
						name)
				}
			}
		case *ast.AssignStmt:
			// field = view: the view escapes the local read scope.
			for i, lhs := range n.Lhs {
				if i >= len(n.Rhs) {
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s := pass.TypesInfo.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal {
					continue
				}
				if name, ok := taintSource(n.Rhs[i]); ok {
					pass.Reportf(n.Pos(),
						"aliased view from %s (kboost:aliased-view) stored into field %s: it outlives the pool's read/extend discipline; copy it instead",
						name, s.Obj().Name())
				}
			}
		case *ast.CompositeLit:
			// T{f: view}: same escape through a literal.
			for _, elt := range n.Elts {
				kv, ok := elt.(*ast.KeyValueExpr)
				if !ok {
					continue
				}
				if _, isStruct := structLitType(pass, n); !isStruct {
					continue
				}
				if name, ok := taintSource(kv.Value); ok {
					pass.Reportf(kv.Pos(),
						"aliased view from %s (kboost:aliased-view) stored into struct literal field %s: it outlives the pool's read/extend discipline; copy it instead",
						name, framework.ExprString(kv.Key))
				}
			}
		}
		return true
	})
}

func mentionsCap(pass *framework.Pass, e ast.Expr) bool {
	if e == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "cap" {
				found = true
			}
		}
		return !found
	})
	return found
}

func structLitType(pass *framework.Pass, lit *ast.CompositeLit) (*types.Struct, bool) {
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok || tv.Type == nil {
		return nil, false
	}
	st, ok := tv.Type.Underlying().(*types.Struct)
	return st, ok
}
