package arenaview_test

import (
	"testing"

	"github.com/kboost/kboost/internal/analysis/analysistest"
	"github.com/kboost/kboost/internal/analysis/arenaview"
)

func TestArenaView(t *testing.T) {
	analysistest.Run(t, "testdata", arenaview.Analyzer, "a")
}
