// Fixture for the arenaview analyzer: seeded violations carry want
// comments; everything else must stay silent.
package a

type arena struct {
	items []int32
	start []int32
}

// viewAt returns item segment i; the result aliases internal storage
// (kboost:aliased-view).
func (a *arena) viewAt(i int) []int32 {
	return a.items[a.start[i]:a.start[i+1]]
}

type holder struct {
	kept []int32
}

func appendDirect(a *arena) []int32 {
	return append(a.viewAt(0), 7) // want `append to aliased view from viewAt`
}

func appendVar(a *arena) []int32 {
	v := a.viewAt(0)
	return append(v, 7) // want `append to aliased view from viewAt`
}

func appendThroughCopy(a *arena) []int32 {
	v := a.viewAt(0)
	w := v
	return append(w, 7) // want `append to aliased view from viewAt`
}

func appendSubslice(a *arena) []int32 {
	v := a.viewAt(0)[1:]
	return append(v, 7) // want `append to aliased view from viewAt`
}

func capGrow(a *arena) []int32 {
	v := a.viewAt(0)
	return v[:cap(v)] // want `cap-growing reslice of aliased view from viewAt`
}

func threeIndex(a *arena) []int32 {
	v := a.viewAt(0)
	return v[0:1:2] // want `cap-growing reslice of aliased view from viewAt`
}

func escapeField(a *arena, h *holder) {
	h.kept = a.viewAt(0) // want `aliased view from viewAt .* stored into field kept`
}

func escapeLiteral(a *arena) holder {
	v := a.viewAt(0)
	return holder{kept: v} // want `aliased view from viewAt .* stored into struct literal field kept`
}

func copyOut(a *arena) []int32 {
	v := a.viewAt(0)
	out := append([]int32(nil), v...) // copying out is the blessed pattern
	dst := make([]int32, len(v))
	copy(dst, v)
	return out
}

func readOnly(a *arena) int32 {
	var sum int32
	for _, x := range a.viewAt(0) {
		sum += x
	}
	v := a.viewAt(0)
	if len(v) > 0 {
		sum += v[0]
	}
	w := v[:1] // len-shrinking reslice is fine
	_ = w
	return sum
}

func unrelated() []int32 {
	s := make([]int32, 0, 4)
	s = append(s, 1) // plain slices are out of scope
	return s[:cap(s)]
}
