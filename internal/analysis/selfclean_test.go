package analysis

import (
	"path/filepath"
	"runtime"
	"testing"
)

// TestRepoSelfClean runs the full kboostvet suite over this repository
// and requires zero diagnostics: the annotations in internal/engine,
// internal/prr, internal/lt and internal/maxcover must all check out.
// A failure here is a real invariant violation (or an annotation that
// needs a kboost:holds contract) — fix the code, don't delete the
// annotation.
func TestRepoSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping module-wide analysis in -short mode")
	}
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("cannot locate source file")
	}
	root := filepath.Dir(filepath.Dir(filepath.Dir(file)))
	diags, err := RunModule(root, "./...")
	if err != nil {
		t.Fatalf("RunModule: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
