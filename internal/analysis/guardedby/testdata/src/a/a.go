// Fixture for the guardedby analyzer: seeded violations carry want
// comments; everything else must stay silent.
package a

import "sync"

type counterBox struct {
	mu sync.RWMutex
	n  int // kboost:guarded-by mu
}

func (b *counterBox) badRead() int {
	return b.n // want `field n \(kboost:guarded-by mu\) read without a preceding mu\.Lock`
}

func (b *counterBox) badWrite(v int) {
	b.n = v // want `field n \(kboost:guarded-by mu\) written without a preceding mu\.Lock`
}

func (b *counterBox) writeUnderRLock(v int) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	b.n = v // want `field n \(kboost:guarded-by mu\) written without a preceding mu\.Lock`
}

func (b *counterBox) goodRead() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.n
}

func (b *counterBox) goodWrite(v int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.n = v
}

func (b *counterBox) goodIncrement() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// applyLocked runs under the caller's lock; the "Locked" suffix is the
// repository convention for that contract.
func (b *counterBox) applyLocked(f func(int) int) {
	b.n = f(b.n)
}

// peek relies on the caller holding the lock.
// kboost:holds mu
func (b *counterBox) peek() int {
	return b.n
}

type registry struct {
	mu    sync.Mutex
	slots map[string]*slot // kboost:guarded-by mu
}

type slot struct {
	refs int // kboost:guarded-by registry.mu
}

func (r *registry) badSlotTouch(name string) {
	s := r.slots[name] // want `field slots \(kboost:guarded-by mu\) read without a preceding mu\.Lock`
	s.refs++           // want `field refs \(kboost:guarded-by registry\.mu\) written without a preceding mu\.Lock`
}

func (r *registry) goodSlotTouch(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.slots[name]
	s.refs++
}

// lockBox exercises the annotated lock-wrapper path: lockCounter /
// rlockCounter acquire mu on their argument, so calls to them count as
// lock acquisitions.
type lockBox struct {
	mu sync.RWMutex
	n  int // kboost:guarded-by mu
}

// lockCounter write-locks b.
// kboost:locks mu
func lockCounter(b *lockBox) {
	b.mu.Lock()
}

// rlockCounter read-locks b.
// kboost:rlocks mu
func rlockCounter(b *lockBox) {
	b.mu.RLock()
}

func goodWrapperWrite(b *lockBox, v int) {
	lockCounter(b)
	b.n = v
	b.mu.Unlock()
}

func goodWrapperRead(b *lockBox) int {
	rlockCounter(b)
	defer b.mu.RUnlock()
	return b.n
}

func badWrapperWrite(b *lockBox, v int) {
	rlockCounter(b)
	b.n = v // want `field n \(kboost:guarded-by mu\) written without a preceding mu\.Lock`
	b.mu.RUnlock()
}

func badWrapperOtherBase(b, c *lockBox) int {
	lockCounter(b)
	defer b.mu.Unlock()
	return c.n // want `field n \(kboost:guarded-by mu\) read without a preceding mu\.Lock`
}
