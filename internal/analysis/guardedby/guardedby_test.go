package guardedby_test

import (
	"testing"

	"github.com/kboost/kboost/internal/analysis/analysistest"
	"github.com/kboost/kboost/internal/analysis/guardedby"
)

func TestGuardedBy(t *testing.T) {
	analysistest.Run(t, "testdata", guardedby.Analyzer, "a")
}
