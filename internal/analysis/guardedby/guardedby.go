// Package guardedby is a lightweight lock checker driven by the
// repository's `kboost:guarded-by` field annotations. The engine's
// concurrency design splits state into mutex-guarded structure (the
// registry, the pool cache, per-entry pools) and lock-free atomics (the
// counters); this analyzer makes the guarded half machine-checked: a
// read or write of an annotated field from a function that does not
// acquire the named mutex is a diagnostic.
//
// Annotation grammar, on a struct field:
//
//	mu sync.Mutex
//	graphs map[string]*snapshot // kboost:guarded-by mu
//	bytes  int64                // kboost:guarded-by Engine.mu
//
// The bare form names a sibling mutex field: accesses to x.graphs
// require a preceding x.mu.Lock() (or RLock for reads) in the same
// function, on the same base x. The qualified form names the mutex
// field of another struct in the same package: accesses require a
// preceding <expr>.mu.Lock() where <expr> has that type.
//
// Two escape hatches express caller-holds-the-lock contracts:
//
//   - a function whose name ends in "Locked" (the repository's
//     convention for callee-runs-under-callers-lock helpers), or
//   - a function annotated `// kboost:holds mu` (or `Engine.mu`),
//     naming the lock its callers are contractually holding.
//
// Lock-wrapper functions — helpers that acquire a mutex on behalf of
// the caller, such as the engine's waiter-counting lockEntry — are
// annotated `// kboost:locks mu` (write) or `// kboost:rlocks mu`
// (read): a call to such a function counts as acquiring the named
// mutex on the call's first argument, exactly as if the caller had
// written arg.mu.Lock() itself.
//
// The check is positional, not path-sensitive: an access is considered
// guarded when a matching Lock call appears earlier in the function
// body. That catches the dangerous class — fields touched with no
// locking discipline at all — while staying O(ast) and false-positive
// free on real code; it does not model unlock windows or conditional
// acquisition.
package guardedby

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/kboost/kboost/internal/analysis/framework"
)

// Analyzer is the guardedby pass.
var Analyzer = &framework.Analyzer{
	Name: "guardedby",
	Doc: "flag accesses to kboost:guarded-by annotated fields from " +
		"functions that do not acquire the named mutex",
	Run: run,
}

// guardSpec is one parsed guarded-by argument.
type guardSpec struct {
	typeName string // optional: owning struct of the mutex ("Engine")
	muName   string // mutex field name ("mu", "resMu")
}

func parseSpec(arg string) guardSpec {
	if i := strings.LastIndexByte(arg, '.'); i >= 0 {
		return guardSpec{typeName: arg[:i], muName: arg[i+1:]}
	}
	return guardSpec{muName: arg}
}

// lockEvent is one mu.Lock()/mu.RLock() call site inside a function.
type lockEvent struct {
	muName   string
	baseObj  types.Object // object of the receiver expr, if an identifier
	baseType string       // named type of the receiver expr, pointer-stripped
	rlock    bool
	pos      token.Pos
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	// Caller-holds contracts silence matching specs for the whole body.
	holdsAll := strings.HasSuffix(fn.Name.Name, "Locked")
	holds := make(map[string]bool)
	if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
		for _, ann := range pass.Program.FuncAnnotations(obj) {
			if ann.Key == "holds" && ann.Arg != "" {
				holds[ann.Arg] = true
			}
		}
	}

	var locks []lockEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		// Annotated lock wrappers: calling a function marked
		// kboost:locks <mu> / kboost:rlocks <mu> acquires <mu> on the
		// call's first argument.
		if obj := calleeObj(pass, call); obj != nil && len(call.Args) > 0 {
			for _, ann := range pass.Program.FuncAnnotations(obj) {
				if (ann.Key != "locks" && ann.Key != "rlocks") || ann.Arg == "" {
					continue
				}
				ev := lockEvent{muName: ann.Arg, rlock: ann.Key == "rlocks", pos: call.Pos()}
				if id, ok := call.Args[0].(*ast.Ident); ok {
					ev.baseObj = pass.TypesInfo.ObjectOf(id)
				}
				ev.baseType = namedTypeOf(pass, call.Args[0])
				locks = append(locks, ev)
			}
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		kind := sel.Sel.Name
		if kind != "Lock" && kind != "RLock" {
			return true
		}
		mu, ok := sel.X.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ev := lockEvent{muName: mu.Sel.Name, rlock: kind == "RLock", pos: call.Pos()}
		if id, ok := mu.X.(*ast.Ident); ok {
			ev.baseObj = pass.TypesInfo.ObjectOf(id)
		}
		ev.baseType = namedTypeOf(pass, mu.X)
		locks = append(locks, ev)
		return true
	})

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		selection := pass.TypesInfo.Selections[sel]
		if selection == nil || selection.Kind() != types.FieldVal {
			return true
		}
		fieldObj := selection.Obj()
		for _, ann := range pass.Program.FieldAnnotations(fieldObj) {
			if ann.Key != "guarded-by" || ann.Arg == "" {
				continue
			}
			if holdsAll || holds[ann.Arg] {
				continue
			}
			spec := parseSpec(ann.Arg)
			write := isWriteTarget(fn.Body, sel)
			if guarded(pass, locks, spec, sel, write) {
				continue
			}
			verb := "read"
			if write {
				verb = "written"
			}
			need := spec.muName + ".Lock()"
			if !write {
				need = spec.muName + ".Lock() or " + spec.muName + ".RLock()"
			}
			pass.Reportf(sel.Pos(),
				"field %s (kboost:guarded-by %s) %s without a preceding %s in %s; lock it, or annotate the function kboost:holds %s if callers hold the lock",
				fieldObj.Name(), ann.Arg, verb, need, fn.Name.Name, ann.Arg)
		}
		return true
	})
}

// guarded reports whether a matching lock acquisition precedes the
// access. Writes require a write lock; reads accept RLock too.
func guarded(pass *framework.Pass, locks []lockEvent, spec guardSpec, access *ast.SelectorExpr, write bool) bool {
	var accessBaseObj types.Object
	if id, ok := access.X.(*ast.Ident); ok {
		accessBaseObj = pass.TypesInfo.ObjectOf(id)
	}
	accessBaseType := namedTypeOf(pass, access.X)
	for _, ev := range locks {
		if ev.pos >= access.Pos() || ev.muName != spec.muName {
			continue
		}
		if write && ev.rlock {
			continue
		}
		if spec.typeName != "" {
			// Qualified spec: the lock's receiver must have the named type.
			if ev.baseType == spec.typeName {
				return true
			}
			continue
		}
		// Sibling spec: the lock must be taken on the same base as the
		// access (by object when both are simple identifiers, by type as
		// a fallback for chained expressions).
		if ev.baseObj != nil && ev.baseObj == accessBaseObj {
			return true
		}
		if ev.baseObj == nil && accessBaseObj == nil &&
			ev.baseType != "" && ev.baseType == accessBaseType {
			return true
		}
	}
	return false
}

// isWriteTarget reports whether sel is assigned to (plain, compound, or
// inc/dec) anywhere in body. Positional matching keeps this O(ast):
// the selector node itself is compared by identity.
func isWriteTarget(body *ast.BlockStmt, sel *ast.SelectorExpr) bool {
	write := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if lhs == ast.Expr(sel) {
					write = true
				}
			}
		case *ast.IncDecStmt:
			if n.X == ast.Expr(sel) {
				write = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND && n.X == ast.Expr(sel) {
				write = true // address taken: treat as a potential write
			}
		}
		return !write
	})
	return write
}

// calleeObj resolves the function object a call invokes, for plain
// identifiers (package-level wrappers) and selector calls (methods and
// imported functions); nil otherwise.
func calleeObj(pass *framework.Pass, call *ast.CallExpr) types.Object {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return pass.TypesInfo.ObjectOf(fun)
	case *ast.SelectorExpr:
		return pass.TypesInfo.ObjectOf(fun.Sel)
	}
	return nil
}

// namedTypeOf returns the name of an expression's named type with
// pointers stripped, or "".
func namedTypeOf(pass *framework.Pass, e ast.Expr) string {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	t := tv.Type
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}
