package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Export     string
	Dir        string
	GoFiles    []string
	Standard   bool
	Module     *struct{ Path, Dir string }
}

// goList runs `go list -deps -export -json` for the given patterns in
// dir and returns the decoded package stream. -export makes the go tool
// compile (or reuse from the build cache) each package and report its
// export-data file, which is how the loader gets type information for
// dependencies without typechecking the world from source.
func goList(dir string, patterns ...string) ([]listPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Export,Dir,GoFiles,Standard,Module",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// exportLookup adapts an import-path -> export-file map to the lookup
// function go/importer's "gc" mode wants.
func exportLookup(exports map[string]string) func(string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// newProgram assembles an empty program around a fileset.
func newProgram(fset *token.FileSet) *Program {
	return &Program{
		Fset:     fset,
		fieldAnn: make(map[types.Object][]Annotation),
		funcAnn:  make(map[string][]Annotation),
	}
}

// typecheck parses and checks one package directory's files against the
// export data of its dependencies, appending the result to the program.
func (prog *Program) typecheck(pkgPath, dir string, goFiles []string, imp types.Importer) error {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(pkgPath, prog.Fset, files, info)
	if err != nil {
		return fmt.Errorf("typecheck %s: %w", pkgPath, err)
	}
	pkg := &Package{PkgPath: pkgPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	prog.Packages = append(prog.Packages, pkg)
	prog.indexAnnotations(pkg)
	return nil
}

// LoadModule loads and typechecks every package of the module rooted at
// dir (excluding test files — the invariants under check live in
// production code, and test files routinely use time and math/rand
// legitimately). patterns restricts the set of packages *analyzed*;
// nil, empty, "./..." or "all" means everything. Patterns are matched
// as module-relative path prefixes, so "./internal/prr" and
// "./internal/..." both work.
func LoadModule(dir string, patterns ...string) (*Program, error) {
	listed, err := goList(dir, "./...")
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	var modPkgs []listPackage
	modPath := ""
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && p.Module != nil {
			modPkgs = append(modPkgs, p)
			modPath = p.Module.Path
		}
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	prog := newProgram(fset)
	for _, p := range modPkgs {
		if !matchesPatterns(RelPath(modPath, p.ImportPath), patterns) {
			continue
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		if err := prog.typecheck(p.ImportPath, p.Dir, p.GoFiles, imp); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// matchesPatterns reports whether a module-relative package path is
// selected by vet-style patterns ("./...", "./internal/prr",
// "./internal/...").
func matchesPatterns(rel string, patterns []string) bool {
	if len(patterns) == 0 {
		return true
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "..." || pat == "all" || pat == "" || pat == rel {
			return true
		}
		if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
			if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
				return true
			}
		}
	}
	return false
}

// LoadFixture loads one analysistest fixture package: the directory's
// .go files typechecked as import path pkgPath. Fixtures may import
// only the standard library; export data for those imports is resolved
// through the go tool (run from moduleDir so it sees a module context).
func LoadFixture(moduleDir, dir, pkgPath string) (*Program, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var goFiles []string
	var files []*ast.File
	importSet := make(map[string]bool)
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		goFiles = append(goFiles, e.Name())
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, spec := range f.Imports {
			path, err := strconv.Unquote(spec.Path.Value)
			if err == nil && path != "unsafe" {
				importSet[path] = true
			}
		}
	}
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	exports := make(map[string]string)
	if len(importSet) > 0 {
		var imports []string
		for path := range importSet {
			imports = append(imports, path)
		}
		listed, err := goList(moduleDir, imports...)
		if err != nil {
			return nil, err
		}
		for _, p := range listed {
			if p.Export != "" {
				exports[p.ImportPath] = p.Export
			}
		}
	}
	imp := importer.ForCompiler(fset, "gc", exportLookup(exports))
	prog := newProgram(fset)
	if err := prog.typecheck(pkgPath, dir, goFiles, imp); err != nil {
		return nil, err
	}
	return prog, nil
}
