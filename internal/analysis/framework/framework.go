// Package framework is a self-contained, dependency-free analysis
// driver modeled on golang.org/x/tools/go/analysis. The container this
// repository grows in cannot add module dependencies, so instead of the
// real x/tools framework it provides the same working surface —
// Analyzer / Pass / Diagnostic, a loader that typechecks the module,
// and an analysistest-style fixture runner (see the sibling
// analysistest package) — built only on the standard library.
//
// Type information comes from `go list -deps -export`: the go tool
// compiles (or reuses from the build cache) every dependency and
// reports its export-data file, which go/importer's "gc" mode loads
// through a lookup function. Module packages are then typechecked from
// source against that export data. This is the same shape as
// unitchecker's fact/export pipeline, minus the vet-tool protocol.
//
// On top of plain type info the loader indexes the repository's
// machine-readable invariant annotations (the `kboost:` comment
// grammar) so analyzers can consume them uniformly:
//
//	// kboost:guarded-by mu        on a struct field: reads/writes
//	//                             require <receiver>.mu held
//	// kboost:guarded-by Engine.mu on a struct field: guarded by the
//	//                             mu field of another struct
//	// kboost:epoch                on an int32 epoch-stamp field:
//	//                             increments only inside the wrap-safe
//	//                             helper
//	// kboost:epoch-helper         on the designated wrap-safe bump
//	//                             helper for annotated epoch fields
//	// kboost:aliased-view         on an accessor returning a slice that
//	//                             aliases shared arena storage
//	// kboost:holds mu             on a function whose contract is that
//	//                             the caller already holds the lock
//	// kboost:locks mu             on a lock-wrapper function: calling it
//	//                             write-acquires mu on its first argument
//	// kboost:rlocks mu            same, read-acquisition
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// An Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics (lowercase, no spaces).
	Name string
	// Doc is the one-paragraph description printed by kboostvet -help.
	Doc string
	// Run applies the analyzer to one package and reports diagnostics
	// through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// A Pass provides one analyzer run over one package: its syntax, type
// information, and the program-wide annotation index.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Program   *Program

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Package is one loaded, typechecked module package.
type Package struct {
	PkgPath string
	Dir     string
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// An Annotation is one parsed `kboost:<key> [arg]` comment marker.
type Annotation struct {
	Key string // e.g. "guarded-by", "epoch", "aliased-view", "holds"
	Arg string // e.g. "mu", "Engine.mu"; empty for bare markers
	Pos token.Pos
}

// A Program is a loaded set of packages plus the annotation index that
// the kboost analyzers share.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package

	// fieldAnn keys annotations by the field's types.Var. All annotated
	// fields in this repository are unexported, so every access resolves
	// within the defining package and object identity is stable.
	fieldAnn map[types.Object][]Annotation
	// funcAnn keys annotations by a package-path-qualified name (see
	// funcKey): annotated accessors may be called from other packages,
	// where the callee resolves to an export-data object with a
	// different identity than the source-checked one.
	funcAnn map[string][]Annotation
}

// FieldAnnotations returns the kboost annotations on a struct field
// object, or nil.
func (prog *Program) FieldAnnotations(obj types.Object) []Annotation {
	return prog.fieldAnn[obj]
}

// FuncAnnotations returns the kboost annotations on a function or
// method object, or nil. It resolves through export data: the object
// may come from a package other than the one that declared it.
func (prog *Program) FuncAnnotations(obj types.Object) []Annotation {
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	return prog.funcAnn[funcKey(fn)]
}

// Run applies one analyzer to every loaded package and returns its
// diagnostics in file/line order.
func (prog *Program) Run(a *Analyzer, pkgs ...*Package) ([]Diagnostic, error) {
	if pkgs == nil {
		pkgs = prog.Packages
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		pass := &Pass{
			Analyzer:  a,
			Fset:      prog.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Program:   prog,
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// funcKey builds the cross-package-stable key for a function object:
// "pkgpath.Recv.Name" for methods, "pkgpath..Name" for functions.
func funcKey(fn *types.Func) string {
	path := ""
	if fn.Pkg() != nil {
		path = fn.Pkg().Path()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			recv = named.Obj().Name()
		}
	}
	return path + "." + recv + "." + fn.Name()
}

// annRE matches one kboost annotation inside a comment line.
var annRE = regexp.MustCompile(`kboost:([a-z-]+)(?:[ \t]+([A-Za-z_][A-Za-z0-9_.]*))?`)

// parseAnnotations extracts every kboost marker from a comment group.
func parseAnnotations(groups ...*ast.CommentGroup) []Annotation {
	var anns []Annotation
	for _, g := range groups {
		if g == nil {
			continue
		}
		for _, c := range g.List {
			for _, m := range annRE.FindAllStringSubmatch(c.Text, -1) {
				anns = append(anns, Annotation{Key: m[1], Arg: m[2], Pos: c.Pos()})
			}
		}
	}
	return anns
}

// indexAnnotations scans a typechecked package for kboost markers on
// struct fields and function declarations and records them in the
// program's index.
func (prog *Program) indexAnnotations(pkg *Package) {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				anns := parseAnnotations(d.Doc)
				if len(anns) == 0 {
					continue
				}
				if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
					prog.funcAnn[funcKey(fn)] = append(prog.funcAnn[funcKey(fn)], anns...)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						anns := parseAnnotations(field.Doc, field.Comment)
						if len(anns) == 0 {
							continue
						}
						for _, name := range field.Names {
							if obj := pkg.Info.Defs[name]; obj != nil {
								prog.fieldAnn[obj] = append(prog.fieldAnn[obj], anns...)
							}
						}
					}
				}
			}
		}
	}
}

// ExprString renders an expression for diagnostics.
func ExprString(e ast.Expr) string { return types.ExprString(e) }

// RelPath strips the module path prefix from an import path, so scope
// lists can be written module-relative ("internal/prr").
func RelPath(modPath, pkgPath string) string {
	if pkgPath == modPath {
		return "."
	}
	return strings.TrimPrefix(pkgPath, modPath+"/")
}
