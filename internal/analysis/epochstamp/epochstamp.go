// Package epochstamp pins the int32 epoch-stamp wrap discipline: a
// stamp array paired with an int32 epoch counter ("mark[v] == epoch
// means v is marked this round") must never increment the epoch past
// math.MaxInt32, or the wrapped counter collides with stamps still in
// the array and stale entries silently read as current — the exact bug
// class PR 5 fixed across prr, lt and maxcover.
//
// Discipline, as an annotation grammar:
//
//	epoch int32 // kboost:epoch
//
//	// bumpEpoch advances the stamp... kboost:epoch-helper
//	func (s *scratch) bumpEpoch() {
//		if s.epoch == math.MaxInt32 { clear(s.mark); s.epoch = 0 }
//		s.epoch++
//	}
//
// The analyzer reports (1) any ++ / += / x = x + n on an annotated
// field outside a function annotated kboost:epoch-helper, and (2) any
// epoch-helper that increments an annotated field without a
// math.MaxInt32 wrap guard on that field in the same body. Plain
// resets (x = 0) are allowed anywhere: restarting an epoch at zero is
// how the wrap guard and the reallocation path work.
package epochstamp

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math"

	"github.com/kboost/kboost/internal/analysis/framework"
)

// Analyzer is the epochstamp pass.
var Analyzer = &framework.Analyzer{
	Name: "epochstamp",
	Doc: "flag increments of kboost:epoch annotated fields outside their " +
		"wrap-safe kboost:epoch-helper, and helpers missing the wrap guard",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFunc(pass, fn)
		}
	}
	return nil
}

func checkFunc(pass *framework.Pass, fn *ast.FuncDecl) {
	isHelper := false
	if obj := pass.TypesInfo.Defs[fn.Name]; obj != nil {
		for _, ann := range pass.Program.FuncAnnotations(obj) {
			if ann.Key == "epoch-helper" {
				isHelper = true
			}
		}
	}

	// incremented collects the annotated epoch fields this function
	// bumps, so a helper can be checked for wrap guards afterwards.
	incremented := make(map[types.Object]token.Pos)

	record := func(sel *ast.SelectorExpr, pos token.Pos) {
		obj := epochField(pass, sel)
		if obj == nil {
			return
		}
		if !isHelper {
			pass.Reportf(pos,
				"epoch field %s (kboost:epoch) incremented outside its wrap-safe helper; route the bump through the kboost:epoch-helper function so the math.MaxInt32 wrap guard always runs",
				obj.Name())
			return
		}
		if _, ok := incremented[obj]; !ok {
			incremented[obj] = pos
		}
	}

	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IncDecStmt:
			if sel, ok := n.X.(*ast.SelectorExpr); ok {
				record(sel, n.Pos())
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
				return true
			}
			sel, ok := n.Lhs[0].(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch n.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN:
				record(sel, n.Pos())
			case token.ASSIGN:
				// x.epoch = x.epoch + 1 (spelled-out increment). Plain
				// resets to a constant are fine.
				if rhsMentions(pass, n.Rhs[0], epochField(pass, sel)) {
					record(sel, n.Pos())
				}
			}
		}
		return true
	})

	for obj, pos := range incremented {
		if !hasWrapGuard(pass, fn.Body, obj) {
			pass.Reportf(pos,
				"epoch helper %s increments %s without a wrap guard; compare against math.MaxInt32 and clear the stamp array before wrapping to zero",
				fn.Name.Name, obj.Name())
		}
	}
}

// epochField resolves sel to a kboost:epoch annotated field object, or
// nil.
func epochField(pass *framework.Pass, sel *ast.SelectorExpr) types.Object {
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.FieldVal {
		return nil
	}
	obj := selection.Obj()
	for _, ann := range pass.Program.FieldAnnotations(obj) {
		if ann.Key == "epoch" {
			return obj
		}
	}
	return nil
}

// rhsMentions reports whether expr reads the given field (making an
// assignment an increment rather than a reset).
func rhsMentions(pass *framework.Pass, expr ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if s := pass.TypesInfo.Selections[sel]; s != nil && s.Obj() == obj {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasWrapGuard reports whether body compares the field against
// math.MaxInt32 (either spelling: the constant, or an expression whose
// constant value equals 1<<31 - 1).
func hasWrapGuard(pass *framework.Pass, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.GEQ) {
			return !found
		}
		sides := [2]ast.Expr{be.X, be.Y}
		for i, side := range sides {
			sel, ok := side.(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if s := pass.TypesInfo.Selections[sel]; s == nil || s.Obj() != obj {
				continue
			}
			other := sides[1-i]
			if tv, ok := pass.TypesInfo.Types[other]; ok && tv.Value != nil {
				if v, exact := constant.Int64Val(tv.Value); exact && v == math.MaxInt32 {
					found = true
				}
			}
		}
		return !found
	})
	return found
}
