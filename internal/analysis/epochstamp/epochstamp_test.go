package epochstamp_test

import (
	"testing"

	"github.com/kboost/kboost/internal/analysis/analysistest"
	"github.com/kboost/kboost/internal/analysis/epochstamp"
)

func TestEpochStamp(t *testing.T) {
	analysistest.Run(t, "testdata", epochstamp.Analyzer, "a")
}
