// Fixture for the epochstamp analyzer: seeded violations carry want
// comments; everything else must stay silent.
package a

import "math"

type scratch struct {
	mark  []int32
	epoch int32 // kboost:epoch
	round int32 // un-annotated: free to touch
}

// bumpEpoch advances the stamp, wrap-safely.
// kboost:epoch-helper
func (s *scratch) bumpEpoch() {
	if s.epoch == math.MaxInt32 {
		clear(s.mark)
		s.epoch = 0
	}
	s.epoch++
}

func (s *scratch) inlineBump() {
	s.epoch++ // want `epoch field epoch \(kboost:epoch\) incremented outside its wrap-safe helper`
}

func (s *scratch) inlineAdd() {
	s.epoch += 1 // want `epoch field epoch \(kboost:epoch\) incremented outside its wrap-safe helper`
}

func (s *scratch) spelledOut() {
	s.epoch = s.epoch + 1 // want `epoch field epoch \(kboost:epoch\) incremented outside its wrap-safe helper`
}

func (s *scratch) reset() {
	s.epoch = 0 // resets are allowed anywhere
	clear(s.mark)
}

func (s *scratch) unrelated() {
	s.round++ // un-annotated fields are out of scope
}

// badBump is declared a helper but forgets the wrap guard.
// kboost:epoch-helper
func (s *scratch) badBump() {
	s.epoch++ // want `epoch helper badBump increments epoch without a wrap guard`
}

func (s *scratch) use(v int32) bool {
	s.bumpEpoch()
	if s.mark[v] == s.epoch { // comparisons are reads, not increments
		return true
	}
	s.mark[v] = s.epoch
	return false
}
