package detrand_test

import (
	"testing"

	"github.com/kboost/kboost/internal/analysis/analysistest"
	"github.com/kboost/kboost/internal/analysis/detrand"
)

func TestDetrand(t *testing.T) {
	analysistest.Run(t, "testdata", detrand.Analyzer, "a")
}

func TestInScope(t *testing.T) {
	for _, rel := range detrand.DefaultScope {
		if !detrand.InScope(rel) {
			t.Errorf("InScope(%q) = false, want true", rel)
		}
	}
	for _, rel := range []string{"internal/engine", "cmd/kboostd", ""} {
		if detrand.InScope(rel) {
			t.Errorf("InScope(%q) = true, want false", rel)
		}
	}
}
