// Package detrand flags sources of nondeterminism inside the
// determinism-critical packages: every sampling component of this
// repository promises bit-identical results for a fixed (seed, workers)
// pair, a guarantee that a single stray global math/rand call,
// wall-clock read, or map-iteration-ordered result silently destroys.
//
// Three bug classes are reported:
//
//  1. Calls through the global math/rand (or math/rand/v2) generator.
//     All randomness must flow through an explicitly seeded
//     internal/rng.Source.
//  2. time.Now / time.Since. Wall-clock reads have no place in a
//     deterministic sampling path (timing belongs to callers like the
//     engine, which are out of scope).
//  3. `for range` over a map whose body writes loop-derived values into
//     an ordered result (append to a slice, or indexed slice store).
//     Map iteration order is randomized per run, so the result order —
//     and everything downstream, such as which PRR-graph a worker
//     generates first — changes between identical invocations. Extract
//     the keys and sort them first.
//
// The analyzer itself is scope-free; the kboostvet driver (and the
// self-clean test) restrict it to the packages listed in DefaultScope.
package detrand

import (
	"go/ast"
	"go/types"
	"strings"

	"github.com/kboost/kboost/internal/analysis/framework"
)

// DefaultScope lists the module-relative packages whose code must be
// deterministic for a fixed (seed, workers) pair. To put a new package
// under detrand (for example a new diffusion model), add its
// module-relative import path here; kboostvet and the self-clean test
// pick the change up automatically.
var DefaultScope = []string{
	"internal/prr",
	"internal/lt",
	"internal/maxcover",
	"internal/diffusion",
	"internal/rng",
}

// InScope reports whether a module-relative package path is
// determinism-critical.
func InScope(rel string) bool {
	for _, s := range DefaultScope {
		if rel == s {
			return true
		}
	}
	return false
}

// Analyzer is the detrand pass.
var Analyzer = &framework.Analyzer{
	Name: "detrand",
	Doc: "flag global math/rand calls, wall-clock reads, and map-ordered " +
		"result construction in determinism-critical packages",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		var fn *ast.FuncDecl
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				fn = n
			case *ast.SelectorExpr:
				checkSelector(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, n, fn)
			}
			return true
		})
	}
	return nil
}

// checkSelector flags uses of global math/rand functions and of
// time.Now / time.Since. References count, not just calls: storing
// rand.Intn in a variable is as nondeterministic as calling it.
func checkSelector(pass *framework.Pass, sel *ast.SelectorExpr) {
	// Only package-qualified selectors: rand.Intn, time.Now. Method
	// values on a *rand.Rand are fine (the receiver carries the seed).
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	if _, ok := pass.TypesInfo.Uses[id].(*types.PkgName); !ok {
		return
	}
	obj, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return
	}
	switch obj.Pkg().Path() {
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewSource, NewPCG, ...) build explicitly
		// seeded local generators and never touch the global source.
		if strings.HasPrefix(obj.Name(), "New") {
			return
		}
		pass.Reportf(sel.Pos(),
			"global math/rand.%s in a determinism-critical package; use an explicitly seeded internal/rng.Source",
			obj.Name())
	case "time":
		if obj.Name() == "Now" || obj.Name() == "Since" {
			pass.Reportf(sel.Pos(),
				"wall-clock read time.%s in a determinism-critical package; timing belongs to the caller",
				obj.Name())
		}
	}
}

// checkMapRange flags `for k, v := range m` over a map when the body
// writes a value derived from the loop variables into an ordered
// collection declared outside the loop.
func checkMapRange(pass *framework.Pass, rng *ast.RangeStmt, fn *ast.FuncDecl) {
	t := pass.TypesInfo.Types[rng.X].Type
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	loopVars := make(map[types.Object]bool)
	for _, expr := range []ast.Expr{rng.Key, rng.Value} {
		if id, ok := expr.(*ast.Ident); ok && id.Name != "_" {
			if obj := pass.TypesInfo.ObjectOf(id); obj != nil {
				loopVars[obj] = true
			}
		}
	}
	if len(loopVars) == 0 {
		return
	}
	usesLoopVar := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && loopVars[pass.TypesInfo.ObjectOf(id)] {
				found = true
			}
			return !found
		})
		return found
	}
	declaredOutside := func(e ast.Expr) bool {
		root := e
		for {
			if ix, ok := root.(*ast.IndexExpr); ok {
				root = ix.X
				continue
			}
			break
		}
		id, ok := root.(*ast.Ident)
		if !ok {
			// Selector (struct field) or similar: not loop-local.
			return true
		}
		obj := pass.TypesInfo.ObjectOf(id)
		return obj == nil || obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range asg.Lhs {
			if i >= len(asg.Rhs) {
				break
			}
			rhs := asg.Rhs[i]
			// out = append(out, ...loop-derived...). The blessed
			// collect-then-sort pattern is exempt: appending keys to a
			// slice that is sorted later in the same function is exactly
			// how map order is laundered away.
			if call, ok := rhs.(*ast.CallExpr); ok && isBuiltinAppend(pass, call) {
				if !declaredOutside(lhs) {
					continue
				}
				if id, ok := lhs.(*ast.Ident); ok && sortedLater(pass, fn, pass.TypesInfo.ObjectOf(id)) {
					continue
				}
				for _, arg := range call.Args[1:] {
					if usesLoopVar(arg) {
						pass.Reportf(asg.Pos(),
							"append of a map-iteration value to %q, which outlives the loop: map order is randomized, so the result order is nondeterministic; collect and sort the keys first",
							framework.ExprString(lhs))
						break
					}
				}
				continue
			}
			// out[i] = ...loop-derived... where out is an ordered
			// (slice/array) collection from outside the loop.
			if ix, ok := lhs.(*ast.IndexExpr); ok {
				bt := pass.TypesInfo.Types[ix.X].Type
				if bt == nil {
					continue
				}
				switch bt.Underlying().(type) {
				case *types.Slice, *types.Array, *types.Pointer:
				default:
					continue // map or channel targets are order-free
				}
				if declaredOutside(ix.X) && (usesLoopVar(rhs) || usesLoopVar(ix.Index)) {
					pass.Reportf(asg.Pos(),
						"indexed store of a map-iteration value into %q, which outlives the loop: map order is randomized, so the filled positions are nondeterministic; collect and sort the keys first",
						framework.ExprString(ix.X))
				}
			}
		}
		return true
	})
}

// sortedLater reports whether obj is passed to a sort.* or slices.*
// call anywhere in the enclosing function — the signature of the
// collect-and-sort idiom that neutralizes map iteration order.
func sortedLater(pass *framework.Pass, fn *ast.FuncDecl, obj types.Object) bool {
	if fn == nil || fn.Body == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return !found
		}
		pkgID, ok := sel.X.(*ast.Ident)
		if !ok {
			return !found
		}
		pkg, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
		if !ok {
			return !found
		}
		path := pkg.Imported().Path()
		if path != "sort" && path != "slices" {
			return !found
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(id) == obj {
					found = true
				}
				return !found
			})
		}
		return !found
	})
	return found
}

func isBuiltinAppend(pass *framework.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
