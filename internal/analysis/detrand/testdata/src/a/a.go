// Fixture for the detrand analyzer: seeded violations carry want
// comments; everything else must stay silent.
package a

import (
	"math/rand"
	"sort"
	"time"
)

func globalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn`
}

func globalFloat() float64 {
	f := rand.Float64 // want `global math/rand\.Float64`
	return f()
}

func seededLocal() int {
	r := rand.New(rand.NewSource(42)) // constructors are allowed
	return r.Intn(10)
}

func wallClock() time.Time {
	return time.Now() // want `wall-clock read time\.Now`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `wall-clock read time\.Since`
}

func parseOK() (time.Duration, error) {
	return time.ParseDuration("1s") // other time funcs are fine
}

func mapOrderedAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append of a map-iteration value`
	}
	return out
}

func mapIndexedStore(m map[int]int, out []int) {
	for k, v := range m {
		out[k] = v // want `indexed store of a map-iteration value`
	}
}

func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort is the blessed pattern
	}
	sort.Strings(keys)
	return keys
}

func loopLocal(m map[string]int) int {
	n := 0
	for _, v := range m {
		vals := []int{}
		vals = append(vals, v) // loop-local slice: order never escapes
		n += vals[0]
	}
	return n
}

func mapStoreIsFine(m map[string]int, dst map[string]int) {
	for k, v := range m {
		dst[k] = v // map target: order-free
	}
}
