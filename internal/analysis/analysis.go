// Package analysis aggregates the kboostvet analyzer suite: the four
// project-specific passes that enforce the engine's concurrency and
// determinism invariants at compile time (see the per-analyzer package
// docs), plus the driver logic shared by cmd/kboostvet and the
// self-clean test.
//
// The suite runs over the module with RunModule: detrand is restricted
// to the determinism-critical packages (detrand.DefaultScope), the
// other three run everywhere annotations can appear.
package analysis

import (
	"github.com/kboost/kboost/internal/analysis/arenaview"
	"github.com/kboost/kboost/internal/analysis/detrand"
	"github.com/kboost/kboost/internal/analysis/epochstamp"
	"github.com/kboost/kboost/internal/analysis/framework"
	"github.com/kboost/kboost/internal/analysis/guardedby"
)

// ModulePath is the import path prefix that scope lists are relative
// to.
const ModulePath = "github.com/kboost/kboost"

// Suite returns the kboostvet analyzers in reporting order.
func Suite() []*framework.Analyzer {
	return []*framework.Analyzer{
		detrand.Analyzer,
		guardedby.Analyzer,
		epochstamp.Analyzer,
		arenaview.Analyzer,
	}
}

// RunModule loads the module rooted at dir (restricted to the given
// vet-style patterns, or everything when none are given) and applies
// the whole suite, returning the combined diagnostics in file order.
func RunModule(dir string, patterns ...string) ([]framework.Diagnostic, error) {
	prog, err := framework.LoadModule(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var all []framework.Diagnostic
	for _, a := range Suite() {
		pkgs := prog.Packages
		if a == detrand.Analyzer {
			pkgs = nil
			for _, pkg := range prog.Packages {
				if detrand.InScope(framework.RelPath(ModulePath, pkg.PkgPath)) {
					pkgs = append(pkgs, pkg)
				}
			}
			if len(pkgs) == 0 {
				continue
			}
		}
		diags, err := prog.Run(a, pkgs...)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	framework.SortDiagnostics(all)
	return all, nil
}
