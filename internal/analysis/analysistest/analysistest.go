// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against `// want "regexp"` comments, mirroring
// golang.org/x/tools/go/analysis/analysistest (which this repository
// cannot depend on). Fixtures live under <analyzer>/testdata/src/<pkg>
// and may import only the standard library.
//
// A want comment expects one diagnostic on its line whose message
// matches the quoted regexp; several quoted regexps expect several
// diagnostics. Lines without a want comment must produce no
// diagnostics, so every fixture doubles as a negative (no-false-
// positive) case.
package analysistest

import (
	"fmt"
	"path/filepath"
	"regexp"
	"runtime"
	"testing"

	"github.com/kboost/kboost/internal/analysis/framework"
)

// wantRE extracts the quoted regexps of a want comment. Both quote
// styles of the upstream analysistest are accepted: double quotes and
// backticks (the latter spare escaping in regexps full of dots).
var wantRE = regexp.MustCompile("want((?:\\s+(?:\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`))+)")

var quotedRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// Run applies a to each fixture package under testdata/src and reports
// mismatches against the fixtures' want comments through t.
func Run(t *testing.T, testdata string, a *framework.Analyzer, pkgs ...string) {
	t.Helper()
	modRoot := moduleRoot(t)
	for _, pkg := range pkgs {
		dir := filepath.Join(testdata, "src", pkg)
		prog, err := framework.LoadFixture(modRoot, dir, pkg)
		if err != nil {
			t.Errorf("%s: loading fixture %s: %v", a.Name, pkg, err)
			continue
		}
		diags, err := prog.Run(a)
		if err != nil {
			t.Errorf("%s: running on %s: %v", a.Name, pkg, err)
			continue
		}
		checkWants(t, prog, a, diags)
	}
}

// checkWants matches diagnostics against want comments line by line.
func checkWants(t *testing.T, prog *framework.Program, a *framework.Analyzer, diags []framework.Diagnostic) {
	t.Helper()
	type lineKey struct {
		file string
		line int
	}
	wants := make(map[lineKey][]*regexp.Regexp)
	for _, pkg := range prog.Packages {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					m := wantRE.FindStringSubmatch(c.Text)
					if m == nil {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					key := lineKey{pos.Filename, pos.Line}
					for _, q := range quotedRE.FindAllStringSubmatch(m[1], -1) {
						pat := q[1]
						if q[2] != "" {
							pat = q[2]
						}
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Errorf("%s: bad want regexp %q: %v", pos, pat, err)
							continue
						}
						wants[key] = append(wants[key], re)
					}
				}
			}
		}
	}
	matched := make(map[lineKey]int)
	for _, d := range diags {
		key := lineKey{d.Pos.Filename, d.Pos.Line}
		res := wants[key]
		ok := false
		for _, re := range res {
			if re.MatchString(d.Message) {
				ok = true
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", a.Name, d)
			continue
		}
		matched[key]++
	}
	for key, res := range wants {
		if matched[key] < len(res) {
			t.Errorf("%s: %s:%d: want %d diagnostic(s), got %d",
				a.Name, key.file, key.line, len(res), matched[key])
		}
	}
}

// moduleRoot locates the repository root (the directory holding go.mod)
// from the caller's source position, so fixtures resolve their standard
// library imports through the module's go tool context.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("analysistest: cannot locate caller")
	}
	// .../internal/analysis/analysistest/analysistest.go -> module root.
	root := filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
	if _, err := filepath.Abs(root); err != nil {
		t.Fatal(fmt.Errorf("analysistest: %w", err))
	}
	return root
}
